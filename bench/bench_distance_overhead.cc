// Sec 5 claim: "low space overhead for including distance information in
// the index." Compares plain vs distance-aware builds: cover entries,
// stored integers (the DIST column adds one integer per row), build time.
#include <iostream>

#include "bench_common.h"
#include "hopi/build.h"
#include "storage/linlout.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace hopi;
  using namespace hopi::bench;
  CommandLine cli = ParseFlagsOrDie(argc, argv, {"docs", "seed"});
  size_t docs = static_cast<size_t>(cli.GetInt("docs", 250));
  uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 42));

  PrintHeader("Sec 5: distance-aware index overhead");
  TablePrinter table({"docs", "mode", "time", "entries", "stored ints",
                      "entry overhead"});
  for (size_t d : {docs / 2, docs}) {
    collection::Collection c = MakeDblp(d, seed);
    IndexBuildOptions options;
    options.partition.strategy = partition::PartitionStrategy::kTcSizeAware;
    options.partition.max_connections = 30000;

    Stopwatch plain_watch;
    auto plain = BuildIndex(&c, options);
    if (!plain.ok()) {
      std::cerr << plain.status() << "\n";
      return 1;
    }
    double plain_time = plain_watch.ElapsedSeconds();
    storage::LinLoutStore plain_store =
        storage::LinLoutStore::FromCover(plain->cover(), false);

    options.with_distance = true;
    Stopwatch dist_watch;
    auto dist = BuildIndex(&c, options);
    if (!dist.ok()) {
      std::cerr << dist.status() << "\n";
      return 1;
    }
    double dist_time = dist_watch.ElapsedSeconds();
    storage::LinLoutStore dist_store =
        storage::LinLoutStore::FromCover(dist->cover(), true);

    double overhead =
        plain->CoverSize() == 0
            ? 0.0
            : 100.0 * (static_cast<double>(dist->CoverSize()) /
                           static_cast<double>(plain->CoverSize()) -
                       1.0);
    table.AddRow({TablePrinter::FmtCount(d), "plain",
                  TablePrinter::Fmt(plain_time, 2) + "s",
                  TablePrinter::FmtCount(plain->CoverSize()),
                  TablePrinter::FmtCount(plain_store.StorageIntegers()), "-"});
    table.AddRow({TablePrinter::FmtCount(d), "distance",
                  TablePrinter::Fmt(dist_time, 2) + "s",
                  TablePrinter::FmtCount(dist->CoverSize()),
                  TablePrinter::FmtCount(dist_store.StorageIntegers()),
                  "+" + TablePrinter::Fmt(overhead, 1) + "%"});
  }
  table.Print(std::cout);
  std::cout << "\nShape check: the distance-aware cover may carry more "
               "entries (centers must lie on shortest paths), but the "
               "overhead stays a modest fraction, not a blowup; stored "
               "integers additionally grow by the DIST column (x1.5 per "
               "entry).\n";
  return 0;
}
