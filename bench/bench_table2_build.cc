// Table 2 (paper Sec 7.2): index build time and size.
//
// Rows:
//   baseline  — old partitioner + old incremental cover join (EDBT 2004)
//   Px        — old (node-capped) partitioner + NEW recursive join,
//               cap = x * 10^4 nodes at paper scale, scaled to the
//               generated collection's element count
//   single    — every document its own partition + new join
//   Nx        — NEW TC-size-aware partitioner + new join,
//               cap = x * 10^5 closure connections at paper scale, scaled
//               to the measured closure size
// Compression = closure connections / cover entries, as in the paper.
#include <iostream>

#include "bench_common.h"
#include "hopi/build.h"
#include "util/timer.h"

namespace {

using namespace hopi;
using namespace hopi::bench;

struct RowResult {
  std::string name;
  double seconds;
  double join_seconds;
  uint64_t entries;
};

RowResult RunBuild(const std::string& name, collection::Collection* c,
                   const IndexBuildOptions& options) {
  Stopwatch watch;
  IndexBuildStats stats;
  auto index = BuildIndex(c, options, &stats);
  if (!index.ok()) {
    std::cerr << name << " failed: " << index.status() << "\n";
    std::exit(1);
  }
  return {name, watch.ElapsedSeconds(), stats.join_seconds,
          stats.cover_entries};
}

}  // namespace

int main(int argc, char** argv) {
  CommandLine cli = ParseFlagsOrDie(argc, argv, {"docs", "seed", "fast"});
  size_t docs = static_cast<size_t>(cli.GetInt("docs", 700));
  uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 42));
  bool fast = cli.GetBool("fast", false);

  PrintHeader("Table 2: index build time and size (DBLP-like, " +
              std::to_string(docs) + " docs)");
  collection::Collection c = MakeDblp(docs, seed);

  std::cout << "computing transitive closure size (compression denominator)"
            << "...\n";
  Stopwatch tc_watch;
  uint64_t closure =
      TransitiveClosure::CountConnections(c.ElementGraph());
  std::cout << "closure: " << TablePrinter::FmtCount(closure)
            << " connections (" << TablePrinter::Fmt(tc_watch.ElapsedSeconds(), 1)
            << "s; paper: 344,992,370)\n";

  // Paper caps scaled to this collection: Px used x*10^4 of 168,991 nodes,
  // Nx used x*10^5 of 345M connections. Large caps are clamped below the
  // collection size so they still exercise the multi-partition path (the
  // paper's collection was never swallowed by one partition).
  auto px_cap = [&](double x) {
    uint64_t cap =
        static_cast<uint64_t>(x * 1e4 / 168991.0 * c.NumElements()) + 1;
    return std::min<uint64_t>(cap, c.NumElements() * 3 / 5);
  };
  auto nx_cap = [&](double x) {
    return static_cast<uint64_t>(x * 1e5 / 3.4499237e8 *
                                 static_cast<double>(closure)) +
           1;
  };

  std::vector<RowResult> rows;

  {  // baseline: old partitioner + old join (the EDBT'04 configuration).
    IndexBuildOptions options;
    options.partition.strategy =
        partition::PartitionStrategy::kRandomizedNodeLimit;
    options.partition.max_nodes = px_cap(10);
    options.partition.seed = seed;
    options.join = JoinAlgorithm::kIncremental;
    rows.push_back(RunBuild("baseline", &c, options));
  }
  for (double x : fast ? std::vector<double>{10} :
                         std::vector<double>{5, 10, 20, 50}) {
    IndexBuildOptions options;
    options.partition.strategy =
        partition::PartitionStrategy::kRandomizedNodeLimit;
    options.partition.max_nodes = px_cap(x);
    options.partition.seed = seed;
    options.join = JoinAlgorithm::kRecursive;
    rows.push_back(RunBuild("P" + std::to_string(static_cast<int>(x)), &c,
                            options));
  }
  {  // single: document-per-partition ("naive") + new join.
    IndexBuildOptions options;
    options.partition.strategy =
        partition::PartitionStrategy::kDocPerPartition;
    options.join = JoinAlgorithm::kRecursive;
    rows.push_back(RunBuild("single", &c, options));
  }
  for (double x : fast ? std::vector<double>{25} :
                         std::vector<double>{10, 25, 50, 100}) {
    IndexBuildOptions options;
    options.partition.strategy = partition::PartitionStrategy::kTcSizeAware;
    options.partition.max_connections = nx_cap(x);
    options.partition.edge_weight = partition::EdgeWeightPolicy::kAtimesD;
    options.partition.seed = seed;
    options.join = JoinAlgorithm::kRecursive;
    rows.push_back(RunBuild("N" + std::to_string(static_cast<int>(x)), &c,
                            options));
  }

  TablePrinter table(
      {"algorithm", "time", "join time", "size", "compression"});
  for (const RowResult& r : rows) {
    table.AddRow({r.name, TablePrinter::Fmt(r.seconds, 1) + "s",
                  TablePrinter::Fmt(r.join_seconds, 2) + "s",
                  TablePrinter::FmtCount(r.entries),
                  TablePrinter::Fmt(Compression(closure, r.entries), 1)});
  }
  table.Print(std::cout);

  std::cout << "\nPaper (Table 2, DBLP 6,210 docs): baseline 11,400s / "
               "15,976,677 entries / 21.6x; best new runs (P5/P10/N10) cut "
               "build time ~10-15x and size ~40%.\n"
            << "Shape check: 'baseline' must be slowest with the largest "
               "cover; Px/Nx rows should beat it on both axes; very large "
               "caps (P50/N100) should drift back up in size.\n";
  return 0;
}
