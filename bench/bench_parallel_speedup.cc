// Sec 7.2 claim: "As the new algorithm creates partitions with a similar
// size of the transitive closures, cover computation takes roughly the
// same amount of time for each partition. Thus when distributed over n
// CPUs, this algorithm can achieve a speedup close to n, whereas the time
// with the old partitioner would be limited by the time to compute the
// cover for the largest partition."
//
// Measures the partition-cover phase speedup for both partitioners across
// thread counts, plus the single-partition configuration (the ROADMAP
// follow-on): one large partition whose cover is built with the staged
// speculative pipeline, sweeping the *inner* thread count. There the
// limit is not partition balance but the stale-pop chain length of the
// lazy priority queue — densest_recomputations shows the extra
// speculative evaluations the parallel build pays for the speedup.
#include <iostream>
#include <thread>

#include "bench_common.h"
#include "hopi/build.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace hopi;
  using namespace hopi::bench;
  CommandLine cli =
      ParseFlagsOrDie(argc, argv, {"docs", "seed", "threads", "single_docs"});
  size_t docs = static_cast<size_t>(cli.GetInt("docs", 700));
  uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 42));
  size_t max_threads = static_cast<size_t>(cli.GetInt("threads", 4));
  size_t single_docs = static_cast<size_t>(cli.GetInt("single_docs", 260));
  size_t hardware = std::thread::hardware_concurrency();

  PrintHeader("Sec 7.2: parallel partition-cover speedup");
  collection::Collection c = MakeDblp(docs, seed);

  TablePrinter table({"partitioner", "threads", "covers phase", "speedup",
                      "max part. closure"});
  for (auto strategy : {partition::PartitionStrategy::kTcSizeAware,
                        partition::PartitionStrategy::kRandomizedNodeLimit}) {
    double base_seconds = 0.0;
    for (size_t threads = 1; threads <= max_threads; threads *= 2) {
      IndexBuildOptions options;
      options.partition.strategy = strategy;
      options.partition.max_connections = 30000;
      options.partition.max_nodes = c.NumElements() / 10 + 1;
      options.partition.seed = seed;
      options.num_threads = threads;
      IndexBuildStats stats;
      auto index = BuildIndex(&c, options, &stats);
      if (!index.ok()) {
        std::cerr << index.status() << "\n";
        return 1;
      }
      if (threads == 1) base_seconds = stats.covers_seconds;
      table.AddRow(
          {strategy == partition::PartitionStrategy::kTcSizeAware
               ? "new (TC cap)"
               : "old (node cap)",
           std::to_string(threads),
           TablePrinter::Fmt(stats.covers_seconds, 3) + "s",
           TablePrinter::Fmt(
               stats.covers_seconds > 0
                   ? base_seconds / stats.covers_seconds
                   : 0.0,
               2) + "x",
           TablePrinter::FmtCount(stats.largest_partition_connections)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nShape check: the new partitioner's equal-sized partitions "
               "scale closer to the thread count; the old partitioner is "
               "bottlenecked by its largest partition.\n";

  // --- Single-partition configuration: intra-partition parallelism ---
  // One global cover (the degenerate "largest partition"), sweeping the
  // inner thread count of the speculative greedy loop. The cover is
  // bit-identical across the sweep; |L| is printed as a cross-check.
  PrintHeader("Single fat partition: speculative cover-build speedup");
  collection::Collection single = MakeDblp(single_docs, seed + 1);
  // "eval rounds" = frontier batches = the parallel critical path of the
  // evaluation work (sequentially it equals densest recomputations): the
  // speedup ceiling of the greedy loop is recomputations / rounds.
  TablePrinter inner_table({"threads", "covers phase", "speedup",
                            "densest recomp.", "eval rounds", "spec. wasted",
                            "|L|"});
  double single_base = 0.0;
  for (size_t threads = 1; threads <= max_threads; threads *= 2) {
    IndexBuildOptions options;
    options.global = true;
    options.num_threads = threads;
    IndexBuildStats stats;
    auto index = BuildIndex(&single, options, &stats);
    if (!index.ok()) {
      std::cerr << index.status() << "\n";
      return 1;
    }
    if (threads == 1) single_base = stats.covers_seconds;
    inner_table.AddRow(
        {std::to_string(threads),
         TablePrinter::Fmt(stats.covers_seconds, 3) + "s",
         TablePrinter::Fmt(stats.covers_seconds > 0
                               ? single_base / stats.covers_seconds
                               : 0.0,
                           2) + "x",
         TablePrinter::FmtCount(stats.cover_build.densest_recomputations),
         TablePrinter::FmtCount(stats.cover_build.densest_recomputations -
                                stats.cover_build.speculative_evaluations),
         TablePrinter::FmtCount(stats.cover_build.speculative_wasted),
         TablePrinter::FmtCount(stats.cover_entries)});
  }
  inner_table.Print(std::cout);
  std::cout << "\nShape check: the single-partition build scales with the "
               "inner thread count; wasted speculative evaluations are the "
               "price of the deterministic commit order.\n";
  if (hardware <= 1) {
    std::cout << "NOTE: this machine reports " << hardware
              << " hardware thread(s); speedups ~1.0x are expected here — "
                 "rerun on a multi-core host to observe the scaling.\n";
  }
  return 0;
}
