// Sec 7.2 claim: "As the new algorithm creates partitions with a similar
// size of the transitive closures, cover computation takes roughly the
// same amount of time for each partition. Thus when distributed over n
// CPUs, this algorithm can achieve a speedup close to n, whereas the time
// with the old partitioner would be limited by the time to compute the
// cover for the largest partition."
//
// Measures the partition-cover phase speedup for both partitioners across
// thread counts.
#include <iostream>
#include <thread>

#include "bench_common.h"
#include "hopi/build.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace hopi;
  using namespace hopi::bench;
  CommandLine cli = ParseFlagsOrDie(argc, argv, {"docs", "seed", "threads"});
  size_t docs = static_cast<size_t>(cli.GetInt("docs", 700));
  uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 42));
  size_t max_threads = static_cast<size_t>(cli.GetInt("threads", 4));
  size_t hardware = std::thread::hardware_concurrency();

  PrintHeader("Sec 7.2: parallel partition-cover speedup");
  collection::Collection c = MakeDblp(docs, seed);

  TablePrinter table({"partitioner", "threads", "covers phase", "speedup",
                      "max part. closure"});
  for (auto strategy : {partition::PartitionStrategy::kTcSizeAware,
                        partition::PartitionStrategy::kRandomizedNodeLimit}) {
    double base_seconds = 0.0;
    for (size_t threads = 1; threads <= max_threads; threads *= 2) {
      IndexBuildOptions options;
      options.partition.strategy = strategy;
      options.partition.max_connections = 30000;
      options.partition.max_nodes = c.NumElements() / 10 + 1;
      options.partition.seed = seed;
      options.num_threads = threads;
      IndexBuildStats stats;
      auto index = BuildIndex(&c, options, &stats);
      if (!index.ok()) {
        std::cerr << index.status() << "\n";
        return 1;
      }
      if (threads == 1) base_seconds = stats.covers_seconds;
      table.AddRow(
          {strategy == partition::PartitionStrategy::kTcSizeAware
               ? "new (TC cap)"
               : "old (node cap)",
           std::to_string(threads),
           TablePrinter::Fmt(stats.covers_seconds, 3) + "s",
           TablePrinter::Fmt(
               stats.covers_seconds > 0
                   ? base_seconds / stats.covers_seconds
                   : 0.0,
               2) + "x",
           TablePrinter::FmtCount(stats.largest_partition_connections)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nShape check: the new partitioner's equal-sized partitions "
               "scale closer to the thread count; the old partitioner is "
               "bottlenecked by its largest partition.\n";
  if (hardware <= 1) {
    std::cout << "NOTE: this machine reports " << hardware
              << " hardware thread(s); speedups ~1.0x are expected here — "
                 "rerun on a multi-core host to observe the scaling.\n";
  }
  return 0;
}
