// Sec 7.2 prose: the non-partitioned global 2-hop cover.
//
// The paper computed it once on DBLP: 1,289,930 entries, 45h23m, ~80 GB
// RAM, compression ~267x vs the stored closure — impressive but
// infeasible. We reproduce the *shape*: the global cover is by far the
// most compact but its build time grows out of proportion with collection
// size (measured here across increasing scales).
#include <iostream>

#include "bench_common.h"
#include "hopi/build.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace hopi;
  using namespace hopi::bench;
  CommandLine cli = ParseFlagsOrDie(argc, argv, {"max-docs", "seed"});
  size_t max_docs = static_cast<size_t>(cli.GetInt("max-docs", 320));
  uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 42));

  PrintHeader("Global (non-partitioned) cover vs partitioned build");
  TablePrinter table({"docs", "els", "closure", "global time", "global size",
                      "global compr", "part. time", "part. size"});
  for (size_t docs = max_docs / 4; docs <= max_docs; docs *= 2) {
    collection::Collection c = MakeDblp(docs, seed);
    uint64_t closure = TransitiveClosure::CountConnections(c.ElementGraph());

    Stopwatch global_watch;
    IndexBuildOptions global;
    global.global = true;
    auto gi = BuildIndex(&c, global);
    if (!gi.ok()) {
      std::cerr << gi.status() << "\n";
      return 1;
    }
    double global_time = global_watch.ElapsedSeconds();

    Stopwatch part_watch;
    IndexBuildOptions parted;
    parted.partition.strategy = partition::PartitionStrategy::kTcSizeAware;
    parted.partition.max_connections = std::max<uint64_t>(closure / 10, 1000);
    auto pi = BuildIndex(&c, parted);
    if (!pi.ok()) {
      std::cerr << pi.status() << "\n";
      return 1;
    }
    double part_time = part_watch.ElapsedSeconds();

    table.AddRow({TablePrinter::FmtCount(docs),
                  TablePrinter::FmtCount(c.NumElements()),
                  TablePrinter::FmtCount(closure),
                  TablePrinter::Fmt(global_time, 2) + "s",
                  TablePrinter::FmtCount(gi->CoverSize()),
                  TablePrinter::Fmt(Compression(closure, gi->CoverSize()), 1),
                  TablePrinter::Fmt(part_time, 2) + "s",
                  TablePrinter::FmtCount(pi->CoverSize())});
  }
  table.Print(std::cout);
  std::cout << "\nPaper: global cover on DBLP = 1,289,930 entries, 45h23m, "
               "compression 267x; partitioned builds minutes instead.\n"
            << "Shape check: global size < partitioned size at every scale; "
               "global time grows much faster than partitioned time.\n";
  return 0;
}
