// Sharded scatter-gather serving sweep: {1,2,4,8} shards × cross-shard
// request fraction {0%,10%,50%}, reporting probes/sec end-to-end through
// ShardedEngine::Batch plus the scatter fan-out accounting (sub-batches
// per batch, leg probes per cross pair, the fan-out histogram peak).
//
// The collection is the DBLP stand-in with a root chain appended
// (root(d) -> root(d+1)) so every multi-shard grouping is guaranteed to
// cut cross-shard links — the scatter path is always exercised, never
// seed-dependent. Pairs are pre-classified against the plan's
// membership table (ShardOfElement), so the cross fraction is exact per
// batch in expectation, not approximate.
//
// The submission side runs `clients` threads each firing synchronous
// Batch() calls with merge_deadline=0 (wait forever): every number is a
// complete-answer number, partials would be a bench bug (asserted).
//
// NOTE: on a single-core container the shard sweep measures scheduling
// overhead, not scatter parallelism — rerun on multi-core hardware for
// the real curve (same caveat as bench_engine_pool).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "engine/shard_router.h"
#include "engine/sharded_engine.h"
#include "partition/partitioner.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace hopi;

struct PairPools {
  std::vector<engine::NodePair> same;   // ShardOfElement(u) == ShardOfElement(v)
  std::vector<engine::NodePair> cross;  // different (live) shards
};

/// Draws random probe pairs and buckets them by the plan's membership
/// table until both pools hold `per_pool` pairs (the cross pool stays
/// empty for a one-shard plan — every pair is same-shard there).
PairPools ClassifyPairs(const engine::ShardPlan& plan, size_t num_elements,
                        size_t per_pool, uint64_t seed) {
  PairPools pools;
  Rng rng(seed * 7919 + plan.num_shards);
  size_t attempts = 0;
  const size_t max_attempts = 400 * per_pool;
  while (attempts++ < max_attempts &&
         (pools.same.size() < per_pool ||
          (plan.num_shards > 1 && pools.cross.size() < per_pool))) {
    auto u = static_cast<NodeId>(rng.NextBounded(num_elements));
    auto v = static_cast<NodeId>(rng.NextBounded(num_elements));
    if (u == v) continue;
    uint32_t su = plan.ShardOfElement(u);
    uint32_t sv = plan.ShardOfElement(v);
    if (su == engine::kUnassignedShard || sv == engine::kUnassignedShard) {
      continue;
    }
    if (su == sv) {
      if (pools.same.size() < per_pool) pools.same.push_back({u, v});
    } else {
      if (pools.cross.size() < per_pool) pools.cross.push_back({u, v});
    }
  }
  if (pools.same.size() < per_pool ||
      (plan.num_shards > 1 && pools.cross.size() < per_pool)) {
    std::cerr << "pair classification starved (same=" << pools.same.size()
              << " cross=" << pools.cross.size() << ")\n";
    std::exit(1);
  }
  return pools;
}

struct RunResult {
  double seconds = 0.0;
  uint64_t probes = 0;
  engine::ShardStats delta;
};

/// Fires `batches` batches of `batch_size` pairs from `clients` threads;
/// each pair is drawn from the cross pool with probability
/// `cross_pct`/100 (a one-shard plan forces 0). Returns wall time and
/// the engine's counter deltas.
RunResult RunWorkload(engine::ShardedEngine* sharded, const PairPools& pools,
                      size_t clients, size_t batches, size_t batch_size,
                      size_t cross_pct, uint64_t seed) {
  engine::ShardStats before = sharded->Stats();
  std::atomic<size_t> next_batch{0};
  Stopwatch wall;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(seed * 977 + t);
      while (next_batch.fetch_add(1) < batches) {
        engine::BatchRequest request;
        request.pairs.reserve(batch_size);
        for (size_t i = 0; i < batch_size; ++i) {
          bool cross = !pools.cross.empty() &&
                       rng.NextBounded(100) < cross_pct;
          const std::vector<engine::NodePair>& pool =
              cross ? pools.cross : pools.same;
          request.pairs.push_back(pool[rng.NextBounded(pool.size())]);
        }
        auto response = sharded->Batch(std::move(request));
        if (!response.ok() || !response->status.ok()) {
          std::abort();  // deadline is 0: a partial is a bench bug
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  RunResult result;
  result.seconds = wall.ElapsedSeconds();
  result.probes = batches * batch_size;
  engine::ShardStats after = sharded->Stats();
  result.delta.batches = after.batches - before.batches;
  result.delta.direct_pairs = after.direct_pairs - before.direct_pairs;
  result.delta.cross_pairs = after.cross_pairs - before.cross_pairs;
  result.delta.subbatches = after.subbatches - before.subbatches;
  result.delta.leg_probes = after.leg_probes - before.leg_probes;
  result.delta.partial_batches =
      after.partial_batches - before.partial_batches;
  for (size_t b = 0; b < after.fanout_histogram.size(); ++b) {
    result.delta.fanout_histogram[b] =
        after.fanout_histogram[b] - before.fanout_histogram[b];
  }
  return result;
}

/// Highest non-empty fan-out bucket, rendered as its [2^b, 2^(b+1))
/// lower bound (bucket 0 = fan-out <= 1).
std::string PeakFanout(const engine::ShardStats& s) {
  for (size_t b = s.fanout_histogram.size(); b-- > 0;) {
    if (s.fanout_histogram[b] == 0) continue;
    if (b == 0) return "<=1";
    return "2^" + std::to_string(b);
  }
  return "-";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hopi::bench;
  CommandLine cli = ParseFlagsOrDie(
      argc, argv, {"docs", "seed", "batches", "batch", "clients"});
  size_t docs = static_cast<size_t>(cli.GetInt("docs", 160));
  uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 42));
  size_t batches = static_cast<size_t>(cli.GetInt("batches", 200));
  size_t batch_size = static_cast<size_t>(cli.GetInt("batch", 256));
  size_t clients = static_cast<size_t>(cli.GetInt("clients", 4));

  PrintHeader("Sharded scatter-gather serving throughput");
  collection::Collection c = MakeDblp(docs, seed);
  // Root chain: guarantees cross-shard links for every >=2-shard
  // grouping (the chain visits every document once).
  for (size_t d = 0; d + 1 < c.NumDocuments(); ++d) {
    NodeId from = c.RootOf(static_cast<collection::DocId>(d));
    NodeId to = c.RootOf(static_cast<collection::DocId>(d + 1));
    if (!c.ElementGraph().HasEdge(from, to)) c.AddLink(from, to);
  }
  std::cout << "collection: " << docs << " docs, "
            << TablePrinter::FmtCount(c.NumElements()) << " elements; "
            << batches << " batches x " << batch_size << " probes from "
            << clients << " client threads (hardware_concurrency="
            << std::thread::hardware_concurrency() << ")\n";

  hopi::bench::BenchReport report("sharded");
  report.Add("docs", static_cast<uint64_t>(docs));
  report.Add("clients", static_cast<uint64_t>(clients));
  report.Add("batch_size", static_cast<uint64_t>(batch_size));

  TablePrinter table({"shards", "cross %", "wall s", "probes/s",
                      "sub/batch", "legs/xpair", "peak fanout"});
  for (size_t num_shards : {1u, 2u, 4u, 8u}) {
    engine::ShardPlanOptions plan_options;
    plan_options.num_shards = num_shards;
    plan_options.partition.strategy =
        partition::PartitionStrategy::kDocPerPartition;
    plan_options.num_threads = clients;
    auto plan = engine::BuildShardPlan(&c, plan_options);
    if (!plan.ok()) {
      std::cerr << plan.status() << "\n";
      return 1;
    }
    if (num_shards > 1 && plan->stats.cross_shard_links == 0) {
      std::cerr << "root chain failed to force cross-shard links\n";
      return 1;
    }
    std::string prefix = "s" + std::to_string(num_shards);
    report.Add(prefix + "_cross_shard_links", plan->stats.cross_shard_links);
    report.Add(prefix + "_cross_shard_routes",
               plan->stats.cross_shard_routes);

    PairPools pools = ClassifyPairs(*plan, c.NumElements(), 8192, seed);
    engine::ShardedEngineOptions options;
    options.threads_per_shard = 2;
    options.merge_deadline = std::chrono::milliseconds::zero();
    engine::ShardedEngine sharded(&c, &*plan, options);

    for (size_t cross_pct : {0u, 10u, 50u}) {
      if (num_shards == 1 && cross_pct > 0) continue;  // no cross pool
      // Warm the shard pools (bind + first cache fills).
      RunWorkload(&sharded, pools, clients, 2 * clients, batch_size,
                  cross_pct, seed + 1);
      RunResult r = RunWorkload(&sharded, pools, clients, batches,
                                batch_size, cross_pct, seed);
      double pps = static_cast<double>(r.probes) / r.seconds;
      double sub_per_batch =
          r.delta.batches == 0
              ? 0.0
              : static_cast<double>(r.delta.subbatches) /
                    static_cast<double>(r.delta.batches);
      double legs_per_cross =
          r.delta.cross_pairs == 0
              ? 0.0
              : static_cast<double>(r.delta.leg_probes) /
                    static_cast<double>(r.delta.cross_pairs);
      table.AddRow({std::to_string(num_shards), std::to_string(cross_pct),
                    TablePrinter::Fmt(r.seconds, 3),
                    TablePrinter::FmtCount(static_cast<uint64_t>(pps)),
                    TablePrinter::Fmt(sub_per_batch, 2),
                    TablePrinter::Fmt(legs_per_cross, 2), PeakFanout(r.delta)});
      std::string key = prefix + "_x" + std::to_string(cross_pct);
      report.Add(key + "_probes_per_s", pps);
      report.Add(key + "_subbatches_per_batch", sub_per_batch);
      report.Add(key + "_leg_probes_per_cross_pair", legs_per_cross);
    }
  }
  table.Print(std::cout);
  report.Write();
  return 0;
}
