// Sec 7.2 prose, INEX: "the resulting cover has 33,701,084 entries ...
// less than three index entries per node seems to be quite efficient."
// On a link-free tree collection the per-node cover size must stay below
// ~3 regardless of scale.
#include <iostream>

#include "bench_common.h"
#include "hopi/build.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace hopi;
  using namespace hopi::bench;
  CommandLine cli = ParseFlagsOrDie(argc, argv, {"docs", "els", "seed"});
  size_t docs = static_cast<size_t>(cli.GetInt("docs", 150));
  size_t els = static_cast<size_t>(cli.GetInt("els", 300));
  uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 7));

  PrintHeader("INEX-like build: cover entries per node");
  TablePrinter table(
      {"docs", "elements", "time", "entries", "entries/node"});
  for (size_t d : {docs / 4, docs / 2, docs}) {
    collection::Collection c = MakeInex(d, els, seed);
    Stopwatch watch;
    IndexBuildOptions options;
    options.partition.strategy = partition::PartitionStrategy::kTcSizeAware;
    options.partition.max_connections = 200000;
    IndexBuildStats stats;
    auto index = BuildIndex(&c, options, &stats);
    if (!index.ok()) {
      std::cerr << index.status() << "\n";
      return 1;
    }
    double per_node = static_cast<double>(index->CoverSize()) /
                      static_cast<double>(c.NumElements());
    table.AddRow({TablePrinter::FmtCount(d),
                  TablePrinter::FmtCount(c.NumElements()),
                  TablePrinter::Fmt(watch.ElapsedSeconds(), 1) + "s",
                  TablePrinter::FmtCount(index->CoverSize()),
                  TablePrinter::Fmt(per_node, 2)});
  }
  table.Print(std::cout);
  std::cout << "\nPaper: 33,701,084 entries over 12,061,348 nodes = 2.79 "
               "entries/node, built in just under 4 hours.\n"
            << "Shape check: entries/node < 3 at every scale.\n";
  return 0;
}
