// Shared helpers for the benchmark harnesses.
//
// Every bench binary prints rows shaped like the paper's tables and
// accepts --docs / --seed flags to scale the synthetic collections. The
// paper's absolute numbers are reprinted alongside measured values in
// EXPERIMENTS.md; here we print the measured table plus the workload
// parameters so runs are self-describing.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>

#include "collection/collection.h"
#include "datagen/dblp.h"
#include "datagen/inex.h"
#include "graph/closure.h"
#include "util/cli.h"
#include "util/table_printer.h"

namespace hopi::bench {

/// Scaled stand-in for the paper's DBLP subset (6,210 docs / 168,991
/// elements / 25,368 links). Default 800 docs keeps every bench binary in
/// the tens of seconds; pass --docs=6210 to approach paper scale.
inline collection::Collection MakeDblp(size_t docs, uint64_t seed) {
  collection::Collection c;
  datagen::DblpConfig config;
  config.num_docs = docs;
  config.seed = seed;
  auto report = datagen::GenerateDblpCollection(config, &c);
  if (!report.ok()) {
    std::cerr << "datagen failed: " << report.status() << "\n";
    std::exit(1);
  }
  return c;
}

/// Scaled INEX stand-in (paper: 12,232 docs / 12M elements / no links).
inline collection::Collection MakeInex(size_t docs, size_t elements_per_doc,
                                       uint64_t seed) {
  collection::Collection c;
  datagen::InexConfig config;
  config.num_docs = docs;
  config.mean_elements_per_doc = elements_per_doc;
  config.seed = seed;
  auto report = datagen::GenerateInexCollection(config, &c);
  if (!report.ok()) {
    std::cerr << "datagen failed: " << report.status() << "\n";
    std::exit(1);
  }
  return c;
}

/// Paper compression metric: closure connections per stored cover entry
/// (345M / 15.9M = 21.6 for the EDBT'04 baseline, 267 for the global
/// cover — Sec 7.2).
inline double Compression(uint64_t closure_connections,
                          uint64_t cover_entries) {
  if (cover_entries == 0) return 0.0;
  return static_cast<double>(closure_connections) /
         static_cast<double>(cover_entries);
}

inline CommandLine ParseFlagsOrDie(int argc, char** argv,
                                   const std::vector<std::string>& known) {
  CommandLine cli;
  Status s = CommandLine::Parse(argc, argv, known, &cli);
  if (!s.ok()) {
    std::cerr << s << "\n";
    std::exit(2);
  }
  return cli;
}

inline void PrintHeader(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

}  // namespace hopi::bench
