// Shared helpers for the benchmark harnesses.
//
// Every bench binary prints rows shaped like the paper's tables and
// accepts --docs / --seed flags to scale the synthetic collections. The
// paper's absolute numbers are reprinted alongside measured values in
// EXPERIMENTS.md; here we print the measured table plus the workload
// parameters so runs are self-describing.
#pragma once

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "collection/collection.h"
#include "datagen/dblp.h"
#include "datagen/inex.h"
#include "graph/closure.h"
#include "util/cli.h"
#include "util/table_printer.h"

namespace hopi::bench {

/// Machine-readable twin of the printed tables: a flat, ordered
/// key -> value map written as `BENCH_<name>.json` in the working
/// directory, so CI and the experiment notes can diff runs without
/// scraping stdout. Hand-rolled writer — two value kinds (number,
/// string), no dependencies, deterministic field order.
///
///   BenchReport report("storage_io");
///   report.Add("v4_bytes_per_entry", 3.71);
///   report.Add("format", "v4");
///   report.Write();          // -> BENCH_storage_io.json
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  void Add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    fields_.emplace_back(key, std::string(buf));
  }
  void Add(const std::string& key, uint64_t value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void Add(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, "\"" + Escaped(value) + "\"");
  }

  /// Writes BENCH_<name>.json; reports (but tolerates) IO failure on
  /// stderr so a read-only working directory never fails a bench run.
  void Write() const {
    std::string path = "BENCH_" + name_ + ".json";
    FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      std::cerr << "BenchReport: cannot write " << path << "\n";
      return;
    }
    std::string json = ToJson();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::cout << "\nwrote " << path << "\n";
  }

  std::string ToJson() const {
    std::string out = "{\n  \"bench\": \"" + Escaped(name_) + "\"";
    for (const auto& [key, value] : fields_) {
      out += ",\n  \"" + Escaped(key) + "\": " + value;
    }
    out += "\n}\n";
    return out;
  }

 private:
  static std::string Escaped(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

  std::string name_;
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Scaled stand-in for the paper's DBLP subset (6,210 docs / 168,991
/// elements / 25,368 links). Default 800 docs keeps every bench binary in
/// the tens of seconds; pass --docs=6210 to approach paper scale.
inline collection::Collection MakeDblp(size_t docs, uint64_t seed) {
  collection::Collection c;
  datagen::DblpConfig config;
  config.num_docs = docs;
  config.seed = seed;
  auto report = datagen::GenerateDblpCollection(config, &c);
  if (!report.ok()) {
    std::cerr << "datagen failed: " << report.status() << "\n";
    std::exit(1);
  }
  return c;
}

/// Scaled INEX stand-in (paper: 12,232 docs / 12M elements / no links).
inline collection::Collection MakeInex(size_t docs, size_t elements_per_doc,
                                       uint64_t seed) {
  collection::Collection c;
  datagen::InexConfig config;
  config.num_docs = docs;
  config.mean_elements_per_doc = elements_per_doc;
  config.seed = seed;
  auto report = datagen::GenerateInexCollection(config, &c);
  if (!report.ok()) {
    std::cerr << "datagen failed: " << report.status() << "\n";
    std::exit(1);
  }
  return c;
}

/// Paper compression metric: closure connections per stored cover entry
/// (345M / 15.9M = 21.6 for the EDBT'04 baseline, 267 for the global
/// cover — Sec 7.2).
inline double Compression(uint64_t closure_connections,
                          uint64_t cover_entries) {
  if (cover_entries == 0) return 0.0;
  return static_cast<double>(closure_connections) /
         static_cast<double>(cover_entries);
}

inline CommandLine ParseFlagsOrDie(int argc, char** argv,
                                   const std::vector<std::string>& known) {
  CommandLine cli;
  Status s = CommandLine::Parse(argc, argv, known, &cli);
  if (!s.ok()) {
    std::cerr << s << "\n";
    std::exit(2);
  }
  return cli;
}

inline void PrintHeader(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

}  // namespace hopi::bench
