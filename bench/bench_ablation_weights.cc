// Sec 4.3 ablation: partitioner x edge-weight policy.
//
// Paper: the new (TC-size-aware) partitioner with A*D weights matched the
// old partitioner's cover quality while equalizing partition closure sizes
// (better parallel speedup); other weight combinations were worse.
#include <iostream>

#include "bench_common.h"
#include "hopi/build.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace hopi;
  using namespace hopi::bench;
  CommandLine cli = ParseFlagsOrDie(argc, argv, {"docs", "seed"});
  size_t docs = static_cast<size_t>(cli.GetInt("docs", 500));
  uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 42));

  PrintHeader("Sec 4.3: partitioner x edge-weight ablation");
  collection::Collection c = MakeDblp(docs, seed);

  TablePrinter table({"partitioner", "weights", "time", "entries",
                      "partitions", "max part. closure"});
  for (auto strategy : {partition::PartitionStrategy::kRandomizedNodeLimit,
                        partition::PartitionStrategy::kTcSizeAware}) {
    for (auto policy : {partition::EdgeWeightPolicy::kLinkCount,
                        partition::EdgeWeightPolicy::kAtimesD,
                        partition::EdgeWeightPolicy::kAplusD}) {
      IndexBuildOptions options;
      options.partition.strategy = strategy;
      options.partition.max_nodes = c.NumElements() / 8 + 1;
      options.partition.max_connections = 40000;
      options.partition.edge_weight = policy;
      options.partition.seed = seed;
      Stopwatch watch;
      IndexBuildStats stats;
      auto index = BuildIndex(&c, options, &stats);
      if (!index.ok()) {
        std::cerr << index.status() << "\n";
        return 1;
      }
      table.AddRow(
          {strategy == partition::PartitionStrategy::kRandomizedNodeLimit
               ? "old (node cap)"
               : "new (TC cap)",
           partition::EdgeWeightPolicyName(policy),
           TablePrinter::Fmt(watch.ElapsedSeconds(), 2) + "s",
           TablePrinter::FmtCount(stats.cover_entries),
           TablePrinter::FmtCount(stats.num_partitions),
           TablePrinter::FmtCount(stats.largest_partition_connections)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nShape check (paper Sec 7.2): new partitioner with A*D "
               "should be competitive with the old partitioner's best run; "
               "the new partitioner's partitions have similar closure sizes "
               "(max close to the cap), enabling near-linear parallel "
               "speedup.\n";
  return 0;
}
