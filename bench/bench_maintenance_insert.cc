// Sec 6.1 timed: incremental insertion of links and whole documents.
//
// The paper gives the algorithms without timings; we quantify that both
// operations are far cheaper than rebuilding, which is what makes the
// incremental path worthwhile.
#include <iostream>

#include "bench_common.h"
#include "datagen/dblp.h"
#include "hopi/build.h"
#include "util/stats.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace hopi;
  using namespace hopi::bench;
  CommandLine cli =
      ParseFlagsOrDie(argc, argv, {"docs", "seed", "inserts"});
  size_t docs = static_cast<size_t>(cli.GetInt("docs", 400));
  uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 42));
  size_t inserts = static_cast<size_t>(cli.GetInt("inserts", 50));

  PrintHeader("Sec 6.1: incremental insertion");
  collection::Collection c = MakeDblp(docs, seed);
  IndexBuildOptions options;
  options.partition.strategy = partition::PartitionStrategy::kTcSizeAware;
  options.partition.max_connections = 50000;
  Stopwatch build_watch;
  auto index = BuildIndex(&c, options);
  if (!index.ok()) {
    std::cerr << index.status() << "\n";
    return 1;
  }
  double build_seconds = build_watch.ElapsedSeconds();

  // Link insertions between random existing elements.
  Rng rng(seed + 1);
  std::vector<double> link_seconds;
  while (link_seconds.size() < inserts) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(c.NumElements()));
    NodeId v = static_cast<NodeId>(rng.NextBounded(c.NumElements()));
    if (u == v || c.ElementGraph().HasEdge(u, v)) continue;
    Stopwatch watch;
    Status s = index->InsertLink(u, v);
    if (!s.ok()) {
      std::cerr << s << "\n";
      return 1;
    }
    link_seconds.push_back(watch.ElapsedSeconds());
  }

  // Document insertions: new publications citing random existing ones.
  datagen::DblpConfig gen_config;
  gen_config.num_docs = docs;
  gen_config.seed = seed + 2;
  Rng gen_rng(seed + 3);
  collection::Ingestor ingestor(&c);
  std::vector<double> doc_seconds;
  for (size_t i = 0; i < inserts; ++i) {
    xml::Document doc = datagen::GenerateDblpDocument(
        gen_config, docs + i, &gen_rng);
    doc.name = "ins-" + doc.name;  // avoid name collisions
    auto id = ingestor.Ingest(doc);
    if (!id.ok()) {
      std::cerr << id.status() << "\n";
      return 1;
    }
    Stopwatch watch;
    Status s = index->InsertDocument(*id);
    if (!s.ok()) {
      std::cerr << s << "\n";
      return 1;
    }
    doc_seconds.push_back(watch.ElapsedSeconds());
  }

  TablePrinter table({"operation", "count", "mean", "median", "max"});
  auto add = [&table](const std::string& name, std::vector<double> v) {
    Summary s = Summarize(std::move(v));
    table.AddRow({name, TablePrinter::FmtCount(s.count),
                  TablePrinter::Fmt(s.mean * 1e3, 3) + "ms",
                  TablePrinter::Fmt(s.median * 1e3, 3) + "ms",
                  TablePrinter::Fmt(s.max * 1e3, 3) + "ms"});
  };
  add("insert link", std::move(link_seconds));
  add("insert document", std::move(doc_seconds));
  table.Print(std::cout);
  std::cout << "full rebuild for comparison: "
            << TablePrinter::Fmt(build_seconds, 2)
            << "s — insertions must be orders of magnitude cheaper.\n";
  return 0;
}
