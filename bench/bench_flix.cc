// Future-work experiment (paper Conclusions + [25]): "examine for which
// (sub-)collections HOPI is best suited and when other indexes perform
// better". The FliX-style router splits the collection into document-graph
// components and assigns each the cheapest tier (tree-interval labels /
// materialized closure / HOPI). This bench quantifies the win on the two
// workload extremes from Table 1.
#include <iostream>

#include "bench_common.h"
#include "datagen/inex.h"
#include "flix/flix.h"
#include "hopi/build.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace hopi;
  using namespace hopi::bench;
  CommandLine cli = ParseFlagsOrDie(argc, argv, {"docs", "seed"});
  size_t docs = static_cast<size_t>(cli.GetInt("docs", 300));
  uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 42));

  PrintHeader("FliX-style tiering vs plain HOPI");
  TablePrinter table({"workload", "index", "build", "stored entries",
                      "tree docs", "closure comps", "hopi comps"});

  auto run = [&table](const std::string& name, collection::Collection* c) {
    // Plain HOPI over everything.
    Stopwatch hopi_watch;
    IndexBuildOptions options;
    options.partition.max_connections = 40000;
    auto hopi_index = BuildIndex(c, options);
    if (!hopi_index.ok()) {
      std::cerr << hopi_index.status() << "\n";
      std::exit(1);
    }
    table.AddRow({name, "HOPI",
                  TablePrinter::Fmt(hopi_watch.ElapsedSeconds(), 2) + "s",
                  TablePrinter::FmtCount(hopi_index->CoverSize()), "-", "-",
                  "-"});
    // FliX.
    Stopwatch flix_watch;
    flix::FlixOptions flix_options;
    flix_options.closure_tier_max_connections = 2000;
    auto flix_index = flix::FlixIndex::Build(*c, flix_options);
    if (!flix_index.ok()) {
      std::cerr << flix_index.status() << "\n";
      std::exit(1);
    }
    const flix::FlixStats& s = flix_index->stats();
    table.AddRow({name, "FliX",
                  TablePrinter::Fmt(flix_watch.ElapsedSeconds(), 2) + "s",
                  TablePrinter::FmtCount(s.hopi_cover_entries +
                                         s.closure_connections),
                  TablePrinter::FmtCount(s.tree_docs),
                  TablePrinter::FmtCount(s.closure_components),
                  TablePrinter::FmtCount(s.hopi_components)});
  };

  {
    collection::Collection dblp = MakeDblp(docs, seed);
    run("DBLP-like", &dblp);
  }
  {
    // Pure-tree INEX (no intra refs): the cleanest tree-tier showcase.
    collection::Collection inex;
    datagen::InexConfig config;
    config.num_docs = docs / 3;
    config.mean_elements_per_doc = 200;
    config.intra_ref_prob = 0.0;
    config.seed = seed;
    if (!datagen::GenerateInexCollection(config, &inex).ok()) return 1;
    run("INEX-like", &inex);
  }
  table.Print(std::cout);
  std::cout << "\nShape check: on the link-free INEX-like collection FliX "
               "serves everything from interval labels (0 stored cover "
               "entries); on DBLP-like it routes only the linked core to "
               "HOPI. The answer to the paper's future-work question: HOPI "
               "earns its space exactly on the linked sub-collections.\n";
  return 0;
}
