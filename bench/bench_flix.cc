// Future-work experiment (paper Conclusions + [25]): "examine for which
// (sub-)collections HOPI is best suited and when other indexes perform
// better". The FliX-style router splits the collection into document-graph
// components and assigns each the cheapest tier (tree-interval labels /
// materialized closure / HOPI). This bench quantifies the win on the two
// workload extremes from Table 1.
//
// The query comparison runs through the engine::QueryEngine facade: the
// FliX router plugs in as just another ReachabilityBackend, so both
// indexes execute the identical path-query workload.
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "datagen/inex.h"
#include "engine/engine.h"
#include "flix/flix.h"
#include "hopi/build.h"
#include "util/timer.h"

namespace {

using namespace hopi;

/// FliX as a ReachabilityBackend. Descendant/ancestor enumeration scans
/// the element universe (FliX keeps no reverse index) — fine at bench
/// scale, and the path-query workload below only probes reachability.
class FlixBackend final : public engine::ReachabilityBackend {
 public:
  FlixBackend(const flix::FlixIndex& index, size_t num_elements)
      : index_(&index), num_elements_(num_elements) {}

  std::string_view Name() const override { return "flix"; }
  bool with_distance() const override { return false; }

  bool IsReachable(NodeId u, NodeId v) const override {
    return index_->IsReachable(u, v);
  }
  std::optional<uint32_t> Distance(NodeId u, NodeId v) const override {
    return index_->Distance(u, v);
  }
  std::vector<NodeId> Descendants(NodeId u) const override {
    std::vector<NodeId> out;
    for (NodeId v = 0; v < num_elements_; ++v) {
      if (v != u && index_->IsReachable(u, v)) out.push_back(v);
    }
    return out;
  }
  std::vector<NodeId> Ancestors(NodeId v) const override {
    std::vector<NodeId> out;
    for (NodeId u = 0; u < num_elements_; ++u) {
      if (u != v && index_->IsReachable(u, v)) out.push_back(u);
    }
    return out;
  }

 private:
  const flix::FlixIndex* index_;
  size_t num_elements_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace hopi::bench;
  CommandLine cli = ParseFlagsOrDie(argc, argv, {"docs", "seed"});
  size_t docs = static_cast<size_t>(cli.GetInt("docs", 300));
  uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 42));

  PrintHeader("FliX-style tiering vs plain HOPI");
  TablePrinter table({"workload", "index", "build", "stored entries",
                      "tree docs", "closure comps", "hopi comps"});
  TablePrinter query_table(
      {"workload", "backend", "query", "matches", "time"});

  auto run = [&table, &query_table](const std::string& name,
                                    collection::Collection* c,
                                    const std::string& query) {
    // Plain HOPI over everything.
    Stopwatch hopi_watch;
    IndexBuildOptions options;
    options.partition.max_connections = 40000;
    auto hopi_index = BuildIndex(c, options);
    if (!hopi_index.ok()) {
      std::cerr << hopi_index.status() << "\n";
      std::exit(1);
    }
    table.AddRow({name, "HOPI",
                  TablePrinter::Fmt(hopi_watch.ElapsedSeconds(), 2) + "s",
                  TablePrinter::FmtCount(hopi_index->CoverSize()), "-", "-",
                  "-"});
    // FliX.
    Stopwatch flix_watch;
    flix::FlixOptions flix_options;
    flix_options.closure_tier_max_connections = 2000;
    auto flix_index = flix::FlixIndex::Build(*c, flix_options);
    if (!flix_index.ok()) {
      std::cerr << flix_index.status() << "\n";
      std::exit(1);
    }
    const flix::FlixStats& s = flix_index->stats();
    table.AddRow({name, "FliX",
                  TablePrinter::Fmt(flix_watch.ElapsedSeconds(), 2) + "s",
                  TablePrinter::FmtCount(s.hopi_cover_entries +
                                         s.closure_connections),
                  TablePrinter::FmtCount(s.tree_docs),
                  TablePrinter::FmtCount(s.closure_components),
                  TablePrinter::FmtCount(s.hopi_components)});

    // Identical path-query workload through the facade, one engine per
    // backend.
    engine::QueryEngine hopi_engine = engine::QueryEngine::ForIndex(
        *hopi_index);
    engine::QueryEngine flix_engine(
        *c, std::make_unique<FlixBackend>(*flix_index, c->NumElements()));
    for (auto* e : {&hopi_engine, &flix_engine}) {
      Stopwatch watch;
      auto response = e->Query({.expression = query, .max_matches = 10000});
      if (!response.ok()) {
        std::cerr << response.status() << "\n";
        std::exit(1);
      }
      query_table.AddRow(
          {name, std::string(e->backend().Name()), query,
           TablePrinter::FmtCount(response->count),
           TablePrinter::FmtCount(
               static_cast<uint64_t>(watch.ElapsedMicros())) +
               "us"});
    }
  };

  {
    collection::Collection dblp = MakeDblp(docs, seed);
    run("DBLP-like", &dblp, "//inproceedings//cite//title");
  }
  {
    // Pure-tree INEX (no intra refs): the cleanest tree-tier showcase.
    collection::Collection inex;
    datagen::InexConfig config;
    config.num_docs = docs / 3;
    config.mean_elements_per_doc = 200;
    config.intra_ref_prob = 0.0;
    config.seed = seed;
    if (!datagen::GenerateInexCollection(config, &inex).ok()) return 1;
    run("INEX-like", &inex, "//article//sec//p");
  }
  table.Print(std::cout);
  std::cout << "\n";
  query_table.Print(std::cout);
  std::cout << "\nShape check: on the link-free INEX-like collection FliX "
               "serves everything from interval labels (0 stored cover "
               "entries); on DBLP-like it routes only the linked core to "
               "HOPI. Both answer the same facade queries with identical "
               "match counts. The answer to the paper's future-work "
               "question: HOPI earns its space exactly on the linked "
               "sub-collections.\n";
  return 0;
}
