// Sec 4.2 ablation: preselecting cross-partition link targets as center
// nodes. Paper: "some decrease in cover size, but the effects were
// marginal (about 10,000 entries less than the standard algorithm)".
#include <iostream>

#include "bench_common.h"
#include "hopi/build.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace hopi;
  using namespace hopi::bench;
  CommandLine cli = ParseFlagsOrDie(argc, argv, {"docs", "seed"});
  size_t docs = static_cast<size_t>(cli.GetInt("docs", 500));
  uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 42));

  PrintHeader("Sec 4.2: center-node preselection ablation");
  collection::Collection c = MakeDblp(docs, seed);

  TablePrinter table({"preselect", "time", "entries", "delta"});
  uint64_t base_entries = 0;
  for (bool preselect : {false, true}) {
    IndexBuildOptions options;
    options.partition.strategy = partition::PartitionStrategy::kTcSizeAware;
    options.partition.max_connections = 40000;
    options.partition.seed = seed;
    options.preselect_link_targets = preselect;
    Stopwatch watch;
    IndexBuildStats stats;
    auto index = BuildIndex(&c, options, &stats);
    if (!index.ok()) {
      std::cerr << index.status() << "\n";
      return 1;
    }
    std::string delta = "-";
    if (!preselect) {
      base_entries = stats.cover_entries;
    } else {
      int64_t diff = static_cast<int64_t>(stats.cover_entries) -
                     static_cast<int64_t>(base_entries);
      delta = (diff <= 0 ? "" : "+") + std::to_string(diff);
    }
    table.AddRow({preselect ? "on" : "off",
                  TablePrinter::Fmt(watch.ElapsedSeconds(), 2) + "s",
                  TablePrinter::FmtCount(stats.cover_entries), delta});
  }
  table.Print(std::cout);
  std::cout << "\nPaper: marginal improvement (~10k entries of ~10M on "
               "DBLP). Shape check: 'on' should be slightly smaller or "
               "about equal, never dramatically larger.\n";
  return 0;
}
