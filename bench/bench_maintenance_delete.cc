// Sec 7.3: index maintenance under document deletions.
//
// Paper findings reproduced here:
//   - ~60% of DBLP documents separate the document-level graph, so the
//     Theorem-2 fast path applies; separation testing is cheap (2s on
//     paper hardware) and fast deletion ~6.5x that (13s).
//   - Non-separating deletions cost grows with the number of connected
//     documents; the worst hubs approach full-rebuild cost (partial
//     closure recomputation up to 5% of the collection).
//   - On INEX every document separates (no inter-document links).
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "hopi/build.h"
#include "util/stats.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace hopi;
  using namespace hopi::bench;
  CommandLine cli =
      ParseFlagsOrDie(argc, argv, {"docs", "seed", "deletions"});
  size_t docs = static_cast<size_t>(cli.GetInt("docs", 400));
  uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 42));
  size_t deletions = static_cast<size_t>(cli.GetInt("deletions", 60));

  PrintHeader("Sec 7.3: document deletion on DBLP-like collection");
  collection::Collection c = MakeDblp(docs, seed);

  IndexBuildOptions build_options;
  build_options.partition.strategy =
      partition::PartitionStrategy::kTcSizeAware;
  build_options.partition.max_connections = 50000;
  Stopwatch build_watch;
  auto index = BuildIndex(&c, build_options);
  if (!index.ok()) {
    std::cerr << index.status() << "\n";
    return 1;
  }
  double full_build_seconds = build_watch.ElapsedSeconds();

  // Fraction of documents that separate G_D (paper: ~60% on DBLP).
  size_t separating = 0, live = 0;
  std::vector<double> septest_seconds;
  for (collection::DocId d = 0; d < c.NumDocuments(); ++d) {
    if (!c.IsLive(d)) continue;
    ++live;
    Stopwatch watch;
    if (index->SeparatesDocumentGraph(d)) ++separating;
    septest_seconds.push_back(watch.ElapsedSeconds());
  }
  Summary sep_summary = Summarize(septest_seconds);
  std::cout << "separating documents: " << separating << " / " << live
            << " = "
            << TablePrinter::Fmt(100.0 * separating / std::max<size_t>(live, 1),
                                 1)
            << "% (paper: ~60%)\n";
  std::cout << "separation test: mean "
            << TablePrinter::Fmt(sep_summary.mean * 1e3, 3) << "ms, max "
            << TablePrinter::Fmt(sep_summary.max * 1e3, 3) << "ms\n\n";

  // Delete a sample of documents, split by path taken.
  Rng rng(seed);
  std::vector<double> fast_seconds, general_seconds;
  std::vector<double> general_fractions;
  size_t deleted = 0;
  std::vector<collection::DocId> order;
  for (collection::DocId d = 0; d < c.NumDocuments(); ++d) {
    if (c.IsLive(d)) order.push_back(d);
  }
  rng.Shuffle(&order);
  for (collection::DocId d : order) {
    if (deleted >= deletions) break;
    if (!c.IsLive(d)) continue;
    DeleteStats stats;
    Status s = index->DeleteDocument(d, &stats);
    if (!s.ok()) {
      std::cerr << "delete failed: " << s << "\n";
      return 1;
    }
    ++deleted;
    if (stats.separated) {
      fast_seconds.push_back(stats.total_seconds);
    } else {
      general_seconds.push_back(stats.total_seconds);
      general_fractions.push_back(stats.recompute_fraction);
    }
  }

  TablePrinter table({"path", "count", "mean", "median", "max"});
  auto add_row = [&table](const std::string& name, std::vector<double> v) {
    Summary s = Summarize(std::move(v));
    table.AddRow({name, TablePrinter::FmtCount(s.count),
                  TablePrinter::Fmt(s.mean * 1e3, 2) + "ms",
                  TablePrinter::Fmt(s.median * 1e3, 2) + "ms",
                  TablePrinter::Fmt(s.max * 1e3, 2) + "ms"});
  };
  add_row("fast (Thm 2)", fast_seconds);
  add_row("general (Thm 3)", general_seconds);
  table.Print(std::cout);

  if (!general_fractions.empty()) {
    Summary f = Summarize(general_fractions);
    std::cout << "general-path partial closure recomputation: mean "
              << TablePrinter::Fmt(100 * f.mean, 1) << "% of elements, max "
              << TablePrinter::Fmt(100 * f.max, 1)
              << "% (paper: up to 5% for hub documents)\n";
  }
  std::cout << "full index rebuild for comparison: "
            << TablePrinter::Fmt(full_build_seconds, 2)
            << "s (worst general deletions should approach this)\n";

  // INEX: every document separates.
  PrintHeader("Sec 7.3: INEX-like collection (link-free)");
  collection::Collection inex = MakeInex(60, 200, seed);
  auto inex_index = BuildIndex(&inex, build_options);
  if (!inex_index.ok()) {
    std::cerr << inex_index.status() << "\n";
    return 1;
  }
  size_t inex_separating = 0;
  for (collection::DocId d = 0; d < inex.NumDocuments(); ++d) {
    if (inex_index->SeparatesDocumentGraph(d)) ++inex_separating;
  }
  std::cout << "separating documents: " << inex_separating << " / "
            << inex.NumDocuments()
            << " (paper: every INEX document separates)\n";
  return 0;
}
