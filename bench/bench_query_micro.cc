// Query micro-benchmarks (google-benchmark): HOPI label intersection vs
// the materialized transitive closure, in memory and through the
// LIN/LOUT store — both via the raw backends and via the QueryEngine
// facade, whose batch path dedupes probes and caches hot label sets.
// Query performance was evaluated in the EDBT 2004 paper [26]; this
// harness provides the comparable numbers for our build.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "engine/backends.h"
#include "engine/engine.h"
#include "hopi/baseline.h"
#include "hopi/build.h"
#include "storage/linlout.h"
#include "util/rng.h"

namespace {

using namespace hopi;
using namespace hopi::bench;

struct Fixture {
  collection::Collection collection;
  std::unique_ptr<HopiIndex> index;
  std::unique_ptr<HopiIndex> dist_index;
  std::unique_ptr<TransitiveClosureIndex> closure;
  std::unique_ptr<storage::LinLoutStore> store;
  std::unique_ptr<engine::QueryEngine> engine_hopi;
  std::unique_ptr<engine::QueryEngine> engine_store;
  std::unique_ptr<engine::QueryEngine> engine_closure;

  static Fixture& Get() {
    static Fixture f;
    return f;
  }

  Fixture() {
    collection = MakeDblp(300, 42);
    IndexBuildOptions options;
    options.partition.strategy = partition::PartitionStrategy::kTcSizeAware;
    options.partition.max_connections = 30000;
    auto built = BuildIndex(&collection, options);
    if (!built.ok()) std::abort();
    index = std::make_unique<HopiIndex>(std::move(built).value());
    options.with_distance = true;
    auto dist = BuildIndex(&collection, options);
    if (!dist.ok()) std::abort();
    dist_index = std::make_unique<HopiIndex>(std::move(dist).value());
    closure = std::make_unique<TransitiveClosureIndex>(
        TransitiveClosureIndex::Build(collection.ElementGraph(), true));
    store = std::make_unique<storage::LinLoutStore>(
        storage::LinLoutStore::FromCover(index->cover(), false));
    engine_hopi = std::make_unique<engine::QueryEngine>(
        engine::QueryEngine::ForIndex(*index));
    engine_store = std::make_unique<engine::QueryEngine>(
        engine::QueryEngine::ForStore(collection, *store));
    engine_closure = std::make_unique<engine::QueryEngine>(
        engine::QueryEngine::ForClosure(collection, *closure, true));
  }

  std::pair<NodeId, NodeId> RandomPair(Rng* rng) const {
    return {static_cast<NodeId>(rng->NextBounded(collection.NumElements())),
            static_cast<NodeId>(rng->NextBounded(collection.NumElements()))};
  }

  /// A batch with the skew a reachability join produces: probes drawn
  /// from a small pool of hot sources/targets, so dedup and the label
  /// cache both have something to exploit.
  std::vector<engine::NodePair> SkewedBatch(size_t size, Rng* rng) const {
    std::vector<engine::NodePair> pool;
    for (size_t i = 0; i < size / 4; ++i) pool.push_back(RandomPair(rng));
    std::vector<engine::NodePair> batch;
    batch.reserve(size);
    for (size_t i = 0; i < size; ++i) {
      batch.push_back(pool[rng->NextBounded(pool.size())]);
    }
    return batch;
  }
};

void BM_Reachability_Hopi(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  Rng rng(1);
  for (auto _ : state) {
    auto [u, v] = f.RandomPair(&rng);
    benchmark::DoNotOptimize(f.index->IsReachable(u, v));
  }
}
BENCHMARK(BM_Reachability_Hopi);

void BM_Reachability_MaterializedTC(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  Rng rng(1);
  for (auto _ : state) {
    auto [u, v] = f.RandomPair(&rng);
    benchmark::DoNotOptimize(f.closure->IsReachable(u, v));
  }
}
BENCHMARK(BM_Reachability_MaterializedTC);

void BM_Reachability_LinLoutStore(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  Rng rng(1);
  for (auto _ : state) {
    auto [u, v] = f.RandomPair(&rng);
    benchmark::DoNotOptimize(f.store->TestConnection(u, v));
  }
}
BENCHMARK(BM_Reachability_LinLoutStore);

void BM_Distance_Hopi(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  Rng rng(2);
  for (auto _ : state) {
    auto [u, v] = f.RandomPair(&rng);
    benchmark::DoNotOptimize(f.dist_index->Distance(u, v));
  }
}
BENCHMARK(BM_Distance_Hopi);

void BM_Distance_MaterializedTC(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  Rng rng(2);
  for (auto _ : state) {
    auto [u, v] = f.RandomPair(&rng);
    benchmark::DoNotOptimize(f.closure->Distance(u, v));
  }
}
BENCHMARK(BM_Distance_MaterializedTC);

void BM_Descendants_Hopi(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  Rng rng(3);
  for (auto _ : state) {
    NodeId u =
        static_cast<NodeId>(rng.NextBounded(f.collection.NumElements()));
    benchmark::DoNotOptimize(f.index->Descendants(u));
  }
}
BENCHMARK(BM_Descendants_Hopi);

void BM_Descendants_MaterializedTC(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  Rng rng(3);
  for (auto _ : state) {
    NodeId u =
        static_cast<NodeId>(rng.NextBounded(f.collection.NumElements()));
    benchmark::DoNotOptimize(f.closure->Descendants(u));
  }
}
BENCHMARK(BM_Descendants_MaterializedTC);

void BM_Descendants_LinLoutStore(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  Rng rng(3);
  for (auto _ : state) {
    NodeId u =
        static_cast<NodeId>(rng.NextBounded(f.collection.NumElements()));
    benchmark::DoNotOptimize(f.store->Descendants(u));
  }
}
BENCHMARK(BM_Descendants_LinLoutStore);

// ---- the QueryEngine facade: batched, deduped, label-cached ----

void RunEngineBatch(benchmark::State& state, engine::QueryEngine* engine) {
  Fixture& f = Fixture::Get();
  Rng rng(4);
  std::vector<engine::NodePair> batch = f.SkewedBatch(256, &rng);
  size_t hits = 0, misses = 0, probes = 0;
  for (auto _ : state) {
    engine::BatchResponse r = engine->Batch({.pairs = batch});
    benchmark::DoNotOptimize(&r);
    hits += r.stats.cache_hits;
    misses += r.stats.cache_misses;
    probes += r.stats.probes;
  }
  state.SetItemsProcessed(static_cast<int64_t>(probes));
  if (hits + misses > 0) {
    state.counters["cache_hit_rate"] =
        static_cast<double>(hits) / static_cast<double>(hits + misses);
  }
}

void BM_EngineBatch_Hopi(benchmark::State& state) {
  RunEngineBatch(state, Fixture::Get().engine_hopi.get());
}
BENCHMARK(BM_EngineBatch_Hopi);

void BM_EngineBatch_LinLoutStore(benchmark::State& state) {
  RunEngineBatch(state, Fixture::Get().engine_store.get());
}
BENCHMARK(BM_EngineBatch_LinLoutStore);

void BM_EngineBatch_MaterializedTC(benchmark::State& state) {
  RunEngineBatch(state, Fixture::Get().engine_closure.get());
}
BENCHMARK(BM_EngineBatch_MaterializedTC);

// The same skewed workload as scalar calls, for the batching delta.
void BM_EngineScalarLoop_LinLoutStore(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  Rng rng(4);
  std::vector<engine::NodePair> batch = f.SkewedBatch(256, &rng);
  size_t probes = 0;
  for (auto _ : state) {
    for (const auto& [u, v] : batch) {
      benchmark::DoNotOptimize(f.store->TestConnection(u, v));
    }
    probes += batch.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(probes));
}
BENCHMARK(BM_EngineScalarLoop_LinLoutStore);

void BM_EnginePathQuery_Hopi(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  for (auto _ : state) {
    auto r = f.engine_hopi->Query(
        {.expression = "//inproceedings//cite//title", .max_matches = 100});
    if (!r.ok()) std::abort();
    benchmark::DoNotOptimize(r->count);
  }
}
BENCHMARK(BM_EnginePathQuery_Hopi);

}  // namespace

BENCHMARK_MAIN();
