// Query micro-benchmarks (google-benchmark): HOPI label intersection vs
// the materialized transitive closure, in memory and through the
// LIN/LOUT store — both via the raw backends and via the QueryEngine
// facade, whose batch path dedupes probes and caches hot label sets.
// Query performance was evaluated in the EDBT 2004 paper [26]; this
// harness provides the comparable numbers for our build.
//
// Beyond the google-benchmark tables, this binary owns the join-kernel
// sweep (--sweep): a controlled skew × selectivity matrix over the
// vectorized label-join kernels, reported as BENCH_join_kernel.json.
// --kernel={auto,scalar,sse2,avx2,gallop} pins the process-wide kernel
// for everything this binary runs (both flags are stripped before
// benchmark::Initialize sees the command line).
#include <benchmark/benchmark.h>

#include <chrono>
#include <string_view>

#include "bench_common.h"
#include "engine/backends.h"
#include "engine/engine.h"
#include "hopi/baseline.h"
#include "hopi/build.h"
#include "storage/linlout.h"
#include "twohop/join_kernel.h"
#include "util/cpu.h"
#include "util/rng.h"

namespace {

using namespace hopi;
using namespace hopi::bench;

struct Fixture {
  collection::Collection collection;
  std::unique_ptr<HopiIndex> index;
  std::unique_ptr<HopiIndex> dist_index;
  std::unique_ptr<TransitiveClosureIndex> closure;
  std::unique_ptr<storage::LinLoutStore> store;
  std::unique_ptr<engine::QueryEngine> engine_hopi;
  std::unique_ptr<engine::QueryEngine> engine_store;
  std::unique_ptr<engine::QueryEngine> engine_closure;

  static Fixture& Get() {
    static Fixture f;
    return f;
  }

  Fixture() {
    collection = MakeDblp(300, 42);
    IndexBuildOptions options;
    options.partition.strategy = partition::PartitionStrategy::kTcSizeAware;
    options.partition.max_connections = 30000;
    auto built = BuildIndex(&collection, options);
    if (!built.ok()) std::abort();
    index = std::make_unique<HopiIndex>(std::move(built).value());
    options.with_distance = true;
    auto dist = BuildIndex(&collection, options);
    if (!dist.ok()) std::abort();
    dist_index = std::make_unique<HopiIndex>(std::move(dist).value());
    closure = std::make_unique<TransitiveClosureIndex>(
        TransitiveClosureIndex::Build(collection.ElementGraph(), true));
    store = std::make_unique<storage::LinLoutStore>(
        storage::LinLoutStore::FromCover(index->cover(), false));
    engine_hopi = std::make_unique<engine::QueryEngine>(
        engine::QueryEngine::ForIndex(*index));
    engine_store = std::make_unique<engine::QueryEngine>(
        engine::QueryEngine::ForStore(collection, *store));
    engine_closure = std::make_unique<engine::QueryEngine>(
        engine::QueryEngine::ForClosure(collection, *closure, true));
  }

  std::pair<NodeId, NodeId> RandomPair(Rng* rng) const {
    return {static_cast<NodeId>(rng->NextBounded(collection.NumElements())),
            static_cast<NodeId>(rng->NextBounded(collection.NumElements()))};
  }

  /// A batch with the skew a reachability join produces: probes drawn
  /// from a small pool of hot sources/targets, so dedup and the label
  /// cache both have something to exploit.
  std::vector<engine::NodePair> SkewedBatch(size_t size, Rng* rng) const {
    std::vector<engine::NodePair> pool;
    for (size_t i = 0; i < size / 4; ++i) pool.push_back(RandomPair(rng));
    std::vector<engine::NodePair> batch;
    batch.reserve(size);
    for (size_t i = 0; i < size; ++i) {
      batch.push_back(pool[rng->NextBounded(pool.size())]);
    }
    return batch;
  }
};

void BM_Reachability_Hopi(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  Rng rng(1);
  for (auto _ : state) {
    auto [u, v] = f.RandomPair(&rng);
    benchmark::DoNotOptimize(f.index->IsReachable(u, v));
  }
}
BENCHMARK(BM_Reachability_Hopi);

void BM_Reachability_MaterializedTC(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  Rng rng(1);
  for (auto _ : state) {
    auto [u, v] = f.RandomPair(&rng);
    benchmark::DoNotOptimize(f.closure->IsReachable(u, v));
  }
}
BENCHMARK(BM_Reachability_MaterializedTC);

void BM_Reachability_LinLoutStore(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  Rng rng(1);
  for (auto _ : state) {
    auto [u, v] = f.RandomPair(&rng);
    benchmark::DoNotOptimize(f.store->TestConnection(u, v));
  }
}
BENCHMARK(BM_Reachability_LinLoutStore);

void BM_Distance_Hopi(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  Rng rng(2);
  for (auto _ : state) {
    auto [u, v] = f.RandomPair(&rng);
    benchmark::DoNotOptimize(f.dist_index->Distance(u, v));
  }
}
BENCHMARK(BM_Distance_Hopi);

void BM_Distance_MaterializedTC(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  Rng rng(2);
  for (auto _ : state) {
    auto [u, v] = f.RandomPair(&rng);
    benchmark::DoNotOptimize(f.closure->Distance(u, v));
  }
}
BENCHMARK(BM_Distance_MaterializedTC);

void BM_Descendants_Hopi(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  Rng rng(3);
  for (auto _ : state) {
    NodeId u =
        static_cast<NodeId>(rng.NextBounded(f.collection.NumElements()));
    benchmark::DoNotOptimize(f.index->Descendants(u));
  }
}
BENCHMARK(BM_Descendants_Hopi);

void BM_Descendants_MaterializedTC(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  Rng rng(3);
  for (auto _ : state) {
    NodeId u =
        static_cast<NodeId>(rng.NextBounded(f.collection.NumElements()));
    benchmark::DoNotOptimize(f.closure->Descendants(u));
  }
}
BENCHMARK(BM_Descendants_MaterializedTC);

void BM_Descendants_LinLoutStore(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  Rng rng(3);
  for (auto _ : state) {
    NodeId u =
        static_cast<NodeId>(rng.NextBounded(f.collection.NumElements()));
    benchmark::DoNotOptimize(f.store->Descendants(u));
  }
}
BENCHMARK(BM_Descendants_LinLoutStore);

// ---- the QueryEngine facade: batched, deduped, label-cached ----

void RunEngineBatch(benchmark::State& state, engine::QueryEngine* engine) {
  Fixture& f = Fixture::Get();
  Rng rng(4);
  std::vector<engine::NodePair> batch = f.SkewedBatch(256, &rng);
  size_t hits = 0, misses = 0, probes = 0;
  for (auto _ : state) {
    engine::BatchResponse r = engine->Batch({.pairs = batch});
    benchmark::DoNotOptimize(&r);
    hits += r.stats.cache_hits;
    misses += r.stats.cache_misses;
    probes += r.stats.probes;
  }
  state.SetItemsProcessed(static_cast<int64_t>(probes));
  if (hits + misses > 0) {
    state.counters["cache_hit_rate"] =
        static_cast<double>(hits) / static_cast<double>(hits + misses);
  }
}

void BM_EngineBatch_Hopi(benchmark::State& state) {
  RunEngineBatch(state, Fixture::Get().engine_hopi.get());
}
BENCHMARK(BM_EngineBatch_Hopi);

void BM_EngineBatch_LinLoutStore(benchmark::State& state) {
  RunEngineBatch(state, Fixture::Get().engine_store.get());
}
BENCHMARK(BM_EngineBatch_LinLoutStore);

void BM_EngineBatch_MaterializedTC(benchmark::State& state) {
  RunEngineBatch(state, Fixture::Get().engine_closure.get());
}
BENCHMARK(BM_EngineBatch_MaterializedTC);

// The same skewed workload as scalar calls, for the batching delta.
void BM_EngineScalarLoop_LinLoutStore(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  Rng rng(4);
  std::vector<engine::NodePair> batch = f.SkewedBatch(256, &rng);
  size_t probes = 0;
  for (auto _ : state) {
    for (const auto& [u, v] : batch) {
      benchmark::DoNotOptimize(f.store->TestConnection(u, v));
    }
    probes += batch.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(probes));
}
BENCHMARK(BM_EngineScalarLoop_LinLoutStore);

void BM_EnginePathQuery_Hopi(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  for (auto _ : state) {
    auto r = f.engine_hopi->Query(
        {.expression = "//inproceedings//cite//title", .max_matches = 100});
    if (!r.ok()) std::abort();
    benchmark::DoNotOptimize(r->count);
  }
}
BENCHMARK(BM_EnginePathQuery_Hopi);

// ---- the join-kernel sweep (--sweep -> BENCH_join_kernel.json) ----
//
// Synthetic label pairs with controlled skew and selectivity, so each
// kernel is measured on exactly the shape its dispatch rule targets:
//
//   ratio    |Lout| / |Lin| in {1, 8, 64} (the small side stays 8)
//   mix      positive (every probe shares a center) vs negative-heavy
//            (7/8 of the probes share nothing)
//
// The baseline column is the post-micro-fix scalar JoinLabelRanges
// over the same labels in AoS layout — the exact code every probe ran
// before this subsystem — so the speedup numbers in the report are
// apples-to-apples.

/// One pre-generated probe: the same label pair in both layouts.
struct SweepProbe {
  NodeId u, v;
  std::vector<twohop::LabelEntry> lout_aos, lin_aos;
  std::vector<uint32_t> lout_centers, lout_dists, lin_centers, lin_dists;
  twohop::LabelSummary lout_summary, lin_summary;

  twohop::JoinView OutView() const {
    return {lout_centers.data(), lout_dists.data(), lout_centers.size(), 1,
            lout_summary};
  }
  twohop::JoinView InView() const {
    return {lin_centers.data(), lin_dists.data(), lin_centers.size(), 1,
            lin_summary};
  }
};

std::vector<uint32_t> SortedUniqueCenters(size_t n, uint32_t parity,
                                          Rng* rng) {
  // Even/odd parity keeps positive planting easy and negative probes
  // honestly interleaved (disjoint sets, overlapping ranges — the shape
  // the pre-kernel disjoint-range short-circuit can NOT reject). Both
  // sides spread over the same ~1M-center span regardless of n, so a
  // skewed pair really interleaves end to end instead of the small side
  // exhausting after a sliver of the large one.
  constexpr uint32_t kSpan = 1 << 20;
  std::vector<uint32_t> centers;
  uint32_t mean_step = std::max<uint32_t>(1, kSpan / static_cast<uint32_t>(n));
  uint32_t c = parity + 2 * static_cast<uint32_t>(rng->NextBounded(64));
  for (size_t i = 0; i < n; ++i) {
    centers.push_back(c);
    c += 2 * (1 + static_cast<uint32_t>(rng->NextBounded(mean_step)));
  }
  return centers;
}

SweepProbe MakeSweepProbe(size_t lout_n, size_t lin_n, bool positive,
                          Rng* rng) {
  SweepProbe p;
  // Node ids far outside the center universe: no accidental self-entry
  // hits, so `positive` alone decides connectivity.
  p.u = 0xF0000001;
  p.v = 0xF0000002;
  std::vector<uint32_t> lout_c = SortedUniqueCenters(lout_n, 0, rng);
  std::vector<uint32_t> lin_c = SortedUniqueCenters(lin_n, 1, rng);
  if (positive && !lout_c.empty() && !lin_c.empty()) {
    // Plant one shared center (keep both sets sorted + unique).
    uint32_t shared = lout_c[rng->NextBounded(lout_c.size())];
    lin_c[rng->NextBounded(lin_c.size())] = shared;
    std::sort(lin_c.begin(), lin_c.end());
    lin_c.erase(std::unique(lin_c.begin(), lin_c.end()), lin_c.end());
  }
  auto fill = [rng](const std::vector<uint32_t>& centers,
                    std::vector<twohop::LabelEntry>* aos,
                    std::vector<uint32_t>* soa_c, std::vector<uint32_t>* soa_d,
                    twohop::LabelSummary* summary) {
    *summary = twohop::LabelSummary::Empty();
    for (uint32_t c : centers) {
      uint32_t d = static_cast<uint32_t>(rng->NextBounded(16));
      aos->push_back({c, d});
      soa_c->push_back(c);
      soa_d->push_back(d);
      summary->Add(c);
    }
  };
  fill(lout_c, &p.lout_aos, &p.lout_centers, &p.lout_dists, &p.lout_summary);
  fill(lin_c, &p.lin_aos, &p.lin_centers, &p.lin_dists, &p.lin_summary);
  return p;
}

/// Probes/second of `fn` over the batch, timed over enough repetitions
/// to dominate clock noise.
template <typename Fn>
double MeasureProbesPerSec(const std::vector<SweepProbe>& batch, Fn fn) {
  using clock = std::chrono::steady_clock;
  // Warm-up pass (page in the arenas, settle the branch predictors).
  size_t sink = 0;
  for (const SweepProbe& p : batch) sink += fn(p);
  benchmark::DoNotOptimize(sink);
  size_t iters = 0;
  clock::time_point start = clock::now();
  double elapsed = 0;
  do {
    for (const SweepProbe& p : batch) sink += fn(p);
    benchmark::DoNotOptimize(sink);
    ++iters;
    elapsed = std::chrono::duration<double>(clock::now() - start).count();
  } while (elapsed < 0.25);
  return static_cast<double>(batch.size()) * static_cast<double>(iters) /
         elapsed;
}

void RunJoinKernelSweep() {
  constexpr size_t kBatch = 2048;
  constexpr size_t kSmall = 8;
  PrintHeader("join-kernel sweep (probes/s, batch of 2048)");
  BenchReport report("join_kernel");
  report.Add("probes_per_batch", static_cast<uint64_t>(kBatch));
  report.Add("small_side_entries", static_cast<uint64_t>(kSmall));
  report.Add("cpu_sse2", static_cast<uint64_t>(util::CpuInfo().sse2));
  report.Add("cpu_avx2", static_cast<uint64_t>(util::CpuInfo().avx2));
  TablePrinter table({"workload", "baseline", "scalar", "gallop", "sse2",
                      "avx2", "auto", "speedup"});
  double negheavy_skew_speedup = 0;
  for (size_t ratio : {size_t{1}, size_t{8}, size_t{64}}) {
    for (bool negheavy : {false, true}) {
      Rng rng(1000 * ratio + negheavy);
      std::vector<SweepProbe> batch;
      batch.reserve(kBatch);
      for (size_t i = 0; i < kBatch; ++i) {
        // Negative-heavy = 1 positive in 8, the selectivity of a real
        // filter push-down; positive mix = every probe connects.
        bool positive = negheavy ? i % 8 == 0 : true;
        batch.push_back(MakeSweepProbe(kSmall * ratio, kSmall, positive,
                                       &rng));
      }
      std::string workload = "r" + std::to_string(ratio) +
                             (negheavy ? "_negheavy" : "_positive");
      double baseline = MeasureProbesPerSec(batch, [](const SweepProbe& p) {
        return twohop::JoinLabelRanges(p.u, p.v, p.lout_aos.data(),
                                       p.lout_aos.size(), p.lin_aos.data(),
                                       p.lin_aos.size(),
                                       /*want_distance=*/false)
            .connected;
      });
      report.Add(workload + "_baseline_probes_per_s", baseline);
      std::vector<std::string> row = {
          workload, TablePrinter::FmtCount(static_cast<uint64_t>(baseline))};
      double auto_rate = 0;
      for (twohop::JoinKernel k :
           {twohop::JoinKernel::kScalar, twohop::JoinKernel::kGallop,
            twohop::JoinKernel::kSSE2, twohop::JoinKernel::kAVX2,
            twohop::JoinKernel::kAuto}) {
        if (!twohop::JoinKernelSupported(k)) {
          row.push_back("-");
          continue;
        }
        double rate = MeasureProbesPerSec(batch, [k](const SweepProbe& p) {
          return twohop::JoinViews(p.u, p.v, p.OutView(), p.InView(),
                                   /*want_distance=*/false, k)
              .connected;
        });
        report.Add(workload + "_" +
                       std::string(twohop::JoinKernelName(k)) +
                       "_probes_per_s",
                   rate);
        row.push_back(TablePrinter::FmtCount(static_cast<uint64_t>(rate)));
        if (k == twohop::JoinKernel::kAuto) auto_rate = rate;
      }
      double speedup = baseline > 0 ? auto_rate / baseline : 0;
      report.Add(workload + "_speedup_auto_vs_baseline", speedup);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2fx", speedup);
      row.push_back(buf);
      table.AddRow(row);
      if (ratio == 8 && negheavy) negheavy_skew_speedup = speedup;
    }
  }
  table.Print(std::cout);
  // The acceptance headline: auto dispatch on the negative-heavy 8x-skewed
  // batch vs the pre-subsystem scalar join. (The 64x tier is dominated by
  // the raw 512-entry scan and is reported per-cell above.)
  report.Add("speedup_negheavy_skewed_auto_vs_baseline",
             negheavy_skew_speedup);
  report.Write();
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the sweep flags before google-benchmark parses the rest.
  bool sweep = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--kernel=", 0) == 0) {
      std::optional<hopi::twohop::JoinKernel> k =
          hopi::twohop::ParseJoinKernel(arg.substr(9));
      if (!k) {
        std::cerr << "unknown --kernel value '" << arg.substr(9)
                  << "' (auto|scalar|gallop|sse2|avx2)\n";
        return 2;
      }
      hopi::twohop::SetForcedJoinKernel(*k);
      continue;
    }
    if (arg == "--sweep") {
      sweep = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  if (sweep) {
    RunJoinKernelSweep();
    return 0;
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
