// Query micro-benchmarks (google-benchmark): HOPI label intersection vs
// the materialized transitive closure, in memory and through the
// LIN/LOUT store. Query performance was evaluated in the EDBT 2004 paper
// [26]; this harness provides the comparable numbers for our build.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "hopi/baseline.h"
#include "hopi/build.h"
#include "storage/linlout.h"
#include "util/rng.h"

namespace {

using namespace hopi;
using namespace hopi::bench;

struct Fixture {
  collection::Collection collection;
  std::unique_ptr<HopiIndex> index;
  std::unique_ptr<HopiIndex> dist_index;
  std::unique_ptr<TransitiveClosureIndex> closure;
  std::unique_ptr<storage::LinLoutStore> store;

  static Fixture& Get() {
    static Fixture f = Make();
    return f;
  }

  static Fixture Make() {
    Fixture f;
    f.collection = MakeDblp(300, 42);
    IndexBuildOptions options;
    options.partition.strategy = partition::PartitionStrategy::kTcSizeAware;
    options.partition.max_connections = 30000;
    auto index = BuildIndex(&f.collection, options);
    if (!index.ok()) std::abort();
    f.index = std::make_unique<HopiIndex>(std::move(index).value());
    options.with_distance = true;
    auto dist = BuildIndex(&f.collection, options);
    if (!dist.ok()) std::abort();
    f.dist_index = std::make_unique<HopiIndex>(std::move(dist).value());
    f.closure = std::make_unique<TransitiveClosureIndex>(
        TransitiveClosureIndex::Build(f.collection.ElementGraph(), true));
    f.store = std::make_unique<storage::LinLoutStore>(
        storage::LinLoutStore::FromCover(f.index->cover(), false));
    return f;
  }

  std::pair<NodeId, NodeId> RandomPair(Rng* rng) const {
    return {static_cast<NodeId>(rng->NextBounded(collection.NumElements())),
            static_cast<NodeId>(rng->NextBounded(collection.NumElements()))};
  }
};

void BM_Reachability_Hopi(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  Rng rng(1);
  for (auto _ : state) {
    auto [u, v] = f.RandomPair(&rng);
    benchmark::DoNotOptimize(f.index->IsReachable(u, v));
  }
}
BENCHMARK(BM_Reachability_Hopi);

void BM_Reachability_MaterializedTC(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  Rng rng(1);
  for (auto _ : state) {
    auto [u, v] = f.RandomPair(&rng);
    benchmark::DoNotOptimize(f.closure->IsReachable(u, v));
  }
}
BENCHMARK(BM_Reachability_MaterializedTC);

void BM_Reachability_LinLoutStore(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  Rng rng(1);
  for (auto _ : state) {
    auto [u, v] = f.RandomPair(&rng);
    benchmark::DoNotOptimize(f.store->TestConnection(u, v));
  }
}
BENCHMARK(BM_Reachability_LinLoutStore);

void BM_Distance_Hopi(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  Rng rng(2);
  for (auto _ : state) {
    auto [u, v] = f.RandomPair(&rng);
    benchmark::DoNotOptimize(f.dist_index->Distance(u, v));
  }
}
BENCHMARK(BM_Distance_Hopi);

void BM_Distance_MaterializedTC(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  Rng rng(2);
  for (auto _ : state) {
    auto [u, v] = f.RandomPair(&rng);
    benchmark::DoNotOptimize(f.closure->Distance(u, v));
  }
}
BENCHMARK(BM_Distance_MaterializedTC);

void BM_Descendants_Hopi(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  Rng rng(3);
  for (auto _ : state) {
    NodeId u =
        static_cast<NodeId>(rng.NextBounded(f.collection.NumElements()));
    benchmark::DoNotOptimize(f.index->Descendants(u));
  }
}
BENCHMARK(BM_Descendants_Hopi);

void BM_Descendants_MaterializedTC(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  Rng rng(3);
  for (auto _ : state) {
    NodeId u =
        static_cast<NodeId>(rng.NextBounded(f.collection.NumElements()));
    benchmark::DoNotOptimize(f.closure->Descendants(u));
  }
}
BENCHMARK(BM_Descendants_MaterializedTC);

void BM_Descendants_LinLoutStore(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  Rng rng(3);
  for (auto _ : state) {
    NodeId u =
        static_cast<NodeId>(rng.NextBounded(f.collection.NumElements()));
    benchmark::DoNotOptimize(f.store->Descendants(u));
  }
}
BENCHMARK(BM_Descendants_LinLoutStore);

}  // namespace

BENCHMARK_MAIN();
