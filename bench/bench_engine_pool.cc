// EnginePool serving-throughput sweep: {1,2,4,8} workers × batch sizes
// × backend kind, reporting queries/sec (probes, not batches) and the
// per-batch label route mix (cache hit rate for the copy-route linlout
// backend; borrow share for the zero-copy hopi / mapped backends).
//
// The submission side runs `clients` threads each firing synchronous
// Batch() calls, so the measured number is end-to-end: queue, dispatch,
// per-worker engine, future completion. A final table measures
// throughput while a background thread Swap()s two snapshots in a
// loop — the RCU cost of live index replacement.
//
// NOTE: on a single-core container the thread sweep measures
// scheduling overhead, not parallel speedup — rerun on multi-core
// hardware for the real curve (same caveat as bench_parallel_speedup).
#include <atomic>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "engine/engine_pool.h"
#include "engine/snapshot.h"
#include "hopi/build.h"
#include "storage/linlout.h"
#include "storage/mapped_linlout.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace hopi;

struct RunResult {
  double seconds = 0.0;
  uint64_t probes = 0;
  engine::PoolStats stats;
};

/// Fires `batches` batches of `batch_size` random probes from `clients`
/// submission threads; returns wall time and the pool's counters.
RunResult RunWorkload(engine::EnginePool* pool, size_t clients,
                      size_t batches, size_t batch_size, size_t num_elements,
                      uint64_t seed) {
  engine::PoolStats before = pool->Stats();
  std::atomic<size_t> next_batch{0};
  Stopwatch wall;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(seed * 977 + t);
      while (next_batch.fetch_add(1) < batches) {
        engine::BatchRequest request;
        request.pairs.reserve(batch_size);
        for (size_t i = 0; i < batch_size; ++i) {
          request.pairs.push_back(
              {static_cast<NodeId>(rng.NextBounded(num_elements)),
               static_cast<NodeId>(rng.NextBounded(num_elements))});
        }
        auto response = pool->Batch(std::move(request));
        if (!response.ok()) std::abort();  // bench invariant, not a race
      }
    });
  }
  for (auto& t : threads) t.join();
  RunResult result;
  result.seconds = wall.ElapsedSeconds();
  result.probes = batches * batch_size;
  engine::PoolStats after = pool->Stats();
  result.stats.cache_hits = after.cache_hits - before.cache_hits;
  result.stats.cache_misses = after.cache_misses - before.cache_misses;
  result.stats.labels_borrowed =
      after.labels_borrowed - before.labels_borrowed;
  result.stats.unique_probes = after.unique_probes - before.unique_probes;
  return result;
}

std::string RouteMix(const engine::PoolStats& s) {
  uint64_t cached = s.cache_hits + s.cache_misses;
  if (cached == 0 && s.labels_borrowed == 0) return "-";
  if (s.labels_borrowed > 0) {
    return TablePrinter::Fmt(100.0, 0) + "% borrow";
  }
  return TablePrinter::Fmt(
             100.0 * static_cast<double>(s.cache_hits) /
                 static_cast<double>(cached),
             1) +
         "% hit";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hopi::bench;
  CommandLine cli = ParseFlagsOrDie(
      argc, argv, {"docs", "seed", "batches", "clients", "cache_kb"});
  size_t docs = static_cast<size_t>(cli.GetInt("docs", 300));
  uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 42));
  size_t batches = static_cast<size_t>(cli.GetInt("batches", 400));
  size_t clients = static_cast<size_t>(cli.GetInt("clients", 4));
  size_t cache_bytes =
      static_cast<size_t>(cli.GetInt("cache_kb", 4096)) * 1024;

  PrintHeader("EnginePool serving throughput");
  collection::Collection c = MakeDblp(docs, seed);
  IndexBuildOptions options;
  auto index = BuildIndex(&c, options);
  if (!index.ok()) {
    std::cerr << index.status() << "\n";
    return 1;
  }
  std::cout << "collection: " << docs << " docs, "
            << TablePrinter::FmtCount(c.NumElements()) << " elements; "
            << batches << " batches/config from " << clients
            << " client threads (hardware_concurrency="
            << std::thread::hardware_concurrency() << ")\n";

  // The three label-carrying serving snapshots.
  auto hopi_snapshot = engine::BackendSnapshot::Freeze(*index);
  auto store = std::make_shared<storage::LinLoutStore>(
      storage::LinLoutStore::FromCover(index->cover(), false));
  const std::string path = "bench_engine_pool.bin";
  if (Status s = store->WriteToFile(path); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  auto mapped_result = storage::MappedLinLoutStore::Open(path);
  if (!mapped_result.ok()) {
    std::cerr << mapped_result.status() << "\n";
    return 1;
  }
  auto mapped = std::make_shared<storage::MappedLinLoutStore>(
      std::move(mapped_result).value());
  auto collection = std::shared_ptr<const collection::Collection>(
      hopi_snapshot, &hopi_snapshot->collection());
  struct NamedSnapshot {
    const char* name;
    std::shared_ptr<const engine::BackendSnapshot> snapshot;
  };
  NamedSnapshot snapshots[] = {
      {"hopi", hopi_snapshot},
      {"linlout", engine::BackendSnapshot::OfStore(collection, store,
                                                   hopi_snapshot->tags())},
      {"mapped", engine::BackendSnapshot::OfMappedStore(
                     collection, mapped, hopi_snapshot->tags())},
  };

  hopi::bench::BenchReport report("engine_pool");
  report.Add("docs", static_cast<uint64_t>(docs));
  report.Add("clients", static_cast<uint64_t>(clients));
  report.Add("label_cache_bytes", static_cast<uint64_t>(cache_bytes));
  TablePrinter table({"backend", "threads", "batch", "wall s", "probes/s",
                      "label route"});
  for (const NamedSnapshot& named : snapshots) {
    for (size_t threads : {1u, 2u, 4u, 8u}) {
      for (size_t batch_size : {16u, 256u}) {
        engine::EnginePoolOptions pool_options;
        pool_options.num_threads = threads;
        pool_options.label_cache_bytes = cache_bytes;
        engine::EnginePool pool(named.snapshot, pool_options);
        // Warm the per-worker engines (bind + first cache fills).
        RunWorkload(&pool, clients, 2 * threads, batch_size,
                    c.NumElements(), seed + 1);
        RunResult r = RunWorkload(&pool, clients, batches, batch_size,
                                  c.NumElements(), seed);
        double pps = static_cast<double>(r.probes) / r.seconds;
        table.AddRow({named.name, std::to_string(threads),
                      std::to_string(batch_size),
                      TablePrinter::Fmt(r.seconds, 3),
                      TablePrinter::FmtCount(static_cast<uint64_t>(pps)),
                      RouteMix(r.stats)});
        report.Add(std::string(named.name) + "_t" + std::to_string(threads) +
                       "_b" + std::to_string(batch_size) + "_probes_per_s",
                   pps);
      }
    }
  }
  table.Print(std::cout);

  PrintHeader("Batch() under a Swap() loop (RCU churn)");
  TablePrinter swap_table(
      {"swaps/run", "threads", "wall s", "probes/s", "rebinds"});
  for (size_t threads : {2u, 4u}) {
    engine::EnginePoolOptions pool_options;
    pool_options.num_threads = threads;
    pool_options.label_cache_bytes = cache_bytes;
    engine::EnginePool pool(hopi_snapshot, pool_options);
    std::atomic<bool> done{false};
    std::atomic<uint64_t> swaps{0};
    std::thread swapper([&] {
      while (!done.load()) {
        pool.Swap(swaps.fetch_add(1) % 2 == 0 ? snapshots[2].snapshot
                                              : hopi_snapshot);
        std::this_thread::yield();
      }
    });
    RunResult r = RunWorkload(&pool, clients, batches, 256,
                              c.NumElements(), seed);
    done.store(true);
    swapper.join();
    double pps = static_cast<double>(r.probes) / r.seconds;
    swap_table.AddRow({TablePrinter::FmtCount(swaps.load()),
                       std::to_string(threads),
                       TablePrinter::Fmt(r.seconds, 3),
                       TablePrinter::FmtCount(static_cast<uint64_t>(pps)),
                       TablePrinter::FmtCount(pool.Stats().rebinds)});
    report.Add("swap_churn_t" + std::to_string(threads) + "_probes_per_s",
               pps);
  }
  swap_table.Print(std::cout);
  report.Write();

  PrintHeader("Batch() against a delta overlay (serve-during-rebuild)");
  // Mutate-while-serving: pre-load the delta with N inserted links,
  // then measure probe throughput through the DeltaOverlayBackend, the
  // BFS-fallback share (probes the base index could not answer alone),
  // and the writer pause of the absorb rebuild that folds the delta.
  hopi::bench::BenchReport overlay_report("delta_overlay");
  overlay_report.Add("docs", static_cast<uint64_t>(docs));
  overlay_report.Add("clients", static_cast<uint64_t>(clients));
  TablePrinter overlay_table({"delta ops", "threads", "wall s", "probes/s",
                              "bfs fallback", "absorb pause"});
  for (size_t delta_ops : {0u, 64u, 256u, 1024u}) {
    for (size_t threads : {2u, 4u}) {
      engine::EnginePoolOptions pool_options;
      pool_options.num_threads = threads;
      pool_options.label_cache_bytes = cache_bytes;
      engine::EnginePool pool(hopi_snapshot, pool_options);
      if (Status armed = pool.EnableMutations(*index); !armed.ok()) {
        std::cerr << armed << "\n";
        return 1;
      }
      // Random non-duplicate links against a mirror of the base: every
      // draw is a valid op, so the delta reaches the target size.
      collection::Collection mirror = hopi_snapshot->collection();
      Rng mutate_rng(seed * 31 + delta_ops);
      size_t applied = 0;
      while (applied < delta_ops) {
        auto u = static_cast<NodeId>(mutate_rng.NextBounded(c.NumElements()));
        auto v = static_cast<NodeId>(mutate_rng.NextBounded(c.NumElements()));
        if (u == v || mirror.ElementGraph().HasEdge(u, v)) continue;
        engine::Mutation m = engine::Mutation::InsertLink(u, v);
        if (!pool.ApplyMutation(m).ok()) continue;
        if (!engine::ApplyMutationToCollection(m, &mirror).ok()) {
          std::abort();  // delta and mirror disagree: bench invariant
        }
        ++applied;
      }
      engine::PoolStats before = pool.Stats();
      RunWorkload(&pool, clients, 2 * threads, 256, c.NumElements(),
                  seed + 1);  // warm
      RunResult r = RunWorkload(&pool, clients, batches, 256,
                                c.NumElements(), seed);
      engine::PoolStats after = pool.Stats();
      double pps = static_cast<double>(r.probes) / r.seconds;
      uint64_t overlay_probes = after.overlay_probes - before.overlay_probes;
      uint64_t fallbacks =
          after.overlay_bfs_fallbacks - before.overlay_bfs_fallbacks;
      double fallback_rate =
          overlay_probes == 0
              ? 0.0
              : static_cast<double>(fallbacks) /
                    static_cast<double>(overlay_probes);
      auto absorbed = pool.RebuildNow(engine::RebuildMode::kAbsorb);
      uint64_t pause_us = 0;
      if (absorbed.ok()) {
        pause_us = absorbed->writer_pause_us;
      } else if (delta_ops > 0) {
        std::cerr << absorbed.status() << "\n";
        return 1;
      }
      overlay_table.AddRow(
          {std::to_string(delta_ops), std::to_string(threads),
           TablePrinter::Fmt(r.seconds, 3),
           TablePrinter::FmtCount(static_cast<uint64_t>(pps)),
           TablePrinter::Fmt(100.0 * fallback_rate, 1) + "%",
           TablePrinter::FmtCount(pause_us) + " us"});
      std::string prefix =
          "delta" + std::to_string(delta_ops) + "_t" + std::to_string(threads);
      overlay_report.Add(prefix + "_probes_per_s", pps);
      overlay_report.Add(prefix + "_bfs_fallback_rate", fallback_rate);
      overlay_report.Add(prefix + "_absorb_pause_us", pause_us);
    }
  }
  overlay_table.Print(std::cout);
  overlay_report.Write();

  std::remove(path.c_str());
  return 0;
}
