// EnginePool serving-throughput sweep: {1,2,4,8} workers × batch sizes
// × backend kind, reporting queries/sec (probes, not batches) and the
// per-batch label route mix (cache hit rate for the copy-route linlout
// backend; borrow share for the zero-copy hopi / mapped backends).
//
// The submission side runs `clients` threads each firing synchronous
// Batch() calls, so the measured number is end-to-end: queue, dispatch,
// per-worker engine, future completion. A final table measures
// throughput while a background thread Swap()s two snapshots in a
// loop — the RCU cost of live index replacement.
//
// NOTE: on a single-core container the thread sweep measures
// scheduling overhead, not parallel speedup — rerun on multi-core
// hardware for the real curve (same caveat as bench_parallel_speedup).
#include <atomic>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "engine/engine_pool.h"
#include "engine/snapshot.h"
#include "hopi/build.h"
#include "storage/linlout.h"
#include "storage/mapped_linlout.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace hopi;

struct RunResult {
  double seconds = 0.0;
  uint64_t probes = 0;
  engine::PoolStats stats;
};

/// Fires `batches` batches of `batch_size` random probes from `clients`
/// submission threads; returns wall time and the pool's counters.
RunResult RunWorkload(engine::EnginePool* pool, size_t clients,
                      size_t batches, size_t batch_size, size_t num_elements,
                      uint64_t seed) {
  engine::PoolStats before = pool->Stats();
  std::atomic<size_t> next_batch{0};
  Stopwatch wall;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(seed * 977 + t);
      while (next_batch.fetch_add(1) < batches) {
        engine::BatchRequest request;
        request.pairs.reserve(batch_size);
        for (size_t i = 0; i < batch_size; ++i) {
          request.pairs.push_back(
              {static_cast<NodeId>(rng.NextBounded(num_elements)),
               static_cast<NodeId>(rng.NextBounded(num_elements))});
        }
        auto response = pool->Batch(std::move(request));
        if (!response.ok()) std::abort();  // bench invariant, not a race
      }
    });
  }
  for (auto& t : threads) t.join();
  RunResult result;
  result.seconds = wall.ElapsedSeconds();
  result.probes = batches * batch_size;
  engine::PoolStats after = pool->Stats();
  result.stats.cache_hits = after.cache_hits - before.cache_hits;
  result.stats.cache_misses = after.cache_misses - before.cache_misses;
  result.stats.labels_borrowed =
      after.labels_borrowed - before.labels_borrowed;
  result.stats.unique_probes = after.unique_probes - before.unique_probes;
  return result;
}

std::string RouteMix(const engine::PoolStats& s) {
  uint64_t cached = s.cache_hits + s.cache_misses;
  if (cached == 0 && s.labels_borrowed == 0) return "-";
  if (s.labels_borrowed > 0) {
    return TablePrinter::Fmt(100.0, 0) + "% borrow";
  }
  return TablePrinter::Fmt(
             100.0 * static_cast<double>(s.cache_hits) /
                 static_cast<double>(cached),
             1) +
         "% hit";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hopi::bench;
  CommandLine cli = ParseFlagsOrDie(
      argc, argv, {"docs", "seed", "batches", "clients", "cache_kb"});
  size_t docs = static_cast<size_t>(cli.GetInt("docs", 300));
  uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 42));
  size_t batches = static_cast<size_t>(cli.GetInt("batches", 400));
  size_t clients = static_cast<size_t>(cli.GetInt("clients", 4));
  size_t cache_bytes =
      static_cast<size_t>(cli.GetInt("cache_kb", 4096)) * 1024;

  PrintHeader("EnginePool serving throughput");
  collection::Collection c = MakeDblp(docs, seed);
  IndexBuildOptions options;
  auto index = BuildIndex(&c, options);
  if (!index.ok()) {
    std::cerr << index.status() << "\n";
    return 1;
  }
  std::cout << "collection: " << docs << " docs, "
            << TablePrinter::FmtCount(c.NumElements()) << " elements; "
            << batches << " batches/config from " << clients
            << " client threads (hardware_concurrency="
            << std::thread::hardware_concurrency() << ")\n";

  // The three label-carrying serving snapshots.
  auto hopi_snapshot = engine::BackendSnapshot::Freeze(*index);
  auto store = std::make_shared<storage::LinLoutStore>(
      storage::LinLoutStore::FromCover(index->cover(), false));
  const std::string path = "bench_engine_pool.bin";
  if (Status s = store->WriteToFile(path); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  auto mapped_result = storage::MappedLinLoutStore::Open(path);
  if (!mapped_result.ok()) {
    std::cerr << mapped_result.status() << "\n";
    return 1;
  }
  auto mapped = std::make_shared<storage::MappedLinLoutStore>(
      std::move(mapped_result).value());
  auto collection = std::shared_ptr<const collection::Collection>(
      hopi_snapshot, &hopi_snapshot->collection());
  struct NamedSnapshot {
    const char* name;
    std::shared_ptr<const engine::BackendSnapshot> snapshot;
  };
  NamedSnapshot snapshots[] = {
      {"hopi", hopi_snapshot},
      {"linlout", engine::BackendSnapshot::OfStore(collection, store,
                                                   hopi_snapshot->tags())},
      {"mapped", engine::BackendSnapshot::OfMappedStore(
                     collection, mapped, hopi_snapshot->tags())},
  };

  hopi::bench::BenchReport report("engine_pool");
  report.Add("docs", static_cast<uint64_t>(docs));
  report.Add("clients", static_cast<uint64_t>(clients));
  report.Add("label_cache_bytes", static_cast<uint64_t>(cache_bytes));
  TablePrinter table({"backend", "threads", "batch", "wall s", "probes/s",
                      "label route"});
  for (const NamedSnapshot& named : snapshots) {
    for (size_t threads : {1u, 2u, 4u, 8u}) {
      for (size_t batch_size : {16u, 256u}) {
        engine::EnginePoolOptions pool_options;
        pool_options.num_threads = threads;
        pool_options.label_cache_bytes = cache_bytes;
        engine::EnginePool pool(named.snapshot, pool_options);
        // Warm the per-worker engines (bind + first cache fills).
        RunWorkload(&pool, clients, 2 * threads, batch_size,
                    c.NumElements(), seed + 1);
        RunResult r = RunWorkload(&pool, clients, batches, batch_size,
                                  c.NumElements(), seed);
        double pps = static_cast<double>(r.probes) / r.seconds;
        table.AddRow({named.name, std::to_string(threads),
                      std::to_string(batch_size),
                      TablePrinter::Fmt(r.seconds, 3),
                      TablePrinter::FmtCount(static_cast<uint64_t>(pps)),
                      RouteMix(r.stats)});
        report.Add(std::string(named.name) + "_t" + std::to_string(threads) +
                       "_b" + std::to_string(batch_size) + "_probes_per_s",
                   pps);
      }
    }
  }
  table.Print(std::cout);

  PrintHeader("Batch() under a Swap() loop (RCU churn)");
  TablePrinter swap_table(
      {"swaps/run", "threads", "wall s", "probes/s", "rebinds"});
  for (size_t threads : {2u, 4u}) {
    engine::EnginePoolOptions pool_options;
    pool_options.num_threads = threads;
    pool_options.label_cache_bytes = cache_bytes;
    engine::EnginePool pool(hopi_snapshot, pool_options);
    std::atomic<bool> done{false};
    std::atomic<uint64_t> swaps{0};
    std::thread swapper([&] {
      while (!done.load()) {
        pool.Swap(swaps.fetch_add(1) % 2 == 0 ? snapshots[2].snapshot
                                              : hopi_snapshot);
        std::this_thread::yield();
      }
    });
    RunResult r = RunWorkload(&pool, clients, batches, 256,
                              c.NumElements(), seed);
    done.store(true);
    swapper.join();
    double pps = static_cast<double>(r.probes) / r.seconds;
    swap_table.AddRow({TablePrinter::FmtCount(swaps.load()),
                       std::to_string(threads),
                       TablePrinter::Fmt(r.seconds, 3),
                       TablePrinter::FmtCount(static_cast<uint64_t>(pps)),
                       TablePrinter::FmtCount(pool.Stats().rebinds)});
    report.Add("swap_churn_t" + std::to_string(threads) + "_probes_per_s",
               pps);
  }
  swap_table.Print(std::cout);
  report.Write();

  std::remove(path.c_str());
  return 0;
}
