// Table 1 (paper Sec 7.1): "Important features of our collections of XML
// documents" — #docs, #elements, #links, size. Regenerated on the scaled
// synthetic stand-ins; the paper's values are printed for reference.
#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace hopi;
  using namespace hopi::bench;
  CommandLine cli = ParseFlagsOrDie(
      argc, argv, {"dblp-docs", "inex-docs", "inex-els", "seed"});
  size_t dblp_docs = static_cast<size_t>(cli.GetInt("dblp-docs", 800));
  size_t inex_docs = static_cast<size_t>(cli.GetInt("inex-docs", 200));
  size_t inex_els = static_cast<size_t>(cli.GetInt("inex-els", 300));
  uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 42));

  PrintHeader("Table 1: collection features (measured on synthetic stand-ins)");
  collection::Collection dblp = MakeDblp(dblp_docs, seed);
  collection::Collection inex = MakeInex(inex_docs, inex_els, seed);

  TablePrinter table({"Coll.", "# docs", "# els", "# links", "size"});
  auto add = [&table](const std::string& name,
                      const collection::Collection& c) {
    // Table 1 counts all links; for INEX these are intra-document refs.
    size_t links = c.NumInterLinks() + c.NumIntraLinks();
    table.AddRow({name, TablePrinter::FmtCount(c.NumLiveDocuments()),
                  TablePrinter::FmtCount(c.NumElements()),
                  TablePrinter::FmtCount(links),
                  TablePrinter::Fmt(
                      static_cast<double>(c.ApproximateSizeBytes()) / 1e6, 1) +
                      "MB"});
  };
  add("DBLP", dblp);
  add("INEX", inex);
  table.Print(std::cout);

  std::cout << "\nPaper (Table 1): DBLP 6,210 docs / 168,991 els / 25,368 "
               "links / 13.2MB; INEX 12,232 docs / 12,061,348 els / 408,085 "
               "links / 534MB\n";
  std::cout << "Per-doc ratios -- paper DBLP: 27.2 els/doc, 4.1 links/doc; "
               "measured DBLP: "
            << TablePrinter::Fmt(
                   static_cast<double>(dblp.NumElements()) / dblp_docs, 1)
            << " els/doc, "
            << TablePrinter::Fmt(
                   static_cast<double>(dblp.NumInterLinks()) / dblp_docs, 1)
            << " links/doc\n";
  return 0;
}
