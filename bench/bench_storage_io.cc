// Storage-layer I/O bench: the cost of opening a LIN/LOUT file and of
// serving a batched reachability workload from it, mapped vs buffered.
//
//   cold open  LinLoutStore::ReadFromFile copies every row to the heap
//              and re-sorts the backward runs; MappedLinLoutStore::Open
//              validates the checksum and section table but copies
//              nothing ("cold" is relative to the process — the page
//              cache is warm after the write, as it would be on a
//              serving host that just built the index).
//   batch      a 256-probe QueryEngine batch: the buffered store is
//              served through the LRU label cache (copy route), the
//              mapped store lends label spans straight off the file
//              image (borrow route).
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "engine/engine.h"
#include "hopi/build.h"
#include "storage/linlout.h"
#include "storage/mapped_linlout.h"
#include "util/rng.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace hopi;
  using namespace hopi::bench;
  CommandLine cli =
      ParseFlagsOrDie(argc, argv, {"docs", "seed", "probes", "reps"});
  size_t docs = static_cast<size_t>(cli.GetInt("docs", 400));
  uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 42));
  size_t probes = static_cast<size_t>(cli.GetInt("probes", 256));
  size_t reps = static_cast<size_t>(cli.GetInt("reps", 5));

  PrintHeader("Storage I/O: mapped vs buffered LIN/LOUT serving");
  collection::Collection c = MakeDblp(docs, seed);
  IndexBuildOptions options;
  options.with_distance = true;
  auto index = BuildIndex(&c, options);
  if (!index.ok()) {
    std::cerr << index.status() << "\n";
    return 1;
  }
  storage::LinLoutStore store =
      storage::LinLoutStore::FromCover(index->cover(), true);
  const std::string path = "bench_storage_io.bin";
  if (Status s = store.WriteToFile(path); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  auto info = storage::InspectFile(path);
  if (!info.ok()) {
    std::cerr << info.status() << "\n";
    return 1;
  }
  std::cout << "file: " << TablePrinter::FmtCount(info->file_bytes)
            << " bytes (v" << info->version << "), "
            << TablePrinter::FmtCount(store.NumEntries())
            << " label entries, " << probes << "-probe batches, " << reps
            << " reps\n";

  Rng rng(seed);
  std::vector<engine::NodePair> pairs;
  for (size_t i = 0; i < probes; ++i) {
    pairs.push_back(
        {static_cast<NodeId>(rng.NextBounded(c.NumElements())),
         static_cast<NodeId>(rng.NextBounded(c.NumElements()))});
  }

  TablePrinter table({"mode", "cold open", "batch(256)", "borrowed",
                      "cache miss", "reachable"});
  auto add_row = [&](const std::string& mode, double open_s, double batch_s,
                     const engine::BatchStats& stats, size_t reachable) {
    table.AddRow({mode, TablePrinter::Fmt(open_s * 1e3, 3) + "ms",
                  TablePrinter::Fmt(batch_s * 1e6, 1) + "us",
                  TablePrinter::FmtCount(stats.labels_borrowed),
                  TablePrinter::FmtCount(stats.cache_misses),
                  TablePrinter::FmtCount(reachable)});
  };
  auto count_reachable = [](const engine::BatchResponse& r) {
    size_t n = 0;
    for (bool b : r.reachable) n += b ? 1 : 0;
    return n;
  };

  {  // buffered: full heap load, label cache on the batch path
    double open_s = 0;
    for (size_t rep = 0; rep < reps; ++rep) {
      Stopwatch sw;
      auto loaded = storage::LinLoutStore::ReadFromFile(path);
      open_s += sw.ElapsedSeconds() / static_cast<double>(reps);
      if (!loaded.ok()) {
        std::cerr << loaded.status() << "\n";
        return 1;
      }
    }
    auto loaded = storage::LinLoutStore::ReadFromFile(path);
    engine::QueryEngine eng = engine::QueryEngine::ForStore(c, *loaded);
    // Stats reflect the first (cold-cache) batch; timing is the warm
    // steady state.
    engine::BatchResponse cold =
        eng.Batch({.pairs = pairs, .want_distances = true});
    Stopwatch sw;
    for (size_t rep = 0; rep < reps; ++rep) {
      eng.Batch({.pairs = pairs, .want_distances = true});
    }
    add_row("buffered", open_s,
            sw.ElapsedSeconds() / static_cast<double>(reps), cold.stats,
            count_reachable(cold));
  }

  for (bool prefer_mmap : {true, false}) {
    double open_s = 0;
    for (size_t rep = 0; rep < reps; ++rep) {
      Stopwatch sw;
      auto mapped = storage::MappedLinLoutStore::Open(
          path, {.prefer_mmap = prefer_mmap});
      open_s += sw.ElapsedSeconds() / static_cast<double>(reps);
      if (!mapped.ok()) {
        std::cerr << mapped.status() << "\n";
        return 1;
      }
    }
    auto mapped =
        storage::MappedLinLoutStore::Open(path, {.prefer_mmap = prefer_mmap});
    engine::QueryEngine eng = engine::QueryEngine::ForMappedStore(c, *mapped);
    engine::BatchResponse cold =
        eng.Batch({.pairs = pairs, .want_distances = true});
    Stopwatch sw;
    for (size_t rep = 0; rep < reps; ++rep) {
      eng.Batch({.pairs = pairs, .want_distances = true});
    }
    add_row(mapped->mapped() ? "mapped" : "mapped(fallback)", open_s,
            sw.ElapsedSeconds() / static_cast<double>(reps), cold.stats,
            count_reachable(cold));
  }
  table.Print(std::cout);
  std::cout << "\nShape check: mapped open skips the row copy and backward "
               "re-sort (checksum pass only); mapped batches borrow label "
               "spans (no cache misses) where buffered batches fill the "
               "LRU cache.\n";
  std::remove(path.c_str());
  return 0;
}
