// Storage-layer I/O bench: raw (v3) vs block-compressed (v4) LIN/LOUT
// files — size on disk, open cost, and batched probe throughput.
//
//   cold open  LinLoutStore::ReadFromFile copies every row to the heap
//              and re-sorts the backward runs; MappedLinLoutStore::Open
//              validates checksums but copies nothing. The v4 lazy
//              open ("mapped-v4 lazy") verifies only the metadata CRC:
//              the open cost that stays flat as covers outgrow RAM.
//   cold batch a fresh engine's first 256-probe batch: v3 mapped
//              borrows spans off the file image; v4 decodes every
//              touched block once into the byte-budgeted cache.
//   warm batch the steady state: v3 still borrows, v4 serves pinned
//              rows from cached blocks — the ~"within 10% of raw"
//              number the v4 design is accountable to.
//
// Writes BENCH_storage_io.json (bytes/entry both formats, compression
// ratio, cold/warm probes/s) for CI and EXPERIMENTS.md to diff.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "engine/engine.h"
#include "hopi/build.h"
#include "storage/linlout.h"
#include "storage/mapped_linlout.h"
#include "util/rng.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace hopi;
  using namespace hopi::bench;
  CommandLine cli = ParseFlagsOrDie(argc, argv,
                                    {"docs", "seed", "probes", "reps",
                                     "cache_kb"});
  size_t docs = static_cast<size_t>(cli.GetInt("docs", 400));
  uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 42));
  size_t probes = static_cast<size_t>(cli.GetInt("probes", 256));
  size_t reps = static_cast<size_t>(cli.GetInt("reps", 5));
  // Generous default: "warm" should measure the hit path, not cache
  // thrash. Shrink it (e.g. --cache_kb=1024) to watch eviction churn.
  size_t cache_bytes = static_cast<size_t>(cli.GetInt("cache_kb", 65536)) *
                       1024;

  PrintHeader("Storage I/O: raw (v3) vs block-compressed (v4) LIN/LOUT");
  collection::Collection c = MakeDblp(docs, seed);
  IndexBuildOptions options;
  options.with_distance = true;
  auto index = BuildIndex(&c, options);
  if (!index.ok()) {
    std::cerr << index.status() << "\n";
    return 1;
  }
  storage::LinLoutStore store =
      storage::LinLoutStore::FromCover(index->cover(), true);

  const std::string v3_path = "bench_storage_io_v3.bin";
  const std::string v4_path = "bench_storage_io_v4.bin";
  if (Status s = store.WriteToFile(v3_path); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  storage::StoreWriteOptions v4_options;
  v4_options.format_version = storage::kFormatVersionV4;
  if (Status s = store.WriteToFile(v4_path, v4_options); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  auto v3_info = storage::InspectFile(v3_path);
  auto v4_info = storage::InspectFile(v4_path);
  if (!v3_info.ok() || !v4_info.ok()) {
    std::cerr << v3_info.status() << " / " << v4_info.status() << "\n";
    return 1;
  }
  const uint64_t entries = store.NumEntries();
  const double v3_bpe =
      static_cast<double>(v3_info->file_bytes) / static_cast<double>(entries);
  const double v4_bpe =
      static_cast<double>(v4_info->file_bytes) / static_cast<double>(entries);
  std::cout << "cover: " << TablePrinter::FmtCount(entries)
            << " label entries\n"
            << "  v3: " << TablePrinter::FmtCount(v3_info->file_bytes)
            << " bytes (" << TablePrinter::Fmt(v3_bpe, 2) << " B/entry)\n"
            << "  v4: " << TablePrinter::FmtCount(v4_info->file_bytes)
            << " bytes (" << TablePrinter::Fmt(v4_bpe, 2) << " B/entry), "
            << TablePrinter::Fmt(v3_bpe / v4_bpe, 2) << "x smaller\n";

  Rng rng(seed);
  std::vector<engine::NodePair> pairs;
  for (size_t i = 0; i < probes; ++i) {
    pairs.push_back(
        {static_cast<NodeId>(rng.NextBounded(c.NumElements())),
         static_cast<NodeId>(rng.NextBounded(c.NumElements()))});
  }
  const double batch_probes = static_cast<double>(probes);

  BenchReport report("storage_io");
  report.Add("docs", static_cast<uint64_t>(docs));
  report.Add("label_entries", entries);
  report.Add("v3_file_bytes", v3_info->file_bytes);
  report.Add("v4_file_bytes", v4_info->file_bytes);
  report.Add("v3_bytes_per_entry", v3_bpe);
  report.Add("v4_bytes_per_entry", v4_bpe);
  report.Add("compression_ratio", v3_bpe / v4_bpe);

  report.Add("label_cache_bytes", static_cast<uint64_t>(cache_bytes));

  TablePrinter table({"mode", "cold open", "cold batch", "warm batch",
                      "warm probes/s", "borrowed", "decoded", "evicted"});
  auto run_mode = [&](const std::string& mode,
                      const storage::MappedLinLoutStore* mapped,
                      const storage::LinLoutStore* buffered, double open_s) {
    engine::QueryEngineOptions eng_options;
    eng_options.label_cache_bytes = cache_bytes;
    engine::QueryEngine eng =
        mapped ? engine::QueryEngine::ForMappedStore(c, *mapped, eng_options)
               : engine::QueryEngine::ForStore(c, *buffered, eng_options);
    Stopwatch cold_sw;
    engine::BatchResponse cold =
        eng.Batch({.pairs = pairs, .want_distances = true});
    double cold_s = cold_sw.ElapsedSeconds();
    Stopwatch warm_sw;
    for (size_t rep = 0; rep < reps; ++rep) {
      eng.Batch({.pairs = pairs, .want_distances = true});
    }
    double warm_s = warm_sw.ElapsedSeconds() / static_cast<double>(reps);
    double warm_pps = batch_probes / warm_s;
    table.AddRow({mode, TablePrinter::Fmt(open_s * 1e3, 3) + "ms",
                  TablePrinter::Fmt(cold_s * 1e6, 1) + "us",
                  TablePrinter::Fmt(warm_s * 1e6, 1) + "us",
                  TablePrinter::FmtCount(static_cast<uint64_t>(warm_pps)),
                  TablePrinter::FmtCount(cold.stats.labels_borrowed),
                  TablePrinter::FmtCount(cold.stats.blocks_decoded),
                  TablePrinter::FmtCount(eng.CacheStats().evictions)});
    report.Add(mode + "_open_ms", open_s * 1e3);
    report.Add(mode + "_cold_probes_per_s", batch_probes / cold_s);
    report.Add(mode + "_warm_probes_per_s", warm_pps);
    report.Add(mode + "_blocks_decoded", cold.stats.blocks_decoded);
  };

  {  // buffered v3: full heap load, copy route through the cache
    double open_s = 0;
    for (size_t rep = 0; rep < reps; ++rep) {
      Stopwatch sw;
      auto loaded = storage::LinLoutStore::ReadFromFile(v3_path);
      open_s += sw.ElapsedSeconds() / static_cast<double>(reps);
      if (!loaded.ok()) {
        std::cerr << loaded.status() << "\n";
        return 1;
      }
    }
    auto loaded = storage::LinLoutStore::ReadFromFile(v3_path);
    run_mode("buffered_v3", nullptr, &*loaded, open_s);
  }

  // Mapped modes: v3 (borrow route), v4 verified, v4 lazy (block route).
  struct MappedMode {
    std::string name;
    std::string path;
    storage::MappedOpenOptions open;
  };
  const MappedMode modes[] = {
      {"mapped_v3", v3_path, {}},
      {"mapped_v4", v4_path, {}},
      {"mapped_v4_lazy", v4_path, {.prefer_mmap = true,
                                   .verify_file_checksum = false}},
  };
  for (const MappedMode& mode : modes) {
    double open_s = 0;
    for (size_t rep = 0; rep < reps; ++rep) {
      Stopwatch sw;
      auto mapped = storage::MappedLinLoutStore::Open(mode.path, mode.open);
      open_s += sw.ElapsedSeconds() / static_cast<double>(reps);
      if (!mapped.ok()) {
        std::cerr << mapped.status() << "\n";
        return 1;
      }
    }
    auto mapped = storage::MappedLinLoutStore::Open(mode.path, mode.open);
    run_mode(mode.name, &*mapped, nullptr, open_s);
  }
  table.Print(std::cout);
  std::cout << "\nShape check: v3 mapped batches borrow spans (no decodes); "
               "v4 cold batches decode each touched block once, warm v4 "
               "batches serve pinned rows from the byte-budgeted cache and "
               "should land within ~10% of the raw v3 borrow route.\n";
  report.Write();
  std::remove(v3_path.c_str());
  std::remove(v4_path.c_str());
  return 0;
}
