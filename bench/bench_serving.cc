// Closed-loop load bench for the serving front-end: a real epoll
// HttpServer over a real EnginePool, driven by N keep-alive
// BlockingHttpClients over real sockets — every layer the production
// path crosses (socket, parser, wire, admission, pool, worker,
// serialize, socket) is in the measured loop.
//
// Three arrival models:
//   --mode=closed  N clients, each fires its next request the moment
//                  the previous response lands (the classic closed
//                  loop; concurrency == N).
//   --mode=open    each client paces requests at rate/clients per
//                  second regardless of response latency (approximated
//                  open loop: late responses eat into the pacing gap).
//   --mode=burst   shedding demo: a deliberately tiny pool (1 worker,
//                  lane capacity from --queue_capacity) under a
//                  many-client closed loop — the 429 column is the
//                  admission controller earning its keep.
//
// Probes are Zipfian (--zipf_s) over the element space: a skewed hot
// set is what makes the per-worker label caches (and their hit-rate
// numbers in /stats) meaningful under load.
//
// Writes BENCH_serving.json (throughput, latency percentiles, status
// mix) via BenchReport.
#include <atomic>
#include <chrono>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "engine/engine_pool.h"
#include "engine/snapshot.h"
#include "hopi/build.h"
#include "net/client.h"
#include "net/server.h"
#include "net/service.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/timer.h"

namespace {

using namespace hopi;

struct LoadResult {
  double seconds = 0.0;
  uint64_t ok = 0;
  uint64_t shed = 0;       // HTTP 429
  uint64_t other = 0;      // anything else (should stay 0)
  uint64_t transport = 0;  // client-side socket errors (should stay 0)
  uint64_t probes = 0;
  LatencyHistogram::Snapshot latency;  // microseconds per request
};

std::string MakeBatchBody(Rng* rng, uint64_t num_elements, size_t batch_size,
                          double zipf_s) {
  std::string body = "{\"pairs\":[";
  for (size_t i = 0; i < batch_size; ++i) {
    if (i > 0) body += ',';
    uint64_t u = rng->NextZipf(num_elements, zipf_s);
    uint64_t v = rng->NextZipf(num_elements, zipf_s);
    body += '[' + std::to_string(u) + ',' + std::to_string(v) + ']';
  }
  body += "]}";
  return body;
}

/// Drives `clients` keep-alive connections against `port` for
/// `seconds` of wall time. rate_per_client == 0 -> closed loop.
LoadResult RunLoad(uint16_t port, size_t clients, double seconds,
                   size_t batch_size, uint64_t num_elements, double zipf_s,
                   double rate_per_client, uint64_t seed) {
  LatencyHistogram latency;
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> other{0};
  std::atomic<uint64_t> transport{0};
  std::atomic<bool> stop{false};

  Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(seed * 31 + t);
      net::BlockingHttpClient client;
      if (!client.Connect("127.0.0.1", port).ok()) {
        transport.fetch_add(1);
        return;
      }
      const auto pace = rate_per_client > 0
                            ? std::chrono::duration_cast<
                                  std::chrono::steady_clock::duration>(
                                  std::chrono::duration<double>(
                                      1.0 / rate_per_client))
                            : std::chrono::steady_clock::duration::zero();
      auto next_send = std::chrono::steady_clock::now();
      while (!stop.load(std::memory_order_relaxed)) {
        if (pace.count() > 0) {
          std::this_thread::sleep_until(next_send);
          next_send += pace;
        }
        std::string body =
            MakeBatchBody(&rng, num_elements, batch_size, zipf_s);
        auto started = std::chrono::steady_clock::now();
        auto response = client.Request("POST", "/v1/batch", body);
        auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - started)
                           .count();
        if (!response.ok()) {
          transport.fetch_add(1);
          // The server closes on parse errors and dying connections;
          // reconnect and carry on (counted, so a non-zero column
          // flags it).
          if (!client.Connect("127.0.0.1", port).ok()) return;
          continue;
        }
        latency.Record(static_cast<uint64_t>(elapsed));
        if (response.value().status == 200) {
          ok.fetch_add(1);
        } else if (response.value().status == 429) {
          shed.fetch_add(1);
        } else {
          other.fetch_add(1);
        }
        if (!client.connected() &&
            !client.Connect("127.0.0.1", port).ok()) {
          return;
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true);
  for (auto& thread : threads) thread.join();

  LoadResult result;
  result.seconds = wall.ElapsedSeconds();
  result.ok = ok.load();
  result.shed = shed.load();
  result.other = other.load();
  result.transport = transport.load();
  result.probes = result.ok * batch_size;
  result.latency = latency.TakeSnapshot();
  return result;
}

void AddRow(TablePrinter* table, hopi::bench::BenchReport* report,
            const std::string& name, const LoadResult& r) {
  double rps = static_cast<double>(r.ok + r.shed + r.other) / r.seconds;
  table->AddRow(
      {name, TablePrinter::FmtCount(static_cast<uint64_t>(rps)),
       TablePrinter::FmtCount(static_cast<uint64_t>(
           static_cast<double>(r.probes) / r.seconds)),
       std::to_string(r.latency.ValueAtQuantile(0.50)),
       std::to_string(r.latency.ValueAtQuantile(0.99)),
       std::to_string(r.latency.ValueAtQuantile(0.999)),
       std::to_string(r.ok), std::to_string(r.shed),
       std::to_string(r.other + r.transport)});
  report->Add(name + "_requests_per_s", rps);
  report->Add(name + "_probes_per_s",
              static_cast<double>(r.probes) / r.seconds);
  report->Add(name + "_p50_us", r.latency.ValueAtQuantile(0.50));
  report->Add(name + "_p99_us", r.latency.ValueAtQuantile(0.99));
  report->Add(name + "_p999_us", r.latency.ValueAtQuantile(0.999));
  report->Add(name + "_ok", r.ok);
  report->Add(name + "_shed", r.shed);
  report->Add(name + "_errors", r.other + r.transport);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hopi::bench;
  CommandLine cli = ParseFlagsOrDie(
      argc, argv,
      {"docs", "seed", "seconds", "clients", "batch_size", "zipf_s",
       "workers", "io_threads", "queue_capacity", "shed_high", "rate",
       "burst_clients", "mode"});
  const size_t docs = static_cast<size_t>(cli.GetInt("docs", 300));
  const uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 42));
  const double seconds = cli.GetDouble("seconds", 3.0);
  const size_t clients = static_cast<size_t>(cli.GetInt("clients", 8));
  const size_t batch_size = static_cast<size_t>(cli.GetInt("batch_size", 32));
  const double zipf_s = cli.GetDouble("zipf_s", 1.1);
  const size_t workers = static_cast<size_t>(cli.GetInt("workers", 2));
  const size_t io_threads = static_cast<size_t>(cli.GetInt("io_threads", 1));
  const size_t queue_capacity =
      static_cast<size_t>(cli.GetInt("queue_capacity", 4));
  const size_t shed_high = static_cast<size_t>(cli.GetInt("shed_high", 8));
  const double rate = cli.GetDouble("rate", 2000.0);
  const size_t burst_clients =
      static_cast<size_t>(cli.GetInt("burst_clients", 32));
  const std::string mode = cli.GetString("mode", "all");

  PrintHeader("serving front-end load (epoll HTTP -> EnginePool)");
  collection::Collection c = MakeDblp(docs, seed);
  auto index = BuildIndex(&c, IndexBuildOptions{});
  if (!index.ok()) {
    std::cerr << index.status() << "\n";
    return 1;
  }
  auto snapshot = engine::BackendSnapshot::Freeze(*index);
  const uint64_t num_elements = c.NumElements();
  std::cout << "collection: " << docs << " docs, "
            << TablePrinter::FmtCount(num_elements) << " elements; "
            << clients << " clients, batch " << batch_size << ", zipf s="
            << zipf_s << ", " << seconds << "s per mode\n";

  BenchReport report("serving");
  report.Add("docs", static_cast<uint64_t>(docs));
  report.Add("clients", static_cast<uint64_t>(clients));
  report.Add("batch_size", static_cast<uint64_t>(batch_size));
  report.Add("zipf_s", zipf_s);
  report.Add("workers", static_cast<uint64_t>(workers));

  TablePrinter table({"mode", "req/s", "probes/s", "p50 us", "p99 us",
                      "p999 us", "200", "429", "err"});

  if (mode == "all" || mode == "closed" || mode == "open") {
    // Ample headroom: this pool measures throughput, not shedding.
    engine::EnginePoolOptions pool_options;
    pool_options.num_threads = workers;
    engine::EnginePool pool(snapshot, pool_options);
    net::ReachabilityService service(&pool);
    net::HttpServerOptions server_options;
    server_options.num_io_threads = io_threads;
    net::HttpServer server(service.AsHandler(), server_options);
    if (Status s = server.Start(); !s.ok()) {
      std::cerr << s << "\n";
      return 1;
    }
    if (mode == "all" || mode == "closed") {
      // Warm-up pass (engine bind + cache fill) kept out of the table.
      RunLoad(server.port(), clients, seconds / 4, batch_size, num_elements,
              zipf_s, 0.0, seed + 1);
      LoadResult r = RunLoad(server.port(), clients, seconds, batch_size,
                             num_elements, zipf_s, 0.0, seed);
      AddRow(&table, &report, "closed", r);
    }
    if (mode == "all" || mode == "open") {
      LoadResult r =
          RunLoad(server.port(), clients, seconds, batch_size, num_elements,
                  zipf_s, rate / static_cast<double>(clients), seed + 2);
      AddRow(&table, &report, "open", r);
    }
    server.Stop();
  }

  if (mode == "all" || mode == "burst") {
    // A pool sized to drown: 1 worker, tiny lane, low watermarks. The
    // burst MUST shed (asserted by tests/net_test.cc; reported here).
    engine::EnginePoolOptions pool_options;
    pool_options.num_threads = 1;
    pool_options.queue_capacity = queue_capacity;
    pool_options.shed_high_watermark = shed_high;
    engine::EnginePool pool(snapshot, pool_options);
    net::ReachabilityService service(&pool);
    net::HttpServerOptions server_options;
    server_options.num_io_threads = io_threads;
    net::HttpServer server(service.AsHandler(), server_options);
    if (Status s = server.Start(); !s.ok()) {
      std::cerr << s << "\n";
      return 1;
    }
    LoadResult r = RunLoad(server.port(), burst_clients, seconds,
                           batch_size * 8, num_elements, zipf_s, 0.0, seed);
    AddRow(&table, &report, "burst", r);
    engine::PoolStats stats = pool.Stats();
    report.Add("burst_pool_sheds", stats.sheds);
    std::cout << "burst: pool sheds=" << stats.sheds
              << " (burst_clients=" << burst_clients << ", lane cap="
              << queue_capacity << ", high watermark=" << shed_high << ")\n";
    server.Stop();
  }

  table.Print(std::cout);
  report.Write();
  return 0;
}
