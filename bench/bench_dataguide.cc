// Related-work comparison (paper Sec 1.1 / 1.2): DataGuides handle
// no-wildcard path queries well but (a) wildcard descendant queries must
// scan the guide and (b) inter-document links are invisible to them.
// This bench quantifies both against HOPI on the DBLP-like workload.
#include <iostream>

#include "bench_common.h"
#include "hopi/build.h"
#include "query/dataguide.h"
#include "query/tag_index.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace hopi;
  using namespace hopi::bench;
  CommandLine cli = ParseFlagsOrDie(argc, argv, {"docs", "seed"});
  size_t docs = static_cast<size_t>(cli.GetInt("docs", 400));
  uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 42));

  PrintHeader("DataGuide [13] vs HOPI on //a//b queries");
  collection::Collection c = MakeDblp(docs, seed);

  Stopwatch guide_watch;
  query::DataGuide guide(c);
  double guide_build = guide_watch.ElapsedSeconds();
  Stopwatch hopi_watch;
  IndexBuildOptions options;
  options.partition.max_connections = 40000;
  auto index = BuildIndex(&c, options);
  if (!index.ok()) {
    std::cerr << index.status() << "\n";
    return 1;
  }
  double hopi_build = hopi_watch.ElapsedSeconds();
  query::TagIndex tags(c);

  std::cout << "DataGuide: " << guide.NumGuideNodes() << " guide nodes, "
            << TablePrinter::Fmt(guide_build, 3) << "s build\n"
            << "HOPI: " << index->CoverSize() << " entries, "
            << TablePrinter::Fmt(hopi_build, 3) << "s build\n\n";

  // Result *pairs* (f, s): the tree pairs are all a DataGuide can see;
  // HOPI additionally finds every pair connected through citation links.
  TablePrinter table({"query", "tree pairs (guide)", "guide us",
                      "all pairs (hopi)", "hopi us", "via links only"});
  for (const auto& [first, second] :
       std::vector<std::pair<std::string, std::string>>{
           {"inproceedings", "author"},
           {"inproceedings", "title"},
           {"abstract", "sentence"},
           {"inproceedings", "cite"}}) {
    uint32_t first_id = c.FindTagId(first);
    Stopwatch gw;
    // Tree pairs: per element of the second tag, count tree ancestors
    // with the first tag (what guide-based evaluation can deliver).
    uint64_t guide_pairs = 0;
    std::vector<NodeId> via_guide = guide.WildcardDescendants(first, second);
    for (NodeId s : via_guide) {
      for (NodeId x = c.ParentOf(s); x != kInvalidNode; x = c.ParentOf(x)) {
        if (c.TagIdOf(x) == first_id) ++guide_pairs;
      }
    }
    int64_t guide_us = gw.ElapsedMicros();
    Stopwatch hw;
    uint64_t hopi_pairs = 0;
    for (NodeId s : tags.Lookup(second)) {
      for (NodeId f : tags.Lookup(first)) {
        if (f != s && index->IsReachable(f, s)) ++hopi_pairs;
      }
    }
    int64_t hopi_us = hw.ElapsedMicros();
    table.AddRow({"//" + first + "//" + second,
                  TablePrinter::FmtCount(guide_pairs),
                  std::to_string(guide_us),
                  TablePrinter::FmtCount(hopi_pairs),
                  std::to_string(hopi_us),
                  TablePrinter::FmtCount(hopi_pairs - guide_pairs)});
  }
  table.Print(std::cout);
  std::cout << "\nShape check (paper Sec 1.1): every pair connected only "
               "across a citation link is invisible to the DataGuide; the "
               "via-links column is where HOPI earns its keep. Guide "
               "lookups of full label paths remain unbeatably fast — the "
               "indexes are complementary, which is the paper's point.\n";
  return 0;
}
