// hopi_serve: stand up the whole serving stack on one synthetic
// collection — datagen -> index build -> frozen snapshot -> EnginePool
// -> ReachabilityService -> epoll HttpServer — behind command-line
// flags, so the server can be curl'ed, load-tested (bench_serving
// --connect), and soak-tested by hand.
//
//   hopi_serve --port=8080 --docs=800 --threads=2 --shed_high=128
//   curl -s localhost:8080/v1/batch -d '{"pairs":[[0,7]]}'
//   curl -s localhost:8080/stats
//
// --shards=N swaps the single EnginePool for a ShardedEngine: the
// collection is partitioned into N shard units (each its own pool +
// cover) behind the scatter-gather router, same routes and wire
// format (batch answers gain "resolved" and "shard_versions" fields;
// /v1/mutate answers 501). --threads then means workers PER SHARD.
//
// Runs until SIGINT/SIGTERM, printing a stats line every
// --stats_interval_s seconds; shuts down in order (stop accepting,
// then drain the pool) so in-flight requests finish.
#include <csignal>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

#include <optional>

#include "collection/collection.h"
#include "datagen/dblp.h"
#include "engine/engine_pool.h"
#include "engine/sharded_engine.h"
#include "engine/snapshot.h"
#include "hopi/build.h"
#include "net/server.h"
#include "net/service.h"
#include "util/cli.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void OnSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace hopi;

  CommandLine cli;
  Status parsed = CommandLine::Parse(
      argc, argv,
      {"port", "bind", "docs", "seed", "threads", "io_threads",
       "queue_capacity", "shed_high", "shed_low", "cache_kb",
       "max_connections", "stats_interval_s", "with_distance", "mutate",
       "max_delta_ops", "rebuild_poll_ms", "rebuild_degradation",
       "overlay_hop_budget", "shards", "merge_deadline_ms"},
      &cli);
  if (!parsed.ok()) {
    std::cerr << parsed << "\n";
    return 2;
  }

  const uint16_t port = static_cast<uint16_t>(cli.GetInt("port", 8080));
  const std::string bind = cli.GetString("bind", "127.0.0.1");
  const size_t docs = static_cast<size_t>(cli.GetInt("docs", 800));
  const uint64_t seed = static_cast<uint64_t>(cli.GetInt("seed", 42));
  const int stats_interval =
      static_cast<int>(cli.GetInt("stats_interval_s", 10));

  std::cerr << "building collection (" << docs << " docs, seed " << seed
            << ")...\n";
  collection::Collection collection;
  datagen::DblpConfig config;
  config.num_docs = docs;
  config.seed = seed;
  if (auto report = datagen::GenerateDblpCollection(config, &collection);
      !report.ok()) {
    std::cerr << report.status() << "\n";
    return 1;
  }
  const bool with_distance = cli.GetInt("with_distance", 1) != 0;
  const bool mutate = cli.GetInt("mutate", 0) != 0;
  const size_t shards = static_cast<size_t>(cli.GetInt("shards", 0));
  if (shards > 0 && mutate) {
    std::cerr << "--mutate is not supported with --shards\n";
    return 2;
  }

  std::unique_ptr<engine::EnginePool> pool;
  std::unique_ptr<engine::RebuildDaemon> daemon;
  std::optional<engine::ShardPlan> shard_plan;
  std::unique_ptr<engine::ShardedEngine> sharded;
  std::unique_ptr<net::ReachabilityService> service;

  const size_t max_delta_ops =
      static_cast<size_t>(cli.GetInt("max_delta_ops", 1024));
  if (shards > 0) {
    std::cerr << "building " << shards << "-shard plan over "
              << collection.NumElements() << " elements...\n";
    engine::ShardPlanOptions plan_options;
    plan_options.num_shards = shards;
    plan_options.with_distance = with_distance;
    plan_options.num_threads = std::thread::hardware_concurrency();
    auto plan = engine::BuildShardPlan(&collection, plan_options);
    if (!plan.ok()) {
      std::cerr << plan.status() << "\n";
      return 1;
    }
    shard_plan = std::move(plan).value();
    std::cerr << "plan: " << shard_plan->num_shards << " shards over "
              << shard_plan->stats.num_partitions << " partitions, "
              << shard_plan->stats.cross_shard_links << " cross-shard links, "
              << shard_plan->stats.cross_shard_routes
              << " skeleton routes\n";
    engine::ShardedEngineOptions engine_options;
    // --threads means workers PER SHARD here (0 = one per core).
    engine_options.threads_per_shard =
        static_cast<size_t>(cli.GetInt("threads", 1));
    engine_options.label_cache_bytes =
        static_cast<size_t>(cli.GetInt("cache_kb", 4096)) * 1024;
    engine_options.queue_capacity =
        static_cast<size_t>(cli.GetInt("queue_capacity", 128));
    engine_options.merge_deadline =
        std::chrono::milliseconds(cli.GetInt("merge_deadline_ms", 2000));
    sharded = std::make_unique<engine::ShardedEngine>(
        &collection, &*shard_plan, engine_options);
    service = std::make_unique<net::ReachabilityService>(sharded.get());
  } else {
    std::cerr << "building index over " << collection.NumElements()
              << " elements...\n";
    IndexBuildOptions build_options;
    // Distance labels cost a little build time but make
    // "want_distances" batches meaningful; --with_distance=0 opts out.
    build_options.with_distance = with_distance;
    auto index = BuildIndex(&collection, build_options);
    if (!index.ok()) {
      std::cerr << index.status() << "\n";
      return 1;
    }
    auto snapshot = engine::BackendSnapshot::Freeze(*index);

    engine::EnginePoolOptions pool_options;
    pool_options.num_threads = static_cast<size_t>(cli.GetInt("threads", 0));
    pool_options.label_cache_bytes =
        static_cast<size_t>(cli.GetInt("cache_kb", 4096)) * 1024;
    pool_options.queue_capacity =
        static_cast<size_t>(cli.GetInt("queue_capacity", 128));
    pool_options.shed_high_watermark =
        static_cast<size_t>(cli.GetInt("shed_high", 256));
    pool_options.shed_low_watermark =
        static_cast<size_t>(cli.GetInt("shed_low", 0));
    pool_options.overlay_hop_budget =
        static_cast<size_t>(cli.GetInt("overlay_hop_budget", 8));
    if (mutate) {
      // Hard shed at 4x the daemon's absorb trigger: the write path
      // backpressures (429) instead of growing the delta unboundedly if
      // rebuilds cannot keep up.
      pool_options.max_delta_ops = max_delta_ops * 4;
    }
    pool = std::make_unique<engine::EnginePool>(snapshot, pool_options);

    if (mutate) {
      if (Status armed = pool->EnableMutations(*index); !armed.ok()) {
        std::cerr << armed << "\n";
        return 1;
      }
      engine::RebuildDaemon::Options daemon_options;
      daemon_options.poll_interval =
          std::chrono::milliseconds(cli.GetInt("rebuild_poll_ms", 250));
      daemon_options.max_delta_ops = max_delta_ops;
      daemon_options.degradation_threshold =
          cli.GetDouble("rebuild_degradation", 2.0);
      daemon = std::make_unique<engine::RebuildDaemon>(pool.get(),
                                                       daemon_options);
    }
    service = std::make_unique<net::ReachabilityService>(pool.get());
    if (mutate) service->EnableMutations();
  }
  net::HttpServerOptions server_options;
  server_options.bind_address = bind;
  server_options.port = port;
  server_options.num_io_threads =
      static_cast<size_t>(cli.GetInt("io_threads", 1));
  server_options.max_connections =
      static_cast<size_t>(cli.GetInt("max_connections", 1024));
  net::HttpServer server(service->AsHandler(), server_options);
  service->BindServerStats([&server] { return server.Stats(); });

  if (Status started = server.Start(); !started.ok()) {
    std::cerr << started << "\n";
    return 1;
  }
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  std::cout << "serving http://" << bind << ":" << server.port() << "  (";
  if (sharded) {
    std::cout << sharded->num_shards() << " shards";
  } else {
    std::cout << pool->num_threads() << " workers";
  }
  std::cout << ", " << server_options.num_io_threads << " io threads)\n";
  std::cout << "try:  curl -s " << bind << ":" << server.port()
            << "/v1/batch -d '{\"pairs\":[[0,7]],\"want_distances\":true}'\n";
  if (mutate) {
    std::cout << "mutations on (absorb at " << max_delta_ops
              << " delta ops):  curl -s " << bind << ":" << server.port()
              << "/v1/mutate -d "
              << "'{\"op\":\"insert_link\",\"source\":0,\"target\":7}'\n";
  }

  int since_report = 0;
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::seconds(1));
    if (stats_interval > 0 && ++since_report >= stats_interval) {
      since_report = 0;
      net::ServerStats http = server.Stats();
      std::cout << "[stats] requests=" << http.requests
                << " responses=" << http.responses
                << " open_conns=" << http.open_connections;
      if (sharded) {
        engine::ShardStats stats = sharded->Stats();
        std::cout << " batches=" << stats.batches
                  << " direct=" << stats.direct_pairs
                  << " cross=" << stats.cross_pairs
                  << " subbatches=" << stats.subbatches
                  << " partial=" << stats.partial_batches << "\n";
        continue;
      }
      engine::PoolStats stats = pool->Stats();
      std::cout << " batches=" << stats.batches
                << " path_queries=" << stats.path_queries
                << " sheds=" << stats.sheds
                << " queued=" << stats.queued;
      if (mutate) {
        std::cout << " mutations=" << stats.mutations
                  << " delta_ops=" << stats.delta_ops
                  << " rebuilds=" << stats.rebuilds
                  << " degradation=" << stats.degradation;
      }
      std::cout << (stats.shedding ? " SHEDDING" : "") << "\n";
    }
  }
  std::cout << "\nshutting down...\n";
  server.Stop();    // no new requests; in-flight responders drop safely
  if (daemon) daemon->Stop();   // no rebuild racing the drain
  if (pool) pool->Shutdown();   // drain queued work
  if (sharded) sharded->Shutdown();  // fail outstanding merges, drain shards
  return 0;
}
