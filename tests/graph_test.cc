#include <gtest/gtest.h>

#include "graph/digraph.h"
#include "graph/scc.h"
#include "graph/subgraph.h"
#include "graph/traversal.h"
#include "test_util.h"

namespace hopi {
namespace {

TEST(DigraphTest, AddNodesAndEdges) {
  Digraph g;
  NodeId a = g.AddNode();
  NodeId b = g.AddNode();
  EXPECT_EQ(g.NumNodes(), 2u);
  EXPECT_TRUE(g.AddEdge(a, b));
  EXPECT_FALSE(g.AddEdge(a, b));  // idempotent
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_TRUE(g.HasEdge(a, b));
  EXPECT_FALSE(g.HasEdge(b, a));
  EXPECT_EQ(g.OutDegree(a), 1u);
  EXPECT_EQ(g.InDegree(b), 1u);
}

TEST(DigraphTest, RemoveEdge) {
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  EXPECT_TRUE(g.RemoveEdge(0, 1));
  EXPECT_FALSE(g.RemoveEdge(0, 1));
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_FALSE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 2));
}

TEST(DigraphTest, IsolateNodeDropsBothDirections) {
  Digraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(3, 1);
  g.IsolateNode(1);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_EQ(g.OutDegree(1), 0u);
  EXPECT_EQ(g.InDegree(1), 0u);
  EXPECT_EQ(g.NumNodes(), 4u);  // ids stay
}

TEST(DigraphTest, SelfLoopAllowed) {
  Digraph g(1);
  EXPECT_TRUE(g.AddEdge(0, 0));
  EXPECT_TRUE(g.HasEdge(0, 0));
}

TEST(DigraphTest, ReversedSwapsDirections) {
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  Digraph r = g.Reversed();
  EXPECT_TRUE(r.HasEdge(1, 0));
  EXPECT_TRUE(r.HasEdge(2, 1));
  EXPECT_EQ(r.NumEdges(), 2u);
}

TEST(DigraphTest, EdgesEnumerates) {
  Digraph g(3);
  g.AddEdge(2, 0);
  g.AddEdge(0, 1);
  auto edges = g.Edges();
  EXPECT_EQ(edges.size(), 2u);
}

TEST(TraversalTest, ReachableFromChain) {
  Digraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  // node 3 isolated
  EXPECT_EQ(ReachableFrom(g, 0), (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(ReachableFrom(g, 3), (std::vector<NodeId>{3}));
  EXPECT_EQ(ReachingTo(g, 2), (std::vector<NodeId>{0, 1, 2}));
}

TEST(TraversalTest, ReachableWithCycle) {
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  g.AddEdge(1, 2);
  EXPECT_EQ(ReachableFrom(g, 0), (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(ReachingTo(g, 0), (std::vector<NodeId>{0, 1}));
}

TEST(TraversalTest, MultiSourceUnion) {
  Digraph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  EXPECT_EQ(ReachableFromAll(g, {0, 2}), (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(TraversalTest, IsReachableMatchesSets) {
  Digraph g = testing::RandomDag(50, 2.0, 17);
  for (NodeId u = 0; u < 50; u += 7) {
    std::vector<NodeId> reach = ReachableFrom(g, u);
    for (NodeId v = 0; v < 50; ++v) {
      bool in_set = std::binary_search(reach.begin(), reach.end(), v);
      EXPECT_EQ(IsReachable(g, u, v), in_set) << u << "->" << v;
    }
  }
}

TEST(TraversalTest, BfsDistances) {
  Digraph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 3);
  g.AddEdge(3, 2);  // two paths to 2, both length 2
  auto d = BfsDistances(g, 0);
  EXPECT_EQ(d[0], 0u);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[2], 2u);
  EXPECT_EQ(d[3], 1u);
  EXPECT_EQ(d[4], kUnreachable);
  auto rd = BfsDistancesReverse(g, 2);
  EXPECT_EQ(rd[0], 2u);
  EXPECT_EQ(rd[1], 1u);
  EXPECT_EQ(rd[2], 0u);
}

TEST(TraversalTest, BoundedBfsRespectsDepth) {
  Digraph g(5);
  for (NodeId i = 0; i + 1 < 5; ++i) g.AddEdge(i, i + 1);
  std::vector<NodeId> visited;
  BoundedBfs(g, 0, 2, [&](NodeId v, uint32_t) { visited.push_back(v); });
  EXPECT_EQ(visited, (std::vector<NodeId>{0, 1, 2}));
}

TEST(TraversalTest, TopologicalSortDag) {
  Digraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 3);
  g.AddEdge(2, 3);
  std::vector<NodeId> order;
  ASSERT_TRUE(TopologicalSort(g, &order));
  std::vector<size_t> pos(4);
  for (size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (const Edge& e : g.Edges()) EXPECT_LT(pos[e.from], pos[e.to]);
}

TEST(TraversalTest, TopologicalSortDetectsCycle) {
  Digraph g(2);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  std::vector<NodeId> order;
  EXPECT_FALSE(TopologicalSort(g, &order));
}

TEST(SccTest, ChainIsAllSingletons) {
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  SccResult scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, 3u);
  EXPECT_NE(scc.component[0], scc.component[1]);
}

TEST(SccTest, CycleCollapses) {
  Digraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  g.AddEdge(2, 3);
  SccResult scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, 2u);
  EXPECT_EQ(scc.component[0], scc.component[1]);
  EXPECT_EQ(scc.component[1], scc.component[2]);
  EXPECT_NE(scc.component[0], scc.component[3]);
}

TEST(SccTest, TarjanOrderIsReverseTopological) {
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  SccResult scc = StronglyConnectedComponents(g);
  // Component ids: if a reaches b then comp(a) > comp(b).
  EXPECT_GT(scc.component[0], scc.component[1]);
  EXPECT_GT(scc.component[1], scc.component[2]);
}

TEST(SccTest, CondensationIsDag) {
  Digraph g = testing::RandomDigraph(60, 150, 5);
  Condensation cond = Condense(g);
  std::vector<NodeId> order;
  EXPECT_TRUE(TopologicalSort(cond.dag, &order));
  // Every original node appears in exactly one member list.
  size_t members = 0;
  for (const auto& m : cond.members) members += m.size();
  EXPECT_EQ(members, g.NumNodes());
}

TEST(SccTest, DeepGraphNoStackOverflow) {
  // Iterative Tarjan must handle a 200k-node path.
  const size_t n = 200000;
  Digraph g(n);
  for (NodeId i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1);
  SccResult scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, n);
}

TEST(SubgraphTest, InducedKeepsInternalEdges) {
  Digraph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 4);
  InducedSubgraph sub = BuildInducedSubgraph(g, {1, 2, 4});
  EXPECT_EQ(sub.graph.NumNodes(), 3u);
  EXPECT_EQ(sub.graph.NumEdges(), 1u);  // only 1->2 survives
  NodeId l1 = sub.Local(1), l2 = sub.Local(2);
  EXPECT_TRUE(sub.graph.HasEdge(l1, l2));
  EXPECT_EQ(sub.Global(l1), 1u);
  EXPECT_EQ(sub.Local(0), kInvalidNode);
}

TEST(SubgraphTest, DuplicateNodesIgnored) {
  Digraph g(3);
  g.AddEdge(0, 1);
  InducedSubgraph sub = BuildInducedSubgraph(g, {0, 1, 0, 1});
  EXPECT_EQ(sub.graph.NumNodes(), 2u);
}

}  // namespace
}  // namespace hopi
