// End-to-end index construction tests: every partitioner x join x
// preselection x distance combination must produce an index whose cover is
// exactly the element-level graph's closure.
#include <gtest/gtest.h>

#include "datagen/inex.h"
#include "datagen/xmark.h"
#include "graph/traversal.h"
#include "hopi/build.h"
#include "test_util.h"
#include "twohop/builder.h"

namespace hopi {
namespace {

using collection::Collection;

struct BuildCase {
  partition::PartitionStrategy strategy;
  JoinAlgorithm join;
  bool preselect;
  bool with_distance;
};

std::string CaseName(const ::testing::TestParamInfo<BuildCase>& info) {
  const BuildCase& c = info.param;
  std::string name;
  switch (c.strategy) {
    case partition::PartitionStrategy::kRandomizedNodeLimit:
      name += "RandNode";
      break;
    case partition::PartitionStrategy::kTcSizeAware:
      name += "TcAware";
      break;
    case partition::PartitionStrategy::kDocPerPartition:
      name += "DocPer";
      break;
  }
  name += c.join == JoinAlgorithm::kRecursive ? "_Recursive" : "_Incremental";
  if (c.preselect) name += "_Preselect";
  if (c.with_distance) name += "_Dist";
  return name;
}

class BuildIndexProperty : public ::testing::TestWithParam<BuildCase> {};

TEST_P(BuildIndexProperty, CoverExactOnDblpCollection) {
  const BuildCase& bc = GetParam();
  Collection c = testing::SmallDblp(60, 101);
  IndexBuildOptions options;
  options.partition.strategy = bc.strategy;
  options.partition.max_nodes = 300;
  options.partition.max_connections = 4000;
  options.join = bc.join;
  options.preselect_link_targets = bc.preselect;
  options.with_distance = bc.with_distance;
  IndexBuildStats stats;
  auto index = BuildIndex(&c, options, &stats);
  ASSERT_TRUE(index.ok()) << index.status();
  EXPECT_GT(stats.num_partitions, 0u);
  EXPECT_EQ(stats.cover_entries, index->CoverSize());
  Status valid = twohop::ValidateCover(index->cover(), c.ElementGraph(),
                                       bc.with_distance);
  EXPECT_TRUE(valid.ok()) << valid;
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, BuildIndexProperty,
    ::testing::Values(
        BuildCase{partition::PartitionStrategy::kRandomizedNodeLimit,
                  JoinAlgorithm::kIncremental, false, false},
        BuildCase{partition::PartitionStrategy::kRandomizedNodeLimit,
                  JoinAlgorithm::kRecursive, false, false},
        BuildCase{partition::PartitionStrategy::kTcSizeAware,
                  JoinAlgorithm::kIncremental, false, false},
        BuildCase{partition::PartitionStrategy::kTcSizeAware,
                  JoinAlgorithm::kRecursive, false, false},
        BuildCase{partition::PartitionStrategy::kDocPerPartition,
                  JoinAlgorithm::kRecursive, false, false},
        BuildCase{partition::PartitionStrategy::kDocPerPartition,
                  JoinAlgorithm::kIncremental, false, false},
        BuildCase{partition::PartitionStrategy::kTcSizeAware,
                  JoinAlgorithm::kRecursive, true, false},
        BuildCase{partition::PartitionStrategy::kRandomizedNodeLimit,
                  JoinAlgorithm::kRecursive, true, false},
        BuildCase{partition::PartitionStrategy::kTcSizeAware,
                  JoinAlgorithm::kRecursive, false, true},
        BuildCase{partition::PartitionStrategy::kTcSizeAware,
                  JoinAlgorithm::kIncremental, false, true},
        BuildCase{partition::PartitionStrategy::kRandomizedNodeLimit,
                  JoinAlgorithm::kRecursive, true, true},
        BuildCase{partition::PartitionStrategy::kDocPerPartition,
                  JoinAlgorithm::kRecursive, false, true}),
    CaseName);

TEST(BuildIndexTest, GlobalBuildMatchesPartitionedSemantics) {
  Collection c = testing::SmallDblp(40, 55);
  IndexBuildOptions global;
  global.global = true;
  auto gi = BuildIndex(&c, global);
  ASSERT_TRUE(gi.ok());
  EXPECT_TRUE(twohop::ValidateCover(gi->cover(), c.ElementGraph()).ok());

  IndexBuildOptions parted;
  parted.partition.max_connections = 2000;
  auto pi = BuildIndex(&c, parted);
  ASSERT_TRUE(pi.ok());
  // Same connectivity answers from both.
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(c.NumElements()));
    NodeId v = static_cast<NodeId>(rng.NextBounded(c.NumElements()));
    EXPECT_EQ(gi->IsReachable(u, v), pi->IsReachable(u, v));
  }
}

TEST(BuildIndexTest, GlobalCoverSmallerThanPartitionedOnes) {
  // The global cover is the quality ceiling (paper Sec 7.2: global is
  // most compact but infeasible to build at scale).
  Collection c = testing::SmallDblp(50, 77);
  IndexBuildOptions global;
  global.global = true;
  auto gi = BuildIndex(&c, global);
  ASSERT_TRUE(gi.ok());
  IndexBuildOptions parted;
  parted.partition.strategy = partition::PartitionStrategy::kDocPerPartition;
  auto pi = BuildIndex(&c, parted);
  ASSERT_TRUE(pi.ok());
  EXPECT_LE(gi->CoverSize(), pi->CoverSize());
}

TEST(BuildIndexTest, LinkFreeCollectionHasNoCrossLinks) {
  Collection c;
  datagen::InexConfig config;
  config.num_docs = 10;
  config.mean_elements_per_doc = 80;
  ASSERT_TRUE(datagen::GenerateInexCollection(config, &c).ok());
  IndexBuildOptions options;
  IndexBuildStats stats;
  auto index = BuildIndex(&c, options, &stats);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(stats.cross_links, 0u);
  EXPECT_TRUE(twohop::ValidateCover(index->cover(), c.ElementGraph()).ok());
}

TEST(BuildIndexTest, QueriesAnswerCorrectly) {
  Collection c = testing::SmallDblp(40, 88);
  auto index = BuildIndex(&c);
  ASSERT_TRUE(index.ok());
  // Descendants/ancestors agree with graph BFS for sampled nodes.
  for (NodeId u = 0; u < c.NumElements(); u += 97) {
    std::vector<NodeId> expect = ReachableFrom(c.ElementGraph(), u);
    expect.erase(std::remove(expect.begin(), expect.end(), u), expect.end());
    EXPECT_EQ(index->Descendants(u), expect) << "node " << u;
    std::vector<NodeId> anc = ReachingTo(c.ElementGraph(), u);
    anc.erase(std::remove(anc.begin(), anc.end(), u), anc.end());
    EXPECT_EQ(index->Ancestors(u), anc) << "node " << u;
  }
}

TEST(BuildIndexTest, RecursiveJoinFasterPathProducesSmallerCover) {
  // Paper Table 2: the new join reduces cover size vs the incremental
  // baseline (by ~40% at paper scale; we only assert the direction).
  Collection c = testing::SmallDblp(150, 202);
  IndexBuildOptions inc_opts;
  inc_opts.partition.max_connections = 3000;
  inc_opts.join = JoinAlgorithm::kIncremental;
  auto inc = BuildIndex(&c, inc_opts);
  ASSERT_TRUE(inc.ok());
  IndexBuildOptions rec_opts = inc_opts;
  rec_opts.join = JoinAlgorithm::kRecursive;
  auto rec = BuildIndex(&c, rec_opts);
  ASSERT_TRUE(rec.ok());
  EXPECT_LE(rec->CoverSize(), inc->CoverSize());
}

TEST(BuildIndexTest, PsgPartitioningEndToEnd) {
  // Force the recursive join to split the PSG and verify exactness of the
  // full pipeline across several cap sizes (property sweep).
  Collection c = testing::SmallDblp(80, 303);
  for (uint64_t cap : {4u, 16u, 64u}) {
    IndexBuildOptions options;
    options.partition.max_connections = 2000;
    options.psg_partition_cap = cap;
    IndexBuildStats stats;
    auto index = BuildIndex(&c, options, &stats);
    ASSERT_TRUE(index.ok());
    Status valid = twohop::ValidateCover(index->cover(), c.ElementGraph());
    EXPECT_TRUE(valid.ok()) << "cap=" << cap << ": " << valid;
  }
}

TEST(BuildIndexTest, PsgPartitioningWithDistanceEndToEnd) {
  Collection c = testing::SmallDblp(40, 304);
  IndexBuildOptions options;
  options.partition.max_connections = 1500;
  options.psg_partition_cap = 8;
  options.with_distance = true;
  auto index = BuildIndex(&c, options);
  ASSERT_TRUE(index.ok());
  Status valid =
      twohop::ValidateCover(index->cover(), c.ElementGraph(), true);
  EXPECT_TRUE(valid.ok()) << valid;
}

TEST(BuildIndexTest, ParallelBuildMatchesSerial) {
  // Partition covers are deterministic per partition, so thread count
  // must not change the result.
  Collection c = testing::SmallDblp(80, 305);
  IndexBuildOptions serial;
  serial.partition.max_connections = 2000;
  auto si = BuildIndex(&c, serial);
  ASSERT_TRUE(si.ok());
  IndexBuildOptions parallel = serial;
  parallel.num_threads = 4;
  auto pi = BuildIndex(&c, parallel);
  ASSERT_TRUE(pi.ok());
  EXPECT_EQ(si->CoverSize(), pi->CoverSize());
  Status valid = twohop::ValidateCover(pi->cover(), c.ElementGraph());
  EXPECT_TRUE(valid.ok()) << valid;
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(c.NumElements()));
    NodeId v = static_cast<NodeId>(rng.NextBounded(c.NumElements()));
    EXPECT_EQ(si->IsReachable(u, v), pi->IsReachable(u, v));
  }
}

TEST(BuildIndexTest, RebuildAdvisorTracksDegradation) {
  Collection c = testing::SmallDblp(30, 306);
  auto built = BuildIndex(&c);
  ASSERT_TRUE(built.ok());
  HopiIndex index = std::move(built).value();
  EXPECT_NEAR(index.DegradationFactor(), 1.0, 1e-9);
  EXPECT_FALSE(index.ShouldRebuild());
  // Pile on random links; incremental merging adds redundant centers, so
  // density must not shrink and the advisor must eventually trip at a low
  // threshold.
  Rng rng(7);
  for (int i = 0; i < 40; ++i) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(c.NumElements()));
    NodeId v = static_cast<NodeId>(rng.NextBounded(c.NumElements()));
    if (u != v && !c.ElementGraph().HasEdge(u, v)) {
      ASSERT_TRUE(index.InsertLink(u, v).ok());
    }
  }
  EXPECT_GT(index.DegradationFactor(), 1.0);
  EXPECT_TRUE(index.ShouldRebuild(1.01));
}

TEST(BuildIndexTest, EmptyCollection) {
  Collection c;
  auto index = BuildIndex(&c);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->CoverSize(), 0u);
  EXPECT_NEAR(index->DegradationFactor(), 1.0, 1e-9);
}

TEST(BuildIndexTest, SingleDocumentCollection) {
  Collection c;
  collection::DocId d = c.AddDocument("only.xml");
  NodeId r = c.AddElement(d, "r");
  NodeId x = c.AddElement(d, "x", r);
  NodeId y = c.AddElement(d, "y", x);
  auto index = BuildIndex(&c);
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE(index->IsReachable(r, y));
  EXPECT_FALSE(index->IsReachable(y, r));
  EXPECT_TRUE(twohop::ValidateCover(index->cover(), c.ElementGraph()).ok());
}

TEST(BuildIndexTest, DegradationStableUnderDeletions) {
  // Deletions remove labels; the advisor must not overflow or report
  // nonsense when the collection shrinks.
  Collection c = testing::SmallDblp(20, 307);
  auto built = BuildIndex(&c);
  ASSERT_TRUE(built.ok());
  HopiIndex index = std::move(built).value();
  for (collection::DocId d = 0; d < 5; ++d) {
    if (c.IsLive(d)) {
      ASSERT_TRUE(index.DeleteDocument(d).ok());
    }
  }
  double f = index.DegradationFactor();
  EXPECT_GT(f, 0.0);
  EXPECT_LT(f, 100.0);
}

TEST(BuildIndexTest, ThreadBudgetNeverChangesTheIndex) {
  // Partition covers are bit-deterministic for every thread count, and
  // the unification/join passes are serial — so the whole index must be
  // identical whether the budget is 1 thread or split across outer
  // partition workers and inner cover threads.
  Collection c = testing::SmallDblp(60, 211);
  IndexBuildOptions base;
  base.partition.strategy = partition::PartitionStrategy::kTcSizeAware;
  base.partition.max_connections = 4000;
  base.preselect_link_targets = true;
  base.num_threads = 1;
  auto sequential = BuildIndex(&c, base);
  ASSERT_TRUE(sequential.ok()) << sequential.status();
  for (size_t threads : {2u, 4u, 7u}) {
    IndexBuildOptions opts = base;
    opts.num_threads = threads;
    auto threaded = BuildIndex(&c, opts);
    ASSERT_TRUE(threaded.ok()) << threaded.status();
    const twohop::TwoHopCover& a = sequential->cover();
    const twohop::TwoHopCover& b = threaded->cover();
    ASSERT_EQ(a.NumNodes(), b.NumNodes());
    EXPECT_EQ(a.Size(), b.Size());
    for (NodeId v = 0; v < a.NumNodes(); ++v) {
      EXPECT_EQ(a.In(v), b.In(v)) << "threads=" << threads << " node=" << v;
      EXPECT_EQ(a.Out(v), b.Out(v)) << "threads=" << threads << " node=" << v;
    }
  }
}

TEST(BuildIndexTest, GlobalBuildUsesInnerThreadsDeterministically) {
  Collection c = testing::SmallDblp(25, 212);
  IndexBuildOptions base;
  base.global = true;
  base.num_threads = 1;
  auto sequential = BuildIndex(&c, base);
  ASSERT_TRUE(sequential.ok());
  IndexBuildOptions threaded_opts = base;
  threaded_opts.num_threads = 4;
  IndexBuildStats stats;
  auto threaded = BuildIndex(&c, threaded_opts, &stats);
  ASSERT_TRUE(threaded.ok());
  EXPECT_TRUE(
      twohop::ValidateCover(threaded->cover(), c.ElementGraph()).ok());
  EXPECT_EQ(sequential->cover().Size(), threaded->cover().Size());
  const twohop::TwoHopCover& a = sequential->cover();
  const twohop::TwoHopCover& b = threaded->cover();
  for (NodeId v = 0; v < a.NumNodes(); ++v) {
    EXPECT_EQ(a.In(v), b.In(v));
    EXPECT_EQ(a.Out(v), b.Out(v));
  }
}

TEST(BuildIndexTest, XmarkCollectionEndToEnd) {
  Collection c;
  datagen::XmarkConfig config;
  config.num_items = 50;
  config.num_people = 30;
  config.num_auctions = 40;
  ASSERT_TRUE(datagen::GenerateXmarkCollection(config, &c).ok());
  IndexBuildOptions options;
  options.partition.max_connections = 3000;
  auto index = BuildIndex(&c, options);
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE(twohop::ValidateCover(index->cover(), c.ElementGraph()).ok());
}

}  // namespace
}  // namespace hopi
