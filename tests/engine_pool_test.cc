// EnginePool unit + concurrency stress tests.
//
// The stress half is the TSan target: many client threads hammer
// Batch() while another thread Swap()s snapshots in a loop, and every
// response must (a) carry the version of exactly one published
// snapshot and (b) contain answers computed entirely against that
// snapshot — the two graphs differ on known probe pairs, so a torn
// read (half old index, half new) is detected by content, not just by
// the sanitizer. Pool stats are sampled concurrently and must be
// monotonic.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/engine_pool.h"
#include "engine/snapshot.h"
#include "hopi/build.h"
#include "test_util.h"

namespace hopi::engine {
namespace {

using collection::Collection;

HopiIndex MustBuild(Collection* c, bool with_distance = false) {
  IndexBuildOptions options;
  options.with_distance = with_distance;
  auto index = BuildIndex(c, options);
  EXPECT_TRUE(index.ok()) << index.status();
  return std::move(index).value();
}

// ---- fixtures ----

class EnginePoolFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    c_ = hopi::testing::SmallDblp(30, 41);
    index_ = std::make_unique<HopiIndex>(MustBuild(&c_, true));
    snapshot_ = BackendSnapshot::Freeze(*index_);
  }

  std::vector<NodePair> RandomPairs(size_t count, uint64_t seed) const {
    Rng rng(seed);
    std::vector<NodePair> pairs;
    for (size_t i = 0; i < count; ++i) {
      pairs.push_back(
          {static_cast<NodeId>(rng.NextBounded(c_.NumElements())),
           static_cast<NodeId>(rng.NextBounded(c_.NumElements()))});
    }
    return pairs;
  }

  Collection c_;
  std::unique_ptr<HopiIndex> index_;
  std::shared_ptr<const BackendSnapshot> snapshot_;
};

// ---- unit tests ----

TEST_F(EnginePoolFixture, BatchMatchesSingleEngineAcrossWorkers) {
  EnginePoolOptions options;
  options.num_threads = 4;
  options.dispatch = EnginePoolOptions::Dispatch::kRoundRobin;
  EnginePool pool(snapshot_, options);
  EXPECT_EQ(pool.num_threads(), 4u);

  QueryEngine reference = QueryEngine::ForIndex(*index_);
  std::vector<std::future<PoolBatchResponse>> futures;
  for (uint64_t seed = 0; seed < 16; ++seed) {
    auto submitted = pool.SubmitBatch(
        {.pairs = RandomPairs(200, seed), .want_distances = true});
    ASSERT_TRUE(submitted.ok()) << submitted.status();
    futures.push_back(std::move(submitted).value());
  }
  for (uint64_t seed = 0; seed < 16; ++seed) {
    PoolBatchResponse response = futures[seed].get();
    EXPECT_EQ(response.snapshot_version, snapshot_->version());
    EXPECT_LT(response.worker, 4u);
    BatchResponse expect = reference.Batch(
        {.pairs = RandomPairs(200, seed), .want_distances = true});
    EXPECT_EQ(response.batch.reachable, expect.reachable);
    EXPECT_EQ(response.batch.distances, expect.distances);
  }
  PoolStats stats = pool.Stats();
  EXPECT_EQ(stats.batches, 16u);
  EXPECT_EQ(stats.snapshot_version, snapshot_->version());
  // Every worker was bound at most once (single snapshot).
  EXPECT_LE(stats.rebinds, 4u);
}

TEST_F(EnginePoolFixture, PathQueriesRunThroughThePool) {
  EnginePool pool(snapshot_, {.num_threads = 2});
  QueryEngine reference = QueryEngine::ForIndex(*index_);
  for (const char* expression :
       {"//inproceedings//cite//title", "//abstract//sentence"}) {
    auto response = pool.Query({.expression = expression});
    ASSERT_TRUE(response.ok()) << response.status();
    ASSERT_TRUE(response->result.ok()) << response->result.status();
    auto expect = reference.Query({.expression = expression});
    ASSERT_TRUE(expect.ok());
    EXPECT_EQ(response->result->count, expect->count);
    ASSERT_EQ(response->result->matches.size(), expect->matches.size());
    for (size_t i = 0; i < expect->matches.size(); ++i) {
      EXPECT_EQ(response->result->matches[i].bindings,
                expect->matches[i].bindings);
    }
  }
  auto malformed = pool.Query({.expression = "//a/b"});
  ASSERT_TRUE(malformed.ok());  // submission succeeded...
  EXPECT_TRUE(malformed->result.status().IsInvalidArgument());  // ...query not
  EXPECT_EQ(pool.Stats().path_queries, 3u);
}

TEST_F(EnginePoolFixture, LeastLoadedAndRoundRobinBothServeEverything) {
  for (auto dispatch : {EnginePoolOptions::Dispatch::kRoundRobin,
                        EnginePoolOptions::Dispatch::kLeastLoaded}) {
    EnginePoolOptions options;
    options.num_threads = 3;
    options.dispatch = dispatch;
    EnginePool pool(snapshot_, options);
    std::vector<std::future<PoolBatchResponse>> futures;
    for (uint64_t seed = 100; seed < 140; ++seed) {
      auto submitted = pool.SubmitBatch({.pairs = RandomPairs(50, seed)});
      ASSERT_TRUE(submitted.ok());
      futures.push_back(std::move(submitted).value());
    }
    for (auto& future : futures) {
      EXPECT_EQ(future.get().batch.reachable.size(), 50u);
    }
    EXPECT_EQ(pool.Stats().batches, 40u);
  }
}

TEST_F(EnginePoolFixture, ShutdownDrainsThenRejects) {
  EnginePool pool(snapshot_, {.num_threads = 2});
  std::vector<std::future<PoolBatchResponse>> futures;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    auto submitted = pool.SubmitBatch({.pairs = RandomPairs(400, seed)});
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted).value());
  }
  pool.Shutdown();
  pool.Shutdown();  // idempotent
  // Everything queued before Shutdown completes.
  for (auto& future : futures) {
    EXPECT_EQ(future.get().batch.reachable.size(), 400u);
  }
  EXPECT_EQ(pool.Stats().batches, 8u);
  auto rejected = pool.SubmitBatch({.pairs = RandomPairs(4, 9)});
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsFailedPrecondition());
  auto rejected_query = pool.Query({.expression = "//a"});
  EXPECT_TRUE(rejected_query.status().IsFailedPrecondition());
}

TEST_F(EnginePoolFixture, SwapRebindsWorkersAndReportsNewVersion) {
  // Second snapshot: same collection shape, one maintenance delta.
  Collection c2 = hopi::testing::SmallDblp(30, 41);
  HopiIndex index2 = MustBuild(&c2, true);
  auto snapshot2 = BackendSnapshot::Freeze(index2);
  ASSERT_NE(snapshot_->version(), snapshot2->version());

  EnginePool pool(snapshot_, {.num_threads = 2});
  auto first = pool.Batch({.pairs = RandomPairs(32, 1)});
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->snapshot_version, snapshot_->version());

  pool.Swap(snapshot2);
  EXPECT_EQ(pool.snapshot()->version(), snapshot2->version());
  auto second = pool.Batch({.pairs = RandomPairs(32, 2)});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->snapshot_version, snapshot2->version());
  PoolStats stats = pool.Stats();
  EXPECT_EQ(stats.swaps, 1u);
  EXPECT_EQ(stats.snapshot_version, snapshot2->version());
}

TEST_F(EnginePoolFixture, WorkerCacheStatsReadableWhileServing) {
  // The linlout (copy-route) backend exercises the per-worker caches.
  auto store = std::make_shared<storage::LinLoutStore>(
      storage::LinLoutStore::FromCover(index_->cover(), true));
  auto snapshot = BackendSnapshot::OfStore(Unowned(c_), store);
  EnginePool pool(snapshot, {.num_threads = 2});
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      for (const LabelCache::Stats& s : pool.WorkerCacheStats()) {
        EXPECT_GE(s.hits + s.misses, 0u);
        EXPECT_LE(s.bytes_resident, s.byte_budget);
      }
    }
  });
  for (uint64_t seed = 0; seed < 50; ++seed) {
    auto r = pool.Batch({.pairs = RandomPairs(300, seed)});
    ASSERT_TRUE(r.ok());
  }
  done.store(true, std::memory_order_release);
  reader.join();
  PoolStats stats = pool.Stats();
  EXPECT_GT(stats.cache_hits + stats.cache_misses, 0u);
  uint64_t cache_total = 0;
  for (const LabelCache::Stats& s : pool.WorkerCacheStats()) {
    cache_total += s.hits + s.misses;
  }
  EXPECT_EQ(cache_total, stats.cache_hits + stats.cache_misses);
}

// ---- admission control + callback submission (overload path) ----

TEST(AdmissionControllerTest, DisabledGateAdmitsEverything) {
  AdmissionController gate(0, 0);
  EXPECT_TRUE(gate.Admit(0));
  EXPECT_TRUE(gate.Admit(1u << 30));
  EXPECT_FALSE(gate.shedding());
}

TEST(AdmissionControllerTest, TripsAtHighReadmitsAtLow) {
  AdmissionController gate(10, 4);
  EXPECT_TRUE(gate.Admit(9));    // below high
  EXPECT_FALSE(gate.Admit(10));  // trips
  EXPECT_TRUE(gate.shedding());
  // Hysteresis: between low and high it keeps shedding.
  EXPECT_FALSE(gate.Admit(9));
  EXPECT_FALSE(gate.Admit(5));
  // At/below low it re-admits, and stays open below high.
  EXPECT_TRUE(gate.Admit(4));
  EXPECT_FALSE(gate.shedding());
  EXPECT_TRUE(gate.Admit(9));
  EXPECT_FALSE(gate.Admit(11));  // trips again
}

TEST(AdmissionControllerTest, LowDefaultsToHalfHighAndClampsBelowHigh) {
  AdmissionController half(10, 0);  // low -> 5
  EXPECT_FALSE(half.Admit(10));
  EXPECT_FALSE(half.Admit(6));
  EXPECT_TRUE(half.Admit(5));

  AdmissionController clamped(3, 99);  // low clamps to high - 1 = 2
  EXPECT_FALSE(clamped.Admit(3));
  EXPECT_FALSE(clamped.Admit(3));
  EXPECT_TRUE(clamped.Admit(2));
}

TEST_F(EnginePoolFixture, CallbackSubmissionDeliversOnWorker) {
  EnginePool pool(snapshot_, {.num_threads = 2});
  std::promise<Result<PoolBatchResponse>> delivered;
  Status submitted = pool.SubmitBatch(
      {.pairs = RandomPairs(64, 7)},
      [&](Result<PoolBatchResponse> result) {
        delivered.set_value(std::move(result));
      });
  ASSERT_TRUE(submitted.ok());
  Result<PoolBatchResponse> result = delivered.get_future().get();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->batch.reachable.size(), 64u);
  EXPECT_EQ(result->snapshot_version, snapshot_->version());

  // Path queries through the same channel; a ground-truth engine
  // agrees with the pool's answer.
  std::promise<Result<PoolPathResponse>> path_delivered;
  ASSERT_TRUE(pool.SubmitQuery({.expression = "//article//author"},
                               [&](Result<PoolPathResponse> result) {
                                 path_delivered.set_value(std::move(result));
                               })
                  .ok());
  Result<PoolPathResponse> path = path_delivered.get_future().get();
  ASSERT_TRUE(path.ok());
  ASSERT_TRUE(path->result.ok());
  QueryEngine reference(c_, snapshot_->MakeBackend());
  auto expected = reference.Query({.expression = "//article//author"});
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(path->result.value().count, expected->count);
}

TEST_F(EnginePoolFixture, BoundedLaneShedsDeterministicallyThenReadmits) {
  // One worker whose first job blocks on a promise we hold: with the
  // worker provably stalled, lane occupancy is deterministic and the
  // shed point is exact — no sleeps, no racing.
  EnginePool pool(snapshot_, {.num_threads = 1, .queue_capacity = 1});
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  std::promise<void> entered;
  ASSERT_TRUE(pool.SubmitBatch({.pairs = RandomPairs(1, 0)},
                               [&](Result<PoolBatchResponse>) {
                                 entered.set_value();
                                 gate.wait();
                               })
                  .ok());
  entered.get_future().wait();  // worker is now inside the callback

  // Slot 1: fills the lane (capacity 1). Slot 2: must shed.
  std::promise<Result<PoolBatchResponse>> queued_done;
  ASSERT_TRUE(pool.SubmitBatch({.pairs = RandomPairs(2, 1)},
                               [&](Result<PoolBatchResponse> result) {
                                 queued_done.set_value(std::move(result));
                               })
                  .ok());
  Status shed = pool.SubmitBatch({.pairs = RandomPairs(2, 2)},
                                 [](Result<PoolBatchResponse>) {
                                   FAIL() << "shed submission must never run";
                                 });
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.IsResourceExhausted());
  // The futures API sheds identically (same Enqueue tail).
  auto shed_future = pool.SubmitBatch({.pairs = RandomPairs(2, 3)});
  ASSERT_FALSE(shed_future.ok());
  EXPECT_TRUE(shed_future.status().IsResourceExhausted());

  PoolStats during = pool.Stats();
  EXPECT_EQ(during.sheds, 2u);
  EXPECT_EQ(during.queued, 1u);
  EXPECT_EQ(during.executing, 1u);

  release.set_value();  // un-stall; the queued job drains
  ASSERT_TRUE(queued_done.get_future().get().ok());
  // Re-admission: the lane has room again.
  auto after = pool.Batch({.pairs = RandomPairs(2, 4)});
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(pool.Stats().sheds, 2u);  // no new sheds
}

TEST_F(EnginePoolFixture, WatermarkGateShedsUntilDrainedToLow) {
  // Capacity stays unbounded; only the admission watermarks act. One
  // stalled worker holds executing=1, so with high=2 the second
  // *queued* item trips the gate (load = queued 1 + executing 1 = 2).
  EnginePool pool(snapshot_,
                  {.num_threads = 1,
                   .shed_high_watermark = 2,
                   .shed_low_watermark = 1});
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  std::promise<void> entered;
  ASSERT_TRUE(pool.SubmitBatch({.pairs = RandomPairs(1, 0)},
                               [&](Result<PoolBatchResponse>) {
                                 entered.set_value();
                                 gate.wait();
                               })
                  .ok());
  entered.get_future().wait();

  // load = 1 (executing): admitted.
  std::promise<Result<PoolBatchResponse>> queued_done;
  ASSERT_TRUE(pool.SubmitBatch({.pairs = RandomPairs(2, 1)},
                               [&](Result<PoolBatchResponse> result) {
                                 queued_done.set_value(std::move(result));
                               })
                  .ok());
  // load = 2 = high: sheds, and keeps shedding while tripped.
  Status shed = pool.SubmitBatch({.pairs = RandomPairs(2, 2)},
                                 [](Result<PoolBatchResponse>) {});
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.IsResourceExhausted());
  EXPECT_TRUE(pool.Stats().shedding);

  release.set_value();
  ASSERT_TRUE(queued_done.get_future().get().ok());
  // Drained to 0 <= low: the next submission re-admits.
  auto after = pool.Batch({.pairs = RandomPairs(2, 3)});
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(pool.Stats().shedding);
  EXPECT_GE(pool.Stats().sheds, 1u);
}

TEST_F(EnginePoolFixture, ShutdownStillDrainsCallbackJobs) {
  EnginePool pool(snapshot_, {.num_threads = 2});
  std::atomic<int> delivered{0};
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(pool.SubmitBatch(
                        {.pairs = RandomPairs(50, static_cast<uint64_t>(i))},
                        [&](Result<PoolBatchResponse> result) {
                          ASSERT_TRUE(result.ok());
                          delivered.fetch_add(1);
                        })
                    .ok());
  }
  pool.Shutdown();
  EXPECT_EQ(delivered.load(), 16);  // OK submission => runs exactly once
  Status rejected = pool.SubmitBatch({.pairs = RandomPairs(2, 99)},
                                     [](Result<PoolBatchResponse>) {});
  EXPECT_TRUE(rejected.IsFailedPrecondition());
}

// ---- the swap/stress test ----

// Two graphs that provably disagree: B is A plus one link that creates
// connections absent in A. Expected full matrices are precomputed per
// snapshot version; every pool response must match the matrix of the
// version it claims to have been served from.
TEST(EnginePoolStressTest, ConcurrentBatchesAndSwapsServeConsistentSnapshots) {
  Collection c = hopi::testing::RandomCollection(5, 6, 8, 4242);
  HopiIndex index = MustBuild(&c);
  auto snapshot_a = BackendSnapshot::Freeze(index);

  // Mutate: link two far-apart roots, then freeze again.
  std::vector<NodeId> live = hopi::testing::LiveElements(c);
  bool mutated = false;
  Rng link_rng(7);
  for (int attempt = 0; attempt < 50 && !mutated; ++attempt) {
    NodeId u = live[link_rng.NextBounded(live.size())];
    NodeId v = live[link_rng.NextBounded(live.size())];
    if (u == v || c.ElementGraph().HasEdge(u, v) || index.IsReachable(u, v)) {
      continue;
    }
    ASSERT_TRUE(index.InsertLink(u, v).ok());
    mutated = true;
  }
  ASSERT_TRUE(mutated) << "could not find a connecting link to insert";
  auto snapshot_b = BackendSnapshot::Freeze(index);

  // Precompute both full matrices (n is small).
  const auto n = static_cast<NodeId>(c.NumElements());
  std::map<uint64_t, std::vector<bool>> matrix_of_version;
  for (const auto& snapshot : {snapshot_a, snapshot_b}) {
    QueryEngine engine(snapshot->collection(), snapshot->MakeBackend(),
                       {.shared_tags = snapshot->tags()});
    std::vector<bool>& matrix = matrix_of_version[snapshot->version()];
    matrix.resize(static_cast<size_t>(n) * n);
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = 0; v < n; ++v) {
        matrix[static_cast<size_t>(u) * n + v] =
            engine.backend().IsReachable(u, v);
      }
    }
  }
  ASSERT_NE(matrix_of_version[snapshot_a->version()],
            matrix_of_version[snapshot_b->version()])
      << "the two snapshots must disagree somewhere for the test to bite";

  EnginePoolOptions options;
  options.num_threads = 4;
  EnginePool pool(snapshot_a, options);

  constexpr int kClients = 4;
  constexpr int kBatchesPerClient = 120;
  std::atomic<bool> clients_done{false};
  std::atomic<size_t> torn_responses{0};
  std::atomic<size_t> unknown_versions{0};

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int client = 0; client < kClients; ++client) {
    clients.emplace_back([&, client] {
      Rng rng(1000 + client);
      for (int b = 0; b < kBatchesPerClient; ++b) {
        std::vector<NodePair> pairs;
        for (int i = 0; i < 64; ++i) {
          pairs.push_back({static_cast<NodeId>(rng.NextBounded(n)),
                           static_cast<NodeId>(rng.NextBounded(n))});
        }
        auto response = pool.Batch({.pairs = pairs});
        ASSERT_TRUE(response.ok()) << response.status();
        auto it = matrix_of_version.find(response->snapshot_version);
        if (it == matrix_of_version.end()) {
          unknown_versions.fetch_add(1);
          continue;
        }
        for (size_t i = 0; i < pairs.size(); ++i) {
          bool expect = it->second[static_cast<size_t>(pairs[i].first) * n +
                                   pairs[i].second];
          if (response->batch.reachable[i] != expect) {
            torn_responses.fetch_add(1);
          }
        }
      }
    });
  }

  std::thread swapper([&] {
    for (int s = 0; !clients_done.load(); ++s) {
      pool.Swap(s % 2 == 0 ? snapshot_b : snapshot_a);
      std::this_thread::yield();
    }
  });

  // Stats sampler: every field of PoolStats (except snapshot_version)
  // must be monotonic while the pool is being hammered.
  std::thread sampler([&] {
    PoolStats last;
    while (!clients_done.load()) {
      PoolStats now = pool.Stats();
      EXPECT_GE(now.batches, last.batches);
      EXPECT_GE(now.probes, last.probes);
      EXPECT_GE(now.unique_probes, last.unique_probes);
      EXPECT_GE(now.cache_hits, last.cache_hits);
      EXPECT_GE(now.cache_misses, last.cache_misses);
      EXPECT_GE(now.labels_borrowed, last.labels_borrowed);
      EXPECT_GE(now.backend_probes, last.backend_probes);
      EXPECT_GE(now.swaps, last.swaps);
      EXPECT_GE(now.rebinds, last.rebinds);
      last = now;
      std::this_thread::yield();
    }
  });

  for (auto& client : clients) client.join();
  clients_done.store(true);
  swapper.join();
  sampler.join();

  EXPECT_EQ(torn_responses.load(), 0u)
      << "responses mixing two snapshots detected";
  EXPECT_EQ(unknown_versions.load(), 0u);
  PoolStats stats = pool.Stats();
  EXPECT_EQ(stats.batches,
            static_cast<uint64_t>(kClients) * kBatchesPerClient);
  EXPECT_GT(stats.rebinds, 0u);
  EXPECT_GE(stats.swaps, 1u);
}

// Swapping between backend *kinds* (hopi cover -> mmapped file) while
// serving: the label route changes under the clients' feet, answers
// must not.
TEST(EnginePoolStressTest, SwapAcrossBackendKindsKeepsAnswers) {
  Collection c = hopi::testing::RandomCollection(5, 6, 10, 99);
  HopiIndex index = MustBuild(&c);
  auto hopi_snapshot = BackendSnapshot::Freeze(index);

  auto store = std::make_shared<storage::LinLoutStore>(
      storage::LinLoutStore::FromCover(index.cover(), false));
  std::string path = ::testing::TempDir() + "hopi_pool_swap_kinds.bin";
  ASSERT_TRUE(store->WriteToFile(path).ok());
  auto mapped_result = storage::MappedLinLoutStore::Open(path);
  ASSERT_TRUE(mapped_result.ok()) << mapped_result.status();
  auto mapped = std::make_shared<storage::MappedLinLoutStore>(
      std::move(mapped_result).value());
  auto collection = std::shared_ptr<const Collection>(
      hopi_snapshot, &hopi_snapshot->collection());
  // The rotated snapshots share the frozen collection, so they can
  // also share its tag index (built once by Freeze).
  auto store_snapshot =
      BackendSnapshot::OfStore(collection, store, hopi_snapshot->tags());
  auto mapped_snapshot = BackendSnapshot::OfMappedStore(
      collection, mapped, hopi_snapshot->tags());

  const auto n = static_cast<NodeId>(c.NumElements());
  std::vector<bool> matrix(static_cast<size_t>(n) * n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      matrix[static_cast<size_t>(u) * n + v] = index.IsReachable(u, v);
    }
  }

  EnginePool pool(hopi_snapshot, {.num_threads = 3});
  std::atomic<bool> done{false};
  std::atomic<size_t> wrong{0};
  std::vector<std::thread> clients;
  for (int client = 0; client < 3; ++client) {
    clients.emplace_back([&, client] {
      Rng rng(500 + client);
      for (int b = 0; b < 150; ++b) {
        BatchRequest request;
        std::vector<NodePair> pairs;
        for (int i = 0; i < 48; ++i) {
          pairs.push_back({static_cast<NodeId>(rng.NextBounded(n)),
                           static_cast<NodeId>(rng.NextBounded(n))});
        }
        request.pairs = pairs;
        auto response = pool.Batch(std::move(request));
        if (!response.ok()) continue;
        for (size_t i = 0; i < pairs.size(); ++i) {
          bool expect = matrix[static_cast<size_t>(pairs[i].first) * n +
                               pairs[i].second];
          if (response->batch.reachable[i] != expect) wrong.fetch_add(1);
        }
      }
    });
  }
  std::thread swapper([&] {
    const std::shared_ptr<const BackendSnapshot> rotation[] = {
        store_snapshot, mapped_snapshot, hopi_snapshot};
    for (int s = 0; !done.load(); ++s) {
      pool.Swap(rotation[s % 3]);
      std::this_thread::yield();
    }
  });
  for (auto& client : clients) client.join();
  done.store(true);
  swapper.join();
  EXPECT_EQ(wrong.load(), 0u);
  pool.Shutdown();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hopi::engine
