// EnginePool unit + concurrency stress tests.
//
// The stress half is the TSan target: many client threads hammer
// Batch() while another thread Swap()s snapshots in a loop, and every
// response must (a) carry the version of exactly one published
// snapshot and (b) contain answers computed entirely against that
// snapshot — the two graphs differ on known probe pairs, so a torn
// read (half old index, half new) is detected by content, not just by
// the sanitizer. Pool stats are sampled concurrently and must be
// monotonic.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/engine_pool.h"
#include "engine/snapshot.h"
#include "hopi/baseline.h"
#include "hopi/build.h"
#include "test_util.h"

namespace hopi::engine {
namespace {

using collection::Collection;

HopiIndex MustBuild(Collection* c, bool with_distance = false) {
  IndexBuildOptions options;
  options.with_distance = with_distance;
  auto index = BuildIndex(c, options);
  EXPECT_TRUE(index.ok()) << index.status();
  return std::move(index).value();
}

// ---- fixtures ----

class EnginePoolFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    c_ = hopi::testing::SmallDblp(30, 41);
    index_ = std::make_unique<HopiIndex>(MustBuild(&c_, true));
    snapshot_ = BackendSnapshot::Freeze(*index_);
  }

  std::vector<NodePair> RandomPairs(size_t count, uint64_t seed) const {
    Rng rng(seed);
    std::vector<NodePair> pairs;
    for (size_t i = 0; i < count; ++i) {
      pairs.push_back(
          {static_cast<NodeId>(rng.NextBounded(c_.NumElements())),
           static_cast<NodeId>(rng.NextBounded(c_.NumElements()))});
    }
    return pairs;
  }

  Collection c_;
  std::unique_ptr<HopiIndex> index_;
  std::shared_ptr<const BackendSnapshot> snapshot_;
};

// ---- unit tests ----

TEST_F(EnginePoolFixture, BatchMatchesSingleEngineAcrossWorkers) {
  EnginePoolOptions options;
  options.num_threads = 4;
  options.dispatch = EnginePoolOptions::Dispatch::kRoundRobin;
  EnginePool pool(snapshot_, options);
  EXPECT_EQ(pool.num_threads(), 4u);

  QueryEngine reference = QueryEngine::ForIndex(*index_);
  std::vector<std::future<PoolBatchResponse>> futures;
  for (uint64_t seed = 0; seed < 16; ++seed) {
    auto submitted = pool.SubmitBatch(
        {.pairs = RandomPairs(200, seed), .want_distances = true});
    ASSERT_TRUE(submitted.ok()) << submitted.status();
    futures.push_back(std::move(submitted).value());
  }
  for (uint64_t seed = 0; seed < 16; ++seed) {
    PoolBatchResponse response = futures[seed].get();
    EXPECT_EQ(response.snapshot_version, snapshot_->version());
    EXPECT_LT(response.worker, 4u);
    BatchResponse expect = reference.Batch(
        {.pairs = RandomPairs(200, seed), .want_distances = true});
    EXPECT_EQ(response.batch.reachable, expect.reachable);
    EXPECT_EQ(response.batch.distances, expect.distances);
  }
  PoolStats stats = pool.Stats();
  EXPECT_EQ(stats.batches, 16u);
  EXPECT_EQ(stats.snapshot_version, snapshot_->version());
  // Every worker was bound at most once (single snapshot).
  EXPECT_LE(stats.rebinds, 4u);
}

TEST_F(EnginePoolFixture, PathQueriesRunThroughThePool) {
  EnginePool pool(snapshot_, {.num_threads = 2});
  QueryEngine reference = QueryEngine::ForIndex(*index_);
  for (const char* expression :
       {"//inproceedings//cite//title", "//abstract//sentence"}) {
    auto response = pool.Query({.expression = expression});
    ASSERT_TRUE(response.ok()) << response.status();
    ASSERT_TRUE(response->result.ok()) << response->result.status();
    auto expect = reference.Query({.expression = expression});
    ASSERT_TRUE(expect.ok());
    EXPECT_EQ(response->result->count, expect->count);
    ASSERT_EQ(response->result->matches.size(), expect->matches.size());
    for (size_t i = 0; i < expect->matches.size(); ++i) {
      EXPECT_EQ(response->result->matches[i].bindings,
                expect->matches[i].bindings);
    }
  }
  auto malformed = pool.Query({.expression = "//a/b"});
  ASSERT_TRUE(malformed.ok());  // submission succeeded...
  EXPECT_TRUE(malformed->result.status().IsInvalidArgument());  // ...query not
  EXPECT_EQ(pool.Stats().path_queries, 3u);
}

TEST_F(EnginePoolFixture, LeastLoadedAndRoundRobinBothServeEverything) {
  for (auto dispatch : {EnginePoolOptions::Dispatch::kRoundRobin,
                        EnginePoolOptions::Dispatch::kLeastLoaded}) {
    EnginePoolOptions options;
    options.num_threads = 3;
    options.dispatch = dispatch;
    EnginePool pool(snapshot_, options);
    std::vector<std::future<PoolBatchResponse>> futures;
    for (uint64_t seed = 100; seed < 140; ++seed) {
      auto submitted = pool.SubmitBatch({.pairs = RandomPairs(50, seed)});
      ASSERT_TRUE(submitted.ok());
      futures.push_back(std::move(submitted).value());
    }
    for (auto& future : futures) {
      EXPECT_EQ(future.get().batch.reachable.size(), 50u);
    }
    EXPECT_EQ(pool.Stats().batches, 40u);
  }
}

TEST_F(EnginePoolFixture, LaneHintPinsTheWorkerLaneUnderEitherPolicy) {
  // The per-worker cache-affinity contract keyspace-sharding clients
  // (the scatter-gather router) rely on: a hinted batch lands on lane
  // hint % workers no matter which dispatch policy spreads the
  // unhinted traffic — and no matter what other requests interleave.
  for (auto dispatch : {EnginePoolOptions::Dispatch::kRoundRobin,
                        EnginePoolOptions::Dispatch::kLeastLoaded}) {
    EnginePoolOptions options;
    options.num_threads = 4;
    options.dispatch = dispatch;
    EnginePool pool(snapshot_, options);
    for (uint64_t hint : {0u, 1u, 2u, 3u, 5u, 42u, 1000003u}) {
      for (int rep = 0; rep < 3; ++rep) {
        BatchRequest request;
        request.pairs = RandomPairs(16, hint * 10 + rep);
        request.lane_hint = hint;
        // Unhinted interleaver: advances the round-robin cursor /
        // perturbs the load so a policy-routed hinted batch would
        // drift lanes between reps.
        auto unhinted = pool.SubmitBatch({.pairs = RandomPairs(8, hint + rep)});
        ASSERT_TRUE(unhinted.ok());
        auto response = pool.Batch(std::move(request));
        ASSERT_TRUE(response.ok()) << response.status();
        EXPECT_EQ(response->worker, hint % 4)
            << "hint " << hint << " rep " << rep;
        std::move(unhinted).value().get();
      }
    }
  }
}

TEST_F(EnginePoolFixture, ShutdownDrainsThenRejects) {
  EnginePool pool(snapshot_, {.num_threads = 2});
  std::vector<std::future<PoolBatchResponse>> futures;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    auto submitted = pool.SubmitBatch({.pairs = RandomPairs(400, seed)});
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted).value());
  }
  pool.Shutdown();
  pool.Shutdown();  // idempotent
  // Everything queued before Shutdown completes.
  for (auto& future : futures) {
    EXPECT_EQ(future.get().batch.reachable.size(), 400u);
  }
  EXPECT_EQ(pool.Stats().batches, 8u);
  auto rejected = pool.SubmitBatch({.pairs = RandomPairs(4, 9)});
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsFailedPrecondition());
  auto rejected_query = pool.Query({.expression = "//a"});
  EXPECT_TRUE(rejected_query.status().IsFailedPrecondition());
}

TEST_F(EnginePoolFixture, SwapRebindsWorkersAndReportsNewVersion) {
  // Second snapshot: same collection shape, one maintenance delta.
  Collection c2 = hopi::testing::SmallDblp(30, 41);
  HopiIndex index2 = MustBuild(&c2, true);
  auto snapshot2 = BackendSnapshot::Freeze(index2);
  ASSERT_NE(snapshot_->version(), snapshot2->version());

  EnginePool pool(snapshot_, {.num_threads = 2});
  auto first = pool.Batch({.pairs = RandomPairs(32, 1)});
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->snapshot_version, snapshot_->version());

  pool.Swap(snapshot2);
  EXPECT_EQ(pool.snapshot()->version(), snapshot2->version());
  auto second = pool.Batch({.pairs = RandomPairs(32, 2)});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->snapshot_version, snapshot2->version());
  PoolStats stats = pool.Stats();
  EXPECT_EQ(stats.swaps, 1u);
  EXPECT_EQ(stats.snapshot_version, snapshot2->version());
}

TEST_F(EnginePoolFixture, WorkerCacheStatsReadableWhileServing) {
  // The linlout (copy-route) backend exercises the per-worker caches.
  auto store = std::make_shared<storage::LinLoutStore>(
      storage::LinLoutStore::FromCover(index_->cover(), true));
  auto snapshot = BackendSnapshot::OfStore(Unowned(c_), store);
  EnginePool pool(snapshot, {.num_threads = 2});
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      for (const LabelCache::Stats& s : pool.WorkerCacheStats()) {
        EXPECT_GE(s.hits + s.misses, 0u);
        EXPECT_LE(s.bytes_resident, s.byte_budget);
      }
    }
  });
  for (uint64_t seed = 0; seed < 50; ++seed) {
    auto r = pool.Batch({.pairs = RandomPairs(300, seed)});
    ASSERT_TRUE(r.ok());
  }
  done.store(true, std::memory_order_release);
  reader.join();
  PoolStats stats = pool.Stats();
  EXPECT_GT(stats.cache_hits + stats.cache_misses, 0u);
  uint64_t cache_total = 0;
  for (const LabelCache::Stats& s : pool.WorkerCacheStats()) {
    cache_total += s.hits + s.misses;
  }
  EXPECT_EQ(cache_total, stats.cache_hits + stats.cache_misses);
}

// ---- admission control + callback submission (overload path) ----

TEST(AdmissionControllerTest, DisabledGateAdmitsEverything) {
  AdmissionController gate(0, 0);
  EXPECT_TRUE(gate.Admit(0));
  EXPECT_TRUE(gate.Admit(1u << 30));
  EXPECT_FALSE(gate.shedding());
}

TEST(AdmissionControllerTest, TripsAtHighReadmitsAtLow) {
  AdmissionController gate(10, 4);
  EXPECT_TRUE(gate.Admit(9));    // below high
  EXPECT_FALSE(gate.Admit(10));  // trips
  EXPECT_TRUE(gate.shedding());
  // Hysteresis: between low and high it keeps shedding.
  EXPECT_FALSE(gate.Admit(9));
  EXPECT_FALSE(gate.Admit(5));
  // At/below low it re-admits, and stays open below high.
  EXPECT_TRUE(gate.Admit(4));
  EXPECT_FALSE(gate.shedding());
  EXPECT_TRUE(gate.Admit(9));
  EXPECT_FALSE(gate.Admit(11));  // trips again
}

TEST(AdmissionControllerTest, LowDefaultsToHalfHighAndClampsBelowHigh) {
  AdmissionController half(10, 0);  // low -> 5
  EXPECT_FALSE(half.Admit(10));
  EXPECT_FALSE(half.Admit(6));
  EXPECT_TRUE(half.Admit(5));

  AdmissionController clamped(3, 99);  // low clamps to high - 1 = 2
  EXPECT_FALSE(clamped.Admit(3));
  EXPECT_FALSE(clamped.Admit(3));
  EXPECT_TRUE(clamped.Admit(2));
}

TEST_F(EnginePoolFixture, CallbackSubmissionDeliversOnWorker) {
  EnginePool pool(snapshot_, {.num_threads = 2});
  std::promise<Result<PoolBatchResponse>> delivered;
  Status submitted = pool.SubmitBatch(
      {.pairs = RandomPairs(64, 7)},
      [&](Result<PoolBatchResponse> result) {
        delivered.set_value(std::move(result));
      });
  ASSERT_TRUE(submitted.ok());
  Result<PoolBatchResponse> result = delivered.get_future().get();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->batch.reachable.size(), 64u);
  EXPECT_EQ(result->snapshot_version, snapshot_->version());

  // Path queries through the same channel; a ground-truth engine
  // agrees with the pool's answer.
  std::promise<Result<PoolPathResponse>> path_delivered;
  ASSERT_TRUE(pool.SubmitQuery({.expression = "//article//author"},
                               [&](Result<PoolPathResponse> result) {
                                 path_delivered.set_value(std::move(result));
                               })
                  .ok());
  Result<PoolPathResponse> path = path_delivered.get_future().get();
  ASSERT_TRUE(path.ok());
  ASSERT_TRUE(path->result.ok());
  QueryEngine reference(c_, snapshot_->MakeBackend());
  auto expected = reference.Query({.expression = "//article//author"});
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(path->result.value().count, expected->count);
}

TEST_F(EnginePoolFixture, BoundedLaneShedsDeterministicallyThenReadmits) {
  // One worker whose first job blocks on a promise we hold: with the
  // worker provably stalled, lane occupancy is deterministic and the
  // shed point is exact — no sleeps, no racing.
  EnginePool pool(snapshot_, {.num_threads = 1, .queue_capacity = 1});
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  std::promise<void> entered;
  ASSERT_TRUE(pool.SubmitBatch({.pairs = RandomPairs(1, 0)},
                               [&](Result<PoolBatchResponse>) {
                                 entered.set_value();
                                 gate.wait();
                               })
                  .ok());
  entered.get_future().wait();  // worker is now inside the callback

  // Slot 1: fills the lane (capacity 1). Slot 2: must shed.
  std::promise<Result<PoolBatchResponse>> queued_done;
  ASSERT_TRUE(pool.SubmitBatch({.pairs = RandomPairs(2, 1)},
                               [&](Result<PoolBatchResponse> result) {
                                 queued_done.set_value(std::move(result));
                               })
                  .ok());
  Status shed = pool.SubmitBatch({.pairs = RandomPairs(2, 2)},
                                 [](Result<PoolBatchResponse>) {
                                   FAIL() << "shed submission must never run";
                                 });
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.IsResourceExhausted());
  // The futures API sheds identically (same Enqueue tail).
  auto shed_future = pool.SubmitBatch({.pairs = RandomPairs(2, 3)});
  ASSERT_FALSE(shed_future.ok());
  EXPECT_TRUE(shed_future.status().IsResourceExhausted());

  PoolStats during = pool.Stats();
  EXPECT_EQ(during.sheds, 2u);
  EXPECT_EQ(during.queued, 1u);
  EXPECT_EQ(during.executing, 1u);

  release.set_value();  // un-stall; the queued job drains
  ASSERT_TRUE(queued_done.get_future().get().ok());
  // Re-admission: the lane has room again.
  auto after = pool.Batch({.pairs = RandomPairs(2, 4)});
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(pool.Stats().sheds, 2u);  // no new sheds
}

TEST_F(EnginePoolFixture, WatermarkGateShedsUntilDrainedToLow) {
  // Capacity stays unbounded; only the admission watermarks act. One
  // stalled worker holds executing=1, so with high=2 the second
  // *queued* item trips the gate (load = queued 1 + executing 1 = 2).
  EnginePool pool(snapshot_,
                  {.num_threads = 1,
                   .shed_high_watermark = 2,
                   .shed_low_watermark = 1});
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  std::promise<void> entered;
  ASSERT_TRUE(pool.SubmitBatch({.pairs = RandomPairs(1, 0)},
                               [&](Result<PoolBatchResponse>) {
                                 entered.set_value();
                                 gate.wait();
                               })
                  .ok());
  entered.get_future().wait();

  // load = 1 (executing): admitted.
  std::promise<Result<PoolBatchResponse>> queued_done;
  ASSERT_TRUE(pool.SubmitBatch({.pairs = RandomPairs(2, 1)},
                               [&](Result<PoolBatchResponse> result) {
                                 queued_done.set_value(std::move(result));
                               })
                  .ok());
  // load = 2 = high: sheds, and keeps shedding while tripped.
  Status shed = pool.SubmitBatch({.pairs = RandomPairs(2, 2)},
                                 [](Result<PoolBatchResponse>) {});
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.IsResourceExhausted());
  EXPECT_TRUE(pool.Stats().shedding);

  release.set_value();
  ASSERT_TRUE(queued_done.get_future().get().ok());
  // Drained to 0 <= low: the next submission re-admits.
  auto after = pool.Batch({.pairs = RandomPairs(2, 3)});
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(pool.Stats().shedding);
  EXPECT_GE(pool.Stats().sheds, 1u);
}

TEST_F(EnginePoolFixture, ShutdownStillDrainsCallbackJobs) {
  EnginePool pool(snapshot_, {.num_threads = 2});
  std::atomic<int> delivered{0};
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(pool.SubmitBatch(
                        {.pairs = RandomPairs(50, static_cast<uint64_t>(i))},
                        [&](Result<PoolBatchResponse> result) {
                          ASSERT_TRUE(result.ok());
                          delivered.fetch_add(1);
                        })
                    .ok());
  }
  pool.Shutdown();
  EXPECT_EQ(delivered.load(), 16);  // OK submission => runs exactly once
  Status rejected = pool.SubmitBatch({.pairs = RandomPairs(2, 99)},
                                     [](Result<PoolBatchResponse>) {});
  EXPECT_TRUE(rejected.IsFailedPrecondition());
}

// ---- mutation + rebuild (the serve-during-rebuild write path) ----

// First live (u, v) pair with no current edge: an always-valid
// insert_link against `c`. Callers mutating repeatedly keep a mirror
// collection and query against that.
NodePair FindInsertableLink(const Collection& c) {
  std::vector<NodeId> live = hopi::testing::LiveElements(c);
  for (NodeId u : live) {
    for (NodeId v : live) {
      if (u != v && !c.ElementGraph().HasEdge(u, v)) return {u, v};
    }
  }
  ADD_FAILURE() << "no insertable link exists";
  return {0, 0};
}

TEST_F(EnginePoolFixture, MutationsRequireEnableAndValidateTyped) {
  EnginePool pool(snapshot_, {.num_threads = 1});
  EXPECT_FALSE(pool.mutations_enabled());
  auto off = pool.ApplyMutation(Mutation::InsertLink(0, 1));
  EXPECT_TRUE(off.status().IsFailedPrecondition());

  ASSERT_TRUE(pool.EnableMutations(*index_).ok());
  EXPECT_TRUE(pool.mutations_enabled());
  NodePair link = FindInsertableLink(c_);
  auto receipt = pool.ApplyMutation(Mutation::InsertLink(link.first,
                                                         link.second));
  ASSERT_TRUE(receipt.ok()) << receipt.status();
  EXPECT_EQ(receipt->generation, 1u);
  EXPECT_EQ(receipt->snapshot_version, snapshot_->version());

  // The op is visible to the very next request, which names the
  // serving state it was computed against.
  auto probe = pool.Batch({.pairs = {link}});
  ASSERT_TRUE(probe.ok());
  EXPECT_TRUE(probe->batch.reachable[0] != 0);
  EXPECT_EQ(probe->delta_generation, 1u);
  EXPECT_EQ(probe->snapshot_version, snapshot_->version());

  // Typed rejects, each leaving the delta untouched: duplicate link,
  // tree-edge deletion, missing link, dead/oob ids.
  auto duplicate =
      pool.ApplyMutation(Mutation::InsertLink(link.first, link.second));
  EXPECT_TRUE(duplicate.status().IsInvalidArgument());
  NodeId child = kInvalidNode;
  for (NodeId e = 0; e < c_.NumElements(); ++e) {
    if (c_.ParentOf(e) != kInvalidNode) {
      child = e;
      break;
    }
  }
  ASSERT_NE(child, kInvalidNode);
  auto tree_edge =
      pool.ApplyMutation(Mutation::DeleteLink(c_.ParentOf(child), child));
  EXPECT_TRUE(tree_edge.status().IsNotFound());
  auto missing = pool.ApplyMutation(Mutation::DeleteLink(link.second,
                                                         link.first));
  EXPECT_TRUE(missing.status().IsNotFound());
  auto oob = pool.ApplyMutation(Mutation::InsertLink(
      static_cast<NodeId>(c_.NumElements() + 3), 0));
  EXPECT_TRUE(oob.status().IsInvalidArgument());
  EXPECT_EQ(pool.delta()->generation(), 1u);
  PoolStats stats = pool.Stats();
  EXPECT_EQ(stats.mutations, 1u);
  EXPECT_EQ(stats.mutation_failures, 4u);
  EXPECT_EQ(stats.delta_ops, 1u);
  EXPECT_EQ(stats.delta_generation, 1u);
}

TEST_F(EnginePoolFixture, SwapDisablesMutationsAndPreservesGeneration) {
  EnginePool pool(snapshot_, {.num_threads = 1});
  ASSERT_TRUE(pool.EnableMutations(*index_).ok());
  NodePair link = FindInsertableLink(c_);
  ASSERT_TRUE(
      pool.ApplyMutation(Mutation::InsertLink(link.first, link.second)).ok());

  // An external snapshot swap cannot keep the maintenance mirror in
  // sync, so it disarms the write path — but the global generation
  // survives (responses stay totally ordered across the swap).
  pool.Swap(snapshot_);
  EXPECT_FALSE(pool.mutations_enabled());
  EXPECT_TRUE(pool.delta()->empty());
  EXPECT_EQ(pool.delta()->generation(), 1u);
  auto disarmed = pool.ApplyMutation(Mutation::InsertLink(link.first,
                                                          link.second));
  EXPECT_TRUE(disarmed.status().IsFailedPrecondition());

  // Re-arming against the (re-published) snapshot continues the count.
  ASSERT_TRUE(pool.EnableMutations(*index_).ok());
  auto receipt =
      pool.ApplyMutation(Mutation::InsertLink(link.first, link.second));
  ASSERT_TRUE(receipt.ok()) << receipt.status();
  EXPECT_EQ(receipt->generation, 2u);
}

TEST_F(EnginePoolFixture, MaxDeltaOpsShedsMutationsUntilRebuild) {
  EnginePoolOptions options;
  options.num_threads = 1;
  options.max_delta_ops = 2;
  EnginePool pool(snapshot_, options);
  ASSERT_TRUE(pool.EnableMutations(*index_).ok());
  Collection mirror = hopi::testing::SmallDblp(30, 41);

  for (int i = 0; i < 2; ++i) {
    NodePair link = FindInsertableLink(mirror);
    Mutation m = Mutation::InsertLink(link.first, link.second);
    ASSERT_TRUE(pool.ApplyMutation(m).ok());
    ASSERT_TRUE(ApplyMutationToCollection(m, &mirror).ok());
  }
  NodePair link = FindInsertableLink(mirror);
  auto shed = pool.ApplyMutation(Mutation::InsertLink(link.first,
                                                      link.second));
  EXPECT_TRUE(shed.status().IsResourceExhausted());

  // A rebuild truncates the delta; the shed op then applies.
  auto rebuilt = pool.RebuildNow(RebuildMode::kAbsorb);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  auto retried = pool.ApplyMutation(Mutation::InsertLink(link.first,
                                                         link.second));
  ASSERT_TRUE(retried.ok()) << retried.status();
  EXPECT_EQ(retried->generation, 3u);
}

TEST_F(EnginePoolFixture, RebuildFoldsDeltaAndKeepsServingMutations) {
  EnginePool pool(snapshot_, {.num_threads = 2});
  ASSERT_TRUE(pool.EnableMutations(*index_).ok());
  Collection mirror = hopi::testing::SmallDblp(30, 41);
  std::vector<NodePair> inserted;
  for (int i = 0; i < 3; ++i) {
    NodePair link = FindInsertableLink(mirror);
    Mutation m = Mutation::InsertLink(link.first, link.second);
    ASSERT_TRUE(pool.ApplyMutation(m).ok());
    ASSERT_TRUE(ApplyMutationToCollection(m, &mirror).ok());
    inserted.push_back(link);
  }

  const uint64_t version_before = pool.snapshot()->version();
  auto absorbed = pool.RebuildNow(RebuildMode::kAbsorb);
  ASSERT_TRUE(absorbed.ok()) << absorbed.status();
  EXPECT_EQ(absorbed->generation, 3u);
  EXPECT_EQ(absorbed->absorbed_ops, 3u);
  EXPECT_NE(absorbed->snapshot_version, version_before);
  EXPECT_TRUE(pool.delta()->empty());
  EXPECT_EQ(pool.delta()->generation(), 3u);
  EXPECT_TRUE(pool.mutations_enabled());

  // The folded snapshot serves the absorbed links natively (no delta).
  auto probe = pool.Batch({.pairs = inserted});
  ASSERT_TRUE(probe.ok());
  for (size_t i = 0; i < inserted.size(); ++i) {
    EXPECT_TRUE(probe->batch.reachable[i] != 0) << i;
  }
  EXPECT_EQ(probe->snapshot_version, absorbed->snapshot_version);
  EXPECT_EQ(probe->delta_generation, 3u);

  // kFull resets the maintenance index's label degradation to a fresh
  // build and catches up any op applied meanwhile (none here).
  NodePair link = FindInsertableLink(mirror);
  ASSERT_TRUE(
      pool.ApplyMutation(Mutation::InsertLink(link.first, link.second)).ok());
  auto full = pool.RebuildNow(RebuildMode::kFull);
  ASSERT_TRUE(full.ok()) << full.status();
  EXPECT_EQ(full->mode, RebuildMode::kFull);
  EXPECT_EQ(full->generation, 4u);
  EXPECT_EQ(full->absorbed_ops, 1u);
  EXPECT_DOUBLE_EQ(pool.MaintenanceDegradation(), 1.0);
  EXPECT_EQ(pool.Stats().rebuilds, 2u);
}

TEST_F(EnginePoolFixture, RebuildDaemonAbsorbsWhenTheDeltaGrows) {
  EnginePool pool(snapshot_, {.num_threads = 1});
  ASSERT_TRUE(pool.EnableMutations(*index_).ok());
  Collection mirror = hopi::testing::SmallDblp(30, 41);

  RebuildDaemon::Options options;
  options.poll_interval = std::chrono::milliseconds(1);
  options.max_delta_ops = 2;
  options.degradation_threshold = 0;  // absorb-only in this test
  RebuildDaemon daemon(&pool, options);

  for (int i = 0; i < 2; ++i) {
    NodePair link = FindInsertableLink(mirror);
    Mutation m = Mutation::InsertLink(link.first, link.second);
    ASSERT_TRUE(pool.ApplyMutation(m).ok());
    ASSERT_TRUE(ApplyMutationToCollection(m, &mirror).ok());
  }
  daemon.Poke();
  for (int spin = 0; spin < 5000 && pool.Stats().rebuilds == 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  daemon.Stop();
  EXPECT_GE(pool.Stats().rebuilds, 1u);
  EXPECT_GE(daemon.stats().rebuilds, 1u);
  EXPECT_EQ(daemon.stats().errors, 0u);
  EXPECT_TRUE(pool.delta()->empty());
  EXPECT_EQ(pool.delta()->generation(), 2u);
  EXPECT_TRUE(pool.mutations_enabled());
}

// ---- the swap/stress test ----

// Two graphs that provably disagree: B is A plus one link that creates
// connections absent in A. Expected full matrices are precomputed per
// snapshot version; every pool response must match the matrix of the
// version it claims to have been served from.
TEST(EnginePoolStressTest, ConcurrentBatchesAndSwapsServeConsistentSnapshots) {
  Collection c = hopi::testing::RandomCollection(5, 6, 8, 4242);
  HopiIndex index = MustBuild(&c);
  auto snapshot_a = BackendSnapshot::Freeze(index);

  // Mutate: link two far-apart roots, then freeze again.
  std::vector<NodeId> live = hopi::testing::LiveElements(c);
  bool mutated = false;
  Rng link_rng(7);
  for (int attempt = 0; attempt < 50 && !mutated; ++attempt) {
    NodeId u = live[link_rng.NextBounded(live.size())];
    NodeId v = live[link_rng.NextBounded(live.size())];
    if (u == v || c.ElementGraph().HasEdge(u, v) || index.IsReachable(u, v)) {
      continue;
    }
    ASSERT_TRUE(index.InsertLink(u, v).ok());
    mutated = true;
  }
  ASSERT_TRUE(mutated) << "could not find a connecting link to insert";
  auto snapshot_b = BackendSnapshot::Freeze(index);

  // Precompute both full matrices (n is small).
  const auto n = static_cast<NodeId>(c.NumElements());
  std::map<uint64_t, std::vector<bool>> matrix_of_version;
  for (const auto& snapshot : {snapshot_a, snapshot_b}) {
    QueryEngine engine(snapshot->collection(), snapshot->MakeBackend(),
                       {.shared_tags = snapshot->tags()});
    std::vector<bool>& matrix = matrix_of_version[snapshot->version()];
    matrix.resize(static_cast<size_t>(n) * n);
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = 0; v < n; ++v) {
        matrix[static_cast<size_t>(u) * n + v] =
            engine.backend().IsReachable(u, v);
      }
    }
  }
  ASSERT_NE(matrix_of_version[snapshot_a->version()],
            matrix_of_version[snapshot_b->version()])
      << "the two snapshots must disagree somewhere for the test to bite";

  EnginePoolOptions options;
  options.num_threads = 4;
  EnginePool pool(snapshot_a, options);

  constexpr int kClients = 4;
  constexpr int kBatchesPerClient = 120;
  std::atomic<bool> clients_done{false};
  std::atomic<size_t> torn_responses{0};
  std::atomic<size_t> unknown_versions{0};

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int client = 0; client < kClients; ++client) {
    clients.emplace_back([&, client] {
      Rng rng(1000 + client);
      for (int b = 0; b < kBatchesPerClient; ++b) {
        std::vector<NodePair> pairs;
        for (int i = 0; i < 64; ++i) {
          pairs.push_back({static_cast<NodeId>(rng.NextBounded(n)),
                           static_cast<NodeId>(rng.NextBounded(n))});
        }
        auto response = pool.Batch({.pairs = pairs});
        ASSERT_TRUE(response.ok()) << response.status();
        auto it = matrix_of_version.find(response->snapshot_version);
        if (it == matrix_of_version.end()) {
          unknown_versions.fetch_add(1);
          continue;
        }
        for (size_t i = 0; i < pairs.size(); ++i) {
          bool expect = it->second[static_cast<size_t>(pairs[i].first) * n +
                                   pairs[i].second];
          if (response->batch.reachable[i] != expect) {
            torn_responses.fetch_add(1);
          }
        }
      }
    });
  }

  std::thread swapper([&] {
    for (int s = 0; !clients_done.load(); ++s) {
      pool.Swap(s % 2 == 0 ? snapshot_b : snapshot_a);
      std::this_thread::yield();
    }
  });

  // Stats sampler: every field of PoolStats (except snapshot_version)
  // must be monotonic while the pool is being hammered.
  std::thread sampler([&] {
    PoolStats last;
    while (!clients_done.load()) {
      PoolStats now = pool.Stats();
      EXPECT_GE(now.batches, last.batches);
      EXPECT_GE(now.probes, last.probes);
      EXPECT_GE(now.unique_probes, last.unique_probes);
      EXPECT_GE(now.cache_hits, last.cache_hits);
      EXPECT_GE(now.cache_misses, last.cache_misses);
      EXPECT_GE(now.labels_borrowed, last.labels_borrowed);
      EXPECT_GE(now.backend_probes, last.backend_probes);
      EXPECT_GE(now.swaps, last.swaps);
      EXPECT_GE(now.rebinds, last.rebinds);
      last = now;
      std::this_thread::yield();
    }
  });

  for (auto& client : clients) client.join();
  clients_done.store(true);
  swapper.join();
  sampler.join();

  EXPECT_EQ(torn_responses.load(), 0u)
      << "responses mixing two snapshots detected";
  EXPECT_EQ(unknown_versions.load(), 0u);
  PoolStats stats = pool.Stats();
  EXPECT_EQ(stats.batches,
            static_cast<uint64_t>(kClients) * kBatchesPerClient);
  EXPECT_GT(stats.rebinds, 0u);
  EXPECT_GE(stats.swaps, 1u);
}

// Swapping between backend *kinds* (hopi cover -> mmapped file) while
// serving: the label route changes under the clients' feet, answers
// must not.
TEST(EnginePoolStressTest, SwapAcrossBackendKindsKeepsAnswers) {
  Collection c = hopi::testing::RandomCollection(5, 6, 10, 99);
  HopiIndex index = MustBuild(&c);
  auto hopi_snapshot = BackendSnapshot::Freeze(index);

  auto store = std::make_shared<storage::LinLoutStore>(
      storage::LinLoutStore::FromCover(index.cover(), false));
  std::string path = ::testing::TempDir() + "hopi_pool_swap_kinds.bin";
  ASSERT_TRUE(store->WriteToFile(path).ok());
  auto mapped_result = storage::MappedLinLoutStore::Open(path);
  ASSERT_TRUE(mapped_result.ok()) << mapped_result.status();
  auto mapped = std::make_shared<storage::MappedLinLoutStore>(
      std::move(mapped_result).value());
  auto collection = std::shared_ptr<const Collection>(
      hopi_snapshot, &hopi_snapshot->collection());
  // The rotated snapshots share the frozen collection, so they can
  // also share its tag index (built once by Freeze).
  auto store_snapshot =
      BackendSnapshot::OfStore(collection, store, hopi_snapshot->tags());
  auto mapped_snapshot = BackendSnapshot::OfMappedStore(
      collection, mapped, hopi_snapshot->tags());

  const auto n = static_cast<NodeId>(c.NumElements());
  std::vector<bool> matrix(static_cast<size_t>(n) * n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      matrix[static_cast<size_t>(u) * n + v] = index.IsReachable(u, v);
    }
  }

  EnginePool pool(hopi_snapshot, {.num_threads = 3});
  std::atomic<bool> done{false};
  std::atomic<size_t> wrong{0};
  std::vector<std::thread> clients;
  for (int client = 0; client < 3; ++client) {
    clients.emplace_back([&, client] {
      Rng rng(500 + client);
      for (int b = 0; b < 150; ++b) {
        BatchRequest request;
        std::vector<NodePair> pairs;
        for (int i = 0; i < 48; ++i) {
          pairs.push_back({static_cast<NodeId>(rng.NextBounded(n)),
                           static_cast<NodeId>(rng.NextBounded(n))});
        }
        request.pairs = pairs;
        auto response = pool.Batch(std::move(request));
        if (!response.ok()) continue;
        for (size_t i = 0; i < pairs.size(); ++i) {
          bool expect = matrix[static_cast<size_t>(pairs[i].first) * n +
                               pairs[i].second];
          if (response->batch.reachable[i] != expect) wrong.fetch_add(1);
        }
      }
    });
  }
  std::thread swapper([&] {
    const std::shared_ptr<const BackendSnapshot> rotation[] = {
        store_snapshot, mapped_snapshot, hopi_snapshot};
    for (int s = 0; !done.load(); ++s) {
      pool.Swap(rotation[s % 3]);
      std::this_thread::yield();
    }
  });
  for (auto& client : clients) client.join();
  done.store(true);
  swapper.join();
  EXPECT_EQ(wrong.load(), 0u);
  pool.Shutdown();
  std::remove(path.c_str());
}

// Serve-during-rebuild under fire: client threads hammer Batch() while
// a writer streams mutations and the RebuildDaemon races absorb
// rebuilds, snapshot swap-ins, and delta truncations against both.
//
// The oracle protocol: every accepted mutation advances the global
// delta generation by exactly one, and (snapshot_version,
// delta_generation) always names one unique logical graph — absorbing
// a delta changes the version but *preserves* the generation, so the
// generation alone identifies the graph. The writer publishes, under
// one mutex, {ApplyMutation -> mirror replay -> closure matrix of that
// generation}; a client holding a response for generation g therefore
// finds a matrix that is correct for g (spinning briefly if the writer
// is still inside the critical section). A torn response — answers
// mixing the pre- and post-rebuild state, or a delta truncated before
// its snapshot swapped in — shows up as a content mismatch, not just a
// sanitizer report.
TEST(EnginePoolStressTest, MutationsRebuildsAndProbesRaceConsistently) {
  Collection base = hopi::testing::RandomCollection(4, 5, 8, 31337);
  HopiIndex index = MustBuild(&base);
  auto snapshot = BackendSnapshot::Freeze(index);
  const auto n0 = static_cast<NodeId>(base.NumElements());

  EnginePoolOptions options;
  options.num_threads = 3;
  options.overlay_hop_budget = 2;  // force recheck traffic
  options.overlay_parallel_threshold = 4;
  options.max_delta_ops = 64;  // writer must wait for absorbs
  EnginePool pool(snapshot, options);
  ASSERT_TRUE(pool.EnableMutations(index).ok());

  RebuildDaemon::Options daemon_options;
  daemon_options.poll_interval = std::chrono::milliseconds(1);
  daemon_options.max_delta_ops = 8;
  daemon_options.degradation_threshold = 1.5;
  RebuildDaemon daemon(&pool, daemon_options);

  // Clients probe base ids only, so a fixed n0 x n0 matrix per
  // generation suffices even as inserted documents grow the id space.
  auto matrix_for = [n0](const Collection& mirror) {
    TransitiveClosureIndex closure =
        TransitiveClosureIndex::Build(mirror.ElementGraph(), false);
    std::vector<bool> matrix(static_cast<size_t>(n0) * n0);
    for (NodeId u = 0; u < n0; ++u) {
      for (NodeId v = 0; v < n0; ++v) {
        matrix[static_cast<size_t>(u) * n0 + v] = closure.IsReachable(u, v);
      }
    }
    return matrix;
  };

  std::mutex mx;  // guards mirror + matrices, serializes the writer
  Collection mirror = base;
  std::map<uint64_t, std::vector<bool>> matrix_of_generation;
  matrix_of_generation[0] = matrix_for(mirror);

  constexpr int kWriterOps = 120;  // > max_delta_ops: forces absorbs
  std::atomic<size_t> accepted{0};
  std::atomic<size_t> torn{0};
  std::atomic<bool> clients_done{false};

  std::thread writer([&] {
    Rng rng(9001);
    int doc_counter = 0;
    // Valid-by-construction draw against the mirror: mostly links in
    // and out of the combined graph, some document births and deaths.
    auto draw = [&](const Collection& m) -> Mutation {
      switch (rng.NextBounded(5)) {
        case 0:
        case 1: {
          std::vector<NodeId> live = hopi::testing::LiveElements(m);
          for (int attempt = 0; attempt < 10 && live.size() > 1; ++attempt) {
            NodeId u = live[rng.NextBounded(live.size())];
            NodeId v = live[rng.NextBounded(live.size())];
            if (u == v || m.ElementGraph().HasEdge(u, v)) continue;
            return Mutation::InsertLink(u, v);
          }
          break;
        }
        case 2: {
          if (m.Links().empty()) break;
          collection::Link l = m.Links()[rng.NextBounded(m.Links().size())];
          return Mutation::DeleteLink(l.source, l.target);
        }
        case 3: {
          if (m.NumLiveDocuments() <= 2) break;
          for (int attempt = 0; attempt < 10; ++attempt) {
            auto d = static_cast<uint32_t>(rng.NextBounded(m.NumDocuments()));
            if (m.IsLive(d)) return Mutation::DeleteDocument(d);
          }
          break;
        }
        default:
          break;
      }
      std::vector<NewElementSpec> elements;
      elements.push_back({"article", std::nullopt});
      size_t extra = rng.NextBounded(4);
      for (size_t i = 0; i < extra; ++i) {
        elements.push_back(
            {"section",
             static_cast<uint32_t>(rng.NextBounded(elements.size()))});
      }
      return Mutation::InsertDocument(
          "stress" + std::to_string(doc_counter++) + ".xml",
          std::move(elements));
    };

    for (int op = 0; op < kWriterOps; ++op) {
      // Bounded backpressure loop: at the pool's hard delta cap the
      // mutation sheds (429) until the daemon absorbs; a dead daemon
      // fails the test here instead of hanging it.
      bool applied = false;
      for (int attempt = 0; attempt < 5000 && !applied; ++attempt) {
        std::unique_lock<std::mutex> lock(mx);
        Mutation m = draw(mirror);
        auto receipt = pool.ApplyMutation(m);
        if (!receipt.ok()) {
          ASSERT_TRUE(receipt.status().IsResourceExhausted())
              << "op " << op << ": " << receipt.status();
          lock.unlock();
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          continue;
        }
        ASSERT_TRUE(ApplyMutationToCollection(m, &mirror).ok());
        EXPECT_EQ(receipt->generation, accepted.load() + 1);
        matrix_of_generation[receipt->generation] = matrix_for(mirror);
        accepted.fetch_add(1);
        applied = true;
      }
      ASSERT_TRUE(applied) << "writer starved at op " << op
                           << " (daemon never absorbed the delta)";
    }
  });

  constexpr int kClients = 3;
  constexpr int kBatchesPerClient = 150;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int client = 0; client < kClients; ++client) {
    clients.emplace_back([&, client] {
      Rng rng(2000 + client);
      for (int b = 0; b < kBatchesPerClient; ++b) {
        std::vector<NodePair> pairs;
        for (int i = 0; i < 48; ++i) {
          pairs.push_back({static_cast<NodeId>(rng.NextBounded(n0)),
                           static_cast<NodeId>(rng.NextBounded(n0))});
        }
        auto response = pool.Batch({.pairs = pairs});
        ASSERT_TRUE(response.ok()) << response.status();
        const uint64_t generation = response->delta_generation;
        // The writer publishes generation g's matrix before releasing
        // mx, so at worst we spin across its critical section.
        std::vector<bool> matrix;
        for (int spin = 0; spin < 200000 && matrix.empty(); ++spin) {
          std::lock_guard<std::mutex> lock(mx);
          auto it = matrix_of_generation.find(generation);
          if (it != matrix_of_generation.end()) matrix = it->second;
        }
        ASSERT_FALSE(matrix.empty())
            << "no matrix ever published for generation " << generation;
        for (size_t i = 0; i < pairs.size(); ++i) {
          bool expect = matrix[static_cast<size_t>(pairs[i].first) * n0 +
                               pairs[i].second];
          if (response->batch.reachable[i] != expect) torn.fetch_add(1);
        }
      }
    });
  }

  // Mutation-era stats must stay monotonic while rebuilds truncate the
  // delta under the counters.
  std::thread sampler([&] {
    PoolStats last;
    while (!clients_done.load()) {
      PoolStats now = pool.Stats();
      EXPECT_GE(now.mutations, last.mutations);
      EXPECT_GE(now.mutation_failures, last.mutation_failures);
      EXPECT_GE(now.rebuilds, last.rebuilds);
      EXPECT_GE(now.delta_generation, last.delta_generation);
      EXPECT_GE(now.overlay_probes, last.overlay_probes);
      EXPECT_GE(now.overlay_bfs_fallbacks, last.overlay_bfs_fallbacks);
      EXPECT_GE(now.overlay_budget_exhaustions,
                last.overlay_budget_exhaustions);
      last = now;
      std::this_thread::yield();
    }
  });

  writer.join();
  for (auto& client : clients) client.join();
  clients_done.store(true);
  sampler.join();
  daemon.Stop();

  EXPECT_EQ(torn.load(), 0u) << "responses disagreeing with the matrix of "
                                "their reported generation";
  EXPECT_EQ(accepted.load(), static_cast<size_t>(kWriterOps));
  EXPECT_EQ(daemon.stats().errors, 0u);
  // kWriterOps > max_delta_ops, so the writer can only have finished
  // if the daemon rebuilt at least once.
  EXPECT_GE(daemon.stats().rebuilds, 1u);
  PoolStats stats = pool.Stats();
  EXPECT_EQ(stats.mutations, static_cast<uint64_t>(kWriterOps));
  EXPECT_EQ(stats.delta_generation, static_cast<uint64_t>(kWriterOps));

  // Post-race convergence: a full rebuild from the maintenance state
  // must agree everywhere with a fresh closure of the final mirror.
  auto full = pool.RebuildNow(RebuildMode::kFull);
  ASSERT_TRUE(full.ok()) << full.status();
  EXPECT_TRUE(pool.delta()->empty());
  ASSERT_EQ(pool.ServingElementCount(), mirror.NumElements());
  const auto n = static_cast<NodeId>(mirror.NumElements());
  TransitiveClosureIndex closure =
      TransitiveClosureIndex::Build(mirror.ElementGraph(), false);
  size_t mismatches = 0;
  for (NodeId u = 0; u < n; ++u) {
    BatchRequest request;
    for (NodeId v = 0; v < n; ++v) request.pairs.push_back({u, v});
    auto response = pool.Batch(std::move(request));
    ASSERT_TRUE(response.ok()) << response.status();
    for (NodeId v = 0; v < n; ++v) {
      if ((response->batch.reachable[v] != 0) != closure.IsReachable(u, v)) {
        ++mismatches;
      }
    }
  }
  EXPECT_EQ(mismatches, 0u) << "post-rebuild snapshot disagrees with the "
                               "closure of the final mirror";
  pool.Shutdown();
}

}  // namespace
}  // namespace hopi::engine
