#include <gtest/gtest.h>

#include "xml/parser.h"

namespace hopi::xml {
namespace {

TEST(XmlParserTest, MinimalDocument) {
  auto doc = ParseDocument("<root/>", "a.xml");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->name, "a.xml");
  EXPECT_EQ(doc->root->tag(), "root");
  EXPECT_TRUE(doc->root->children().empty());
}

TEST(XmlParserTest, NestedElementsAndText) {
  auto doc = ParseDocument("<a><b>hello</b><c><d/></c></a>", "x");
  ASSERT_TRUE(doc.ok());
  const Element& a = *doc->root;
  ASSERT_EQ(a.children().size(), 2u);
  EXPECT_EQ(a.children()[0]->tag(), "b");
  EXPECT_EQ(a.children()[0]->text(), "hello");
  EXPECT_EQ(a.children()[1]->children()[0]->tag(), "d");
  EXPECT_EQ(a.SubtreeSize(), 4u);
}

TEST(XmlParserTest, Attributes) {
  auto doc = ParseDocument(
      "<book id=\"b1\" xlink:href='other.xml#e5' empty=\"\"/>", "x");
  ASSERT_TRUE(doc.ok());
  ASSERT_NE(doc->root->FindAttribute("id"), nullptr);
  EXPECT_EQ(*doc->root->FindAttribute("id"), "b1");
  EXPECT_EQ(*doc->root->FindAttribute("xlink:href"), "other.xml#e5");
  EXPECT_EQ(*doc->root->FindAttribute("empty"), "");
  EXPECT_EQ(doc->root->FindAttribute("absent"), nullptr);
}

TEST(XmlParserTest, EntitiesDecoded) {
  auto doc = ParseDocument("<t a=\"&lt;x&gt;\">&amp;&quot;&apos;&#65;&#x42;</t>",
                           "x");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(*doc->root->FindAttribute("a"), "<x>");
  EXPECT_EQ(doc->root->text(), "&\"'AB");
}

TEST(XmlParserTest, UnicodeCharacterReference) {
  auto doc = ParseDocument("<t>&#228;</t>", "x");  // ä
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->text(), "\xC3\xA4");
}

TEST(XmlParserTest, PrologCommentsDoctype) {
  auto doc = ParseDocument(
      "<?xml version=\"1.0\"?>\n<!-- hi -->\n<!DOCTYPE root>\n<root>x</root>",
      "x");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->text(), "x");
}

TEST(XmlParserTest, CommentsInsideContentSkipped) {
  auto doc = ParseDocument("<a>one<!-- skip -->two</a>", "x");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->text(), "onetwo");
}

TEST(XmlParserTest, CdataPreserved) {
  auto doc = ParseDocument("<a><![CDATA[1 < 2 & so]]></a>", "x");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->text(), "1 < 2 & so");
}

TEST(XmlParserTest, MismatchedTagRejected) {
  auto doc = ParseDocument("<a><b></a></b>", "x");
  EXPECT_FALSE(doc.ok());
  EXPECT_TRUE(doc.status().IsCorruption());
}

TEST(XmlParserTest, TruncatedInputRejected) {
  EXPECT_FALSE(ParseDocument("<a><b>", "x").ok());
  EXPECT_FALSE(ParseDocument("<a attr=", "x").ok());
  EXPECT_FALSE(ParseDocument("", "x").ok());
}

TEST(XmlParserTest, UnknownEntityRejected) {
  EXPECT_FALSE(ParseDocument("<a>&nope;</a>", "x").ok());
}

TEST(XmlParserTest, TextOutsideRootRejected) {
  EXPECT_FALSE(ParseDocument("stray<a/>", "x").ok());
}

TEST(XmlParserTest, DeeplyNestedNoOverflow) {
  std::string input;
  const int depth = 50000;
  for (int i = 0; i < depth; ++i) input += "<d>";
  for (int i = 0; i < depth; ++i) input += "</d>";
  auto doc = ParseDocument(input, "deep.xml");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->SubtreeSize(), static_cast<size_t>(depth));
}

TEST(XmlSerializeTest, RoundTrip) {
  auto doc = ParseDocument(
      "<lib><book id=\"b1\"><title>T &amp; U</title></book><book id=\"b2\"/>"
      "</lib>",
      "x");
  ASSERT_TRUE(doc.ok());
  std::string text = Serialize(*doc->root);
  auto again = ParseDocument(text, "y");
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again->root->SubtreeSize(), doc->root->SubtreeSize());
  EXPECT_EQ(*again->root->children()[0]->FindAttribute("id"), "b1");
  EXPECT_EQ(again->root->children()[0]->children()[0]->text(), "T & U");
}

TEST(XmlSerializeTest, EscapesSpecials) {
  EXPECT_EQ(EscapeText("a<b>&\"'"), "a&lt;b&gt;&amp;&quot;&apos;");
}

}  // namespace
}  // namespace hopi::xml
