#include <gtest/gtest.h>

#include "graph/closure.h"
#include "graph/subgraph.h"
#include "partition/partitioner.h"
#include "partition/skeleton.h"
#include "test_util.h"

namespace hopi::partition {
namespace {

using collection::Collection;
using collection::DocId;

TEST(SkeletonGraphTest, NodesAreLinkEndpoints) {
  Collection c = hopi::testing::SmallDblp(80, 3);
  SkeletonGraph s = BuildSkeletonGraph(c);
  for (NodeId sk = 0; sk < s.graph.NumNodes(); ++sk) {
    EXPECT_TRUE(s.is_source[sk] || s.is_target[sk]);
  }
  // Every link endpoint must be interned.
  for (const collection::Link& l : c.Links()) {
    EXPECT_NE(s.SkeletonNodeOf(l.source), kInvalidNode);
    EXPECT_NE(s.SkeletonNodeOf(l.target), kInvalidNode);
  }
}

TEST(SkeletonGraphTest, InternalEdgesFollowTreeReachability) {
  // Doc A: root -> cite (source). Doc B: root(target) -> cite2 (source).
  // Link cite -> B-root. B-root is a tree ancestor of cite2, so the
  // skeleton must contain the internal edge B-root -> cite2.
  Collection c;
  DocId a = c.AddDocument("a.xml");
  NodeId ar = c.AddElement(a, "r");
  NodeId cite = c.AddElement(a, "cite", ar);
  DocId b = c.AddDocument("b.xml");
  NodeId br = c.AddElement(b, "r");
  NodeId cite2 = c.AddElement(b, "cite", br);
  DocId z = c.AddDocument("z.xml");
  NodeId zr = c.AddElement(z, "r");
  c.AddLink(cite, br);
  c.AddLink(cite2, zr);
  SkeletonGraph s = BuildSkeletonGraph(c);
  NodeId sk_br = s.SkeletonNodeOf(br);
  NodeId sk_c2 = s.SkeletonNodeOf(cite2);
  ASSERT_NE(sk_br, kInvalidNode);
  ASSERT_NE(sk_c2, kInvalidNode);
  EXPECT_TRUE(s.graph.HasEdge(sk_br, sk_c2));
  // Annotations: br includes itself and cite2 in desc count.
  EXPECT_EQ(s.desc[sk_br], 2u);
  EXPECT_EQ(s.anc[sk_c2], 2u);
}

TEST(SkeletonGraphTest, EstimatesGrowAlongLinkChains) {
  // Chain of 3 docs, each root has a subtree of distinct size.
  Collection c;
  std::vector<NodeId> roots, cites;
  for (int i = 0; i < 3; ++i) {
    DocId d = c.AddDocument("d" + std::to_string(i) + ".xml");
    NodeId r = c.AddElement(d, "r");
    for (int k = 0; k < 3 * (i + 1); ++k) c.AddElement(d, "x", r);
    cites.push_back(c.AddElement(d, "cite", r));
    roots.push_back(r);
  }
  c.AddLink(cites[0], roots[1]);
  c.AddLink(cites[1], roots[2]);
  SkeletonGraph s = BuildSkeletonGraph(c);
  AncDescEstimate est = EstimateAncDesc(s, 8);
  // The first link's target gains the downstream document's elements.
  NodeId sk_t1 = s.SkeletonNodeOf(roots[1]);
  ASSERT_NE(sk_t1, kInvalidNode);
  EXPECT_GT(est.D[sk_t1], s.desc[sk_t1]);  // more than its own subtree
}

TEST(EdgeWeightsTest, LinkCountMatchesDocEdges) {
  Collection c = hopi::testing::SmallDblp(60, 5);
  auto weights = ComputeDocEdgeWeights(c, EdgeWeightPolicy::kLinkCount);
  for (const auto& [edge, w] : weights) {
    EXPECT_EQ(w, c.DocEdgeLinkCount(edge.first, edge.second));
  }
}

TEST(EdgeWeightsTest, PoliciesProduceDifferentScales) {
  Collection c = hopi::testing::SmallDblp(60, 5);
  auto links = ComputeDocEdgeWeights(c, EdgeWeightPolicy::kLinkCount);
  auto atimesd = ComputeDocEdgeWeights(c, EdgeWeightPolicy::kAtimesD);
  auto aplusd = ComputeDocEdgeWeights(c, EdgeWeightPolicy::kAplusD);
  ASSERT_FALSE(links.empty());
  EXPECT_EQ(links.size(), atimesd.size());
  EXPECT_EQ(links.size(), aplusd.size());
  // A*D weights dominate A+D which dominate raw link counts (on average).
  uint64_t sum_l = 0, sum_m = 0, sum_p = 0;
  for (const auto& [e, w] : links) sum_l += w;
  for (const auto& [e, w] : atimesd) sum_m += w;
  for (const auto& [e, w] : aplusd) sum_p += w;
  EXPECT_GT(sum_m, sum_p);
  EXPECT_GT(sum_p, sum_l);
}

TEST(EdgeWeightPolicyNameTest, AllNamed) {
  EXPECT_STREQ(EdgeWeightPolicyName(EdgeWeightPolicy::kLinkCount), "links");
  EXPECT_STREQ(EdgeWeightPolicyName(EdgeWeightPolicy::kAtimesD), "A*D");
  EXPECT_STREQ(EdgeWeightPolicyName(EdgeWeightPolicy::kAplusD), "A+D");
}

class PartitionerTest : public ::testing::TestWithParam<PartitionStrategy> {};

TEST_P(PartitionerTest, EveryLiveDocAssignedExactlyOnce) {
  Collection c = hopi::testing::SmallDblp(100, 11);
  PartitionOptions options;
  options.strategy = GetParam();
  options.max_nodes = 500;
  options.max_connections = 20000;
  auto p = PartitionCollection(c, options);
  ASSERT_TRUE(p.ok());
  std::vector<int> seen(c.NumDocuments(), 0);
  for (const auto& part : p->partitions) {
    for (DocId d : part) ++seen[d];
  }
  for (DocId d = 0; d < c.NumDocuments(); ++d) {
    EXPECT_EQ(seen[d], c.IsLive(d) ? 1 : 0);
    if (c.IsLive(d)) {
      EXPECT_LT(p->part_of[d], p->NumPartitions());
      // part_of consistent with membership lists.
      const auto& members = p->partitions[p->part_of[d]];
      EXPECT_NE(std::find(members.begin(), members.end(), d), members.end());
    }
  }
}

TEST_P(PartitionerTest, CrossLinksAreExactlyTheBoundaryLinks) {
  Collection c = hopi::testing::SmallDblp(100, 13);
  PartitionOptions options;
  options.strategy = GetParam();
  options.max_nodes = 400;
  options.max_connections = 10000;
  auto p = PartitionCollection(c, options);
  ASSERT_TRUE(p.ok());
  size_t expected = 0;
  for (const collection::Link& l : c.Links()) {
    DocId ds = c.DocOf(l.source), dt = c.DocOf(l.target);
    if (ds != dt && p->part_of[ds] != p->part_of[dt]) ++expected;
  }
  EXPECT_EQ(p->cross_links.size(), expected);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, PartitionerTest,
                         ::testing::Values(
                             PartitionStrategy::kRandomizedNodeLimit,
                             PartitionStrategy::kTcSizeAware,
                             PartitionStrategy::kDocPerPartition));

TEST(PartitionerTest, DocPerPartitionIsSingletons) {
  Collection c = hopi::testing::SmallDblp(40, 2);
  PartitionOptions options;
  options.strategy = PartitionStrategy::kDocPerPartition;
  auto p = PartitionCollection(c, options);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->NumPartitions(), c.NumLiveDocuments());
  for (const auto& part : p->partitions) EXPECT_EQ(part.size(), 1u);
}

TEST(PartitionerTest, NodeLimitRespected) {
  Collection c = hopi::testing::SmallDblp(120, 19);
  PartitionOptions options;
  options.strategy = PartitionStrategy::kRandomizedNodeLimit;
  options.max_nodes = 300;
  auto p = PartitionCollection(c, options);
  ASSERT_TRUE(p.ok());
  for (const auto& part : p->partitions) {
    uint64_t nodes = 0;
    for (DocId d : part) nodes += c.ElementsOf(d).size();
    // A single oversized document may exceed the cap on its own; multi-doc
    // partitions must respect it.
    if (part.size() > 1) {
      EXPECT_LE(nodes, 300u);
    }
  }
}

TEST(PartitionerTest, TcCapClosesPartitionsPromptly) {
  Collection c = hopi::testing::SmallDblp(120, 23);
  PartitionOptions options;
  options.strategy = PartitionStrategy::kTcSizeAware;
  options.max_connections = 5000;
  auto p = PartitionCollection(c, options);
  ASSERT_TRUE(p.ok());
  EXPECT_GT(p->NumPartitions(), 1u);
  // Verify the closure of each partition: it may overshoot the cap only by
  // the contribution of its final document (the paper closes a partition
  // when the closure is "as large as the available memory").
  for (const auto& part : p->partitions) {
    std::vector<NodeId> elements;
    for (DocId d : part) {
      const auto& els = c.ElementsOf(d);
      elements.insert(elements.end(), els.begin(), els.end());
    }
    InducedSubgraph sub = BuildInducedSubgraph(c.ElementGraph(), elements);
    if (part.size() > 1) {
      // Closure without the last doc must have been under the cap.
      std::vector<NodeId> without_last;
      for (size_t i = 0; i + 1 < part.size(); ++i) {
        const auto& els = c.ElementsOf(part[i]);
        without_last.insert(without_last.end(), els.begin(), els.end());
      }
      InducedSubgraph sub2 =
          BuildInducedSubgraph(c.ElementGraph(), without_last);
      EXPECT_LT(TransitiveClosure::CountConnections(sub2.graph), 5000u);
    }
  }
}

TEST(PartitionerTest, DeterministicForFixedSeed) {
  Collection c = hopi::testing::SmallDblp(80, 31);
  PartitionOptions options;
  options.strategy = PartitionStrategy::kTcSizeAware;
  options.max_connections = 8000;
  options.seed = 99;
  auto p1 = PartitionCollection(c, options);
  auto p2 = PartitionCollection(c, options);
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_EQ(p1->partitions, p2->partitions);
}

TEST(PartitionerTest, SkipsRemovedDocuments) {
  Collection c = hopi::testing::SmallDblp(50, 37);
  ASSERT_TRUE(c.RemoveDocument(10).ok());
  ASSERT_TRUE(c.RemoveDocument(20).ok());
  PartitionOptions options;
  auto p = PartitionCollection(c, options);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->part_of[10], kUnassigned);
  EXPECT_EQ(p->part_of[20], kUnassigned);
}

}  // namespace
}  // namespace hopi::partition
