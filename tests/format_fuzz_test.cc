// Randomized corruption harness for the LIN/LOUT on-disk formats.
//
// Writes pristine v3 and v4 files, then attacks them with seeded
// bit-flips and truncations: at every section boundary, at every v4
// block boundary, and at hundreds of random offsets. The contract
// under test is two-sided:
//
//   * The verified readers (LinLoutStore::ReadFromFile and the default
//     MappedLinLoutStore::Open) must REJECT every damaged file with
//     Corruption or Unsupported — never crash, never serve garbage.
//   * The lazy v4 open (verify_file_checksum = false) may accept a
//     file whose blobs are damaged; it must then stay memory-safe
//     under arbitrary probing, and the damage must surface as
//     Status::Corruption from VerifyBlocks()/decode — never a crash.
//
// CI runs this under ASan/UBSan (the `storage` ctest label): together
// with the sanitizers it is the proof behind the format layer's
// "validate before dereference" rule.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

#include "storage/format.h"
#include "storage/linlout.h"
#include "storage/mapped_linlout.h"
#include "test_util.h"
#include "twohop/builder.h"

namespace hopi::storage {
namespace {

constexpr uint64_t kSeed = 20260808;

/// A pristine store + its serialized image, in the requested version.
struct Victim {
  LinLoutStore store = LinLoutStore::FromCover(twohop::TwoHopCover(0), false);
  std::vector<std::byte> image;
  size_t num_nodes = 0;
};

Victim MakeVictim(uint32_t version, const std::string& path) {
  Digraph g = hopi::testing::RandomDag(60, 2.5, kSeed);
  twohop::CoverBuildOptions cover_options;
  cover_options.with_distance = true;
  auto cover = twohop::BuildCover(g, cover_options);
  EXPECT_TRUE(cover.ok());
  Victim victim;
  victim.store = LinLoutStore::FromCover(*cover, true);
  victim.num_nodes = cover->NumNodes();
  StoreWriteOptions options;
  options.format_version = version;
  // Small blocks: many per-block CRC domains and block boundaries.
  options.compress.target_block_bytes = 128;
  options.compress.cluster_split_bytes = 32;
  EXPECT_TRUE(victim.store.WriteToFile(path, options).ok());
  victim.image = hopi::testing::ReadFileBytes(path);
  return victim;
}

void WriteBytes(const std::string& path, std::span<const std::byte> bytes) {
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  if (!bytes.empty()) {
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  }
  std::fclose(f);
}

/// Both verified readers must refuse the file at `path` with a
/// structured error (Corruption, or Unsupported when the damage lands
/// in the version field) — the one thing they may not do is succeed.
void ExpectVerifiedReadersReject(const std::string& path,
                                 const std::string& what) {
  auto buffered = LinLoutStore::ReadFromFile(path);
  EXPECT_FALSE(buffered.ok()) << what << ": buffered reader accepted";
  if (!buffered.ok()) {
    EXPECT_TRUE(buffered.status().IsCorruption() ||
                buffered.status().IsUnsupported() ||
                buffered.status().IsIOError())
        << what << ": " << buffered.status();
  }
  auto mapped = MappedLinLoutStore::Open(path);
  EXPECT_FALSE(mapped.ok()) << what << ": mapped reader accepted";
  if (!mapped.ok()) {
    EXPECT_TRUE(mapped.status().IsCorruption() ||
                mapped.status().IsUnsupported() || mapped.status().IsIOError())
        << what << ": " << mapped.status();
  }
}

/// Drives every read surface of an (possibly damaged but accepted)
/// store. Answers are allowed to degrade; crashing or tripping a
/// sanitizer is the failure mode under test.
void ProbeEverySurface(const MappedLinLoutStore& store, size_t num_nodes) {
  for (NodeId u = 0; u < num_nodes; u += 3) {
    for (NodeId v = 0; v < num_nodes; v += 5) {
      store.TestConnection(u, v);
      store.MinDistance(u, v);
    }
    store.Descendants(u);
    store.Ancestors(u);
    auto lin = store.DecodeLinRow(u);
    auto lout = store.DecodeLoutRow(u);
    (void)lin;
    (void)lout;
  }
}

class FormatFuzzTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "hopi_format_fuzz.bin";
};

TEST_F(FormatFuzzTest, RandomBitFlipsAreRejectedByVerifiedReaders) {
  for (uint32_t version : {kFormatVersion, kFormatVersionV4}) {
    Victim victim = MakeVictim(version, path_);
    Rng rng(kSeed ^ version);
    for (int round = 0; round < 300; ++round) {
      uint64_t offset = rng.NextBounded(victim.image.size());
      std::byte mask{static_cast<unsigned char>(1u << rng.NextBounded(8))};
      std::vector<std::byte> mutant = victim.image;
      mutant[offset] ^= mask;
      WriteBytes(path_, mutant);
      ExpectVerifiedReadersReject(
          path_, "v" + std::to_string(version) + " flip at offset " +
                     std::to_string(offset));
    }
  }
}

TEST_F(FormatFuzzTest, RandomTruncationsAreRejectedEverywhere) {
  for (uint32_t version : {kFormatVersion, kFormatVersionV4}) {
    Victim victim = MakeVictim(version, path_);
    auto info = InspectFile(path_);
    ASSERT_TRUE(info.ok()) << info.status();
    // Every section boundary, plus random interior cuts.
    std::vector<uint64_t> cuts = {0, 1, 4, victim.image.size() - 1};
    for (const SectionRange& s : info->sections) {
      cuts.push_back(s.offset);
      cuts.push_back(s.offset + s.length);
    }
    Rng rng(kSeed * 31 + version);
    for (int round = 0; round < 100; ++round) {
      cuts.push_back(rng.NextBounded(victim.image.size()));
    }
    for (uint64_t cut : cuts) {
      ASSERT_LT(cut, victim.image.size());
      WriteBytes(path_, std::span(victim.image).first(cut));
      std::string what = "v" + std::to_string(version) + " cut at " +
                         std::to_string(cut);
      ExpectVerifiedReadersReject(path_, what);
      if (version == kFormatVersionV4) {
        // Truncation always removes trailer or metadata bytes — even
        // the lazy open must catch it.
        auto lazy =
            MappedLinLoutStore::Open(path_, {.verify_file_checksum = false});
        EXPECT_FALSE(lazy.ok()) << what << ": lazy open accepted";
      }
    }
  }
}

TEST_F(FormatFuzzTest, EveryV4BlockBoundaryFlipIsCaughtAtDecode) {
  Victim victim = MakeVictim(kFormatVersionV4, path_);
  auto info = InspectFile(path_);
  ASSERT_TRUE(info.ok()) << info.status();
  auto view = ParseV4(victim.image, path_);
  ASSERT_TRUE(view.ok()) << view.status();
  struct SectionOfInterest {
    SectionV4 blob;
    const LabelSectionView* section;
  };
  const SectionOfInterest sections[] = {
      {kV4LinBlob, &view->lin},
      {kV4LoutBlob, &view->lout},
      {kV4LinBwdBlob, &view->lin_bwd},
      {kV4LoutBwdBlob, &view->lout_bwd},
  };
  for (const SectionOfInterest& s : sections) {
    uint64_t section_offset = info->sections[s.blob].offset;
    for (const V4BlockEntry& block : s.section->blocks) {
      // Flip the first byte of the block in the file image.
      std::vector<std::byte> mutant = victim.image;
      mutant[section_offset + block.blob_offset] ^= std::byte{0x01};
      WriteBytes(path_, mutant);
      // Verified open: refused outright (whole-file checksum).
      auto verified = MappedLinLoutStore::Open(path_);
      EXPECT_TRUE(verified.status().IsCorruption()) << verified.status();
      // Lazy open: accepted (metadata intact), damage surfaces as
      // Corruption from the per-block CRC — and only probing, never
      // crashing, in between.
      auto lazy =
          MappedLinLoutStore::Open(path_, {.verify_file_checksum = false});
      ASSERT_TRUE(lazy.ok()) << lazy.status();
      EXPECT_TRUE(lazy->VerifyBlocks().IsCorruption());
      ProbeEverySurface(*lazy, victim.num_nodes);
    }
  }
}

TEST_F(FormatFuzzTest, LazyV4OpenNeverCrashesOnArbitraryDamage) {
  Victim victim = MakeVictim(kFormatVersionV4, path_);
  Rng rng(kSeed * 77);
  size_t accepted = 0;
  for (int round = 0; round < 300; ++round) {
    uint64_t offset = rng.NextBounded(victim.image.size());
    std::byte mask{static_cast<unsigned char>(1u << rng.NextBounded(8))};
    std::vector<std::byte> mutant = victim.image;
    mutant[offset] ^= mask;
    WriteBytes(path_, mutant);
    auto lazy =
        MappedLinLoutStore::Open(path_, {.verify_file_checksum = false});
    if (!lazy.ok()) {
      // Metadata damage: rejected at open, with a structured error.
      EXPECT_TRUE(lazy.status().IsCorruption() ||
                  lazy.status().IsUnsupported())
          << "flip at " << offset << ": " << lazy.status();
      continue;
    }
    // Blob (or trailer-checksum) damage: the store serves, blob damage
    // is quarantined per block, and nothing crashes.
    ++accepted;
    Status blocks = lazy->VerifyBlocks();
    EXPECT_TRUE(blocks.ok() || blocks.IsCorruption()) << blocks;
    ProbeEverySurface(*lazy, victim.num_nodes);
  }
  // The attack actually exercised both regimes.
  EXPECT_GT(accepted, 0u);
  EXPECT_LT(accepted, 300u);
}

TEST_F(FormatFuzzTest, GarbageFilesAreRejectedNotCrashed) {
  Rng rng(kSeed * 101);
  for (size_t size : {0u, 1u, 7u, 16u, 143u, 144u, 215u, 216u, 4096u}) {
    std::vector<std::byte> garbage(size);
    for (std::byte& b : garbage) {
      b = std::byte{static_cast<unsigned char>(rng.NextBounded(256))};
    }
    WriteBytes(path_, garbage);
    ExpectVerifiedReadersReject(path_,
                                "garbage of " + std::to_string(size) + "B");
    auto lazy =
        MappedLinLoutStore::Open(path_, {.verify_file_checksum = false});
    EXPECT_FALSE(lazy.ok()) << "garbage of " << size << "B";
  }
}

}  // namespace
}  // namespace hopi::storage
