#include <gtest/gtest.h>

#include "twohop/center_graph.h"
#include "twohop/cover.h"
#include "twohop/reverse_index.h"
#include "util/rng.h"

namespace hopi::twohop {
namespace {

TEST(TwoHopCoverTest, ConnectionViaSharedCenter) {
  TwoHopCover cover(4);
  // Cover the pair (0, 3) with center 1.
  cover.AddOut(0, 1);
  cover.AddIn(3, 1);
  EXPECT_TRUE(cover.IsConnected(0, 3));
  EXPECT_FALSE(cover.IsConnected(3, 0));
  EXPECT_EQ(cover.Size(), 2u);
}

TEST(TwoHopCoverTest, ImplicitSelfEntries) {
  TwoHopCover cover(3);
  // Center 1 = the target itself: 0 -> 1 covered by Lout(0) ∋ 1.
  cover.AddOut(0, 1);
  EXPECT_TRUE(cover.IsConnected(0, 1));
  // Center 1 = the source itself: 1 -> 2 covered by Lin(2) ∋ 1.
  cover.AddIn(2, 1);
  EXPECT_TRUE(cover.IsConnected(1, 2));
  // Reflexive always connected.
  EXPECT_TRUE(cover.IsConnected(2, 2));
}

TEST(TwoHopCoverTest, SelfEntriesNeverStored) {
  TwoHopCover cover(2);
  EXPECT_FALSE(cover.AddIn(1, 1));
  EXPECT_FALSE(cover.AddOut(0, 0));
  EXPECT_EQ(cover.Size(), 0u);
}

TEST(TwoHopCoverTest, DuplicateKeepsMinDistance) {
  TwoHopCover cover(3);
  EXPECT_TRUE(cover.AddOut(0, 1, 5));
  EXPECT_FALSE(cover.AddOut(0, 1, 3));  // no size growth
  EXPECT_FALSE(cover.AddOut(0, 1, 9));  // larger ignored
  EXPECT_EQ(cover.Out(0).size(), 1u);
  EXPECT_EQ(cover.Out(0)[0].dist, 3u);
}

TEST(TwoHopCoverTest, DistanceViaCenters) {
  TwoHopCover cover(4);
  cover.AddOut(0, 1, 2);  // 0 ->2 hops-> 1
  cover.AddIn(3, 1, 4);   // 1 ->4 hops-> 3
  auto d = cover.Distance(0, 3);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, 6u);
  // A second, shorter center wins.
  cover.AddOut(0, 2, 1);
  cover.AddIn(3, 2, 2);
  EXPECT_EQ(*cover.Distance(0, 3), 3u);
  EXPECT_EQ(*cover.Distance(0, 0), 0u);
  EXPECT_FALSE(cover.Distance(3, 0).has_value());
}

TEST(TwoHopCoverTest, DistanceViaImplicitSelf) {
  TwoHopCover cover(3);
  cover.AddIn(2, 0, 7);  // center 0 = source
  EXPECT_EQ(*cover.Distance(0, 2), 7u);
  cover.AddOut(1, 2, 4);  // center 2 = target
  EXPECT_EQ(*cover.Distance(1, 2), 4u);
}

TEST(TwoHopCoverTest, UnionWithMergesAndKeepsMin) {
  TwoHopCover a(3), b(3);
  a.AddOut(0, 1, 5);
  b.AddOut(0, 1, 2);
  b.AddIn(2, 1, 1);
  a.UnionWith(b);
  EXPECT_EQ(a.Size(), 2u);
  EXPECT_EQ(a.Out(0)[0].dist, 2u);
  EXPECT_TRUE(a.IsConnected(0, 2));
}

TEST(TwoHopCoverTest, ClearNodeAccountsSize) {
  TwoHopCover cover(3);
  cover.AddOut(0, 1);
  cover.AddIn(0, 2);
  cover.AddOut(2, 1);
  EXPECT_EQ(cover.Size(), 3u);
  cover.ClearNode(0);
  EXPECT_EQ(cover.Size(), 1u);
  EXPECT_TRUE(cover.Out(0).empty());
  EXPECT_TRUE(cover.In(0).empty());
}

TEST(TwoHopCoverTest, SetInOutReplaceAndAccount) {
  TwoHopCover cover(3);
  cover.AddIn(0, 1, 3);
  cover.SetIn(0, {{2, 1}});
  EXPECT_EQ(cover.Size(), 1u);
  EXPECT_EQ(cover.In(0)[0].center, 2u);
  cover.SetOut(0, {{1, 0}, {2, 0}});
  EXPECT_EQ(cover.Size(), 3u);
}

TEST(TwoHopCoverTest, MentionsCenter) {
  TwoHopCover cover(3);
  cover.AddOut(0, 2);
  EXPECT_TRUE(cover.MentionsCenter(2));
  EXPECT_FALSE(cover.MentionsCenter(1));
}

TEST(TwoHopCoverTest, EnsureNodesGrows) {
  TwoHopCover cover(2);
  cover.EnsureNodes(10);
  EXPECT_EQ(cover.NumNodes(), 10u);
  cover.AddOut(9, 1);
  EXPECT_TRUE(cover.IsConnected(9, 1));
}

TEST(IndexedCoverTest, AncestorsAndDescendants) {
  // Chain 0 -> 1 -> 2 -> 3 covered with center 1 and 2 choices:
  TwoHopCover cover(4);
  cover.AddOut(0, 1);        // 0 ->* 1
  cover.AddIn(2, 1);         // 1 ->* 2
  cover.AddIn(3, 1);         // 1 ->* 3
  cover.AddOut(0, 2);        // redundant second center
  cover.AddIn(3, 2);
  cover.AddOut(1, 2);
  IndexedCover indexed(std::move(cover));
  EXPECT_EQ(indexed.Descendants(0), (std::vector<NodeId>{1, 2, 3}));
  EXPECT_EQ(indexed.Ancestors(3), (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(indexed.Ancestors(0), (std::vector<NodeId>{}));
}

TEST(IndexedCoverTest, IncrementalAddKeepsMapsInSync) {
  IndexedCover indexed{TwoHopCover(4)};
  indexed.AddOut(0, 1);
  indexed.AddIn(2, 1);
  EXPECT_EQ(indexed.Descendants(0), (std::vector<NodeId>{1, 2}));
  indexed.AddIn(3, 1);
  EXPECT_EQ(indexed.Descendants(0), (std::vector<NodeId>{1, 2, 3}));
  EXPECT_EQ(indexed.Ancestors(3), (std::vector<NodeId>{0, 1}));
}

TEST(IndexedCoverTest, RebuildAfterBulkEdit) {
  TwoHopCover cover(3);
  cover.AddOut(0, 1);
  cover.AddIn(2, 1);
  IndexedCover indexed(std::move(cover));
  indexed.mutable_cover()->ClearNode(0);
  indexed.RebuildReverseMaps();
  EXPECT_TRUE(indexed.Descendants(0).empty());
  EXPECT_EQ(indexed.Ancestors(2), (std::vector<NodeId>{1}));
}

TEST(DensestSubgraphTest, CompleteBipartiteIsItself) {
  BipartiteGraph g(3, 2);
  for (uint32_t i = 0; i < 3; ++i) {
    for (uint32_t j = 0; j < 2; ++j) g.AddEdge(i, j);
  }
  DensestSubgraph ds = ApproxDensestSubgraph(g);
  EXPECT_EQ(ds.in_vertices.size(), 3u);
  EXPECT_EQ(ds.out_vertices.size(), 2u);
  EXPECT_EQ(ds.edges, 6u);
  EXPECT_DOUBLE_EQ(ds.density, 6.0 / 5.0);
}

TEST(DensestSubgraphTest, IsolatedVerticesDropped) {
  BipartiteGraph g(3, 3);
  g.AddEdge(0, 0);
  // Vertices 1,2 on both sides are isolated.
  DensestSubgraph ds = ApproxDensestSubgraph(g);
  EXPECT_EQ(ds.in_vertices, (std::vector<uint32_t>{0}));
  EXPECT_EQ(ds.out_vertices, (std::vector<uint32_t>{0}));
  EXPECT_DOUBLE_EQ(ds.density, 0.5);
}

TEST(DensestSubgraphTest, FindsDenseCore) {
  // A dense 3x3 core plus a long pendant fringe.
  BipartiteGraph g(10, 10);
  for (uint32_t i = 0; i < 3; ++i) {
    for (uint32_t j = 0; j < 3; ++j) g.AddEdge(i, j);
  }
  for (uint32_t k = 3; k < 10; ++k) g.AddEdge(k, k);
  DensestSubgraph ds = ApproxDensestSubgraph(g);
  // Core density 9/6 = 1.5; fringe pairs have density 0.5. The
  // 2-approximation must find something at least half the optimum.
  EXPECT_GE(ds.density, 0.75);
  EXPECT_LE(ds.in_vertices.size(), 4u);
}

TEST(DensestSubgraphTest, EdgelessGraph) {
  BipartiteGraph g(4, 4);
  DensestSubgraph ds = ApproxDensestSubgraph(g);
  EXPECT_EQ(ds.density, 0.0);
  EXPECT_TRUE(ds.in_vertices.empty());
}

TEST(DensestSubgraphTest, TwoApproximationGuarantee) {
  // Random bipartite graphs: peeling result must be >= (max density)/2.
  // We verify against the density of the full graph (a lower bound on the
  // optimum) as a sanity proxy.
  Rng rng(42);
  for (int trial = 0; trial < 10; ++trial) {
    BipartiteGraph g(8, 8);
    uint64_t edges = 0;
    for (uint32_t i = 0; i < 8; ++i) {
      for (uint32_t j = 0; j < 8; ++j) {
        if (rng.NextBernoulli(0.3)) {
          g.AddEdge(i, j);
          ++edges;
        }
      }
    }
    if (edges == 0) continue;
    DensestSubgraph ds = ApproxDensestSubgraph(g);
    double whole = static_cast<double>(edges) / 16.0;
    EXPECT_GE(ds.density + 1e-12, whole / 2.0);
  }
}

}  // namespace
}  // namespace hopi::twohop
