#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "hopi/build.h"
#include "storage/linlout.h"
#include "test_util.h"
#include "twohop/builder.h"

namespace hopi::storage {
namespace {

twohop::TwoHopCover SampleCover(bool with_distance, uint64_t seed = 5) {
  Digraph g = hopi::testing::RandomDag(40, 2.0, seed);
  twohop::CoverBuildOptions options;
  options.with_distance = with_distance;
  auto cover = twohop::BuildCover(g, options);
  EXPECT_TRUE(cover.ok());
  return std::move(cover).value();
}

TEST(LinLoutStoreTest, ConnectionTestMatchesCover) {
  twohop::TwoHopCover cover = SampleCover(false);
  LinLoutStore store = LinLoutStore::FromCover(cover, false);
  for (NodeId u = 0; u < cover.NumNodes(); ++u) {
    for (NodeId v = 0; v < cover.NumNodes(); ++v) {
      EXPECT_EQ(store.TestConnection(u, v), cover.IsConnected(u, v))
          << u << "->" << v;
    }
  }
}

TEST(LinLoutStoreTest, MinDistanceMatchesCover) {
  twohop::TwoHopCover cover = SampleCover(true);
  LinLoutStore store = LinLoutStore::FromCover(cover, true);
  for (NodeId u = 0; u < cover.NumNodes(); ++u) {
    for (NodeId v = 0; v < cover.NumNodes(); ++v) {
      EXPECT_EQ(store.MinDistance(u, v), cover.Distance(u, v))
          << u << "->" << v;
    }
  }
}

TEST(LinLoutStoreTest, DescendantsAncestorsMatchGraph) {
  Digraph g = hopi::testing::RandomDag(35, 2.0, 9);
  auto cover = twohop::BuildCover(g);
  ASSERT_TRUE(cover.ok());
  LinLoutStore store = LinLoutStore::FromCover(*cover, false);
  twohop::IndexedCover indexed(*cover);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    EXPECT_EQ(store.Descendants(u), indexed.Descendants(u));
    EXPECT_EQ(store.Ancestors(u), indexed.Ancestors(u));
  }
}

TEST(LinLoutStoreTest, EntryAccounting) {
  twohop::TwoHopCover cover = SampleCover(false);
  LinLoutStore store = LinLoutStore::FromCover(cover, false);
  EXPECT_EQ(store.NumEntries(), cover.Size());
  // 2 ints per forward row, doubled by the backward index.
  EXPECT_EQ(store.StorageIntegers(), cover.Size() * 4);
  LinLoutStore dstore = LinLoutStore::FromCover(cover, true);
  EXPECT_EQ(dstore.StorageIntegers(), cover.Size() * 6);
}

TEST(LinLoutStoreTest, ScansAreSortedAndComplete) {
  twohop::TwoHopCover cover = SampleCover(false, 11);
  LinLoutStore store = LinLoutStore::FromCover(cover, false);
  for (NodeId u = 0; u < cover.NumNodes(); ++u) {
    auto lin = store.ScanLin(u);
    EXPECT_EQ(lin.size(), cover.In(u).size());
    for (size_t i = 1; i < lin.size(); ++i) {
      EXPECT_LT(lin[i - 1].center, lin[i].center);
    }
    auto lout = store.ScanLout(u);
    EXPECT_EQ(lout.size(), cover.Out(u).size());
  }
}

TEST(LinLoutStoreTest, LabelExportMatchesCover) {
  twohop::TwoHopCover cover = SampleCover(true, 41);
  LinLoutStore store = LinLoutStore::FromCover(cover, true);
  std::vector<twohop::LabelEntry> label;
  for (NodeId u = 0; u < cover.NumNodes(); ++u) {
    store.LinLabel(u, &label);
    EXPECT_EQ(label, cover.In(u));
    store.LoutLabel(u, &label);
    EXPECT_EQ(label, cover.Out(u));
  }
}

TEST(LinLoutStoreTest, RoundTripThroughCover) {
  twohop::TwoHopCover cover = SampleCover(true, 13);
  LinLoutStore store = LinLoutStore::FromCover(cover, true);
  twohop::TwoHopCover back = store.ToCover(cover.NumNodes());
  EXPECT_EQ(back.Size(), cover.Size());
  for (NodeId u = 0; u < cover.NumNodes(); ++u) {
    EXPECT_EQ(back.In(u).size(), cover.In(u).size());
    EXPECT_EQ(back.Out(u).size(), cover.Out(u).size());
  }
}

class LinLoutPersistenceTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "hopi_store_test.bin";
};

TEST_F(LinLoutPersistenceTest, WriteReadRoundTrip) {
  twohop::TwoHopCover cover = SampleCover(true, 17);
  LinLoutStore store = LinLoutStore::FromCover(cover, true);
  ASSERT_TRUE(store.WriteToFile(path_).ok());
  auto loaded = LinLoutStore::ReadFromFile(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->NumEntries(), store.NumEntries());
  EXPECT_TRUE(loaded->with_distance());
  for (NodeId u = 0; u < cover.NumNodes(); ++u) {
    for (NodeId v = 0; v < cover.NumNodes(); v += 3) {
      EXPECT_EQ(loaded->TestConnection(u, v), store.TestConnection(u, v));
      EXPECT_EQ(loaded->MinDistance(u, v), store.MinDistance(u, v));
    }
  }
}

TEST_F(LinLoutPersistenceTest, MissingFileIsIOError) {
  auto loaded = LinLoutStore::ReadFromFile("/nonexistent/dir/f.bin");
  EXPECT_TRUE(loaded.status().IsIOError());
}

TEST_F(LinLoutPersistenceTest, BadMagicIsCorruption) {
  FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("NOTHOPI!xxxxxxxxxxxxxxxxxxxxxxxxxxx", f);
  std::fclose(f);
  auto loaded = LinLoutStore::ReadFromFile(path_);
  EXPECT_TRUE(loaded.status().IsCorruption());
}

TEST_F(LinLoutPersistenceTest, TruncatedHeaderDetected) {
  FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("HOPI", f);  // magic only, no version/flags/counts
  std::fclose(f);
  auto loaded = LinLoutStore::ReadFromFile(path_);
  EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status();
}

TEST_F(LinLoutPersistenceTest, StaleFormatVersionIsUnsupported) {
  twohop::TwoHopCover cover = SampleCover(false, 23);
  LinLoutStore store = LinLoutStore::FromCover(cover, false);
  ASSERT_TRUE(store.WriteToFile(path_).ok());
  // Patch the version field (bytes 4..8) to a future version.
  FILE* f = std::fopen(path_.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  uint32_t future_version = 99;
  std::fseek(f, 4, SEEK_SET);
  ASSERT_EQ(std::fwrite(&future_version, sizeof(future_version), 1, f), 1u);
  std::fclose(f);
  auto loaded = LinLoutStore::ReadFromFile(path_);
  EXPECT_TRUE(loaded.status().IsUnsupported()) << loaded.status();
  EXPECT_NE(loaded.status().message().find("99"), std::string::npos);
}

TEST_F(LinLoutPersistenceTest, OldV1LayoutReportsVersionError) {
  // A v1 file started with the 8-byte magic "HOPILL01": the first four
  // bytes match the current magic and the next four parse as a bogus
  // version, so stale files fail clearly instead of being misread.
  FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("HOPILL01", f);
  uint64_t v1_header[3] = {0, 0, 0};
  ASSERT_EQ(std::fwrite(v1_header, sizeof(v1_header), 1, f), 1u);
  std::fclose(f);
  auto loaded = LinLoutStore::ReadFromFile(path_);
  EXPECT_TRUE(loaded.status().IsUnsupported()) << loaded.status();
}

TEST_F(LinLoutPersistenceTest, UnknownHeaderFlagsAreCorruption) {
  twohop::TwoHopCover cover = SampleCover(false, 29);
  LinLoutStore store = LinLoutStore::FromCover(cover, false);
  ASSERT_TRUE(store.WriteToFile(path_).ok());
  // Set a reserved flag bit (bytes 8..12 hold the flags).
  FILE* f = std::fopen(path_.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  uint32_t bogus_flags = 1u << 7;
  std::fseek(f, 8, SEEK_SET);
  ASSERT_EQ(std::fwrite(&bogus_flags, sizeof(bogus_flags), 1, f), 1u);
  std::fclose(f);
  auto loaded = LinLoutStore::ReadFromFile(path_);
  EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status();
}

TEST_F(LinLoutPersistenceTest, BogusRowCountsAreCorruption) {
  twohop::TwoHopCover cover = SampleCover(false, 37);
  LinLoutStore store = LinLoutStore::FromCover(cover, false);
  ASSERT_TRUE(store.WriteToFile(path_).ok());
  // Patch the LIN row count (bytes 12..20) to an absurd value: the
  // reader must fail with Corruption, not attempt the allocation.
  FILE* f = std::fopen(path_.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  uint64_t bogus_count = UINT64_MAX / 2;
  std::fseek(f, 12, SEEK_SET);
  ASSERT_EQ(std::fwrite(&bogus_count, sizeof(bogus_count), 1, f), 1u);
  std::fclose(f);
  auto loaded = LinLoutStore::ReadFromFile(path_);
  EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status();
}

TEST_F(LinLoutPersistenceTest, DistanceFlagRoundTrips) {
  twohop::TwoHopCover cover = SampleCover(true, 31);
  for (bool with_distance : {false, true}) {
    LinLoutStore store = LinLoutStore::FromCover(cover, with_distance);
    ASSERT_TRUE(store.WriteToFile(path_).ok());
    auto loaded = LinLoutStore::ReadFromFile(path_);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    EXPECT_EQ(loaded->with_distance(), with_distance);
  }
}

TEST_F(LinLoutPersistenceTest, TruncatedRowsDetected) {
  twohop::TwoHopCover cover = SampleCover(false, 19);
  LinLoutStore store = LinLoutStore::FromCover(cover, false);
  ASSERT_TRUE(store.WriteToFile(path_).ok());
  // Chop the file.
  FILE* f = std::fopen(path_.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  ASSERT_TRUE(::truncate(path_.c_str(), size - 8) == 0);
  auto loaded = LinLoutStore::ReadFromFile(path_);
  EXPECT_TRUE(loaded.status().IsCorruption());
}

TEST(LinLoutStoreTest, EmptyStoreAnswersNothing) {
  LinLoutStore store = LinLoutStore::FromCover(twohop::TwoHopCover(5), false);
  EXPECT_EQ(store.NumEntries(), 0u);
  EXPECT_FALSE(store.TestConnection(0, 1));
  EXPECT_TRUE(store.TestConnection(2, 2));  // reflexive
  EXPECT_TRUE(store.Descendants(3).empty());
  EXPECT_TRUE(store.Ancestors(3).empty());
  EXPECT_EQ(store.MinDistance(4, 4), std::optional<uint32_t>(0));
}

TEST(LinLoutStoreTest, PlainStoreDistancesAreZero) {
  // A plain store (no DIST column) still answers MinDistance: connected
  // pairs report 0 — the paper's plain index simply cannot rank.
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  auto cover = twohop::BuildCover(g);
  ASSERT_TRUE(cover.ok());
  LinLoutStore store = LinLoutStore::FromCover(*cover, false);
  auto d = store.MinDistance(0, 2);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, 0u);
}

TEST(LinLoutStoreTest, EndToEndWithBuiltIndex) {
  collection::Collection c = hopi::testing::SmallDblp(30, 21);
  auto index = BuildIndex(&c);
  ASSERT_TRUE(index.ok());
  LinLoutStore store = LinLoutStore::FromCover(index->cover(), false);
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(c.NumElements()));
    NodeId v = static_cast<NodeId>(rng.NextBounded(c.NumElements()));
    EXPECT_EQ(store.TestConnection(u, v), index->IsReachable(u, v));
  }
}

}  // namespace
}  // namespace hopi::storage
