#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include <map>

#include "hopi/build.h"
#include "storage/compress.h"
#include "storage/format.h"
#include "storage/linlout.h"
#include "storage/mapped_linlout.h"
#include "test_util.h"
#include "twohop/builder.h"

namespace hopi::storage {
namespace {

twohop::TwoHopCover SampleCover(bool with_distance, uint64_t seed = 5) {
  Digraph g = hopi::testing::RandomDag(40, 2.0, seed);
  twohop::CoverBuildOptions options;
  options.with_distance = with_distance;
  auto cover = twohop::BuildCover(g, options);
  EXPECT_TRUE(cover.ok());
  return std::move(cover).value();
}

TEST(LinLoutStoreTest, ConnectionTestMatchesCover) {
  twohop::TwoHopCover cover = SampleCover(false);
  LinLoutStore store = LinLoutStore::FromCover(cover, false);
  for (NodeId u = 0; u < cover.NumNodes(); ++u) {
    for (NodeId v = 0; v < cover.NumNodes(); ++v) {
      EXPECT_EQ(store.TestConnection(u, v), cover.IsConnected(u, v))
          << u << "->" << v;
    }
  }
}

TEST(LinLoutStoreTest, MinDistanceMatchesCover) {
  twohop::TwoHopCover cover = SampleCover(true);
  LinLoutStore store = LinLoutStore::FromCover(cover, true);
  for (NodeId u = 0; u < cover.NumNodes(); ++u) {
    for (NodeId v = 0; v < cover.NumNodes(); ++v) {
      EXPECT_EQ(store.MinDistance(u, v), cover.Distance(u, v))
          << u << "->" << v;
    }
  }
}

TEST(LinLoutStoreTest, DescendantsAncestorsMatchGraph) {
  Digraph g = hopi::testing::RandomDag(35, 2.0, 9);
  auto cover = twohop::BuildCover(g);
  ASSERT_TRUE(cover.ok());
  LinLoutStore store = LinLoutStore::FromCover(*cover, false);
  twohop::IndexedCover indexed(*cover);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    EXPECT_EQ(store.Descendants(u), indexed.Descendants(u));
    EXPECT_EQ(store.Ancestors(u), indexed.Ancestors(u));
  }
}

TEST(LinLoutStoreTest, EntryAccounting) {
  twohop::TwoHopCover cover = SampleCover(false);
  LinLoutStore store = LinLoutStore::FromCover(cover, false);
  EXPECT_EQ(store.NumEntries(), cover.Size());
  // 2 ints per forward row, doubled by the backward index.
  EXPECT_EQ(store.StorageIntegers(), cover.Size() * 4);
  LinLoutStore dstore = LinLoutStore::FromCover(cover, true);
  EXPECT_EQ(dstore.StorageIntegers(), cover.Size() * 6);
}

TEST(LinLoutStoreTest, ScansAreSortedAndComplete) {
  twohop::TwoHopCover cover = SampleCover(false, 11);
  LinLoutStore store = LinLoutStore::FromCover(cover, false);
  for (NodeId u = 0; u < cover.NumNodes(); ++u) {
    auto lin = store.ScanLin(u);
    EXPECT_EQ(lin.size(), cover.In(u).size());
    for (size_t i = 1; i < lin.size(); ++i) {
      EXPECT_LT(lin[i - 1].center, lin[i].center);
    }
    auto lout = store.ScanLout(u);
    EXPECT_EQ(lout.size(), cover.Out(u).size());
  }
}

TEST(LinLoutStoreTest, LabelExportMatchesCover) {
  twohop::TwoHopCover cover = SampleCover(true, 41);
  LinLoutStore store = LinLoutStore::FromCover(cover, true);
  std::vector<twohop::LabelEntry> label;
  for (NodeId u = 0; u < cover.NumNodes(); ++u) {
    store.LinLabel(u, &label);
    EXPECT_EQ(label, cover.In(u));
    store.LoutLabel(u, &label);
    EXPECT_EQ(label, cover.Out(u));
  }
}

TEST(LinLoutStoreTest, RoundTripThroughCover) {
  twohop::TwoHopCover cover = SampleCover(true, 13);
  LinLoutStore store = LinLoutStore::FromCover(cover, true);
  twohop::TwoHopCover back = store.ToCover(cover.NumNodes());
  EXPECT_EQ(back.Size(), cover.Size());
  for (NodeId u = 0; u < cover.NumNodes(); ++u) {
    EXPECT_EQ(back.In(u).size(), cover.In(u).size());
    EXPECT_EQ(back.Out(u).size(), cover.Out(u).size());
  }
}

class LinLoutPersistenceTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "hopi_store_test.bin";
};

TEST_F(LinLoutPersistenceTest, WriteReadRoundTrip) {
  twohop::TwoHopCover cover = SampleCover(true, 17);
  LinLoutStore store = LinLoutStore::FromCover(cover, true);
  ASSERT_TRUE(store.WriteToFile(path_).ok());
  auto loaded = LinLoutStore::ReadFromFile(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->NumEntries(), store.NumEntries());
  EXPECT_TRUE(loaded->with_distance());
  for (NodeId u = 0; u < cover.NumNodes(); ++u) {
    for (NodeId v = 0; v < cover.NumNodes(); v += 3) {
      EXPECT_EQ(loaded->TestConnection(u, v), store.TestConnection(u, v));
      EXPECT_EQ(loaded->MinDistance(u, v), store.MinDistance(u, v));
    }
  }
}

TEST_F(LinLoutPersistenceTest, MissingFileIsIOError) {
  auto loaded = LinLoutStore::ReadFromFile("/nonexistent/dir/f.bin");
  EXPECT_TRUE(loaded.status().IsIOError());
}

TEST_F(LinLoutPersistenceTest, BadMagicIsCorruption) {
  FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("NOTHOPI!xxxxxxxxxxxxxxxxxxxxxxxxxxx", f);
  std::fclose(f);
  auto loaded = LinLoutStore::ReadFromFile(path_);
  EXPECT_TRUE(loaded.status().IsCorruption());
}

TEST_F(LinLoutPersistenceTest, TruncatedHeaderDetected) {
  FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("HOPI", f);  // magic only, no version/flags/counts
  std::fclose(f);
  auto loaded = LinLoutStore::ReadFromFile(path_);
  EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status();
}

TEST_F(LinLoutPersistenceTest, StaleFormatVersionIsUnsupported) {
  twohop::TwoHopCover cover = SampleCover(false, 23);
  LinLoutStore store = LinLoutStore::FromCover(cover, false);
  ASSERT_TRUE(store.WriteToFile(path_).ok());
  // Patch the version field (bytes 4..8) to a future version.
  FILE* f = std::fopen(path_.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  uint32_t future_version = 99;
  std::fseek(f, 4, SEEK_SET);
  ASSERT_EQ(std::fwrite(&future_version, sizeof(future_version), 1, f), 1u);
  std::fclose(f);
  auto loaded = LinLoutStore::ReadFromFile(path_);
  EXPECT_TRUE(loaded.status().IsUnsupported()) << loaded.status();
  EXPECT_NE(loaded.status().message().find("99"), std::string::npos);
}

TEST_F(LinLoutPersistenceTest, OldV1LayoutReportsVersionError) {
  // A v1 file started with the 8-byte magic "HOPILL01": the first four
  // bytes match the current magic and the next four parse as a bogus
  // version, so stale files fail clearly instead of being misread.
  FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("HOPILL01", f);
  uint64_t v1_header[3] = {0, 0, 0};
  ASSERT_EQ(std::fwrite(v1_header, sizeof(v1_header), 1, f), 1u);
  std::fclose(f);
  auto loaded = LinLoutStore::ReadFromFile(path_);
  EXPECT_TRUE(loaded.status().IsUnsupported()) << loaded.status();
}

TEST_F(LinLoutPersistenceTest, UnknownHeaderFlagsAreCorruption) {
  twohop::TwoHopCover cover = SampleCover(false, 29);
  LinLoutStore store = LinLoutStore::FromCover(cover, false);
  ASSERT_TRUE(store.WriteToFile(path_).ok());
  // Set a reserved flag bit (bytes 8..12 hold the flags).
  FILE* f = std::fopen(path_.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  uint32_t bogus_flags = 1u << 7;
  std::fseek(f, 8, SEEK_SET);
  ASSERT_EQ(std::fwrite(&bogus_flags, sizeof(bogus_flags), 1, f), 1u);
  std::fclose(f);
  auto loaded = LinLoutStore::ReadFromFile(path_);
  EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status();
}

TEST_F(LinLoutPersistenceTest, BogusRowCountsAreCorruption) {
  twohop::TwoHopCover cover = SampleCover(false, 37);
  LinLoutStore store = LinLoutStore::FromCover(cover, false);
  ASSERT_TRUE(store.WriteToFile(path_).ok());
  // Patch the LIN row count (bytes 12..20) to an absurd value: the
  // reader must fail with Corruption, not attempt the allocation.
  FILE* f = std::fopen(path_.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  uint64_t bogus_count = UINT64_MAX / 2;
  std::fseek(f, 12, SEEK_SET);
  ASSERT_EQ(std::fwrite(&bogus_count, sizeof(bogus_count), 1, f), 1u);
  std::fclose(f);
  auto loaded = LinLoutStore::ReadFromFile(path_);
  EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status();
}

TEST_F(LinLoutPersistenceTest, DistanceFlagRoundTrips) {
  twohop::TwoHopCover cover = SampleCover(true, 31);
  for (bool with_distance : {false, true}) {
    LinLoutStore store = LinLoutStore::FromCover(cover, with_distance);
    ASSERT_TRUE(store.WriteToFile(path_).ok());
    auto loaded = LinLoutStore::ReadFromFile(path_);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    EXPECT_EQ(loaded->with_distance(), with_distance);
  }
}

TEST_F(LinLoutPersistenceTest, TruncatedRowsDetected) {
  twohop::TwoHopCover cover = SampleCover(false, 19);
  LinLoutStore store = LinLoutStore::FromCover(cover, false);
  ASSERT_TRUE(store.WriteToFile(path_).ok());
  // Chop the file.
  FILE* f = std::fopen(path_.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  ASSERT_TRUE(::truncate(path_.c_str(), size - 8) == 0);
  auto loaded = LinLoutStore::ReadFromFile(path_);
  EXPECT_TRUE(loaded.status().IsCorruption());
}

TEST(LinLoutStoreTest, EmptyStoreAnswersNothing) {
  LinLoutStore store = LinLoutStore::FromCover(twohop::TwoHopCover(5), false);
  EXPECT_EQ(store.NumEntries(), 0u);
  EXPECT_FALSE(store.TestConnection(0, 1));
  EXPECT_TRUE(store.TestConnection(2, 2));  // reflexive
  EXPECT_TRUE(store.Descendants(3).empty());
  EXPECT_TRUE(store.Ancestors(3).empty());
  EXPECT_EQ(store.MinDistance(4, 4), std::optional<uint32_t>(0));
}

TEST(LinLoutStoreTest, PlainStoreDistancesAreZero) {
  // A plain store (no DIST column) still answers MinDistance: connected
  // pairs report 0 — the paper's plain index simply cannot rank.
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  auto cover = twohop::BuildCover(g);
  ASSERT_TRUE(cover.ok());
  LinLoutStore store = LinLoutStore::FromCover(*cover, false);
  auto d = store.MinDistance(0, 2);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, 0u);
}

// ---- crash safety and the v3 on-disk format ----

class StorageFormatTest : public ::testing::Test {
 protected:
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }

  /// Fresh store written to path_; returns the in-memory original.
  LinLoutStore WriteSample(bool with_distance, uint64_t seed) {
    twohop::TwoHopCover cover = SampleCover(with_distance, seed);
    LinLoutStore store = LinLoutStore::FromCover(cover, with_distance);
    EXPECT_TRUE(store.WriteToFile(path_).ok());
    return store;
  }

  std::string path_ = ::testing::TempDir() + "hopi_format_test.bin";
};

TEST_F(StorageFormatTest, AtomicWriterLeavesNoTempFile) {
  WriteSample(true, 43);
  FILE* tmp = std::fopen((path_ + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) std::fclose(tmp);
}

TEST_F(StorageFormatTest, RewriteReplacesExistingFileAtomically) {
  WriteSample(false, 43);
  LinLoutStore second = WriteSample(true, 47);  // overwrite in place
  auto loaded = LinLoutStore::ReadFromFile(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->with_distance());
  EXPECT_EQ(loaded->NumEntries(), second.NumEntries());
}

TEST_F(StorageFormatTest, FailedWriteReportsIOErrorAndWritesNothing) {
  twohop::TwoHopCover cover = SampleCover(false, 43);
  LinLoutStore store = LinLoutStore::FromCover(cover, false);
  Status s = store.WriteToFile("/nonexistent/dir/f.bin");
  EXPECT_TRUE(s.IsIOError()) << s;
}

TEST_F(StorageFormatTest, InspectReportsVersionAndOrderedSections) {
  WriteSample(true, 43);
  auto info = InspectFile(path_);
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->version, kFormatVersion);
  EXPECT_EQ(info->flags, kFlagDistance);
  uint64_t prev_end = kHeaderBytes;
  for (size_t s = 0; s < kNumSections; ++s) {
    EXPECT_GE(info->sections[s].offset, prev_end) << "section " << s;
    EXPECT_EQ(info->sections[s].offset % 8, 0u) << "section " << s;
    prev_end = info->sections[s].offset + info->sections[s].length;
  }
  EXPECT_LE(prev_end, info->file_bytes - kTrailerBytes);
}

TEST_F(StorageFormatTest, TruncationAtEverySectionBoundaryIsCorruption) {
  WriteSample(true, 43);
  auto info = InspectFile(path_);
  ASSERT_TRUE(info.ok()) << info.status();
  // Every boundary of the file: header end, each section's begin and
  // end, and mid-trailer. A torn write stopping at any of them must
  // read as Corruption from both readers — never a crash or garbage.
  std::vector<uint64_t> boundaries = {0, 4, kHeaderBytes,
                                      info->file_bytes - 4};
  for (const SectionRange& s : info->sections) {
    boundaries.push_back(s.offset);
    boundaries.push_back(s.offset + s.length);
  }
  std::vector<std::byte> image(info->file_bytes);
  {
    FILE* f = std::fopen(path_.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fread(image.data(), 1, image.size(), f), image.size());
    std::fclose(f);
  }
  for (uint64_t cut : boundaries) {
    ASSERT_LT(cut, info->file_bytes);
    FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    if (cut > 0) {
      ASSERT_EQ(std::fwrite(image.data(), 1, cut, f), cut);
    }
    std::fclose(f);
    auto buffered = LinLoutStore::ReadFromFile(path_);
    EXPECT_TRUE(buffered.status().IsCorruption())
        << "buffered, cut at " << cut << ": " << buffered.status();
    auto mapped = MappedLinLoutStore::Open(path_);
    EXPECT_TRUE(mapped.status().IsCorruption())
        << "mapped, cut at " << cut << ": " << mapped.status();
  }
}

TEST_F(StorageFormatTest, BitFlipAnywhereIsCorruption) {
  WriteSample(false, 53);
  auto info = InspectFile(path_);
  ASSERT_TRUE(info.ok());
  // Flip one bit in the middle of the row data: only the trailing
  // checksum can catch this (the sections still parse).
  uint64_t victim = info->sections[kLinRows].offset + 5;
  FILE* f = std::fopen(path_.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, static_cast<long>(victim), SEEK_SET);
  int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  std::fseek(f, static_cast<long>(victim), SEEK_SET);
  std::fputc(c ^ 0x10, f);
  std::fclose(f);
  auto buffered = LinLoutStore::ReadFromFile(path_);
  EXPECT_TRUE(buffered.status().IsCorruption()) << buffered.status();
  auto mapped = MappedLinLoutStore::Open(path_);
  EXPECT_TRUE(mapped.status().IsCorruption()) << mapped.status();
}

// ---- the mmap-backed reader ----

class MappedStoreTest : public StorageFormatTest {};

TEST_F(MappedStoreTest, MappedAndBufferedReadersAgreeEverywhere) {
  LinLoutStore original = WriteSample(true, 59);
  auto loaded = LinLoutStore::ReadFromFile(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  auto mapped = MappedLinLoutStore::Open(path_);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  EXPECT_TRUE(mapped->mapped());  // POSIX CI: the real mmap path
  EXPECT_EQ(mapped->NumEntries(), original.NumEntries());
  EXPECT_EQ(mapped->StorageIntegers(), original.StorageIntegers());
  EXPECT_TRUE(mapped->with_distance());
  twohop::TwoHopCover cover = SampleCover(true, 59);
  for (NodeId u = 0; u < cover.NumNodes(); ++u) {
    for (NodeId v = 0; v < cover.NumNodes(); ++v) {
      EXPECT_EQ(mapped->TestConnection(u, v), loaded->TestConnection(u, v))
          << u << "->" << v;
      EXPECT_EQ(mapped->MinDistance(u, v), loaded->MinDistance(u, v))
          << u << "->" << v;
    }
    EXPECT_EQ(mapped->Descendants(u), loaded->Descendants(u)) << u;
    EXPECT_EQ(mapped->Ancestors(u), loaded->Ancestors(u)) << u;
  }
}

TEST_F(MappedStoreTest, SpansMatchMaterializedLabels) {
  LinLoutStore original = WriteSample(true, 61);
  auto mapped = MappedLinLoutStore::Open(path_);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  twohop::TwoHopCover cover = SampleCover(true, 61);
  std::vector<twohop::LabelEntry> label;
  for (NodeId u = 0; u < cover.NumNodes(); ++u) {
    original.LinLabel(u, &label);
    auto lin = mapped->LinSpan(u);
    EXPECT_EQ(std::vector<twohop::LabelEntry>(lin.begin(), lin.end()), label);
    original.LoutLabel(u, &label);
    auto lout = mapped->LoutSpan(u);
    EXPECT_EQ(std::vector<twohop::LabelEntry>(lout.begin(), lout.end()),
              label);
  }
  EXPECT_TRUE(mapped->LinSpan(1u << 30).empty());  // out-of-range node
}

TEST_F(MappedStoreTest, BufferedFallbackAnswersIdentically) {
  WriteSample(true, 67);
  auto mapped = MappedLinLoutStore::Open(path_);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  auto fallback = MappedLinLoutStore::Open(path_, {.prefer_mmap = false});
  ASSERT_TRUE(fallback.ok()) << fallback.status();
  EXPECT_FALSE(fallback->mapped());
  twohop::TwoHopCover cover = SampleCover(true, 67);
  for (NodeId u = 0; u < cover.NumNodes(); ++u) {
    for (NodeId v = 0; v < cover.NumNodes(); v += 2) {
      EXPECT_EQ(fallback->TestConnection(u, v), mapped->TestConnection(u, v));
      EXPECT_EQ(fallback->MinDistance(u, v), mapped->MinDistance(u, v));
    }
    EXPECT_EQ(fallback->Descendants(u), mapped->Descendants(u));
  }
}

TEST_F(MappedStoreTest, MissingFileIsIOError) {
  auto mapped = MappedLinLoutStore::Open("/nonexistent/dir/f.bin");
  EXPECT_TRUE(mapped.status().IsIOError()) << mapped.status();
}

TEST_F(MappedStoreTest, EmptyStoreRoundTrips) {
  LinLoutStore store = LinLoutStore::FromCover(twohop::TwoHopCover(5), false);
  ASSERT_TRUE(store.WriteToFile(path_).ok());
  auto mapped = MappedLinLoutStore::Open(path_);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  EXPECT_EQ(mapped->NumEntries(), 0u);
  EXPECT_FALSE(mapped->TestConnection(0, 1));
  EXPECT_TRUE(mapped->TestConnection(2, 2));  // reflexive
  EXPECT_TRUE(mapped->Descendants(3).empty());
}

// ---- v2 migration path ----

namespace v2 {

/// Serializes `store` in the legacy v2 layout (header + bare row
/// triplets, no section table, no checksum) so the migration tests can
/// exercise files written by the previous format revision.
void WriteLegacyFile(const LinLoutStore& store, size_t num_nodes,
                     const std::string& path) {
  std::vector<TableRow> lin, lout;
  for (NodeId u = 0; u < num_nodes; ++u) {
    for (const TableRow& r : store.ScanLin(u)) lin.push_back(r);
    for (const TableRow& r : store.ScanLout(u)) lout.push_back(r);
  }
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  uint32_t version = kLegacyFormatVersion;
  uint32_t flags = store.with_distance() ? kFlagDistance : 0;
  uint64_t counts[2] = {lin.size(), lout.size()};
  ASSERT_EQ(std::fwrite(kMagic, sizeof(kMagic), 1, f), 1u);
  ASSERT_EQ(std::fwrite(&version, sizeof(version), 1, f), 1u);
  ASSERT_EQ(std::fwrite(&flags, sizeof(flags), 1, f), 1u);
  ASSERT_EQ(std::fwrite(counts, sizeof(counts), 1, f), 1u);
  for (const std::vector<TableRow>* run : {&lin, &lout}) {
    for (const TableRow& r : *run) {
      uint32_t buf[3] = {r.id, r.center, r.dist};
      ASSERT_EQ(std::fwrite(buf, sizeof(buf), 1, f), 1u);
    }
  }
  std::fclose(f);
}

}  // namespace v2

TEST_F(StorageFormatTest, LegacyV2FileReadsAndMigratesToV3) {
  twohop::TwoHopCover cover = SampleCover(true, 71);
  LinLoutStore store = LinLoutStore::FromCover(cover, true);
  v2::WriteLegacyFile(store, cover.NumNodes(), path_);
  auto info = InspectFile(path_);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->version, kLegacyFormatVersion);
  // The buffered reader accepts v2...
  auto loaded = LinLoutStore::ReadFromFile(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->NumEntries(), store.NumEntries());
  EXPECT_TRUE(loaded->with_distance());
  // ...the mapped reader refuses it with a pointer to the migration...
  auto mapped = MappedLinLoutStore::Open(path_);
  EXPECT_TRUE(mapped.status().IsUnsupported()) << mapped.status();
  EXPECT_NE(mapped.status().message().find("migrate"), std::string::npos);
  // ...and writing the loaded store back produces a v3 file that the
  // mapped reader serves with identical answers.
  ASSERT_TRUE(loaded->WriteToFile(path_).ok());
  auto migrated_info = InspectFile(path_);
  ASSERT_TRUE(migrated_info.ok());
  EXPECT_EQ(migrated_info->version, kFormatVersion);
  auto migrated = MappedLinLoutStore::Open(path_);
  ASSERT_TRUE(migrated.ok()) << migrated.status();
  for (NodeId u = 0; u < cover.NumNodes(); ++u) {
    for (NodeId v = 0; v < cover.NumNodes(); v += 3) {
      EXPECT_EQ(migrated->TestConnection(u, v), store.TestConnection(u, v));
      EXPECT_EQ(migrated->MinDistance(u, v), store.MinDistance(u, v));
    }
  }
}

TEST_F(StorageFormatTest, DuplicateRowsInLegacyV2FileAreCorruption) {
  // A v2 file with duplicate (id, center) rows must be rejected at
  // read time: if it loaded, writing it back would produce a v3 file
  // that the strict directory validation refuses — a migration that
  // manufactures Corruption out of a "readable" file.
  FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  uint32_t version = kLegacyFormatVersion;
  uint32_t flags = 0;
  uint64_t counts[2] = {2, 0};
  ASSERT_EQ(std::fwrite(kMagic, sizeof(kMagic), 1, f), 1u);
  ASSERT_EQ(std::fwrite(&version, sizeof(version), 1, f), 1u);
  ASSERT_EQ(std::fwrite(&flags, sizeof(flags), 1, f), 1u);
  ASSERT_EQ(std::fwrite(counts, sizeof(counts), 1, f), 1u);
  uint32_t row[3] = {1, 2, 0};
  ASSERT_EQ(std::fwrite(row, sizeof(row), 1, f), 1u);
  ASSERT_EQ(std::fwrite(row, sizeof(row), 1, f), 1u);  // exact duplicate
  std::fclose(f);
  auto loaded = LinLoutStore::ReadFromFile(path_);
  EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status();
}

TEST_F(StorageFormatTest, TruncatedLegacyV2FileIsCorruption) {
  twohop::TwoHopCover cover = SampleCover(false, 73);
  LinLoutStore store = LinLoutStore::FromCover(cover, false);
  v2::WriteLegacyFile(store, cover.NumNodes(), path_);
  FILE* f = std::fopen(path_.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(::truncate(path_.c_str(), size - 8), 0);
  auto loaded = LinLoutStore::ReadFromFile(path_);
  EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status();
}

// ---- the v4 block codec ----

TEST(CompressCodecTest, VarintRoundTripsBoundaryValues) {
  const uint32_t values[] = {0,       1,          127,        128,
                             16383,   16384,      2097151,    2097152,
                             1u << 28, (1u << 28) - 1, 0xFFFFFFFE, 0xFFFFFFFF};
  std::vector<std::byte> buf;
  for (uint32_t v : values) PutVarint32(&buf, v);
  const std::byte* p = buf.data();
  const std::byte* end = buf.data() + buf.size();
  for (uint32_t expect : values) {
    uint32_t got = 0;
    ASSERT_TRUE(GetVarint32(&p, end, &got));
    EXPECT_EQ(got, expect);
  }
  EXPECT_EQ(p, end);  // exact consumption
}

TEST(CompressCodecTest, VarintRejectsTruncationAndOverflow) {
  std::vector<std::byte> buf;
  PutVarint32(&buf, 0xFFFFFFFF);
  ASSERT_EQ(buf.size(), 5u);
  const std::byte* p = buf.data();
  uint32_t got = 0;
  EXPECT_FALSE(GetVarint32(&p, buf.data() + 4, &got));  // truncated
  // Six continuation bytes: more than any u32 needs.
  std::vector<std::byte> overlong(6, std::byte{0x80});
  overlong.push_back(std::byte{0x01});
  p = overlong.data();
  EXPECT_FALSE(GetVarint32(&p, overlong.data() + overlong.size(), &got));
  // A 5-byte varint whose high bits overflow 32 bits.
  std::vector<std::byte> wide = {std::byte{0xFF}, std::byte{0xFF},
                                 std::byte{0xFF}, std::byte{0xFF},
                                 std::byte{0x7F}};
  p = wide.data();
  EXPECT_FALSE(GetVarint32(&p, wide.data() + wide.size(), &got));
}

/// Owns row storage and hands out the spans EncodeLabelRows wants.
struct RowSet {
  std::vector<uint32_t> keys;
  std::vector<std::vector<twohop::LabelEntry>> rows;

  std::vector<LabelRowRef> Refs() const {
    std::vector<LabelRowRef> refs;
    for (size_t i = 0; i < keys.size(); ++i) {
      refs.push_back({keys[i], rows[i]});
    }
    return refs;
  }

  /// The rows the decoder must reproduce: every non-empty input row.
  std::map<uint32_t, std::vector<twohop::LabelEntry>> NonEmpty() const {
    std::map<uint32_t, std::vector<twohop::LabelEntry>> out;
    for (size_t i = 0; i < keys.size(); ++i) {
      if (!rows[i].empty()) out[keys[i]] = rows[i];
    }
    return out;
  }
};

/// Random sorted rows: keys strictly ascending with gaps, centers
/// strictly ascending with occasional huge gaps (the delta encoder's
/// worst case), a sprinkle of empty and singleton rows.
RowSet RandomRows(uint64_t seed, size_t num_rows, bool with_distance) {
  Rng rng(seed);
  RowSet set;
  uint32_t key = 0;
  for (size_t i = 0; i < num_rows; ++i) {
    key += 1 + static_cast<uint32_t>(rng.NextBounded(9));
    std::vector<twohop::LabelEntry> row;
    uint64_t count = rng.NextBounded(13);  // 0 => empty row
    uint32_t center = static_cast<uint32_t>(rng.NextBounded(50));
    for (uint64_t e = 0; e < count; ++e) {
      uint32_t dist =
          with_distance ? static_cast<uint32_t>(rng.NextBounded(8)) : 0;
      row.push_back({center, dist});
      uint64_t gap = rng.NextBounded(100) == 0
                         ? 1u << 24  // adversarial gap
                         : 1 + rng.NextBounded(20);
      if (center > 0xF0000000) break;  // keep centers in range
      center += static_cast<uint32_t>(gap);
    }
    set.keys.push_back(key);
    set.rows.push_back(std::move(row));
  }
  return set;
}

/// Decodes every block of `section` and splices the rows back together.
std::map<uint32_t, std::vector<twohop::LabelEntry>> DecodeAll(
    const EncodedLabelSection& section, bool with_distance) {
  std::map<uint32_t, std::vector<twohop::LabelEntry>> out;
  for (const V4BlockEntry& block : section.blocks) {
    auto decoded = DecodeLabelBlock(section.blob, section.dir, block,
                                    with_distance, "test");
    EXPECT_TRUE(decoded.ok()) << decoded.status();
    if (!decoded.ok()) continue;
    for (size_t r = 0; r < decoded->NumRows(); ++r) {
      auto row = decoded->Row(r);
      out[decoded->row_keys[r]] = {row.begin(), row.end()};
    }
  }
  return out;
}

TEST(CompressCodecTest, RandomRowsRoundTripAcrossBlockSizes) {
  const CompressOptions kShapes[] = {
      {},                    // defaults: one-page blocks
      {256, 64},             // many small blocks
      {1, 1},                // degenerate: one row per block
      {1 << 20, 1 << 20},    // everything in one block
  };
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    for (bool with_distance : {false, true}) {
      RowSet set = RandomRows(seed, 60, with_distance);
      for (const CompressOptions& options : kShapes) {
        EncodedLabelSection section =
            EncodeLabelRows(set.Refs(), with_distance, options);
        auto expect = set.NonEmpty();
        // The dir carries exactly the non-empty rows, in key order.
        ASSERT_EQ(section.dir.size(), expect.size());
        // Blocks tile the dir and the blob exactly.
        uint64_t next_dir = 0, next_byte = 0;
        for (const V4BlockEntry& block : section.blocks) {
          EXPECT_EQ(block.first_dir, next_dir);
          EXPECT_EQ(block.blob_offset, next_byte);
          EXPECT_GE(block.num_rows, 1u);
          next_dir += block.num_rows;
          next_byte += block.blob_bytes;
        }
        EXPECT_EQ(next_dir, section.dir.size());
        EXPECT_EQ(next_byte, section.blob.size());
        EXPECT_EQ(DecodeAll(section, with_distance), expect)
            << "seed " << seed << " dist " << with_distance << " target "
            << options.target_block_bytes;
      }
    }
  }
}

TEST(CompressCodecTest, EmptySingletonAndAdversarialRows) {
  std::vector<twohop::LabelEntry> empty;
  std::vector<twohop::LabelEntry> singleton = {{7, 1}};
  // First center raw at the u32 ceiling, then the adversarial re-seed.
  std::vector<twohop::LabelEntry> extremes = {{0, 0}, {0xFFFFFFFE, 3}};
  std::vector<LabelRowRef> rows = {
      {1, empty}, {2, singleton}, {9, extremes}, {10, singleton}};
  EncodedLabelSection section = EncodeLabelRows(rows, true, {});
  ASSERT_EQ(section.dir.size(), 3u);  // empty row dropped
  auto decoded = DecodeAll(section, true);
  EXPECT_EQ(decoded[2], singleton);
  EXPECT_EQ(decoded[9], extremes);
  EXPECT_EQ(decoded[10], singleton);
  // No rows at all: a legal, completely empty section.
  EncodedLabelSection none = EncodeLabelRows({}, true, {});
  EXPECT_TRUE(none.dir.empty());
  EXPECT_TRUE(none.blocks.empty());
  EXPECT_TRUE(none.blob.empty());
}

TEST(CompressCodecTest, SharedPrefixesCompressSimilarRows) {
  // 32 rows, each sharing a long prefix with the first: the clustering
  // pass must store the prefix once, making v4 beat raw encoding by a
  // wide margin.
  std::vector<std::vector<twohop::LabelEntry>> storage;
  std::vector<LabelRowRef> rows;
  for (uint32_t r = 0; r < 32; ++r) {
    std::vector<twohop::LabelEntry> row;
    for (uint32_t e = 0; e < 64; ++e) row.push_back({e * 3, 1});
    row.push_back({1000 + r, 2});  // one private suffix entry
    storage.push_back(std::move(row));
  }
  for (uint32_t r = 0; r < 32; ++r) rows.push_back({r, storage[r]});
  EncodedLabelSection section = EncodeLabelRows(rows, true, {});
  size_t raw_bytes = (32 * 65) * sizeof(twohop::LabelEntry);
  EXPECT_LT(section.blob.size() * 4, raw_bytes);  // > 4x on this shape
  EXPECT_EQ(DecodeAll(section, true).size(), 32u);
}

TEST(CompressCodecTest, CorruptedBlockBytesAreCorruptionNeverACrash) {
  RowSet set = RandomRows(77, 40, true);
  EncodedLabelSection section = EncodeLabelRows(set.Refs(), true, {256, 64});
  ASSERT_FALSE(section.blocks.empty());
  for (size_t b = 0; b < section.blocks.size(); ++b) {
    const V4BlockEntry& block = section.blocks[b];
    for (uint64_t bit : {0u, 7u, 13u}) {
      EncodedLabelSection copy = section;
      uint64_t victim = block.blob_offset + bit % block.blob_bytes;
      copy.blob[victim] ^= std::byte{0x40};
      auto decoded =
          DecodeLabelBlock(copy.blob, copy.dir, block, true, "test");
      EXPECT_TRUE(decoded.status().IsCorruption())
          << "block " << b << " bit " << bit << ": " << decoded.status();
    }
  }
  // A truncated blob span must fail bounds validation, not read past.
  const V4BlockEntry& last = section.blocks.back();
  std::span<const std::byte> short_blob(section.blob.data(),
                                        section.blob.size() - 1);
  auto decoded = DecodeLabelBlock(short_blob, section.dir, last, true, "test");
  EXPECT_TRUE(decoded.status().IsCorruption()) << decoded.status();
}

// ---- the v4 on-disk format ----

class StorageFormatV4Test : public StorageFormatTest {
 protected:
  /// Fresh v4 store at path_ (tiny blocks so even the test cover spans
  /// several); returns the in-memory original.
  LinLoutStore WriteSampleV4(bool with_distance, uint64_t seed) {
    twohop::TwoHopCover cover = SampleCover(with_distance, seed);
    LinLoutStore store = LinLoutStore::FromCover(cover, with_distance);
    StoreWriteOptions options;
    options.format_version = kFormatVersionV4;
    options.compress.target_block_bytes = 256;
    options.compress.cluster_split_bytes = 64;
    EXPECT_TRUE(store.WriteToFile(path_, options).ok());
    return store;
  }
};

TEST_F(StorageFormatV4Test, InspectReportsV4AndItsTwelveSections) {
  WriteSampleV4(true, 43);
  auto info = InspectFile(path_);
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->version, kFormatVersionV4);
  EXPECT_EQ(info->flags, kFlagDistance);
  ASSERT_EQ(info->sections.size(), size_t{kNumSectionsV4});
  uint64_t prev_end = kHeaderBytesV4;
  for (size_t s = 0; s < info->sections.size(); ++s) {
    EXPECT_GE(info->sections[s].offset, prev_end) << "section " << s;
    EXPECT_EQ(info->sections[s].offset % 8, 0u) << "section " << s;
    prev_end = info->sections[s].offset + info->sections[s].length;
  }
  EXPECT_LE(prev_end, info->file_bytes - kTrailerBytes);
}

TEST_F(StorageFormatV4Test, WriterIsDeterministic) {
  LinLoutStore store = WriteSampleV4(true, 47);
  std::vector<std::byte> first = hopi::testing::ReadFileBytes(path_);
  StoreWriteOptions options;
  options.format_version = kFormatVersionV4;
  options.compress.target_block_bytes = 256;
  options.compress.cluster_split_bytes = 64;
  ASSERT_TRUE(store.WriteToFile(path_, options).ok());
  EXPECT_EQ(hopi::testing::ReadFileBytes(path_), first);
}

TEST_F(StorageFormatV4Test, BufferedReaderRoundTripsV4) {
  LinLoutStore original = WriteSampleV4(true, 59);
  auto loaded = LinLoutStore::ReadFromFile(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->NumEntries(), original.NumEntries());
  EXPECT_TRUE(loaded->with_distance());
  twohop::TwoHopCover cover = SampleCover(true, 59);
  for (NodeId u = 0; u < cover.NumNodes(); ++u) {
    for (NodeId v = 0; v < cover.NumNodes(); ++v) {
      EXPECT_EQ(loaded->TestConnection(u, v), original.TestConnection(u, v));
      EXPECT_EQ(loaded->MinDistance(u, v), original.MinDistance(u, v));
    }
  }
}

TEST_F(StorageFormatV4Test, MappedV4DecodesBitIdenticalLabels) {
  LinLoutStore original = WriteSampleV4(true, 61);
  auto mapped = MappedLinLoutStore::Open(path_);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  EXPECT_TRUE(mapped->compressed());
  EXPECT_EQ(mapped->format_version(), kFormatVersionV4);
  EXPECT_EQ(mapped->NumEntries(), original.NumEntries());
  ASSERT_TRUE(mapped->VerifyBlocks().ok());
  twohop::TwoHopCover cover = SampleCover(true, 61);
  std::vector<twohop::LabelEntry> label;
  for (NodeId u = 0; u < cover.NumNodes(); ++u) {
    original.LinLabel(u, &label);
    auto lin = mapped->DecodeLinRow(u);
    ASSERT_TRUE(lin.ok()) << lin.status();
    EXPECT_EQ(std::vector<twohop::LabelEntry>(lin->entries.begin(),
                                              lin->entries.end()),
              label)
        << "LIN " << u;
    original.LoutLabel(u, &label);
    auto lout = mapped->DecodeLoutRow(u);
    ASSERT_TRUE(lout.ok()) << lout.status();
    EXPECT_EQ(std::vector<twohop::LabelEntry>(lout->entries.begin(),
                                              lout->entries.end()),
              label)
        << "LOUT " << u;
  }
  // Raw spans are a v3 affordance; a compressed store has none.
  EXPECT_TRUE(mapped->LinSpan(0).empty());
  // Out-of-range nodes decode to an engaged empty row.
  auto absent = mapped->DecodeLinRow(1u << 30);
  ASSERT_TRUE(absent.ok());
  EXPECT_TRUE(absent->entries.empty());
}

TEST_F(StorageFormatV4Test, MappedV4AnswersEveryQueryLikeV3) {
  LinLoutStore original = WriteSampleV4(true, 67);
  auto mapped = MappedLinLoutStore::Open(path_);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  twohop::TwoHopCover cover = SampleCover(true, 67);
  for (NodeId u = 0; u < cover.NumNodes(); ++u) {
    for (NodeId v = 0; v < cover.NumNodes(); ++v) {
      EXPECT_EQ(mapped->TestConnection(u, v), original.TestConnection(u, v))
          << u << "->" << v;
      EXPECT_EQ(mapped->MinDistance(u, v), original.MinDistance(u, v))
          << u << "->" << v;
    }
    EXPECT_EQ(mapped->Descendants(u), original.Descendants(u)) << u;
    EXPECT_EQ(mapped->Ancestors(u), original.Ancestors(u)) << u;
  }
}

TEST_F(StorageFormatV4Test, CompressionBeatsRawOnRedundantCovers) {
  // The paper-shaped workload: a sizable DAG whose LIN/LOUT rows share
  // long prefixes. v4 must cut bytes/entry by well over the 2x the
  // acceptance bar asks for (the bench reports the exact ratio).
  Digraph g = hopi::testing::RandomDag(400, 3.0, 97);
  twohop::CoverBuildOptions cover_options;
  cover_options.with_distance = true;
  auto cover = twohop::BuildCover(g, cover_options);
  ASSERT_TRUE(cover.ok());
  LinLoutStore store = LinLoutStore::FromCover(*cover, true);
  ASSERT_TRUE(store.WriteToFile(path_).ok());  // v3
  uint64_t v3_bytes = hopi::testing::ReadFileBytes(path_).size();
  StoreWriteOptions v4;
  v4.format_version = kFormatVersionV4;
  ASSERT_TRUE(store.WriteToFile(path_, v4).ok());
  uint64_t v4_bytes = hopi::testing::ReadFileBytes(path_).size();
  EXPECT_LE(v4_bytes * 2, v3_bytes)
      << "v3 " << v3_bytes << "B vs v4 " << v4_bytes << "B for "
      << store.NumEntries() << " entries";
  auto mapped = MappedLinLoutStore::Open(path_);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  EXPECT_EQ(mapped->NumEntries(), store.NumEntries());
}

TEST_F(StorageFormatV4Test, TruncationAtEveryV4BoundaryIsCorruption) {
  WriteSampleV4(true, 43);
  auto info = InspectFile(path_);
  ASSERT_TRUE(info.ok()) << info.status();
  std::vector<uint64_t> boundaries = {0, 4, kHeaderBytesV4,
                                      info->file_bytes - 4};
  for (const SectionRange& s : info->sections) {
    boundaries.push_back(s.offset);
    boundaries.push_back(s.offset + s.length);
  }
  std::vector<std::byte> image = hopi::testing::ReadFileBytes(path_);
  for (uint64_t cut : boundaries) {
    ASSERT_LT(cut, info->file_bytes);
    FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    if (cut > 0) {
      ASSERT_EQ(std::fwrite(image.data(), 1, cut, f), cut);
    }
    std::fclose(f);
    auto buffered = LinLoutStore::ReadFromFile(path_);
    EXPECT_TRUE(buffered.status().IsCorruption())
        << "buffered, cut at " << cut << ": " << buffered.status();
    auto mapped = MappedLinLoutStore::Open(path_);
    EXPECT_TRUE(mapped.status().IsCorruption())
        << "mapped, cut at " << cut << ": " << mapped.status();
    // Even the lazy open must catch a torn file: everything before the
    // blobs is covered by the metadata checksum, the rest by sizes.
    auto lazy =
        MappedLinLoutStore::Open(path_, {.verify_file_checksum = false});
    EXPECT_FALSE(lazy.ok()) << "lazy, cut at " << cut;
  }
}

TEST_F(StorageFormatV4Test, LazyOpenDefersBlobChecksToDecodeTime) {
  WriteSampleV4(true, 53);
  auto pristine = MappedLinLoutStore::Open(path_);
  ASSERT_TRUE(pristine.ok());
  // Flip one bit inside the LIN blob (the payload only the per-block
  // CRCs cover).
  auto info = InspectFile(path_);
  ASSERT_TRUE(info.ok());
  const SectionRange& blob = info->sections[kV4LinBlob];
  ASSERT_GT(blob.length, 0u);
  FILE* f = std::fopen(path_.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, static_cast<long>(blob.offset + blob.length / 2), SEEK_SET);
  int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  std::fseek(f, static_cast<long>(blob.offset + blob.length / 2), SEEK_SET);
  std::fputc(c ^ 0x08, f);
  std::fclose(f);
  // Verified open refuses outright (whole-file checksum)...
  auto verified = MappedLinLoutStore::Open(path_);
  EXPECT_TRUE(verified.status().IsCorruption()) << verified.status();
  // ...the lazy open succeeds (metadata is intact) and the damage
  // surfaces as Corruption at decode time — never a crash, and probes
  // that touch the bad block degrade to "unreachable".
  auto lazy = MappedLinLoutStore::Open(path_, {.verify_file_checksum = false});
  ASSERT_TRUE(lazy.ok()) << lazy.status();
  EXPECT_TRUE(lazy->VerifyBlocks().IsCorruption());
  for (NodeId u = 0; u < 40; ++u) {
    for (NodeId v = 0; v < 40; v += 3) {
      lazy->TestConnection(u, v);  // must not crash
    }
  }
  // Metadata damage, by contrast, fails even the lazy open.
  std::vector<std::byte> image = hopi::testing::ReadFileBytes(path_);
  const SectionRange& dir = info->sections[kV4LinDir];
  image[dir.offset] ^= std::byte{0x01};
  FILE* w = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(w, nullptr);
  ASSERT_EQ(std::fwrite(image.data(), 1, image.size(), w), image.size());
  std::fclose(w);
  auto lazy2 = MappedLinLoutStore::Open(path_, {.verify_file_checksum = false});
  EXPECT_TRUE(lazy2.status().IsCorruption()) << lazy2.status();
}

TEST_F(StorageFormatV4Test, EmptyStoreRoundTripsAsV4) {
  LinLoutStore store = LinLoutStore::FromCover(twohop::TwoHopCover(5), false);
  StoreWriteOptions options;
  options.format_version = kFormatVersionV4;
  ASSERT_TRUE(store.WriteToFile(path_, options).ok());
  auto mapped = MappedLinLoutStore::Open(path_);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  EXPECT_TRUE(mapped->compressed());
  EXPECT_EQ(mapped->NumEntries(), 0u);
  EXPECT_FALSE(mapped->TestConnection(0, 1));
  EXPECT_TRUE(mapped->TestConnection(2, 2));  // reflexive
  EXPECT_TRUE(mapped->Descendants(3).empty());
  auto row = mapped->DecodeLinRow(0);
  ASSERT_TRUE(row.ok());
  EXPECT_TRUE(row->entries.empty());
}

TEST_F(StorageFormatV4Test, LegacyV2FileMigratesStraightToV4) {
  twohop::TwoHopCover cover = SampleCover(true, 71);
  LinLoutStore store = LinLoutStore::FromCover(cover, true);
  v2::WriteLegacyFile(store, cover.NumNodes(), path_);
  auto loaded = LinLoutStore::ReadFromFile(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  StoreWriteOptions options;
  options.format_version = kFormatVersionV4;
  ASSERT_TRUE(loaded->WriteToFile(path_, options).ok());
  auto mapped = MappedLinLoutStore::Open(path_);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  for (NodeId u = 0; u < cover.NumNodes(); ++u) {
    for (NodeId v = 0; v < cover.NumNodes(); v += 3) {
      EXPECT_EQ(mapped->TestConnection(u, v), store.TestConnection(u, v));
      EXPECT_EQ(mapped->MinDistance(u, v), store.MinDistance(u, v));
    }
  }
}

TEST(LinLoutStoreTest, EndToEndWithBuiltIndex) {
  collection::Collection c = hopi::testing::SmallDblp(30, 21);
  auto index = BuildIndex(&c);
  ASSERT_TRUE(index.ok());
  LinLoutStore store = LinLoutStore::FromCover(index->cover(), false);
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(c.NumElements()));
    NodeId v = static_cast<NodeId>(rng.NextBounded(c.NumElements()));
    EXPECT_EQ(store.TestConnection(u, v), index->IsReachable(u, v));
  }
}

}  // namespace
}  // namespace hopi::storage
