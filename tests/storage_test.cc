#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "hopi/build.h"
#include "storage/format.h"
#include "storage/linlout.h"
#include "storage/mapped_linlout.h"
#include "test_util.h"
#include "twohop/builder.h"

namespace hopi::storage {
namespace {

twohop::TwoHopCover SampleCover(bool with_distance, uint64_t seed = 5) {
  Digraph g = hopi::testing::RandomDag(40, 2.0, seed);
  twohop::CoverBuildOptions options;
  options.with_distance = with_distance;
  auto cover = twohop::BuildCover(g, options);
  EXPECT_TRUE(cover.ok());
  return std::move(cover).value();
}

TEST(LinLoutStoreTest, ConnectionTestMatchesCover) {
  twohop::TwoHopCover cover = SampleCover(false);
  LinLoutStore store = LinLoutStore::FromCover(cover, false);
  for (NodeId u = 0; u < cover.NumNodes(); ++u) {
    for (NodeId v = 0; v < cover.NumNodes(); ++v) {
      EXPECT_EQ(store.TestConnection(u, v), cover.IsConnected(u, v))
          << u << "->" << v;
    }
  }
}

TEST(LinLoutStoreTest, MinDistanceMatchesCover) {
  twohop::TwoHopCover cover = SampleCover(true);
  LinLoutStore store = LinLoutStore::FromCover(cover, true);
  for (NodeId u = 0; u < cover.NumNodes(); ++u) {
    for (NodeId v = 0; v < cover.NumNodes(); ++v) {
      EXPECT_EQ(store.MinDistance(u, v), cover.Distance(u, v))
          << u << "->" << v;
    }
  }
}

TEST(LinLoutStoreTest, DescendantsAncestorsMatchGraph) {
  Digraph g = hopi::testing::RandomDag(35, 2.0, 9);
  auto cover = twohop::BuildCover(g);
  ASSERT_TRUE(cover.ok());
  LinLoutStore store = LinLoutStore::FromCover(*cover, false);
  twohop::IndexedCover indexed(*cover);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    EXPECT_EQ(store.Descendants(u), indexed.Descendants(u));
    EXPECT_EQ(store.Ancestors(u), indexed.Ancestors(u));
  }
}

TEST(LinLoutStoreTest, EntryAccounting) {
  twohop::TwoHopCover cover = SampleCover(false);
  LinLoutStore store = LinLoutStore::FromCover(cover, false);
  EXPECT_EQ(store.NumEntries(), cover.Size());
  // 2 ints per forward row, doubled by the backward index.
  EXPECT_EQ(store.StorageIntegers(), cover.Size() * 4);
  LinLoutStore dstore = LinLoutStore::FromCover(cover, true);
  EXPECT_EQ(dstore.StorageIntegers(), cover.Size() * 6);
}

TEST(LinLoutStoreTest, ScansAreSortedAndComplete) {
  twohop::TwoHopCover cover = SampleCover(false, 11);
  LinLoutStore store = LinLoutStore::FromCover(cover, false);
  for (NodeId u = 0; u < cover.NumNodes(); ++u) {
    auto lin = store.ScanLin(u);
    EXPECT_EQ(lin.size(), cover.In(u).size());
    for (size_t i = 1; i < lin.size(); ++i) {
      EXPECT_LT(lin[i - 1].center, lin[i].center);
    }
    auto lout = store.ScanLout(u);
    EXPECT_EQ(lout.size(), cover.Out(u).size());
  }
}

TEST(LinLoutStoreTest, LabelExportMatchesCover) {
  twohop::TwoHopCover cover = SampleCover(true, 41);
  LinLoutStore store = LinLoutStore::FromCover(cover, true);
  std::vector<twohop::LabelEntry> label;
  for (NodeId u = 0; u < cover.NumNodes(); ++u) {
    store.LinLabel(u, &label);
    EXPECT_EQ(label, cover.In(u));
    store.LoutLabel(u, &label);
    EXPECT_EQ(label, cover.Out(u));
  }
}

TEST(LinLoutStoreTest, RoundTripThroughCover) {
  twohop::TwoHopCover cover = SampleCover(true, 13);
  LinLoutStore store = LinLoutStore::FromCover(cover, true);
  twohop::TwoHopCover back = store.ToCover(cover.NumNodes());
  EXPECT_EQ(back.Size(), cover.Size());
  for (NodeId u = 0; u < cover.NumNodes(); ++u) {
    EXPECT_EQ(back.In(u).size(), cover.In(u).size());
    EXPECT_EQ(back.Out(u).size(), cover.Out(u).size());
  }
}

class LinLoutPersistenceTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "hopi_store_test.bin";
};

TEST_F(LinLoutPersistenceTest, WriteReadRoundTrip) {
  twohop::TwoHopCover cover = SampleCover(true, 17);
  LinLoutStore store = LinLoutStore::FromCover(cover, true);
  ASSERT_TRUE(store.WriteToFile(path_).ok());
  auto loaded = LinLoutStore::ReadFromFile(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->NumEntries(), store.NumEntries());
  EXPECT_TRUE(loaded->with_distance());
  for (NodeId u = 0; u < cover.NumNodes(); ++u) {
    for (NodeId v = 0; v < cover.NumNodes(); v += 3) {
      EXPECT_EQ(loaded->TestConnection(u, v), store.TestConnection(u, v));
      EXPECT_EQ(loaded->MinDistance(u, v), store.MinDistance(u, v));
    }
  }
}

TEST_F(LinLoutPersistenceTest, MissingFileIsIOError) {
  auto loaded = LinLoutStore::ReadFromFile("/nonexistent/dir/f.bin");
  EXPECT_TRUE(loaded.status().IsIOError());
}

TEST_F(LinLoutPersistenceTest, BadMagicIsCorruption) {
  FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("NOTHOPI!xxxxxxxxxxxxxxxxxxxxxxxxxxx", f);
  std::fclose(f);
  auto loaded = LinLoutStore::ReadFromFile(path_);
  EXPECT_TRUE(loaded.status().IsCorruption());
}

TEST_F(LinLoutPersistenceTest, TruncatedHeaderDetected) {
  FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("HOPI", f);  // magic only, no version/flags/counts
  std::fclose(f);
  auto loaded = LinLoutStore::ReadFromFile(path_);
  EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status();
}

TEST_F(LinLoutPersistenceTest, StaleFormatVersionIsUnsupported) {
  twohop::TwoHopCover cover = SampleCover(false, 23);
  LinLoutStore store = LinLoutStore::FromCover(cover, false);
  ASSERT_TRUE(store.WriteToFile(path_).ok());
  // Patch the version field (bytes 4..8) to a future version.
  FILE* f = std::fopen(path_.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  uint32_t future_version = 99;
  std::fseek(f, 4, SEEK_SET);
  ASSERT_EQ(std::fwrite(&future_version, sizeof(future_version), 1, f), 1u);
  std::fclose(f);
  auto loaded = LinLoutStore::ReadFromFile(path_);
  EXPECT_TRUE(loaded.status().IsUnsupported()) << loaded.status();
  EXPECT_NE(loaded.status().message().find("99"), std::string::npos);
}

TEST_F(LinLoutPersistenceTest, OldV1LayoutReportsVersionError) {
  // A v1 file started with the 8-byte magic "HOPILL01": the first four
  // bytes match the current magic and the next four parse as a bogus
  // version, so stale files fail clearly instead of being misread.
  FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("HOPILL01", f);
  uint64_t v1_header[3] = {0, 0, 0};
  ASSERT_EQ(std::fwrite(v1_header, sizeof(v1_header), 1, f), 1u);
  std::fclose(f);
  auto loaded = LinLoutStore::ReadFromFile(path_);
  EXPECT_TRUE(loaded.status().IsUnsupported()) << loaded.status();
}

TEST_F(LinLoutPersistenceTest, UnknownHeaderFlagsAreCorruption) {
  twohop::TwoHopCover cover = SampleCover(false, 29);
  LinLoutStore store = LinLoutStore::FromCover(cover, false);
  ASSERT_TRUE(store.WriteToFile(path_).ok());
  // Set a reserved flag bit (bytes 8..12 hold the flags).
  FILE* f = std::fopen(path_.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  uint32_t bogus_flags = 1u << 7;
  std::fseek(f, 8, SEEK_SET);
  ASSERT_EQ(std::fwrite(&bogus_flags, sizeof(bogus_flags), 1, f), 1u);
  std::fclose(f);
  auto loaded = LinLoutStore::ReadFromFile(path_);
  EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status();
}

TEST_F(LinLoutPersistenceTest, BogusRowCountsAreCorruption) {
  twohop::TwoHopCover cover = SampleCover(false, 37);
  LinLoutStore store = LinLoutStore::FromCover(cover, false);
  ASSERT_TRUE(store.WriteToFile(path_).ok());
  // Patch the LIN row count (bytes 12..20) to an absurd value: the
  // reader must fail with Corruption, not attempt the allocation.
  FILE* f = std::fopen(path_.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  uint64_t bogus_count = UINT64_MAX / 2;
  std::fseek(f, 12, SEEK_SET);
  ASSERT_EQ(std::fwrite(&bogus_count, sizeof(bogus_count), 1, f), 1u);
  std::fclose(f);
  auto loaded = LinLoutStore::ReadFromFile(path_);
  EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status();
}

TEST_F(LinLoutPersistenceTest, DistanceFlagRoundTrips) {
  twohop::TwoHopCover cover = SampleCover(true, 31);
  for (bool with_distance : {false, true}) {
    LinLoutStore store = LinLoutStore::FromCover(cover, with_distance);
    ASSERT_TRUE(store.WriteToFile(path_).ok());
    auto loaded = LinLoutStore::ReadFromFile(path_);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    EXPECT_EQ(loaded->with_distance(), with_distance);
  }
}

TEST_F(LinLoutPersistenceTest, TruncatedRowsDetected) {
  twohop::TwoHopCover cover = SampleCover(false, 19);
  LinLoutStore store = LinLoutStore::FromCover(cover, false);
  ASSERT_TRUE(store.WriteToFile(path_).ok());
  // Chop the file.
  FILE* f = std::fopen(path_.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  ASSERT_TRUE(::truncate(path_.c_str(), size - 8) == 0);
  auto loaded = LinLoutStore::ReadFromFile(path_);
  EXPECT_TRUE(loaded.status().IsCorruption());
}

TEST(LinLoutStoreTest, EmptyStoreAnswersNothing) {
  LinLoutStore store = LinLoutStore::FromCover(twohop::TwoHopCover(5), false);
  EXPECT_EQ(store.NumEntries(), 0u);
  EXPECT_FALSE(store.TestConnection(0, 1));
  EXPECT_TRUE(store.TestConnection(2, 2));  // reflexive
  EXPECT_TRUE(store.Descendants(3).empty());
  EXPECT_TRUE(store.Ancestors(3).empty());
  EXPECT_EQ(store.MinDistance(4, 4), std::optional<uint32_t>(0));
}

TEST(LinLoutStoreTest, PlainStoreDistancesAreZero) {
  // A plain store (no DIST column) still answers MinDistance: connected
  // pairs report 0 — the paper's plain index simply cannot rank.
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  auto cover = twohop::BuildCover(g);
  ASSERT_TRUE(cover.ok());
  LinLoutStore store = LinLoutStore::FromCover(*cover, false);
  auto d = store.MinDistance(0, 2);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, 0u);
}

// ---- crash safety and the v3 on-disk format ----

class StorageFormatTest : public ::testing::Test {
 protected:
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }

  /// Fresh store written to path_; returns the in-memory original.
  LinLoutStore WriteSample(bool with_distance, uint64_t seed) {
    twohop::TwoHopCover cover = SampleCover(with_distance, seed);
    LinLoutStore store = LinLoutStore::FromCover(cover, with_distance);
    EXPECT_TRUE(store.WriteToFile(path_).ok());
    return store;
  }

  std::string path_ = ::testing::TempDir() + "hopi_format_test.bin";
};

TEST_F(StorageFormatTest, AtomicWriterLeavesNoTempFile) {
  WriteSample(true, 43);
  FILE* tmp = std::fopen((path_ + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) std::fclose(tmp);
}

TEST_F(StorageFormatTest, RewriteReplacesExistingFileAtomically) {
  WriteSample(false, 43);
  LinLoutStore second = WriteSample(true, 47);  // overwrite in place
  auto loaded = LinLoutStore::ReadFromFile(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->with_distance());
  EXPECT_EQ(loaded->NumEntries(), second.NumEntries());
}

TEST_F(StorageFormatTest, FailedWriteReportsIOErrorAndWritesNothing) {
  twohop::TwoHopCover cover = SampleCover(false, 43);
  LinLoutStore store = LinLoutStore::FromCover(cover, false);
  Status s = store.WriteToFile("/nonexistent/dir/f.bin");
  EXPECT_TRUE(s.IsIOError()) << s;
}

TEST_F(StorageFormatTest, InspectReportsVersionAndOrderedSections) {
  WriteSample(true, 43);
  auto info = InspectFile(path_);
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->version, kFormatVersion);
  EXPECT_EQ(info->flags, kFlagDistance);
  uint64_t prev_end = kHeaderBytes;
  for (size_t s = 0; s < kNumSections; ++s) {
    EXPECT_GE(info->sections[s].offset, prev_end) << "section " << s;
    EXPECT_EQ(info->sections[s].offset % 8, 0u) << "section " << s;
    prev_end = info->sections[s].offset + info->sections[s].length;
  }
  EXPECT_LE(prev_end, info->file_bytes - kTrailerBytes);
}

TEST_F(StorageFormatTest, TruncationAtEverySectionBoundaryIsCorruption) {
  WriteSample(true, 43);
  auto info = InspectFile(path_);
  ASSERT_TRUE(info.ok()) << info.status();
  // Every boundary of the file: header end, each section's begin and
  // end, and mid-trailer. A torn write stopping at any of them must
  // read as Corruption from both readers — never a crash or garbage.
  std::vector<uint64_t> boundaries = {0, 4, kHeaderBytes,
                                      info->file_bytes - 4};
  for (const SectionRange& s : info->sections) {
    boundaries.push_back(s.offset);
    boundaries.push_back(s.offset + s.length);
  }
  std::vector<std::byte> image(info->file_bytes);
  {
    FILE* f = std::fopen(path_.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fread(image.data(), 1, image.size(), f), image.size());
    std::fclose(f);
  }
  for (uint64_t cut : boundaries) {
    ASSERT_LT(cut, info->file_bytes);
    FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    if (cut > 0) {
      ASSERT_EQ(std::fwrite(image.data(), 1, cut, f), cut);
    }
    std::fclose(f);
    auto buffered = LinLoutStore::ReadFromFile(path_);
    EXPECT_TRUE(buffered.status().IsCorruption())
        << "buffered, cut at " << cut << ": " << buffered.status();
    auto mapped = MappedLinLoutStore::Open(path_);
    EXPECT_TRUE(mapped.status().IsCorruption())
        << "mapped, cut at " << cut << ": " << mapped.status();
  }
}

TEST_F(StorageFormatTest, BitFlipAnywhereIsCorruption) {
  WriteSample(false, 53);
  auto info = InspectFile(path_);
  ASSERT_TRUE(info.ok());
  // Flip one bit in the middle of the row data: only the trailing
  // checksum can catch this (the sections still parse).
  uint64_t victim = info->sections[kLinRows].offset + 5;
  FILE* f = std::fopen(path_.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, static_cast<long>(victim), SEEK_SET);
  int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  std::fseek(f, static_cast<long>(victim), SEEK_SET);
  std::fputc(c ^ 0x10, f);
  std::fclose(f);
  auto buffered = LinLoutStore::ReadFromFile(path_);
  EXPECT_TRUE(buffered.status().IsCorruption()) << buffered.status();
  auto mapped = MappedLinLoutStore::Open(path_);
  EXPECT_TRUE(mapped.status().IsCorruption()) << mapped.status();
}

// ---- the mmap-backed reader ----

class MappedStoreTest : public StorageFormatTest {};

TEST_F(MappedStoreTest, MappedAndBufferedReadersAgreeEverywhere) {
  LinLoutStore original = WriteSample(true, 59);
  auto loaded = LinLoutStore::ReadFromFile(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  auto mapped = MappedLinLoutStore::Open(path_);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  EXPECT_TRUE(mapped->mapped());  // POSIX CI: the real mmap path
  EXPECT_EQ(mapped->NumEntries(), original.NumEntries());
  EXPECT_EQ(mapped->StorageIntegers(), original.StorageIntegers());
  EXPECT_TRUE(mapped->with_distance());
  twohop::TwoHopCover cover = SampleCover(true, 59);
  for (NodeId u = 0; u < cover.NumNodes(); ++u) {
    for (NodeId v = 0; v < cover.NumNodes(); ++v) {
      EXPECT_EQ(mapped->TestConnection(u, v), loaded->TestConnection(u, v))
          << u << "->" << v;
      EXPECT_EQ(mapped->MinDistance(u, v), loaded->MinDistance(u, v))
          << u << "->" << v;
    }
    EXPECT_EQ(mapped->Descendants(u), loaded->Descendants(u)) << u;
    EXPECT_EQ(mapped->Ancestors(u), loaded->Ancestors(u)) << u;
  }
}

TEST_F(MappedStoreTest, SpansMatchMaterializedLabels) {
  LinLoutStore original = WriteSample(true, 61);
  auto mapped = MappedLinLoutStore::Open(path_);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  twohop::TwoHopCover cover = SampleCover(true, 61);
  std::vector<twohop::LabelEntry> label;
  for (NodeId u = 0; u < cover.NumNodes(); ++u) {
    original.LinLabel(u, &label);
    auto lin = mapped->LinSpan(u);
    EXPECT_EQ(std::vector<twohop::LabelEntry>(lin.begin(), lin.end()), label);
    original.LoutLabel(u, &label);
    auto lout = mapped->LoutSpan(u);
    EXPECT_EQ(std::vector<twohop::LabelEntry>(lout.begin(), lout.end()),
              label);
  }
  EXPECT_TRUE(mapped->LinSpan(1u << 30).empty());  // out-of-range node
}

TEST_F(MappedStoreTest, BufferedFallbackAnswersIdentically) {
  WriteSample(true, 67);
  auto mapped = MappedLinLoutStore::Open(path_);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  auto fallback = MappedLinLoutStore::Open(path_, {.prefer_mmap = false});
  ASSERT_TRUE(fallback.ok()) << fallback.status();
  EXPECT_FALSE(fallback->mapped());
  twohop::TwoHopCover cover = SampleCover(true, 67);
  for (NodeId u = 0; u < cover.NumNodes(); ++u) {
    for (NodeId v = 0; v < cover.NumNodes(); v += 2) {
      EXPECT_EQ(fallback->TestConnection(u, v), mapped->TestConnection(u, v));
      EXPECT_EQ(fallback->MinDistance(u, v), mapped->MinDistance(u, v));
    }
    EXPECT_EQ(fallback->Descendants(u), mapped->Descendants(u));
  }
}

TEST_F(MappedStoreTest, MissingFileIsIOError) {
  auto mapped = MappedLinLoutStore::Open("/nonexistent/dir/f.bin");
  EXPECT_TRUE(mapped.status().IsIOError()) << mapped.status();
}

TEST_F(MappedStoreTest, EmptyStoreRoundTrips) {
  LinLoutStore store = LinLoutStore::FromCover(twohop::TwoHopCover(5), false);
  ASSERT_TRUE(store.WriteToFile(path_).ok());
  auto mapped = MappedLinLoutStore::Open(path_);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  EXPECT_EQ(mapped->NumEntries(), 0u);
  EXPECT_FALSE(mapped->TestConnection(0, 1));
  EXPECT_TRUE(mapped->TestConnection(2, 2));  // reflexive
  EXPECT_TRUE(mapped->Descendants(3).empty());
}

// ---- v2 migration path ----

namespace v2 {

/// Serializes `store` in the legacy v2 layout (header + bare row
/// triplets, no section table, no checksum) so the migration tests can
/// exercise files written by the previous format revision.
void WriteLegacyFile(const LinLoutStore& store, size_t num_nodes,
                     const std::string& path) {
  std::vector<TableRow> lin, lout;
  for (NodeId u = 0; u < num_nodes; ++u) {
    for (const TableRow& r : store.ScanLin(u)) lin.push_back(r);
    for (const TableRow& r : store.ScanLout(u)) lout.push_back(r);
  }
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  uint32_t version = kLegacyFormatVersion;
  uint32_t flags = store.with_distance() ? kFlagDistance : 0;
  uint64_t counts[2] = {lin.size(), lout.size()};
  ASSERT_EQ(std::fwrite(kMagic, sizeof(kMagic), 1, f), 1u);
  ASSERT_EQ(std::fwrite(&version, sizeof(version), 1, f), 1u);
  ASSERT_EQ(std::fwrite(&flags, sizeof(flags), 1, f), 1u);
  ASSERT_EQ(std::fwrite(counts, sizeof(counts), 1, f), 1u);
  for (const std::vector<TableRow>* run : {&lin, &lout}) {
    for (const TableRow& r : *run) {
      uint32_t buf[3] = {r.id, r.center, r.dist};
      ASSERT_EQ(std::fwrite(buf, sizeof(buf), 1, f), 1u);
    }
  }
  std::fclose(f);
}

}  // namespace v2

TEST_F(StorageFormatTest, LegacyV2FileReadsAndMigratesToV3) {
  twohop::TwoHopCover cover = SampleCover(true, 71);
  LinLoutStore store = LinLoutStore::FromCover(cover, true);
  v2::WriteLegacyFile(store, cover.NumNodes(), path_);
  auto info = InspectFile(path_);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->version, kLegacyFormatVersion);
  // The buffered reader accepts v2...
  auto loaded = LinLoutStore::ReadFromFile(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->NumEntries(), store.NumEntries());
  EXPECT_TRUE(loaded->with_distance());
  // ...the mapped reader refuses it with a pointer to the migration...
  auto mapped = MappedLinLoutStore::Open(path_);
  EXPECT_TRUE(mapped.status().IsUnsupported()) << mapped.status();
  EXPECT_NE(mapped.status().message().find("migrate"), std::string::npos);
  // ...and writing the loaded store back produces a v3 file that the
  // mapped reader serves with identical answers.
  ASSERT_TRUE(loaded->WriteToFile(path_).ok());
  auto migrated_info = InspectFile(path_);
  ASSERT_TRUE(migrated_info.ok());
  EXPECT_EQ(migrated_info->version, kFormatVersion);
  auto migrated = MappedLinLoutStore::Open(path_);
  ASSERT_TRUE(migrated.ok()) << migrated.status();
  for (NodeId u = 0; u < cover.NumNodes(); ++u) {
    for (NodeId v = 0; v < cover.NumNodes(); v += 3) {
      EXPECT_EQ(migrated->TestConnection(u, v), store.TestConnection(u, v));
      EXPECT_EQ(migrated->MinDistance(u, v), store.MinDistance(u, v));
    }
  }
}

TEST_F(StorageFormatTest, DuplicateRowsInLegacyV2FileAreCorruption) {
  // A v2 file with duplicate (id, center) rows must be rejected at
  // read time: if it loaded, writing it back would produce a v3 file
  // that the strict directory validation refuses — a migration that
  // manufactures Corruption out of a "readable" file.
  FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  uint32_t version = kLegacyFormatVersion;
  uint32_t flags = 0;
  uint64_t counts[2] = {2, 0};
  ASSERT_EQ(std::fwrite(kMagic, sizeof(kMagic), 1, f), 1u);
  ASSERT_EQ(std::fwrite(&version, sizeof(version), 1, f), 1u);
  ASSERT_EQ(std::fwrite(&flags, sizeof(flags), 1, f), 1u);
  ASSERT_EQ(std::fwrite(counts, sizeof(counts), 1, f), 1u);
  uint32_t row[3] = {1, 2, 0};
  ASSERT_EQ(std::fwrite(row, sizeof(row), 1, f), 1u);
  ASSERT_EQ(std::fwrite(row, sizeof(row), 1, f), 1u);  // exact duplicate
  std::fclose(f);
  auto loaded = LinLoutStore::ReadFromFile(path_);
  EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status();
}

TEST_F(StorageFormatTest, TruncatedLegacyV2FileIsCorruption) {
  twohop::TwoHopCover cover = SampleCover(false, 73);
  LinLoutStore store = LinLoutStore::FromCover(cover, false);
  v2::WriteLegacyFile(store, cover.NumNodes(), path_);
  FILE* f = std::fopen(path_.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(::truncate(path_.c_str(), size - 8), 0);
  auto loaded = LinLoutStore::ReadFromFile(path_);
  EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status();
}

TEST(LinLoutStoreTest, EndToEndWithBuiltIndex) {
  collection::Collection c = hopi::testing::SmallDblp(30, 21);
  auto index = BuildIndex(&c);
  ASSERT_TRUE(index.ok());
  LinLoutStore store = LinLoutStore::FromCover(index->cover(), false);
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(c.NumElements()));
    NodeId v = static_cast<NodeId>(rng.NextBounded(c.NumElements()));
    EXPECT_EQ(store.TestConnection(u, v), index->IsReachable(u, v));
  }
}

}  // namespace
}  // namespace hopi::storage
