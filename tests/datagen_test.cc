#include <gtest/gtest.h>

#include "datagen/dblp.h"
#include "datagen/inex.h"
#include "datagen/words.h"
#include "datagen/xmark.h"

namespace hopi::datagen {
namespace {

TEST(DblpGeneratorTest, ShapeMatchesPaperRatios) {
  collection::Collection c;
  DblpConfig config;
  config.num_docs = 500;
  config.seed = 1;
  auto report = GenerateDblpCollection(config, &c);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(c.NumLiveDocuments(), 500u);
  // Paper: ~27 elements per doc, ~4 links per doc.
  double els_per_doc = static_cast<double>(c.NumElements()) / 500.0;
  EXPECT_GT(els_per_doc, 15.0);
  EXPECT_LT(els_per_doc, 45.0);
  double links_per_doc = static_cast<double>(c.NumInterLinks()) / 500.0;
  EXPECT_GT(links_per_doc, 1.5);
  EXPECT_LT(links_per_doc, 7.0);
}

TEST(DblpGeneratorTest, Deterministic) {
  DblpConfig config;
  config.num_docs = 50;
  config.seed = 9;
  collection::Collection a, b;
  ASSERT_TRUE(GenerateDblpCollection(config, &a).ok());
  ASSERT_TRUE(GenerateDblpCollection(config, &b).ok());
  EXPECT_EQ(a.NumElements(), b.NumElements());
  EXPECT_EQ(a.NumInterLinks(), b.NumInterLinks());
  EXPECT_EQ(a.ElementGraph().NumEdges(), b.ElementGraph().NumEdges());
}

TEST(DblpGeneratorTest, PowerLawCitations) {
  collection::Collection c;
  DblpConfig config;
  config.num_docs = 400;
  config.seed = 3;
  ASSERT_TRUE(GenerateDblpCollection(config, &c).ok());
  // Early documents should collect far more in-links than late ones.
  const Digraph& gd = c.DocumentGraph();
  size_t early_in = 0, late_in = 0;
  for (collection::DocId d = 0; d < 40; ++d) early_in += gd.InDegree(d);
  for (collection::DocId d = 360; d < 400; ++d) late_in += gd.InDegree(d);
  EXPECT_GT(early_in, 3 * std::max<size_t>(late_in, 1));
}

TEST(DblpGeneratorTest, NoDanglingReferences) {
  collection::Collection c;
  DblpConfig config;
  config.num_docs = 120;
  config.seed = 5;
  auto report = GenerateDblpCollection(config, &c);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->dangling, 0u);
}

TEST(DblpGeneratorTest, SingleDocumentEdgeCase) {
  collection::Collection c;
  DblpConfig config;
  config.num_docs = 1;
  ASSERT_TRUE(GenerateDblpCollection(config, &c).ok());
  EXPECT_EQ(c.NumLiveDocuments(), 1u);
  EXPECT_EQ(c.NumInterLinks(), 0u);
}

TEST(InexGeneratorTest, LinkFreeAtDocumentLevel) {
  collection::Collection c;
  InexConfig config;
  config.num_docs = 30;
  config.mean_elements_per_doc = 120;
  auto report = GenerateInexCollection(config, &c);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(c.NumInterLinks(), 0u);  // the defining INEX property
  EXPECT_GT(c.NumIntraLinks(), 0u);  // internal cross references exist
  EXPECT_EQ(c.DocumentGraph().NumEdges(), 0u);
}

TEST(InexGeneratorTest, ElementBudgetRoughlyHit) {
  collection::Collection c;
  InexConfig config;
  config.num_docs = 40;
  config.mean_elements_per_doc = 200;
  ASSERT_TRUE(GenerateInexCollection(config, &c).ok());
  double per_doc = static_cast<double>(c.NumElements()) / 40.0;
  EXPECT_GT(per_doc, 60.0);
  EXPECT_LT(per_doc, 400.0);
}

TEST(InexGeneratorTest, TreesAreDeep) {
  collection::Collection c;
  InexConfig config;
  config.num_docs = 5;
  config.mean_elements_per_doc = 150;
  ASSERT_TRUE(GenerateInexCollection(config, &c).ok());
  uint32_t max_depth = 0;
  for (NodeId e = 0; e < c.NumElements(); ++e) {
    max_depth = std::max(max_depth, c.TreeAncestorCount(e));
  }
  EXPECT_GE(max_depth, 5u);  // article > bdy > sec > ss1 > p
}

TEST(XmarkGeneratorTest, CrossDocumentReferences) {
  collection::Collection c;
  XmarkConfig config;
  config.num_items = 60;
  config.num_people = 40;
  config.num_auctions = 50;
  auto report = GenerateXmarkCollection(config, &c);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(c.NumInterLinks(), 0u);
  EXPECT_EQ(report->dangling, 0u);
  // items + people + auctions grouped into documents of 25.
  EXPECT_EQ(c.NumLiveDocuments(), 3u + 2u + 2u);
}

TEST(XmarkGeneratorTest, AuctionsReferenceItemsAndPeople) {
  collection::Collection c;
  XmarkConfig config;
  ASSERT_TRUE(GenerateXmarkCollection(config, &c).ok());
  // Some auction document must link into an item document.
  bool auction_to_item = false;
  for (const collection::Link& l : c.Links()) {
    std::string from = c.DocName(c.DocOf(l.source));
    std::string to = c.DocName(c.DocOf(l.target));
    if (from.rfind("auctions", 0) == 0 && to.rfind("items", 0) == 0) {
      auction_to_item = true;
    }
  }
  EXPECT_TRUE(auction_to_item);
}

TEST(WordsTest, GeneratorsProduceNonEmpty) {
  Rng rng(1);
  EXPECT_FALSE(RandomWord(&rng).empty());
  EXPECT_FALSE(RandomAuthorName(&rng).empty());
  std::string words = RandomWords(&rng, 5);
  EXPECT_EQ(std::count(words.begin(), words.end(), ' '), 4);
}

}  // namespace
}  // namespace hopi::datagen
