// Shared helpers for the HOPI test suite.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "collection/collection.h"
#include "datagen/dblp.h"
#include "graph/digraph.h"
#include "util/rng.h"

namespace hopi::testing {

/// Random DAG: `n` nodes, each node gets edges to ~`avg_out` later nodes.
/// Edges only go forward in id order, so the result is acyclic.
inline Digraph RandomDag(size_t n, double avg_out, uint64_t seed) {
  Rng rng(seed);
  Digraph g(n);
  for (NodeId u = 0; u + 1 < n; ++u) {
    uint64_t out = rng.NextBounded(static_cast<uint64_t>(2 * avg_out) + 1);
    for (uint64_t k = 0; k < out; ++k) {
      NodeId v = static_cast<NodeId>(
          u + 1 + rng.NextBounded(n - u - 1));
      g.AddEdge(u, v);
    }
  }
  return g;
}

/// Random digraph that may contain cycles: `m` uniformly random edges.
inline Digraph RandomDigraph(size_t n, size_t m, uint64_t seed) {
  Rng rng(seed);
  Digraph g(n);
  for (size_t k = 0; k < m; ++k) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(n));
    NodeId v = static_cast<NodeId>(rng.NextBounded(n));
    if (u != v) g.AddEdge(u, v);
  }
  return g;
}

/// Random multi-document collection for the differential harness: `docs`
/// documents, each a random tree of 1 + up-to-2×`mean_extra_elements`
/// elements (tags drawn from a small pool so tag/path queries have
/// matches), plus up to `links` random element-level links in arbitrary
/// directions — the element graph may contain cycles, like real XML
/// collections with back-references. Fully determined by `seed`.
inline collection::Collection RandomCollection(size_t docs,
                                               size_t mean_extra_elements,
                                               size_t links, uint64_t seed) {
  static const char* kTags[] = {"article", "section", "cite",
                                "title",   "author",  "note"};
  Rng rng(seed);
  collection::Collection c;
  for (size_t d = 0; d < docs; ++d) {
    collection::DocId doc = c.AddDocument("doc" + std::to_string(d) + ".xml");
    std::vector<NodeId> nodes{c.AddElement(doc, kTags[0])};
    size_t extra = rng.NextBounded(2 * mean_extra_elements + 1);
    for (size_t i = 0; i < extra; ++i) {
      NodeId parent = nodes[rng.NextBounded(nodes.size())];
      nodes.push_back(
          c.AddElement(doc, kTags[1 + rng.NextBounded(5)], parent));
    }
  }
  size_t added = 0;
  for (size_t attempts = 0; added < links && attempts < 20 * links + 100;
       ++attempts) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(c.NumElements()));
    NodeId v = static_cast<NodeId>(rng.NextBounded(c.NumElements()));
    // Skip self-links and links that would shadow an existing edge (a
    // tree edge or an earlier link): deleting such a link later would
    // tear out the shared graph edge.
    if (u == v || c.ElementGraph().HasEdge(u, v)) continue;
    if (c.AddLink(u, v)) ++added;
  }
  return c;
}

/// All elements belonging to live (non-removed) documents, in id order.
inline std::vector<NodeId> LiveElements(const collection::Collection& c) {
  std::vector<NodeId> live;
  for (collection::DocId d = 0; d < c.NumDocuments(); ++d) {
    if (!c.IsLive(d)) continue;
    live.insert(live.end(), c.ElementsOf(d).begin(), c.ElementsOf(d).end());
  }
  std::sort(live.begin(), live.end());
  return live;
}

/// A small DBLP-like collection for integration tests.
inline collection::Collection SmallDblp(size_t docs = 60, uint64_t seed = 7) {
  collection::Collection c;
  datagen::DblpConfig config;
  config.num_docs = docs;
  config.seed = seed;
  auto report = datagen::GenerateDblpCollection(config, &c);
  EXPECT_TRUE(report.ok()) << report.status();
  return c;
}

/// Whole file as bytes; fails the calling test on IO errors.
inline std::vector<std::byte> ReadFileBytes(const std::string& path) {
  std::vector<std::byte> bytes;
  FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return bytes;
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  bytes.resize(static_cast<size_t>(size));
  if (size > 0) {
    EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  }
  std::fclose(f);
  return bytes;
}

}  // namespace hopi::testing
