// Shared helpers for the HOPI test suite.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "collection/collection.h"
#include "datagen/dblp.h"
#include "graph/digraph.h"
#include "util/rng.h"

namespace hopi::testing {

/// Random DAG: `n` nodes, each node gets edges to ~`avg_out` later nodes.
/// Edges only go forward in id order, so the result is acyclic.
inline Digraph RandomDag(size_t n, double avg_out, uint64_t seed) {
  Rng rng(seed);
  Digraph g(n);
  for (NodeId u = 0; u + 1 < n; ++u) {
    uint64_t out = rng.NextBounded(static_cast<uint64_t>(2 * avg_out) + 1);
    for (uint64_t k = 0; k < out; ++k) {
      NodeId v = static_cast<NodeId>(
          u + 1 + rng.NextBounded(n - u - 1));
      g.AddEdge(u, v);
    }
  }
  return g;
}

/// Random digraph that may contain cycles: `m` uniformly random edges.
inline Digraph RandomDigraph(size_t n, size_t m, uint64_t seed) {
  Rng rng(seed);
  Digraph g(n);
  for (size_t k = 0; k < m; ++k) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(n));
    NodeId v = static_cast<NodeId>(rng.NextBounded(n));
    if (u != v) g.AddEdge(u, v);
  }
  return g;
}

/// A small DBLP-like collection for integration tests.
inline collection::Collection SmallDblp(size_t docs = 60, uint64_t seed = 7) {
  collection::Collection c;
  datagen::DblpConfig config;
  config.num_docs = docs;
  config.seed = seed;
  auto report = datagen::GenerateDblpCollection(config, &c);
  EXPECT_TRUE(report.ok()) << report.status();
  return c;
}

}  // namespace hopi::testing
