#include <gtest/gtest.h>

#include "collection/builder.h"
#include "hopi/build.h"
#include "query/path_query.h"
#include "query/tag_index.h"
#include "test_util.h"
#include "xml/parser.h"

namespace hopi::query {
namespace {

using collection::Collection;

/// A small two-document library: book/chapter/section plus a citation link
/// into a second document.
class QueryFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto d1 = xml::ParseDocument(
        "<book><title>t1</title>"
        "<chapter><section><author>alice</author></section></chapter>"
        "<chapter><cite xlink:href=\"b.xml\"/></chapter></book>",
        "a.xml");
    auto d2 = xml::ParseDocument(
        "<book><chapter><author>bob</author></chapter></book>", "b.xml");
    ASSERT_TRUE(d1.ok() && d2.ok());
    collection::Ingestor ingestor(&c_);
    ASSERT_TRUE(ingestor.Ingest(*d1).ok());
    ASSERT_TRUE(ingestor.Ingest(*d2).ok());
    IndexBuildOptions options;
    options.with_distance = true;
    auto index = BuildIndex(&c_, options);
    ASSERT_TRUE(index.ok());
    index_ = std::make_unique<HopiIndex>(std::move(index).value());
    tags_ = std::make_unique<TagIndex>(c_);
  }

  Collection c_;
  std::unique_ptr<HopiIndex> index_;
  std::unique_ptr<TagIndex> tags_;
};

TEST(PathExpressionTest, ParseForms) {
  auto e1 = PathExpression::Parse("//book//author");
  ASSERT_TRUE(e1.ok());
  EXPECT_EQ(e1->steps,
            (std::vector<PathStep>{{"book", false}, {"author", false}}));
  auto e2 = PathExpression::Parse("book//cite//title");
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ(e2->steps.size(), 3u);
  auto e3 = PathExpression::Parse("//a//*//b");
  ASSERT_TRUE(e3.ok());
  EXPECT_EQ(e3->steps[1].tag, "*");
  EXPECT_EQ(e3->ToString(), "//a//*//b");
}

TEST(PathExpressionTest, ParseApproximateSteps) {
  auto e = PathExpression::Parse("//~book//author");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->steps,
            (std::vector<PathStep>{{"book", true}, {"author", false}}));
  EXPECT_EQ(e->ToString(), "//~book//author");
}

TEST(PathExpressionTest, RejectsBadInput) {
  EXPECT_FALSE(PathExpression::Parse("").ok());
  EXPECT_FALSE(PathExpression::Parse("//").ok());
  EXPECT_FALSE(PathExpression::Parse("//a/b").ok());  // child axis
  EXPECT_FALSE(PathExpression::Parse("//~//a").ok());  // bare tilde
  EXPECT_FALSE(PathExpression::Parse("//~*").ok());    // approx wildcard
}

TEST(TagSimilarityTest, RegistryBasics) {
  TagSimilarity sim;
  sim.AddSynonym("book", "monography", 0.9);
  EXPECT_DOUBLE_EQ(sim.Sim("book", "book"), 1.0);
  EXPECT_DOUBLE_EQ(sim.Sim("book", "monography"), 0.9);
  EXPECT_DOUBLE_EQ(sim.Sim("monography", "book"), 0.9);  // symmetric
  EXPECT_DOUBLE_EQ(sim.Sim("book", "title"), 0.0);
  // Re-registering keeps the max.
  sim.AddSynonym("monography", "book", 0.5);
  EXPECT_DOUBLE_EQ(sim.Sim("book", "monography"), 0.9);
  auto related = sim.Related("book", 0.5);
  ASSERT_EQ(related.size(), 2u);
  EXPECT_EQ(related[0].first, "book");
  EXPECT_EQ(related[1].first, "monography");
}

TEST_F(QueryFixture, TagIndexLookups) {
  EXPECT_EQ(tags_->Lookup("book").size(), 2u);
  EXPECT_EQ(tags_->Lookup("author").size(), 2u);
  EXPECT_TRUE(tags_->Lookup("nonexistent").empty());
  EXPECT_GT(tags_->NumTags(), 4u);
}

TEST_F(QueryFixture, SingleStepReturnsTagMatches) {
  auto expr = PathExpression::Parse("//author");
  ASSERT_TRUE(expr.ok());
  auto matches = EvaluatePath(*expr, *index_, *tags_);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 2u);
}

TEST_F(QueryFixture, DescendantAxisCrossesLink) {
  // //book//author must find bob via the citation link from a.xml.
  auto expr = PathExpression::Parse("//book//author");
  ASSERT_TRUE(expr.ok());
  auto matches = EvaluatePath(*expr, *index_, *tags_);
  ASSERT_TRUE(matches.ok());
  // a-book reaches alice (tree) and bob (via link); b-book reaches bob.
  EXPECT_EQ(matches->size(), 3u);
}

TEST_F(QueryFixture, WildcardStep) {
  auto expr = PathExpression::Parse("//book//*//author");
  ASSERT_TRUE(expr.ok());
  auto matches = EvaluatePath(*expr, *index_, *tags_);
  ASSERT_TRUE(matches.ok());
  EXPECT_GT(matches->size(), 0u);
}

TEST_F(QueryFixture, RankingPrefersShorterConnections) {
  auto expr = PathExpression::Parse("//book//author");
  ASSERT_TRUE(expr.ok());
  auto matches = EvaluatePath(*expr, *index_, *tags_);
  ASSERT_TRUE(matches.ok());
  ASSERT_GE(matches->size(), 2u);
  // Sorted by descending score; nearer author pairs first.
  for (size_t i = 1; i < matches->size(); ++i) {
    EXPECT_GE((*matches)[i - 1].score, (*matches)[i].score);
  }
  // The b-book -> bob pair (book > chapter > author, distance 2) must
  // outrank the a-book -> bob pair that travels through the citation.
  EXPECT_EQ((*matches)[0].total_distance, 2u);
}

TEST_F(QueryFixture, MaxStepDistanceFilters) {
  auto expr = PathExpression::Parse("//book//author");
  ASSERT_TRUE(expr.ok());
  PathQueryOptions options;
  options.max_step_distance = 1;
  auto matches = EvaluatePath(*expr, *index_, *tags_, options);
  ASSERT_TRUE(matches.ok());
  for (const PathMatch& m : *matches) {
    EXPECT_LE(m.total_distance, 1u);
  }
}

TEST_F(QueryFixture, MaxMatchesShortCircuits) {
  auto expr = PathExpression::Parse("//book//author");
  ASSERT_TRUE(expr.ok());
  PathQueryOptions options;
  options.max_matches = 1;
  auto matches = EvaluatePath(*expr, *index_, *tags_, options);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 1u);
}

TEST_F(QueryFixture, CountMatchesDistinctFinalBindings) {
  auto expr = PathExpression::Parse("//book//author");
  ASSERT_TRUE(expr.ok());
  auto count = CountPathResults(*expr, *index_, *tags_);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 2u);  // alice and bob (distinct elements)
}

TEST_F(QueryFixture, NoMatchesForDisconnectedChain) {
  auto expr = PathExpression::Parse("//author//book");
  ASSERT_TRUE(expr.ok());
  auto matches = EvaluatePath(*expr, *index_, *tags_);
  ASSERT_TRUE(matches.ok());
  EXPECT_TRUE(matches->empty());
}

TEST_F(QueryFixture, UnknownTagShortCircuits) {
  auto expr = PathExpression::Parse("//zzz//author");
  ASSERT_TRUE(expr.ok());
  auto matches = EvaluatePath(*expr, *index_, *tags_);
  ASSERT_TRUE(matches.ok());
  EXPECT_TRUE(matches->empty());
}

TEST_F(QueryFixture, ApproximateStepExpandsSynonyms) {
  TagSimilarity sim;
  sim.AddSynonym("section", "chapter", 0.8);
  PathQueryOptions options;
  options.similarity = &sim;

  auto exact = PathExpression::Parse("//section//author");
  ASSERT_TRUE(exact.ok());
  auto exact_matches = EvaluatePath(*exact, *index_, *tags_, options);
  ASSERT_TRUE(exact_matches.ok());
  EXPECT_EQ(exact_matches->size(), 1u);  // only alice sits under a section

  auto approx = PathExpression::Parse("//~section//author");
  ASSERT_TRUE(approx.ok());
  auto approx_matches = EvaluatePath(*approx, *index_, *tags_, options);
  ASSERT_TRUE(approx_matches.ok());
  // Synonym expansion adds the chapter-rooted matches.
  EXPECT_GT(approx_matches->size(), exact_matches->size());
  // Exact-tag matches carry full tag score; synonym matches are scaled by
  // 0.8, so an exact match with equal distance must rank above a synonym
  // match with equal distance.
  for (const PathMatch& m : *approx_matches) {
    EXPECT_GT(m.score, 0.0);
    EXPECT_LE(m.score, 1.0);
  }
}

TEST_F(QueryFixture, ApproximateWithoutRegistryBehavesExactly) {
  auto approx = PathExpression::Parse("//~section//author");
  ASSERT_TRUE(approx.ok());
  auto matches = EvaluatePath(*approx, *index_, *tags_);  // no similarity
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 1u);
}

TEST(TagSimilarityTest, DblpDefaultsCoverPaperExamples) {
  // Paper Sec 5.1: "the ontological similarity of book to monography or
  // publication".
  TagSimilarity sim = TagSimilarity::DblpDefaults();
  EXPECT_GT(sim.Sim("book", "monography"), 0.5);
  EXPECT_GT(sim.Sim("book", "publication"), 0.5);
  EXPECT_GT(sim.Sim("author", "editor"), 0.5);
}

TEST(QueryOnDblpTest, CiteChains) {
  Collection c = hopi::testing::SmallDblp(40, 3);
  auto index = BuildIndex(&c);
  ASSERT_TRUE(index.ok());
  TagIndex tags(c);
  auto expr = PathExpression::Parse("//inproceedings//cite//title");
  ASSERT_TRUE(expr.ok());
  auto count = CountPathResults(*expr, *index, tags);
  ASSERT_TRUE(count.ok());
  // Citations lead to other publications' titles, so matches must exist
  // whenever there are links.
  if (c.NumInterLinks() > 0) {
    EXPECT_GT(*count, 0u);
  }
}

TEST(QueryOnDblpTest, CountNeverExceedsTagPopulation) {
  Collection c = hopi::testing::SmallDblp(30, 4);
  auto index = BuildIndex(&c);
  ASSERT_TRUE(index.ok());
  TagIndex tags(c);
  for (const char* q : {"//inproceedings//author", "//abstract//sentence",
                        "//inproceedings//cite"}) {
    auto expr = PathExpression::Parse(q);
    ASSERT_TRUE(expr.ok());
    auto count = CountPathResults(*expr, *index, tags);
    ASSERT_TRUE(count.ok());
    EXPECT_LE(*count, tags.Lookup(expr->steps.back().tag).size());
  }
}

}  // namespace
}  // namespace hopi::query
