// Seeded malformed-input fuzzer for the serving front-end's two
// parsers — the HttpParser and the JSON wire (ParseJson +
// JsonWire::Parse*Request). The mirror of format_fuzz_test.cc for the
// network boundary: every attacker-controlled byte stream must come
// back as a typed, structured reject (4xx-mapped Status), never a
// crash, hang, or silent mis-parse.
//
// Attack corpus, all derived from seeded Rng streams (reproducible):
//   * truncations of valid requests at every prefix length,
//   * single-byte flips over valid requests,
//   * oversized headers / bodies / nesting straddling each limit,
//   * random garbage, random "almost-HTTP" and "almost-JSON" strings,
//   * pipelined valid requests with garbage spliced between them,
//   * valid JSON of the wrong shape fed to the typed wire parsers.
//
// CI runs this under ASan/UBSan and TSan (the `serving` ctest label);
// with the sanitizers watching, "returns kError/!ok" here is the
// memory-safety proof for the parsing layer.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "engine/engine_pool.h"
#include "engine/snapshot.h"
#include "hopi/baseline.h"
#include "hopi/build.h"
#include "net/http.h"
#include "net/json.h"
#include "net/wire.h"
#include "test_util.h"
#include "util/rng.h"

namespace hopi::net {
namespace {

constexpr uint64_t kSeed = 20260808;

/// Drives one byte stream through a fresh parser to quiescence:
/// every outcome is fine EXCEPT a crash (the sanitizers' job) or an
/// infinite loop (bounded by the iteration cap here).
void ExerciseHttpParser(const std::string& bytes,
                        const HttpParserLimits& limits = {}) {
  HttpParser parser(limits);
  parser.Feed(bytes);
  HttpRequest request;
  HttpError error;
  for (int i = 0; i < 1000; ++i) {
    HttpParser::Step step = parser.Next(&request, &error);
    if (step == HttpParser::Step::kNeedMore) return;
    if (step == HttpParser::Step::kError) {
      // Typed reject: a real HTTP status and a non-OK Status.
      EXPECT_GE(error.http_status, 400);
      EXPECT_LE(error.http_status, 599);
      EXPECT_FALSE(error.status.ok());
      // Poisoned stays poisoned.
      EXPECT_EQ(parser.Next(&request, &error), HttpParser::Step::kError);
      return;
    }
  }
  FAIL() << "parser produced 1000 requests from "
         << bytes.size() << " bytes";
}

/// Same but drip-fed one byte at a time — boundary conditions in the
/// incremental path (head split anywhere, body split anywhere).
void ExerciseHttpParserByteByByte(const std::string& bytes) {
  HttpParser parser;
  HttpRequest request;
  HttpError error;
  size_t emitted = 0;
  for (char c : bytes) {
    parser.Feed(std::string_view(&c, 1));
    for (int i = 0; i < 100; ++i) {
      HttpParser::Step step = parser.Next(&request, &error);
      if (step == HttpParser::Step::kNeedMore) break;
      if (step == HttpParser::Step::kError) return;
      if (++emitted > bytes.size()) {
        FAIL() << "more requests than bytes";
      }
    }
  }
}

const char* const kValidRequests[] = {
    "GET /healthz HTTP/1.1\r\n\r\n",
    "GET /stats HTTP/1.1\r\nhost: x\r\nconnection: keep-alive\r\n\r\n",
    "POST /v1/batch HTTP/1.1\r\ncontent-type: application/json\r\n"
    "content-length: 18\r\n\r\n{\"pairs\":[[0,1]]}x",
    "POST /v1/path HTTP/1.1\r\ncontent-length: 24\r\n"
    "expect: 100-continue\r\n\r\n{\"expression\":\"//a//b\"}.",
};

TEST(HttpParserFuzzTest, TruncationsAtEveryPrefixAreSafe) {
  for (const char* valid : kValidRequests) {
    std::string bytes(valid);
    for (size_t len = 0; len <= bytes.size(); ++len) {
      ExerciseHttpParser(bytes.substr(0, len));
    }
  }
}

TEST(HttpParserFuzzTest, SingleByteFlipsAreSafe) {
  Rng rng(kSeed);
  for (const char* valid : kValidRequests) {
    std::string bytes(valid);
    for (size_t pos = 0; pos < bytes.size(); ++pos) {
      for (int round = 0; round < 4; ++round) {
        std::string mutated = bytes;
        mutated[pos] = static_cast<char>(rng.NextBounded(256));
        ExerciseHttpParser(mutated);
      }
    }
  }
}

TEST(HttpParserFuzzTest, RandomGarbageIsSafe) {
  Rng rng(kSeed + 1);
  for (int round = 0; round < 500; ++round) {
    size_t len = rng.NextBounded(300);
    std::string bytes;
    bytes.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      bytes += static_cast<char>(rng.NextBounded(256));
    }
    ExerciseHttpParser(bytes);
  }
}

TEST(HttpParserFuzzTest, AlmostHttpIsSafe) {
  // Garbage with HTTP-ish structure: real tokens in wrong places.
  Rng rng(kSeed + 2);
  const char* const fragments[] = {
      "GET ",       "POST ",      "/v1/batch",  " HTTP/1.1",  "HTTP/1.1 ",
      "\r\n",       "\r",         "\n",         ": ",         "content-length",
      "transfer-encoding", "chunked", "0",      "99999999999999999999",
      "expect",     "100-continue", " ",        "\t",         "\x00\x01\x7f",
  };
  for (int round = 0; round < 500; ++round) {
    std::string bytes;
    size_t pieces = 1 + rng.NextBounded(20);
    for (size_t i = 0; i < pieces; ++i) {
      bytes += fragments[rng.NextBounded(std::size(fragments))];
    }
    ExerciseHttpParser(bytes);
    ExerciseHttpParserByteByByte(bytes);
  }
}

TEST(HttpParserFuzzTest, PipelinedGarbageAfterValidRequestsIsSafe) {
  Rng rng(kSeed + 3);
  for (int round = 0; round < 200; ++round) {
    std::string bytes = kValidRequests[rng.NextBounded(
        std::size(kValidRequests))];
    size_t garbage_len = rng.NextBounded(100);
    for (size_t i = 0; i < garbage_len; ++i) {
      bytes += static_cast<char>(rng.NextBounded(256));
    }
    bytes += kValidRequests[rng.NextBounded(std::size(kValidRequests))];
    ExerciseHttpParser(bytes);
  }
}

TEST(HttpParserFuzzTest, OversizedInputsStraddlingEveryLimitAreSafe) {
  HttpParserLimits limits;
  limits.max_header_bytes = 256;
  limits.max_headers = 8;
  limits.max_body_bytes = 512;
  Rng rng(kSeed + 4);
  for (int round = 0; round < 200; ++round) {
    std::string bytes = "GET / HTTP/1.1\r\n";
    // Header block sized around the byte limit (under, at, over).
    size_t header_bytes = 200 + rng.NextBounded(150);
    while (bytes.size() < header_bytes) {
      bytes += "h" + std::to_string(rng.NextBounded(20)) + ": " +
               std::string(rng.NextBounded(40), 'v') + "\r\n";
    }
    bytes += "content-length: " +
             std::to_string(rng.NextBounded(1024)) + "\r\n\r\n";
    bytes += std::string(rng.NextBounded(1024), 'b');
    ExerciseHttpParser(bytes, limits);
  }
}

// ---- JSON / wire fuzz ----

void ExerciseWire(const std::string& body) {
  // All three entry points an HTTP body can reach. ok() or a typed
  // InvalidArgument are both fine; crashes are not.
  JsonWire wire;
  auto json = ParseJson(body);
  if (!json.ok()) {
    EXPECT_FALSE(json.status().ok());
  }
  auto batch = wire.ParseBatchRequest(body, 1000);
  if (!batch.ok()) {
    EXPECT_TRUE(batch.status().IsInvalidArgument());
  }
  auto path = wire.ParsePathRequest(body);
  if (!path.ok()) {
    EXPECT_TRUE(path.status().IsInvalidArgument());
  }
  auto mutation = wire.ParseMutationRequest(body, 1000, 50);
  if (!mutation.ok()) {
    EXPECT_TRUE(mutation.status().IsInvalidArgument());
  }
}

const char* const kValidBodies[] = {
    R"({"pairs":[[0,1],[5,9]],"want_distances":true})",
    R"({"pairs":[]})",
    R"({"expression":"//a//~b","max_matches":10,"count_only":false})",
    R"({"expression":"/x","min_tag_similarity":0.25})",
    R"({"op":"insert_link","source":0,"target":7})",
    R"({"op":"delete_link","source":12,"target":3})",
    R"({"op":"insert_document","name":"d.xml","elements":)"
    R"([{"tag":"article","parent":null},{"tag":"sec","parent":0}]})",
    R"({"op":"delete_document","doc":4})",
};

TEST(WireFuzzTest, TruncationsOfValidBodiesAreSafe) {
  for (const char* valid : kValidBodies) {
    std::string body(valid);
    for (size_t len = 0; len <= body.size(); ++len) {
      ExerciseWire(body.substr(0, len));
    }
  }
}

TEST(WireFuzzTest, SingleByteFlipsOfValidBodiesAreSafe) {
  Rng rng(kSeed + 5);
  for (const char* valid : kValidBodies) {
    std::string body(valid);
    for (size_t pos = 0; pos < body.size(); ++pos) {
      for (int round = 0; round < 4; ++round) {
        std::string mutated = body;
        mutated[pos] = static_cast<char>(rng.NextBounded(256));
        ExerciseWire(mutated);
      }
    }
  }
}

TEST(WireFuzzTest, BadEscapesAndUnicodeEdgesAreSafe) {
  const char* const cases[] = {
      "\"\\u\"",          "\"\\u00\"",       "\"\\uZZZZ\"",
      "\"\\ud800\"",      "\"\\ud800\\u0041\"",
      "\"\\ud800\\udc00\"",  // valid pair
      "\"\\udc00\\ud800\"",  // reversed
      "\"\\x41\"",        "\"\\\"",          "\"\\ud83d\\ude0\"",
      "{\"\\ud800\":1}",  "\"\xed\xa0\x80\"",  // raw surrogate bytes
      "\"\xff\xfe\"",     "\"\\u0000\"",
  };
  for (const char* c : cases) ExerciseWire(c);
}

TEST(WireFuzzTest, DeepNestingAndElementFloodsAreBounded) {
  // Depth flood.
  for (size_t depth : {10u, 31u, 32u, 33u, 64u, 1000u}) {
    std::string body(depth, '[');
    body += std::string(depth, ']');
    ExerciseWire(body);
    std::string objects;
    for (size_t i = 0; i < depth; ++i) objects += "{\"k\":";
    objects += "1";
    for (size_t i = 0; i < depth; ++i) objects += "}";
    ExerciseWire(objects);
  }
  // Element flood, kept under the parse limit in bytes but over the
  // element limit.
  JsonParseLimits limits;
  limits.max_elements = 1000;
  std::string flood = "[";
  for (int i = 0; i < 2000; ++i) {
    if (i > 0) flood += ',';
    flood += '1';
  }
  flood += ']';
  auto v = ParseJson(flood, limits);
  EXPECT_FALSE(v.ok());
}

TEST(WireFuzzTest, RandomGarbageAndAlmostJsonAreSafe) {
  Rng rng(kSeed + 6);
  const char* const fragments[] = {
      "{",  "}",  "[",  "]",  ",",  ":",  "\"", "\\", "pairs",
      "expression", "1e", "-",  "0.", "true", "null", "nul",
      "\\u00", "e308", "9999999999999999999999", " ", "\t\n",
  };
  for (int round = 0; round < 1000; ++round) {
    std::string body;
    if (round % 2 == 0) {
      size_t len = rng.NextBounded(200);
      for (size_t i = 0; i < len; ++i) {
        body += static_cast<char>(rng.NextBounded(256));
      }
    } else {
      size_t pieces = 1 + rng.NextBounded(30);
      for (size_t i = 0; i < pieces; ++i) {
        body += fragments[rng.NextBounded(std::size(fragments))];
      }
    }
    ExerciseWire(body);
  }
}

TEST(WireFuzzTest, WrongShapedValidJsonGetsTypedRejects) {
  // Parses as JSON, fails the schema: must be InvalidArgument with a
  // non-empty message, never OK, never a crash.
  JsonWire wire;
  const char* const cases[] = {
      "3",
      "[]",
      "\"pairs\"",
      R"({"pairs":3})",
      R"({"pairs":[3]})",
      R"({"pairs":[[1,2,3]]})",
      R"({"pairs":[["0","1"]]})",
      R"({"pairs":[[0,1]],"want_distances":"yes"})",
      R"({"pairs":[[1e18,0]]})",
      R"({"expression":3})",
      R"({"expression":"//a","max_matches":-2})",
      R"({"expression":"//a","max_matches":1.5})",
      R"({"expression":"//a","unknown":1})",
  };
  for (const char* c : cases) {
    auto batch = wire.ParseBatchRequest(c, 100);
    auto path = wire.ParsePathRequest(c);
    EXPECT_FALSE(batch.ok() && path.ok()) << c;
    if (!batch.ok()) {
      EXPECT_TRUE(batch.status().IsInvalidArgument()) << c;
      EXPECT_FALSE(batch.status().message().empty()) << c;
    }
    if (!path.ok()) {
      EXPECT_TRUE(path.status().IsInvalidArgument()) << c;
    }
  }
}

TEST(WireFuzzTest, HugeExpressionIsRejectedNotCopied) {
  WireLimits limits;
  limits.max_expression_bytes = 64;
  JsonWire wire(limits);
  std::string body =
      "{\"expression\":\"" + std::string(10000, 'a') + "\"}";
  auto parsed = wire.ParsePathRequest(body);
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsInvalidArgument());
}

// ---- /v1/mutate fuzz ----

TEST(WireFuzzTest, WrongShapedMutationBodiesGetTypedRejects) {
  // Valid JSON, wrong mutation shape, checked against a serving state
  // of 10 elements / 5 documents: every case must be a typed
  // InvalidArgument with a message, never OK, never a crash.
  JsonWire wire;
  const char* const cases[] = {
      "3",
      "{}",
      R"({"op":5})",
      R"({"op":"noop"})",
      R"({"op":"insert_link","source":0})",
      R"({"op":"insert_link","source":0,"target":1,"extra":true})",
      R"({"op":"insert_link","source":10,"target":0})",
      R"({"op":"insert_link","source":-1,"target":0})",
      R"({"op":"insert_link","source":0.5,"target":0})",
      R"({"op":"delete_link","source":"0","target":1})",
      R"({"op":"insert_document","name":"d","elements":[]})",
      R"({"op":"insert_document","name":"d","elements":)"
      R"([{"tag":"a","parent":0}]})",
      R"({"op":"insert_document","name":"d","elements":)"
      R"([{"tag":"a","parent":null},{"tag":"b","parent":1}]})",
      R"({"op":"insert_document","name":"d","elements":[{"tag":"a"}]})",
      R"({"op":"insert_document","name":"d","elements":)"
      R"([{"tag":"a","parent":null,"attr":1}]})",
      R"({"op":"insert_document","elements":[{"tag":"a","parent":null}]})",
      R"({"op":"delete_document","doc":5})",
      R"({"op":"delete_document"})",
      R"({"op":"delete_document","doc":4,"source":0})",
  };
  for (const char* c : cases) {
    auto parsed = wire.ParseMutationRequest(c, 10, 5);
    ASSERT_FALSE(parsed.ok()) << c;
    EXPECT_TRUE(parsed.status().IsInvalidArgument()) << c;
    EXPECT_FALSE(parsed.status().message().empty()) << c;
  }
}

TEST(WireFuzzTest, OversizedMutationFieldsAreRejectedNotCopied) {
  WireLimits limits;
  limits.max_name_bytes = 8;
  limits.max_document_elements = 4;
  JsonWire wire(limits);

  std::string long_name = "{\"op\":\"insert_document\",\"name\":\"" +
                          std::string(10000, 'n') +
                          "\",\"elements\":[{\"tag\":\"a\",\"parent\":null}]}";
  auto parsed = wire.ParseMutationRequest(long_name, 10, 5);
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsInvalidArgument());

  std::string long_tag =
      "{\"op\":\"insert_document\",\"name\":\"d\",\"elements\":[{\"tag\":\"" +
      std::string(10000, 't') + "\",\"parent\":null}]}";
  parsed = wire.ParseMutationRequest(long_tag, 10, 5);
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsInvalidArgument());

  std::string flood =
      R"({"op":"insert_document","name":"d","elements":[)"
      R"({"tag":"a","parent":null})";
  for (int i = 1; i < 5; ++i) flood += R"(,{"tag":"b","parent":0})";
  flood += "]}";
  parsed = wire.ParseMutationRequest(flood, 10, 5);
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsInvalidArgument());
}

TEST(WireFuzzTest, MutationFragmentSoupIsSafe) {
  // Mutation-flavored almost-JSON: real schema tokens in wrong places.
  Rng rng(kSeed + 7);
  const char* const fragments[] = {
      "{",  "}",  "[",  "]",  ",",  ":",  "\"", "op", "\"op\":",
      "insert_link", "delete_link", "insert_document", "delete_document",
      "\"source\":", "\"target\":", "\"doc\":", "\"name\":",
      "\"elements\":", "\"tag\":", "\"parent\":", "null", "0", "-1",
      "1e18", "4294967295", "4294967296", " ", "\\u0000",
  };
  for (int round = 0; round < 1000; ++round) {
    std::string body;
    size_t pieces = 1 + rng.NextBounded(30);
    for (size_t i = 0; i < pieces; ++i) {
      body += fragments[rng.NextBounded(std::size(fragments))];
    }
    ExerciseWire(body);
  }
}

// End-to-end no-corruption proof: the corpus (truncations + byte flips
// of valid mutate bodies + fragment soup) is thrown at a LIVE pool's
// write path. Whatever parses goes through ApplyMutation; accepted ops
// are replayed on a mirror collection, and afterwards the pool's full
// matrix must equal the closure of the mirror — so no reject, however
// mangled its body, may have half-applied anything to the delta.
TEST(WireFuzzTest, FuzzedMutationBodiesNeverCorruptTheDelta) {
  collection::Collection base = hopi::testing::SmallDblp(12, 7);
  IndexBuildOptions build_options;
  auto index = BuildIndex(&base, build_options);
  ASSERT_TRUE(index.ok()) << index.status();
  auto snapshot = engine::BackendSnapshot::Freeze(*index);
  engine::EnginePool pool(snapshot, {.num_threads = 1});
  ASSERT_TRUE(pool.EnableMutations(*index).ok());
  collection::Collection mirror = base;

  JsonWire wire;
  uint64_t accepted = 0;
  auto throw_at_pool = [&](const std::string& body) {
    auto parsed = wire.ParseMutationRequest(body, pool.ServingElementCount(),
                                            pool.ServingDocumentCount());
    if (!parsed.ok()) {
      EXPECT_TRUE(parsed.status().IsInvalidArgument()) << body;
      return;
    }
    engine::Mutation m = std::move(parsed).value();
    auto receipt = pool.ApplyMutation(m);
    if (!receipt.ok()) {
      // Semantic rejects are typed; an Internal here would mean the
      // validator let a corrupting op half-apply.
      EXPECT_TRUE(receipt.status().IsInvalidArgument() ||
                  receipt.status().IsNotFound() ||
                  receipt.status().IsResourceExhausted())
          << body << ": " << receipt.status();
      return;
    }
    ASSERT_TRUE(engine::ApplyMutationToCollection(m, &mirror).ok()) << body;
    ++accepted;
    EXPECT_EQ(receipt->generation, accepted);
  };

  const char* const valid_bodies[] = {
      R"({"op":"insert_link","source":0,"target":7})",
      R"({"op":"delete_link","source":0,"target":7})",
      R"({"op":"insert_document","name":"f.xml","elements":)"
      R"([{"tag":"article","parent":null},{"tag":"sec","parent":0}]})",
      R"({"op":"delete_document","doc":4})",
  };
  Rng rng(kSeed + 8);
  for (const char* valid : valid_bodies) {
    std::string body(valid);
    for (size_t len = 0; len <= body.size(); ++len) {
      throw_at_pool(body.substr(0, len));
    }
    for (size_t pos = 0; pos < body.size(); ++pos) {
      std::string mutated = body;
      mutated[pos] = static_cast<char>(rng.NextBounded(256));
      throw_at_pool(mutated);
    }
  }
  EXPECT_GT(accepted, 0u);  // the exact valid bodies must have landed
  EXPECT_EQ(pool.delta()->generation(), accepted);
  EXPECT_EQ(pool.Stats().mutations, accepted);

  // Bit-identical to the mirror's re-materialized closure.
  ASSERT_EQ(pool.ServingElementCount(), mirror.NumElements());
  const auto n = static_cast<NodeId>(mirror.NumElements());
  TransitiveClosureIndex closure =
      TransitiveClosureIndex::Build(mirror.ElementGraph(), false);
  size_t mismatches = 0;
  for (NodeId u = 0; u < n; ++u) {
    engine::BatchRequest request;
    for (NodeId v = 0; v < n; ++v) request.pairs.push_back({u, v});
    auto response = pool.Batch(std::move(request));
    ASSERT_TRUE(response.ok()) << response.status();
    for (NodeId v = 0; v < n; ++v) {
      if ((response->batch.reachable[v] != 0) != closure.IsReachable(u, v)) {
        ++mismatches;
      }
    }
  }
  EXPECT_EQ(mismatches, 0u);
  pool.Shutdown();
}

}  // namespace
}  // namespace hopi::net
