// Property suite for the vectorized join kernels (twohop/join_kernel.h):
// every kernel, over packed and strided views, must be bit-identical to
// the scalar reference JoinLabelRanges on randomized and adversarial
// label shapes — empties, singletons, all-shared sets, interleaved
// disjoint sets, UINT32_MAX boundary centers, wrapping distance sums,
// want_distance on and off. Plus the dispatch rules, the forced-kernel
// degradation ladder, the LabelSummary one-sidedness contract, and the
// IntersectSorted helper.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <set>
#include <vector>

#include "twohop/cover.h"
#include "twohop/join_kernel.h"
#include "twohop/join_view.h"
#include "util/cpu.h"

namespace hopi::twohop {
namespace {

using Entries = std::vector<LabelEntry>;

LabelSummary SummaryOf(const Entries& entries) {
  LabelSummary s = LabelSummary::Empty();
  for (const LabelEntry& e : entries) s.Add(e.center);
  return s;
}

/// Packs entries into SoA columns; the arrays must outlive the view.
struct Packed {
  std::vector<uint32_t> centers, dists;
  LabelSummary summary;

  explicit Packed(const Entries& entries) : summary(SummaryOf(entries)) {
    for (const LabelEntry& e : entries) {
      centers.push_back(e.center);
      dists.push_back(e.dist);
    }
  }
  JoinView View() const {
    JoinView v;
    v.centers = centers.data();
    v.dists = dists.data();
    v.n = centers.size();
    v.summary = summary;
    return v;
  }
};

/// A 3-word-stride entry shaped like storage::TableRow — exercises the
/// strided-view path with a stride the real code uses.
struct WideEntry {
  uint32_t id;
  uint32_t center;
  uint32_t dist;
};

std::vector<WideEntry> Widen(const Entries& entries) {
  std::vector<WideEntry> wide;
  for (const LabelEntry& e : entries) wide.push_back({0, e.center, e.dist});
  return wide;
}

/// Asserts every supported kernel, over every layout, matches the
/// scalar reference for this probe.
void ExpectAllKernelsMatch(NodeId u, NodeId v, const Entries& lout,
                           const Entries& lin, bool want_distance) {
  LabelJoinResult golden = JoinLabelRanges(
      u, v, lout.data(), lout.size(), lin.data(), lin.size(), want_distance);
  Packed pout(lout), pin(lin);
  std::vector<WideEntry> wout = Widen(lout), win = Widen(lin);
  JoinView strided_out = JoinView::FromEntries(lout.data(), lout.size());
  JoinView strided_in = JoinView::FromEntries(lin.data(), lin.size());
  JoinView wide_out = JoinView::FromEntries(wout.data(), wout.size());
  JoinView wide_in = JoinView::FromEntries(win.data(), win.size());
  for (JoinKernel k : SupportedJoinKernels()) {
    for (auto [o, i, layout] :
         {std::tuple{pout.View(), pin.View(), "packed"},
          std::tuple{strided_out, strided_in, "stride2"},
          std::tuple{wide_out, wide_in, "stride3"}}) {
      LabelJoinResult got = JoinViews(u, v, o, i, want_distance, k);
      EXPECT_EQ(golden.connected, got.connected)
          << JoinKernelName(k) << " " << layout << " u=" << u << " v=" << v
          << " want_distance=" << want_distance;
      if (want_distance) {
        EXPECT_EQ(golden.distance, got.distance)
            << JoinKernelName(k) << " " << layout << " u=" << u << " v=" << v;
      }
    }
  }
}

Entries MakeLabel(const std::vector<uint32_t>& centers, uint32_t dist = 0) {
  Entries out;
  for (uint32_t c : centers) out.push_back({c, dist});
  return out;
}

TEST(JoinKernelTest, EmptyAndSingletonShapes) {
  for (bool wd : {false, true}) {
    ExpectAllKernelsMatch(1, 2, {}, {}, wd);
    ExpectAllKernelsMatch(1, 2, MakeLabel({5}), {}, wd);
    ExpectAllKernelsMatch(1, 2, {}, MakeLabel({5}), wd);
    ExpectAllKernelsMatch(1, 2, MakeLabel({5}), MakeLabel({5}), wd);
    ExpectAllKernelsMatch(1, 2, MakeLabel({5}), MakeLabel({6}), wd);
    // Self entries: u in Lin(v), v in Lout(u), both.
    ExpectAllKernelsMatch(1, 2, MakeLabel({9}), MakeLabel({1}), wd);
    ExpectAllKernelsMatch(1, 2, MakeLabel({2}), MakeLabel({9}), wd);
    ExpectAllKernelsMatch(1, 2, MakeLabel({2}), MakeLabel({1}), wd);
  }
}

TEST(JoinKernelTest, AllSharedAndInterleaved) {
  std::vector<uint32_t> shared, evens, odds;
  for (uint32_t i = 0; i < 64; ++i) {
    shared.push_back(i * 3 + 10);
    evens.push_back(i * 2 + 10);
    odds.push_back(i * 2 + 11);
  }
  for (bool wd : {false, true}) {
    ExpectAllKernelsMatch(1, 2, MakeLabel(shared, 1), MakeLabel(shared, 2),
                          wd);
    // Perfectly interleaved, zero overlap: the SIMD block compares must
    // not invent matches.
    ExpectAllKernelsMatch(1, 2, MakeLabel(evens), MakeLabel(odds), wd);
  }
}

TEST(JoinKernelTest, Uint32BoundaryCenters) {
  std::vector<uint32_t> hi;
  for (uint32_t i = 0; i < 16; ++i) hi.push_back(UINT32_MAX - 2 * i);
  std::sort(hi.begin(), hi.end());
  std::vector<uint32_t> hi_shifted = hi;
  for (uint32_t& c : hi_shifted) c -= 1;
  for (bool wd : {false, true}) {
    ExpectAllKernelsMatch(1, 2, MakeLabel(hi), MakeLabel(hi), wd);
    ExpectAllKernelsMatch(1, 2, MakeLabel(hi), MakeLabel(hi_shifted), wd);
    // UINT32_MAX as a probed node id (self-entry binary searches).
    ExpectAllKernelsMatch(UINT32_MAX, 2, MakeLabel(hi), MakeLabel(hi), wd);
    ExpectAllKernelsMatch(1, UINT32_MAX, MakeLabel(hi), MakeLabel(hi), wd);
  }
}

TEST(JoinKernelTest, DistanceSaturationWrapsLikeScalar) {
  // The scalar reference adds dists as uint32 and wraps; the kernels
  // must reproduce that bit-for-bit, not saturate.
  Entries lout = {{100, UINT32_MAX}, {200, UINT32_MAX - 1}};
  Entries lin = {{100, 2}, {200, 1}};
  ExpectAllKernelsMatch(1, 2, lout, lin, /*want_distance=*/true);
  ExpectAllKernelsMatch(1, 2, lout, lin, /*want_distance=*/false);
}

TEST(JoinKernelTest, RandomizedAgainstScalarReference) {
  std::mt19937 rng(20260808);
  for (int iter = 0; iter < 300; ++iter) {
    // Mixed sizes with heavy skew every few iterations, so the gallop
    // and SIMD paths both see real work.
    // Mostly small universes (frequent overlap), with a skewed big-set
    // round every fifth iteration so gallop and SIMD see real work.
    bool skewed = iter % 5 == 0;
    size_t n1 = rng() % 50;
    size_t n2 = skewed ? rng() % 400 : rng() % 50;
    uint32_t universe = skewed ? 1000 + rng() % 1000 : 1 + rng() % 120;
    auto make = [&](size_t n) {
      n = std::min<size_t>(n, universe / 2 + 1);  // must fit the universe
      std::set<uint32_t> centers;
      while (centers.size() < n) centers.insert(rng() % universe);
      Entries entries;
      for (uint32_t c : centers) {
        uint32_t d = rng() % 8 == 0 ? UINT32_MAX
                                    : static_cast<uint32_t>(rng() % 1000);
        entries.push_back({c, d});
      }
      return entries;
    };
    Entries lout = make(n1), lin = make(n2);
    NodeId u = rng() % universe, v = rng() % universe;
    ExpectAllKernelsMatch(u, v, lout, lin, iter % 2 == 0);
  }
}

TEST(JoinKernelTest, SummaryNeverFalseNegative) {
  std::mt19937 rng(7);
  for (int iter = 0; iter < 200; ++iter) {
    LabelSummary s = LabelSummary::Empty();
    std::vector<uint32_t> centers;
    size_t n = 1 + rng() % 40;
    for (size_t i = 0; i < n; ++i) {
      uint32_t c = rng();
      centers.push_back(c);
      s.Add(c);
    }
    for (uint32_t c : centers) {
      EXPECT_TRUE(s.MightContain(c)) << c;
    }
    // Any summary containing a shared center must intersect.
    LabelSummary other = LabelSummary::Empty();
    other.Add(centers[rng() % centers.size()]);
    other.Add(rng());
    EXPECT_TRUE(LabelSummary::MightIntersect(s, other));
  }
  EXPECT_FALSE(LabelSummary::Empty().MightContain(0));
  EXPECT_FALSE(
      LabelSummary::MightIntersect(LabelSummary::Empty(), LabelSummary::Empty()));
  EXPECT_TRUE(LabelSummary::Unknown().MightContain(12345));
}

TEST(JoinKernelTest, PrefilterRejectsOnlyTrueNegatives) {
  // Disjoint high-entropy center sets: the summaries usually reject,
  // and when they do not the kernels still answer correctly. Either
  // way JoinViews must agree with the scalar reference.
  std::mt19937 rng(99);
  for (int iter = 0; iter < 100; ++iter) {
    Entries lout, lin;
    std::set<uint32_t> used;
    for (int i = 0; i < 20; ++i) used.insert(rng());
    bool left = true;
    for (uint32_t c : used) {
      (left ? lout : lin).push_back({c, 0});
      left = !left;
    }
    ExpectAllKernelsMatch(rng(), rng(), lout, lin, false);
  }
}

TEST(JoinKernelTest, ParseAndNameRoundTrip) {
  for (JoinKernel k :
       {JoinKernel::kAuto, JoinKernel::kScalar, JoinKernel::kGallop,
        JoinKernel::kSSE2, JoinKernel::kAVX2}) {
    EXPECT_EQ(k, ParseJoinKernel(JoinKernelName(k)));
  }
  EXPECT_FALSE(ParseJoinKernel("avx512").has_value());
  EXPECT_FALSE(ParseJoinKernel("").has_value());
}

TEST(JoinKernelTest, DispatchHeuristics) {
  // The heuristic only decides genuine autos; a process-wide force
  // (e.g. HOPI_JOIN_KERNEL from the CI matrix) rightly preempts it.
  // Neutralize any force for the duration of these assertions.
  JoinKernel saved = ForcedJoinKernel();
  SetForcedJoinKernel(JoinKernel::kAuto);
  // Without SIMD in play (strided view), a 16x ratio gallops.
  EXPECT_EQ(JoinKernel::kGallop,
            ResolveJoinKernel(JoinKernel::kAuto, 64, 4, /*packed=*/false));
  // With a SIMD merge available the gallop crossover moves out to 128x:
  // 16x skew stays on the block merge, 128x gallops.
  if (util::CpuInfo().sse2 || util::CpuInfo().avx2) {
    EXPECT_NE(JoinKernel::kGallop,
              ResolveJoinKernel(JoinKernel::kAuto, 4, 64, /*packed=*/true));
    EXPECT_EQ(JoinKernel::kGallop,
              ResolveJoinKernel(JoinKernel::kAuto, 4, 512, /*packed=*/true));
  }
  // Empty side: scalar (nothing to vectorize).
  EXPECT_EQ(JoinKernel::kScalar,
            ResolveJoinKernel(JoinKernel::kAuto, 0, 64, /*packed=*/true));
  // Balanced packed sets pick the widest available SIMD.
  JoinKernel balanced =
      ResolveJoinKernel(JoinKernel::kAuto, 32, 32, /*packed=*/true);
  if (util::CpuInfo().avx2) {
    EXPECT_EQ(JoinKernel::kAVX2, balanced);
  } else if (util::CpuInfo().sse2) {
    EXPECT_EQ(JoinKernel::kSSE2, balanced);
  } else {
    EXPECT_EQ(JoinKernel::kScalar, balanced);
  }
  // Strided views never dispatch to SIMD.
  JoinKernel strided =
      ResolveJoinKernel(JoinKernel::kAuto, 32, 32, /*packed=*/false);
  EXPECT_EQ(JoinKernel::kScalar, strided);
  // Forced SIMD on a strided view degrades down the ladder.
  EXPECT_EQ(JoinKernel::kScalar,
            ResolveJoinKernel(JoinKernel::kAVX2, 32, 32, /*packed=*/false));
  // Forced gallop is honored regardless of shape.
  EXPECT_EQ(JoinKernel::kGallop,
            ResolveJoinKernel(JoinKernel::kGallop, 32, 32, /*packed=*/true));
  SetForcedJoinKernel(saved);
}

TEST(JoinKernelTest, ForcedKernelIsProcessWide) {
  JoinKernel saved = ForcedJoinKernel();
  SetForcedJoinKernel(JoinKernel::kGallop);
  EXPECT_EQ(JoinKernel::kGallop, ForcedJoinKernel());
  EXPECT_EQ(JoinKernel::kGallop,
            ResolveJoinKernel(JoinKernel::kAuto, 32, 32, /*packed=*/true));
  SetForcedJoinKernel(JoinKernel::kAuto);
  EXPECT_EQ(JoinKernel::kAuto, ForcedJoinKernel());
  SetForcedJoinKernel(saved);
}

TEST(JoinKernelTest, SupportedKernelsStartWithScalar) {
  std::vector<JoinKernel> kernels = SupportedJoinKernels();
  ASSERT_GE(kernels.size(), 2u);
  EXPECT_EQ(JoinKernel::kScalar, kernels[0]);
  EXPECT_EQ(JoinKernel::kGallop, kernels[1]);
  for (JoinKernel k : kernels) EXPECT_TRUE(JoinKernelSupported(k));
}

TEST(JoinKernelTest, IntersectSortedMatchesStdSetIntersection) {
  std::mt19937 rng(31337);
  for (int iter = 0; iter < 200; ++iter) {
    auto make = [&](size_t n, uint32_t universe) {
      std::set<uint32_t> s;
      while (s.size() < n) s.insert(rng() % universe);
      return std::vector<uint32_t>(s.begin(), s.end());
    };
    // Skewed sizes half the time to exercise the gallop path.
    size_t n1 = 1 + rng() % 30;
    size_t n2 = iter % 2 == 0 ? 1 + rng() % 30 : 1 + rng() % 600;
    std::vector<uint32_t> a = make(n1, 200), b = make(n2, 1000);
    std::vector<uint32_t> expected;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(expected));
    for (JoinKernel k : {JoinKernel::kAuto, JoinKernel::kScalar,
                         JoinKernel::kGallop}) {
      EXPECT_EQ(expected, IntersectSorted(a, b, k)) << JoinKernelName(k);
      EXPECT_EQ(expected, IntersectSorted(b, a, k)) << JoinKernelName(k);
    }
  }
  EXPECT_TRUE(IntersectSorted({}, {}).empty());
}

TEST(JoinKernelTest, CoverMirrorsStayCoherentUnderMutation) {
  // The cover's SoA mirrors feed the kernels; every mutator must keep
  // them in lockstep with the AoS labels.
  std::mt19937 rng(4242);
  TwoHopCover cover(64);
  for (int iter = 0; iter < 2000; ++iter) {
    NodeId node = rng() % 64;
    switch (rng() % 6) {
      case 0:
      case 1:
        cover.AddIn(node, rng() % 64, rng() % 10);
        break;
      case 2:
      case 3:
        cover.AddOut(node, rng() % 64, rng() % 10);
        break;
      case 4:
        cover.ClearNode(node);
        break;
      default: {
        Entries entries;
        uint32_t c = rng() % 8;
        for (int i = 0; i < 5; ++i, c += 1 + rng() % 8) {
          if (c != node) {
            entries.push_back({c, static_cast<uint32_t>(rng() % 10)});
          }
        }
        if (rng() % 2) {
          cover.SetIn(node, std::move(entries));
        } else {
          cover.SetOut(node, std::move(entries));
        }
      }
    }
    NodeId probe = rng() % 64;
    JoinView in = cover.InJoin(probe), out = cover.OutJoin(probe);
    const Entries& in_ref = cover.In(probe);
    const Entries& out_ref = cover.Out(probe);
    ASSERT_EQ(in_ref.size(), in.n);
    ASSERT_EQ(out_ref.size(), out.n);
    for (size_t i = 0; i < in.n; ++i) {
      ASSERT_EQ(in_ref[i].center, in.center(i));
      ASSERT_EQ(in_ref[i].dist, in.dist_at(i));
      ASSERT_TRUE(in.summary.MightContain(in_ref[i].center));
    }
    for (size_t i = 0; i < out.n; ++i) {
      ASSERT_EQ(out_ref[i].center, out.center(i));
      ASSERT_EQ(out_ref[i].dist, out.dist_at(i));
      ASSERT_TRUE(out.summary.MightContain(out_ref[i].center));
    }
    // And the kernel answers must match the scalar join on the raw
    // vectors.
    NodeId u = rng() % 64, v = rng() % 64;
    LabelJoinResult golden =
        JoinLabels(u, v, cover.Out(u), cover.In(v), /*want_distance=*/true);
    LabelJoinResult got = JoinViews(u, v, cover.OutJoin(u), cover.InJoin(v),
                                    /*want_distance=*/true);
    ASSERT_EQ(golden.connected, got.connected);
    ASSERT_EQ(golden.distance, got.distance);
  }
}

}  // namespace
}  // namespace hopi::twohop
