// Property tests for the greedy 2-hop cover builder: every build, on every
// graph shape, must produce a cover that is complete, sound and (in
// distance mode) metric-exact — checked by the exhaustive validator.
#include <gtest/gtest.h>

#include "graph/closure.h"
#include "test_util.h"
#include "twohop/builder.h"

namespace hopi::twohop {
namespace {

Digraph Chain(size_t n) {
  Digraph g(n);
  for (NodeId i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1);
  return g;
}

Digraph BinaryTree(size_t n) {
  Digraph g(n);
  for (NodeId i = 1; i < n; ++i) g.AddEdge((i - 1) / 2, i);
  return g;
}

Digraph Diamond() {
  Digraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 3);
  g.AddEdge(2, 3);
  return g;
}

TEST(CoverBuilderTest, EmptyGraph) {
  Digraph g(5);
  auto cover = BuildCover(g);
  ASSERT_TRUE(cover.ok());
  EXPECT_EQ(cover->Size(), 0u);
  EXPECT_TRUE(ValidateCover(*cover, g).ok());
}

TEST(CoverBuilderTest, SingleEdge) {
  Digraph g(2);
  g.AddEdge(0, 1);
  auto cover = BuildCover(g);
  ASSERT_TRUE(cover.ok());
  EXPECT_TRUE(ValidateCover(*cover, g).ok());
  EXPECT_TRUE(cover->IsConnected(0, 1));
  EXPECT_FALSE(cover->IsConnected(1, 0));
}

TEST(CoverBuilderTest, ChainCoverIsCompact) {
  Digraph g = Chain(32);
  auto cover = BuildCover(g);
  ASSERT_TRUE(cover.ok());
  EXPECT_TRUE(ValidateCover(*cover, g).ok());
  // A chain of n nodes has n(n-1)/2 = 496 connections; the 2-hop cover
  // must be far smaller than the closure.
  EXPECT_LT(cover->Size(), 200u);
}

TEST(CoverBuilderTest, DiamondAndTree) {
  for (const Digraph& g : {Diamond(), BinaryTree(31)}) {
    auto cover = BuildCover(g);
    ASSERT_TRUE(cover.ok());
    EXPECT_TRUE(ValidateCover(*cover, g).ok());
  }
}

TEST(CoverBuilderTest, CyclicGraph) {
  Digraph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);  // 3-cycle
  g.AddEdge(2, 3);
  g.AddEdge(3, 4);
  g.AddEdge(4, 3);  // 2-cycle downstream
  g.AddEdge(4, 5);
  auto cover = BuildCover(g);
  ASSERT_TRUE(cover.ok());
  EXPECT_TRUE(ValidateCover(*cover, g).ok());
  EXPECT_TRUE(cover->IsConnected(0, 5));
  EXPECT_TRUE(cover->IsConnected(1, 0));  // via the cycle
}

TEST(CoverBuilderTest, SelfLoop) {
  Digraph g(3);
  g.AddEdge(0, 0);
  g.AddEdge(0, 1);
  auto cover = BuildCover(g);
  ASSERT_TRUE(cover.ok());
  EXPECT_TRUE(ValidateCover(*cover, g).ok());
}

TEST(CoverBuilderTest, StatsArepopulated) {
  Digraph g = testing::RandomDag(50, 2.0, 3);
  CoverBuildStats stats;
  auto cover = BuildCover(g, {}, &stats);
  ASSERT_TRUE(cover.ok());
  EXPECT_GT(stats.initial_connections, 0u);
  EXPECT_GT(stats.centers_chosen, 0u);
  EXPECT_GE(stats.densest_recomputations, stats.centers_chosen);
}

TEST(CoverBuilderTest, CompressionBeatsClosureOnDags) {
  Digraph g = testing::RandomDag(120, 3.0, 8);
  auto tc = TransitiveClosure::Build(g);
  ASSERT_TRUE(tc.ok());
  auto cover = BuildCover(g);
  ASSERT_TRUE(cover.ok());
  ASSERT_TRUE(ValidateCover(*cover, g).ok());
  // The whole point of HOPI: |L| << |T|.
  EXPECT_LT(cover->Size(), tc->NumConnections());
}

TEST(CoverBuilderTest, PreselectedCentersStillValid) {
  Digraph g = testing::RandomDag(40, 2.0, 12);
  CoverBuildOptions options;
  options.preselect_centers = {5, 17, 30};
  CoverBuildStats stats;
  auto cover = BuildCover(g, options, &stats);
  ASSERT_TRUE(cover.ok());
  EXPECT_TRUE(ValidateCover(*cover, g).ok());
}

TEST(CoverBuilderTest, PreselectionCoversThroughCenter) {
  // 0 -> 1 -> 2: preselecting center 1 covers everything up front.
  Digraph g = Chain(3);
  CoverBuildOptions options;
  options.preselect_centers = {1};
  CoverBuildStats stats;
  auto cover = BuildCover(g, options, &stats);
  ASSERT_TRUE(cover.ok());
  EXPECT_TRUE(ValidateCover(*cover, g).ok());
  EXPECT_EQ(stats.preselect_covered, 3u);  // (0,1) (0,2) (1,2)
  EXPECT_EQ(stats.centers_chosen, 0u);     // greedy loop had nothing left
}

// ---- Parameterized property sweep: random DAGs ----

struct DagParams {
  size_t nodes;
  double avg_out;
  uint64_t seed;
};

class CoverBuilderDagProperty : public ::testing::TestWithParam<DagParams> {};

TEST_P(CoverBuilderDagProperty, ValidOnRandomDag) {
  const DagParams& p = GetParam();
  Digraph g = testing::RandomDag(p.nodes, p.avg_out, p.seed);
  auto cover = BuildCover(g);
  ASSERT_TRUE(cover.ok());
  EXPECT_TRUE(ValidateCover(*cover, g).ok()) << "nodes=" << p.nodes
                                             << " seed=" << p.seed;
}

TEST_P(CoverBuilderDagProperty, ValidWithDistanceOnRandomDag) {
  const DagParams& p = GetParam();
  Digraph g = testing::RandomDag(p.nodes, p.avg_out, p.seed);
  CoverBuildOptions options;
  options.with_distance = true;
  auto cover = BuildCover(g, options);
  ASSERT_TRUE(cover.ok());
  EXPECT_TRUE(ValidateCover(*cover, g, /*check_distances=*/true).ok())
      << "nodes=" << p.nodes << " seed=" << p.seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CoverBuilderDagProperty,
    ::testing::Values(DagParams{10, 1.5, 1}, DagParams{10, 3.0, 2},
                      DagParams{25, 1.0, 3}, DagParams{25, 2.5, 4},
                      DagParams{40, 2.0, 5}, DagParams{40, 4.0, 6},
                      DagParams{60, 1.5, 7}, DagParams{60, 3.0, 8},
                      DagParams{80, 2.0, 9}, DagParams{15, 5.0, 10}));

// ---- Parameterized property sweep: random cyclic digraphs ----

struct DigraphParams {
  size_t nodes;
  size_t edges;
  uint64_t seed;
};

class CoverBuilderCyclicProperty
    : public ::testing::TestWithParam<DigraphParams> {};

TEST_P(CoverBuilderCyclicProperty, ValidOnRandomDigraph) {
  const DigraphParams& p = GetParam();
  Digraph g = testing::RandomDigraph(p.nodes, p.edges, p.seed);
  auto cover = BuildCover(g);
  ASSERT_TRUE(cover.ok());
  EXPECT_TRUE(ValidateCover(*cover, g).ok()) << "seed=" << p.seed;
}

TEST_P(CoverBuilderCyclicProperty, ValidWithDistance) {
  const DigraphParams& p = GetParam();
  Digraph g = testing::RandomDigraph(p.nodes, p.edges, p.seed);
  CoverBuildOptions options;
  options.with_distance = true;
  auto cover = BuildCover(g, options);
  ASSERT_TRUE(cover.ok());
  EXPECT_TRUE(ValidateCover(*cover, g, /*check_distances=*/true).ok())
      << "seed=" << p.seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CoverBuilderCyclicProperty,
    ::testing::Values(DigraphParams{8, 12, 11}, DigraphParams{12, 30, 12},
                      DigraphParams{20, 40, 13}, DigraphParams{20, 80, 14},
                      DigraphParams{30, 60, 15}, DigraphParams{30, 120, 16},
                      DigraphParams{40, 70, 17}, DigraphParams{50, 100, 18}));

TEST(CoverBuilderDistanceTest, ExactDistancesOnDiamond) {
  Digraph g = Diamond();
  g.AddEdge(0, 3);  // shortcut of length 1 beside two length-2 paths
  CoverBuildOptions options;
  options.with_distance = true;
  auto cover = BuildCover(g, options);
  ASSERT_TRUE(cover.ok());
  ASSERT_TRUE(ValidateCover(*cover, g, true).ok());
  EXPECT_EQ(*cover->Distance(0, 3), 1u);
}

TEST(CoverBuilderDistanceTest, LongChainDistances) {
  Digraph g(20);
  for (NodeId i = 0; i + 1 < 20; ++i) g.AddEdge(i, i + 1);
  CoverBuildOptions options;
  options.with_distance = true;
  auto cover = BuildCover(g, options);
  ASSERT_TRUE(cover.ok());
  ASSERT_TRUE(ValidateCover(*cover, g, true).ok());
  EXPECT_EQ(*cover->Distance(0, 19), 19u);
  EXPECT_EQ(*cover->Distance(5, 6), 1u);
}

TEST(CoverBuilderTest, BuildFromPrecomputedClosure) {
  Digraph g = testing::RandomDag(30, 2.0, 77);
  auto tc = TransitiveClosure::Build(g);
  ASSERT_TRUE(tc.ok());
  auto cover = BuildCoverFromClosure(*tc, nullptr, {});
  ASSERT_TRUE(cover.ok());
  EXPECT_TRUE(ValidateCover(*cover, g).ok());
}

// ---- Parallel build determinism (the snapshot/commit protocol must
// reproduce the sequential build bit for bit) ----

void ExpectCoversIdentical(const TwoHopCover& a, const TwoHopCover& b) {
  ASSERT_EQ(a.NumNodes(), b.NumNodes());
  EXPECT_EQ(a.Size(), b.Size());
  for (NodeId v = 0; v < a.NumNodes(); ++v) {
    EXPECT_EQ(a.In(v), b.In(v)) << "Lin mismatch at node " << v;
    EXPECT_EQ(a.Out(v), b.Out(v)) << "Lout mismatch at node " << v;
  }
}

class CoverBuilderParallelParity
    : public ::testing::TestWithParam<bool> {};  // param = with_distance

TEST_P(CoverBuilderParallelParity, ParallelCoverIdenticalToSequential) {
  const bool with_distance = GetParam();
  for (uint64_t seed : {21u, 22u, 23u}) {
    Digraph g = testing::RandomDag(60, 2.5, seed);
    CoverBuildOptions sequential;
    sequential.with_distance = with_distance;
    sequential.num_threads = 1;
    CoverBuildStats seq_stats;
    auto base = BuildCover(g, sequential, &seq_stats);
    ASSERT_TRUE(base.ok());
    ASSERT_TRUE(ValidateCover(*base, g, with_distance).ok());
    for (size_t threads : {2u, 4u, 8u}) {
      CoverBuildOptions parallel = sequential;
      parallel.num_threads = threads;
      CoverBuildStats par_stats;
      auto cover = BuildCover(g, parallel, &par_stats);
      ASSERT_TRUE(cover.ok());
      EXPECT_TRUE(ValidateCover(*cover, g, with_distance).ok())
          << "threads=" << threads << " seed=" << seed;
      ExpectCoversIdentical(*base, *cover);
      // The pop/commit sequence is identical, so the sequence-driven
      // counters must match; only the speculation accounting may differ.
      EXPECT_EQ(par_stats.centers_chosen, seq_stats.centers_chosen);
      EXPECT_EQ(par_stats.queue_reinsertions, seq_stats.queue_reinsertions);
      EXPECT_GE(par_stats.densest_recomputations,
                seq_stats.densest_recomputations);
      EXPECT_GE(par_stats.speculative_evaluations,
                par_stats.speculative_wasted);
    }
  }
}

TEST_P(CoverBuilderParallelParity, ParallelCoverIdenticalOnCyclicGraphs) {
  const bool with_distance = GetParam();
  Digraph g = testing::RandomDigraph(30, 90, 24);
  CoverBuildOptions sequential;
  sequential.with_distance = with_distance;
  auto base = BuildCover(g, sequential);
  ASSERT_TRUE(base.ok());
  for (size_t threads : {2u, 4u, 8u}) {
    CoverBuildOptions parallel = sequential;
    parallel.num_threads = threads;
    auto cover = BuildCover(g, parallel);
    ASSERT_TRUE(cover.ok());
    EXPECT_TRUE(ValidateCover(*cover, g, with_distance).ok());
    ExpectCoversIdentical(*base, *cover);
  }
}

TEST_P(CoverBuilderParallelParity, SpeculationBatchNeverChangesTheCover) {
  const bool with_distance = GetParam();
  Digraph g = testing::RandomDag(50, 3.0, 25);
  CoverBuildOptions sequential;
  sequential.with_distance = with_distance;
  auto base = BuildCover(g, sequential);
  ASSERT_TRUE(base.ok());
  for (uint32_t batch : {1u, 3u, 16u}) {
    CoverBuildOptions parallel = sequential;
    parallel.num_threads = 4;
    parallel.speculation_batch = batch;
    auto cover = BuildCover(g, parallel);
    ASSERT_TRUE(cover.ok());
    ExpectCoversIdentical(*base, *cover);
  }
}

TEST_P(CoverBuilderParallelParity, ParallelPreselectionParity) {
  const bool with_distance = GetParam();
  Digraph g = testing::RandomDag(40, 2.0, 26);
  CoverBuildOptions sequential;
  sequential.with_distance = with_distance;
  sequential.preselect_centers = {3, 11, 29};
  CoverBuildStats seq_stats;
  auto base = BuildCover(g, sequential, &seq_stats);
  ASSERT_TRUE(base.ok());
  CoverBuildOptions parallel = sequential;
  parallel.num_threads = 4;
  CoverBuildStats par_stats;
  auto cover = BuildCover(g, parallel, &par_stats);
  ASSERT_TRUE(cover.ok());
  ExpectCoversIdentical(*base, *cover);
  EXPECT_EQ(par_stats.preselect_covered, seq_stats.preselect_covered);
}

INSTANTIATE_TEST_SUITE_P(PlainAndDistance, CoverBuilderParallelParity,
                         ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Distance" : "Plain";
                         });

TEST(CoverBuilderTest, DistanceModeRequiresDistanceClosure) {
  Digraph g(2);
  g.AddEdge(0, 1);
  auto tc = TransitiveClosure::Build(g);
  ASSERT_TRUE(tc.ok());
  CoverBuildOptions options;
  options.with_distance = true;
  auto cover = BuildCoverFromClosure(*tc, nullptr, options);
  EXPECT_TRUE(cover.status().IsInvalidArgument());
}

}  // namespace
}  // namespace hopi::twohop
