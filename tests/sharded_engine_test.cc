// Sharded scatter-gather serving, proven layer by layer:
//
//   - ShardPlan/ShardRouter unit tests: dead documents route to
//     kUnassignedShard, a single-partition collection short-circuits to
//     one shard (everything direct), and the router's precomputed probe
//     sets are exactly the route tables' endpoint sets.
//   - ComposeThreeLegs against hand-computed min-plus fixtures — the
//     merge layer's math with no engine, no threads, no randomness.
//   - Distance batches over a plain shard are a typed Unsupported
//     (detected synchronously), never a silent distance-0 answer.
//   - The fault-injection harness: FaultInjectingShardClient wraps the
//     real PoolShardClient through the ShardedEngine test seam and
//     stalls / drops / fails one shard per scenario. The core contract
//     under every fault: degradation is TYPED — DeadlineExceeded or
//     Unavailable plus a resolved mask — and every pair reported
//     resolved matches the closure oracle exactly. Never a wrong bool.
//   - A swap-churn stress: client threads hammer Batch() while another
//     thread Swap()s fresh snapshots into every shard; every answer is
//     validated against the matrix served by its reported versions
//     (all published snapshots freeze the same shard covers, so the
//     matrix is the closure's — and each reported version must be one
//     that was actually published).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/engine.h"
#include "engine/engine_pool.h"
#include "engine/shard_router.h"
#include "engine/sharded_engine.h"
#include "engine/snapshot.h"
#include "hopi/baseline.h"
#include "hopi/build.h"
#include "query/tag_index.h"
#include "test_util.h"

namespace hopi::engine {
namespace {

using collection::Collection;
using collection::DocId;

// ---- deterministic cross-link-heavy collections ----

/// `docs` documents (root "article" + `extra` children), roots chained
/// root(d) -> root(d+1), plus skip links root(d) -> root(d+skip). With
/// one document per partition, ANY grouping into 2+ shards must cut the
/// chain, so cross-shard links — and multi-hop skeleton routes through
/// intermediate shards — are guaranteed, not seed-dependent.
Collection ChainCollection(size_t docs, size_t extra, size_t skip) {
  Collection c;
  std::vector<NodeId> roots;
  for (size_t d = 0; d < docs; ++d) {
    DocId doc = c.AddDocument("chain" + std::to_string(d) + ".xml");
    NodeId root = c.AddElement(doc, "article");
    roots.push_back(root);
    for (size_t i = 0; i < extra; ++i) {
      c.AddElement(doc, i % 2 == 0 ? "section" : "cite", root);
    }
  }
  for (size_t d = 0; d + 1 < docs; ++d) c.AddLink(roots[d], roots[d + 1]);
  if (skip > 0) {
    for (size_t d = 0; d + skip < docs; ++d) {
      c.AddLink(roots[d], roots[d + skip]);
    }
  }
  return c;
}

ShardPlan MustBuildPlan(Collection* c, size_t num_shards, bool with_distance,
                        uint64_t psg_partition_cap = 0) {
  ShardPlanOptions options;
  options.num_shards = num_shards;
  options.with_distance = with_distance;
  options.partition.strategy = partition::PartitionStrategy::kDocPerPartition;
  options.psg_partition_cap = psg_partition_cap;
  options.num_threads = 2;
  auto plan = BuildShardPlan(c, options);
  EXPECT_TRUE(plan.ok()) << plan.status();
  return std::move(plan).value();
}

/// The never-a-wrong-bool contract: every pair the response claims to
/// have resolved must match the closure exactly (reachability and,
/// when asked, distance); every unresolved pair must carry the typed
/// placeholders (false / nullopt), not a stale or invented answer.
void ExpectTypedDegradation(const ShardedBatchResponse& response,
                            const std::vector<NodePair>& pairs,
                            const TransitiveClosureIndex& closure,
                            bool with_distance, const std::string& context) {
  ASSERT_EQ(response.batch.reachable.size(), pairs.size()) << context;
  ASSERT_EQ(response.resolved.size(), pairs.size()) << context;
  for (size_t i = 0; i < pairs.size(); ++i) {
    const auto [u, v] = pairs[i];
    if (response.resolved[i]) {
      EXPECT_EQ(response.batch.reachable[i], closure.IsReachable(u, v))
          << context << ": resolved pair " << u << "->" << v;
      if (with_distance) {
        EXPECT_EQ(response.batch.distances[i], closure.Distance(u, v))
            << context << ": resolved pair " << u << "->" << v;
      }
    } else {
      EXPECT_FALSE(response.batch.reachable[i])
          << context << ": unresolved pair " << u << "->" << v
          << " must report the false placeholder";
      if (with_distance) {
        EXPECT_EQ(response.batch.distances[i], std::nullopt)
            << context << ": unresolved pair " << u << "->" << v;
      }
    }
  }
}

// ---- ShardPlan / ShardRouter units ----

TEST(ShardPlanTest, SinglePartitionCollapsesToOneShardAndRoutesDirect) {
  // One document = one partition; asking for 4 shards must clamp to 1
  // and serve every pair directly (no scatter machinery at all).
  Collection c = ChainCollection(1, 5, 0);
  ShardPlan plan = MustBuildPlan(&c, 4, false);
  EXPECT_EQ(plan.num_shards, 1u);
  EXPECT_EQ(plan.stats.cross_shard_links, 0u);
  EXPECT_EQ(plan.stats.cross_shard_routes, 0u);
  for (NodeId u = 0; u < c.NumElements(); ++u) {
    EXPECT_EQ(plan.ShardOfElement(u), 0u);
  }

  ShardedEngineOptions options;
  options.merge_deadline = std::chrono::milliseconds(0);
  ShardedEngine engine(&c, &plan, options);
  TransitiveClosureIndex closure =
      TransitiveClosureIndex::Build(c.ElementGraph(), false);
  BatchRequest request;
  for (NodeId u = 0; u < c.NumElements(); ++u) {
    for (NodeId v = 0; v < c.NumElements(); ++v) request.pairs.push_back({u, v});
  }
  std::vector<NodePair> pairs = request.pairs;
  auto response = engine.Batch(std::move(request));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->status.ok()) << response->status;
  ExpectTypedDegradation(*response, pairs, closure, false, "single_shard");
  ShardStats stats = engine.Stats();
  EXPECT_EQ(stats.cross_pairs, 0u);
  // Reflexive pairs resolve at routing time; everything else is direct.
  EXPECT_EQ(stats.direct_pairs, pairs.size() - c.NumElements());
}

TEST(ShardPlanTest, DeadDocumentsAreUnassignedAndAnswerDead) {
  Collection c = ChainCollection(6, 2, 2);
  const DocId dead = 2;
  std::vector<NodeId> dead_elements(c.ElementsOf(dead).begin(),
                                    c.ElementsOf(dead).end());
  ASSERT_TRUE(c.RemoveDocument(dead).ok());
  ShardPlan plan = MustBuildPlan(&c, 3, false);
  EXPECT_EQ(plan.shard_of_doc[dead], kUnassignedShard);
  for (NodeId u : dead_elements) {
    EXPECT_EQ(plan.ShardOfElement(u), kUnassignedShard);
  }
  for (DocId d = 0; d < c.NumDocuments(); ++d) {
    if (d == dead) continue;
    EXPECT_LT(plan.shard_of_doc[d], plan.num_shards) << "doc " << d;
  }
  // Out-of-range ids are unassigned too (the router's bound check).
  EXPECT_EQ(plan.ShardOfElement(static_cast<NodeId>(c.NumElements() + 5)),
            kUnassignedShard);

  // Probes touching the dead document resolve at routing time: dead,
  // except the reflexive pair — exactly what the closure over the
  // mutated element graph says.
  ShardedEngineOptions options;
  options.merge_deadline = std::chrono::milliseconds(0);
  ShardedEngine engine(&c, &plan, options);
  TransitiveClosureIndex closure =
      TransitiveClosureIndex::Build(c.ElementGraph(), false);
  BatchRequest request;
  NodeId live = 0;  // doc0's root is live
  request.pairs = {{dead_elements[0], live},
                   {live, dead_elements[0]},
                   {dead_elements[0], dead_elements[1]},
                   {dead_elements[0], dead_elements[0]}};
  std::vector<NodePair> pairs = request.pairs;
  auto response = engine.Batch(std::move(request));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->status.ok());
  ExpectTypedDegradation(*response, pairs, closure, false, "dead_doc");
  EXPECT_FALSE(response->batch.reachable[0]);
  EXPECT_TRUE(response->batch.reachable[3]);  // reflexive stays reflexive
}

TEST(ShardRouterTest, ProbeSetsAreExactlyTheRouteEndpointSets) {
  Collection c = ChainCollection(8, 2, 3);
  ShardPlan plan = MustBuildPlan(&c, 3, true);
  ASSERT_GT(plan.stats.cross_shard_links, 0u);
  ASSERT_GT(plan.stats.cross_shard_routes, 0u);
  ShardRouter router(&plan);
  ASSERT_EQ(router.num_shards(), plan.num_shards);

  for (uint32_t a = 0; a < plan.num_shards; ++a) {
    for (uint32_t b = 0; b < plan.num_shards; ++b) {
      if (a == b) continue;
      const std::vector<ShardRoute>& routes = router.RoutesBetween(a, b);
      std::set<NodeId> sources, targets;
      for (const ShardRoute& r : routes) {
        // Route endpoints live in the shards they claim to.
        EXPECT_EQ(plan.ShardOfElement(r.source), a);
        EXPECT_EQ(plan.ShardOfElement(r.target), b);
        sources.insert(r.source);
        targets.insert(r.target);
        // Every route is visible through both dense views.
        const auto& from = router.RoutesFrom(r.source);
        EXPECT_NE(std::find(from.begin(), from.end(),
                            std::make_pair(r.target, r.dist)),
                  from.end());
        const auto& into = router.RoutesInto(r.target);
        EXPECT_NE(std::find(into.begin(), into.end(),
                            std::make_pair(r.source, r.dist)),
                  into.end());
      }
      const ShardProbeSet& probes = router.ProbesBetween(a, b);
      EXPECT_EQ(probes.sources,
                std::vector<NodeId>(sources.begin(), sources.end()));
      EXPECT_EQ(probes.targets,
                std::vector<NodeId>(targets.begin(), targets.end()));
      EXPECT_TRUE(std::is_sorted(probes.sources.begin(), probes.sources.end()));
      EXPECT_TRUE(std::is_sorted(probes.targets.begin(), probes.targets.end()));
    }
  }
}

// ---- ComposeThreeLegs: the merge layer's math, hand-checked ----

TEST(ComposeThreeLegsTest, MinPlusOverRoutesMatchesHandComputation) {
  // Two routes between the shard pair; legs chosen so the SECOND route
  // wins the min despite the first being reachable too:
  //   route A: source leg 4 + psg 5 + target leg 1 = 10
  //   route B: source leg 1 + psg 2 + target leg 3 = 6   <- min
  std::vector<ShardRoute> routes = {{10, 20, 5}, {11, 21, 2}};
  std::map<NodeId, std::optional<uint32_t>> source_legs = {{10, 4u}, {11, 1u}};
  std::map<NodeId, std::optional<uint32_t>> target_legs = {{20, 1u}, {21, 3u}};
  LegLookup source_leg = [&](NodeId s) { return source_legs.at(s); };
  LegLookup target_leg = [&](NodeId t) { return target_legs.at(t); };

  auto [reachable, dist] = ComposeThreeLegs(routes, source_leg, target_leg,
                                            /*want_distance=*/true);
  EXPECT_TRUE(reachable);
  EXPECT_EQ(dist, std::optional<uint32_t>(6));

  // Without distances the same composition reports bare reachability.
  auto [plain_reachable, plain_dist] =
      ComposeThreeLegs(routes, source_leg, target_leg, /*want_distance=*/false);
  EXPECT_TRUE(plain_reachable);
  EXPECT_EQ(plain_dist, std::nullopt);

  // Knock out route B's source leg: route A must carry the answer.
  source_legs[11] = std::nullopt;
  auto [via_a, dist_a] =
      ComposeThreeLegs(routes, source_leg, target_leg, /*want_distance=*/true);
  EXPECT_TRUE(via_a);
  EXPECT_EQ(dist_a, std::optional<uint32_t>(10));

  // Knock out both: unreachable, no distance.
  target_legs[20] = std::nullopt;
  auto [none, no_dist] =
      ComposeThreeLegs(routes, source_leg, target_leg, /*want_distance=*/true);
  EXPECT_FALSE(none);
  EXPECT_EQ(no_dist, std::nullopt);

  // No routes at all: unreachable without consulting any leg.
  auto [routeless, routeless_dist] = ComposeThreeLegs(
      {}, [](NodeId) -> std::optional<uint32_t> { ADD_FAILURE(); return 0; },
      [](NodeId) -> std::optional<uint32_t> { ADD_FAILURE(); return 0; },
      true);
  EXPECT_FALSE(routeless);
  EXPECT_EQ(routeless_dist, std::nullopt);
}

// ---- the ShardClient fault-injection seam ----

/// Wraps a real ShardClient and injects one fault mode at a time:
///   kHealthy  pass-through
///   kStall    the shard does the work but the answer is held until
///             ReleaseStalled() (a slow shard; the deadline fires first)
///   kDrop     the answer is thrown away (a dead shard; deadline fires)
///   kFail     the answer is replaced by a typed Unavailable (a shard
///             that errors mid-batch)
/// Members are declared so `inner_` is destroyed FIRST: the inner
/// pool's shutdown drain may still deliver into the capture lambdas,
/// which touch mu_/stalled_.
class FaultInjectingShardClient : public ShardClient {
 public:
  enum class Mode { kHealthy, kStall, kDrop, kFail };

  explicit FaultInjectingShardClient(std::unique_ptr<ShardClient> inner)
      : inner_(std::move(inner)) {}

  void set_mode(Mode mode) { mode_.store(mode); }

  /// Delivers every held answer (late stragglers the merge must drop
  /// without corrupting the already-finalized response). Returns how
  /// many were delivered.
  size_t ReleaseStalled() {
    std::vector<Held> held;
    {
      std::lock_guard<std::mutex> lock(mu_);
      held.swap(stalled_);
    }
    for (Held& h : held) h.on_done(std::move(h.result));
    return held.size();
  }

  std::string_view name() const override { return inner_->name(); }
  bool with_distance() const override { return inner_->with_distance(); }
  uint64_t snapshot_version() const override {
    return inner_->snapshot_version();
  }
  std::vector<NodeId> Descendants(NodeId u) const override {
    return inner_->Descendants(u);
  }
  std::vector<NodeId> Ancestors(NodeId u) const override {
    return inner_->Ancestors(u);
  }
  Status Swap(std::shared_ptr<const BackendSnapshot> snapshot) override {
    return inner_->Swap(std::move(snapshot));
  }

  Status SubmitBatch(
      BatchRequest request,
      std::function<void(Result<ShardBatchResult>)> on_done) override {
    switch (mode_.load()) {
      case Mode::kHealthy:
        return inner_->SubmitBatch(std::move(request), std::move(on_done));
      case Mode::kStall:
        return inner_->SubmitBatch(
            std::move(request),
            [this, on_done = std::move(on_done)](
                Result<ShardBatchResult> result) {
              std::lock_guard<std::mutex> lock(mu_);
              stalled_.push_back({std::move(on_done), std::move(result)});
            });
      case Mode::kDrop:
        return inner_->SubmitBatch(std::move(request),
                                   [](Result<ShardBatchResult>) {});
      case Mode::kFail:
        return inner_->SubmitBatch(
            std::move(request),
            [on_done = std::move(on_done)](Result<ShardBatchResult>) {
              on_done(Status::Unavailable("injected shard fault"));
            });
    }
    return Status::Internal("unreachable");
  }

 private:
  struct Held {
    std::function<void(Result<ShardBatchResult>)> on_done;
    Result<ShardBatchResult> result;
  };

  std::atomic<Mode> mode_{Mode::kHealthy};
  std::mutex mu_;
  std::vector<Held> stalled_;
  std::unique_ptr<ShardClient> inner_;  // destroyed first — see above
};

/// Downgrades the wrapped shard to a plain (no-distance) cover in the
/// eyes of the router, for the mixed-distance Unsupported test.
class PlainFacadeShardClient : public ShardClient {
 public:
  explicit PlainFacadeShardClient(std::unique_ptr<ShardClient> inner)
      : inner_(std::move(inner)) {}
  std::string_view name() const override { return inner_->name(); }
  bool with_distance() const override { return false; }
  uint64_t snapshot_version() const override {
    return inner_->snapshot_version();
  }
  std::vector<NodeId> Descendants(NodeId u) const override {
    return inner_->Descendants(u);
  }
  std::vector<NodeId> Ancestors(NodeId u) const override {
    return inner_->Ancestors(u);
  }
  Status SubmitBatch(
      BatchRequest request,
      std::function<void(Result<ShardBatchResult>)> on_done) override {
    return inner_->SubmitBatch(std::move(request), std::move(on_done));
  }

 private:
  std::unique_ptr<ShardClient> inner_;
};

// ---- fault-injection fixture ----

class ShardedFaultFixture : public ::testing::Test {
 protected:
  static constexpr size_t kShards = 3;

  void SetUp() override {
    c_ = ChainCollection(9, 2, 3);
    plan_ = std::make_unique<ShardPlan>(MustBuildPlan(&c_, kShards, true));
    ASSERT_EQ(plan_->num_shards, kShards);
    ASSERT_GT(plan_->stats.cross_shard_links, 0u);
    closure_ = std::make_unique<TransitiveClosureIndex>(
        TransitiveClosureIndex::Build(c_.ElementGraph(), true));
    tags_ = std::make_shared<const query::TagIndex>(c_);
  }

  /// Builds a ShardedEngine whose clients are fault injectors over real
  /// PoolShardClients; `faults_[s]` is the injection handle for shard s.
  std::unique_ptr<ShardedEngine> MakeEngine(
      std::chrono::milliseconds deadline) {
    faults_.clear();
    std::vector<std::unique_ptr<ShardClient>> clients;
    for (size_t s = 0; s < plan_->num_shards; ++s) {
      EnginePoolOptions pool_options;
      pool_options.num_threads = 1;
      auto inner = std::make_unique<PoolShardClient>(
          "shard-" + std::to_string(s),
          BackendSnapshot::OfIndex(plan_->indexes[s], tags_), pool_options);
      auto fault =
          std::make_unique<FaultInjectingShardClient>(std::move(inner));
      faults_.push_back(fault.get());
      clients.push_back(std::move(fault));
    }
    ShardedEngineOptions options;
    options.merge_deadline = deadline;
    return std::make_unique<ShardedEngine>(&c_, plan_.get(),
                                           std::move(clients), options);
  }

  /// Every (u, v): same-shard, cross-shard, and reflexive pairs alike.
  BatchRequest FullMatrixRequest(bool with_distance) const {
    BatchRequest request;
    request.want_distances = with_distance;
    const auto n = static_cast<NodeId>(c_.NumElements());
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = 0; v < n; ++v) request.pairs.push_back({u, v});
    }
    return request;
  }

  Collection c_;
  std::unique_ptr<ShardPlan> plan_;
  std::unique_ptr<TransitiveClosureIndex> closure_;
  std::shared_ptr<const query::TagIndex> tags_;
  std::vector<FaultInjectingShardClient*> faults_;
};

TEST_F(ShardedFaultFixture, HealthyShardsAnswerTheFullMatrixExactly) {
  auto engine = MakeEngine(std::chrono::milliseconds(0));
  BatchRequest request = FullMatrixRequest(true);
  std::vector<NodePair> pairs = request.pairs;
  auto response = engine->Batch(std::move(request));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->status.ok()) << response->status;
  EXPECT_TRUE(std::all_of(response->resolved.begin(), response->resolved.end(),
                          [](bool r) { return r; }));
  ExpectTypedDegradation(*response, pairs, *closure_, true, "healthy");
  ShardStats stats = engine->Stats();
  EXPECT_GT(stats.cross_pairs, 0u);
  EXPECT_GT(stats.direct_pairs, 0u);
  EXPECT_EQ(stats.partial_batches, 0u);
}

TEST_F(ShardedFaultFixture, StalledShardDegradesToTypedDeadlinePartial) {
  auto engine = MakeEngine(std::chrono::milliseconds(750));
  const size_t stalled = 1;
  faults_[stalled]->set_mode(FaultInjectingShardClient::Mode::kStall);

  BatchRequest request = FullMatrixRequest(true);
  std::vector<NodePair> pairs = request.pairs;
  auto response = engine->Batch(std::move(request));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->status.IsDeadlineExceeded()) << response->status;
  EXPECT_FALSE(response->batch.error.ok());
  ExpectTypedDegradation(*response, pairs, *closure_, true, "stalled");

  // Both regimes actually occur: pairs that avoid the stalled shard
  // entirely are resolved; pairs with an endpoint in it are not.
  size_t resolved_count = 0, unresolved_count = 0;
  for (size_t i = 0; i < pairs.size(); ++i) {
    const auto [u, v] = pairs[i];
    const bool touches_stalled = plan_->ShardOfElement(u) == stalled ||
                                 plan_->ShardOfElement(v) == stalled;
    if (touches_stalled && u != v) {
      EXPECT_FALSE(response->resolved[i]) << u << "->" << v;
      ++unresolved_count;
    }
    if (response->resolved[i]) ++resolved_count;
  }
  EXPECT_GT(resolved_count, 0u);
  EXPECT_GT(unresolved_count, 0u);
  EXPECT_EQ(engine->Stats().partial_batches, 1u);

  // The stalled answers arrive late: the merge must drop them without
  // disturbing anything (the finalized-state straggler path).
  EXPECT_GT(faults_[stalled]->ReleaseStalled(), 0u);

  // Recovery: heal the shard and the same matrix answers clean.
  faults_[stalled]->set_mode(FaultInjectingShardClient::Mode::kHealthy);
  BatchRequest retry = FullMatrixRequest(true);
  std::vector<NodePair> retry_pairs = retry.pairs;
  auto recovered = engine->Batch(std::move(retry));
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_TRUE(recovered->status.ok()) << recovered->status;
  EXPECT_TRUE(std::all_of(recovered->resolved.begin(),
                          recovered->resolved.end(),
                          [](bool r) { return r; }));
  ExpectTypedDegradation(*recovered, retry_pairs, *closure_, true,
                         "recovered");
}

TEST_F(ShardedFaultFixture, DroppedShardHitsTheDeadlineTyped) {
  auto engine = MakeEngine(std::chrono::milliseconds(500));
  faults_[0]->set_mode(FaultInjectingShardClient::Mode::kDrop);
  BatchRequest request = FullMatrixRequest(false);
  std::vector<NodePair> pairs = request.pairs;
  auto response = engine->Batch(std::move(request));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->status.IsDeadlineExceeded()) << response->status;
  ExpectTypedDegradation(*response, pairs, *closure_, false, "dropped");
}

TEST_F(ShardedFaultFixture, FailedShardDegradesToTypedUnavailable) {
  // Deadline 0 = wait forever: every sub-batch completes, one failed —
  // the all-done-but-broken arm of the status taxonomy.
  auto engine = MakeEngine(std::chrono::milliseconds(0));
  const size_t failed = 2;
  faults_[failed]->set_mode(FaultInjectingShardClient::Mode::kFail);
  BatchRequest request = FullMatrixRequest(true);
  std::vector<NodePair> pairs = request.pairs;
  auto response = engine->Batch(std::move(request));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->status.IsUnavailable()) << response->status;
  ExpectTypedDegradation(*response, pairs, *closure_, true, "failed_shard");
  ShardStats stats = engine->Stats();
  EXPECT_GT(stats.failed_subbatches, 0u);
  EXPECT_EQ(stats.partial_batches, 1u);

  // Failure mid-run, then recovery: later batches are whole again.
  faults_[failed]->set_mode(FaultInjectingShardClient::Mode::kHealthy);
  for (int round = 0; round < 3; ++round) {
    BatchRequest retry = FullMatrixRequest(true);
    std::vector<NodePair> retry_pairs = retry.pairs;
    auto recovered = engine->Batch(std::move(retry));
    ASSERT_TRUE(recovered.ok()) << recovered.status();
    EXPECT_TRUE(recovered->status.ok()) << recovered->status;
    ExpectTypedDegradation(*recovered, retry_pairs, *closure_, true,
                           "post_failure_round" + std::to_string(round));
  }
}

TEST_F(ShardedFaultFixture, DistanceBatchOverPlainShardIsTypedUnsupported) {
  // Shard 1 pretends its cover is plain. A distance batch that consults
  // it must be refused synchronously — never a silent distance-0 —
  // while distance batches confined to the other shards still work.
  std::vector<std::unique_ptr<ShardClient>> clients;
  for (size_t s = 0; s < plan_->num_shards; ++s) {
    EnginePoolOptions pool_options;
    pool_options.num_threads = 1;
    auto inner = std::make_unique<PoolShardClient>(
        "shard-" + std::to_string(s),
        BackendSnapshot::OfIndex(plan_->indexes[s], tags_), pool_options);
    if (s == 1) {
      clients.push_back(
          std::make_unique<PlainFacadeShardClient>(std::move(inner)));
    } else {
      clients.push_back(std::move(inner));
    }
  }
  ShardedEngineOptions options;
  options.merge_deadline = std::chrono::milliseconds(0);
  ShardedEngine engine(&c_, plan_.get(), std::move(clients), options);
  EXPECT_FALSE(engine.with_distance());

  NodeId in_shard1 = kInvalidNode, in_shard0 = kInvalidNode;
  for (NodeId u = 0; u < c_.NumElements(); ++u) {
    if (plan_->ShardOfElement(u) == 1 && in_shard1 == kInvalidNode)
      in_shard1 = u;
    if (plan_->ShardOfElement(u) == 0 && in_shard0 == kInvalidNode)
      in_shard0 = u;
  }
  ASSERT_NE(in_shard1, kInvalidNode);
  ASSERT_NE(in_shard0, kInvalidNode);

  BatchRequest wants_plain_shard;
  wants_plain_shard.want_distances = true;
  wants_plain_shard.pairs = {{in_shard0, in_shard1}};
  auto refused = engine.Batch(std::move(wants_plain_shard));
  EXPECT_TRUE(refused.status().IsUnsupported()) << refused.status();

  // Same-shard distance traffic on a distance-capable shard is fine.
  BatchRequest confined;
  confined.want_distances = true;
  confined.pairs = {{in_shard0, in_shard0}};
  auto allowed = engine.Batch(std::move(confined));
  ASSERT_TRUE(allowed.ok()) << allowed.status();
  EXPECT_TRUE(allowed->status.ok()) << allowed->status;

  // Plain batches through the downgraded shard still answer exactly.
  BatchRequest plain = FullMatrixRequest(false);
  std::vector<NodePair> pairs = plain.pairs;
  auto response = engine.Batch(std::move(plain));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->status.ok()) << response->status;
  ExpectTypedDegradation(*response, pairs, *closure_, false, "plain_facade");
}

TEST_F(ShardedFaultFixture, SubmitAfterShutdownIsFailedPrecondition) {
  auto engine = MakeEngine(std::chrono::milliseconds(0));
  engine->Shutdown();
  Status refused = engine->SubmitBatch(
      FullMatrixRequest(false),
      [](ShardedBatchResponse) { ADD_FAILURE() << "on_done after shutdown"; });
  EXPECT_TRUE(refused.IsFailedPrecondition()) << refused;
  // Idempotent: a second Shutdown (and the destructor's) is a no-op.
  engine->Shutdown();
}

TEST_F(ShardedFaultFixture, PathQueriesMatchTheSingleEngine) {
  // The sharded path adapter (shard-local expansion + one route hop)
  // against the whole-collection single engine, count semantics.
  Collection whole = ChainCollection(9, 2, 3);
  IndexBuildOptions build_options;
  auto single = BuildIndex(&whole, build_options);
  ASSERT_TRUE(single.ok()) << single.status();
  QueryEngine reference = QueryEngine::ForIndex(*single);

  auto engine = MakeEngine(std::chrono::milliseconds(0));
  for (const char* expression :
       {"//article//section", "//article//article", "//article//cite"}) {
    PathQueryRequest request;
    request.expression = expression;
    request.count_only = true;
    auto sharded = engine->Query(request);
    ASSERT_TRUE(sharded.ok()) << expression << ": " << sharded.status();
    ASSERT_TRUE(sharded->result.ok()) << expression << ": "
                                      << sharded->result.status();
    auto expected = reference.Query(request);
    ASSERT_TRUE(expected.ok()) << expression << ": " << expected.status();
    EXPECT_EQ(sharded->result->count, expected->count) << expression;
  }
}

// ---- swap-churn stress ----

TEST_F(ShardedFaultFixture, SwapChurnKeepsEveryAnswerVersionConsistent) {
  ShardedEngineOptions options;
  options.threads_per_shard = 2;
  options.merge_deadline = std::chrono::milliseconds(0);
  ShardedEngine engine(&c_, plan_.get(), options);

  // Every snapshot ever published per shard. Inserted BEFORE Swap so an
  // answer can never report a version the set does not yet contain. All
  // snapshots freeze the same shard cover, so the matrix any version
  // serves is the closure's — "validate against the matrix of the
  // reported versions" and "validate against the closure" coincide,
  // which is exactly what makes the churn safe to run against live
  // clients.
  std::mutex published_mu;
  std::vector<std::set<uint64_t>> published(plan_->num_shards);
  for (size_t s = 0; s < plan_->num_shards; ++s) {
    published[s].insert(engine.client(s).snapshot_version());
  }

  std::atomic<bool> stop{false};
  std::thread swapper([&] {
    size_t round = 0;
    while (!stop.load()) {
      size_t s = round++ % plan_->num_shards;
      auto snapshot = BackendSnapshot::OfIndex(plan_->indexes[s], tags_);
      {
        std::lock_guard<std::mutex> lock(published_mu);
        published[s].insert(snapshot->version());
      }
      ASSERT_TRUE(engine.client(s).Swap(std::move(snapshot)).ok());
      std::this_thread::yield();
    }
  });

  const auto n = static_cast<NodeId>(c_.NumElements());
  std::atomic<size_t> failures{0};
  std::vector<std::thread> clients;
  for (size_t t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      Rng rng(t * 7717 + 5);
      for (int round = 0; round < 40; ++round) {
        BatchRequest request;
        request.want_distances = true;
        for (size_t i = 0; i < 64; ++i) {
          request.pairs.push_back({static_cast<NodeId>(rng.NextBounded(n)),
                                   static_cast<NodeId>(rng.NextBounded(n))});
        }
        std::vector<NodePair> pairs = request.pairs;
        auto response = engine.Batch(std::move(request));
        if (!response.ok() || !response->status.ok()) {
          ++failures;
          continue;
        }
        for (size_t i = 0; i < pairs.size(); ++i) {
          const auto [u, v] = pairs[i];
          if (response->batch.reachable[i] != closure_->IsReachable(u, v) ||
              response->batch.distances[i] != closure_->Distance(u, v)) {
            ++failures;
          }
        }
        std::lock_guard<std::mutex> lock(published_mu);
        for (size_t s = 0; s < response->shard_versions.size(); ++s) {
          if (response->shard_versions[s] != 0 &&
              published[s].count(response->shard_versions[s]) == 0) {
            ++failures;
          }
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  stop.store(true);
  swapper.join();
  EXPECT_EQ(failures.load(), 0u)
      << "answers or versions diverged under swap churn";
  EXPECT_EQ(engine.Stats().partial_batches, 0u);
}

}  // namespace
}  // namespace hopi::engine
