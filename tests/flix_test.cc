#include <gtest/gtest.h>

#include "datagen/inex.h"
#include "datagen/xmark.h"
#include "flix/flix.h"
#include "graph/traversal.h"
#include "test_util.h"

namespace hopi::flix {
namespace {

using collection::Collection;

/// Mixed collection: isolated tree docs (INEX-like) + linked clusters.
Collection MixedCollection() {
  Collection c;
  // Three isolated pure-tree documents.
  for (int i = 0; i < 3; ++i) {
    collection::DocId d = c.AddDocument("tree" + std::to_string(i) + ".xml");
    NodeId r = c.AddElement(d, "r");
    NodeId s = c.AddElement(d, "s", r);
    c.AddElement(d, "t", s);
    c.AddElement(d, "u", r);
  }
  // A small linked pair (closure tier).
  collection::DocId a = c.AddDocument("a.xml");
  NodeId ar = c.AddElement(a, "r");
  NodeId acite = c.AddElement(a, "cite", ar);
  collection::DocId b = c.AddDocument("b.xml");
  NodeId br = c.AddElement(b, "r");
  c.AddElement(b, "x", br);
  c.AddLink(acite, br);
  return c;
}

TEST(FlixTest, TierAssignment) {
  Collection c = MixedCollection();
  auto flix = FlixIndex::Build(c);
  ASSERT_TRUE(flix.ok());
  EXPECT_EQ(flix->stats().components, 4u);  // 3 trees + 1 pair
  EXPECT_EQ(flix->stats().tree_docs, 3u);
  EXPECT_EQ(flix->stats().closure_components, 1u);
  EXPECT_EQ(flix->stats().hopi_components, 0u);
  EXPECT_EQ(flix->TierOf(c.RootOf(0)), Tier::kTree);
  EXPECT_EQ(flix->TierOf(c.RootOf(3)), Tier::kClosure);
}

TEST(FlixTest, SmallClosureBudgetForcesHopiTier) {
  Collection c = MixedCollection();
  FlixOptions options;
  options.closure_tier_max_connections = 2;  // pair component exceeds this
  auto flix = FlixIndex::Build(c, options);
  ASSERT_TRUE(flix.ok());
  EXPECT_EQ(flix->stats().hopi_components, 1u);
  EXPECT_EQ(flix->stats().closure_components, 0u);
  EXPECT_GT(flix->stats().hopi_cover_entries, 0u);
}

TEST(FlixTest, ReachabilityMatchesGraphAcrossAllTiers) {
  Collection c = MixedCollection();
  FlixOptions small;
  small.closure_tier_max_connections = 2;  // force a HOPI component too
  for (const FlixOptions& options : {FlixOptions{}, small}) {
    auto flix = FlixIndex::Build(c, options);
    ASSERT_TRUE(flix.ok());
    for (NodeId u = 0; u < c.NumElements(); ++u) {
      std::vector<NodeId> reach = ReachableFrom(c.ElementGraph(), u);
      for (NodeId v = 0; v < c.NumElements(); ++v) {
        bool expected =
            u == v || std::binary_search(reach.begin(), reach.end(), v);
        EXPECT_EQ(flix->IsReachable(u, v), expected) << u << "->" << v;
      }
    }
  }
}

TEST(FlixTest, DistancesExactInEveryTier) {
  Collection c = MixedCollection();
  FlixOptions options;
  options.cover.with_distance = true;
  options.closure_tier_max_connections = 2;  // HOPI tier for the pair
  auto flix = FlixIndex::Build(c, options);
  ASSERT_TRUE(flix.ok());
  for (NodeId u = 0; u < c.NumElements(); ++u) {
    std::vector<uint32_t> bfs = BfsDistances(c.ElementGraph(), u);
    for (NodeId v = 0; v < c.NumElements(); ++v) {
      auto d = flix->Distance(u, v);
      if (bfs[v] == kUnreachable) {
        EXPECT_FALSE(d.has_value()) << u << "->" << v;
      } else {
        ASSERT_TRUE(d.has_value()) << u << "->" << v;
        EXPECT_EQ(*d, bfs[v]) << u << "->" << v;
      }
    }
  }
}

TEST(FlixTest, InexCollectionIsAllTreeTier) {
  // The INEX case from the paper: no links anywhere, HOPI stores ~2
  // entries/node for nothing — FliX serves it from interval labels.
  Collection c;
  datagen::InexConfig config;
  config.num_docs = 6;
  config.mean_elements_per_doc = 60;
  config.intra_ref_prob = 0.0;  // pure trees
  ASSERT_TRUE(datagen::GenerateInexCollection(config, &c).ok());
  auto flix = FlixIndex::Build(c);
  ASSERT_TRUE(flix.ok());
  EXPECT_EQ(flix->stats().tree_docs, 6u);
  EXPECT_EQ(flix->stats().hopi_components, 0u);
  EXPECT_EQ(flix->stats().closure_components, 0u);
  // Spot-check reachability within one document.
  NodeId root = c.RootOf(0);
  for (NodeId e : c.ElementsOf(0)) {
    EXPECT_TRUE(flix->IsReachable(root, e));
  }
}

TEST(FlixTest, DblpCollectionMixesTiers) {
  Collection c = hopi::testing::SmallDblp(60, 201);
  FlixOptions options;
  options.closure_tier_max_connections = 500;
  auto flix = FlixIndex::Build(c, options);
  ASSERT_TRUE(flix.ok());
  // The big citation component lands in HOPI; uncited standalone pubs may
  // be tree or closure tier.
  EXPECT_GE(flix->stats().hopi_components, 1u);
  // Full reachability cross-check against BFS on a sample.
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(c.NumElements()));
    NodeId v = static_cast<NodeId>(rng.NextBounded(c.NumElements()));
    EXPECT_EQ(flix->IsReachable(u, v),
              hopi::IsReachable(c.ElementGraph(), u, v));
  }
}

TEST(FlixTest, XmarkAllLinkedGoesHopi) {
  Collection c;
  datagen::XmarkConfig config;
  config.num_items = 40;
  config.num_people = 25;
  config.num_auctions = 30;
  ASSERT_TRUE(datagen::GenerateXmarkCollection(config, &c).ok());
  FlixOptions options;
  options.closure_tier_max_connections = 100;
  auto flix = FlixIndex::Build(c, options);
  ASSERT_TRUE(flix.ok());
  EXPECT_GE(flix->stats().hopi_components, 1u);
}

TEST(TierNameTest, AllNamed) {
  EXPECT_STREQ(TierName(Tier::kTree), "tree");
  EXPECT_STREQ(TierName(Tier::kClosure), "closure");
  EXPECT_STREQ(TierName(Tier::kHopi), "hopi");
}

}  // namespace
}  // namespace hopi::flix
