#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "engine/backends.h"
#include "engine/engine.h"
#include "engine/label_cache.h"
#include "hopi/build.h"
#include "query/path_query.h"
#include "test_util.h"
#include "twohop/join_kernel.h"

namespace hopi::engine {
namespace {

using collection::Collection;

/// One distance-aware index over a small DBLP-like collection, exposed
/// through all five backends (the mapped stores are round-tripped
/// through actual v3 and v4 files, so this suite also proves both
/// on-disk formats preserve every query shape).
class BackendParityFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    c_ = hopi::testing::SmallDblp(40, 5);
    IndexBuildOptions options;
    options.with_distance = true;
    auto index = BuildIndex(&c_, options);
    ASSERT_TRUE(index.ok()) << index.status();
    index_ = std::make_unique<HopiIndex>(std::move(index).value());
    store_ = std::make_unique<storage::LinLoutStore>(
        storage::LinLoutStore::FromCover(index_->cover(), true));
    closure_ = std::make_unique<TransitiveClosureIndex>(
        TransitiveClosureIndex::Build(c_.ElementGraph(), true));
    store_path_ = ::testing::TempDir() + "hopi_engine_parity.bin";
    ASSERT_TRUE(store_->WriteToFile(store_path_).ok());
    auto mapped = storage::MappedLinLoutStore::Open(store_path_);
    ASSERT_TRUE(mapped.ok()) << mapped.status();
    mapped_store_ = std::make_unique<storage::MappedLinLoutStore>(
        std::move(mapped).value());
    // The same cover as a block-compressed v4 file. Tiny blocks force a
    // multi-block layout even on this test-sized cover, so block
    // routing and the cluster split actually get exercised.
    v4_path_ = ::testing::TempDir() + "hopi_engine_parity_v4.bin";
    storage::StoreWriteOptions v4_options;
    v4_options.compress.target_block_bytes = 256;
    v4_options.compress.cluster_split_bytes = 64;
    ASSERT_TRUE(store_->WriteToFile(v4_path_, v4_options).ok());
    auto mapped_v4 = storage::MappedLinLoutStore::Open(v4_path_);
    ASSERT_TRUE(mapped_v4.ok()) << mapped_v4.status();
    mapped_v4_store_ = std::make_unique<storage::MappedLinLoutStore>(
        std::move(mapped_v4).value());
    ASSERT_TRUE(mapped_v4_store_->compressed());
    backends_.push_back(std::make_unique<HopiIndexBackend>(*index_));
    backends_.push_back(std::make_unique<LinLoutBackend>(*store_));
    backends_.push_back(std::make_unique<ClosureBackend>(*closure_, true));
    backends_.push_back(std::make_unique<MappedLinLoutBackend>(*mapped_store_));
    backends_.push_back(
        std::make_unique<MappedLinLoutBackend>(*mapped_v4_store_));
  }

  void TearDown() override {
    std::remove(store_path_.c_str());
    std::remove(v4_path_.c_str());
  }

  Collection c_;
  std::unique_ptr<HopiIndex> index_;
  std::unique_ptr<storage::LinLoutStore> store_;
  std::unique_ptr<TransitiveClosureIndex> closure_;
  std::unique_ptr<storage::MappedLinLoutStore> mapped_store_;
  std::unique_ptr<storage::MappedLinLoutStore> mapped_v4_store_;
  std::string store_path_;
  std::string v4_path_;
  std::vector<std::unique_ptr<ReachabilityBackend>> backends_;
};

TEST_F(BackendParityFixture, ReachabilityAndDistanceAgree) {
  Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(c_.NumElements()));
    NodeId v = static_cast<NodeId>(rng.NextBounded(c_.NumElements()));
    bool expect_reach = backends_[0]->IsReachable(u, v);
    auto expect_dist = backends_[0]->Distance(u, v);
    for (size_t b = 1; b < backends_.size(); ++b) {
      EXPECT_EQ(backends_[b]->IsReachable(u, v), expect_reach)
          << backends_[b]->Name() << " " << u << "->" << v;
      EXPECT_EQ(backends_[b]->Distance(u, v), expect_dist)
          << backends_[b]->Name() << " " << u << "->" << v;
    }
  }
}

TEST_F(BackendParityFixture, AxisEnumerationAgrees) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(c_.NumElements()));
    auto expect_desc = backends_[0]->Descendants(u);
    auto expect_anc = backends_[0]->Ancestors(u);
    for (size_t b = 1; b < backends_.size(); ++b) {
      EXPECT_EQ(backends_[b]->Descendants(u), expect_desc)
          << backends_[b]->Name() << " node " << u;
      EXPECT_EQ(backends_[b]->Ancestors(u), expect_anc)
          << backends_[b]->Name() << " node " << u;
    }
  }
}

TEST_F(BackendParityFixture, DefaultTestConnectionsMatchesScalar) {
  Rng rng(17);
  std::vector<NodePair> pairs;
  for (int i = 0; i < 200; ++i) {
    pairs.push_back({static_cast<NodeId>(rng.NextBounded(c_.NumElements())),
                     static_cast<NodeId>(rng.NextBounded(c_.NumElements()))});
  }
  for (const auto& backend : backends_) {
    std::vector<bool> bulk = backend->TestConnections(pairs);
    ASSERT_EQ(bulk.size(), pairs.size());
    for (size_t i = 0; i < pairs.size(); ++i) {
      EXPECT_EQ(bulk[i],
                backend->IsReachable(pairs[i].first, pairs[i].second));
    }
  }
}

TEST_F(BackendParityFixture, PathQueryParityAcrossBackends) {
  query::TagIndex tags(c_);
  for (const char* q : {"//inproceedings//cite//title",
                        "//inproceedings//author", "//abstract//sentence"}) {
    auto expr = query::PathExpression::Parse(q);
    ASSERT_TRUE(expr.ok());
    auto expect = query::EvaluatePath(*expr, *backends_[0], c_, tags);
    ASSERT_TRUE(expect.ok());
    auto expect_count = query::CountPathResults(*expr, *backends_[0], c_, tags);
    ASSERT_TRUE(expect_count.ok());
    for (size_t b = 1; b < backends_.size(); ++b) {
      auto matches = query::EvaluatePath(*expr, *backends_[b], c_, tags);
      ASSERT_TRUE(matches.ok());
      ASSERT_EQ(matches->size(), expect->size()) << backends_[b]->Name();
      for (size_t i = 0; i < matches->size(); ++i) {
        EXPECT_EQ((*matches)[i].bindings, (*expect)[i].bindings)
            << backends_[b]->Name() << " " << q << " match " << i;
        EXPECT_EQ((*matches)[i].total_distance, (*expect)[i].total_distance);
        EXPECT_DOUBLE_EQ((*matches)[i].score, (*expect)[i].score);
      }
      auto count = query::CountPathResults(*expr, *backends_[b], c_, tags);
      ASSERT_TRUE(count.ok());
      EXPECT_EQ(*count, *expect_count) << backends_[b]->Name() << " " << q;
    }
  }
}

TEST_F(BackendParityFixture, DeprecatedShimMatchesBackendOverload) {
  query::TagIndex tags(c_);
  auto expr = query::PathExpression::Parse("//inproceedings//cite");
  ASSERT_TRUE(expr.ok());
  auto via_shim = query::EvaluatePath(*expr, *index_, tags);
  auto via_backend = query::EvaluatePath(*expr, *backends_[0], c_, tags);
  ASSERT_TRUE(via_shim.ok() && via_backend.ok());
  ASSERT_EQ(via_shim->size(), via_backend->size());
  for (size_t i = 0; i < via_shim->size(); ++i) {
    EXPECT_EQ((*via_shim)[i].bindings, (*via_backend)[i].bindings);
  }
  auto count_shim = query::CountPathResults(*expr, *index_, tags);
  auto count_backend = query::CountPathResults(*expr, *backends_[0], c_, tags);
  ASSERT_TRUE(count_shim.ok() && count_backend.ok());
  EXPECT_EQ(*count_shim, *count_backend);
}

// ---- the facade ----

class QueryEngineFixture : public BackendParityFixture {
 protected:
  void SetUp() override {
    BackendParityFixture::SetUp();
    engines_.push_back(
        std::make_unique<QueryEngine>(QueryEngine::ForIndex(*index_)));
    engines_.push_back(
        std::make_unique<QueryEngine>(QueryEngine::ForStore(c_, *store_)));
    engines_.push_back(std::make_unique<QueryEngine>(
        QueryEngine::ForClosure(c_, *closure_, true)));
    engines_.push_back(std::make_unique<QueryEngine>(
        QueryEngine::ForMappedStore(c_, *mapped_store_)));
    engines_.push_back(std::make_unique<QueryEngine>(
        QueryEngine::ForMappedStore(c_, *mapped_v4_store_)));
  }

  std::vector<NodePair> RandomPairs(size_t n, uint64_t seed) const {
    Rng rng(seed);
    std::vector<NodePair> pairs;
    for (size_t i = 0; i < n; ++i) {
      pairs.push_back(
          {static_cast<NodeId>(rng.NextBounded(c_.NumElements())),
           static_cast<NodeId>(rng.NextBounded(c_.NumElements()))});
    }
    return pairs;
  }

  std::vector<std::unique_ptr<QueryEngine>> engines_;
};

TEST_F(QueryEngineFixture, ScalarReachabilityMatchesBackend) {
  for (const auto& engine : engines_) {
    ReachabilityResponse r =
        engine->Reachability({.source = 0, .target = 1, .want_distance = true});
    EXPECT_EQ(r.reachable, engine->backend().IsReachable(0, 1));
    if (r.reachable) {
      EXPECT_EQ(r.distance, engine->backend().Distance(0, 1));
    }
  }
}

TEST_F(QueryEngineFixture, BatchMatchesScalarAcrossAllBackends) {
  std::vector<NodePair> pairs = RandomPairs(300, 19);
  // Append duplicates and reflexive probes.
  for (size_t i = 0; i < 100; ++i) pairs.push_back(pairs[i]);
  pairs.push_back({7, 7});
  for (const auto& engine : engines_) {
    BatchResponse r = engine->Batch({.pairs = pairs, .want_distances = true});
    ASSERT_EQ(r.reachable.size(), pairs.size());
    ASSERT_EQ(r.distances.size(), pairs.size());
    for (size_t i = 0; i < pairs.size(); ++i) {
      auto [u, v] = pairs[i];
      EXPECT_EQ(r.reachable[i], engine->backend().IsReachable(u, v))
          << engine->backend().Name() << " " << u << "->" << v;
      EXPECT_EQ(r.distances[i], engine->backend().Distance(u, v))
          << engine->backend().Name() << " " << u << "->" << v;
    }
  }
}

/// Pins the process-wide join kernel for one scope; restores heuristic
/// dispatch on exit so test order cannot leak a forced kernel.
class ScopedJoinKernel {
 public:
  explicit ScopedJoinKernel(twohop::JoinKernel k) {
    twohop::SetForcedJoinKernel(k);
  }
  ~ScopedJoinKernel() {
    twohop::SetForcedJoinKernel(twohop::JoinKernel::kAuto);
  }
};

TEST_F(QueryEngineFixture, AllJoinKernelsAgreeAcrossAllBackends) {
  // The CI matrix forces each kernel via HOPI_JOIN_KERNEL; this is the
  // in-process equivalent: every supported kernel must answer every
  // probe shape identically through all five backends — scalar and
  // batch, reachability and distance — on top of the per-kernel
  // property suite in join_kernel_test.
  std::vector<NodePair> pairs = RandomPairs(400, 23);
  pairs.push_back({3, 3});
  std::vector<bool> golden_reach;
  std::vector<std::optional<uint32_t>> golden_dist;
  {
    ScopedJoinKernel pin(twohop::JoinKernel::kScalar);
    for (auto [u, v] : pairs) {
      golden_reach.push_back(backends_[0]->IsReachable(u, v));
      golden_dist.push_back(backends_[0]->Distance(u, v));
    }
  }
  for (twohop::JoinKernel kernel : twohop::SupportedJoinKernels()) {
    ScopedJoinKernel pin(kernel);
    for (const auto& backend : backends_) {
      for (size_t i = 0; i < pairs.size(); ++i) {
        auto [u, v] = pairs[i];
        EXPECT_EQ(golden_reach[i], backend->IsReachable(u, v))
            << backend->Name() << " kernel " << twohop::JoinKernelName(kernel)
            << " " << u << "->" << v;
        EXPECT_EQ(golden_dist[i], backend->Distance(u, v))
            << backend->Name() << " kernel " << twohop::JoinKernelName(kernel)
            << " " << u << "->" << v;
      }
    }
    for (const auto& engine : engines_) {
      BatchResponse r =
          engine->Batch({.pairs = pairs, .want_distances = true});
      ASSERT_TRUE(r.error.ok());
      for (size_t i = 0; i < pairs.size(); ++i) {
        EXPECT_EQ(golden_reach[i], r.reachable[i])
            << engine->backend().Name() << " kernel "
            << twohop::JoinKernelName(kernel);
        EXPECT_EQ(golden_dist[i], r.distances[i])
            << engine->backend().Name() << " kernel "
            << twohop::JoinKernelName(kernel);
      }
    }
  }
  // Forcing a kernel the host cannot run must degrade, not break: the
  // answers stay correct even when kAVX2 is pinned on a non-AVX2 box.
  ScopedJoinKernel pin(twohop::JoinKernel::kAVX2);
  for (size_t i = 0; i < pairs.size(); ++i) {
    auto [u, v] = pairs[i];
    EXPECT_EQ(golden_reach[i], backends_[0]->IsReachable(u, v));
  }
}

TEST_F(QueryEngineFixture, BatchDedupesRepeatedProbes) {
  QueryEngine& engine = *engines_[1];  // LIN/LOUT store backend
  std::vector<NodePair> pairs;
  for (int rep = 0; rep < 10; ++rep) {
    for (NodeId v = 0; v < 20; ++v) pairs.push_back({0, v});
  }
  BatchResponse r = engine.Batch({.pairs = pairs});
  EXPECT_EQ(r.stats.probes, 200u);
  EXPECT_EQ(r.stats.unique_probes, 20u);
  // Two label fetches per distinct non-reflexive pair (the (0,0) probe
  // needs no labels): LOUT(0) misses once and hits 18 times, each of
  // the 19 LIN(v) sets misses once.
  EXPECT_EQ(r.stats.cache_hits + r.stats.cache_misses, 2u * 19u);
  EXPECT_EQ(r.stats.cache_hits, 18u);  // LOUT(0) reused within the batch
  EXPECT_EQ(r.stats.backend_probes, 0u);
}

TEST_F(QueryEngineFixture, HopiBackendBorrowsLabelsZeroCopy) {
  QueryEngine& engine = *engines_[0];  // in-memory cover backend
  std::vector<NodePair> pairs;
  for (int rep = 0; rep < 10; ++rep) {
    for (NodeId v = 0; v < 20; ++v) pairs.push_back({0, v});
  }
  BatchResponse r = engine.Batch({.pairs = pairs});
  EXPECT_EQ(r.stats.unique_probes, 20u);
  // In-memory labels are borrowed straight from the cover: no cache
  // traffic, no backend probes, two borrows per non-reflexive pair.
  EXPECT_EQ(r.stats.labels_borrowed, 2u * 19u);
  EXPECT_EQ(r.stats.cache_hits + r.stats.cache_misses, 0u);
  EXPECT_EQ(r.stats.backend_probes, 0u);
}

TEST_F(QueryEngineFixture, RepeatedBatchServedFromLabelCache) {
  QueryEngine& engine = *engines_[1];  // LIN/LOUT store backend
  std::vector<NodePair> pairs = RandomPairs(100, 23);
  BatchResponse first = engine.Batch({.pairs = pairs});
  EXPECT_GT(first.stats.cache_misses, 0u);
  BatchResponse second = engine.Batch({.pairs = pairs});
  // Every label set is hot now (cache capacity far exceeds the pool).
  EXPECT_EQ(second.stats.cache_misses, 0u);
  EXPECT_GT(second.stats.cache_hits, 0u);
  EXPECT_EQ(second.reachable, first.reachable);
}

TEST_F(QueryEngineFixture, MappedBackendBorrowsSpansZeroCopy) {
  QueryEngine& engine = *engines_[3];  // mmap-backed store
  std::vector<NodePair> pairs;
  for (int rep = 0; rep < 10; ++rep) {
    for (NodeId v = 0; v < 20; ++v) pairs.push_back({0, v});
  }
  BatchResponse r = engine.Batch({.pairs = pairs});
  EXPECT_EQ(r.stats.unique_probes, 20u);
  // Labels are lent as spans over the file image: no cache traffic, no
  // backend probes, two borrows per non-reflexive unique pair — the
  // same profile as the in-memory cover, straight off disk.
  EXPECT_EQ(r.stats.labels_borrowed, 2u * 19u);
  EXPECT_EQ(r.stats.cache_hits + r.stats.cache_misses, 0u);
  EXPECT_EQ(r.stats.backend_probes, 0u);
  EXPECT_EQ(engine.label_cache().size(), 0u);
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(r.reachable[i],
              engine.backend().IsReachable(pairs[i].first, pairs[i].second));
  }
}

TEST_F(QueryEngineFixture, MappedV4BackendDecodesBlocksThroughCache) {
  QueryEngine& engine = *engines_[4];  // block-compressed mmap store
  std::vector<NodePair> pairs = RandomPairs(200, 37);
  size_t non_reflexive = 0;
  {
    std::vector<NodePair> unique;
    for (const auto& p : pairs) {
      if (std::find(unique.begin(), unique.end(), p) == unique.end()) {
        unique.push_back(p);
        if (p.first != p.second) ++non_reflexive;
      }
    }
  }
  BatchResponse cold = engine.Batch({.pairs = pairs});
  ASSERT_TRUE(cold.error.ok()) << cold.error;
  // Every label fetch takes exactly one route; empty rows are borrowed
  // (the one label a compressed store never decodes), the rest flow
  // through the block cache.
  EXPECT_EQ(cold.stats.cache_hits + cold.stats.cache_misses +
                cold.stats.labels_borrowed,
            2u * non_reflexive);
  EXPECT_GT(cold.stats.blocks_decoded, 0u);
  EXPECT_LE(cold.stats.blocks_decoded, cold.stats.cache_misses);
  EXPECT_EQ(cold.stats.backend_probes, 0u);

  LabelCache::Stats stats = engine.CacheStats();
  EXPECT_EQ(stats.blocks_decoded, cold.stats.blocks_decoded);
  EXPECT_GT(stats.bytes_resident, 0u);
  EXPECT_LE(stats.bytes_resident, stats.byte_budget);
  EXPECT_GT(stats.decode_nanos, 0u);

  // Warm pass: everything is resident (default budget far exceeds this
  // cover), so no block is decoded twice and answers are bit-identical.
  BatchResponse warm = engine.Batch({.pairs = pairs});
  EXPECT_EQ(warm.stats.blocks_decoded, 0u);
  EXPECT_EQ(warm.stats.cache_misses, 0u);
  EXPECT_EQ(warm.reachable, cold.reachable);
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(cold.reachable[i],
              engine.backend().IsReachable(pairs[i].first, pairs[i].second));
  }
}

TEST_F(QueryEngineFixture, LabelLessBackendFallsBackToDirectProbes) {
  QueryEngine& engine = *engines_[2];  // closure backend: no labels
  std::vector<NodePair> pairs = RandomPairs(50, 29);
  pairs.push_back(pairs[0]);
  BatchResponse r = engine.Batch({.pairs = pairs});
  EXPECT_EQ(r.stats.cache_hits, 0u);
  EXPECT_EQ(r.stats.cache_misses, 0u);
  EXPECT_EQ(r.stats.backend_probes, r.stats.unique_probes);
  EXPECT_LT(r.stats.unique_probes, r.stats.probes);
}

TEST_F(QueryEngineFixture, QueryMatchesFreeFunctions) {
  query::TagIndex tags(c_);
  auto expr = query::PathExpression::Parse("//inproceedings//cite//title");
  ASSERT_TRUE(expr.ok());
  for (const auto& engine : engines_) {
    auto response = engine->Query({.expression = "//inproceedings//cite//title"});
    ASSERT_TRUE(response.ok()) << response.status();
    auto expect =
        query::EvaluatePath(*expr, engine->backend(), c_, tags);
    ASSERT_TRUE(expect.ok());
    ASSERT_EQ(response->matches.size(), expect->size());
    EXPECT_EQ(response->count, expect->size());
    for (size_t i = 0; i < expect->size(); ++i) {
      EXPECT_EQ(response->matches[i].bindings, (*expect)[i].bindings);
    }

    auto count = engine->Query(
        {.expression = "//inproceedings//cite//title", .count_only = true});
    ASSERT_TRUE(count.ok());
    auto expect_count =
        query::CountPathResults(*expr, engine->backend(), c_, tags);
    ASSERT_TRUE(expect_count.ok());
    EXPECT_EQ(count->count, *expect_count);
    EXPECT_TRUE(count->matches.empty());
  }
}

TEST_F(QueryEngineFixture, QueryRejectsMalformedExpression) {
  auto response = engines_[0]->Query({.expression = "//a/b"});
  EXPECT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsInvalidArgument());
}

TEST_F(QueryEngineFixture, SimilarityOptionExpandsApproximateSteps) {
  QueryEngineOptions options;
  options.similarity = query::TagSimilarity::DblpDefaults();
  QueryEngine engine = QueryEngine::ForIndex(*index_, std::move(options));
  auto exact = engine.Query({.expression = "//book//author"});
  auto approx = engine.Query({.expression = "//~book//author"});
  ASSERT_TRUE(exact.ok() && approx.ok());
  EXPECT_GE(approx->count, exact->count);
}

// ---- the byte-budgeted block cache ----

/// A one-row block for node `key` whose single entry points at
/// `center` — the copy-route currency, and the smallest block there is.
LabelBlock MakeBlock(NodeId key, NodeId center) {
  auto block = std::make_shared<storage::DecodedBlock>();
  block->entries = {{center, 1}};
  block->row_keys = {key};
  block->row_begin = {0, 1};
  return block;
}

/// Byte charge of one MakeBlock() block (they are all the same shape).
size_t OneBlockBytes() { return MakeBlock(0, 0)->ApproxBytes(); }

uint64_t OutKey(NodeId node) {
  return LabelCache::KeyFor(LabelCache::Side::kOut, node);
}
uint64_t InKey(NodeId node) {
  return LabelCache::KeyFor(LabelCache::Side::kIn, node);
}

TEST(LabelCacheTest, HitsAndMisses) {
  LabelCache cache(1 << 20);
  EXPECT_EQ(cache.Get(OutKey(1)), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  cache.Put(OutKey(1), MakeBlock(1, 42));
  LabelBlock hit = cache.Get(OutKey(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->Row(0)[0].center, 42u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.bytes_resident(), OneBlockBytes());
}

TEST(LabelCacheTest, SidesAndBlockKeysAreDistinct) {
  LabelCache cache(1 << 20);
  cache.Put(OutKey(5), MakeBlock(5, 1));
  EXPECT_EQ(cache.Get(InKey(5)), nullptr);
  cache.Put(InKey(5), MakeBlock(5, 2));
  EXPECT_EQ(cache.Get(OutKey(5))->Row(0)[0].center, 1u);
  EXPECT_EQ(cache.Get(InKey(5))->Row(0)[0].center, 2u);
  // Block keys live in their own namespace: a block handle can never
  // collide with a copy-route key (bit 63 separates them).
  EXPECT_EQ(cache.Get(LabelCache::BlockKeyFor(OutKey(5))), nullptr);
  cache.Put(LabelCache::BlockKeyFor(0), MakeBlock(5, 3));
  EXPECT_EQ(cache.Get(LabelCache::BlockKeyFor(0))->Row(0)[0].center, 3u);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(LabelCacheTest, EvictsLeastRecentlyUsedWhenOverBudget) {
  LabelCache cache(3 * OneBlockBytes());
  cache.Put(OutKey(1), MakeBlock(1, 1));
  cache.Put(OutKey(2), MakeBlock(2, 2));
  cache.Put(OutKey(3), MakeBlock(3, 3));
  EXPECT_EQ(cache.bytes_resident(), 3 * OneBlockBytes());
  // Touch 1 so 2 becomes the LRU entry.
  ASSERT_NE(cache.Get(OutKey(1)), nullptr);
  cache.Put(OutKey(4), MakeBlock(4, 4));
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.Get(OutKey(2)), nullptr);  // evicted
  EXPECT_NE(cache.Get(OutKey(1)), nullptr);
  EXPECT_NE(cache.Get(OutKey(3)), nullptr);
  EXPECT_NE(cache.Get(OutKey(4)), nullptr);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_LE(cache.bytes_resident(), cache.byte_budget());
}

TEST(LabelCacheTest, PutOverwritesInPlace) {
  LabelCache cache(1 << 20);
  cache.Put(OutKey(1), MakeBlock(1, 1));
  cache.Put(OutKey(1), MakeBlock(1, 9));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.bytes_resident(), OneBlockBytes());
  EXPECT_EQ(cache.Get(OutKey(1))->Row(0)[0].center, 9u);
}

TEST(LabelCacheTest, ZeroBudgetCachesNothingButPinsStillWork) {
  // Budget 0 is legal: every insert is immediately evicted, yet the
  // caller's shared_ptr pin keeps the returned block usable — the
  // engine stays correct, just cold.
  LabelCache cache(0);
  LabelBlock pinned = cache.Put(OutKey(1), MakeBlock(1, 7));
  ASSERT_NE(pinned, nullptr);
  EXPECT_EQ(pinned->Row(0)[0].center, 7u);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes_resident(), 0u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.Get(OutKey(1)), nullptr);
}

TEST(LabelCacheTest, EvictionDoesNotInvalidatePinnedBlocks) {
  LabelCache cache(OneBlockBytes());  // room for exactly one block
  LabelBlock pinned = cache.Put(OutKey(1), MakeBlock(1, 11));
  cache.Put(OutKey(2), MakeBlock(2, 22));  // evicts block 1
  EXPECT_EQ(cache.Get(OutKey(1)), nullptr);
  // The evicted block is alive for as long as the pin is held: this is
  // the ownership rule PinnedLabel relies on mid-join.
  ASSERT_NE(pinned, nullptr);
  EXPECT_EQ(pinned->Row(0)[0].center, 11u);
  EXPECT_EQ(pinned.use_count(), 1);  // cache reference is gone
}

TEST(LabelCacheTest, RowMemoServesPinnedRowsWithoutBlockLookups) {
  LabelCache cache(1 << 20);
  LabelBlock block = cache.Put(LabelCache::BlockKeyFor(7), MakeBlock(3, 99));
  cache.MemoRow(OutKey(3), block, 0);
  uint32_t row = 123;
  LabelBlock hit = cache.GetRow(OutKey(3), &row);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(row, 0u);
  EXPECT_EQ(hit->Row(row)[0].center, 99u);
  EXPECT_EQ(hit.get(), block.get());  // same block, now pinned twice
  EXPECT_EQ(cache.hits(), 1u);        // a memo hit is a cache hit
  // A key never memoized misses without touching the miss counter —
  // the block route that follows does the accounting.
  EXPECT_EQ(cache.GetRow(OutKey(4), &row), nullptr);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(LabelCacheTest, RowMemoHoldsNoStrongReference) {
  LabelCache cache(OneBlockBytes());  // room for exactly one block
  LabelBlock block = cache.Put(LabelCache::BlockKeyFor(1), MakeBlock(1, 11));
  cache.MemoRow(OutKey(1), block, 0);
  cache.Put(LabelCache::BlockKeyFor(2), MakeBlock(2, 22));  // evicts block 1
  // The memo's weak reference neither kept the evicted block resident
  // nor dangles: once the last pin drops, the memo entry just misses.
  EXPECT_EQ(block.use_count(), 1);
  uint32_t row = 0;
  ASSERT_NE(cache.GetRow(OutKey(1), &row), nullptr);  // pin still alive
  block = nullptr;
  EXPECT_EQ(cache.GetRow(OutKey(1), &row), nullptr);  // expired, dropped
}

TEST(LabelCacheTest, DecodeAccountingFlowsIntoStats) {
  LabelCache cache(1 << 20);
  cache.RecordDecode(1500);
  cache.RecordDecode(500);
  LabelCache::Stats stats = cache.StatsSnapshot();
  EXPECT_EQ(stats.blocks_decoded, 2u);
  EXPECT_EQ(stats.decode_nanos, 2000u);
  EXPECT_EQ(stats.byte_budget, size_t{1} << 20);
}

TEST(LabelCacheTest, ClearResetsEntriesButKeepsCounters) {
  LabelCache cache(1 << 20);
  cache.Put(OutKey(1), MakeBlock(1, 1));
  ASSERT_NE(cache.Get(OutKey(1)), nullptr);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes_resident(), 0u);
  EXPECT_EQ(cache.Get(OutKey(1)), nullptr);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST_F(QueryEngineFixture, SmallCacheEvictsUnderPressure) {
  QueryEngineOptions options;
  options.label_cache_bytes = 4 * OneBlockBytes();
  QueryEngine engine = QueryEngine::ForStore(c_, *store_, std::move(options));
  // Probe far more distinct nodes than the budget holds; answers must
  // stay correct while the cache churns.
  std::vector<NodePair> pairs = RandomPairs(200, 31);
  BatchResponse r = engine.Batch({.pairs = pairs});
  EXPECT_GT(engine.label_cache().evictions(), 0u);
  EXPECT_LE(engine.label_cache().bytes_resident(),
            engine.label_cache().byte_budget());
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(r.reachable[i],
              engine.backend().IsReachable(pairs[i].first, pairs[i].second));
  }
}

TEST_F(QueryEngineFixture, TinyCacheStillAnswersCompressedStoreCorrectly) {
  // Same pressure test against the v4 block route: a budget smaller
  // than one decoded block means every probe decodes cold — the
  // pathological-but-legal configuration the pinning rule exists for.
  QueryEngineOptions options;
  options.label_cache_bytes = 1;
  QueryEngine engine =
      QueryEngine::ForMappedStore(c_, *mapped_v4_store_, std::move(options));
  std::vector<NodePair> pairs = RandomPairs(100, 41);
  BatchResponse r = engine.Batch({.pairs = pairs});
  ASSERT_TRUE(r.error.ok()) << r.error;
  EXPECT_EQ(engine.label_cache().size(), 0u);
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(r.reachable[i],
              engine.backend().IsReachable(pairs[i].first, pairs[i].second));
  }
}

}  // namespace
}  // namespace hopi::engine
