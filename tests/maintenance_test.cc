// Incremental maintenance tests (paper Sec 6): after every operation the
// index cover must be exactly the closure of the mutated element graph —
// verified with the exhaustive oracle.
#include <gtest/gtest.h>

#include "datagen/inex.h"
#include "hopi/build.h"
#include "test_util.h"
#include "twohop/builder.h"
#include "xml/parser.h"

namespace hopi {
namespace {

using collection::Collection;
using collection::DocId;

HopiIndex MustBuild(Collection* c, bool with_distance = false) {
  IndexBuildOptions options;
  options.partition.max_connections = 3000;
  options.with_distance = with_distance;
  auto index = BuildIndex(c, options);
  EXPECT_TRUE(index.ok());
  return std::move(index).value();
}

void ExpectExact(const HopiIndex& index, const Collection& c,
                 bool distances = false) {
  Status s = twohop::ValidateCover(index.cover(), c.ElementGraph(), distances);
  EXPECT_TRUE(s.ok()) << s;
}

TEST(InsertLinkTest, SingleLinkCoversNewConnections) {
  Collection c = testing::SmallDblp(30, 1);
  HopiIndex index = MustBuild(&c);
  // Link two previously unrelated document roots.
  NodeId u = c.ElementsOf(3).back();
  NodeId v = c.RootOf(17);
  if (!index.IsReachable(u, v)) {
    ASSERT_TRUE(index.InsertLink(u, v).ok());
    EXPECT_TRUE(index.IsReachable(u, v));
    ExpectExact(index, c);
  }
}

TEST(InsertLinkTest, SeriesOfLinksStaysExact) {
  Collection c = testing::SmallDblp(25, 2);
  HopiIndex index = MustBuild(&c);
  Rng rng(5);
  int inserted = 0;
  for (int i = 0; i < 8; ++i) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(c.NumElements()));
    NodeId v = static_cast<NodeId>(rng.NextBounded(c.NumElements()));
    if (u == v || c.ElementGraph().HasEdge(u, v)) continue;
    ASSERT_TRUE(index.InsertLink(u, v).ok());
    ++inserted;
  }
  ASSERT_GT(inserted, 0);
  ExpectExact(index, c);
}

TEST(InsertLinkTest, DistanceAwareInsertExact) {
  Collection c = testing::SmallDblp(20, 3);
  HopiIndex index = MustBuild(&c, /*with_distance=*/true);
  Rng rng(7);
  for (int i = 0; i < 5; ++i) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(c.NumElements()));
    NodeId v = static_cast<NodeId>(rng.NextBounded(c.NumElements()));
    if (u == v || c.ElementGraph().HasEdge(u, v)) continue;
    ASSERT_TRUE(index.InsertLink(u, v).ok());
  }
  ExpectExact(index, c, /*distances=*/true);
}

TEST(InsertLinkTest, DuplicateRejected) {
  Collection c = testing::SmallDblp(10, 4);
  HopiIndex index = MustBuild(&c);
  ASSERT_FALSE(c.Links().empty());
  collection::Link l = c.Links().front();
  EXPECT_TRUE(index.InsertLink(l.source, l.target).IsInvalidArgument());
}

TEST(InsertDocumentTest, NewDocumentWithLinksBothWays) {
  Collection c = testing::SmallDblp(30, 6);
  HopiIndex index = MustBuild(&c);
  // Ingest a new publication citing two existing ones; an existing pending
  // reference cannot exist here, so also add a link *into* the new doc.
  collection::Ingestor ingestor(&c);
  auto doc = xml::ParseDocument(
      "<inproceedings><title>new</title>"
      "<cite xlink:href=\"pub3.xml\"/><cite xlink:href=\"pub7.xml\"/>"
      "</inproceedings>",
      "pubNew.xml");
  ASSERT_TRUE(doc.ok());
  auto id = ingestor.Ingest(*doc);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(index.InsertDocument(*id).ok());
  ExpectExact(index, c);
  // Now link an old doc to the new one and check again.
  ASSERT_TRUE(index.InsertLink(c.ElementsOf(5).back(), c.RootOf(*id)).ok());
  ExpectExact(index, c);
  EXPECT_TRUE(index.IsReachable(c.RootOf(5), c.RootOf(3)) ||
              !index.IsReachable(c.RootOf(5), c.RootOf(3)));  // smoke
}

TEST(InsertDocumentTest, DistanceAware) {
  Collection c = testing::SmallDblp(20, 8);
  HopiIndex index = MustBuild(&c, true);
  collection::Ingestor ingestor(&c);
  auto doc = xml::ParseDocument(
      "<inproceedings><cite xlink:href=\"pub1.xml\"/></inproceedings>",
      "pubD.xml");
  ASSERT_TRUE(doc.ok());
  auto id = ingestor.Ingest(*doc);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(index.InsertDocument(*id).ok());
  ExpectExact(index, c, true);
}

TEST(SeparationTest, InexDocsAlwaysSeparate) {
  // Paper Sec 7.3: with no inter-document links every document separates.
  Collection c;
  datagen::InexConfig config;
  config.num_docs = 8;
  config.mean_elements_per_doc = 60;
  ASSERT_TRUE(datagen::GenerateInexCollection(config, &c).ok());
  HopiIndex index = MustBuild(&c);
  for (DocId d = 0; d < c.NumDocuments(); ++d) {
    EXPECT_TRUE(index.SeparatesDocumentGraph(d));
  }
}

TEST(SeparationTest, FigureSixTopology) {
  // Paper Fig. 6: doc 6 separates, doc 5 does not.
  // Chain 1..4, plus 1 -> {5,6} -> 9 and 5 -> 8, 6 -> 7 ... simplified to
  // the essential diamond: 1 -> 5 -> 9, 1 -> 6 -> 9 makes neither 5 nor 6
  // separating; removing the 5-branch makes 6 separating.
  Collection c;
  std::vector<NodeId> roots;
  std::vector<NodeId> cites;
  for (int i = 0; i < 4; ++i) {
    DocId d = c.AddDocument("m" + std::to_string(i) + ".xml");
    NodeId r = c.AddElement(d, "r");
    roots.push_back(r);
    cites.push_back(c.AddElement(d, "cite", r));
  }
  // 0 -> 1 -> 3 and 0 -> 2 -> 3 (two parallel routes).
  c.AddLink(cites[0], roots[1]);
  c.AddLink(c.AddElement(0, "cite2", roots[0]), roots[2]);
  c.AddLink(cites[1], roots[3]);
  c.AddLink(cites[2], roots[3]);
  HopiIndex index = MustBuild(&c);
  EXPECT_FALSE(index.SeparatesDocumentGraph(1));  // bypass via 2
  EXPECT_FALSE(index.SeparatesDocumentGraph(2));  // bypass via 1
  EXPECT_TRUE(index.SeparatesDocumentGraph(0));   // no ancestors
  EXPECT_TRUE(index.SeparatesDocumentGraph(3));   // no descendants
}

TEST(DeleteDocumentTest, FastPathExactOnInex) {
  Collection c;
  datagen::InexConfig config;
  config.num_docs = 6;
  config.mean_elements_per_doc = 50;
  ASSERT_TRUE(datagen::GenerateInexCollection(config, &c).ok());
  HopiIndex index = MustBuild(&c);
  DeleteStats stats;
  ASSERT_TRUE(index.DeleteDocument(2, &stats).ok());
  EXPECT_TRUE(stats.separated);
  ExpectExact(index, c);
  // Deleted elements answer nothing.
  for (NodeId e : c.ElementsOf(2)) {
    EXPECT_TRUE(index.Descendants(e).empty());
    EXPECT_TRUE(index.Ancestors(e).empty());
  }
}

TEST(DeleteDocumentTest, SequenceOfDeletionsStaysExact) {
  Collection c = testing::SmallDblp(30, 9);
  HopiIndex index = MustBuild(&c);
  Rng rng(13);
  int fast = 0, general = 0;
  for (int i = 0; i < 6; ++i) {
    DocId d = static_cast<DocId>(rng.NextBounded(c.NumDocuments()));
    if (!c.IsLive(d)) continue;
    DeleteStats stats;
    ASSERT_TRUE(index.DeleteDocument(d, &stats).ok());
    (stats.separated ? fast : general)++;
    ExpectExact(index, c);
  }
  EXPECT_GT(fast + general, 0);
}

TEST(DeleteDocumentTest, HubDeletionTakesGeneralPath) {
  // pub0 in a Zipf citation graph is cited by nearly everyone; deleting a
  // mid-chain hub with both ancestors and descendants and parallel routes
  // exercises Theorem 3.
  Collection c = testing::SmallDblp(40, 10);
  HopiIndex index = MustBuild(&c);
  // Find a non-separating live doc.
  DocId victim = collection::kInvalidDoc;
  for (DocId d = 0; d < c.NumDocuments(); ++d) {
    if (c.IsLive(d) && !index.SeparatesDocumentGraph(d)) {
      victim = d;
      break;
    }
  }
  if (victim == collection::kInvalidDoc) {
    GTEST_SKIP() << "collection had no non-separating document";
  }
  DeleteStats stats;
  ASSERT_TRUE(index.DeleteDocument(victim, &stats).ok());
  EXPECT_FALSE(stats.separated);
  EXPECT_GT(stats.recompute_fraction, 0.0);
  ExpectExact(index, c);
}

TEST(DeleteDocumentTest, DistanceAwareDeletionExact) {
  Collection c = testing::SmallDblp(20, 11);
  HopiIndex index = MustBuild(&c, true);
  Rng rng(17);
  for (int i = 0; i < 3; ++i) {
    DocId d = static_cast<DocId>(rng.NextBounded(c.NumDocuments()));
    if (!c.IsLive(d)) continue;
    ASSERT_TRUE(index.DeleteDocument(d).ok());
    ExpectExact(index, c, true);
  }
}

TEST(DeleteDocumentTest, DeadDocumentRejected) {
  Collection c = testing::SmallDblp(10, 12);
  HopiIndex index = MustBuild(&c);
  ASSERT_TRUE(index.DeleteDocument(4).ok());
  EXPECT_TRUE(index.DeleteDocument(4).IsInvalidArgument());
}

TEST(DeleteLinkTest, RemovingRedundantLinkKeepsEverything) {
  // Two parallel links; deleting one must not lose connections.
  Collection c;
  DocId a = c.AddDocument("a.xml");
  NodeId ar = c.AddElement(a, "r");
  NodeId s1 = c.AddElement(a, "cite", ar);
  NodeId s2 = c.AddElement(a, "cite", ar);
  DocId b = c.AddDocument("b.xml");
  NodeId br = c.AddElement(b, "r");
  c.AddElement(b, "x", br);
  c.AddLink(s1, br);
  c.AddLink(s2, br);
  HopiIndex index = MustBuild(&c);
  ASSERT_TRUE(index.DeleteLink(s1, br).ok());
  ExpectExact(index, c);
  EXPECT_TRUE(index.IsReachable(ar, br));  // still via s2
}

TEST(DeleteLinkTest, RemovingOnlyLinkDisconnects) {
  Collection c;
  DocId a = c.AddDocument("a.xml");
  NodeId ar = c.AddElement(a, "r");
  NodeId s = c.AddElement(a, "cite", ar);
  DocId b = c.AddDocument("b.xml");
  NodeId br = c.AddElement(b, "r");
  NodeId bx = c.AddElement(b, "x", br);
  c.AddLink(s, br);
  HopiIndex index = MustBuild(&c);
  ASSERT_TRUE(index.IsReachable(ar, bx));
  ASSERT_TRUE(index.DeleteLink(s, br).ok());
  EXPECT_FALSE(index.IsReachable(ar, bx));
  ExpectExact(index, c);
  EXPECT_TRUE(index.DeleteLink(s, br).IsNotFound());
}

TEST(DeleteLinkTest, RandomLinkDeletionsStayExact) {
  Collection c = testing::SmallDblp(25, 14);
  HopiIndex index = MustBuild(&c);
  Rng rng(23);
  int deleted = 0;
  while (deleted < 5 && !c.Links().empty()) {
    collection::Link l = c.Links()[rng.NextBounded(c.Links().size())];
    ASSERT_TRUE(index.DeleteLink(l.source, l.target).ok());
    ++deleted;
    ExpectExact(index, c);
  }
  EXPECT_EQ(deleted, 5);
}

TEST(DeleteLinkTest, DistanceAwareLinkDeletion) {
  // Shortcut + long path: removing the shortcut must lengthen distances.
  Collection c;
  DocId a = c.AddDocument("a.xml");
  NodeId ar = c.AddElement(a, "r");
  NodeId mid = c.AddElement(a, "m", ar);
  NodeId deep = c.AddElement(a, "d", mid);
  DocId b = c.AddDocument("b.xml");
  NodeId br = c.AddElement(b, "r");
  c.AddLink(ar, br);    // shortcut: dist(ar, br) = 1
  c.AddLink(deep, br);  // long way: 2 tree hops + link
  HopiIndex index = MustBuild(&c, true);
  EXPECT_EQ(*index.Distance(ar, br), 1u);
  ASSERT_TRUE(index.DeleteLink(ar, br).ok());
  ExpectExact(index, c, true);
  EXPECT_EQ(*index.Distance(ar, br), 3u);
}

TEST(ReplaceDocumentTest, ModifyIsDeletePlusInsert) {
  Collection c = testing::SmallDblp(20, 15);
  HopiIndex index = MustBuild(&c);
  collection::Ingestor ingestor(&c);
  auto doc = xml::ParseDocument(
      "<inproceedings><title>v2</title>"
      "<cite xlink:href=\"pub2.xml\"/></inproceedings>",
      "pub5-v2.xml");
  ASSERT_TRUE(doc.ok());
  auto new_id = ingestor.Ingest(*doc);
  ASSERT_TRUE(new_id.ok());
  ASSERT_TRUE(index.ReplaceDocument(5, *new_id).ok());
  ExpectExact(index, c);
  EXPECT_FALSE(c.IsLive(5));
}

}  // namespace
}  // namespace hopi
