#include <gtest/gtest.h>

#include "collection/builder.h"
#include "collection/collection.h"
#include "xml/parser.h"

namespace hopi::collection {
namespace {

/// Three-document fixture reproducing the paper's Figure 1 topology:
/// d1 has elements 1,2,3 (tree 1->2, 1->3 via nesting), d2 has 4..7,
/// d3 has 8,9, inter links 3->4 and 7->8, intra link within d2.
class FigureOneCollection : public ::testing::Test {
 protected:
  void SetUp() override {
    d1_ = c_.AddDocument("d1.xml");
    e1_ = c_.AddElement(d1_, "r");
    e2_ = c_.AddElement(d1_, "a", e1_);
    e3_ = c_.AddElement(d1_, "b", e1_);
    d2_ = c_.AddDocument("d2.xml");
    e4_ = c_.AddElement(d2_, "r");
    e5_ = c_.AddElement(d2_, "a", e4_);
    e6_ = c_.AddElement(d2_, "b", e5_);
    e7_ = c_.AddElement(d2_, "c", e4_);
    d3_ = c_.AddDocument("d3.xml");
    e8_ = c_.AddElement(d3_, "r");
    e9_ = c_.AddElement(d3_, "a", e8_);
    ASSERT_TRUE(c_.AddLink(e3_, e4_));  // inter d1 -> d2
    ASSERT_TRUE(c_.AddLink(e7_, e8_));  // inter d2 -> d3
    ASSERT_TRUE(c_.AddLink(e6_, e7_));  // intra within d2
  }

  Collection c_;
  DocId d1_, d2_, d3_;
  NodeId e1_, e2_, e3_, e4_, e5_, e6_, e7_, e8_, e9_;
};

TEST_F(FigureOneCollection, Counts) {
  EXPECT_EQ(c_.NumDocuments(), 3u);
  EXPECT_EQ(c_.NumElements(), 9u);
  EXPECT_EQ(c_.NumInterLinks(), 2u);
  EXPECT_EQ(c_.NumIntraLinks(), 1u);
  // Element graph: 6 tree edges + 3 links.
  EXPECT_EQ(c_.ElementGraph().NumEdges(), 9u);
}

TEST_F(FigureOneCollection, DocumentGraph) {
  const Digraph& gd = c_.DocumentGraph();
  EXPECT_TRUE(gd.HasEdge(d1_, d2_));
  EXPECT_TRUE(gd.HasEdge(d2_, d3_));
  EXPECT_FALSE(gd.HasEdge(d1_, d3_));
  EXPECT_EQ(c_.DocEdgeLinkCount(d1_, d2_), 1u);
  EXPECT_EQ(c_.DocEdgeLinkCount(d1_, d3_), 0u);
}

TEST_F(FigureOneCollection, DocOfAndRoots) {
  EXPECT_EQ(c_.DocOf(e5_), d2_);
  EXPECT_EQ(c_.RootOf(d2_), e4_);
  EXPECT_EQ(c_.ParentOf(e6_), e5_);
  EXPECT_EQ(c_.ParentOf(e1_), kInvalidNode);
}

TEST_F(FigureOneCollection, TagInterning) {
  EXPECT_EQ(c_.TagOf(e2_), "a");
  EXPECT_EQ(c_.TagIdOf(e2_), c_.TagIdOf(e5_));  // same tag, same id
  EXPECT_NE(c_.TagIdOf(e2_), c_.TagIdOf(e3_));
  EXPECT_EQ(c_.FindTagId("nope"), Collection::kInvalidTag);
}

TEST_F(FigureOneCollection, TreeCountsMatchFigureFiveConventions) {
  // anc incl. self: root=1, child=2, grandchild=3.
  EXPECT_EQ(c_.TreeAncestorCount(e1_), 1u);
  EXPECT_EQ(c_.TreeAncestorCount(e2_), 2u);
  EXPECT_EQ(c_.TreeAncestorCount(e6_), 3u);
  // desc incl. self.
  EXPECT_EQ(c_.TreeDescendantCount(e1_), 3u);
  EXPECT_EQ(c_.TreeDescendantCount(e4_), 4u);
  EXPECT_EQ(c_.TreeDescendantCount(e6_), 1u);
}

TEST_F(FigureOneCollection, RemoveDocumentDetachesEverything) {
  ASSERT_TRUE(c_.RemoveDocument(d2_).ok());
  EXPECT_FALSE(c_.IsLive(d2_));
  EXPECT_EQ(c_.NumLiveDocuments(), 2u);
  EXPECT_EQ(c_.NumInterLinks(), 0u);   // both inter links touched d2
  EXPECT_EQ(c_.NumIntraLinks(), 0u);   // d2's intra link dropped
  EXPECT_EQ(c_.ElementGraph().OutDegree(e4_), 0u);
  EXPECT_EQ(c_.ElementGraph().InDegree(e4_), 0u);
  EXPECT_FALSE(c_.DocumentGraph().HasEdge(d1_, d2_));
  // d1 and d3 untouched.
  EXPECT_TRUE(c_.ElementGraph().HasEdge(e1_, e2_));
  EXPECT_TRUE(c_.ElementGraph().HasEdge(e8_, e9_));
  // Double removal rejected.
  EXPECT_TRUE(c_.RemoveDocument(d2_).IsInvalidArgument());
}

TEST_F(FigureOneCollection, RemoveLink) {
  ASSERT_TRUE(c_.RemoveLink(e3_, e4_).ok());
  EXPECT_EQ(c_.NumInterLinks(), 1u);
  EXPECT_FALSE(c_.DocumentGraph().HasEdge(d1_, d2_));
  EXPECT_TRUE(c_.RemoveLink(e3_, e4_).IsNotFound());
}

TEST_F(FigureOneCollection, ParallelLinksCollapse) {
  EXPECT_FALSE(c_.AddLink(e3_, e4_));  // duplicate
  EXPECT_EQ(c_.NumInterLinks(), 2u);
}

TEST_F(FigureOneCollection, FindDocument) {
  auto found = c_.FindDocument("d2.xml");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, d2_);
  EXPECT_TRUE(c_.FindDocument("zzz").status().IsNotFound());
}

TEST_F(FigureOneCollection, ApproximateSizePositive) {
  EXPECT_GT(c_.ApproximateSizeBytes(), 0u);
}

TEST(IngestorTest, ResolvesAllLinkForms) {
  auto d1 = xml::ParseDocument(
      "<r id=\"top\"><x id=\"anchor\"/><y idref=\"anchor\"/>"
      "<z xlink:href=\"#top\"/><w xlink:href=\"b.xml#deep\"/>"
      "<q xlink:href=\"b.xml\"/></r>",
      "a.xml");
  ASSERT_TRUE(d1.ok());
  auto d2 = xml::ParseDocument("<r><s id=\"deep\"/></r>", "b.xml");
  ASSERT_TRUE(d2.ok());

  Collection c;
  Ingestor ingestor(&c);
  ASSERT_TRUE(ingestor.Ingest(*d1).ok());
  // w and q dangle until b.xml arrives.
  EXPECT_EQ(ingestor.report().dangling, 2u);
  ASSERT_TRUE(ingestor.Ingest(*d2).ok());
  EXPECT_EQ(ingestor.report().dangling, 0u);
  EXPECT_EQ(ingestor.report().intra_links, 2u);  // idref + #top
  EXPECT_EQ(ingestor.report().inter_links, 2u);  // b.xml#deep + b.xml
  EXPECT_EQ(c.NumInterLinks(), 2u);
}

TEST(IngestorTest, DuplicateDocumentNameRejected) {
  auto d = xml::ParseDocument("<r/>", "same.xml");
  ASSERT_TRUE(d.ok());
  Collection c;
  Ingestor ingestor(&c);
  ASSERT_TRUE(ingestor.Ingest(*d).ok());
  EXPECT_TRUE(ingestor.Ingest(*d).status().IsInvalidArgument());
}

TEST(IngestorTest, ElementOrderParentsBeforeChildren) {
  auto d = xml::ParseDocument("<a><b><c/></b><d/></a>", "t.xml");
  ASSERT_TRUE(d.ok());
  Collection c;
  Ingestor ingestor(&c);
  ASSERT_TRUE(ingestor.Ingest(*d).ok());
  for (NodeId e = 0; e < c.NumElements(); ++e) {
    NodeId p = c.ParentOf(e);
    if (p != kInvalidNode) {
      EXPECT_LT(p, e);
    }
  }
  EXPECT_EQ(c.TreeDescendantCount(c.RootOf(0)), 4u);
}

TEST(BuildCollectionTest, BatchConvenience) {
  std::vector<xml::Document> docs;
  auto a = xml::ParseDocument("<r><l xlink:href=\"b.xml\"/></r>", "a.xml");
  auto b = xml::ParseDocument("<r/>", "b.xml");
  ASSERT_TRUE(a.ok() && b.ok());
  docs.push_back(std::move(*a));
  docs.push_back(std::move(*b));
  Collection c;
  auto report = BuildCollection(docs, &c);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->documents, 2u);
  EXPECT_EQ(report->inter_links, 1u);
  EXPECT_EQ(c.NumElements(), 3u);
}

}  // namespace
}  // namespace hopi::collection
