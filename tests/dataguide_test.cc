#include <gtest/gtest.h>

#include "collection/builder.h"
#include "hopi/build.h"
#include "query/dataguide.h"
#include "query/tag_index.h"
#include "test_util.h"
#include "xml/parser.h"

namespace hopi::query {
namespace {

using collection::Collection;

class DataGuideFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto d1 = xml::ParseDocument(
        "<book><chapter><author>a1</author><title>t</title></chapter>"
        "<chapter><author>a2</author></chapter>"
        "<appendix><author>a3</author></appendix></book>",
        "b1.xml");
    auto d2 = xml::ParseDocument(
        "<book><chapter><cite xlink:href=\"b1.xml\"/></chapter></book>",
        "b2.xml");
    ASSERT_TRUE(d1.ok() && d2.ok());
    collection::Ingestor ingestor(&c_);
    ASSERT_TRUE(ingestor.Ingest(*d1).ok());
    ASSERT_TRUE(ingestor.Ingest(*d2).ok());
  }
  Collection c_;
};

TEST_F(DataGuideFixture, DistinctLabelPathsCollapse) {
  DataGuide guide(c_);
  // Paths: book, book/chapter, book/chapter/author, book/chapter/title,
  // book/appendix, book/appendix/author, book/chapter/cite = 7.
  EXPECT_EQ(guide.NumGuideNodes(), 1u + 7u);  // + virtual root
  EXPECT_EQ(guide.ExtentEntries(), c_.NumElements());
}

TEST_F(DataGuideFixture, FullPathLookup) {
  DataGuide guide(c_);
  // Both chapters' authors share one guide node; the appendix author has
  // a different label path.
  EXPECT_EQ(guide.LookupPath({"book", "chapter", "author"}).size(), 2u);
  EXPECT_EQ(guide.LookupPath({"book", "appendix", "author"}).size(), 1u);
  EXPECT_EQ(guide.LookupPath({"book", "chapter"}).size(), 3u);  // both docs
  EXPECT_TRUE(guide.LookupPath({"book", "nope"}).empty());
  EXPECT_TRUE(guide.LookupPath({"zzz"}).empty());
}

TEST_F(DataGuideFixture, WildcardQueryFindsTreeMatchesOnly) {
  DataGuide guide(c_);
  // //book//author over the trees: all 3 authors (both label paths).
  std::vector<NodeId> via_guide = guide.WildcardDescendants("book", "author");
  EXPECT_EQ(via_guide.size(), 3u);

  // The paper's core argument: b2's book also reaches b1's authors via
  // the citation link, which the DataGuide cannot see — HOPI can.
  auto index = BuildIndex(&c_);
  ASSERT_TRUE(index.ok());
  TagIndex tags(c_);
  size_t via_hopi = 0;
  for (NodeId b : tags.Lookup("book")) {
    for (NodeId a : tags.Lookup("author")) {
      if (index->IsReachable(b, a)) ++via_hopi;
    }
  }
  // HOPI sees (b1, a1..a3) and (b2, a1..a3) = 6 pairs; the guide's answer
  // corresponds to only the tree-internal pairs.
  EXPECT_EQ(via_hopi, 6u);
}

TEST(DataGuideTest, AgreesWithHopiOnLinkFreeCollections) {
  // Without links the two indexes must answer //a//b identically.
  Collection c;
  datagen::DblpConfig config;
  config.num_docs = 40;
  config.mean_citations = 0.0;  // no links at all
  config.intra_link_prob = 0.0;
  config.seed = 11;
  ASSERT_TRUE(datagen::GenerateDblpCollection(config, &c).ok());
  DataGuide guide(c);
  auto index = BuildIndex(&c);
  ASSERT_TRUE(index.ok());
  TagIndex tags(c);
  for (const auto& [first, second] :
       std::vector<std::pair<std::string, std::string>>{
           {"inproceedings", "author"},
           {"abstract", "sentence"},
           {"inproceedings", "sentence"}}) {
    std::vector<NodeId> via_guide = guide.WildcardDescendants(first, second);
    std::vector<NodeId> via_hopi;
    for (NodeId s : tags.Lookup(second)) {
      for (NodeId f : tags.Lookup(first)) {
        if (index->IsReachable(f, s)) {
          via_hopi.push_back(s);
          break;
        }
      }
    }
    EXPECT_EQ(via_guide, via_hopi) << "//" << first << "//" << second;
  }
}

TEST(DataGuideTest, GuideMuchSmallerThanCollectionOnRegularData) {
  // DataGuides shine on schema-regular data: the guide collapses all
  // publications onto a handful of label paths.
  Collection c = hopi::testing::SmallDblp(100, 13);
  DataGuide guide(c);
  EXPECT_LT(guide.NumGuideNodes(), 30u);
  EXPECT_EQ(guide.ExtentEntries(), c.NumElements());
}

}  // namespace
}  // namespace hopi::query
