// Whole-system integration tests: generate -> serialize -> reparse ->
// ingest -> build -> query -> persist -> reload -> mutate -> validate.
// These exercise the same flow a downstream user of the library would.
#include <gtest/gtest.h>

#include <cstdio>

#include "collection/builder.h"
#include "datagen/dblp.h"
#include "datagen/xmark.h"
#include "graph/traversal.h"
#include "hopi/baseline.h"
#include "hopi/build.h"
#include "query/path_query.h"
#include "query/tag_index.h"
#include "storage/linlout.h"
#include "test_util.h"
#include "twohop/builder.h"
#include "xml/parser.h"

namespace hopi {
namespace {

using collection::Collection;

TEST(IntegrationTest, XmlRoundTripThenIndex) {
  // Generate documents, serialize them to XML text, parse the text back,
  // ingest, and index — the full paper pipeline including the parser.
  datagen::DblpConfig config;
  config.num_docs = 40;
  config.seed = 31;
  Rng rng(config.seed);
  Collection c;
  collection::Ingestor ingestor(&c);
  for (size_t i = 0; i < config.num_docs; ++i) {
    xml::Document doc = datagen::GenerateDblpDocument(config, i, &rng);
    std::string text = xml::Serialize(*doc.root);
    auto reparsed = xml::ParseDocument(text, doc.name);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status();
    ASSERT_EQ(reparsed->root->SubtreeSize(), doc.root->SubtreeSize());
    ASSERT_TRUE(ingestor.Ingest(*reparsed).ok());
  }
  EXPECT_EQ(ingestor.report().dangling, 0u);

  auto index = BuildIndex(&c);
  ASSERT_TRUE(index.ok());
  Status valid = twohop::ValidateCover(index->cover(), c.ElementGraph());
  EXPECT_TRUE(valid.ok()) << valid;
}

TEST(IntegrationTest, PersistReloadQueryEquivalence) {
  Collection c = testing::SmallDblp(50, 41);
  IndexBuildOptions options;
  options.with_distance = true;
  auto index = BuildIndex(&c, options);
  ASSERT_TRUE(index.ok());

  std::string path = ::testing::TempDir() + "hopi_integration.idx";
  storage::LinLoutStore store =
      storage::LinLoutStore::FromCover(index->cover(), true);
  ASSERT_TRUE(store.WriteToFile(path).ok());
  auto loaded = storage::LinLoutStore::ReadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  std::remove(path.c_str());

  // Rebuild an index from storage and compare answers with the original.
  HopiIndex reloaded(&c, loaded->ToCover(c.NumElements()), true);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(c.NumElements()));
    NodeId v = static_cast<NodeId>(rng.NextBounded(c.NumElements()));
    EXPECT_EQ(reloaded.IsReachable(u, v), index->IsReachable(u, v));
    EXPECT_EQ(reloaded.Distance(u, v), index->Distance(u, v));
  }
}

TEST(IntegrationTest, HopiAgreesWithMaterializedClosure) {
  Collection c = testing::SmallDblp(45, 43);
  auto index = BuildIndex(&c);
  ASSERT_TRUE(index.ok());
  TransitiveClosureIndex closure =
      TransitiveClosureIndex::Build(c.ElementGraph(), false);
  for (NodeId u = 0; u < c.NumElements(); u += 13) {
    EXPECT_EQ(index->Descendants(u), closure.Descendants(u));
    EXPECT_EQ(index->Ancestors(u), closure.Ancestors(u));
  }
}

TEST(IntegrationTest, ChurnWorkload) {
  // A week in the life of a search engine: interleaved inserts, deletes,
  // link changes and queries; the cover must stay exact throughout.
  Collection c = testing::SmallDblp(35, 47);
  IndexBuildOptions options;
  options.partition.max_connections = 2000;
  auto built = BuildIndex(&c, options);
  ASSERT_TRUE(built.ok());
  HopiIndex index = std::move(built).value();
  collection::Ingestor ingestor(&c);
  Rng rng(53);
  datagen::DblpConfig gen;
  gen.num_docs = 35;
  gen.seed = 99;
  Rng gen_rng(3);

  for (int round = 0; round < 10; ++round) {
    switch (round % 4) {
      case 0: {  // insert a fresh publication
        xml::Document doc =
            datagen::GenerateDblpDocument(gen, 35 + round, &gen_rng);
        doc.name = "churn" + std::to_string(round) + ".xml";
        auto id = ingestor.Ingest(doc);
        ASSERT_TRUE(id.ok());
        ASSERT_TRUE(index.InsertDocument(*id).ok());
        break;
      }
      case 1: {  // delete a random live document
        collection::DocId d =
            static_cast<collection::DocId>(rng.NextBounded(c.NumDocuments()));
        if (c.IsLive(d)) {
          ASSERT_TRUE(index.DeleteDocument(d).ok());
        }
        break;
      }
      case 2: {  // add a link
        NodeId u = static_cast<NodeId>(rng.NextBounded(c.NumElements()));
        NodeId v = static_cast<NodeId>(rng.NextBounded(c.NumElements()));
        if (u != v && !c.ElementGraph().HasEdge(u, v) &&
            c.IsLive(c.DocOf(u)) && c.IsLive(c.DocOf(v))) {
          ASSERT_TRUE(index.InsertLink(u, v).ok());
        }
        break;
      }
      case 3: {  // remove a link
        if (!c.Links().empty()) {
          collection::Link l =
              c.Links()[rng.NextBounded(c.Links().size())];
          ASSERT_TRUE(index.DeleteLink(l.source, l.target).ok());
        }
        break;
      }
    }
    Status valid = twohop::ValidateCover(index.cover(), c.ElementGraph());
    ASSERT_TRUE(valid.ok()) << "round " << round << ": " << valid;
  }
}

TEST(IntegrationTest, QueriesAcrossGeneratedXmark) {
  Collection c;
  datagen::XmarkConfig config;
  config.num_items = 40;
  config.num_people = 25;
  config.num_auctions = 30;
  ASSERT_TRUE(datagen::GenerateXmarkCollection(config, &c).ok());
  IndexBuildOptions options;
  options.with_distance = true;
  auto index = BuildIndex(&c, options);
  ASSERT_TRUE(index.ok());
  query::TagIndex tags(c);

  auto expr = query::PathExpression::Parse("//open_auction//name");
  ASSERT_TRUE(expr.ok());
  auto count = query::CountPathResults(*expr, *index, tags);
  ASSERT_TRUE(count.ok());
  EXPECT_GT(*count, 0u);  // every auction references an item with a name

  // Brute-force cross-check on a sample: count via raw BFS reachability.
  auto matches = query::EvaluatePath(*expr, *index, tags,
                                     {.max_matches = 100000});
  ASSERT_TRUE(matches.ok());
  size_t brute = 0;
  for (NodeId a : tags.Lookup("open_auction")) {
    for (NodeId n : tags.Lookup("name")) {
      if (a != n && hopi::IsReachable(c.ElementGraph(), a, n)) ++brute;
    }
  }
  EXPECT_EQ(matches->size(), brute);
}

}  // namespace
}  // namespace hopi
