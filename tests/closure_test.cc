#include <gtest/gtest.h>

#include "graph/bitset.h"
#include "graph/closure.h"
#include "graph/traversal.h"
#include "test_util.h"

namespace hopi {
namespace {

TEST(BitsetTest, SetTestClear) {
  DynamicBitset b(100);
  EXPECT_FALSE(b.Test(5));
  EXPECT_TRUE(b.Set(5));
  EXPECT_FALSE(b.Set(5));  // already set
  EXPECT_TRUE(b.Test(5));
  EXPECT_TRUE(b.Clear(5));
  EXPECT_FALSE(b.Clear(5));
  EXPECT_FALSE(b.Test(5));
}

TEST(BitsetTest, GrowsOnDemand) {
  DynamicBitset b;
  EXPECT_TRUE(b.Set(1000));
  EXPECT_TRUE(b.Test(1000));
  EXPECT_FALSE(b.Test(999));
}

TEST(BitsetTest, UnionCountsNewBits) {
  DynamicBitset a(128), b(128);
  a.Set(1);
  a.Set(64);
  b.Set(64);
  b.Set(100);
  EXPECT_EQ(a.UnionWith(b), 1u);  // only bit 100 is new
  EXPECT_EQ(a.Count(), 3u);
}

TEST(BitsetTest, SubtractCountsRemoved) {
  DynamicBitset a(128), b(128);
  a.Set(1);
  a.Set(2);
  a.Set(3);
  b.Set(2);
  b.Set(99);
  EXPECT_EQ(a.SubtractWith(b), 1u);
  EXPECT_FALSE(a.Test(2));
  EXPECT_TRUE(a.Test(1));
}

TEST(BitsetTest, IntersectsAndForEachIntersection) {
  DynamicBitset a(200), b(200);
  a.Set(3);
  a.Set(150);
  b.Set(150);
  EXPECT_TRUE(a.Intersects(b));
  std::vector<size_t> common;
  a.ForEachIntersection(b, [&common](size_t i) { common.push_back(i); });
  EXPECT_EQ(common, (std::vector<size_t>{150}));
  b.Clear(150);
  EXPECT_FALSE(a.Intersects(b));
}

TEST(BitsetTest, ToVectorSorted) {
  DynamicBitset b(300);
  b.Set(250);
  b.Set(3);
  b.Set(64);
  EXPECT_EQ(b.ToVector(), (std::vector<uint32_t>{3, 64, 250}));
}

TEST(TransitiveClosureTest, Chain) {
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  auto tc = TransitiveClosure::Build(g);
  ASSERT_TRUE(tc.ok());
  EXPECT_EQ(tc->NumConnections(), 3u);  // (0,1) (0,2) (1,2)
  EXPECT_TRUE(tc->Contains(0, 2));
  EXPECT_TRUE(tc->Contains(0, 0));  // reflexive by definition
  EXPECT_FALSE(tc->Contains(2, 0));
  EXPECT_EQ(tc->Descendants(0), (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(tc->Ancestors(2), (std::vector<NodeId>{0, 1}));
}

TEST(TransitiveClosureTest, CycleMembersMutuallyReachable) {
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  g.AddEdge(1, 2);
  auto tc = TransitiveClosure::Build(g);
  ASSERT_TRUE(tc.ok());
  EXPECT_TRUE(tc->Contains(0, 1));
  EXPECT_TRUE(tc->Contains(1, 0));
  EXPECT_TRUE(tc->Contains(0, 2));
  EXPECT_FALSE(tc->Contains(2, 1));
}

TEST(TransitiveClosureTest, BudgetEnforced) {
  Digraph g(10);
  for (NodeId i = 0; i + 1 < 10; ++i) g.AddEdge(i, i + 1);
  // A 10-chain has 45 connections.
  EXPECT_TRUE(TransitiveClosure::Build(g, 44).status().IsOutOfBudget());
  EXPECT_TRUE(TransitiveClosure::Build(g, 45).ok());
}

TEST(TransitiveClosureTest, MatchesBfsOnRandomGraphs) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    Digraph g = testing::RandomDigraph(40, 100, seed);
    auto tc = TransitiveClosure::Build(g);
    ASSERT_TRUE(tc.ok());
    for (NodeId u = 0; u < g.NumNodes(); ++u) {
      std::vector<NodeId> reach = ReachableFrom(g, u);
      for (NodeId v = 0; v < g.NumNodes(); ++v) {
        bool expected = std::binary_search(reach.begin(), reach.end(), v);
        if (u == v) expected = true;
        EXPECT_EQ(tc->Contains(u, v), expected)
            << "seed " << seed << " pair " << u << "," << v;
      }
    }
  }
}

TEST(TransitiveClosureTest, CountMatchesBuild) {
  Digraph g = testing::RandomDag(80, 2.5, 9);
  auto tc = TransitiveClosure::Build(g);
  ASSERT_TRUE(tc.ok());
  EXPECT_EQ(TransitiveClosure::CountConnections(g), tc->NumConnections());
}

TEST(IncrementalClosureTest, MatchesBatchUnderEdgeStream) {
  Digraph g = testing::RandomDigraph(35, 90, 21);
  IncrementalClosure inc(g.NumNodes());
  for (const Edge& e : g.Edges()) inc.AddEdge(e.from, e.to);
  auto batch = TransitiveClosure::Build(g);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(inc.NumConnections(), batch->NumConnections());
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      EXPECT_EQ(inc.Contains(u, v), batch->Contains(u, v));
    }
  }
}

TEST(IncrementalClosureTest, AddEdgeReturnsDelta) {
  IncrementalClosure inc(4);
  EXPECT_EQ(inc.AddEdge(0, 1), 1u);
  EXPECT_EQ(inc.AddEdge(0, 1), 0u);  // duplicate
  EXPECT_EQ(inc.AddEdge(1, 2), 2u);  // (1,2) and (0,2)
  // Closing the cycle adds (1,0), (2,0), (2,1).
  EXPECT_EQ(inc.AddEdge(2, 0), 3u);
  // After the cycle all three are mutually connected: 6 ordered pairs.
  EXPECT_EQ(inc.NumConnections(), 6u);
}

TEST(IncrementalClosureTest, SelfEdgeIsNoop) {
  IncrementalClosure inc(2);
  EXPECT_EQ(inc.AddEdge(1, 1), 0u);
  EXPECT_EQ(inc.NumConnections(), 0u);
}

TEST(DistanceClosureTest, ShortestOfTwoPaths) {
  Digraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 3);
  g.AddEdge(0, 2);
  g.AddEdge(2, 3);
  g.AddEdge(0, 3);  // direct shortcut
  DistanceClosure dc = DistanceClosure::Build(g);
  EXPECT_EQ(dc.Dist(0, 3), std::optional<uint32_t>(1));
  EXPECT_EQ(dc.Dist(0, 0), std::optional<uint32_t>(0));
  EXPECT_EQ(dc.Dist(3, 0), std::nullopt);
}

TEST(DistanceClosureTest, MatchesBfsEverywhere) {
  Digraph g = testing::RandomDigraph(30, 70, 33);
  DistanceClosure dc = DistanceClosure::Build(g);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    auto bfs = BfsDistances(g, u);
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      if (u == v) continue;
      auto d = dc.Dist(u, v);
      if (bfs[v] == kUnreachable) {
        EXPECT_FALSE(d.has_value());
      } else {
        ASSERT_TRUE(d.has_value());
        EXPECT_EQ(*d, bfs[v]);
      }
    }
  }
}

TEST(DistanceClosureTest, ReverseRowsConsistent) {
  Digraph g = testing::RandomDag(25, 2.0, 44);
  DistanceClosure dc = DistanceClosure::Build(g);
  uint64_t forward = 0, backward = 0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    forward += dc.Row(v).size();
    backward += dc.ReverseRow(v).size();
  }
  EXPECT_EQ(forward, backward);
  EXPECT_EQ(forward, dc.NumConnections());
}

}  // namespace
}  // namespace hopi
