// Serving front-end tests: the HTTP parser and JSON wire as pure
// units, then the whole stack — epoll HttpServer -> ReachabilityService
// -> EnginePool — end to end over real sockets, checked against a
// ground-truth QueryEngine on the same snapshot. The overload test at
// the bottom is the ISSUE's acceptance scenario: a burst wider than
// the queue sheds with 429s, never blocks, and /stats shows the sheds
// and latency percentiles.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "engine/engine_pool.h"
#include "engine/snapshot.h"
#include "hopi/build.h"
#include "net/client.h"
#include "net/http.h"
#include "net/json.h"
#include "net/server.h"
#include "net/service.h"
#include "net/wire.h"
#include "test_util.h"

namespace hopi::net {
namespace {

// ---- HttpParser units ----

HttpParser::Step FeedAll(HttpParser* parser, std::string_view bytes,
                         HttpRequest* request, HttpError* error) {
  parser->Feed(bytes);
  return parser->Next(request, error);
}

TEST(HttpParserTest, ParsesSimpleGet) {
  HttpParser parser;
  HttpRequest request;
  HttpError error;
  ASSERT_EQ(FeedAll(&parser, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n",
                    &request, &error),
            HttpParser::Step::kRequest);
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.target, "/healthz");
  EXPECT_TRUE(request.keep_alive);
  ASSERT_NE(request.FindHeader("host"), nullptr);  // lowercased name
  EXPECT_EQ(*request.FindHeader("host"), "x");
  EXPECT_TRUE(request.body.empty());
}

TEST(HttpParserTest, ParsesPostBodyAcrossFeeds) {
  HttpParser parser;
  HttpRequest request;
  HttpError error;
  parser.Feed("POST /v1/batch HTTP/1.1\r\ncontent-len");
  EXPECT_EQ(parser.Next(&request, &error), HttpParser::Step::kNeedMore);
  parser.Feed("gth: 11\r\n\r\nhello");
  EXPECT_EQ(parser.Next(&request, &error), HttpParser::Step::kNeedMore);
  parser.Feed(" world");
  ASSERT_EQ(parser.Next(&request, &error), HttpParser::Step::kRequest);
  EXPECT_EQ(request.body, "hello world");
}

TEST(HttpParserTest, PipelinedRequestsComeOutInOrder) {
  HttpParser parser;
  HttpRequest request;
  HttpError error;
  parser.Feed(
      "GET /a HTTP/1.1\r\n\r\n"
      "POST /b HTTP/1.1\r\ncontent-length: 2\r\n\r\nhi"
      "GET /c HTTP/1.1\r\nconnection: close\r\n\r\n");
  ASSERT_EQ(parser.Next(&request, &error), HttpParser::Step::kRequest);
  EXPECT_EQ(request.target, "/a");
  ASSERT_EQ(parser.Next(&request, &error), HttpParser::Step::kRequest);
  EXPECT_EQ(request.target, "/b");
  EXPECT_EQ(request.body, "hi");
  ASSERT_EQ(parser.Next(&request, &error), HttpParser::Step::kRequest);
  EXPECT_EQ(request.target, "/c");
  EXPECT_FALSE(request.keep_alive);
  EXPECT_EQ(parser.Next(&request, &error), HttpParser::Step::kNeedMore);
}

TEST(HttpParserTest, Http10DefaultsToCloseUnlessKeepAlive) {
  HttpParser parser;
  HttpRequest request;
  HttpError error;
  ASSERT_EQ(FeedAll(&parser, "GET / HTTP/1.0\r\n\r\n", &request, &error),
            HttpParser::Step::kRequest);
  EXPECT_FALSE(request.keep_alive);
  ASSERT_EQ(FeedAll(&parser,
                    "GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n",
                    &request, &error),
            HttpParser::Step::kRequest);
  EXPECT_TRUE(request.keep_alive);
}

struct RejectCase {
  const char* name;
  const char* bytes;
  int expected_status;
};

TEST(HttpParserTest, TypedRejects) {
  const RejectCase cases[] = {
      {"missing spaces", "GET/\r\n\r\n", 400},
      {"bad method token", "GE T / HTTP/1.1\r\n\r\n", 400},
      {"control in target", "GET /\x01 HTTP/1.1\r\n\r\n", 400},
      {"http2", "GET / HTTP/2.0\r\n\r\n", 505},
      {"not http", "GET / FTP/1.1\r\n\r\n", 400},
      {"obs fold", "GET / HTTP/1.1\r\na: b\r\n  cont\r\n\r\n", 400},
      {"space before colon", "GET / HTTP/1.1\r\nbad name: x\r\n\r\n", 400},
      {"no colon", "GET / HTTP/1.1\r\njustnoise\r\n\r\n", 400},
      {"bad length", "GET / HTTP/1.1\r\ncontent-length: 12x\r\n\r\n", 400},
      {"conflicting lengths",
       "GET / HTTP/1.1\r\ncontent-length: 1\r\ncontent-length: 2\r\n\r\n",
       400},
      {"transfer encoding",
       "POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n", 501},
  };
  for (const RejectCase& c : cases) {
    HttpParser parser;
    HttpRequest request;
    HttpError error;
    EXPECT_EQ(FeedAll(&parser, c.bytes, &request, &error),
              HttpParser::Step::kError)
        << c.name;
    EXPECT_EQ(error.http_status, c.expected_status) << c.name;
    EXPECT_FALSE(error.status.ok()) << c.name;
    // Poisoned: no resynchronization after a broken stream.
    parser.Feed("GET / HTTP/1.1\r\n\r\n");
    EXPECT_EQ(parser.Next(&request, &error), HttpParser::Step::kError)
        << c.name;
  }
}

TEST(HttpParserTest, OversizedHeaderBlockIs431) {
  HttpParser parser({.max_header_bytes = 128});
  HttpRequest request;
  HttpError error;
  std::string bytes = "GET / HTTP/1.1\r\nx: " + std::string(200, 'a');
  // No terminator yet, but already hopeless: reject without waiting.
  EXPECT_EQ(FeedAll(&parser, bytes, &request, &error),
            HttpParser::Step::kError);
  EXPECT_EQ(error.http_status, 431);
}

TEST(HttpParserTest, TooManyHeadersIs431) {
  HttpParser parser({.max_headers = 4});
  std::string bytes = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 6; ++i) {
    bytes += "h" + std::to_string(i) + ": v\r\n";
  }
  bytes += "\r\n";
  HttpRequest request;
  HttpError error;
  EXPECT_EQ(FeedAll(&parser, bytes, &request, &error),
            HttpParser::Step::kError);
  EXPECT_EQ(error.http_status, 431);
}

TEST(HttpParserTest, OversizedBodyIs413BeforeTheBodyArrives) {
  HttpParser parser({.max_body_bytes = 64});
  HttpRequest request;
  HttpError error;
  EXPECT_EQ(FeedAll(&parser,
                    "POST / HTTP/1.1\r\ncontent-length: 100000\r\n\r\n",
                    &request, &error),
            HttpParser::Step::kError);
  EXPECT_EQ(error.http_status, 413);
}

TEST(HttpParserTest, ExpectContinueIsSurfacedOnce) {
  HttpParser parser;
  HttpRequest request;
  HttpError error;
  parser.Feed(
      "POST / HTTP/1.1\r\ncontent-length: 2\r\nexpect: 100-continue\r\n\r\n");
  EXPECT_EQ(parser.Next(&request, &error), HttpParser::Step::kNeedMore);
  EXPECT_TRUE(parser.TakeContinueNeeded());
  EXPECT_FALSE(parser.TakeContinueNeeded());  // clears on read
  parser.Feed("ok");
  ASSERT_EQ(parser.Next(&request, &error), HttpParser::Step::kRequest);
  EXPECT_EQ(request.body, "ok");
}

TEST(HttpResponseTest, SerializeAlwaysFramesWithContentLength) {
  HttpResponse response;
  response.status = 429;
  response.body = "{\"x\":1}";
  response.extra_headers.emplace_back("retry-after", "1");
  response.close = true;
  std::string bytes = SerializeResponse(response);
  EXPECT_NE(bytes.find("HTTP/1.1 429 Too Many Requests\r\n"),
            std::string::npos);
  EXPECT_NE(bytes.find("content-length: 7\r\n"), std::string::npos);
  EXPECT_NE(bytes.find("retry-after: 1\r\n"), std::string::npos);
  EXPECT_NE(bytes.find("connection: close\r\n"), std::string::npos);
  EXPECT_TRUE(bytes.ends_with("\r\n\r\n{\"x\":1}"));
}

// ---- JSON parser units ----

TEST(JsonTest, ParsesScalarsArraysObjects) {
  auto v = ParseJson(R"({"a":[1,2.5,-3e2],"b":"x\n\u00e9","c":true,"d":null})");
  ASSERT_TRUE(v.ok()) << v.status();
  ASSERT_TRUE(v->is_object());
  const JsonValue* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->AsArray().size(), 3u);
  EXPECT_EQ(a->AsArray()[0].AsNumber(), 1.0);
  EXPECT_EQ(a->AsArray()[2].AsNumber(), -300.0);
  EXPECT_EQ(v->Find("b")->AsString(), "x\n\xc3\xa9");
  EXPECT_TRUE(v->Find("c")->AsBool());
  EXPECT_TRUE(v->Find("d")->is_null());
}

TEST(JsonTest, SurrogatePairsDecodeToUtf8) {
  auto v = ParseJson(R"("\ud83d\ude00")");  // grinning-face emoji
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsString(), "\xf0\x9f\x98\x80");
}

TEST(JsonTest, StrictRejects) {
  const char* cases[] = {
      "",
      "{",
      "[1,]",
      "{\"a\":1,}",
      "{\"a\" 1}",
      "[1] trailing",
      "{\"dup\":1,\"dup\":2}",
      "\"unterminated",
      "\"bad \\q escape\"",
      "\"\\ud800\"",        // lone high surrogate
      "01",                 // leading zero
      "+1",
      "1.",
      "nul",
      "Infinity",
      "\x01",
  };
  for (const char* c : cases) {
    auto v = ParseJson(c);
    EXPECT_FALSE(v.ok()) << "input: " << c;
  }
}

TEST(JsonTest, DepthLimitStopsDeepNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  auto v = ParseJson(deep, {.max_depth = 32});
  ASSERT_FALSE(v.ok());
  auto shallow = ParseJson("[[[[1]]]]", {.max_depth = 32});
  EXPECT_TRUE(shallow.ok());
}

// ---- JsonWire units ----

TEST(JsonWireTest, ParsesAndValidatesBatchRequest) {
  JsonWire wire;
  auto request = wire.ParseBatchRequest(
      R"({"pairs":[[0,5],[3,2]],"want_distances":true})", 10);
  ASSERT_TRUE(request.ok()) << request.status();
  ASSERT_EQ(request->pairs.size(), 2u);
  EXPECT_EQ(request->pairs[0].first, 0u);
  EXPECT_EQ(request->pairs[0].second, 5u);
  EXPECT_TRUE(request->want_distances);

  EXPECT_FALSE(wire.ParseBatchRequest(R"({"pairs":[[0,10]]})", 10).ok())
      << "node id out of range must reject";
  EXPECT_FALSE(wire.ParseBatchRequest(R"({"pairs":[[0,1],[2]]})", 10).ok());
  EXPECT_FALSE(wire.ParseBatchRequest(R"({"pairs":[[0,1.5]]})", 10).ok());
  EXPECT_FALSE(wire.ParseBatchRequest(R"({"pairs":[[-1,0]]})", 10).ok());
  EXPECT_FALSE(wire.ParseBatchRequest(R"({"pairs":[[0,1]],"oops":1})", 10)
                   .ok())
      << "unknown fields must reject";
  EXPECT_FALSE(wire.ParseBatchRequest("[]", 10).ok());
}

TEST(JsonWireTest, BatchSizeLimitIsEnforced) {
  WireLimits limits;
  limits.max_pairs = 2;
  JsonWire wire(limits);
  EXPECT_TRUE(wire.ParseBatchRequest(R"({"pairs":[[0,1],[1,0]]})", 4).ok());
  EXPECT_FALSE(
      wire.ParseBatchRequest(R"({"pairs":[[0,1],[1,0],[2,3]]})", 4).ok());
}

TEST(JsonWireTest, ParsesPathRequestWithOptions) {
  JsonWire wire;
  auto request = wire.ParsePathRequest(
      R"({"expression":"//a//~b","max_matches":5,"count_only":true,)"
      R"("min_tag_similarity":0.5,"max_step_distance":3})");
  ASSERT_TRUE(request.ok()) << request.status();
  EXPECT_EQ(request->expression, "//a//~b");
  EXPECT_EQ(request->max_matches, 5u);
  EXPECT_TRUE(request->count_only);
  EXPECT_EQ(request->min_tag_similarity, 0.5);
  EXPECT_EQ(request->max_step_distance, 3u);

  EXPECT_FALSE(wire.ParsePathRequest(R"({"max_matches":5})").ok());
  EXPECT_FALSE(
      wire.ParsePathRequest(R"({"expression":"//a","min_tag_similarity":2})")
          .ok());
}

TEST(JsonWireTest, StatusMappingCoversTheTaxonomy) {
  EXPECT_EQ(JsonWire::HttpStatusFor(Status::OK()), 200);
  EXPECT_EQ(JsonWire::HttpStatusFor(Status::InvalidArgument("x")), 400);
  EXPECT_EQ(JsonWire::HttpStatusFor(Status::NotFound("x")), 404);
  EXPECT_EQ(JsonWire::HttpStatusFor(Status::ResourceExhausted("x")), 429);
  EXPECT_EQ(JsonWire::HttpStatusFor(Status::FailedPrecondition("x")), 503);
  EXPECT_EQ(JsonWire::HttpStatusFor(Status::Unsupported("x")), 501);
  EXPECT_EQ(JsonWire::HttpStatusFor(Status::Internal("x")), 500);
}

TEST(JsonWireTest, ErrorEnvelopeEscapesTheMessage) {
  std::string body = JsonWire::SerializeError(
      Status::InvalidArgument("bad \"field\"\nline2"));
  EXPECT_EQ(body,
            "{\"error\":{\"code\":\"InvalidArgument\","
            "\"message\":\"bad \\\"field\\\"\\nline2\"}}");
  // The envelope itself must be valid JSON.
  EXPECT_TRUE(ParseJson(body).ok());
}

// ---- end-to-end over real sockets ----

class ServingFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    c_ = hopi::testing::SmallDblp(40, 17);
    hopi::IndexBuildOptions build_options;
    build_options.with_distance = true;
    auto index = hopi::BuildIndex(&c_, build_options);
    ASSERT_TRUE(index.ok()) << index.status();
    index_ = std::make_unique<hopi::HopiIndex>(std::move(index).value());
    snapshot_ = engine::BackendSnapshot::Freeze(*index_);
  }

  /// Spins up pool + service + server; returns the bound port. With
  /// `mutate` the write path is armed before Start() — the production
  /// ordering (hopi_serve does the same), which also keeps the
  /// enable flags out of reach of the IO threads.
  void StartServer(engine::EnginePoolOptions pool_options = {},
                   HttpServerOptions server_options = {},
                   bool mutate = false) {
    pool_ = std::make_unique<engine::EnginePool>(snapshot_, pool_options);
    service_ = std::make_unique<ReachabilityService>(pool_.get());
    if (mutate) {
      ASSERT_TRUE(pool_->EnableMutations(*index_).ok());
      service_->EnableMutations();
    }
    server_ = std::make_unique<HttpServer>(service_->AsHandler(),
                                           server_options);
    service_->BindServerStats([this] { return server_->Stats(); });
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_NE(server_->port(), 0);
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
    if (pool_ != nullptr) pool_->Shutdown();
  }

  BlockingHttpClient Connect() {
    BlockingHttpClient client;
    EXPECT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    return client;
  }

  collection::Collection c_;
  std::unique_ptr<hopi::HopiIndex> index_;
  std::shared_ptr<const engine::BackendSnapshot> snapshot_;
  std::unique_ptr<engine::EnginePool> pool_;
  std::unique_ptr<ReachabilityService> service_;
  std::unique_ptr<HttpServer> server_;
};

TEST_F(ServingFixture, BatchOverSocketMatchesGroundTruth) {
  StartServer();
  BlockingHttpClient client = Connect();

  // Ground truth straight from a QueryEngine on the same snapshot.
  engine::QueryEngine reference(c_, snapshot_->MakeBackend());
  engine::BatchRequest expected_request;
  Rng rng(3);
  std::string body = "{\"pairs\":[";
  for (size_t i = 0; i < 64; ++i) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(c_.NumElements()));
    NodeId v = static_cast<NodeId>(rng.NextBounded(c_.NumElements()));
    expected_request.pairs.push_back({u, v});
    if (i > 0) body += ',';
    body += '[' + std::to_string(u) + ',' + std::to_string(v) + ']';
  }
  body += "],\"want_distances\":true}";
  expected_request.want_distances = true;
  engine::BatchResponse expected = reference.Batch(expected_request);

  auto response = client.Request("POST", "/v1/batch", body);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->status, 200);
  auto json = ParseJson(response->body);
  ASSERT_TRUE(json.ok()) << json.status();
  const JsonValue* reachable = json->Find("reachable");
  ASSERT_NE(reachable, nullptr);
  ASSERT_EQ(reachable->AsArray().size(), expected.reachable.size());
  for (size_t i = 0; i < expected.reachable.size(); ++i) {
    EXPECT_EQ(reachable->AsArray()[i].AsBool(), expected.reachable[i] != 0)
        << "pair " << i;
  }
  const JsonValue* distances = json->Find("distances");
  ASSERT_NE(distances, nullptr);
  ASSERT_EQ(distances->AsArray().size(), expected.distances.size());
  for (size_t i = 0; i < expected.distances.size(); ++i) {
    if (expected.distances[i].has_value()) {
      EXPECT_EQ(distances->AsArray()[i].AsNumber(),
                static_cast<double>(*expected.distances[i]));
    } else {
      EXPECT_TRUE(distances->AsArray()[i].is_null());
    }
  }
  EXPECT_EQ(json->Find("snapshot_version")->AsNumber(),
            static_cast<double>(snapshot_->version()));
}

TEST_F(ServingFixture, PathQueryOverSocketMatchesGroundTruth) {
  StartServer();
  BlockingHttpClient client = Connect();
  engine::QueryEngine reference(c_, snapshot_->MakeBackend());
  auto expected = reference.Query({.expression = "//article//author"});
  ASSERT_TRUE(expected.ok());

  auto response = client.Request("POST", "/v1/path",
                                 R"({"expression":"//article//author"})");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
  auto json = ParseJson(response->body);
  ASSERT_TRUE(json.ok());
  EXPECT_EQ(json->Find("count")->AsNumber(),
            static_cast<double>(expected->count));
  EXPECT_EQ(json->Find("matches")->AsArray().size(),
            expected->matches.size());
}

TEST_F(ServingFixture, HealthStatsAndRoutingErrors) {
  StartServer();
  BlockingHttpClient client = Connect();

  auto health = client.Request("GET", "/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->status, 200);
  EXPECT_EQ(health->body, "{\"status\":\"ok\"}");

  auto missing = client.Request("GET", "/v2/everything");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);

  auto wrong_method = client.Request("GET", "/v1/batch");
  ASSERT_TRUE(wrong_method.ok());
  EXPECT_EQ(wrong_method->status, 405);

  auto bad_body = client.Request("POST", "/v1/batch", "{\"pairs\":[[0,");
  ASSERT_TRUE(bad_body.ok());
  EXPECT_EQ(bad_body->status, 400);
  auto error_json = ParseJson(bad_body->body);
  ASSERT_TRUE(error_json.ok());
  EXPECT_EQ(error_json->Find("error")->Find("code")->AsString(),
            "InvalidArgument");

  // One real request, then /stats must reflect all of the above on the
  // same keep-alive connection.
  ASSERT_TRUE(client.Request("POST", "/v1/batch",
                             R"({"pairs":[[0,1]]})")
                  .ok());
  auto stats = client.Request("GET", "/stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->status, 200);
  auto json = ParseJson(stats->body);
  ASSERT_TRUE(json.ok()) << stats->body;
  const JsonValue* pool = json->Find("pool");
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->Find("batches")->AsNumber(), 1.0);
  const JsonValue* server = json->Find("server");
  ASSERT_NE(server, nullptr);
  EXPECT_GE(server->Find("requests")->AsNumber(), 6.0);
  EXPECT_EQ(server->Find("parse_errors")->AsNumber(), 0.0);
  const JsonValue* batch_endpoint =
      json->Find("endpoints")->Find("batch");
  ASSERT_NE(batch_endpoint, nullptr);
  EXPECT_EQ(batch_endpoint->Find("requests")->AsNumber(), 3.0);
  EXPECT_EQ(batch_endpoint->Find("errors")->AsNumber(), 2.0);
  EXPECT_GE(
      batch_endpoint->Find("latency_us")->Find("p50_us")->AsNumber(), 0.0);
}

TEST_F(ServingFixture, MutateRouteIsClosedUntilEnabled) {
  StartServer();  // write path not armed
  BlockingHttpClient client = Connect();
  auto response = client.Request(
      "POST", "/v1/mutate", R"({"op":"insert_link","source":0,"target":1})");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->status, 501);
  auto json = ParseJson(response->body);
  ASSERT_TRUE(json.ok());
  EXPECT_EQ(json->Find("error")->Find("code")->AsString(), "Unsupported");
}

TEST_F(ServingFixture, MutateOverSocketAppliesAndServesTheDelta) {
  StartServer({}, {}, /*mutate=*/true);
  BlockingHttpClient client = Connect();

  // A pair the frozen index cannot reach: inserting the link must flip
  // the served answer without any rebuild.
  std::vector<NodeId> live = hopi::testing::LiveElements(c_);
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;
  for (NodeId a : live) {
    for (NodeId b : live) {
      if (a != b && !index_->IsReachable(a, b)) {
        u = a;
        v = b;
        break;
      }
    }
    if (u != kInvalidNode) break;
  }
  ASSERT_NE(u, kInvalidNode);

  std::string pair_body = "{\"pairs\":[[" + std::to_string(u) + "," +
                          std::to_string(v) + "]]}";
  auto before = client.Request("POST", "/v1/batch", pair_body);
  ASSERT_TRUE(before.ok());
  auto before_json = ParseJson(before->body);
  ASSERT_TRUE(before_json.ok());
  EXPECT_FALSE(before_json->Find("reachable")->AsArray()[0].AsBool());
  EXPECT_EQ(before_json->Find("delta_generation")->AsNumber(), 0.0);

  auto mutate = client.Request(
      "POST", "/v1/mutate",
      "{\"op\":\"insert_link\",\"source\":" + std::to_string(u) +
          ",\"target\":" + std::to_string(v) + "}");
  ASSERT_TRUE(mutate.ok()) << mutate.status();
  EXPECT_EQ(mutate->status, 200);
  auto receipt = ParseJson(mutate->body);
  ASSERT_TRUE(receipt.ok()) << mutate->body;
  EXPECT_TRUE(receipt->Find("applied")->AsBool());
  EXPECT_EQ(receipt->Find("generation")->AsNumber(), 1.0);
  EXPECT_EQ(receipt->Find("snapshot_version")->AsNumber(),
            static_cast<double>(snapshot_->version()));

  auto after = client.Request("POST", "/v1/batch", pair_body);
  ASSERT_TRUE(after.ok());
  auto after_json = ParseJson(after->body);
  ASSERT_TRUE(after_json.ok());
  EXPECT_TRUE(after_json->Find("reachable")->AsArray()[0].AsBool());
  EXPECT_EQ(after_json->Find("delta_generation")->AsNumber(), 1.0);

  // The reject taxonomy over the wire: shape -> 400, semantics -> 404,
  // method -> 405; none of them may advance the generation.
  auto malformed = client.Request("POST", "/v1/mutate",
                                  R"({"op":"insert_link","source":0})");
  ASSERT_TRUE(malformed.ok());
  EXPECT_EQ(malformed->status, 400);
  auto malformed_json = ParseJson(malformed->body);
  ASSERT_TRUE(malformed_json.ok());
  EXPECT_EQ(malformed_json->Find("error")->Find("code")->AsString(),
            "InvalidArgument");
  auto absent = client.Request(
      "POST", "/v1/mutate",
      "{\"op\":\"delete_link\",\"source\":" + std::to_string(v) +
          ",\"target\":" + std::to_string(u) + "}");
  ASSERT_TRUE(absent.ok());
  EXPECT_EQ(absent->status, 404);
  auto wrong_method = client.Request("GET", "/v1/mutate");
  ASSERT_TRUE(wrong_method.ok());
  EXPECT_EQ(wrong_method->status, 405);

  auto stats = client.Request("GET", "/stats");
  ASSERT_TRUE(stats.ok());
  auto stats_json = ParseJson(stats->body);
  ASSERT_TRUE(stats_json.ok()) << stats->body;
  const JsonValue* overlay = stats_json->Find("overlay");
  ASSERT_NE(overlay, nullptr) << stats->body;
  EXPECT_EQ(overlay->Find("mutations")->AsNumber(), 1.0);
  // Shape rejects die at the wire parser; only the semantic one (the
  // absent link) reaches the pool's failure counter.
  EXPECT_EQ(overlay->Find("mutation_failures")->AsNumber(), 1.0);
  EXPECT_EQ(overlay->Find("delta_ops")->AsNumber(), 1.0);
  EXPECT_EQ(overlay->Find("delta_generation")->AsNumber(), 1.0);
  // The pre-mutation batch served the raw base backend (empty delta
  // bypasses the overlay); only the post-mutation probe books here.
  EXPECT_GE(overlay->Find("probes")->AsNumber(), 1.0);
  EXPECT_GE(overlay->Find("bfs_fallbacks")->AsNumber(), 1.0);
  EXPECT_EQ(overlay->Find("rebuilds")->AsNumber(), 0.0);
  const JsonValue* mutate_endpoint =
      stats_json->Find("endpoints")->Find("mutate");
  ASSERT_NE(mutate_endpoint, nullptr);
  EXPECT_EQ(mutate_endpoint->Find("requests")->AsNumber(), 4.0);
  EXPECT_EQ(mutate_endpoint->Find("errors")->AsNumber(), 3.0);
}

TEST_F(ServingFixture, KeepAliveServesManySequentialRequests) {
  StartServer();
  BlockingHttpClient client = Connect();
  for (int i = 0; i < 50; ++i) {
    auto response = client.Request("POST", "/v1/batch",
                                   R"({"pairs":[[0,1],[1,0]]})");
    ASSERT_TRUE(response.ok()) << "request " << i << ": "
                               << response.status();
    EXPECT_EQ(response->status, 200);
    ASSERT_TRUE(client.connected()) << "server closed a keep-alive conn";
  }
  EXPECT_EQ(server_->Stats().connections_accepted, 1u);
}

TEST_F(ServingFixture, PipelinedRequestsGetOrderedResponses) {
  StartServer();
  BlockingHttpClient client = Connect();
  // Two requests in one write; responses must come back in order on
  // the same connection.
  std::string batch_body = R"({"pairs":[[0,1]]})";
  std::string raw =
      "POST /v1/batch HTTP/1.1\r\ncontent-length: " +
      std::to_string(batch_body.size()) + "\r\n\r\n" + batch_body +
      "GET /healthz HTTP/1.1\r\n\r\n";
  ASSERT_TRUE(client.SendRaw(raw).ok());
  std::string collected;
  // Both responses arrive without any further request; scrape them via
  // two sequential reads through the response parser by issuing
  // zero-byte "requests" is not possible with the blocking client, so
  // read raw: send a closing request and read until close.
  ASSERT_TRUE(client.SendRaw("GET /healthz HTTP/1.1\r\nconnection: close"
                             "\r\n\r\n")
                  .ok());
  auto bytes = client.ReadUntilClose();
  ASSERT_TRUE(bytes.ok());
  size_t first = bytes->find("\"reachable\":[true]");
  size_t second = bytes->find("{\"status\":\"ok\"}");
  ASSERT_NE(first, std::string::npos) << *bytes;
  ASSERT_NE(second, std::string::npos);
  EXPECT_LT(first, second) << "pipelined responses out of order";
}

TEST_F(ServingFixture, MalformedHttpGetsTypedRejectAndClose) {
  StartServer();
  struct Garbage {
    const char* bytes;
    const char* expect_status;
  };
  const Garbage cases[] = {
      {"NONSENSE\r\n\r\n", "400"},
      {"GET / HTTP/3.0\r\n\r\n", "505"},
      {"POST /v1/batch HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
       "501"},
  };
  for (const Garbage& c : cases) {
    BlockingHttpClient client = Connect();
    ASSERT_TRUE(client.SendRaw(c.bytes).ok());
    auto response = client.ReadUntilClose();
    ASSERT_TRUE(response.ok());
    EXPECT_NE(response->find(std::string("HTTP/1.1 ") + c.expect_status),
              std::string::npos)
        << "input " << c.bytes << " answered: " << *response;
  }
}

TEST_F(ServingFixture, ExpectContinueRoundTrips) {
  StartServer();
  BlockingHttpClient client = Connect();
  std::string body = R"({"pairs":[[0,1]]})";
  ASSERT_TRUE(
      client
          .SendRaw("POST /v1/batch HTTP/1.1\r\ncontent-length: " +
                   std::to_string(body.size()) +
                   "\r\nexpect: 100-continue\r\n\r\n")
          .ok());
  // The server should answer the interim 100 before seeing the body.
  // BlockingHttpClient's parser treats it as a (body-less) response.
  ASSERT_TRUE(client.SendRaw(body).ok());
  ASSERT_TRUE(client.SendRaw("GET /healthz HTTP/1.1\r\nconnection: close"
                             "\r\n\r\n")
                  .ok());
  auto bytes = client.ReadUntilClose();
  ASSERT_TRUE(bytes.ok());
  EXPECT_NE(bytes->find("HTTP/1.1 100 Continue"), std::string::npos);
  EXPECT_NE(bytes->find("\"reachable\":[true]"), std::string::npos);
}

TEST_F(ServingFixture, BurstBeyondQueueCapacitySheds429AndRecovers) {
  // The acceptance scenario: 1 worker, lane capacity 2, watermarks
  // low — then 16 concurrent closed-loop clients fire oversized
  // batches. The server must (a) answer every request with 200 or 429,
  // (b) shed at least once, (c) keep serving /healthz and /stats
  // throughout, and (d) recover to all-200 once the burst stops.
  StartServer(
      {.num_threads = 1,
       .queue_capacity = 2,
       .shed_high_watermark = 3,
       .shed_low_watermark = 1},
      {.num_io_threads = 2});
  constexpr size_t kClients = 16;
  constexpr int kRequestsPerClient = 25;

  std::string body = "{\"pairs\":[";
  Rng rng(11);
  for (int i = 0; i < 400; ++i) {
    if (i > 0) body += ',';
    body += '[' +
            std::to_string(rng.NextBounded(c_.NumElements())) + ',' +
            std::to_string(rng.NextBounded(c_.NumElements())) + ']';
  }
  body += "]}";

  // Stall the lone worker inside a blocking callback so the burst
  // provably overflows the lane on any scheduler (under ASan on one
  // core, a free-running worker can drain a closed-loop burst without
  // ever letting four requests pile up). While the gate is held,
  // outstanding = 1 executing + 2 queued = the high watermark, so
  // every further request must shed.
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  std::promise<void> entered;
  ASSERT_TRUE(pool_
                  ->SubmitBatch({.pairs = {{0, 1}}},
                                [&](Result<engine::PoolBatchResponse>) {
                                  entered.set_value();
                                  gate.wait();
                                })
                  .ok());
  entered.get_future().wait();

  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> unexpected{0};
  std::vector<std::thread> clients;
  for (size_t t = 0; t < kClients; ++t) {
    clients.emplace_back([&] {
      BlockingHttpClient client;
      if (!client.Connect("127.0.0.1", server_->port()).ok()) {
        unexpected.fetch_add(1);
        return;
      }
      for (int i = 0; i < kRequestsPerClient; ++i) {
        auto response = client.Request("POST", "/v1/batch", body);
        if (!response.ok()) {
          unexpected.fetch_add(1);
          return;
        }
        if (response->status == 200) {
          ok.fetch_add(1);
        } else if (response->status == 429) {
          shed.fetch_add(1);
        } else {
          unexpected.fetch_add(1);
        }
      }
    });
  }
  // Wait until the overload is observable, then check the control
  // plane stays responsive mid-burst, then let the worker go.
  while (shed.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  BlockingHttpClient probe = Connect();
  auto health = probe.Request("GET", "/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->status, 200);
  release.set_value();
  for (auto& client : clients) client.join();

  EXPECT_EQ(ok.load() + shed.load(),
            static_cast<uint64_t>(kClients * kRequestsPerClient));
  EXPECT_EQ(unexpected.load(), 0u);
  EXPECT_GT(shed.load(), 0u) << "burst wider than the queue never shed";
  EXPECT_GT(ok.load(), 0u) << "admission control starved everything";
  EXPECT_EQ(pool_->Stats().sheds, shed.load());

  // Recovery: burst over, the very next requests are all 200 (the
  // hysteresis gate re-admitted after the drain).
  for (int i = 0; i < 5; ++i) {
    auto response = probe.Request("POST", "/v1/batch",
                                  R"({"pairs":[[0,1]]})");
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->status, 200) << "request " << i << " after burst";
  }

  // /stats carries the overload evidence.
  auto stats = probe.Request("GET", "/stats");
  ASSERT_TRUE(stats.ok());
  auto json = ParseJson(stats->body);
  ASSERT_TRUE(json.ok());
  EXPECT_EQ(json->Find("pool")->Find("sheds")->AsNumber(),
            static_cast<double>(shed.load()));
  EXPECT_GT(json->Find("endpoints")
                ->Find("batch")
                ->Find("latency_us")
                ->Find("p99_us")
                ->AsNumber(),
            0.0);
}

TEST_F(ServingFixture, StopWithInFlightRequestsDoesNotHangOrCrash) {
  StartServer({.num_threads = 1});
  std::vector<std::thread> clients;
  std::atomic<bool> stop_now{false};
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&] {
      BlockingHttpClient client;
      if (!client.Connect("127.0.0.1", server_->port()).ok()) return;
      while (!stop_now.load()) {
        auto response = client.Request("POST", "/v1/batch",
                                       R"({"pairs":[[0,1],[2,3]]})");
        if (!response.ok()) return;  // server went away: expected
        if (!client.connected() &&
            !client.Connect("127.0.0.1", server_->port()).ok()) {
          return;
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server_->Stop();  // in-flight responders must drop safely
  stop_now.store(true);
  for (auto& client : clients) client.join();
  pool_->Shutdown();
}

TEST_F(ServingFixture, ConnectionCapRefusesExtraClients) {
  StartServer({}, {.max_connections = 2});
  BlockingHttpClient a = Connect();
  BlockingHttpClient b = Connect();
  // Make sure both are registered (a request forces the accept path).
  ASSERT_TRUE(a.Request("GET", "/healthz").ok());
  ASSERT_TRUE(b.Request("GET", "/healthz").ok());
  // The third connects at TCP level (backlog) but is closed by the
  // acceptor; its request fails rather than hanging.
  BlockingHttpClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(c.SendRaw("GET /healthz HTTP/1.1\r\n\r\n").ok());
  auto leftover = c.ReadUntilClose();
  if (leftover.ok()) {
    EXPECT_EQ(leftover->find("200"), std::string::npos)
        << "over-cap connection was served";
  }
  EXPECT_GE(server_->Stats().connections_refused, 1u);
}

}  // namespace
}  // namespace hopi::net
