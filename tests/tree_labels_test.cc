#include <gtest/gtest.h>

#include "collection/tree_labels.h"
#include "test_util.h"

namespace hopi::collection {
namespace {

TEST(TreeLabelsTest, AncestorshipMatchesParentWalk) {
  Collection c = hopi::testing::SmallDblp(30, 61);
  TreeLabels labels(c);
  auto walk_is_anc = [&c](NodeId anc, NodeId node) {
    for (NodeId x = node; x != kInvalidNode; x = c.ParentOf(x)) {
      if (x == anc) return true;
    }
    return false;
  };
  Rng rng(5);
  for (int i = 0; i < 3000; ++i) {
    NodeId a = static_cast<NodeId>(rng.NextBounded(c.NumElements()));
    NodeId b = static_cast<NodeId>(rng.NextBounded(c.NumElements()));
    bool expected = c.DocOf(a) == c.DocOf(b) && walk_is_anc(a, b);
    EXPECT_EQ(labels.IsAncestorOrSelf(a, b), expected) << a << " vs " << b;
  }
}

TEST(TreeLabelsTest, CountsMatchCollectionHelpers) {
  Collection c = hopi::testing::SmallDblp(25, 67);
  TreeLabels labels(c);
  for (NodeId e = 0; e < c.NumElements(); ++e) {
    EXPECT_EQ(labels.AncestorCount(e), c.TreeAncestorCount(e));
    EXPECT_EQ(labels.DescendantCount(e), c.TreeDescendantCount(e));
  }
}

TEST(TreeLabelsTest, PrePostAreProperIntervals) {
  Collection c = hopi::testing::SmallDblp(10, 71);
  TreeLabels labels(c);
  for (DocId d = 0; d < c.NumDocuments(); ++d) {
    const auto& els = c.ElementsOf(d);
    // Pre and post orders are permutations of [0, |doc|).
    std::vector<bool> pre_seen(els.size(), false), post_seen(els.size(), false);
    for (NodeId e : els) {
      ASSERT_LT(labels.Pre(e), els.size());
      ASSERT_LT(labels.Post(e), els.size());
      EXPECT_FALSE(pre_seen[labels.Pre(e)]);
      EXPECT_FALSE(post_seen[labels.Post(e)]);
      pre_seen[labels.Pre(e)] = true;
      post_seen[labels.Post(e)] = true;
    }
    // Root spans the whole interval.
    NodeId root = c.RootOf(d);
    EXPECT_EQ(labels.Pre(root), 0u);
    EXPECT_EQ(labels.Post(root), els.size() - 1);
  }
}

TEST(TreeLabelsTest, SelfIsAncestorOrSelf) {
  Collection c = hopi::testing::SmallDblp(5, 73);
  TreeLabels labels(c);
  for (NodeId e = 0; e < c.NumElements(); ++e) {
    EXPECT_TRUE(labels.IsAncestorOrSelf(e, e));
  }
}

TEST(TreeLabelsTest, CrossDocumentNeverAncestor) {
  Collection c = hopi::testing::SmallDblp(5, 79);
  TreeLabels labels(c);
  NodeId a = c.RootOf(0);
  NodeId b = c.RootOf(1);
  EXPECT_FALSE(labels.IsAncestorOrSelf(a, b));
  EXPECT_FALSE(labels.IsAncestorOrSelf(b, a));
}

TEST(TreeLabelsTest, SkipsRemovedDocuments) {
  Collection c = hopi::testing::SmallDblp(6, 83);
  ASSERT_TRUE(c.RemoveDocument(2).ok());
  TreeLabels labels(c);  // must not crash on dead elements
  NodeId live_root = c.RootOf(0);
  EXPECT_TRUE(labels.IsAncestorOrSelf(live_root, live_root));
}

}  // namespace
}  // namespace hopi::collection
