#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/checksum.h"
#include "util/lane_queue.h"
#include "util/thread_pool.h"
#include "util/cli.h"
#include "util/mmap_file.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/table_printer.h"

namespace hopi {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_EQ(s, Status::OK());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("thing is missing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_FALSE(s.IsIOError());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: thing is missing");
}

TEST(StatusTest, AllConstructorsSetMatchingPredicates) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::OutOfBudget("x").IsOutOfBudget());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Unsupported("x").IsUnsupported());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_EQ(Status::FailedPrecondition("x").ToString(),
            "FailedPrecondition: x");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = [] { return Status::IOError("disk"); };
  auto wrapper = [&fails]() -> Status {
    HOPI_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsIOError());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 10; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(RngTest, BoundedStaysInBounds) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(11);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(RngTest, ZipfFavorsLowRanks) {
  Rng rng(4);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.NextZipf(100, 1.1)];
  EXPECT_GT(counts[0], counts[50]);
  EXPECT_GT(counts[0], counts[99]);
  EXPECT_GT(counts[0], 20000 / 100);  // rank 0 far above uniform share
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(6);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(StatsTest, NormalQuantileKnownValues) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(NormalQuantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(NormalQuantile(0.99), 2.326348, 1e-5);
  EXPECT_NEAR(NormalQuantile(0.01), -2.326348, 1e-5);
}

TEST(StatsTest, ConfidenceIntervalShrinksWithSamples) {
  auto wide = BinomialConfidenceInterval(50, 100, 0.98);
  auto narrow = BinomialConfidenceInterval(5000, 10000, 0.98);
  EXPECT_LT(narrow.upper - narrow.lower, wide.upper - wide.lower);
}

TEST(StatsTest, PaperSampleSizeGivesShortInterval) {
  // Sec 5.2: 13,600 samples at 98% confidence -> interval length <= 0.02.
  auto ci = BinomialConfidenceInterval(6800, 13600, 0.98);
  EXPECT_LE(ci.upper - ci.lower, 0.02 + 1e-9);
}

TEST(StatsTest, IntervalCoversTruth) {
  // Sample from a known p and check the 98% CI contains it almost always.
  Rng rng(77);
  const double p = 0.37;
  int covered = 0;
  const int experiments = 200;
  for (int e = 0; e < experiments; ++e) {
    uint64_t hits = 0;
    const uint64_t n = 2000;
    for (uint64_t i = 0; i < n; ++i) hits += rng.NextBernoulli(p);
    auto ci = BinomialConfidenceInterval(hits, n, 0.98);
    if (ci.lower <= p && p <= ci.upper) ++covered;
  }
  EXPECT_GE(covered, experiments * 90 / 100);
}

TEST(StatsTest, DegenerateProportionsStayBounded) {
  auto zero = BinomialConfidenceInterval(0, 1000, 0.98);
  EXPECT_EQ(zero.lower, 0.0);
  EXPECT_GT(zero.upper, 0.0);  // safe overestimate
  auto one = BinomialConfidenceInterval(1000, 1000, 0.98);
  EXPECT_EQ(one.upper, 1.0);
  EXPECT_LT(one.lower, 1.0);
  auto empty = BinomialConfidenceInterval(0, 0, 0.98);
  EXPECT_EQ(empty.lower, 0.0);
  EXPECT_EQ(empty.upper, 1.0);
}

TEST(StatsTest, SummaryBasics) {
  Summary s = Summarize({3.0, 1.0, 2.0, 4.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 4.0);
  EXPECT_EQ(s.mean, 2.5);
  EXPECT_EQ(s.median, 2.5);
  Summary empty = Summarize({});
  EXPECT_EQ(empty.count, 0u);
}

TEST(CliTest, ParsesAllForms) {
  const char* argv[] = {"prog",         "--docs=100", "--name", "dblp",
                        "--verbose",    "--no-color", "pos1"};
  CommandLine cli;
  ASSERT_TRUE(CommandLine::Parse(7, const_cast<char**>(argv),
                                 {"docs", "name", "verbose", "color"}, &cli)
                  .ok());
  EXPECT_EQ(cli.GetInt("docs", 0), 100);
  EXPECT_EQ(cli.GetString("name", ""), "dblp");
  EXPECT_TRUE(cli.GetBool("verbose", false));
  EXPECT_FALSE(cli.GetBool("color", true));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(CliTest, RejectsUnknownFlag) {
  const char* argv[] = {"prog", "--tpyo=1"};
  CommandLine cli;
  Status s = CommandLine::Parse(2, const_cast<char**>(argv), {"docs"}, &cli);
  EXPECT_TRUE(s.IsInvalidArgument());
}

TEST(CliTest, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  CommandLine cli;
  ASSERT_TRUE(CommandLine::Parse(1, const_cast<char**>(argv), {}, &cli).ok());
  EXPECT_EQ(cli.GetInt("docs", 42), 42);
  EXPECT_EQ(cli.GetDouble("ratio", 1.5), 1.5);
  EXPECT_FALSE(cli.Has("docs"));
}

TEST(TablePrinterTest, AlignsAndFormats) {
  TablePrinter t({"name", "value"});
  t.AddRow({"short", TablePrinter::FmtCount(1289930)});
  t.AddRow({"a-much-longer-name", TablePrinter::Fmt(3.14159, 2)});
  std::ostringstream os;
  t.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("1,289,930"), std::string::npos);
  EXPECT_NE(out.find("3.14"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
}

TEST(TablePrinterTest, FmtCountSmallNumbers) {
  EXPECT_EQ(TablePrinter::FmtCount(0), "0");
  EXPECT_EQ(TablePrinter::FmtCount(999), "999");
  EXPECT_EQ(TablePrinter::FmtCount(1000), "1,000");
}

TEST(ChecksumTest, MatchesKnownCrc32Vectors) {
  // The standard IEEE CRC-32 check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
  EXPECT_EQ(Crc32("a", 1), 0xE8B7BE43u);
}

TEST(ChecksumTest, IncrementalMatchesOneShot) {
  const char data[] = "the quick brown fox jumps over the lazy dog";
  uint32_t whole = Crc32(data, sizeof(data) - 1);
  uint32_t part = Crc32(data, 10);
  part = Crc32(data + 10, sizeof(data) - 1 - 10, part);
  EXPECT_EQ(part, whole);
}

TEST(ChecksumTest, DetectsSingleBitFlip) {
  char data[] = "payload under test";
  uint32_t before = Crc32(data, sizeof(data));
  data[7] ^= 0x01;
  EXPECT_NE(Crc32(data, sizeof(data)), before);
}

TEST(MappedFileTest, MapsFileContents) {
  if (!MappedFile::Supported()) GTEST_SKIP() << "no mmap on this platform";
  std::string path = ::testing::TempDir() + "hopi_mmap_test.bin";
  const char payload[] = "mapped bytes";
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(payload, sizeof(payload), 1, f), 1u);
  std::fclose(f);
  {
    auto mapped = MappedFile::Open(path);
    ASSERT_TRUE(mapped.ok()) << mapped.status();
    ASSERT_EQ(mapped->size(), sizeof(payload));
    EXPECT_EQ(std::memcmp(mapped->data(), payload, sizeof(payload)), 0);
    // Move keeps the view valid and empties the source.
    MappedFile moved = std::move(*mapped);
    EXPECT_EQ(moved.size(), sizeof(payload));
    EXPECT_EQ(std::memcmp(moved.data(), payload, sizeof(payload)), 0);
  }
  std::remove(path.c_str());
}

TEST(MappedFileTest, MissingFileIsIOError) {
  auto mapped = MappedFile::Open("/nonexistent/dir/f.bin");
  EXPECT_FALSE(mapped.ok());
}

TEST(MappedFileTest, EmptyFileMapsToEmptyView) {
  if (!MappedFile::Supported()) GTEST_SKIP() << "no mmap on this platform";
  std::string path = ::testing::TempDir() + "hopi_mmap_empty.bin";
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  auto mapped = MappedFile::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  EXPECT_EQ(mapped->size(), 0u);
  std::remove(path.c_str());
}

// ---- ThreadPool ----

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.NumWorkers(), 4u);
  std::vector<std::atomic<int>> hits(257);
  Status s = pool.ParallelFor(0, hits.size(), [&](size_t i) {
    hits[i].fetch_add(1);
    return Status::OK();
  });
  EXPECT_TRUE(s.ok());
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, WorkerIdsIndexPerThreadScratch) {
  ThreadPool pool(3);
  std::vector<std::atomic<uint64_t>> per_worker(pool.NumWorkers());
  Status s = pool.ParallelFor(0, 100, [&](size_t, size_t worker) {
    EXPECT_LT(worker, pool.NumWorkers());
    per_worker[worker].fetch_add(1);
    return Status::OK();
  });
  EXPECT_TRUE(s.ok());
  uint64_t total = 0;
  for (const auto& c : per_worker) total += c.load();
  EXPECT_EQ(total, 100u);
}

TEST(ThreadPoolTest, PoolOfOneRunsSerially) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.NumWorkers(), 1u);
  int sum = 0;  // no synchronization: must run on the calling thread
  Status s = pool.ParallelFor(5, 10, [&](size_t i) {
    sum += static_cast<int>(i);
    return Status::OK();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(sum, 5 + 6 + 7 + 8 + 9);
}

TEST(ThreadPoolTest, EmptyRangeIsOk) {
  ThreadPool pool(2);
  Status s = pool.ParallelFor(3, 3, [&](size_t) {
    ADD_FAILURE() << "must not run";
    return Status::OK();
  });
  EXPECT_TRUE(s.ok());
}

TEST(ThreadPoolTest, PropagatesFailingStatus) {
  ThreadPool pool(4);
  Status s = pool.ParallelFor(0, 1000, [&](size_t i) {
    if (i == 37) return Status::InvalidArgument("task 37 failed");
    return Status::OK();
  });
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.ToString().find("task 37"), std::string::npos);
}

TEST(ThreadPoolTest, FirstFailureCancelsRemainingTasks) {
  // Serial pool: deterministic claim order, so the lowest failing index
  // wins and nothing past it runs.
  ThreadPool pool(1);
  std::atomic<size_t> ran{0};
  Status s = pool.ParallelFor(0, 100, [&](size_t i) {
    ran.fetch_add(1);
    if (i >= 10) return Status::Internal("boom at " + std::to_string(i));
    return Status::OK();
  });
  EXPECT_TRUE(s.IsInternal());
  EXPECT_NE(s.ToString().find("boom at 10"), std::string::npos);
  EXPECT_EQ(ran.load(), 11u);
}

TEST(ThreadPoolTest, ConcurrentFailuresReportOneOfThem) {
  ThreadPool pool(4);
  Status s = pool.ParallelFor(0, 64, [&](size_t i) {
    return Status::Internal("fail " + std::to_string(i));
  });
  EXPECT_TRUE(s.IsInternal());
  EXPECT_NE(s.ToString().find("fail "), std::string::npos);
}

TEST(ThreadPoolTest, RethrowsWorkerExceptionInsteadOfTerminating) {
  ThreadPool pool(4);
  EXPECT_THROW(
      {
        Status s = pool.ParallelFor(0, 100, [&](size_t i) {
          if (i == 50) throw std::runtime_error("worker exploded");
          return Status::OK();
        });
        (void)s;
      },
      std::runtime_error);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossLoopsAndAfterErrors) {
  ThreadPool pool(3);
  for (int round = 0; round < 3; ++round) {
    std::atomic<uint64_t> sum{0};
    Status s = pool.ParallelFor(0, 50, [&](size_t i) {
      sum.fetch_add(i);
      return Status::OK();
    });
    EXPECT_TRUE(s.ok());
    EXPECT_EQ(sum.load(), 49u * 50u / 2u);
    Status fail = pool.ParallelFor(0, 8, [&](size_t i) {
      return i == 3 ? Status::NotFound("gone") : Status::OK();
    });
    EXPECT_TRUE(fail.IsNotFound());
  }
}

TEST(ThreadPoolTest, ConcurrentLoopsFromManyThreadsAllComplete) {
  // Regression for the old "one loop at a time" restriction: several
  // threads race ParallelFor on one shared pool (the overlay-BFS shape —
  // every serving probe may try to drive its frontiers through the same
  // pool). At most one caller owns the workers; the rest must degrade to
  // inline serial loops, and every loop must still run every index
  // exactly once with no cross-talk between the loops' error channels.
  ThreadPool pool(4);
  constexpr int kCallers = 8;
  constexpr size_t kIndices = 300;
  std::vector<std::vector<std::atomic<int>>> hits(kCallers);
  for (auto& h : hits) {
    h = std::vector<std::atomic<int>>(kIndices);
  }
  std::vector<Status> statuses(kCallers);
  std::vector<std::thread> callers;
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&, t] {
      statuses[t] = pool.ParallelFor(0, kIndices, [&, t](size_t i) {
        hits[t][i].fetch_add(1);
        // A failing caller must not cancel or poison anyone else's loop.
        if (t == 0 && i == kIndices - 1) {
          return Status::Internal("caller 0 fails its last index");
        }
        return Status::OK();
      });
    });
  }
  for (auto& c : callers) c.join();
  EXPECT_TRUE(statuses[0].IsInternal());
  for (int t = 1; t < kCallers; ++t) {
    EXPECT_TRUE(statuses[t].ok()) << "caller " << t << ": " << statuses[t];
    for (size_t i = 0; i < kIndices; ++i) {
      ASSERT_EQ(hits[t][i].load(), 1) << "caller " << t << " index " << i;
    }
  }
}

TEST(ThreadPoolTest, ReentrantLoopFallsBackToInlineExecution) {
  // A task that calls ParallelFor on its own pool must not deadlock or
  // interleave with the outer loop's index space — the nested call runs
  // inline on the task's thread.
  ThreadPool pool(3);
  std::atomic<uint64_t> inner_total{0};
  Status s = pool.ParallelFor(0, 16, [&](size_t) {
    uint64_t local = 0;
    Status inner = pool.ParallelFor(0, 10, [&](size_t j) {
      local += j;
      return Status::OK();
    });
    EXPECT_TRUE(inner.ok());
    EXPECT_EQ(local, 45u);  // inline: no other thread touched `local`
    inner_total.fetch_add(local);
    return Status::OK();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(inner_total.load(), 16u * 45u);
}

// ---- Rng::Fork ----

TEST(RngForkTest, SameStreamIsReproducible) {
  Rng parent(0xF0F0F0F0ULL);
  Rng a = parent.Fork(5);
  Rng b = parent.Fork(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngForkTest, DistinctStreamsDiffer) {
  Rng parent(0xF0F0F0F0ULL);
  Rng a = parent.Fork(1);
  Rng b = parent.Fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngForkTest, ForkDoesNotAdvanceParent) {
  Rng forked(42);
  Rng untouched(42);
  Rng child = forked.Fork(7);
  (void)child.Next();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(forked.Next(), untouched.Next());
}

TEST(RngForkTest, ForkIsOrderIndependent) {
  Rng parent(99);
  Rng first = parent.Fork(3);
  Rng other = parent.Fork(8);
  Rng again = parent.Fork(3);
  (void)other;
  for (int i = 0; i < 50; ++i) EXPECT_EQ(first.Next(), again.Next());
}

TEST(RngForkTest, ChildStreamDecorrelatedFromParent) {
  Rng parent(1234);
  Rng child = parent.Fork(0);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.Next() == child.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

// ---- LaneQueue ----

TEST(LaneQueueTest, FifoWithinOneLane) {
  LaneQueue<int> q(2);
  EXPECT_EQ(q.NumLanes(), 2u);
  EXPECT_TRUE(q.Push(0, 1));
  EXPECT_TRUE(q.Push(0, 2));
  EXPECT_TRUE(q.Push(1, 9));
  EXPECT_EQ(q.Pop(0), 1);
  EXPECT_EQ(q.Pop(0), 2);
  EXPECT_EQ(q.Pop(1), 9);
  EXPECT_EQ(q.TotalQueued(), 0u);
}

TEST(LaneQueueTest, LeastLoadedPicksEmptiestLane) {
  LaneQueue<int> q(3);
  EXPECT_EQ(q.LeastLoadedLane(), 0u);  // all empty: lowest index
  ASSERT_TRUE(q.Push(0, 1));
  ASSERT_TRUE(q.Push(2, 1));
  EXPECT_EQ(q.LeastLoadedLane(), 1u);
  ASSERT_TRUE(q.Push(1, 1));
  ASSERT_TRUE(q.Push(1, 2));
  EXPECT_EQ(q.LeastLoadedLane(), 0u);  // 0 and 2 tie at 1 item
  EXPECT_EQ(q.Depths(), (std::vector<size_t>{1, 2, 1}));
}

TEST(LaneQueueTest, CloseDrainsThenReturnsNullopt) {
  LaneQueue<int> q(1);
  ASSERT_TRUE(q.Push(0, 7));
  q.Close();
  EXPECT_FALSE(q.Push(0, 8));  // rejected...
  EXPECT_EQ(q.Pop(0), 7);      // ...but queued work still drains
  EXPECT_EQ(q.Pop(0), std::nullopt);
  EXPECT_TRUE(q.closed());
  q.Close();  // idempotent
}

TEST(LaneQueueTest, CloseWakesBlockedConsumer) {
  LaneQueue<int> q(1);
  std::thread consumer([&] { EXPECT_EQ(q.Pop(0), std::nullopt); });
  q.Close();
  consumer.join();
}

TEST(LaneQueueTest, ManyProducersOneConsumerPerLane) {
  constexpr size_t kLanes = 3;
  constexpr int kPerProducer = 200;
  LaneQueue<int> q(kLanes);
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push((p + i) % kLanes, p * kPerProducer + i));
      }
    });
  }
  std::atomic<int> consumed{0};
  std::vector<std::thread> consumers;
  for (size_t lane = 0; lane < kLanes; ++lane) {
    consumers.emplace_back([&q, &consumed, lane] {
      while (q.Pop(lane)) consumed.fetch_add(1);
    });
  }
  for (auto& p : producers) p.join();
  q.Close();
  for (auto& c : consumers) c.join();
  EXPECT_EQ(consumed.load(), 4 * kPerProducer);
}

// ---- bounded LaneQueue (overload shedding substrate) ----

TEST(LaneQueueBoundedTest, TryPushShedsAtCapacityAndReadmitsAfterDrain) {
  LaneQueue<int> q(2, /*capacity_per_lane=*/2);
  EXPECT_EQ(q.CapacityPerLane(), 2u);
  EXPECT_EQ(q.TryPush(0, 1), LanePush::kAccepted);
  EXPECT_EQ(q.TryPush(0, 2), LanePush::kAccepted);
  EXPECT_EQ(q.TryPush(0, 3), LanePush::kShed);  // lane 0 full
  EXPECT_EQ(q.TryPush(1, 9), LanePush::kAccepted);  // lane 1 unaffected
  EXPECT_EQ(q.Pop(0), 1);  // drain one slot...
  EXPECT_EQ(q.TryPush(0, 4), LanePush::kAccepted);  // ...re-admits
  EXPECT_EQ(q.Pop(0), 2);
  EXPECT_EQ(q.Pop(0), 4);  // shed item 3 was never queued
  EXPECT_EQ(q.Pop(1), 9);
}

TEST(LaneQueueBoundedTest, BlockingPushIgnoresCapacity) {
  // The trusted in-process path (futures API) keeps its pre-overload
  // semantics: Push never sheds.
  LaneQueue<int> q(1, /*capacity_per_lane=*/1);
  EXPECT_TRUE(q.Push(0, 1));
  EXPECT_TRUE(q.Push(0, 2));
  EXPECT_EQ(q.Depths(), (std::vector<size_t>{2}));
}

TEST(LaneQueueBoundedTest, ZeroCapacityMeansUnbounded) {
  LaneQueue<int> q(1);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(q.TryPush(0, i), LanePush::kAccepted);
  }
}

TEST(LaneQueueBoundedTest, TryPushAfterCloseReportsClosed) {
  LaneQueue<int> q(1, 4);
  ASSERT_EQ(q.TryPush(0, 7), LanePush::kAccepted);
  q.Close();
  EXPECT_EQ(q.TryPush(0, 8), LanePush::kClosed);
  EXPECT_EQ(q.Pop(0), 7);  // queued work still drains after Close
  EXPECT_EQ(q.Pop(0), std::nullopt);
}

TEST(LaneQueueBoundedTest, ShedDrainCloseInterleavingNeverLosesAccepted) {
  // Producers TryPush as fast as they can against a consumer that
  // drains slowly, then everything closes mid-flight: every kAccepted
  // item must come out exactly once, and sheds must be non-zero (the
  // bound actually bit).
  constexpr size_t kCapacity = 4;
  constexpr int kPerProducer = 500;
  LaneQueue<int> q(1, kCapacity);
  std::atomic<int> accepted{0};
  std::atomic<int> shed{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        switch (q.TryPush(0, i)) {
          case LanePush::kAccepted:
            accepted.fetch_add(1);
            break;
          case LanePush::kShed:
            shed.fetch_add(1);
            break;
          case LanePush::kClosed:
            return;
        }
      }
    });
  }
  std::atomic<int> popped{0};
  std::thread consumer([&] {
    while (q.Pop(0)) popped.fetch_add(1);
  });
  for (auto& p : producers) p.join();
  q.Close();
  consumer.join();
  EXPECT_EQ(popped.load(), accepted.load());
  EXPECT_GT(shed.load(), 0);
  EXPECT_LE(q.TotalQueued(), 0u);
}

// ---- LatencyHistogram ----

TEST(LatencyHistogramTest, BucketIndexIsMonotoneAndTotal) {
  size_t prev = 0;
  const uint64_t values[] = {0,     1,     2,     3,           4,
                             5,     7,     8,     100,         1000,
                             65535, 65536, 1ull << 40, UINT64_MAX};
  for (uint64_t v : values) {
    size_t index = LatencyHistogram::BucketIndex(v);
    EXPECT_GE(index, prev) << "value " << v;
    EXPECT_LT(index, LatencyHistogram::kNumBuckets);
    // The bucket's upper bound must not undershoot its members.
    EXPECT_GE(LatencyHistogram::BucketUpperBound(index), v);
    prev = index;
  }
}

TEST(LatencyHistogramTest, SmallValuesAreExact) {
  // Values 0..3 get dedicated buckets: sub-microsecond noise should
  // not blur into each other.
  for (uint64_t v = 0; v < 4; ++v) {
    EXPECT_EQ(LatencyHistogram::BucketIndex(v), v);
    EXPECT_EQ(LatencyHistogram::BucketUpperBound(v), v);
  }
}

TEST(LatencyHistogramTest, QuantilesOfUniformRampAreRoughlyRight) {
  LatencyHistogram h;
  for (uint64_t v = 1; v <= 10000; ++v) h.Record(v);
  auto snapshot = h.TakeSnapshot();
  EXPECT_EQ(snapshot.count, 10000u);
  // Log-bucketed: 4 sub-buckets per octave bounds relative error by
  // ~25% of the value; allow a loose band around each true quantile.
  uint64_t p50 = snapshot.ValueAtQuantile(0.50);
  uint64_t p99 = snapshot.ValueAtQuantile(0.99);
  EXPECT_GE(p50, 4000u);
  EXPECT_LE(p50, 7000u);
  EXPECT_GE(p99, 9000u);
  EXPECT_LE(p99, 13000u);
  EXPECT_NEAR(snapshot.Mean(), 5000.5, 1.0);
  // Monotone in p.
  EXPECT_LE(snapshot.ValueAtQuantile(0.1), p50);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, snapshot.ValueAtQuantile(1.0));
}

TEST(LatencyHistogramTest, EmptySnapshotQuantilesAreZero) {
  LatencyHistogram h;
  auto snapshot = h.TakeSnapshot();
  EXPECT_EQ(snapshot.count, 0u);
  EXPECT_EQ(snapshot.ValueAtQuantile(0.5), 0u);
  EXPECT_EQ(snapshot.Mean(), 0.0);
}

TEST(LatencyHistogramTest, ConcurrentRecordersLoseNothing) {
  LatencyHistogram h;
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        h.Record(i * (t + 1) % 100000);
      }
    });
  }
  for (auto& t : threads) t.join();
  auto snapshot = h.TakeSnapshot();
  EXPECT_EQ(snapshot.count, kThreads * kPerThread);
  uint64_t total = 0;
  for (uint64_t b : snapshot.buckets) total += b;
  EXPECT_EQ(total, kThreads * kPerThread);
}

}  // namespace
}  // namespace hopi
