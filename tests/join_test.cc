// Focused tests for the PSG construction and the two cover-join
// algorithms (paper Sec 3.3 / 4.1), below the BuildIndex integration
// level.
#include <gtest/gtest.h>

#include "graph/subgraph.h"
#include "hopi/join.h"
#include "partition/psg.h"
#include "test_util.h"
#include "twohop/builder.h"

namespace hopi {
namespace {

using collection::Collection;
using collection::DocId;

/// Hand-built two-partition fixture mirroring the paper's Figure 3:
/// partition P1 = {d1}, P2 = {d2, d3}; cross links 3->4 and (7->8 stays
/// inside P2 in our split, so we add another cross pair).
struct TwoPartitionFixture {
  Collection c;
  partition::Partitioning partitioning;
  NodeId e1, e2, e3, e4, e5, e6, e7, e8, e9;

  TwoPartitionFixture() {
    DocId d1 = c.AddDocument("d1.xml");
    e1 = c.AddElement(d1, "r");
    e2 = c.AddElement(d1, "a", e1);
    e3 = c.AddElement(d1, "b", e1);
    DocId d2 = c.AddDocument("d2.xml");
    e4 = c.AddElement(d2, "r");
    e5 = c.AddElement(d2, "a", e4);
    e6 = c.AddElement(d2, "b", e5);
    e7 = c.AddElement(d2, "c", e4);
    DocId d3 = c.AddDocument("d3.xml");
    e8 = c.AddElement(d3, "r");
    e9 = c.AddElement(d3, "a", e8);
    c.AddLink(e3, e4);  // d1 -> d2 (cross partition)
    c.AddLink(e7, e8);  // d2 -> d3 (inside partition 1)
    c.AddLink(e9, e2);  // d3 -> d1 (cross partition, creates a cycle)

    partitioning.partitions = {{d1}, {d2, d3}};
    partitioning.part_of = {0, 1, 1};
    for (const collection::Link& l : c.Links()) {
      if (partitioning.part_of[c.DocOf(l.source)] !=
          partitioning.part_of[c.DocOf(l.target)]) {
        partitioning.cross_links.push_back(l);
      }
    }
  }

  /// Unified partition covers (built per partition, translated to global).
  twohop::IndexedCover PartitionCovers(bool with_distance = false) {
    twohop::TwoHopCover unified(c.NumElements());
    for (const auto& docs : partitioning.partitions) {
      std::vector<NodeId> elements;
      for (DocId d : docs) {
        const auto& els = c.ElementsOf(d);
        elements.insert(elements.end(), els.begin(), els.end());
      }
      InducedSubgraph sub = BuildInducedSubgraph(c.ElementGraph(), elements);
      twohop::CoverBuildOptions options;
      options.with_distance = with_distance;
      auto cover = twohop::BuildCover(sub.graph, options);
      EXPECT_TRUE(cover.ok());
      for (NodeId local = 0; local < cover->NumNodes(); ++local) {
        for (const auto& e : cover->In(local)) {
          unified.AddIn(sub.Global(local), sub.Global(e.center), e.dist);
        }
        for (const auto& e : cover->Out(local)) {
          unified.AddOut(sub.Global(local), sub.Global(e.center), e.dist);
        }
      }
    }
    return twohop::IndexedCover(std::move(unified));
  }
};

TEST(PsgTest, NodesAreCrossLinkEndpoints) {
  TwoPartitionFixture f;
  twohop::IndexedCover covers = f.PartitionCovers();
  auto psg = partition::BuildPsg(f.c, f.partitioning, covers, false);
  // Cross links: e3->e4 and e9->e2. Endpoints: e3, e4, e9, e2.
  EXPECT_EQ(psg.graph.NumNodes(), 4u);
  EXPECT_NE(psg.PsgNodeOf(f.e3), kInvalidNode);
  EXPECT_NE(psg.PsgNodeOf(f.e4), kInvalidNode);
  EXPECT_NE(psg.PsgNodeOf(f.e9), kInvalidNode);
  EXPECT_NE(psg.PsgNodeOf(f.e2), kInvalidNode);
  EXPECT_EQ(psg.PsgNodeOf(f.e7), kInvalidNode);  // internal link only
}

TEST(PsgTest, InternalEdgesUseWithinPartitionReachability) {
  TwoPartitionFixture f;
  twohop::IndexedCover covers = f.PartitionCovers();
  auto psg = partition::BuildPsg(f.c, f.partitioning, covers, false);
  // Inside partition 1: target e4 reaches source e9 via e7 -> e8 -> e9.
  NodeId t = psg.PsgNodeOf(f.e4);
  NodeId s = psg.PsgNodeOf(f.e9);
  ASSERT_NE(t, kInvalidNode);
  ASSERT_NE(s, kInvalidNode);
  EXPECT_TRUE(psg.graph.HasEdge(t, s));
  // Inside partition 0: target e2 does NOT reach source e3 (siblings).
  NodeId t2 = psg.PsgNodeOf(f.e2);
  NodeId s2 = psg.PsgNodeOf(f.e3);
  EXPECT_FALSE(psg.graph.HasEdge(t2, s2));
}

TEST(PsgTest, DistanceModeCarriesWeights) {
  TwoPartitionFixture f;
  twohop::IndexedCover covers = f.PartitionCovers(true);
  auto psg = partition::BuildPsg(f.c, f.partitioning, covers, true);
  NodeId t = psg.PsgNodeOf(f.e4);
  // e4 -> e7 -> e8 -> e9 = 3 hops within partition 1.
  bool found = false;
  for (const partition::PsgEdge& e : psg.weighted_adj[t]) {
    if (e.to == psg.PsgNodeOf(f.e9)) {
      EXPECT_EQ(e.weight, 3u);
      EXPECT_FALSE(e.is_link);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(JoinTest, RecursiveJoinCoversFixture) {
  TwoPartitionFixture f;
  twohop::IndexedCover covers = f.PartitionCovers();
  JoinStats stats;
  ASSERT_TRUE(
      JoinCoversRecursive(f.c, f.partitioning, false, &covers, &stats).ok());
  EXPECT_EQ(stats.cross_links, 2u);
  EXPECT_GT(stats.psg_nodes, 0u);
  Status valid = twohop::ValidateCover(covers.cover(), f.c.ElementGraph());
  EXPECT_TRUE(valid.ok()) << valid;
  // Cross-partition chain d1 -> d2 -> d3: e3 reaches e9 through both
  // links; e9's own link lands on leaf e2, which goes nowhere further.
  EXPECT_TRUE(covers.cover().IsConnected(f.e3, f.e9));
  EXPECT_TRUE(covers.cover().IsConnected(f.e9, f.e2));
  EXPECT_FALSE(covers.cover().IsConnected(f.e9, f.e6));
}

TEST(JoinTest, IncrementalJoinCoversFixture) {
  TwoPartitionFixture f;
  twohop::IndexedCover covers = f.PartitionCovers();
  ASSERT_TRUE(
      JoinCoversIncremental(f.c, f.partitioning, false, &covers).ok());
  Status valid = twohop::ValidateCover(covers.cover(), f.c.ElementGraph());
  EXPECT_TRUE(valid.ok()) << valid;
}

TEST(JoinTest, BothJoinsWithDistance) {
  TwoPartitionFixture f;
  for (bool recursive : {true, false}) {
    twohop::IndexedCover covers = f.PartitionCovers(true);
    Status s = recursive
                   ? JoinCoversRecursive(f.c, f.partitioning, true, &covers)
                   : JoinCoversIncremental(f.c, f.partitioning, true, &covers);
    ASSERT_TRUE(s.ok());
    Status valid =
        twohop::ValidateCover(covers.cover(), f.c.ElementGraph(), true);
    EXPECT_TRUE(valid.ok()) << "recursive=" << recursive << ": " << valid;
    // Spot distance: e1 -> e8 goes e1->e3 (1) -link-> e4 (1) -> e7 (1)
    // -link-> e8 (1) = 4 hops.
    EXPECT_EQ(*covers.cover().Distance(f.e1, f.e8), 4u);
  }
}

TEST(JoinTest, EmptyCrossLinksIsNoop) {
  TwoPartitionFixture f;
  f.partitioning.cross_links.clear();
  twohop::IndexedCover covers = f.PartitionCovers();
  uint64_t before = covers.cover().Size();
  JoinStats stats;
  ASSERT_TRUE(
      JoinCoversRecursive(f.c, f.partitioning, false, &covers, &stats).ok());
  EXPECT_EQ(covers.cover().Size(), before);
  EXPECT_EQ(stats.label_additions, 0u);
}

TEST(JoinTest, PsgPartitionedVariantMatchesWholeTraversal) {
  // Sec 4.1's recursive PSG partitioning must produce an equally valid
  // cover. Force tiny PSG partitions so propagation crosses boundaries.
  TwoPartitionFixture f;
  for (uint64_t cap : {1u, 2u, 3u}) {
    twohop::IndexedCover covers = f.PartitionCovers();
    JoinOptions options;
    options.psg_partition_cap = cap;
    JoinStats stats;
    ASSERT_TRUE(JoinCoversRecursive(f.c, f.partitioning, false, &covers,
                                    &stats, options)
                    .ok());
    EXPECT_GE(stats.psg_partitions, 1u);
    Status valid = twohop::ValidateCover(covers.cover(), f.c.ElementGraph());
    EXPECT_TRUE(valid.ok()) << "cap=" << cap << ": " << valid;
  }
}

TEST(JoinTest, PsgPartitionedVariantWithDistance) {
  TwoPartitionFixture f;
  twohop::IndexedCover covers = f.PartitionCovers(true);
  JoinOptions options;
  options.psg_partition_cap = 2;
  JoinStats stats;
  ASSERT_TRUE(JoinCoversRecursive(f.c, f.partitioning, true, &covers, &stats,
                                  options)
                  .ok());
  EXPECT_GT(stats.psg_partitions, 1u);
  Status valid =
      twohop::ValidateCover(covers.cover(), f.c.ElementGraph(), true);
  EXPECT_TRUE(valid.ok()) << valid;
  EXPECT_EQ(*covers.cover().Distance(f.e1, f.e8), 4u);
}

TEST(JoinTest, HbarUsesLinkTargetsAsCenters) {
  TwoPartitionFixture f;
  twohop::IndexedCover covers = f.PartitionCovers();
  JoinStats stats;
  ASSERT_TRUE(
      JoinCoversRecursive(f.c, f.partitioning, false, &covers, &stats).ok());
  // e3's Lout must mention the reachable cross-link targets (e4 and,
  // through the PSG, e2).
  bool has_e4 = false;
  for (const auto& entry : covers.cover().Out(f.e3)) {
    if (entry.center == f.e4) has_e4 = true;
  }
  EXPECT_TRUE(has_e4);
  EXPECT_GT(stats.hbar_entries, 0u);
  EXPECT_GT(stats.hhat_entries, 0u);
}

}  // namespace
}  // namespace hopi
