// Randomized differential harness (the correctness proof behind the
// serving layer): for random collections and random maintenance-op
// sequences, every access path — the four ReachabilityBackend adapters
// AND an EnginePool serving over a frozen snapshot — must agree with
// the exhaustively materialized TransitiveClosureIndex on the FULL
// probe matrix, reachability and (when built) distances.
//
// The closure is rebuilt from the mutated element graph after the ops,
// so it is an independent oracle: it never sees the incremental label
// updates, only the graph they claim to describe. 20+ (graph,
// op-sequence) scenarios run as parameterized tests; every scenario is
// a pure function of its seed, so a failure reproduces by number.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "engine/backends.h"
#include "engine/engine_pool.h"
#include "engine/snapshot.h"
#include "hopi/build.h"
#include "test_util.h"

namespace hopi {
namespace {

using collection::Collection;
using collection::DocId;

// ---- random maintenance ops ----

// Applies one random maintenance operation drawn from `rng` to the
// (collection, index) pair. Returns a description of what ran (for
// failure messages); ops that find no applicable target (e.g. deleting
// a link from a link-less collection) degrade to a no-op.
std::string ApplyRandomOp(Rng* rng, Collection* c, HopiIndex* index,
                          int* doc_counter) {
  switch (rng->NextBounded(4)) {
    case 0: {  // InsertLink between two live elements
      std::vector<NodeId> live = testing::LiveElements(*c);
      for (int attempt = 0; attempt < 10; ++attempt) {
        NodeId u = live[rng->NextBounded(live.size())];
        NodeId v = live[rng->NextBounded(live.size())];
        if (u == v || c->ElementGraph().HasEdge(u, v)) continue;
        Status s = index->InsertLink(u, v);
        EXPECT_TRUE(s.ok()) << s;
        return "InsertLink(" + std::to_string(u) + "," + std::to_string(v) +
               ")";
      }
      return "InsertLink(no-op)";
    }
    case 1: {  // DeleteLink of a random existing link
      if (c->Links().empty()) return "DeleteLink(no-op)";
      collection::Link l = c->Links()[rng->NextBounded(c->Links().size())];
      Status s = index->DeleteLink(l.source, l.target);
      EXPECT_TRUE(s.ok()) << s;
      return "DeleteLink(" + std::to_string(l.source) + "," +
             std::to_string(l.target) + ")";
    }
    case 2: {  // InsertDocument: ingest a small tree + cross links
      DocId doc = c->AddDocument("inserted" + std::to_string((*doc_counter)++) +
                                 ".xml");
      NodeId root = c->AddElement(doc, "article");
      std::vector<NodeId> nodes{root};
      size_t extra = rng->NextBounded(6);
      for (size_t i = 0; i < extra; ++i) {
        nodes.push_back(c->AddElement(
            doc, i % 2 == 0 ? "section" : "cite",
            nodes[rng->NextBounded(nodes.size())]));
      }
      // Outgoing cross links are part of the ingested document and are
      // merged by InsertDocument itself.
      std::vector<NodeId> live = testing::LiveElements(*c);
      size_t out_links = rng->NextBounded(3);
      for (size_t i = 0; i < out_links; ++i) {
        NodeId u = nodes[rng->NextBounded(nodes.size())];
        NodeId v = live[rng->NextBounded(live.size())];
        if (c->DocOf(v) == doc || c->ElementGraph().HasEdge(u, v)) continue;
        c->AddLink(u, v);
      }
      Status s = index->InsertDocument(doc);
      EXPECT_TRUE(s.ok()) << s;
      // Incoming links arrive after the document exists, as separate
      // link insertions (the maintenance paper's ordering).
      if (rng->NextBounded(2) == 0 && live.size() > 1) {
        NodeId u = live[rng->NextBounded(live.size())];
        if (c->DocOf(u) != doc && !c->ElementGraph().HasEdge(u, root)) {
          Status in = index->InsertLink(u, root);
          EXPECT_TRUE(in.ok()) << in;
        }
      }
      return "InsertDocument(" + std::to_string(doc) + ")";
    }
    default: {  // DeleteDocument of a random live document
      if (c->NumLiveDocuments() <= 1) return "DeleteDocument(no-op)";
      for (int attempt = 0; attempt < 10; ++attempt) {
        DocId d = static_cast<DocId>(rng->NextBounded(c->NumDocuments()));
        if (!c->IsLive(d)) continue;
        Status s = index->DeleteDocument(d);
        EXPECT_TRUE(s.ok()) << s;
        return "DeleteDocument(" + std::to_string(d) + ")";
      }
      return "DeleteDocument(no-op)";
    }
  }
}

// ---- the differential check ----

// Asserts that every backend and an EnginePool over a frozen snapshot
// answer the full n×n probe matrix exactly like the closure oracle.
void ExpectAllAccessPathsMatchOracle(const Collection& c,
                                     const HopiIndex& index,
                                     bool with_distance,
                                     const std::string& context) {
  const auto n = static_cast<NodeId>(c.NumElements());
  TransitiveClosureIndex closure =
      TransitiveClosureIndex::Build(c.ElementGraph(), with_distance);

  storage::LinLoutStore store =
      storage::LinLoutStore::FromCover(index.cover(), with_distance);
  std::string path = ::testing::TempDir() + "hopi_differential_" + context +
                     ".bin";
  ASSERT_TRUE(store.WriteToFile(path).ok());
  auto mapped = storage::MappedLinLoutStore::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  // The same cover block-compressed: the v4 decode path faces the
  // oracle too. Tiny blocks force multi-block sections even on these
  // small scenario covers.
  std::string v4_path = ::testing::TempDir() + "hopi_differential_" + context +
                        "_v4.bin";
  storage::StoreWriteOptions v4_options;
  v4_options.format_version = storage::kFormatVersionV4;
  v4_options.compress.target_block_bytes = 256;
  v4_options.compress.cluster_split_bytes = 64;
  ASSERT_TRUE(store.WriteToFile(v4_path, v4_options).ok());
  auto mapped_v4 = storage::MappedLinLoutStore::Open(v4_path);
  ASSERT_TRUE(mapped_v4.ok()) << mapped_v4.status();

  engine::HopiIndexBackend hopi_backend(index);
  engine::LinLoutBackend linlout_backend(store);
  engine::MappedLinLoutBackend mapped_backend(*mapped);
  engine::MappedLinLoutBackend mapped_v4_backend(*mapped_v4);
  engine::ClosureBackend closure_backend(closure, with_distance);
  const engine::ReachabilityBackend* backends[] = {
      &hopi_backend, &linlout_backend, &mapped_backend, &mapped_v4_backend,
      &closure_backend};

  // Scalar probes: full matrix against every backend. Mismatches are
  // counted manually (EXPECT per probe would drown the log — and the
  // runtime — at n² × 4 probes); the first one is reported in detail.
  size_t mismatches = 0;
  for (const engine::ReachabilityBackend* backend : backends) {
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = 0; v < n; ++v) {
        bool expect = closure.IsReachable(u, v);
        bool got = backend->IsReachable(u, v);
        bool dist_ok = true;
        if (with_distance) {
          dist_ok = backend->Distance(u, v) == closure.Distance(u, v);
        }
        if (got != expect || !dist_ok) {
          if (mismatches == 0) {
            ADD_FAILURE() << context << ": backend " << backend->Name()
                          << " disagrees with closure on " << u << "->" << v
                          << " (reach " << got << " vs " << expect << ")";
          }
          ++mismatches;
        }
      }
    }
  }
  EXPECT_EQ(mismatches, 0u) << context;

  // The pool route: a frozen deep copy of the (possibly maintained)
  // index served by 3 workers; the whole matrix goes through Batch().
  auto snapshot = engine::BackendSnapshot::Freeze(index);
  engine::EnginePoolOptions pool_options;
  pool_options.num_threads = 3;
  engine::EnginePool pool(snapshot, pool_options);
  std::vector<std::pair<engine::NodePair, bool>> expected;
  std::vector<std::future<engine::PoolBatchResponse>> futures;
  std::vector<engine::BatchRequest> requests;
  engine::BatchRequest request;
  request.want_distances = with_distance;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      request.pairs.push_back({u, v});
      if (request.pairs.size() == 1024) {
        requests.push_back(std::exchange(
            request, engine::BatchRequest{.pairs = {},
                                          .want_distances = with_distance}));
      }
    }
  }
  if (!request.pairs.empty()) requests.push_back(std::move(request));
  for (engine::BatchRequest& r : requests) {
    auto future = pool.SubmitBatch(std::move(r));
    ASSERT_TRUE(future.ok()) << future.status();
    futures.push_back(std::move(future).value());
  }
  size_t pool_mismatches = 0;
  for (size_t b = 0; b < futures.size(); ++b) {
    engine::PoolBatchResponse response = futures[b].get();
    EXPECT_EQ(response.snapshot_version, snapshot->version());
    // Requests were chunked in row-major order, so the flat index
    // recovers each probe's (u, v).
    for (size_t i = 0; i < response.batch.reachable.size(); ++i) {
      size_t flat = b * 1024 + i;
      NodeId u = static_cast<NodeId>(flat / n);
      NodeId v = static_cast<NodeId>(flat % n);
      bool expect = closure.IsReachable(u, v);
      if (response.batch.reachable[i] != expect) ++pool_mismatches;
      if (with_distance &&
          response.batch.distances[i] != closure.Distance(u, v)) {
        ++pool_mismatches;
      }
    }
  }
  EXPECT_EQ(pool_mismatches, 0u) << context << ": EnginePool disagrees";
  std::remove(path.c_str());
  std::remove(v4_path.c_str());
}

// ---- scenarios ----

struct Scenario {
  uint64_t seed;
};

class DifferentialScenario : public ::testing::TestWithParam<Scenario> {};

TEST_P(DifferentialScenario, AllAccessPathsMatchClosureAfterMaintenance) {
  const uint64_t seed = GetParam().seed;
  Rng rng(seed * 7919 + 1);
  // Scenario shape is itself randomized: document count, tree sizes,
  // link density, op count, distance mode and partitioning all vary.
  size_t docs = 4 + rng.NextBounded(6);
  size_t mean_extra = 5 + rng.NextBounded(8);
  size_t links = 6 + rng.NextBounded(18);
  size_t ops = 5 + rng.NextBounded(6);
  bool with_distance = seed % 2 == 1;

  Collection c = testing::RandomCollection(docs, mean_extra, links, seed);
  IndexBuildOptions options;
  options.with_distance = with_distance;
  // Force multi-partition builds for a third of the scenarios so the
  // joined covers face the maintenance ops too.
  if (seed % 3 == 0) options.partition.max_connections = 400;
  auto built = BuildIndex(&c, options);
  ASSERT_TRUE(built.ok()) << built.status();
  HopiIndex index = std::move(built).value();

  std::string trace;
  int doc_counter = 0;
  for (size_t op = 0; op < ops; ++op) {
    trace += (op ? ", " : "") + ApplyRandomOp(&rng, &c, &index, &doc_counter);
  }
  SCOPED_TRACE("seed " + std::to_string(seed) + ": " + trace);
  ExpectAllAccessPathsMatchOracle(c, index, with_distance,
                                  "seed" + std::to_string(seed));
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphsAndOpSequences, DifferentialScenario,
    ::testing::ValuesIn([] {
      std::vector<Scenario> scenarios;
      for (uint64_t seed = 1; seed <= 24; ++seed) scenarios.push_back({seed});
      return scenarios;
    }()),
    [](const ::testing::TestParamInfo<Scenario>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

// The no-maintenance baseline: a freshly built index over a random
// collection already matches the oracle through every access path
// (separates "build is wrong" from "maintenance broke it" when a
// seeded scenario fails).
TEST(DifferentialBaseline, FreshBuildMatchesOracle) {
  for (uint64_t seed : {101u, 102u}) {
    Collection c = testing::RandomCollection(6, 8, 12, seed);
    IndexBuildOptions options;
    options.with_distance = seed % 2 == 0;
    auto built = BuildIndex(&c, options);
    ASSERT_TRUE(built.ok()) << built.status();
    ExpectAllAccessPathsMatchOracle(c, *built, options.with_distance,
                                    "fresh" + std::to_string(seed));
  }
}

}  // namespace
}  // namespace hopi
