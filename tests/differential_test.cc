// Randomized differential harness (the correctness proof behind the
// serving layer): for random collections and random maintenance-op
// sequences, every access path — the four ReachabilityBackend adapters
// AND an EnginePool serving over a frozen snapshot — must agree with
// the exhaustively materialized TransitiveClosureIndex on the FULL
// probe matrix, reachability and (when built) distances.
//
// The closure is rebuilt from the mutated element graph after the ops,
// so it is an independent oracle: it never sees the incremental label
// updates, only the graph they claim to describe. 20+ (graph,
// op-sequence) scenarios run as parameterized tests; every scenario is
// a pure function of its seed, so a failure reproduces by number.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "engine/backends.h"
#include "engine/delta_overlay.h"
#include "engine/engine_pool.h"
#include "engine/shard_router.h"
#include "engine/sharded_engine.h"
#include "engine/snapshot.h"
#include "hopi/build.h"
#include "test_util.h"
#include "twohop/join_kernel.h"

namespace hopi {
namespace {

using collection::Collection;
using collection::DocId;

// ---- random maintenance ops ----

// Applies one random maintenance operation drawn from `rng` to the
// (collection, index) pair. Returns a description of what ran (for
// failure messages); ops that find no applicable target (e.g. deleting
// a link from a link-less collection) degrade to a no-op.
std::string ApplyRandomOp(Rng* rng, Collection* c, HopiIndex* index,
                          int* doc_counter) {
  switch (rng->NextBounded(4)) {
    case 0: {  // InsertLink between two live elements
      std::vector<NodeId> live = testing::LiveElements(*c);
      for (int attempt = 0; attempt < 10; ++attempt) {
        NodeId u = live[rng->NextBounded(live.size())];
        NodeId v = live[rng->NextBounded(live.size())];
        if (u == v || c->ElementGraph().HasEdge(u, v)) continue;
        Status s = index->InsertLink(u, v);
        EXPECT_TRUE(s.ok()) << s;
        return "InsertLink(" + std::to_string(u) + "," + std::to_string(v) +
               ")";
      }
      return "InsertLink(no-op)";
    }
    case 1: {  // DeleteLink of a random existing link
      if (c->Links().empty()) return "DeleteLink(no-op)";
      collection::Link l = c->Links()[rng->NextBounded(c->Links().size())];
      Status s = index->DeleteLink(l.source, l.target);
      EXPECT_TRUE(s.ok()) << s;
      return "DeleteLink(" + std::to_string(l.source) + "," +
             std::to_string(l.target) + ")";
    }
    case 2: {  // InsertDocument: ingest a small tree + cross links
      DocId doc = c->AddDocument("inserted" + std::to_string((*doc_counter)++) +
                                 ".xml");
      NodeId root = c->AddElement(doc, "article");
      std::vector<NodeId> nodes{root};
      size_t extra = rng->NextBounded(6);
      for (size_t i = 0; i < extra; ++i) {
        nodes.push_back(c->AddElement(
            doc, i % 2 == 0 ? "section" : "cite",
            nodes[rng->NextBounded(nodes.size())]));
      }
      // Outgoing cross links are part of the ingested document and are
      // merged by InsertDocument itself.
      std::vector<NodeId> live = testing::LiveElements(*c);
      size_t out_links = rng->NextBounded(3);
      for (size_t i = 0; i < out_links; ++i) {
        NodeId u = nodes[rng->NextBounded(nodes.size())];
        NodeId v = live[rng->NextBounded(live.size())];
        if (c->DocOf(v) == doc || c->ElementGraph().HasEdge(u, v)) continue;
        c->AddLink(u, v);
      }
      Status s = index->InsertDocument(doc);
      EXPECT_TRUE(s.ok()) << s;
      // Incoming links arrive after the document exists, as separate
      // link insertions (the maintenance paper's ordering).
      if (rng->NextBounded(2) == 0 && live.size() > 1) {
        NodeId u = live[rng->NextBounded(live.size())];
        if (c->DocOf(u) != doc && !c->ElementGraph().HasEdge(u, root)) {
          Status in = index->InsertLink(u, root);
          EXPECT_TRUE(in.ok()) << in;
        }
      }
      return "InsertDocument(" + std::to_string(doc) + ")";
    }
    default: {  // DeleteDocument of a random live document
      if (c->NumLiveDocuments() <= 1) return "DeleteDocument(no-op)";
      for (int attempt = 0; attempt < 10; ++attempt) {
        DocId d = static_cast<DocId>(rng->NextBounded(c->NumDocuments()));
        if (!c->IsLive(d)) continue;
        Status s = index->DeleteDocument(d);
        EXPECT_TRUE(s.ok()) << s;
        return "DeleteDocument(" + std::to_string(d) + ")";
      }
      return "DeleteDocument(no-op)";
    }
  }
}

// ---- the differential check ----

// Asserts that every backend and an EnginePool over a frozen snapshot
// answer the full n×n probe matrix exactly like the closure oracle.
void ExpectAllAccessPathsMatchOracle(const Collection& c,
                                     const HopiIndex& index,
                                     bool with_distance,
                                     const std::string& context) {
  const auto n = static_cast<NodeId>(c.NumElements());
  TransitiveClosureIndex closure =
      TransitiveClosureIndex::Build(c.ElementGraph(), with_distance);

  storage::LinLoutStore store =
      storage::LinLoutStore::FromCover(index.cover(), with_distance);
  std::string path = ::testing::TempDir() + "hopi_differential_" + context +
                     ".bin";
  ASSERT_TRUE(store.WriteToFile(path).ok());
  auto mapped = storage::MappedLinLoutStore::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  // The same cover block-compressed: the v4 decode path faces the
  // oracle too. Tiny blocks force multi-block sections even on these
  // small scenario covers.
  std::string v4_path = ::testing::TempDir() + "hopi_differential_" + context +
                        "_v4.bin";
  storage::StoreWriteOptions v4_options;
  v4_options.format_version = storage::kFormatVersionV4;
  v4_options.compress.target_block_bytes = 256;
  v4_options.compress.cluster_split_bytes = 64;
  ASSERT_TRUE(store.WriteToFile(v4_path, v4_options).ok());
  auto mapped_v4 = storage::MappedLinLoutStore::Open(v4_path);
  ASSERT_TRUE(mapped_v4.ok()) << mapped_v4.status();

  engine::HopiIndexBackend hopi_backend(index);
  engine::LinLoutBackend linlout_backend(store);
  engine::MappedLinLoutBackend mapped_backend(*mapped);
  engine::MappedLinLoutBackend mapped_v4_backend(*mapped_v4);
  engine::ClosureBackend closure_backend(closure, with_distance);
  const engine::ReachabilityBackend* backends[] = {
      &hopi_backend, &linlout_backend, &mapped_backend, &mapped_v4_backend,
      &closure_backend};

  // Scalar probes: full matrix against every backend. Mismatches are
  // counted manually (EXPECT per probe would drown the log — and the
  // runtime — at n² × 4 probes); the first one is reported in detail.
  size_t mismatches = 0;
  for (const engine::ReachabilityBackend* backend : backends) {
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = 0; v < n; ++v) {
        bool expect = closure.IsReachable(u, v);
        bool got = backend->IsReachable(u, v);
        bool dist_ok = true;
        if (with_distance) {
          dist_ok = backend->Distance(u, v) == closure.Distance(u, v);
        }
        if (got != expect || !dist_ok) {
          if (mismatches == 0) {
            ADD_FAILURE() << context << ": backend " << backend->Name()
                          << " disagrees with closure on " << u << "->" << v
                          << " (reach " << got << " vs " << expect << ")";
          }
          ++mismatches;
        }
      }
    }
  }
  EXPECT_EQ(mismatches, 0u) << context;

  // The pool route: a frozen deep copy of the (possibly maintained)
  // index served by 3 workers; the whole matrix goes through Batch().
  auto snapshot = engine::BackendSnapshot::Freeze(index);
  engine::EnginePoolOptions pool_options;
  pool_options.num_threads = 3;
  engine::EnginePool pool(snapshot, pool_options);
  std::vector<std::pair<engine::NodePair, bool>> expected;
  std::vector<std::future<engine::PoolBatchResponse>> futures;
  std::vector<engine::BatchRequest> requests;
  engine::BatchRequest request;
  request.want_distances = with_distance;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      request.pairs.push_back({u, v});
      if (request.pairs.size() == 1024) {
        requests.push_back(std::exchange(
            request, engine::BatchRequest{.pairs = {},
                                          .want_distances = with_distance}));
      }
    }
  }
  if (!request.pairs.empty()) requests.push_back(std::move(request));
  for (engine::BatchRequest& r : requests) {
    auto future = pool.SubmitBatch(std::move(r));
    ASSERT_TRUE(future.ok()) << future.status();
    futures.push_back(std::move(future).value());
  }
  size_t pool_mismatches = 0;
  for (size_t b = 0; b < futures.size(); ++b) {
    engine::PoolBatchResponse response = futures[b].get();
    EXPECT_EQ(response.snapshot_version, snapshot->version());
    // Requests were chunked in row-major order, so the flat index
    // recovers each probe's (u, v).
    for (size_t i = 0; i < response.batch.reachable.size(); ++i) {
      size_t flat = b * 1024 + i;
      NodeId u = static_cast<NodeId>(flat / n);
      NodeId v = static_cast<NodeId>(flat % n);
      bool expect = closure.IsReachable(u, v);
      if (response.batch.reachable[i] != expect) ++pool_mismatches;
      if (with_distance &&
          response.batch.distances[i] != closure.Distance(u, v)) {
        ++pool_mismatches;
      }
    }
  }
  EXPECT_EQ(pool_mismatches, 0u) << context << ": EnginePool disagrees";
  std::remove(path.c_str());
  std::remove(v4_path.c_str());
}

// ---- scenarios ----

struct Scenario {
  uint64_t seed;
};

class DifferentialScenario : public ::testing::TestWithParam<Scenario> {};

TEST_P(DifferentialScenario, AllAccessPathsMatchClosureAfterMaintenance) {
  const uint64_t seed = GetParam().seed;
  // Rotate the forced join kernel across scenarios so the whole
  // differential harness exercises every probe kernel the host can run
  // (scalar, gallop, and whichever SIMD widths cpuid admits), not just
  // the heuristic pick. Restored below; scenario seeds cover each
  // kernel several times.
  std::vector<twohop::JoinKernel> kernels = twohop::SupportedJoinKernels();
  twohop::SetForcedJoinKernel(kernels[seed % kernels.size()]);
  Rng rng(seed * 7919 + 1);
  // Scenario shape is itself randomized: document count, tree sizes,
  // link density, op count, distance mode and partitioning all vary.
  size_t docs = 4 + rng.NextBounded(6);
  size_t mean_extra = 5 + rng.NextBounded(8);
  size_t links = 6 + rng.NextBounded(18);
  size_t ops = 5 + rng.NextBounded(6);
  bool with_distance = seed % 2 == 1;

  Collection c = testing::RandomCollection(docs, mean_extra, links, seed);
  IndexBuildOptions options;
  options.with_distance = with_distance;
  // Force multi-partition builds for a third of the scenarios so the
  // joined covers face the maintenance ops too.
  if (seed % 3 == 0) options.partition.max_connections = 400;
  auto built = BuildIndex(&c, options);
  ASSERT_TRUE(built.ok()) << built.status();
  HopiIndex index = std::move(built).value();

  std::string trace;
  int doc_counter = 0;
  for (size_t op = 0; op < ops; ++op) {
    trace += (op ? ", " : "") + ApplyRandomOp(&rng, &c, &index, &doc_counter);
  }
  SCOPED_TRACE("seed " + std::to_string(seed) + ": " + trace +
               " [kernel " +
               std::string(twohop::JoinKernelName(
                   kernels[seed % kernels.size()])) +
               "]");
  ExpectAllAccessPathsMatchOracle(c, index, with_distance,
                                  "seed" + std::to_string(seed));
  twohop::SetForcedJoinKernel(twohop::JoinKernel::kAuto);
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphsAndOpSequences, DifferentialScenario,
    ::testing::ValuesIn([] {
      std::vector<Scenario> scenarios;
      for (uint64_t seed = 1; seed <= 24; ++seed) scenarios.push_back({seed});
      return scenarios;
    }()),
    [](const ::testing::TestParamInfo<Scenario>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

// ---- overlay scenarios (serve-during-rebuild) ----
//
// The mutation path's oracle: mutations go through the LIVE pool
// (EnginePool::ApplyMutation, served by the DeltaOverlayBackend over an
// un-rebuilt snapshot) while a mirror Collection replays the same ops
// via ApplyMutationToCollection. After each batch of ops the full n×n
// matrix through the pool must equal the closure re-materialized from
// the mirror — the overlay's bounded BFS, base-hit gating, deleted-edge
// masking and dead-document handling all face the same independent
// oracle as the frozen access paths above.

// Draws one mutation that is valid against `mirror` (the replayed
// base-plus-delta collection). Falls back to inserting a fresh small
// document, which is always valid, so every draw applies.
engine::Mutation RandomOverlayMutation(Rng* rng, const Collection& mirror,
                                       int* doc_counter) {
  switch (rng->NextBounded(6)) {
    case 0:
    case 1: {  // insert_link between live elements (base or delta)
      std::vector<NodeId> live = testing::LiveElements(mirror);
      for (int attempt = 0; attempt < 10 && live.size() > 1; ++attempt) {
        NodeId u = live[rng->NextBounded(live.size())];
        NodeId v = live[rng->NextBounded(live.size())];
        if (u == v || mirror.ElementGraph().HasEdge(u, v)) continue;
        return engine::Mutation::InsertLink(u, v);
      }
      break;
    }
    case 2: {  // delete a random existing link (base or delta-inserted)
      if (mirror.Links().empty()) break;
      collection::Link l =
          mirror.Links()[rng->NextBounded(mirror.Links().size())];
      return engine::Mutation::DeleteLink(l.source, l.target);
    }
    case 3: {  // delete a live document
      if (mirror.NumLiveDocuments() <= 2) break;
      for (int attempt = 0; attempt < 10; ++attempt) {
        auto d = static_cast<DocId>(rng->NextBounded(mirror.NumDocuments()));
        if (!mirror.IsLive(d)) continue;
        return engine::Mutation::DeleteDocument(d);
      }
      break;
    }
    default:
      break;
  }
  // insert_document: a small random tree (also the fallback when the
  // drawn op found no applicable target).
  std::vector<engine::NewElementSpec> elements;
  elements.push_back({"article", std::nullopt});
  size_t extra = rng->NextBounded(5);
  for (size_t i = 0; i < extra; ++i) {
    elements.push_back(
        {i % 2 == 0 ? "section" : "cite",
         static_cast<uint32_t>(rng->NextBounded(elements.size()))});
  }
  return engine::Mutation::InsertDocument(
      "delta" + std::to_string((*doc_counter)++) + ".xml",
      std::move(elements));
}

std::string Describe(const engine::Mutation& m) {
  using Kind = engine::Mutation::Kind;
  switch (m.kind) {
    case Kind::kInsertLink:
      return "+link(" + std::to_string(m.source) + "," +
             std::to_string(m.target) + ")";
    case Kind::kDeleteLink:
      return "-link(" + std::to_string(m.source) + "," +
             std::to_string(m.target) + ")";
    case Kind::kInsertDocument:
      return "+doc(" + std::to_string(m.elements.size()) + "el)";
    case Kind::kDeleteDocument:
      return "-doc(" + std::to_string(m.doc) + ")";
  }
  return "?";
}

// Full n×n matrix through the pool's Batch path vs the closure oracle
// over the mirror collection. Every response must also report the
// current delta generation (no concurrent writers in these scenarios,
// so the generation is stable across the whole matrix).
void ExpectPoolMatchesMirrorOracle(engine::EnginePool* pool,
                                   const Collection& mirror,
                                   const std::string& context) {
  ASSERT_EQ(pool->ServingElementCount(), mirror.NumElements()) << context;
  ASSERT_EQ(pool->ServingDocumentCount(), mirror.NumDocuments()) << context;
  const auto n = static_cast<NodeId>(mirror.NumElements());
  TransitiveClosureIndex closure =
      TransitiveClosureIndex::Build(mirror.ElementGraph(), false);
  const uint64_t generation = pool->delta()->generation();
  size_t mismatches = 0;
  engine::BatchRequest request;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      request.pairs.push_back({u, v});
      if (request.pairs.size() < 1024 && !(u + 1 == n && v + 1 == n)) {
        continue;
      }
      std::vector<engine::NodePair> pairs = request.pairs;
      auto response = pool->Batch(std::exchange(request, {}));
      ASSERT_TRUE(response.ok()) << context << ": " << response.status();
      EXPECT_EQ(response->delta_generation, generation) << context;
      ASSERT_EQ(response->batch.reachable.size(), pairs.size()) << context;
      for (size_t i = 0; i < pairs.size(); ++i) {
        bool expect = closure.IsReachable(pairs[i].first, pairs[i].second);
        if (response->batch.reachable[i] != expect) {
          if (mismatches == 0) {
            ADD_FAILURE() << context << ": pool disagrees with the mirror "
                          << "closure on " << pairs[i].first << "->"
                          << pairs[i].second << " (got "
                          << (response->batch.reachable[i] != 0) << ", want "
                          << expect << ")";
          }
          ++mismatches;
        }
      }
    }
  }
  EXPECT_EQ(mismatches, 0u) << context;
}

class OverlayDifferentialScenario
    : public ::testing::TestWithParam<Scenario> {};

TEST_P(OverlayDifferentialScenario, OverlayMatchesClosureOracleWhileMutating) {
  const uint64_t seed = GetParam().seed;
  Rng rng(seed * 9176 + 3);
  size_t docs = 3 + rng.NextBounded(5);
  size_t mean_extra = 3 + rng.NextBounded(6);
  size_t links = 4 + rng.NextBounded(12);
  const size_t rounds = 3;
  size_t ops_per_round = 4 + rng.NextBounded(5);

  Collection c = testing::RandomCollection(docs, mean_extra, links, seed + 500);
  auto built = BuildIndex(&c, {});
  ASSERT_TRUE(built.ok()) << built.status();
  HopiIndex index = std::move(built).value();
  auto snapshot = engine::BackendSnapshot::Freeze(index);

  engine::EnginePoolOptions pool_options;
  pool_options.num_threads = 2;
  // A third of the seeds serve with a starvation-level hop budget, so
  // nontrivial probes straddle it and cross the typed-unknown recheck;
  // half drive frontier expansion through the shared thread pool from
  // frontier size 2 up. Answers must be identical either way.
  pool_options.overlay_hop_budget = seed % 3 == 0 ? 1 : 8;
  pool_options.overlay_parallel_threshold = seed % 2 == 0 ? 2 : 128;
  engine::EnginePool pool(snapshot, pool_options);
  ASSERT_TRUE(pool.EnableMutations(index).ok());

  Collection mirror = c;
  std::string trace;
  int doc_counter = 0;
  uint64_t generation = 0;
  for (size_t round = 0; round < rounds; ++round) {
    for (size_t op = 0; op < ops_per_round; ++op) {
      engine::Mutation m = RandomOverlayMutation(&rng, mirror, &doc_counter);
      trace += (trace.empty() ? "" : ", ") + Describe(m);
      auto receipt = pool.ApplyMutation(m);
      ASSERT_TRUE(receipt.ok()) << trace << ": " << receipt.status();
      Status mirrored = engine::ApplyMutationToCollection(m, &mirror);
      ASSERT_TRUE(mirrored.ok()) << trace << ": " << mirrored;
      EXPECT_EQ(receipt->generation, ++generation);
      if (m.kind == engine::Mutation::Kind::kInsertDocument) {
        // The receipt's pre-assigned ids must match the mirror's
        // sequential allocation — the equivalence InsertDocument's
        // id contract rests on.
        EXPECT_EQ(receipt->doc, mirror.NumDocuments() - 1);
        EXPECT_EQ(receipt->num_elements, m.elements.size());
        EXPECT_EQ(receipt->first_element,
                  static_cast<NodeId>(mirror.NumElements() -
                                      m.elements.size()));
      }
    }
    SCOPED_TRACE("seed " + std::to_string(seed) + ": " + trace);
    ExpectPoolMatchesMirrorOracle(
        &pool, mirror,
        "seed" + std::to_string(seed) + "_round" + std::to_string(round));
  }

  // Rejected ops must leave the delta untouched: typed failure, same
  // generation.
  auto missing_doc = pool.ApplyMutation(engine::Mutation::DeleteDocument(
      static_cast<DocId>(mirror.NumDocuments() + 7)));
  EXPECT_TRUE(missing_doc.status().IsNotFound());
  auto oob_link = pool.ApplyMutation(engine::Mutation::InsertLink(
      static_cast<NodeId>(mirror.NumElements() + 1), 0));
  EXPECT_TRUE(oob_link.status().IsInvalidArgument());
  EXPECT_EQ(pool.delta()->generation(), generation);

  // Fold the delta: the swapped-in snapshot must agree with the same
  // oracle (= a fresh build over the mutated graph), the delta must be
  // empty, and the global generation must survive the truncation.
  const engine::RebuildMode mode = seed % 2 == 0
                                       ? engine::RebuildMode::kFull
                                       : engine::RebuildMode::kAbsorb;
  auto rebuilt = pool.RebuildNow(mode);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  EXPECT_EQ(rebuilt->generation, generation);
  EXPECT_EQ(rebuilt->absorbed_ops, rounds * ops_per_round);
  EXPECT_TRUE(pool.delta()->empty());
  EXPECT_EQ(pool.delta()->generation(), generation);
  ExpectPoolMatchesMirrorOracle(
      &pool, mirror, "seed" + std::to_string(seed) + "_postrebuild");

  // Mutations stay armed across a rebuild: the delta regrows over the
  // new snapshot and keeps matching the oracle, and receipts continue
  // the global generation count.
  for (size_t op = 0; op < ops_per_round; ++op) {
    engine::Mutation m = RandomOverlayMutation(&rng, mirror, &doc_counter);
    auto receipt = pool.ApplyMutation(m);
    ASSERT_TRUE(receipt.ok()) << Describe(m) << ": " << receipt.status();
    ASSERT_TRUE(engine::ApplyMutationToCollection(m, &mirror).ok());
    EXPECT_EQ(receipt->generation, ++generation);
  }
  ExpectPoolMatchesMirrorOracle(
      &pool, mirror, "seed" + std::to_string(seed) + "_postrebuild_mutated");
}

INSTANTIATE_TEST_SUITE_P(
    OverlayRandomOpSequences, OverlayDifferentialScenario,
    ::testing::ValuesIn([] {
      std::vector<Scenario> scenarios;
      for (uint64_t seed = 1; seed <= 12; ++seed) scenarios.push_back({seed});
      return scenarios;
    }()),
    [](const ::testing::TestParamInfo<Scenario>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

// The typed probe state machine, outcome by outcome, on a handmade
// graph: base hit while the delta is purely additive, BFS once a base
// edge is masked, typed unknown + unbounded recheck at a 1-hop budget,
// dead endpoints after a document deletion.
TEST(DeltaOverlayOutcomeTest, TypedOutcomesCoverTheProbeStateMachine) {
  using Outcome = engine::DeltaOverlayBackend::Outcome;
  Collection c;
  DocId d0 = c.AddDocument("a.xml");
  NodeId a = c.AddElement(d0, "article");
  NodeId b = c.AddElement(d0, "section", a);
  DocId d1 = c.AddDocument("z.xml");
  NodeId z = c.AddElement(d1, "article");
  ASSERT_TRUE(c.AddLink(b, z));
  TransitiveClosureIndex closure =
      TransitiveClosureIndex::Build(c.ElementGraph(), false);
  auto mk_base = [&] {
    return std::make_unique<engine::ClosureBackend>(closure, false);
  };

  auto delta =
      engine::DeltaState::MakeEmpty(c.NumElements(), c.NumDocuments(), 0);
  engine::OverlayCounters counters;
  auto apply = [&](engine::Mutation m) {
    auto next = delta->Apply(m, c);
    ASSERT_TRUE(next.ok()) << Describe(m) << ": " << next.status();
    delta = std::move(next).value();
  };

  // Empty delta: positive base answers come from the fast path.
  {
    engine::DeltaOverlayBackend overlay(mk_base(), &c, delta, {}, &counters);
    EXPECT_EQ(overlay.Probe(a, a), Outcome::kReflexive);
    EXPECT_EQ(overlay.Probe(a, z), Outcome::kBaseHit);
    EXPECT_EQ(overlay.Probe(z, a), Outcome::kBfsUnreachable);
    EXPECT_EQ(overlay.Distance(a, z), std::optional<uint32_t>(0));
    EXPECT_EQ(overlay.Distance(z, a), std::nullopt);
  }

  // Deleting the base link b->z invalidates the base fast path; the
  // BFS sees the masked edge and answers no.
  apply(engine::Mutation::DeleteLink(b, z));
  ASSERT_TRUE(delta->has_base_removals());
  {
    engine::DeltaOverlayBackend overlay(mk_base(), &c, delta, {}, &counters);
    EXPECT_EQ(overlay.Probe(a, z), Outcome::kBfsUnreachable);
  }

  // Deleting a tree edge is refused (links only), as is re-deleting the
  // already-masked link.
  EXPECT_TRUE(
      delta->Apply(engine::Mutation::DeleteLink(a, b), c).status().IsNotFound());
  EXPECT_TRUE(
      delta->Apply(engine::Mutation::DeleteLink(b, z), c).status().IsNotFound());

  // An 8-document chain a -> e0 -> ... -> e7 -> z through the delta:
  // with a 1-hop budget per side the probe is a typed unknown, and the
  // unbounded recheck restores the exact answer.
  std::vector<NodeId> chain;
  for (int i = 0; i < 8; ++i) {
    apply(engine::Mutation::InsertDocument("chain" + std::to_string(i) + ".xml",
                                           {{"note", std::nullopt}}));
    chain.push_back(static_cast<NodeId>(delta->num_elements() - 1));
    apply(engine::Mutation::InsertLink(i == 0 ? a : chain[i - 1],
                                       chain.back()));
  }
  apply(engine::Mutation::InsertLink(chain.back(), z));
  {
    engine::DeltaOverlayOptions tight;
    tight.hop_budget = 1;
    engine::DeltaOverlayBackend overlay(mk_base(), &c, delta, tight,
                                        &counters);
    uint64_t before = counters.budget_exhaustions.load();
    EXPECT_EQ(overlay.Probe(a, z), Outcome::kRecheckReachable);
    EXPECT_EQ(counters.budget_exhaustions.load(), before + 1);
    EXPECT_EQ(overlay.Probe(chain[5], chain[1]), Outcome::kRecheckUnreachable);
    // A frontier that empties within the budget is definitive without a
    // recheck: z has no outgoing edges at all.
    EXPECT_EQ(overlay.Probe(z, chain[0]), Outcome::kBfsUnreachable);
  }

  // Descendants/Ancestors walk the combined graph.
  {
    engine::DeltaOverlayBackend overlay(mk_base(), &c, delta, {}, &counters);
    std::vector<NodeId> down = overlay.Descendants(a);
    EXPECT_EQ(down.size(), 1u /*b*/ + 8u /*chain*/ + 1u /*z*/);
    EXPECT_NE(std::find(down.begin(), down.end(), z), down.end());
    std::vector<NodeId> up = overlay.Ancestors(z);
    EXPECT_NE(std::find(up.begin(), up.end(), a), up.end());
  }

  // Killing z's (base) document: probes touching z die typed, reflexive
  // stays reflexive.
  apply(engine::Mutation::DeleteDocument(d1));
  {
    engine::DeltaOverlayBackend overlay(mk_base(), &c, delta, {}, &counters);
    EXPECT_EQ(overlay.Probe(a, z), Outcome::kDeadEndpoint);
    EXPECT_EQ(overlay.Probe(z, z), Outcome::kReflexive);
    EXPECT_EQ(overlay.Probe(a, chain[7]), Outcome::kBfsReachable);
  }
}

// A document created and deleted entirely inside the delta: its ids
// stay allocated (and probeable) but answer dead, exactly like the
// mirror's isolated elements — and the delta refuses to touch it again.
TEST(DeltaOverlayOutcomeTest, DocumentBornAndDeletedInsideTheDeltaStaysDead) {
  Collection c = testing::RandomCollection(3, 4, 5, 77);
  auto built = BuildIndex(&c, {});
  ASSERT_TRUE(built.ok()) << built.status();
  HopiIndex index = std::move(built).value();
  auto snapshot = engine::BackendSnapshot::Freeze(index);
  engine::EnginePool pool(snapshot, {.num_threads = 2});
  ASSERT_TRUE(pool.EnableMutations(index).ok());
  Collection mirror = c;

  auto mutate = [&](engine::Mutation m) {
    auto receipt = pool.ApplyMutation(m);
    ASSERT_TRUE(receipt.ok()) << Describe(m) << ": " << receipt.status();
    ASSERT_TRUE(engine::ApplyMutationToCollection(m, &mirror).ok());
  };

  auto inserted = pool.ApplyMutation(engine::Mutation::InsertDocument(
      "ephemeral.xml",
      {{"article", std::nullopt}, {"section", 0u}, {"cite", 1u}}));
  ASSERT_TRUE(inserted.ok()) << inserted.status();
  ASSERT_TRUE(engine::ApplyMutationToCollection(
                  engine::Mutation::InsertDocument(
                      "ephemeral.xml", {{"article", std::nullopt},
                                        {"section", 0u},
                                        {"cite", 1u}}),
                  &mirror)
                  .ok());
  const NodeId root = inserted->first_element;
  mutate(engine::Mutation::InsertLink(0, root));
  ExpectPoolMatchesMirrorOracle(&pool, mirror, "ephemeral_alive");

  mutate(engine::Mutation::DeleteDocument(inserted->doc));
  // Double delete and links to the dead ids are typed rejects.
  EXPECT_TRUE(pool.ApplyMutation(engine::Mutation::DeleteDocument(
                                     inserted->doc))
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(pool.ApplyMutation(engine::Mutation::InsertLink(0, root))
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(pool.ApplyMutation(engine::Mutation::DeleteLink(0, root))
                  .status()
                  .IsNotFound());
  ExpectPoolMatchesMirrorOracle(&pool, mirror, "ephemeral_dead");

  auto probe = pool.Batch({.pairs = {{0, root}}});
  ASSERT_TRUE(probe.ok());
  EXPECT_FALSE(probe->batch.reachable[0] != 0);
}

// Pool-level hop-budget starvation: with a 1-hop budget over a long
// delta chain the full matrix stays exact, and the exhaustions surface
// as typed counters in PoolStats.
TEST(DeltaOverlayOutcomeTest, HopBudgetExhaustionsSurfaceInPoolStats) {
  Collection c = testing::RandomCollection(3, 3, 4, 123);
  auto built = BuildIndex(&c, {});
  ASSERT_TRUE(built.ok()) << built.status();
  HopiIndex index = std::move(built).value();
  auto snapshot = engine::BackendSnapshot::Freeze(index);
  engine::EnginePoolOptions pool_options;
  pool_options.num_threads = 2;
  pool_options.overlay_hop_budget = 1;
  engine::EnginePool pool(snapshot, pool_options);
  ASSERT_TRUE(pool.EnableMutations(index).ok());
  Collection mirror = c;

  NodeId previous = 0;  // doc0's root
  for (int i = 0; i < 6; ++i) {
    engine::Mutation ins = engine::Mutation::InsertDocument(
        "chain" + std::to_string(i) + ".xml", {{"note", std::nullopt}});
    auto receipt = pool.ApplyMutation(ins);
    ASSERT_TRUE(receipt.ok()) << receipt.status();
    ASSERT_TRUE(engine::ApplyMutationToCollection(ins, &mirror).ok());
    engine::Mutation link =
        engine::Mutation::InsertLink(previous, receipt->first_element);
    ASSERT_TRUE(pool.ApplyMutation(link).ok());
    ASSERT_TRUE(engine::ApplyMutationToCollection(link, &mirror).ok());
    previous = receipt->first_element;
  }
  ExpectPoolMatchesMirrorOracle(&pool, mirror, "hop_budget_chain");
  engine::PoolStats stats = pool.Stats();
  EXPECT_GT(stats.overlay_probes, 0u);
  EXPECT_GT(stats.overlay_bfs_fallbacks, 0u);
  EXPECT_GT(stats.overlay_budget_exhaustions, 0u);
}

// ---- sharded scatter-gather scenarios ----
//
// The sharded serving tier against the same two oracles: the closure
// (independent: rebuilt from the element graph) and the single-engine
// build (the un-sharded access path the shard decomposition must be
// bit-identical to). Every scenario chains the document roots so any
// 2+ shard grouping is forced to cut cross-shard links — the scatter
// path, the skeleton routes, and the min-plus merge always face the
// full n×n matrix, never just the direct-routing fast path.

// Runs the full matrix through a freshly planned ShardedEngine at one
// shard count and asserts bit-identity with both oracles. The merge
// deadline is off (deterministic: no shard is ever slow here), so a
// non-OK status or an unresolved pair is itself a failure.
void ExpectShardedMatchesOracles(Collection* c, const HopiIndex& single,
                                 const TransitiveClosureIndex& closure,
                                 size_t num_shards, bool with_distance,
                                 uint64_t psg_partition_cap,
                                 const std::string& context) {
  engine::ShardPlanOptions plan_options;
  plan_options.num_shards = num_shards;
  plan_options.with_distance = with_distance;
  plan_options.partition.strategy =
      partition::PartitionStrategy::kDocPerPartition;
  plan_options.psg_partition_cap = psg_partition_cap;
  plan_options.num_threads = 2;
  auto plan = engine::BuildShardPlan(c, plan_options);
  ASSERT_TRUE(plan.ok()) << context << ": " << plan.status();
  if (plan->num_shards >= 2) {
    // The root chain guarantees scatter coverage at any multi-shard cut.
    EXPECT_GT(plan->stats.cross_shard_links, 0u) << context;
    EXPECT_GT(plan->stats.cross_shard_routes, 0u) << context;
  }

  engine::ShardedEngineOptions options;
  options.threads_per_shard = 2;
  options.merge_deadline = std::chrono::milliseconds(0);
  engine::ShardedEngine sharded(c, &*plan, options);
  engine::HopiIndexBackend single_backend(single);

  const auto n = static_cast<NodeId>(c->NumElements());
  size_t mismatches = 0;
  engine::BatchRequest request;
  request.want_distances = with_distance;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      request.pairs.push_back({u, v});
      if (request.pairs.size() < 1024 && !(u + 1 == n && v + 1 == n)) {
        continue;
      }
      std::vector<engine::NodePair> pairs = request.pairs;
      auto response = sharded.Batch(std::exchange(
          request,
          engine::BatchRequest{.pairs = {}, .want_distances = with_distance}));
      ASSERT_TRUE(response.ok()) << context << ": " << response.status();
      ASSERT_TRUE(response->status.ok()) << context << ": "
                                         << response->status;
      ASSERT_EQ(response->batch.reachable.size(), pairs.size()) << context;
      for (size_t i = 0; i < pairs.size(); ++i) {
        const auto [a, b] = pairs[i];
        bool expect = closure.IsReachable(a, b);
        bool exact = response->resolved[i] &&
                     response->batch.reachable[i] == expect &&
                     response->batch.reachable[i] ==
                         single_backend.IsReachable(a, b);
        if (exact && with_distance) {
          exact = response->batch.distances[i] == closure.Distance(a, b) &&
                  response->batch.distances[i] == single_backend.Distance(a, b);
        }
        if (!exact) {
          if (mismatches == 0) {
            ADD_FAILURE() << context << ": sharded engine diverges on " << a
                          << "->" << b << " (got "
                          << (response->batch.reachable[i] != 0)
                          << ", closure says " << expect << ", resolved "
                          << (response->resolved[i] != 0) << ")";
          }
          ++mismatches;
        }
      }
    }
  }
  EXPECT_EQ(mismatches, 0u) << context;
  engine::ShardStats stats = sharded.Stats();
  EXPECT_EQ(stats.partial_batches, 0u) << context;
  if (plan->num_shards >= 2) {
    EXPECT_GT(stats.cross_pairs, 0u) << context;
  }
}

class ShardedDifferentialScenario : public ::testing::TestWithParam<Scenario> {
};

TEST_P(ShardedDifferentialScenario, ShardedEngineMatchesClosureAndSingle) {
  const uint64_t seed = GetParam().seed;
  Rng rng(seed * 6133 + 11);
  size_t docs = 6 + rng.NextBounded(5);
  size_t mean_extra = 3 + rng.NextBounded(5);
  size_t links = 8 + rng.NextBounded(14);
  bool with_distance = seed % 2 == 1;

  Collection c = testing::RandomCollection(docs, mean_extra, links,
                                           seed + 9000);
  // Chain the document roots: every grouping of the per-document
  // partitions into 2+ shards must cut the chain somewhere, so
  // cross-shard links exist at every shard count by construction.
  std::vector<NodeId> roots;
  for (DocId d = 0; d < c.NumDocuments(); ++d) {
    roots.push_back(c.ElementsOf(d).front());
  }
  for (size_t d = 0; d + 1 < roots.size(); ++d) {
    if (!c.ElementGraph().HasEdge(roots[d], roots[d + 1])) {
      c.AddLink(roots[d], roots[d + 1]);
    }
  }

  IndexBuildOptions build_options;
  build_options.with_distance = with_distance;
  auto built = BuildIndex(&c, build_options);
  ASSERT_TRUE(built.ok()) << built.status();
  HopiIndex index = std::move(built).value();

  // A third of the seeds kill one document through Sec-6 maintenance
  // before the shard plans are cut: dead documents must route to
  // kUnassignedShard and answer dead through the whole matrix.
  if (seed % 3 == 0) {
    auto dead = static_cast<DocId>(1 + seed % (docs - 1));
    ASSERT_TRUE(index.DeleteDocument(dead).ok());
  }

  TransitiveClosureIndex closure =
      TransitiveClosureIndex::Build(c.ElementGraph(), with_distance);
  SCOPED_TRACE("seed " + std::to_string(seed));
  for (size_t shards : {2u, 3u, 5u}) {
    // A third of the seeds split the shard-level skeleton PSG
    // recursively (Sec 4.1 at the shard tier) instead of traversing it
    // whole; answers must not change.
    uint64_t psg_cap = seed % 3 == 1 ? 4 : 0;
    ExpectShardedMatchesOracles(
        &c, index, closure, shards, with_distance, psg_cap,
        "seed" + std::to_string(seed) + "_shards" + std::to_string(shards));
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShardedRandomGraphs, ShardedDifferentialScenario,
    ::testing::ValuesIn([] {
      std::vector<Scenario> scenarios;
      for (uint64_t seed = 1; seed <= 8; ++seed) scenarios.push_back({seed});
      return scenarios;
    }()),
    [](const ::testing::TestParamInfo<Scenario>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

// The adversarial topology for the scatter path: a long root chain
// with skip links, so reachability between distant documents crosses
// MANY shard boundaries and the exact distance threads through
// multi-hop skeleton routes (the PSG-closure property the router's
// single-hop route expansion rests on).
TEST(ShardedDifferentialBaseline, HeavyCrossLinkChainAcrossShards) {
  for (bool with_distance : {false, true}) {
    Collection c;
    std::vector<NodeId> roots;
    for (size_t d = 0; d < 12; ++d) {
      DocId doc = c.AddDocument("chain" + std::to_string(d) + ".xml");
      NodeId root = c.AddElement(doc, "article");
      roots.push_back(root);
      c.AddElement(doc, "section", root);
      c.AddElement(doc, "cite", root);
    }
    for (size_t d = 0; d + 1 < roots.size(); ++d) {
      c.AddLink(roots[d], roots[d + 1]);
    }
    for (size_t d = 0; d + 3 < roots.size(); ++d) {
      c.AddLink(roots[d], roots[d + 3]);
    }

    IndexBuildOptions build_options;
    build_options.with_distance = with_distance;
    auto built = BuildIndex(&c, build_options);
    ASSERT_TRUE(built.ok()) << built.status();
    TransitiveClosureIndex closure =
        TransitiveClosureIndex::Build(c.ElementGraph(), with_distance);
    for (size_t shards : {2u, 3u, 5u}) {
      for (uint64_t psg_cap : {uint64_t{0}, uint64_t{3}}) {
        ExpectShardedMatchesOracles(
            &c, *built, closure, shards, with_distance, psg_cap,
            std::string("chain_") + (with_distance ? "dist" : "plain") +
                "_shards" + std::to_string(shards) + "_cap" +
                std::to_string(psg_cap));
      }
    }
  }
}

// The no-maintenance baseline: a freshly built index over a random
// collection already matches the oracle through every access path
// (separates "build is wrong" from "maintenance broke it" when a
// seeded scenario fails).
TEST(DifferentialBaseline, FreshBuildMatchesOracle) {
  for (uint64_t seed : {101u, 102u}) {
    Collection c = testing::RandomCollection(6, 8, 12, seed);
    IndexBuildOptions options;
    options.with_distance = seed % 2 == 0;
    auto built = BuildIndex(&c, options);
    ASSERT_TRUE(built.ok()) << built.status();
    ExpectAllAccessPathsMatchOracle(c, *built, options.with_distance,
                                    "fresh" + std::to_string(seed));
  }
}

}  // namespace
}  // namespace hopi
