// Quickstart: parse a few linked XML documents, build a HOPI index, and
// ask reachability / distance / descendant questions across documents.
//
//   $ ./quickstart
//
// Walks through the full public API surface in ~100 lines.
#include <iostream>

#include "collection/builder.h"
#include "hopi/build.h"
#include "query/path_query.h"
#include "query/tag_index.h"
#include "xml/parser.h"

int main() {
  using namespace hopi;

  // 1. Parse XML documents. Links use xlink:href (cross-document) and
  //    idref (within-document) attributes.
  const char* library_xml =
      "<library>"
      "  <book id=\"b1\"><title>Index Structures</title>"
      "    <chapter><author>A. Smith</author>"
      "      <cite xlink:href=\"papers.xml#hopi\"/></chapter>"
      "  </book>"
      "</library>";
  const char* papers_xml =
      "<proceedings>"
      "  <paper id=\"hopi\"><title>HOPI</title>"
      "    <author>R. Schenkel</author></paper>"
      "  <paper id=\"other\"><title>Other</title></paper>"
      "</proceedings>";

  auto library = xml::ParseDocument(library_xml, "library.xml");
  auto papers = xml::ParseDocument(papers_xml, "papers.xml");
  if (!library.ok() || !papers.ok()) {
    std::cerr << "parse failed\n";
    return 1;
  }

  // 2. Ingest into a collection; references resolve across documents.
  collection::Collection collection;
  collection::Ingestor ingestor(&collection);
  if (!ingestor.Ingest(*library).ok() || !ingestor.Ingest(*papers).ok()) {
    std::cerr << "ingest failed\n";
    return 1;
  }
  std::cout << "collection: " << collection.NumLiveDocuments()
            << " documents, " << collection.NumElements() << " elements, "
            << collection.NumInterLinks() << " inter-document links\n";

  // 3. Build the HOPI index (distance-aware so we can rank by proximity).
  IndexBuildOptions options;
  options.with_distance = true;
  auto index = BuildIndex(&collection, options);
  if (!index.ok()) {
    std::cerr << "build failed: " << index.status() << "\n";
    return 1;
  }
  std::cout << "index built: " << index->CoverSize() << " label entries\n";

  // 4. Reachability across the citation link: the book's root reaches the
  //    cited paper's author element.
  auto lib_doc = collection.FindDocument("library.xml");
  auto papers_doc = collection.FindDocument("papers.xml");
  NodeId book_root = collection.RootOf(*lib_doc);

  query::TagIndex tags(collection);
  NodeId hopi_author = query::TagIndex(collection).Lookup("author")[1];
  std::cout << "book root ->* cited author? "
            << (index->IsReachable(book_root, hopi_author) ? "yes" : "no")
            << " (distance "
            << index->Distance(book_root, hopi_author).value_or(0) << ")\n";

  // 5. Wildcard path query crossing the link: //book//author finds both
  //    the book's own author and the cited paper's author.
  auto expr = query::PathExpression::Parse("//book//author");
  auto matches = query::EvaluatePath(*expr, *index, tags);
  std::cout << "//book//author matches (ranked by connection length):\n";
  for (const auto& m : *matches) {
    NodeId author = m.bindings.back();
    std::cout << "  element #" << author << " in "
              << collection.DocName(collection.DocOf(author))
              << "  distance=" << m.total_distance << "  score="
              << m.score << "\n";
  }

  // 6. Descendant enumeration (the // axis over trees AND links).
  std::cout << "book root has " << index->Descendants(book_root).size()
            << " descendants (crossing the citation into papers.xml)\n";
  (void)papers_doc;
  return 0;
}
