// Quickstart: parse a few linked XML documents, build a HOPI index, and
// ask reachability / distance / descendant questions across documents
// through the QueryEngine facade.
//
//   $ ./quickstart
//
// Walks through the full public API surface in ~100 lines.
#include <iostream>

#include "collection/builder.h"
#include "engine/engine.h"
#include "hopi/build.h"
#include "xml/parser.h"

int main() {
  using namespace hopi;

  // 1. Parse XML documents. Links use xlink:href (cross-document) and
  //    idref (within-document) attributes.
  const char* library_xml =
      "<library>"
      "  <book id=\"b1\"><title>Index Structures</title>"
      "    <chapter><author>A. Smith</author>"
      "      <cite xlink:href=\"papers.xml#hopi\"/></chapter>"
      "  </book>"
      "</library>";
  const char* papers_xml =
      "<proceedings>"
      "  <paper id=\"hopi\"><title>HOPI</title>"
      "    <author>R. Schenkel</author></paper>"
      "  <paper id=\"other\"><title>Other</title></paper>"
      "</proceedings>";

  auto library = xml::ParseDocument(library_xml, "library.xml");
  auto papers = xml::ParseDocument(papers_xml, "papers.xml");
  if (!library.ok() || !papers.ok()) {
    std::cerr << "parse failed\n";
    return 1;
  }

  // 2. Ingest into a collection; references resolve across documents.
  collection::Collection collection;
  collection::Ingestor ingestor(&collection);
  if (!ingestor.Ingest(*library).ok() || !ingestor.Ingest(*papers).ok()) {
    std::cerr << "ingest failed\n";
    return 1;
  }
  std::cout << "collection: " << collection.NumLiveDocuments()
            << " documents, " << collection.NumElements() << " elements, "
            << collection.NumInterLinks() << " inter-document links\n";

  // 3. Build the HOPI index (distance-aware so we can rank by proximity).
  IndexBuildOptions options;
  options.with_distance = true;
  auto index = BuildIndex(&collection, options);
  if (!index.ok()) {
    std::cerr << "build failed: " << index.status() << "\n";
    return 1;
  }
  std::cout << "index built: " << index->CoverSize() << " label entries\n";

  // 4. Wrap the index in the QueryEngine facade — the single entry point
  //    for reachability, batches, and path queries. Other backends
  //    (LinLoutStore, the closure baseline) plug into the same facade.
  engine::QueryEngine engine = engine::QueryEngine::ForIndex(*index);

  // 5. Reachability across the citation link: the book's root reaches the
  //    cited paper's author element.
  auto lib_doc = collection.FindDocument("library.xml");
  NodeId book_root = collection.RootOf(*lib_doc);
  NodeId hopi_author = engine.tags().Lookup("author")[1];
  engine::ReachabilityResponse reach = engine.Reachability(
      {.source = book_root, .target = hopi_author, .want_distance = true});
  std::cout << "book root ->* cited author? "
            << (reach.reachable ? "yes" : "no") << " (distance "
            << reach.distance.value_or(0) << ")\n";

  // 6. Wildcard path query crossing the link: //book//author finds both
  //    the book's own author and the cited paper's author.
  auto response = engine.Query({.expression = "//book//author"});
  if (!response.ok()) {
    std::cerr << response.status() << "\n";
    return 1;
  }
  std::cout << "//book//author matches (ranked by connection length):\n";
  for (const auto& m : response->matches) {
    NodeId author = m.bindings.back();
    std::cout << "  element #" << author << " in "
              << collection.DocName(collection.DocOf(author))
              << "  distance=" << m.total_distance << "  score="
              << m.score << "\n";
  }

  // 7. Batched reachability: repeated probes are deduped and label sets
  //    are reused (borrowed zero-copy from the in-memory cover here;
  //    file-backed stores go through the LRU cache instead). The stats
  //    come back with the answers.
  engine::BatchRequest batch;
  for (NodeId e = 0; e < collection.NumElements(); ++e) {
    if (e == book_root) continue;  // reachability is reflexive
    batch.pairs.push_back({book_root, e});
    batch.pairs.push_back({book_root, e});  // duplicate on purpose
  }
  engine::BatchResponse bulk = engine.Batch(batch);
  size_t reachable_count = 0;
  for (bool r : bulk.reachable) reachable_count += r ? 1 : 0;
  std::cout << "batch: " << bulk.stats.probes << " probes -> "
            << bulk.stats.unique_probes << " unique, "
            << bulk.stats.labels_borrowed << " label reads (zero-copy), "
            << reachable_count / 2 << " elements reachable from the book\n";

  // 8. Descendant enumeration (the // axis over trees AND links).
  std::cout << "book root has " << engine.Descendants(book_root).size()
            << " descendants (crossing the citation into papers.xml)\n";
  return 0;
}
