// Citation search over a DBLP-like collection — the paper's motivating
// workload (Sec 1, Sec 7.1): per-publication XML documents with citation
// XLinks, queried with wildcard path expressions that cross links.
//
//   $ ./citation_search [--docs=N]
#include <iostream>

#include "datagen/dblp.h"
#include "engine/engine.h"
#include "hopi/build.h"
#include "util/cli.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace hopi;
  CommandLine cli;
  if (!CommandLine::Parse(argc, argv, {"docs", "seed"}, &cli).ok()) return 2;
  size_t docs = static_cast<size_t>(cli.GetInt("docs", 400));

  collection::Collection c;
  datagen::DblpConfig config;
  config.num_docs = docs;
  config.seed = static_cast<uint64_t>(cli.GetInt("seed", 42));
  auto report = datagen::GenerateDblpCollection(config, &c);
  if (!report.ok()) return 1;
  std::cout << "generated " << report->documents << " publications, "
            << report->elements << " elements, " << report->inter_links
            << " citations\n";

  Stopwatch build_watch;
  IndexBuildOptions options;
  options.partition.strategy = partition::PartitionStrategy::kTcSizeAware;
  options.partition.max_connections = 50000;
  auto index = BuildIndex(&c, options);
  if (!index.ok()) {
    std::cerr << index.status() << "\n";
    return 1;
  }
  std::cout << "HOPI index: " << index->CoverSize() << " entries in "
            << build_watch.ElapsedSeconds() << "s\n\n";

  // All queries flow through the facade.
  engine::QueryEngine engine = engine::QueryEngine::ForIndex(*index);

  // Which publications does pub0 (the most-cited classic) reach?
  NodeId classic = c.RootOf(0);
  std::cout << "the classic pub0 is reachable from "
            << engine.Ancestors(classic).size()
            << " elements across the collection\n";

  // Path queries with wildcards, crossing citation links.
  for (const char* q : {"//inproceedings//cite//title",
                        "//inproceedings//cite//cite//author",
                        "//booktitle"}) {
    Stopwatch watch;
    auto count = engine.Query({.expression = q, .count_only = true});
    if (!count.ok()) continue;
    std::cout << q << "  ->  " << count->count << " results in "
              << watch.ElapsedMicros() << "us\n";
  }

  // Materialize a few ranked matches for the 2-step query.
  auto matches = engine.Query(
      {.expression = "//inproceedings//cite", .max_matches = 5});
  if (matches.ok()) {
    std::cout << "\nsample //inproceedings//cite matches:\n";
    for (const auto& m : matches->matches) {
      std::cout << "  " << c.DocName(c.DocOf(m.bindings[0])) << " cites via "
                << c.DocName(c.DocOf(m.bindings[1])) << "\n";
    }
  }
  return 0;
}
