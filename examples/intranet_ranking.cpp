// Distance-ranked retrieval over a linked auction-site collection — the
// XXL-style scenario the distance-aware index exists for (paper Sec 5.1):
// a result where the matched elements are close should rank above one
// where the connection meanders across many links.
//
//   $ ./intranet_ranking
#include <iostream>

#include "datagen/xmark.h"
#include "engine/engine.h"
#include "hopi/build.h"
#include "storage/linlout.h"

int main() {
  using namespace hopi;

  collection::Collection c;
  datagen::XmarkConfig config;
  config.num_items = 120;
  config.num_people = 80;
  config.num_auctions = 100;
  if (!datagen::GenerateXmarkCollection(config, &c).ok()) return 1;
  std::cout << "auction site: " << c.NumLiveDocuments() << " documents, "
            << c.NumElements() << " elements, " << c.NumInterLinks()
            << " cross-document references\n";

  IndexBuildOptions options;
  options.with_distance = true;  // Sec 5: distance-aware labels
  options.partition.max_connections = 40000;
  auto index = BuildIndex(&c, options);
  if (!index.ok()) {
    std::cerr << index.status() << "\n";
    return 1;
  }

  engine::QueryEngine engine = engine::QueryEngine::ForIndex(*index);

  // "Find auctions connected to an item description" — ranked by how
  // direct the connection is (itemref link vs longer bidder->person->watch
  // chains).
  const char* query_text = "//open_auction//description";
  auto matches =
      engine.Query({.expression = query_text, .max_matches = 10});
  if (!matches.ok()) return 1;
  std::cout << "\n//open_auction//description, ranked by distance:\n";
  for (const auto& m : matches->matches) {
    std::cout << "  auction-elem #" << m.bindings[0] << " -> desc #"
              << m.bindings[1] << "  hops=" << m.total_distance
              << "  score=" << m.score << "\n";
  }

  // Limited-length query: only near matches (Sec 5.1's "limited-length
  // paths between nodes with certain tags").
  auto near = engine.Query(
      {.expression = query_text, .max_matches = 10, .max_step_distance = 3});
  if (near.ok()) {
    std::cout << "with max_step_distance=3: " << near->matches.size()
              << " matches survive\n";
  }

  // Persist the index to the LIN/LOUT store and reopen it (what a search
  // engine restart would do).
  storage::LinLoutStore store =
      storage::LinLoutStore::FromCover(index->cover(), true);
  std::string path = "/tmp/hopi_intranet.idx";
  if (!store.WriteToFile(path).ok()) return 1;
  auto loaded = storage::LinLoutStore::ReadFromFile(path);
  if (!loaded.ok()) {
    std::cerr << loaded.status() << "\n";
    return 1;
  }
  std::cout << "\npersisted " << store.NumEntries() << " entries ("
            << store.StorageIntegers() * 4 / 1024
            << " KiB as integers)\n";

  // Serve the same query from the reloaded store: only the backend
  // changes, the facade and the results stay identical.
  engine::QueryEngine restarted = engine::QueryEngine::ForStore(c, *loaded);
  auto rematches =
      restarted.Query({.expression = query_text, .max_matches = 10});
  if (!rematches.ok()) return 1;
  bool consistent = rematches->matches.size() == matches->matches.size();
  for (size_t i = 0; consistent && i < rematches->matches.size(); ++i) {
    consistent = rematches->matches[i].bindings == matches->matches[i].bindings;
  }
  std::cout << "after restart from disk (backend: "
            << restarted.backend().Name() << "): "
            << (consistent ? "identical ranked matches" : "MISMATCH") << "\n";
  return 0;
}
