// A miniature XML search engine on the command line: generates (or
// ingests) a collection, builds a distance-aware HOPI index, then answers
// path queries — including XXL-style approximate tags.
//
//   $ ./search_tool "//inproceedings//cite//title"
//   $ ./search_tool --docs=500 "//~book//author"
//   $ ./search_tool --workload=xmark "//person//watch"
#include <iostream>

#include "datagen/dblp.h"
#include "datagen/xmark.h"
#include "engine/engine.h"
#include "hopi/build.h"
#include "util/cli.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace hopi;
  CommandLine cli;
  Status parsed = CommandLine::Parse(
      argc, argv, {"docs", "seed", "workload", "limit", "max-dist"}, &cli);
  if (!parsed.ok()) {
    std::cerr << parsed << "\n";
    return 2;
  }
  std::string query_text = cli.positional().empty()
                               ? "//inproceedings//cite//title"
                               : cli.positional().front();

  // 1. Data.
  collection::Collection c;
  std::string workload = cli.GetString("workload", "dblp");
  if (workload == "xmark") {
    datagen::XmarkConfig config;
    if (!datagen::GenerateXmarkCollection(config, &c).ok()) return 1;
  } else {
    datagen::DblpConfig config;
    config.num_docs = static_cast<size_t>(cli.GetInt("docs", 300));
    config.seed = static_cast<uint64_t>(cli.GetInt("seed", 42));
    if (!datagen::GenerateDblpCollection(config, &c).ok()) return 1;
  }
  std::cout << "collection: " << c.NumLiveDocuments() << " docs / "
            << c.NumElements() << " elements / " << c.NumInterLinks()
            << " links\n";

  // 2. Index.
  Stopwatch build_watch;
  IndexBuildOptions options;
  options.with_distance = true;
  options.partition.max_connections = 50000;
  auto index = BuildIndex(&c, options);
  if (!index.ok()) {
    std::cerr << index.status() << "\n";
    return 1;
  }
  std::cout << "index: " << index->CoverSize() << " entries ("
            << build_watch.ElapsedSeconds() << "s)\n\n";

  // 3. Query through the facade: the engine owns the tag index, the
  //    ontology for ~tag steps, and the hot-label cache.
  engine::QueryEngineOptions engine_options;
  engine_options.similarity = query::TagSimilarity::DblpDefaults();
  engine::QueryEngine engine =
      engine::QueryEngine::ForIndex(*index, std::move(engine_options));

  engine::PathQueryRequest request;
  request.expression = query_text;
  request.max_matches = static_cast<size_t>(cli.GetInt("limit", 10));
  if (cli.Has("max-dist")) {
    request.max_step_distance =
        static_cast<uint32_t>(cli.GetInt("max-dist", 0));
  }

  Stopwatch query_watch;
  auto response = engine.Query(request);
  if (!response.ok()) {
    std::cerr << response.status() << "\n";
    return response.status().IsInvalidArgument() ? 2 : 1;
  }
  std::cout << query_text << "  (" << query_watch.ElapsedMicros()
            << "us)\n";
  if (response->matches.empty()) {
    std::cout << "  no matches\n";
    return 0;
  }
  for (const query::PathMatch& m : response->matches) {
    std::cout << "  score=" << m.score << " dist=" << m.total_distance
              << "  ";
    for (size_t i = 0; i < m.bindings.size(); ++i) {
      NodeId e = m.bindings[i];
      if (i) std::cout << " // ";
      std::cout << c.TagOf(e) << "@" << c.DocName(c.DocOf(e));
    }
    std::cout << "\n";
  }
  return 0;
}
