// Incremental maintenance in action (paper Sec 6): a living collection
// where publications arrive and disappear without ever rebuilding the
// index from scratch.
//
//   $ ./incremental_updates
#include <iostream>

#include "datagen/dblp.h"
#include "hopi/build.h"
#include "util/timer.h"
#include "xml/parser.h"

int main() {
  using namespace hopi;

  collection::Collection c;
  datagen::DblpConfig config;
  config.num_docs = 300;
  config.seed = 7;
  if (!datagen::GenerateDblpCollection(config, &c).ok()) return 1;

  Stopwatch build_watch;
  IndexBuildOptions options;
  options.partition.max_connections = 40000;
  auto built = BuildIndex(&c, options);
  if (!built.ok()) return 1;
  HopiIndex index = std::move(built).value();
  double rebuild_cost = build_watch.ElapsedSeconds();
  std::cout << "initial build: " << index.CoverSize() << " entries, "
            << rebuild_cost << "s\n\n";

  // --- insertion: a new publication citing two existing ones ---
  collection::Ingestor ingestor(&c);
  auto new_pub = xml::ParseDocument(
      "<inproceedings><title>Fresh Results</title>"
      "<author>N. Ewcomer</author>"
      "<cite xlink:href=\"pub12.xml\"/><cite xlink:href=\"pub0.xml\"/>"
      "</inproceedings>",
      "pub-fresh.xml");
  if (!new_pub.ok()) return 1;
  auto id = ingestor.Ingest(*new_pub);
  if (!id.ok()) return 1;
  Stopwatch insert_watch;
  if (!index.InsertDocument(*id).ok()) return 1;
  std::cout << "inserted pub-fresh.xml in " << insert_watch.ElapsedMicros()
            << "us (vs " << rebuild_cost << "s rebuild)\n";
  std::cout << "  fresh pub reaches pub0's title? "
            << (index.IsReachable(c.RootOf(*id), c.RootOf(0)) ? "yes" : "no")
            << "\n\n";

  // --- a new citation link between existing publications ---
  Stopwatch link_watch;
  NodeId from = c.ElementsOf(5).back();
  NodeId to = c.RootOf(20);
  if (index.InsertLink(from, to).ok()) {
    std::cout << "inserted link pub5 -> pub20 in "
              << link_watch.ElapsedMicros() << "us\n\n";
  }

  // --- deletion: fast path vs general path ---
  int fast = 0, general = 0;
  double fast_time = 0, general_time = 0;
  for (collection::DocId d = 50; d < 70; ++d) {
    if (!c.IsLive(d)) continue;
    DeleteStats stats;
    if (!index.DeleteDocument(d, &stats).ok()) return 1;
    if (stats.separated) {
      ++fast;
      fast_time += stats.total_seconds;
    } else {
      ++general;
      general_time += stats.total_seconds;
    }
  }
  std::cout << "deleted 20 documents: " << fast
            << " via the Theorem-2 fast path (avg "
            << (fast ? fast_time / fast * 1e3 : 0) << "ms), " << general
            << " via the general Theorem-3 path (avg "
            << (general ? general_time / general * 1e3 : 0) << "ms)\n";
  std::cout << "index after updates: " << index.CoverSize() << " entries\n";
  return 0;
}
