// Deterministic pseudo-random number generation.
//
// All randomized components of the library (partitioner, data generators,
// the distance-cover sampling estimator) take an explicit seed so that
// benchmark tables are reproducible run-to-run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace hopi {

/// xoshiro256** — fast, high-quality, splittable-enough for our use.
/// Not cryptographic. Deterministic across platforms (unlike std::mt19937
/// paired with std::uniform_int_distribution, whose output is
/// implementation-defined).
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, bound). Precondition: bound > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Deterministic child generator for stream `i`: a pure function of the
  /// current state and i that does NOT advance this generator, so forked
  /// streams are independent of fork order. This is the seeding primitive
  /// for parallel loops (ThreadPool::ParallelFor): task i draws from
  /// Fork(i) and produces the same values no matter which worker runs it
  /// or when.
  Rng Fork(uint64_t i) const;

  /// Zipf-distributed rank in [0, n) with exponent `s`. Used by the DBLP
  /// generator for power-law citation targets. O(1) per draw after O(n)
  /// setup amortized via the rejection-inversion-free harmonic table.
  /// Precondition: n > 0.
  uint64_t NextZipf(uint64_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
  // Cached harmonic table for NextZipf: rebuilt when (n, s) changes.
  std::vector<double> zipf_cdf_;
  uint64_t zipf_n_ = 0;
  double zipf_s_ = 0.0;
};

}  // namespace hopi
