// Result<T>: a value or a Status, in the spirit of arrow::Result.
#pragma once

#include <cassert>
#include <utility>
#include <variant>

#include "util/status.h"

namespace hopi {

/// Holds either a successfully produced T or the Status explaining why the
/// T could not be produced. A Result never holds an OK status.
/// [[nodiscard]] like Status: discarding a Result drops both the value
/// and the error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value — enables `return value;` in Result-returning code.
  Result(T value) : state_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status. Must not be OK.
  Result(Status status) : state_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(state_).ok() &&
           "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(state_); }

  /// Status of the result: OK() if a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(state_);
  }

  /// Precondition: ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(state_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(state_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(state_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this Result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> state_;
};

/// Assigns the value of a Result expression to `lhs`, or returns its error.
#define HOPI_ASSIGN_OR_RETURN(lhs, expr)            \
  auto HOPI_CONCAT_(_res_, __LINE__) = (expr);      \
  if (!HOPI_CONCAT_(_res_, __LINE__).ok())          \
    return HOPI_CONCAT_(_res_, __LINE__).status();  \
  lhs = std::move(HOPI_CONCAT_(_res_, __LINE__)).value()

#define HOPI_CONCAT_INNER_(a, b) a##b
#define HOPI_CONCAT_(a, b) HOPI_CONCAT_INNER_(a, b)

}  // namespace hopi
