// Wall-clock stopwatch used by the benchmark harnesses.
#pragma once

#include <chrono>
#include <cstdint>

namespace hopi {

/// Monotonic stopwatch. Started on construction; Restart() resets.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time in seconds (fractional).
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in whole microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hopi
