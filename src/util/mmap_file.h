// Read-only memory-mapped file with RAII unmapping.
//
// The storage layer's mapped LIN/LOUT reader serves label spans straight
// out of the page cache through this wrapper. Platforms without mmap
// (or a failed map) report Unsupported from Open(); callers fall back to
// buffered reads — MappedFile never aborts the process.
#pragma once

#include <cstddef>
#include <string>

#include "util/result.h"

namespace hopi {

class MappedFile {
 public:
  /// True when this build can memory-map files at all (POSIX mmap).
  /// When false, Open() always returns Unsupported and callers should
  /// take their buffered-read path directly.
  static bool Supported();

  /// Maps `path` read-only in its entirety. An empty file maps to a
  /// valid zero-length view. Errors: IOError (missing/unreadable file),
  /// Unsupported (platform without mmap or kernel refusal).
  static Result<MappedFile> Open(const std::string& path);

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  /// First byte of the mapping; nullptr only for zero-length files.
  /// The view is valid for the lifetime of this object.
  const std::byte* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  MappedFile(const std::byte* data, size_t size) : data_(data), size_(size) {}

  void Reset();

  const std::byte* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace hopi
