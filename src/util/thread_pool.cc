#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>
#include <utility>

namespace hopi {

/// One ParallelFor invocation. Workers claim chunks of indices from
/// `next`; every claimed index (run or skipped after cancellation) is
/// counted in `done`, so done == end - begin is the completion condition
/// the caller waits on — no worker can still be inside fn at that point
/// because the count is bumped only after fn returns. The hot path is
/// lock-free (one fetch_add to claim a chunk, one to report it done);
/// `mu` is taken only to record a failure or to publish the final
/// completion wakeup.
struct ThreadPool::Job {
  Job(size_t begin_arg, size_t end_arg, size_t chunk_arg,
      const std::function<Status(size_t, size_t)>& fn_arg)
      : begin(begin_arg), end(end_arg), chunk(chunk_arg), fn(fn_arg),
        next(begin_arg) {}

  const size_t begin;
  const size_t end;
  const size_t chunk;
  const std::function<Status(size_t, size_t)>& fn;
  std::atomic<size_t> next;
  std::atomic<size_t> done{0};
  std::atomic<bool> cancel{false};

  std::mutex mu;
  std::condition_variable done_cv;
  size_t error_index = std::numeric_limits<size_t>::max();
  Status status = Status::OK();
  std::exception_ptr exception;

  void Fail(size_t i, Status s, std::exception_ptr e) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (i < error_index) {
        error_index = i;
        status = std::move(s);
        exception = std::move(e);
      }
    }
    cancel.store(true, std::memory_order_release);
  }

  void Run(size_t worker) {
    for (;;) {
      size_t lo = next.fetch_add(chunk, std::memory_order_relaxed);
      if (lo >= end) return;
      size_t hi = std::min(lo + chunk, end);
      for (size_t i = lo;
           i < hi && !cancel.load(std::memory_order_acquire); ++i) {
        try {
          Status s = fn(i, worker);
          if (!s.ok()) Fail(i, std::move(s), nullptr);
        } catch (...) {
          Fail(i, Status::OK(), std::current_exception());
        }
      }
      size_t finished =
          done.fetch_add(hi - lo, std::memory_order_acq_rel) + (hi - lo);
      if (finished == end - begin) {
        // Take the lock before notifying so the wakeup cannot slip
        // between the caller's predicate check and its wait.
        std::lock_guard<std::mutex> lock(mu);
        done_cv.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(size_t num_threads) {
  size_t spawn = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(spawn);
  for (size_t t = 0; t < spawn; ++t) {
    workers_.emplace_back([this, t] { WorkerLoop(t + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop(size_t worker) {
  uint64_t last_seq = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || (job_ && job_seq_ != last_seq); });
      if (stop_) return;
      job = job_;
      last_seq = job_seq_;
    }
    job->Run(worker);
  }
}

Status ThreadPool::ParallelFor(
    size_t begin, size_t end,
    const std::function<Status(size_t, size_t)>& fn) {
  if (end <= begin) return Status::OK();
  bool claimed = false;
  if (!(workers_.empty() || end - begin == 1)) {
    bool expected = false;
    claimed = loop_active_.compare_exchange_strong(
        expected, true, std::memory_order_acquire);
  }
  if (!claimed) {
    // Serial path with the same early-cancel error semantics. Taken for
    // trivial ranges, worker-less pools, and — the re-entrancy guard —
    // whenever another ParallelFor already owns the workers (a
    // concurrent caller or a nested call from inside a task).
    for (size_t i = begin; i < end; ++i) {
      Status s = fn(i, 0);
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

  // Chunked claiming keeps the per-index overhead of fine-grained loops
  // (e.g. the per-node priority seeding pass) at one atomic op per
  // ~8 chunks/worker instead of one per index; small ranges degrade to
  // chunk = 1, which heterogeneous heavy tasks (partition covers,
  // frontier evaluations) want for load balance.
  size_t chunk = std::max<size_t>(1, (end - begin) / (NumWorkers() * 8));
  auto job = std::make_shared<Job>(begin, end, chunk, fn);
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = job;
    ++job_seq_;
  }
  cv_.notify_all();
  job->Run(0);
  {
    std::unique_lock<std::mutex> lock(job->mu);
    job->done_cv.wait(lock, [&] {
      return job->done.load(std::memory_order_acquire) == end - begin;
    });
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = nullptr;
  }
  loop_active_.store(false, std::memory_order_release);
  if (job->exception) std::rethrow_exception(job->exception);
  return job->status;
}

Status ThreadPool::ParallelFor(size_t begin, size_t end,
                               const std::function<Status(size_t)>& fn) {
  return ParallelFor(begin, end,
                     [&fn](size_t i, size_t) { return fn(i); });
}

}  // namespace hopi
