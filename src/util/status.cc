#include "util/status.h"

namespace hopi {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kOutOfBudget:
      return "OutOfBudget";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace hopi
