// CRC-32 checksum (the zlib/IEEE 802.3 polynomial, reflected form).
//
// Used by the storage layer to seal LIN/LOUT files: the writer appends
// the checksum of everything it wrote, the readers recompute it before
// trusting any field, so a torn or bit-flipped file surfaces as a
// Corruption status instead of garbage rows. The incremental form
// (seed = previous value) lets writers checksum streaming output
// without buffering twice.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hopi {

/// CRC-32 of `data[0, n)`. Pass the previous return value as `seed` to
/// extend a running checksum across multiple buffers; the default seed
/// starts a fresh checksum. Crc32(p, 0) == seed.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

}  // namespace hopi
