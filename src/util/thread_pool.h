// Shared fixed-size thread pool with a dynamically chunked ParallelFor.
//
// The build pipeline needs the same parallel shape in two places — the
// per-partition cover builds in hopi/build.cc and the speculative
// candidate evaluation inside a single cover build in twohop/builder.cc —
// so the mechanics live here once: a task-queue pool (no work stealing;
// indices are claimed from one atomic counter, which keeps heterogeneous
// task sizes balanced) with an error channel that replaces the previous
// ad-hoc std::vector<std::thread> loops, where a throwing worker called
// std::terminate and a failed Status was only discovered serially after
// join.
//
// Determinism contract: ParallelFor runs fn(i) for every index exactly
// once, in unspecified order. Callers that need reproducible results must
// make fn(i) a pure function of i (see Rng::Fork for per-index random
// streams) writing to disjoint slots.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"

namespace hopi {

/// A pool of `num_threads - 1` worker threads; the thread calling
/// ParallelFor participates as worker 0, so a pool constructed with n
/// runs loops on exactly n threads (and a pool of 1 spawns nothing and
/// degrades to a serial loop).
///
/// One *parallel* loop runs at a time. A second ParallelFor — whether
/// called concurrently from another thread or reentrantly from inside a
/// task of the same pool — does not block and does not corrupt the
/// running loop: it detects the busy pool and degrades to an inline
/// serial loop on the calling thread, preserving the error-channel
/// semantics. This makes the pool safe to share between a background
/// build and concurrent overlay BFS probes (engine/delta_overlay.cc);
/// callers that want guaranteed nested parallelism still use a
/// separate, smaller pool (see the thread budget split in
/// hopi/build.cc).
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of threads that execute a ParallelFor, including the caller.
  size_t NumWorkers() const { return workers_.size() + 1; }

  /// Runs fn(i, worker) for every i in [begin, end), where worker is the
  /// executing thread's id in [0, NumWorkers()) — use it to index
  /// per-thread scratch. Blocks until every index has been claimed and
  /// every started task has finished.
  ///
  /// Error channel: the first failure cancels all not-yet-started tasks.
  /// A non-OK Status is returned (when several tasks fail concurrently,
  /// the one with the lowest index among those that ran wins, so a
  /// deterministic fault yields a deterministic report); an exception is
  /// rethrown on the calling thread instead of terminating the process.
  Status ParallelFor(size_t begin, size_t end,
                     const std::function<Status(size_t, size_t)>& fn);

  /// As above for tasks that don't need the worker id.
  Status ParallelFor(size_t begin, size_t end,
                     const std::function<Status(size_t)>& fn);

 private:
  struct Job;

  void WorkerLoop(size_t worker);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::shared_ptr<Job> job_;  // current loop, null when idle
  uint64_t job_seq_ = 0;      // bumped per loop so a worker never rejoins
                              // a loop it already finished
  bool stop_ = false;
  // Claimed by the one ParallelFor that may use the workers; a
  // concurrent or reentrant call that loses the claim runs inline.
  std::atomic<bool> loop_active_{false};
};

}  // namespace hopi
