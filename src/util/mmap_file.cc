#include "util/mmap_file.h"

#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define HOPI_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define HOPI_HAS_MMAP 0
#endif

namespace hopi {

bool MappedFile::Supported() { return HOPI_HAS_MMAP != 0; }

#if HOPI_HAS_MMAP

Result<MappedFile> MappedFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError("cannot open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::IOError("cannot stat " + path);
  }
  size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return MappedFile(nullptr, 0);
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference to the file
  if (map == MAP_FAILED) {
    return Status::Unsupported("mmap failed for " + path +
                               " — use the buffered reader");
  }
  return MappedFile(static_cast<const std::byte*>(map), size);
}

void MappedFile::Reset() {
  if (data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);
  }
  data_ = nullptr;
  size_ = 0;
}

#else  // !HOPI_HAS_MMAP

Result<MappedFile> MappedFile::Open(const std::string& path) {
  return Status::Unsupported("no mmap on this platform (" + path +
                             ") — use the buffered reader");
}

void MappedFile::Reset() {
  data_ = nullptr;
  size_ = 0;
}

#endif  // HOPI_HAS_MMAP

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    Reset();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

MappedFile::~MappedFile() { Reset(); }

}  // namespace hopi
