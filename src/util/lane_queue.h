// MPMC work queue with per-consumer lanes.
//
// The serving layer (engine/engine_pool.h) pins each work item to one
// long-lived worker so per-worker state (a label cache, a bound backend
// snapshot) stays thread-private; this is the queue underneath: any
// number of producers Push into a chosen lane, each consumer Pops from
// its own lane. Producers pick the lane — round-robin for affinity, or
// LeastLoadedLane() for balance — which is the whole difference from
// util::ThreadPool's single atomic-counter loop: ThreadPool fans one
// bounded index range over transient workers, a LaneQueue feeds an
// open-ended stream of heterogeneous items to resident ones.
//
// Close() stops producers (Push returns false) but lets consumers drain
// what was already queued: Pop keeps returning items until the lane is
// empty, then returns nullopt. Everything is guarded by one mutex —
// items are coarse (a whole query batch), so contention is not the
// bottleneck; do not put per-microsecond work through this.
//
// Bounding: a queue constructed with a per-lane capacity sheds instead
// of growing without bound — TryPush on a full lane returns kShed and
// drops the item, which is the primitive under the serving layer's
// admission control (an unbounded queue under sustained overload is
// just a slow OOM). Push deliberately ignores the capacity: it is the
// trusted in-process producer path (maintenance, tests) where the
// caller would rather queue deep than lose work.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace hopi {

/// Outcome of a bounded enqueue attempt.
enum class LanePush {
  kAccepted,  ///< Item queued; the lane's consumer was woken.
  kShed,      ///< Lane at capacity; the item was dropped.
  kClosed,    ///< Queue closed; the item was dropped.
};

template <typename T>
class LaneQueue {
 public:
  /// `capacity_per_lane` bounds how many items one lane may hold
  /// (TryPush sheds beyond it); 0 = unbounded.
  explicit LaneQueue(size_t lanes, size_t capacity_per_lane = 0)
      : cvs_(lanes), lanes_(lanes), capacity_(capacity_per_lane) {}

  size_t NumLanes() const { return lanes_.size(); }

  /// Per-lane bound (0 = unbounded). Fixed at construction.
  size_t CapacityPerLane() const { return capacity_; }

  /// Enqueues `item` into `lane`. Returns false (dropping the item)
  /// after Close(). Wakes only `lane`'s consumer — the producer knows
  /// the lane, so there is no notify_all thundering herd on the
  /// serving hot path.
  bool Push(size_t lane, T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      lanes_[lane].push_back(std::move(item));
    }
    cvs_[lane].notify_one();
    return true;
  }

  /// Bounded enqueue: sheds (dropping `item`) when `lane` already holds
  /// CapacityPerLane() items, instead of queueing arbitrarily deep.
  /// Never blocks — this is the admission-controlled producer path, and
  /// the caller turns kShed into a typed ResourceExhausted for its
  /// client rather than stalling it.
  LanePush TryPush(size_t lane, T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return LanePush::kClosed;
      if (capacity_ != 0 && lanes_[lane].size() >= capacity_) {
        return LanePush::kShed;
      }
      lanes_[lane].push_back(std::move(item));
    }
    cvs_[lane].notify_one();
    return LanePush::kAccepted;
  }

  /// Blocks until `lane` has an item or the queue is closed and `lane`
  /// is drained (nullopt). Intended for one consumer per lane; multiple
  /// consumers on one lane are safe but defeat the affinity purpose.
  std::optional<T> Pop(size_t lane) {
    std::unique_lock<std::mutex> lock(mu_);
    cvs_[lane].wait(lock, [&] { return closed_ || !lanes_[lane].empty(); });
    if (lanes_[lane].empty()) return std::nullopt;
    T item = std::move(lanes_[lane].front());
    lanes_[lane].pop_front();
    return item;
  }

  /// Lane with the fewest queued items (lowest index on ties). Note
  /// this sees only *queued* items; a producer balancing against
  /// consumers' in-flight work should combine Depths() with its own
  /// execution tracking (as engine::EnginePool does).
  size_t LeastLoadedLane() const {
    std::lock_guard<std::mutex> lock(mu_);
    size_t best = 0;
    for (size_t i = 1; i < lanes_.size(); ++i) {
      if (lanes_[i].size() < lanes_[best].size()) best = i;
    }
    return best;
  }

  /// Queued item count of every lane, read under one lock.
  std::vector<size_t> Depths() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<size_t> depths(lanes_.size());
    for (size_t i = 0; i < lanes_.size(); ++i) depths[i] = lanes_[i].size();
    return depths;
  }

  /// Items currently queued across all lanes.
  size_t TotalQueued() const {
    std::lock_guard<std::mutex> lock(mu_);
    size_t total = 0;
    for (const auto& lane : lanes_) total += lane.size();
    return total;
  }

  /// Rejects further Pushes and wakes every blocked Pop. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    for (auto& cv : cvs_) cv.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  mutable std::mutex mu_;
  // One CV per lane so a Push wakes exactly its lane's consumer.
  // Sized once at construction; condition_variable is immovable, which
  // is fine because the vector never grows.
  std::vector<std::condition_variable> cvs_;
  std::vector<std::deque<T>> lanes_;
  size_t capacity_ = 0;  // 0 = unbounded
  bool closed_ = false;
};

}  // namespace hopi
