#include "util/cli.h"

#include <algorithm>
#include <cstdlib>

namespace hopi {

Status CommandLine::Parse(int argc, char** argv,
                          const std::vector<std::string>& known,
                          CommandLine* out) {
  auto is_known = [&known](const std::string& name) {
    return known.empty() ||
           std::find(known.begin(), known.end(), name) != known.end();
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      out->positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    std::string name, value;
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
    } else if (body.rfind("no-", 0) == 0 && is_known(body.substr(3))) {
      name = body.substr(3);
      value = "false";
    } else {
      name = body;
      // `--flag value` form only when the next token is not itself a flag
      // and the bare form isn't a boolean enable.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    if (!is_known(name)) {
      return Status::InvalidArgument("unknown flag --" + name);
    }
    out->flags_[name] = value;
  }
  return Status::OK();
}

std::string CommandLine::GetString(const std::string& name,
                                   std::string def) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

int64_t CommandLine::GetInt(const std::string& name, int64_t def) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double CommandLine::GetDouble(const std::string& name, double def) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool CommandLine::GetBool(const std::string& name, bool def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return it->second != "false" && it->second != "0" && it->second != "no";
}

}  // namespace hopi
