// Small statistics helpers.
//
// The distance-aware cover build (paper Sec 5.2) estimates the edge count of
// an initial center graph by sampling at most 13,600 candidate edges and
// taking the upper bound of the 98% confidence interval for the edge
// fraction. The interval arithmetic lives here.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hopi {

/// A two-sided confidence interval for a proportion.
struct ConfidenceInterval {
  double lower = 0.0;
  double upper = 1.0;
};

/// Normal-approximation (Wald) confidence interval for a binomial proportion
/// observed as `successes` out of `samples`, at confidence `confidence`
/// (e.g. 0.98). Bounds are clamped to [0,1]. With 13,600 samples at 98%
/// confidence the interval length is at most 0.02, matching the paper's
/// sizing argument.
ConfidenceInterval BinomialConfidenceInterval(uint64_t successes,
                                              uint64_t samples,
                                              double confidence);

/// Inverse of the standard normal CDF (Acklam's rational approximation,
/// |relative error| < 1.15e-9). Needed for the z-value of the interval.
double NormalQuantile(double p);

/// Summary statistics for a series of measurements.
struct Summary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;
  size_t count = 0;
};

/// Computes summary statistics. Returns a zeroed Summary for empty input.
Summary Summarize(std::vector<double> values);

}  // namespace hopi
