// Small statistics helpers.
//
// The distance-aware cover build (paper Sec 5.2) estimates the edge count of
// an initial center graph by sampling at most 13,600 candidate edges and
// taking the upper bound of the 98% confidence interval for the edge
// fraction. The interval arithmetic lives here.
// The serving front-end (src/net/) additionally needs cheap, wait-free
// latency tracking that many threads can feed concurrently and a /stats
// reader can quantile at any time; LatencyHistogram below is that:
// log-bucketed (4 sub-buckets per octave, ~19% worst-case relative
// error), fixed memory, relaxed atomics throughout.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace hopi {

/// A two-sided confidence interval for a proportion.
struct ConfidenceInterval {
  double lower = 0.0;
  double upper = 1.0;
};

/// Normal-approximation (Wald) confidence interval for a binomial proportion
/// observed as `successes` out of `samples`, at confidence `confidence`
/// (e.g. 0.98). Bounds are clamped to [0,1]. With 13,600 samples at 98%
/// confidence the interval length is at most 0.02, matching the paper's
/// sizing argument.
ConfidenceInterval BinomialConfidenceInterval(uint64_t successes,
                                              uint64_t samples,
                                              double confidence);

/// Inverse of the standard normal CDF (Acklam's rational approximation,
/// |relative error| < 1.15e-9). Needed for the z-value of the interval.
double NormalQuantile(double p);

/// Summary statistics for a series of measurements.
struct Summary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;
  size_t count = 0;
};

/// Computes summary statistics. Returns a zeroed Summary for empty input.
Summary Summarize(std::vector<double> values);

/// Concurrent log-bucketed histogram for latency-like values (recorded
/// in nanoseconds; any monotone unit works).
///
/// Buckets: values 0..3 get exact buckets; beyond that each power-of-
/// two octave is split into 4 sub-buckets, so a reported quantile is at
/// most ~19% above the true value — plenty for p50/p99/p999 serving
/// dashboards, at 4*64 counters of fixed memory and one relaxed
/// fetch_add per Record. Record() is safe from any number of threads;
/// TakeSnapshot() is safe concurrently with recording and returns a
/// self-contained copy (counts may be torn across buckets by at most
/// the records in flight — the usual monotonic-counters caveat).
class LatencyHistogram {
 public:
  static constexpr size_t kNumBuckets = 4 * 64;

  void Record(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  /// A point-in-time copy, quantile-able without further
  /// synchronization.
  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    std::array<uint64_t, kNumBuckets> buckets{};

    /// Upper bound of the bucket containing the p-quantile (p in
    /// [0,1]), or 0 when empty. Monotone in p.
    uint64_t ValueAtQuantile(double p) const;
    /// sum / count (0 when empty).
    double Mean() const;
  };
  Snapshot TakeSnapshot() const;

  /// Bucket index for `value` (exposed for tests: the binning must stay
  /// monotone and total).
  static size_t BucketIndex(uint64_t value);
  /// Largest value mapped to bucket `index` (the quantile estimate).
  static uint64_t BucketUpperBound(size_t index);

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

}  // namespace hopi
