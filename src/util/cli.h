// Minimal command-line flag parsing for the bench/example binaries.
//
// Supports `--name=value` and `--name value` forms plus boolean
// `--name` / `--no-name`. Unrecognized flags are reported, not ignored,
// so bench invocations fail loudly on typos.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace hopi {

/// Parsed command line: flag map plus positional arguments.
class CommandLine {
 public:
  /// Parses argv (skipping argv[0]). `known` lists accepted flag names;
  /// an empty list accepts anything.
  static Status Parse(int argc, char** argv,
                      const std::vector<std::string>& known,
                      CommandLine* out);

  bool Has(const std::string& name) const { return flags_.count(name) > 0; }

  /// Returns the flag value or `def` when absent.
  std::string GetString(const std::string& name, std::string def) const;
  int64_t GetInt(const std::string& name, int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  bool GetBool(const std::string& name, bool def) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace hopi
