// Runtime CPU feature detection (cpuid) for the dispatched kernels.
//
// The join-kernel subsystem (twohop/join_kernel.h) compiles its SIMD
// variants unconditionally — AVX2 code via per-function target
// attributes — and picks an implementation at runtime, katana-style:
// one algorithm, per-platform kernels. This header is the single
// source of truth for what the machine we actually landed on can
// execute; nothing else in the tree may ifdef on -m flags to decide
// dispatch (compile-time flags describe the *build* machine, not the
// *run* machine).
#pragma once

namespace hopi::util {

/// The instruction-set extensions the dispatched kernels care about.
/// All false on non-x86 targets and on compilers without
/// __builtin_cpu_supports — dispatch then degrades to portable code.
struct CpuFeatures {
  bool sse2 = false;
  bool sse4_2 = false;
  bool avx2 = false;
};

/// Features of the executing CPU, detected once (thread-safe, cached).
const CpuFeatures& CpuInfo();

}  // namespace hopi::util
