// Status: lightweight error propagation for fallible operations.
//
// Follows the RocksDB/Arrow convention: functions that can fail return a
// Status (or Result<T>, see result.h) instead of throwing. Internal
// invariants are guarded with assertions, not Status.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>

namespace hopi {

/// Error taxonomy for the HOPI library. Kept deliberately small; the message
/// string carries the specifics.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kCorruption,      // malformed persistent data / XML
  kOutOfBudget,     // a memory/connection budget was exhausted
  kIOError,
  kUnsupported,
  kInternal,
  kFailedPrecondition,  // object in the wrong lifecycle state for the call
                        // (e.g. submitting to a shut-down EnginePool)
  kResourceExhausted,   // transient overload: a bounded queue is full or an
                        // admission watermark tripped — retrying later is
                        // expected to succeed (maps to HTTP 429)
  kDeadlineExceeded,    // a deadline elapsed before the operation finished;
                        // any result delivered alongside is partial (maps to
                        // HTTP 504)
  kUnavailable,         // a required component (e.g. a shard) failed or is
                        // unreachable; retrying may succeed once it recovers
                        // (maps to HTTP 503)
};

/// Returns a human-readable name for a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Value-semantic status object. Cheap to copy in the OK case (empty
/// message), and small enough to return by value everywhere.
/// [[nodiscard]]: silently dropping a Status hides failures — callers
/// must check (or explicitly cast to void with a reason).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfBudget(std::string msg) {
    return Status(StatusCode::kOutOfBudget, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsOutOfBudget() const { return code_ == StatusCode::kOutOfBudget; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsUnsupported() const { return code_ == StatusCode::kUnsupported; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK status to the caller.
#define HOPI_RETURN_NOT_OK(expr)                \
  do {                                          \
    ::hopi::Status _st = (expr);                \
    if (!_st.ok()) return _st;                  \
  } while (0)

}  // namespace hopi
