#include "util/table_printer.h"

#include <cstdint>
#include <cstdio>
#include <iomanip>

namespace hopi {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    }
    os << "\n";
  };
  print_row(header_);
  size_t total = 0;
  for (size_t w : width) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::FmtCount(uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return std::string(out.rbegin(), out.rend());
}

}  // namespace hopi
