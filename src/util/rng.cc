#include "util/rng.h"

#include <cassert>
#include <cmath>

namespace hopi {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, used to expand the seed into the xoshiro state.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& si : s_) si = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Debiased modulo (rejection sampling on the tail).
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

Rng Rng::Fork(uint64_t i) const {
  // Feed the full parent state and the stream index through splitmix so
  // sibling streams (and the parent's own future output) stay decorrelated
  // even for adjacent i.
  uint64_t sm = s_[0] ^ (0x9e3779b97f4a7c15ULL * (i + 1));
  sm ^= SplitMix64(&sm) + Rotl(s_[1], 13);
  sm ^= SplitMix64(&sm) + Rotl(s_[2], 29);
  sm ^= SplitMix64(&sm) + Rotl(s_[3], 47);
  return Rng(SplitMix64(&sm));
}

uint64_t Rng::NextZipf(uint64_t n, double s) {
  assert(n > 0);
  if (zipf_n_ != n || zipf_s_ != s) {
    zipf_cdf_.resize(n);
    double sum = 0.0;
    for (uint64_t k = 0; k < n; ++k) {
      sum += 1.0 / std::pow(static_cast<double>(k + 1), s);
      zipf_cdf_[k] = sum;
    }
    for (uint64_t k = 0; k < n; ++k) zipf_cdf_[k] /= sum;
    zipf_n_ = n;
    zipf_s_ = s;
  }
  double u = NextDouble();
  // Binary search for the first cdf entry >= u.
  size_t lo = 0, hi = zipf_cdf_.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (zipf_cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo < zipf_cdf_.size() ? lo : zipf_cdf_.size() - 1;
}

}  // namespace hopi
