#include "util/cpu.h"

namespace hopi::util {

namespace {

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
CpuFeatures Detect() {
  __builtin_cpu_init();
  CpuFeatures f;
  f.sse2 = __builtin_cpu_supports("sse2");
  f.sse4_2 = __builtin_cpu_supports("sse4.2");
  f.avx2 = __builtin_cpu_supports("avx2");
  return f;
}
#else
CpuFeatures Detect() { return CpuFeatures{}; }
#endif

}  // namespace

const CpuFeatures& CpuInfo() {
  static const CpuFeatures features = Detect();
  return features;
}

}  // namespace hopi::util
