#include "util/checksum.h"

#include <array>

namespace hopi {

namespace {

// Reflected CRC-32 table for polynomial 0xEDB88320, generated at
// compile time (no init-order concerns for static-init callers).
constexpr std::array<uint32_t, 256> MakeCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kCrc32Table = MakeCrc32Table();

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = kCrc32Table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace hopi
