// Aligned ASCII table output for the benchmark harnesses, so every bench
// binary prints rows shaped like the paper's tables.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace hopi {

/// Collects rows of string cells and prints them with aligned columns.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Adds a row; it may have fewer cells than the header (padded empty).
  void AddRow(std::vector<std::string> cells);

  /// Renders the table with a separator line under the header.
  void Print(std::ostream& os) const;

  /// Formats a double with `precision` digits after the decimal point.
  static std::string Fmt(double v, int precision = 1);
  /// Formats an integer with thousands separators ("1,289,930").
  static std::string FmtCount(uint64_t v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hopi
