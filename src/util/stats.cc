#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace hopi {

double NormalQuantile(double p) {
  assert(p > 0.0 && p < 1.0);
  // Acklam's algorithm.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  const double phigh = 1 - plow;
  double q, r;
  if (p < plow) {
    q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p > phigh) {
    q = std::sqrt(-2 * std::log(1 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  q = p - 0.5;
  r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
}

ConfidenceInterval BinomialConfidenceInterval(uint64_t successes,
                                              uint64_t samples,
                                              double confidence) {
  ConfidenceInterval ci;
  if (samples == 0) return ci;  // no information: [0, 1]
  double phat = static_cast<double>(successes) / static_cast<double>(samples);
  double alpha = 1.0 - confidence;
  double z = NormalQuantile(1.0 - alpha / 2.0);
  double half =
      z * std::sqrt(phat * (1.0 - phat) / static_cast<double>(samples));
  // Wald intervals degenerate at phat in {0,1}; widen by the worst-case
  // half-width so the upper bound stays a safe overestimate (the build
  // algorithm only needs an upper bound that rarely undershoots).
  if (successes == 0 || successes == samples) {
    half = z * 0.5 / std::sqrt(static_cast<double>(samples));
  }
  ci.lower = std::max(0.0, phat - half);
  ci.upper = std::min(1.0, phat + half);
  return ci;
}

Summary Summarize(std::vector<double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  s.median = values.size() % 2 == 1
                 ? values[values.size() / 2]
                 : 0.5 * (values[values.size() / 2 - 1] +
                          values[values.size() / 2]);
  double sum = 0.0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - s.mean) * (v - s.mean);
  s.stddev = values.size() > 1
                 ? std::sqrt(var / static_cast<double>(values.size() - 1))
                 : 0.0;
  return s;
}

}  // namespace hopi
