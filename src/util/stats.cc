#include "util/stats.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

namespace hopi {

double NormalQuantile(double p) {
  assert(p > 0.0 && p < 1.0);
  // Acklam's algorithm.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  const double phigh = 1 - plow;
  double q, r;
  if (p < plow) {
    q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p > phigh) {
    q = std::sqrt(-2 * std::log(1 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  q = p - 0.5;
  r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
}

ConfidenceInterval BinomialConfidenceInterval(uint64_t successes,
                                              uint64_t samples,
                                              double confidence) {
  ConfidenceInterval ci;
  if (samples == 0) return ci;  // no information: [0, 1]
  double phat = static_cast<double>(successes) / static_cast<double>(samples);
  double alpha = 1.0 - confidence;
  double z = NormalQuantile(1.0 - alpha / 2.0);
  double half =
      z * std::sqrt(phat * (1.0 - phat) / static_cast<double>(samples));
  // Wald intervals degenerate at phat in {0,1}; widen by the worst-case
  // half-width so the upper bound stays a safe overestimate (the build
  // algorithm only needs an upper bound that rarely undershoots).
  if (successes == 0 || successes == samples) {
    half = z * 0.5 / std::sqrt(static_cast<double>(samples));
  }
  ci.lower = std::max(0.0, phat - half);
  ci.upper = std::min(1.0, phat + half);
  return ci;
}

Summary Summarize(std::vector<double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  s.median = values.size() % 2 == 1
                 ? values[values.size() / 2]
                 : 0.5 * (values[values.size() / 2 - 1] +
                          values[values.size() / 2]);
  double sum = 0.0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - s.mean) * (v - s.mean);
  s.stddev = values.size() > 1
                 ? std::sqrt(var / static_cast<double>(values.size() - 1))
                 : 0.0;
  return s;
}

size_t LatencyHistogram::BucketIndex(uint64_t value) {
  // Values 0..3 are exact; from octave 2 on, the top two bits below the
  // leading one select one of 4 sub-buckets.
  if (value < 4) return static_cast<size_t>(value);
  int octave = 63 - std::countl_zero(value);  // floor(log2), >= 2
  size_t sub = static_cast<size_t>((value >> (octave - 2)) & 3);
  size_t index = static_cast<size_t>(octave - 1) * 4 + sub;
  return std::min(index, kNumBuckets - 1);
}

uint64_t LatencyHistogram::BucketUpperBound(size_t index) {
  if (index < 4) return index;
  int octave = static_cast<int>(index / 4) + 1;
  uint64_t sub = index % 4;
  // Lower bound of the *next* bucket, minus one.
  return ((4 + sub + 1) << (octave - 2)) - 1;
}

LatencyHistogram::Snapshot LatencyHistogram::TakeSnapshot() const {
  Snapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kNumBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

uint64_t LatencyHistogram::Snapshot::ValueAtQuantile(double p) const {
  if (count == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  // Rank of the quantile sample, 1-based; ceil so p=0.999 with 1000
  // samples lands on sample 999, not 1000.
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(p * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  size_t last_nonempty = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (buckets[i] == 0) continue;
    last_nonempty = i;
    seen += buckets[i];
    if (seen >= rank) return BucketUpperBound(i);
  }
  // `count` can run ahead of the bucket sums under concurrent Record
  // (relaxed counters); answer with the largest observed bucket.
  return BucketUpperBound(last_nonempty);
}

double LatencyHistogram::Snapshot::Mean() const {
  if (count == 0) return 0.0;
  return static_cast<double>(sum) / static_cast<double>(count);
}

}  // namespace hopi
