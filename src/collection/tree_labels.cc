#include "collection/tree_labels.h"

#include <cassert>

namespace hopi::collection {

TreeLabels::TreeLabels(const Collection& collection)
    : collection_(collection) {
  const size_t n = collection.NumElements();
  pre_.assign(n, 0);
  post_.assign(n, 0);
  depth_.assign(n, 0);
  subtree_size_.assign(n, 1);

  // Children lists from the parent pointers (tree edges only — the
  // element graph also contains links, which must not count here).
  std::vector<std::vector<NodeId>> children(n);
  for (NodeId e = 0; e < n; ++e) {
    DocId d = collection.DocOf(e);
    if (d == kInvalidDoc || !collection.IsLive(d)) continue;
    NodeId p = collection.ParentOf(e);
    if (p != kInvalidNode) children[p].push_back(e);
  }

  for (DocId d = 0; d < collection.NumDocuments(); ++d) {
    if (!collection.IsLive(d)) continue;
    NodeId root = collection.RootOf(d);
    if (root == kInvalidNode) continue;
    uint32_t pre_counter = 0;
    uint32_t post_counter = 0;
    // Iterative DFS carrying depth; post-order assigned when a node's
    // subtree is exhausted.
    struct Frame {
      NodeId node;
      size_t child;
    };
    std::vector<Frame> stack{{root, 0}};
    pre_[root] = pre_counter++;
    depth_[root] = 0;
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.child < children[f.node].size()) {
        NodeId c = children[f.node][f.child++];
        pre_[c] = pre_counter++;
        depth_[c] = depth_[f.node] + 1;
        stack.push_back({c, 0});
      } else {
        post_[f.node] = post_counter++;
        NodeId done = f.node;
        stack.pop_back();
        if (!stack.empty()) {
          subtree_size_[stack.back().node] += subtree_size_[done];
        }
      }
    }
  }
}

bool TreeLabels::IsAncestorOrSelf(NodeId anc, NodeId node) const {
  if (collection_.DocOf(anc) != collection_.DocOf(node)) return false;
  return pre_[anc] <= pre_[node] && post_[anc] >= post_[node];
}

}  // namespace hopi::collection
