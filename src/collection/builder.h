// Ingestion: xml::Document trees -> collection::Collection.
//
// Link conventions recognized (matching what the paper's DBLP preparation
// did — per-publication documents with citation XLinks):
//   - id="..."            registers an anchor on the element
//   - idref="..."         intra-document link to the anchor with that id
//   - xlink:href="#id"            intra-document link
//   - xlink:href="doc.xml#id"     inter-document link to an anchor
//   - xlink:href="doc.xml"        inter-document link to the target's root
// Unresolvable references are kept pending, not fatal: web-scale
// collections always contain dangling links, and a later ingest may
// resolve them (the paper's insertion scenario).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "collection/collection.h"
#include "util/result.h"
#include "xml/node.h"

namespace hopi::collection {

/// Running ingestion statistics.
struct IngestReport {
  size_t documents = 0;
  size_t elements = 0;
  size_t intra_links = 0;
  size_t inter_links = 0;
  size_t dangling = 0;  // still-unresolved references
};

/// Stateful ingestor: feeds XML documents into a Collection, resolving
/// id/idref/xlink references across ingests. Keep one Ingestor alive for
/// the lifetime of a growing collection.
class Ingestor {
 public:
  explicit Ingestor(Collection* collection) : collection_(collection) {}

  /// Ingests one document. Its outgoing references are resolved against
  /// everything ingested so far; unresolved ones stay pending and are
  /// retried whenever a later ingest provides the target.
  Result<DocId> Ingest(const xml::Document& document);

  const IngestReport& report() const { return report_; }

 private:
  struct PendingRef {
    NodeId source;
    std::string target_doc;   // empty = same document as source
    std::string target_anchor;  // empty = document root
  };

  void ResolveOrDefer(PendingRef ref);
  void RetryPendingFor(const std::string& doc_name);

  Collection* collection_;
  IngestReport report_;
  // (doc name, anchor id) -> element
  std::map<std::pair<std::string, std::string>, NodeId> anchors_;
  // target doc name -> references waiting for it
  std::map<std::string, std::vector<PendingRef>> pending_;
};

/// Convenience: builds a collection from a batch of documents.
Result<IngestReport> BuildCollection(
    const std::vector<xml::Document>& documents, Collection* out);

}  // namespace hopi::collection
