#include "collection/collection.h"

#include <algorithm>
#include <cassert>

namespace hopi::collection {

DocId Collection::AddDocument(std::string name) {
  DocId id = static_cast<DocId>(doc_names_.size());
  doc_ids_[name] = id;
  doc_names_.push_back(std::move(name));
  doc_elements_.emplace_back();
  doc_roots_.push_back(kInvalidNode);
  removed_.push_back(false);
  document_graph_.EnsureNodes(doc_names_.size());
  ++live_docs_;
  return id;
}

NodeId Collection::AddElement(DocId doc, const std::string& tag,
                              NodeId parent) {
  assert(doc < doc_names_.size() && !removed_[doc]);
  uint32_t tag_id;
  auto it = tag_ids_.find(tag);
  if (it == tag_ids_.end()) {
    tag_id = static_cast<uint32_t>(tag_names_.size());
    tag_ids_[tag] = tag_id;
    tag_names_.push_back(tag);
  } else {
    tag_id = it->second;
  }

  NodeId id = element_graph_.AddNode();
  elements_.push_back({doc, tag_id, parent});
  doc_elements_[doc].push_back(id);
  if (parent == kInvalidNode) {
    assert(doc_roots_[doc] == kInvalidNode && "document already has a root");
    doc_roots_[doc] = id;
  } else {
    assert(elements_[parent].doc == doc && "tree edge crosses documents");
    element_graph_.AddEdge(parent, id);
  }
  InvalidateCaches();
  return id;
}

bool Collection::AddLink(NodeId source, NodeId target) {
  assert(source < elements_.size() && target < elements_.size());
  if (!element_graph_.AddEdge(source, target)) return false;
  links_.push_back({source, target});
  DocId ds = elements_[source].doc;
  DocId dt = elements_[target].doc;
  if (ds != dt) {
    ++num_inter_links_;
    document_graph_.AddEdge(ds, dt);
    ++doc_edge_links_[{ds, dt}];
  }
  return true;
}

hopi::Status Collection::RemoveDocument(DocId doc) {
  if (doc >= doc_names_.size()) {
    return hopi::Status::NotFound("no such document id " +
                                  std::to_string(doc));
  }
  if (removed_[doc]) {
    return hopi::Status::InvalidArgument("document already removed: " +
                                         doc_names_[doc]);
  }
  // Drop links touching the document (element graph edges go via
  // IsolateNode below; here we fix the bookkeeping).
  auto touches_doc = [this, doc](const Link& l) {
    return elements_[l.source].doc == doc || elements_[l.target].doc == doc;
  };
  for (const Link& l : links_) {
    if (!touches_doc(l)) continue;
    DocId ds = elements_[l.source].doc;
    DocId dt = elements_[l.target].doc;
    if (ds != dt) {
      --num_inter_links_;
      auto it = doc_edge_links_.find({ds, dt});
      assert(it != doc_edge_links_.end());
      if (--it->second == 0) {
        doc_edge_links_.erase(it);
        document_graph_.RemoveEdge(ds, dt);
      }
    }
  }
  links_.erase(std::remove_if(links_.begin(), links_.end(), touches_doc),
               links_.end());

  for (NodeId e : doc_elements_[doc]) {
    element_graph_.IsolateNode(e);
    elements_[e].parent = kInvalidNode;
  }
  removed_[doc] = true;
  --live_docs_;
  InvalidateCaches();
  return hopi::Status::OK();
}

hopi::Status Collection::RemoveLink(NodeId source, NodeId target) {
  auto it = std::find(links_.begin(), links_.end(), Link{source, target});
  if (it == links_.end()) {
    return hopi::Status::NotFound("link not present");
  }
  links_.erase(it);
  element_graph_.RemoveEdge(source, target);
  DocId ds = elements_[source].doc;
  DocId dt = elements_[target].doc;
  if (ds != dt) {
    --num_inter_links_;
    auto de = doc_edge_links_.find({ds, dt});
    assert(de != doc_edge_links_.end());
    if (--de->second == 0) {
      doc_edge_links_.erase(de);
      document_graph_.RemoveEdge(ds, dt);
    }
  }
  return hopi::Status::OK();
}

uint32_t Collection::FindTagId(const std::string& tag) const {
  auto it = tag_ids_.find(tag);
  return it == tag_ids_.end() ? kInvalidTag : it->second;
}

Result<DocId> Collection::FindDocument(const std::string& name) const {
  auto it = doc_ids_.find(name);
  if (it == doc_ids_.end()) {
    return hopi::Status::NotFound("no document named " + name);
  }
  return it->second;
}

uint32_t Collection::DocEdgeLinkCount(DocId di, DocId dj) const {
  auto it = doc_edge_links_.find({di, dj});
  return it == doc_edge_links_.end() ? 0 : it->second;
}

uint32_t Collection::TreeAncestorCount(NodeId element) const {
  uint32_t count = 1;  // including the element itself, as in Fig. 5
  for (NodeId p = elements_[element].parent; p != kInvalidNode;
       p = elements_[p].parent) {
    ++count;
  }
  return count;
}

void Collection::EnsureSubtreeCache() const {
  if (subtree_cache_valid_) return;
  subtree_size_cache_.assign(elements_.size(), 1);
  // Accumulate bottom-up: process children before parents. Element ids are
  // assigned in creation order and AddElement requires the parent to exist
  // first, so iterating ids descending visits children before parents.
  for (size_t i = elements_.size(); i-- > 0;) {
    NodeId p = elements_[i].parent;
    if (p != kInvalidNode) {
      subtree_size_cache_[p] += subtree_size_cache_[i];
    }
  }
  subtree_cache_valid_ = true;
}

uint32_t Collection::TreeDescendantCount(NodeId element) const {
  EnsureSubtreeCache();
  return subtree_size_cache_[element];
}

uint64_t Collection::ApproximateSizeBytes() const {
  // <tag></tag> overhead per element plus attribute bytes per link
  // (xlink:href="docname#eNNN") — a deliberately simple but stable model.
  uint64_t bytes = 0;
  for (const ElementInfo& e : elements_) {
    if (e.doc != kInvalidDoc && !removed_[e.doc]) {
      bytes += 2 * tag_names_[e.tag].size() + 5 /* <>,</>,\n */ + 8;
    }
  }
  for (const Link& l : links_) {
    bytes += 13 /* xlink:href="" */ + doc_names_[elements_[l.target].doc].size() + 6;
  }
  return bytes;
}

}  // namespace hopi::collection
