// Pre/postorder interval labels over the element-level trees.
//
// The paper (Sec 4.3) keeps pre- and postorder values per element "until
// we have built the HOPI index": with them, tree ancestorship is a pair
// of integer comparisons (u is an ancestor-or-self of v iff
// pre(u) <= pre(v) and post(u) >= post(v)), and the anc/desc counts of
// Fig. 5 fall out directly. The skeleton-graph construction and the
// Fig. 5 annotations consume this structure.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "collection/collection.h"
#include "graph/digraph.h"

namespace hopi::collection {

/// Interval labels for every element of a collection, computed per
/// document tree. Elements of removed documents keep zeroed labels.
class TreeLabels {
 public:
  /// O(elements) construction via one DFS per live document.
  explicit TreeLabels(const Collection& collection);

  /// Preorder rank of the element within its document tree (0-based).
  uint32_t Pre(NodeId element) const { return pre_[element]; }
  /// Postorder rank within its document tree.
  uint32_t Post(NodeId element) const { return post_[element]; }

  /// True iff `anc` is an ancestor of `node` or the same element, within
  /// one document tree. O(1). False across documents.
  bool IsAncestorOrSelf(NodeId anc, NodeId node) const;

  /// Number of tree ancestors including the element itself (Fig. 5).
  uint32_t AncestorCount(NodeId element) const { return depth_[element] + 1; }

  /// Number of tree descendants including the element itself (Fig. 5).
  uint32_t DescendantCount(NodeId element) const {
    return subtree_size_[element];
  }

 private:
  const Collection& collection_;
  std::vector<uint32_t> pre_;
  std::vector<uint32_t> post_;
  std::vector<uint32_t> depth_;
  std::vector<uint32_t> subtree_size_;
};

}  // namespace hopi::collection
