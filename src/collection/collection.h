// The XML collection model of the paper's Section 2.
//
// A collection X = (D, L) holds documents d1..dn and inter-document links
// L. Per document we keep the element-level tree T_E(d) (parent-child
// edges) and intra-document links L_I(d). Derived structures:
//   - the element-level graph G_E(X): all elements, tree edges + intra
//     links + inter links,
//   - the document-level graph G_D(X): documents, one edge (di, dj) per
//     linked document pair, weighted by element count (nodes) and link
//     count (edges).
//
// Element ids are dense uint32_t across the whole collection and remain
// stable under document removal (removed elements become isolated ids).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "graph/digraph.h"
#include "util/result.h"

namespace hopi::collection {

using DocId = uint32_t;
inline constexpr DocId kInvalidDoc = UINT32_MAX;

/// Per-element metadata.
struct ElementInfo {
  DocId doc = kInvalidDoc;
  uint32_t tag = 0;        // interned tag id, see Collection::TagName
  NodeId parent = kInvalidNode;  // tree parent, kInvalidNode for roots
};

/// An element-level link (source element -> target element). Intra-document
/// when both endpoints share a document, inter-document otherwise.
struct Link {
  NodeId source;
  NodeId target;

  friend bool operator==(const Link& a, const Link& b) {
    return a.source == b.source && a.target == b.target;
  }
};

/// Mutable collection. Built programmatically (by the data generators or
/// the XML ingestion layer in builder.h) and mutated by the maintenance
/// paths (document insertion / removal).
class Collection {
 public:
  Collection() = default;

  // ---- construction ----

  /// Registers a new (empty) document and returns its id.
  DocId AddDocument(std::string name);

  /// Adds an element with tag `tag` to `doc`. `parent` is either an element
  /// of the same document or kInvalidNode for the document root.
  /// Adds the tree edge parent -> element to the element-level graph.
  NodeId AddElement(DocId doc, const std::string& tag,
                    NodeId parent = kInvalidNode);

  /// Adds a link between two existing elements (intra- or inter-document,
  /// decided by their documents). Idempotent per (source,target) pair.
  /// Returns false if the link already existed.
  bool AddLink(NodeId source, NodeId target);

  /// Removes a document: isolates all its elements in the element-level
  /// graph, drops its links (both directions) and its document-graph edges.
  /// The DocId and element NodeIds remain allocated but dead.
  hopi::Status RemoveDocument(DocId doc);

  /// Removes a single element-level link. Returns NotFound if absent.
  hopi::Status RemoveLink(NodeId source, NodeId target);

  // ---- element-level accessors ----

  const Digraph& ElementGraph() const { return element_graph_; }
  size_t NumElements() const { return elements_.size(); }

  DocId DocOf(NodeId element) const { return elements_[element].doc; }
  NodeId ParentOf(NodeId element) const { return elements_[element].parent; }
  uint32_t TagIdOf(NodeId element) const { return elements_[element].tag; }
  const std::string& TagName(uint32_t tag_id) const {
    return tag_names_[tag_id];
  }
  const std::string& TagOf(NodeId element) const {
    return tag_names_[elements_[element].tag];
  }
  /// Interned id for a tag name; kInvalidTag when never seen.
  static constexpr uint32_t kInvalidTag = UINT32_MAX;
  uint32_t FindTagId(const std::string& tag) const;

  // ---- document-level accessors ----

  size_t NumDocuments() const { return doc_names_.size(); }
  /// Number of live (non-removed) documents.
  size_t NumLiveDocuments() const { return live_docs_; }
  bool IsLive(DocId doc) const { return !removed_[doc]; }
  const std::string& DocName(DocId doc) const { return doc_names_[doc]; }
  Result<DocId> FindDocument(const std::string& name) const;

  const std::vector<NodeId>& ElementsOf(DocId doc) const {
    return doc_elements_[doc];
  }
  NodeId RootOf(DocId doc) const { return doc_roots_[doc]; }

  /// The document-level graph G_D(X). Node ids coincide with DocIds.
  const Digraph& DocumentGraph() const { return document_graph_; }

  /// Number of element-level links behind document edge (di, dj).
  uint32_t DocEdgeLinkCount(DocId di, DocId dj) const;

  // ---- links ----

  /// All links (intra + inter), unordered.
  const std::vector<Link>& Links() const { return links_; }
  /// Number of inter-document links (|L|).
  size_t NumInterLinks() const { return num_inter_links_; }
  /// Number of intra-document links (sum of |L_I(d)|).
  size_t NumIntraLinks() const { return links_.size() - num_inter_links_; }

  bool IsInterLink(const Link& l) const {
    return DocOf(l.source) != DocOf(l.target);
  }

  // ---- tree-derived statistics (paper Sec 4.3) ----

  /// Number of proper ancestors of `element` within its document tree
  /// (anc(x) in Fig. 5 — paper annotates 1-based counts including self;
  /// we return the count *including* the element itself to match Fig. 5).
  uint32_t TreeAncestorCount(NodeId element) const;

  /// Number of descendants of `element` within its document tree,
  /// including the element itself (matching Fig. 5's annotations).
  uint32_t TreeDescendantCount(NodeId element) const;

  /// Approximate serialized size in bytes (sum of tag lengths, markup
  /// overhead and link attributes) — used for Table 1's "size" column.
  uint64_t ApproximateSizeBytes() const;

 private:
  // element storage
  std::vector<ElementInfo> elements_;
  Digraph element_graph_;

  // tag interning
  std::vector<std::string> tag_names_;
  std::map<std::string, uint32_t> tag_ids_;

  // documents
  std::vector<std::string> doc_names_;
  std::map<std::string, DocId> doc_ids_;
  std::vector<std::vector<NodeId>> doc_elements_;
  std::vector<NodeId> doc_roots_;
  std::vector<bool> removed_;
  size_t live_docs_ = 0;

  // links
  std::vector<Link> links_;
  size_t num_inter_links_ = 0;

  // document-level graph; parallel map counts links per doc edge
  Digraph document_graph_;
  std::map<std::pair<DocId, DocId>, uint32_t> doc_edge_links_;

  // lazily computed subtree sizes (invalidated on structural change)
  mutable std::vector<uint32_t> subtree_size_cache_;
  mutable bool subtree_cache_valid_ = false;
  void InvalidateCaches() const { subtree_cache_valid_ = false; }
  void EnsureSubtreeCache() const;
};

}  // namespace hopi::collection
