#include "collection/builder.h"

#include <cassert>

namespace hopi::collection {

namespace {

/// Splits an href "doc.xml#anchor" into (doc, anchor); either may be empty.
std::pair<std::string, std::string> SplitHref(const std::string& href) {
  auto hash = href.find('#');
  if (hash == std::string::npos) return {href, ""};
  return {href.substr(0, hash), href.substr(hash + 1)};
}

}  // namespace

Result<DocId> Ingestor::Ingest(const xml::Document& document) {
  if (document.root == nullptr) {
    return hopi::Status::InvalidArgument("document '" + document.name +
                                         "' has no root element");
  }
  if (collection_->FindDocument(document.name).ok()) {
    return hopi::Status::InvalidArgument("duplicate document name '" +
                                         document.name + "'");
  }
  DocId doc = collection_->AddDocument(document.name);
  ++report_.documents;

  // Pass 1: intern the element tree, register anchors, collect refs.
  std::vector<PendingRef> refs;
  struct Frame {
    const xml::Element* elem;
    NodeId parent;
  };
  std::vector<Frame> stack{{document.root.get(), kInvalidNode}};
  while (!stack.empty()) {
    auto [elem, parent] = stack.back();
    stack.pop_back();
    NodeId node = collection_->AddElement(doc, elem->tag(), parent);
    ++report_.elements;

    if (const std::string* id = elem->FindAttribute("id")) {
      anchors_[{document.name, *id}] = node;
    }
    if (const std::string* idref = elem->FindAttribute("idref")) {
      refs.push_back({node, document.name, *idref});
    }
    if (const std::string* href = elem->FindAttribute("xlink:href")) {
      auto [target_doc, anchor] = SplitHref(*href);
      if (target_doc.empty()) target_doc = document.name;
      refs.push_back({node, std::move(target_doc), std::move(anchor)});
    }
    // Push children in reverse so they are interned in document order
    // (keeps the "children have larger ids than parents" invariant that
    // Collection's subtree-size cache relies on).
    const auto& children = elem->children();
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.push_back({it->get(), node});
    }
  }

  // Pass 2: resolve this document's own references...
  for (PendingRef& ref : refs) ResolveOrDefer(std::move(ref));
  // ...and any earlier references that were waiting for this document.
  RetryPendingFor(document.name);
  return doc;
}

void Ingestor::ResolveOrDefer(PendingRef ref) {
  NodeId target = kInvalidNode;
  if (ref.target_anchor.empty()) {
    // Link to a document root.
    auto doc = collection_->FindDocument(ref.target_doc);
    if (doc.ok()) target = collection_->RootOf(*doc);
  } else {
    auto it = anchors_.find({ref.target_doc, ref.target_anchor});
    if (it != anchors_.end()) target = it->second;
  }
  if (target == kInvalidNode) {
    std::string key = ref.target_doc;
    pending_[key].push_back(std::move(ref));
    ++report_.dangling;
    return;
  }
  if (collection_->AddLink(ref.source, target)) {
    if (collection_->DocOf(ref.source) == collection_->DocOf(target)) {
      ++report_.intra_links;
    } else {
      ++report_.inter_links;
    }
  }
}

void Ingestor::RetryPendingFor(const std::string& doc_name) {
  auto it = pending_.find(doc_name);
  if (it == pending_.end()) return;
  std::vector<PendingRef> refs = std::move(it->second);
  pending_.erase(it);
  report_.dangling -= refs.size();
  for (PendingRef& ref : refs) ResolveOrDefer(std::move(ref));
}

Result<IngestReport> BuildCollection(
    const std::vector<xml::Document>& documents, Collection* out) {
  Ingestor ingestor(out);
  for (const xml::Document& d : documents) {
    auto doc = ingestor.Ingest(d);
    if (!doc.ok()) return doc.status();
  }
  return ingestor.report();
}

}  // namespace hopi::collection
