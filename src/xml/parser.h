// Non-validating XML parser.
//
// Handles the subset needed for document collections: elements, attributes,
// character data, comments, CDATA, processing instructions, DOCTYPE (all
// skipped where irrelevant) and the five predefined entities plus numeric
// character references. No namespaces resolution (prefixes are kept as part
// of the tag/attribute name, which is all the XLink handling needs).
#pragma once

#include <string_view>

#include "util/result.h"
#include "xml/node.h"

namespace hopi::xml {

/// Parses a full XML document from `input`. `name` becomes Document::name.
/// Errors are reported as Status::Corruption with a byte offset.
Result<Document> ParseDocument(std::string_view input, std::string name);

/// Serializes an element subtree back to XML text (pretty-printed with
/// two-space indentation). Round-trips with ParseDocument modulo
/// insignificant whitespace.
std::string Serialize(const Element& root);

/// Escapes &, <, >, ", ' for use in text or attribute values.
std::string EscapeText(std::string_view text);

}  // namespace hopi::xml
