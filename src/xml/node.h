// DOM-lite XML element tree.
//
// HOPI only needs element structure, attributes (for IDs and XLink hrefs)
// and — for the search-engine layer — element text. The model deliberately
// ignores sibling order beyond document order of storage: the paper's
// formal model (Sec 2) disregards child ordering for schema-less
// collections.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace hopi::xml {

/// One attribute name/value pair, e.g. ("xlink:href", "doc42.xml#e7").
struct Attribute {
  std::string name;
  std::string value;
};

/// An XML element. Owns its children.
class Element {
 public:
  explicit Element(std::string tag) : tag_(std::move(tag)) {}

  const std::string& tag() const { return tag_; }

  const std::vector<Attribute>& attributes() const { return attributes_; }
  void AddAttribute(std::string name, std::string value) {
    attributes_.push_back({std::move(name), std::move(value)});
  }
  /// Value of the named attribute, or nullptr when absent.
  const std::string* FindAttribute(std::string_view name) const;

  /// Concatenated character data directly inside this element.
  const std::string& text() const { return text_; }
  void AppendText(std::string_view t) { text_.append(t); }

  const std::vector<std::unique_ptr<Element>>& children() const {
    return children_;
  }
  /// Appends a child and returns a borrowed pointer to it.
  Element* AddChild(std::unique_ptr<Element> child);

  /// Number of elements in this subtree including this element.
  size_t SubtreeSize() const;

  /// Depth-first (pre-order) visit of the subtree.
  template <typename Fn>
  void Visit(Fn&& fn) const {
    fn(*this);
    for (const auto& c : children_) c->Visit(fn);
  }

 private:
  std::string tag_;
  std::vector<Attribute> attributes_;
  std::string text_;
  std::vector<std::unique_ptr<Element>> children_;
};

/// A parsed XML document: a name (acts as its URI for link resolution)
/// plus the root element.
struct Document {
  std::string name;
  std::unique_ptr<Element> root;
};

}  // namespace hopi::xml
