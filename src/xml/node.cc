#include "xml/node.h"

namespace hopi::xml {

const std::string* Element::FindAttribute(std::string_view name) const {
  for (const Attribute& a : attributes_) {
    if (a.name == name) return &a.value;
  }
  return nullptr;
}

Element* Element::AddChild(std::unique_ptr<Element> child) {
  children_.push_back(std::move(child));
  return children_.back().get();
}

size_t Element::SubtreeSize() const {
  size_t n = 1;
  for (const auto& c : children_) n += c->SubtreeSize();
  return n;
}

}  // namespace hopi::xml
