#include "xml/parser.h"

#include <cassert>
#include <cctype>
#include <cstdlib>
#include <optional>
#include <sstream>

namespace hopi::xml {

namespace {

/// Cursor over the input with error context.
class Cursor {
 public:
  explicit Cursor(std::string_view input) : input_(input) {}

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char Get() { return input_[pos_++]; }
  size_t pos() const { return pos_; }

  bool StartsWith(std::string_view s) const {
    return input_.substr(pos_, s.size()) == s;
  }
  void Skip(size_t n) { pos_ += n; }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }

  /// Advances past `terminator`, returns false if not found.
  bool SkipPast(std::string_view terminator) {
    size_t found = input_.find(terminator, pos_);
    if (found == std::string_view::npos) return false;
    pos_ = found + terminator.size();
    return true;
  }

  /// Returns the text up to (excluding) `terminator` and advances past it;
  /// nullopt if the terminator is missing.
  std::optional<std::string_view> TakeUntil(std::string_view terminator) {
    size_t found = input_.find(terminator, pos_);
    if (found == std::string_view::npos) return std::nullopt;
    std::string_view content = input_.substr(pos_, found - pos_);
    pos_ = found + terminator.size();
    return content;
  }

  std::string_view Remaining() const { return input_.substr(pos_); }

 private:
  std::string_view input_;
  size_t pos_ = 0;
};

Status ParseError(const Cursor& c, const std::string& what) {
  return Status::Corruption("XML parse error at byte " +
                            std::to_string(c.pos()) + ": " + what);
}

bool IsNameStart(char ch) {
  return std::isalpha(static_cast<unsigned char>(ch)) || ch == '_' ||
         ch == ':';
}
bool IsNameChar(char ch) {
  return IsNameStart(ch) || std::isdigit(static_cast<unsigned char>(ch)) ||
         ch == '-' || ch == '.';
}

std::string ParseName(Cursor* c) {
  std::string name;
  while (!c->AtEnd() && IsNameChar(c->Peek())) name.push_back(c->Get());
  return name;
}

/// Decodes entity and character references in raw text.
Status DecodeText(Cursor* c, std::string_view raw, std::string* out) {
  for (size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] != '&') {
      out->push_back(raw[i]);
      continue;
    }
    size_t semi = raw.find(';', i);
    if (semi == std::string_view::npos) {
      return ParseError(*c, "unterminated entity reference");
    }
    std::string_view ent = raw.substr(i + 1, semi - i - 1);
    if (ent == "amp") {
      out->push_back('&');
    } else if (ent == "lt") {
      out->push_back('<');
    } else if (ent == "gt") {
      out->push_back('>');
    } else if (ent == "quot") {
      out->push_back('"');
    } else if (ent == "apos") {
      out->push_back('\'');
    } else if (!ent.empty() && ent[0] == '#') {
      long code = ent[1] == 'x' || ent[1] == 'X'
                      ? std::strtol(std::string(ent.substr(2)).c_str(),
                                    nullptr, 16)
                      : std::strtol(std::string(ent.substr(1)).c_str(),
                                    nullptr, 10);
      if (code <= 0 || code > 0x10FFFF) {
        return ParseError(*c, "bad character reference");
      }
      // UTF-8 encode.
      unsigned cp = static_cast<unsigned>(code);
      if (cp < 0x80) {
        out->push_back(static_cast<char>(cp));
      } else if (cp < 0x800) {
        out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
        out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
      } else if (cp < 0x10000) {
        out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
        out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
        out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
      } else {
        out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
        out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
        out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
        out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
      }
    } else {
      return ParseError(*c, "unknown entity &" + std::string(ent) + ";");
    }
    i = semi;
  }
  return Status::OK();
}

Status ParseAttributes(Cursor* c, Element* elem) {
  for (;;) {
    c->SkipWhitespace();
    if (c->AtEnd()) return ParseError(*c, "unterminated start tag");
    char ch = c->Peek();
    if (ch == '>' || ch == '/' || ch == '?') return Status::OK();
    if (!IsNameStart(ch)) return ParseError(*c, "expected attribute name");
    std::string name = ParseName(c);
    c->SkipWhitespace();
    if (c->AtEnd() || c->Get() != '=') {
      return ParseError(*c, "expected '=' after attribute name");
    }
    c->SkipWhitespace();
    if (c->AtEnd()) return ParseError(*c, "expected attribute value");
    char quote = c->Get();
    if (quote != '"' && quote != '\'') {
      return ParseError(*c, "attribute value must be quoted");
    }
    std::string raw;
    while (!c->AtEnd() && c->Peek() != quote) raw.push_back(c->Get());
    if (c->AtEnd()) return ParseError(*c, "unterminated attribute value");
    c->Get();  // closing quote
    std::string value;
    HOPI_RETURN_NOT_OK(DecodeText(c, raw, &value));
    elem->AddAttribute(std::move(name), std::move(value));
  }
}

/// Parses one element whose '<' has already been consumed and whose name
/// follows. Returns the element; recurses for children (iteratively via an
/// explicit stack to be robust for deep documents).
Result<std::unique_ptr<Element>> ParseElementTree(Cursor* c) {
  std::vector<Element*> stack;
  std::unique_ptr<Element> root;

  auto open_element = [&](std::unique_ptr<Element> elem,
                          bool self_closing) -> Element* {
    Element* borrowed;
    if (stack.empty()) {
      assert(root == nullptr);
      root = std::move(elem);
      borrowed = root.get();
    } else {
      borrowed = stack.back()->AddChild(std::move(elem));
    }
    if (!self_closing) stack.push_back(borrowed);
    return borrowed;
  };

  for (;;) {
    if (c->AtEnd()) return ParseError(*c, "unexpected end of input");
    if (c->Peek() == '<') {
      c->Get();
      if (c->AtEnd()) return ParseError(*c, "dangling '<'");
      char ch = c->Peek();
      if (ch == '/') {
        // Closing tag.
        c->Get();
        std::string name = ParseName(c);
        c->SkipWhitespace();
        if (c->AtEnd() || c->Get() != '>') {
          return ParseError(*c, "malformed closing tag");
        }
        if (stack.empty()) {
          return ParseError(*c, "closing tag </" + name + "> with no open tag");
        }
        if (stack.back()->tag() != name) {
          return ParseError(*c, "mismatched closing tag </" + name +
                                    ">, expected </" + stack.back()->tag() +
                                    ">");
        }
        stack.pop_back();
        if (stack.empty()) return root;
      } else if (c->StartsWith("!--")) {
        if (!c->SkipPast("-->")) return ParseError(*c, "unterminated comment");
      } else if (c->StartsWith("![CDATA[")) {
        c->Skip(8);
        auto cdata = c->TakeUntil("]]>");
        if (!cdata) return ParseError(*c, "unterminated CDATA");
        if (stack.empty()) {
          return ParseError(*c, "CDATA outside root element");
        }
        stack.back()->AppendText(*cdata);  // CDATA is literal, no decoding
      } else if (ch == '?') {
        if (!c->SkipPast("?>")) return ParseError(*c, "unterminated PI");
      } else if (ch == '!') {
        // DOCTYPE or other declaration; skip to '>' (no internal subset
        // nesting support needed for our collections).
        if (!c->SkipPast(">")) return ParseError(*c, "unterminated declaration");
      } else if (IsNameStart(ch)) {
        std::string name = ParseName(c);
        auto elem = std::make_unique<Element>(name);
        HOPI_RETURN_NOT_OK(ParseAttributes(c, elem.get()));
        c->SkipWhitespace();
        if (c->AtEnd()) return ParseError(*c, "unterminated start tag");
        char end = c->Get();
        if (end == '/') {
          if (c->AtEnd() || c->Get() != '>') {
            return ParseError(*c, "malformed self-closing tag");
          }
          Element* borrowed = open_element(std::move(elem), true);
          (void)borrowed;
          if (stack.empty()) return root;
        } else if (end == '>') {
          open_element(std::move(elem), false);
        } else {
          return ParseError(*c, "malformed start tag");
        }
      } else {
        return ParseError(*c, "unexpected character after '<'");
      }
    } else {
      // Character data up to the next '<'.
      std::string raw;
      while (!c->AtEnd() && c->Peek() != '<') raw.push_back(c->Get());
      if (!stack.empty()) {
        std::string text;
        HOPI_RETURN_NOT_OK(DecodeText(c, raw, &text));
        stack.back()->AppendText(text);
      } else {
        // Whitespace between prolog and root is fine; anything else is not.
        for (char t : raw) {
          if (!std::isspace(static_cast<unsigned char>(t))) {
            return ParseError(*c, "character data outside root element");
          }
        }
      }
    }
  }
}

}  // namespace

Result<Document> ParseDocument(std::string_view input, std::string name) {
  Cursor c(input);
  // Prolog: XML declaration, comments, DOCTYPE, whitespace.
  for (;;) {
    c.SkipWhitespace();
    if (c.AtEnd()) return ParseError(c, "document has no root element");
    if (c.StartsWith("<?")) {
      if (!c.SkipPast("?>")) return ParseError(c, "unterminated declaration");
    } else if (c.StartsWith("<!--")) {
      if (!c.SkipPast("-->")) return ParseError(c, "unterminated comment");
    } else if (c.StartsWith("<!")) {
      if (!c.SkipPast(">")) return ParseError(c, "unterminated DOCTYPE");
    } else {
      break;
    }
  }
  auto root = ParseElementTree(&c);
  if (!root.ok()) return root.status();
  Document doc;
  doc.name = std::move(name);
  doc.root = std::move(root).value();
  return doc;
}

namespace {

void SerializeRec(const Element& e, int depth, std::ostringstream* out) {
  std::string indent(static_cast<size_t>(depth) * 2, ' ');
  *out << indent << '<' << e.tag();
  for (const Attribute& a : e.attributes()) {
    *out << ' ' << a.name << "=\"" << EscapeText(a.value) << '"';
  }
  if (e.children().empty() && e.text().empty()) {
    *out << "/>\n";
    return;
  }
  *out << '>';
  if (!e.text().empty()) *out << EscapeText(e.text());
  if (!e.children().empty()) {
    *out << '\n';
    for (const auto& c : e.children()) SerializeRec(*c, depth + 1, out);
    *out << indent;
  }
  *out << "</" << e.tag() << ">\n";
}

}  // namespace

std::string Serialize(const Element& root) {
  std::ostringstream out;
  SerializeRec(root, 0, &out);
  return out.str();
}

std::string EscapeText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char ch : text) {
    switch (ch) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out.push_back(ch);
    }
  }
  return out;
}

}  // namespace hopi::xml
