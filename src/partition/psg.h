// Partition-level skeleton graph (paper Definition 1, Sec 4.1).
//
// Given a partitioning P, the PSG S(P) has one node per element that is a
// source or target of a cross-partition link. Its edges are the
// cross-partition links themselves (weight 1) plus, inside each partition,
// an edge from every cross-link target t to every cross-link source s that
// t reaches within the partition (weight = within-partition shortest
// distance, for distance-aware builds).
//
// Within-partition reachability/distances are answered by the partition
// covers, which the caller supplies as an already-unified IndexedCover.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "collection/collection.h"
#include "graph/digraph.h"
#include "partition/partitioner.h"
#include "twohop/reverse_index.h"

namespace hopi::partition {

/// One PSG edge with the metadata the joins need: its weight (for
/// distance-aware builds) and whether it is a cross-partition link (as
/// opposed to an internal target->source connection edge). The recursive
/// PSG partitioning keys on the distinction: link edges must stay inside
/// one PSG partition, internal edges may cross.
struct PsgEdge {
  NodeId to;
  uint32_t weight;
  bool is_link;
};

/// The PSG plus the annotations needed by the recursive join.
struct PartitionSkeletonGraph {
  Digraph graph;                         // PSG-local node ids
  std::vector<NodeId> to_element;        // PSG node -> element id
  std::map<NodeId, NodeId> to_psg;       // element id -> PSG node
  std::vector<bool> is_source;           // source of a cross-partition link
  std::vector<bool> is_target;           // target of a cross-partition link
  /// Weighted adjacency parallel to `graph`. Cross links weigh 1;
  /// internal target->source edges weigh the within-partition shortest
  /// distance (0 when distances are not tracked).
  std::vector<std::vector<PsgEdge>> weighted_adj;

  NodeId PsgNodeOf(NodeId element) const {
    auto it = to_psg.find(element);
    return it == to_psg.end() ? kInvalidNode : it->second;
  }
};

/// Builds S(P). `partition_covers` must answer within-partition
/// reachability (the component-wise union of the partition covers). When
/// `with_distance` is false, internal edge weights are set to 0 (unused).
PartitionSkeletonGraph BuildPsg(const collection::Collection& collection,
                                const Partitioning& partitioning,
                                const twohop::IndexedCover& partition_covers,
                                bool with_distance);

}  // namespace hopi::partition
