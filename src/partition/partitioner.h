// Document-level partitioning (paper Sec 3.3 + Sec 4.3).
//
// Three strategies:
//   - kRandomizedNodeLimit: HOPI's original partitioner. Grows partitions
//     greedily from random seeds over the document-level graph, adding the
//     neighbor with the heaviest connecting edge weight, conservatively
//     capping the *node* (element) count so the partition closure is
//     guaranteed to fit in memory. The paper's Px runs: cap = x * 10^4
//     nodes.
//   - kTcSizeAware: the new partitioner. Identical growth, but maintains
//     the partition's transitive closure incrementally and closes the
//     partition when the closure reaches the connection budget — no
//     conservative guess. The paper's Nx runs: cap = x * 10^5 connections.
//   - kDocPerPartition: the "naive"/"single" run — every document is its
//     own partition.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "collection/collection.h"
#include "partition/skeleton.h"
#include "util/result.h"

namespace hopi::partition {

inline constexpr uint32_t kUnassigned = UINT32_MAX;

/// A partitioning P(X) = ({P1..Pm}, LP) per the paper's Section 2.
struct Partitioning {
  /// Documents per partition.
  std::vector<std::vector<collection::DocId>> partitions;
  /// part(d): document -> partition index (kUnassigned for dead docs).
  std::vector<uint32_t> part_of;
  /// LP: element-level links crossing partition boundaries.
  std::vector<collection::Link> cross_links;

  size_t NumPartitions() const { return partitions.size(); }
};

enum class PartitionStrategy {
  kRandomizedNodeLimit,
  kTcSizeAware,
  kDocPerPartition,
};

struct PartitionOptions {
  PartitionStrategy strategy = PartitionStrategy::kTcSizeAware;
  /// Element cap per partition (kRandomizedNodeLimit).
  uint64_t max_nodes = 50000;
  /// Closure connection cap per partition (kTcSizeAware).
  uint64_t max_connections = 1000000;
  /// Edge weights steering greedy growth (Sec 4.3 ablation).
  EdgeWeightPolicy edge_weight = EdgeWeightPolicy::kLinkCount;
  uint32_t skeleton_max_depth = 8;
  uint64_t seed = 42;
};

/// Partitions the live documents of `collection`.
Result<Partitioning> PartitionCollection(
    const collection::Collection& collection, const PartitionOptions& options);

}  // namespace hopi::partition
