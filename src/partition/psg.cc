#include "partition/psg.h"

#include <cassert>

namespace hopi::partition {

PartitionSkeletonGraph BuildPsg(const collection::Collection& collection,
                                const Partitioning& partitioning,
                                const twohop::IndexedCover& partition_covers,
                                bool with_distance) {
  PartitionSkeletonGraph psg;
  auto intern = [&psg](NodeId element) -> NodeId {
    auto it = psg.to_psg.find(element);
    if (it != psg.to_psg.end()) return it->second;
    NodeId id = psg.graph.AddNode();
    psg.to_psg[element] = id;
    psg.to_element.push_back(element);
    psg.is_source.push_back(false);
    psg.is_target.push_back(false);
    psg.weighted_adj.emplace_back();
    return id;
  };

  // Cross-partition link edges (weight 1).
  for (const collection::Link& l : partitioning.cross_links) {
    NodeId s = intern(l.source);
    NodeId t = intern(l.target);
    psg.is_source[s] = true;
    psg.is_target[t] = true;
    if (psg.graph.AddEdge(s, t)) {
      psg.weighted_adj[s].push_back({t, 1, /*is_link=*/true});
    }
  }

  // Internal target -> source edges inside each partition.
  std::map<uint32_t, std::vector<NodeId>> sources_by_part;
  std::map<uint32_t, std::vector<NodeId>> targets_by_part;
  for (NodeId p = 0; p < psg.graph.NumNodes(); ++p) {
    collection::DocId doc = collection.DocOf(psg.to_element[p]);
    uint32_t part = partitioning.part_of[doc];
    if (psg.is_source[p]) sources_by_part[part].push_back(p);
    if (psg.is_target[p]) targets_by_part[part].push_back(p);
  }
  for (const auto& [part, targets] : targets_by_part) {
    auto sit = sources_by_part.find(part);
    if (sit == sources_by_part.end()) continue;
    for (NodeId t : targets) {
      NodeId t_elem = psg.to_element[t];
      for (NodeId s : sit->second) {
        if (s == t) continue;
        NodeId s_elem = psg.to_element[s];
        if (with_distance) {
          auto d = partition_covers.cover().Distance(t_elem, s_elem);
          if (d && psg.graph.AddEdge(t, s)) {
            psg.weighted_adj[t].push_back({s, *d, /*is_link=*/false});
          }
        } else {
          if (partition_covers.cover().IsConnected(t_elem, s_elem) &&
              psg.graph.AddEdge(t, s)) {
            psg.weighted_adj[t].push_back({s, 0, /*is_link=*/false});
          }
        }
      }
    }
  }
  return psg;
}

}  // namespace hopi::partition
