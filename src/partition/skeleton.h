// Skeleton graph S(X) (paper Definition 2) and the ancestor/descendant
// estimation that drives the A*D / A+D edge weights (Sec 4.3).
//
// S(X)'s nodes are the elements that are sources or targets of links; its
// edges are (a) all links and (b) an edge from each link target v to each
// link source x in the same document with v ->* x in the document's
// element-level tree. Each node is annotated with its tree ancestor count
// anc(x) and tree descendant count desc(x) (both including the node, as in
// the paper's Figure 5). A bounded-depth traversal then estimates, per
// node, the total number A(x) of element-level ancestors and D(x) of
// descendants the node gains through links.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "collection/collection.h"
#include "graph/digraph.h"

namespace hopi::partition {

/// The skeleton graph with its annotations.
struct SkeletonGraph {
  Digraph graph;                   // local skeleton node ids
  std::vector<NodeId> to_element;  // skeleton node -> element id
  std::map<NodeId, NodeId> to_skeleton;  // element id -> skeleton node
  std::vector<bool> is_source;     // skeleton node is a link source
  std::vector<bool> is_target;     // skeleton node is a link target
  std::vector<uint32_t> anc;       // tree ancestors incl. self (Fig. 5)
  std::vector<uint32_t> desc;      // tree descendants incl. self (Fig. 5)

  NodeId SkeletonNodeOf(NodeId element) const {
    auto it = to_skeleton.find(element);
    return it == to_skeleton.end() ? kInvalidNode : it->second;
  }
};

/// Builds S(X) for the collection. "Connected within the document" uses
/// the element-level *tree* (ancestor walk), per Definition 2.
SkeletonGraph BuildSkeletonGraph(const collection::Collection& collection);

/// Estimated element-level ancestor/descendant totals per skeleton node.
struct AncDescEstimate {
  std::vector<uint64_t> A;  // estimated total ancestors of each skeleton node
  std::vector<uint64_t> D;  // estimated total descendants
};

/// Bounded-depth traversal estimation (Sec 4.3): starting from each node,
/// a forward walk of at most `max_depth` skeleton hops accumulates desc()
/// of every link target reached into D, and a backward walk accumulates
/// anc() of every link source into A. Longer paths are cut off, so the
/// numbers are approximations — exactly as the paper prescribes.
AncDescEstimate EstimateAncDesc(const SkeletonGraph& skeleton,
                                uint32_t max_depth = 8);

/// Edge-weight policies for document-level partitioning (Sec 4.3).
enum class EdgeWeightPolicy {
  kLinkCount,  // original HOPI: number of links between the documents
  kAtimesD,    // sum over links of A(source) * D(target)
  kAplusD,     // sum over links of A(source) + D(target)
};

const char* EdgeWeightPolicyName(EdgeWeightPolicy policy);

/// Computes the weight of every document-graph edge under `policy`.
/// Returned map is keyed by (from doc, to doc).
std::map<std::pair<collection::DocId, collection::DocId>, uint64_t>
ComputeDocEdgeWeights(const collection::Collection& collection,
                      EdgeWeightPolicy policy, uint32_t max_depth = 8);

}  // namespace hopi::partition
