#include "partition/partitioner.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

#include "graph/closure.h"
#include "util/rng.h"

namespace hopi::partition {

namespace {

using collection::Collection;
using collection::DocId;
using collection::Link;

/// Incrementally maintained partition state for the TC-size-aware
/// strategy: a local element-id space plus an incremental closure.
class PartitionClosure {
 public:
  explicit PartitionClosure(const Collection& c)
      : collection_(c), global_to_local_(c.NumElements(), kInvalidNode) {}

  /// Starts a fresh partition (resets the local id space).
  void Reset() {
    for (NodeId g : touched_) global_to_local_[g] = kInvalidNode;
    touched_.clear();
    closure_ = IncrementalClosure();
    member_docs_.clear();
  }

  /// Adds a document and all its internal edges plus links to documents
  /// already in the partition. Returns the closure connection count after.
  uint64_t AddDocument(DocId d) {
    member_docs_.insert(d);
    for (NodeId g : collection_.ElementsOf(d)) {
      NodeId local = static_cast<NodeId>(closure_.NumNodes());
      closure_.EnsureNodes(closure_.NumNodes() + 1);
      global_to_local_[g] = local;
      touched_.push_back(g);
    }
    // Tree + intra-document edges: element-graph neighbors in the same doc.
    for (NodeId g : collection_.ElementsOf(d)) {
      for (NodeId h : collection_.ElementGraph().OutNeighbors(g)) {
        if (collection_.DocOf(h) == d) {
          closure_.AddEdge(global_to_local_[g], global_to_local_[h]);
        }
      }
    }
    // Inter-document links between d and partition members (both ways).
    for (NodeId g : collection_.ElementsOf(d)) {
      for (NodeId h : collection_.ElementGraph().OutNeighbors(g)) {
        DocId hd = collection_.DocOf(h);
        if (hd != d && member_docs_.count(hd)) {
          closure_.AddEdge(global_to_local_[g], global_to_local_[h]);
        }
      }
      for (NodeId h : collection_.ElementGraph().InNeighbors(g)) {
        DocId hd = collection_.DocOf(h);
        if (hd != d && member_docs_.count(hd)) {
          closure_.AddEdge(global_to_local_[h], global_to_local_[g]);
        }
      }
    }
    return closure_.NumConnections();
  }

 private:
  const Collection& collection_;
  std::vector<NodeId> global_to_local_;
  std::vector<NodeId> touched_;
  IncrementalClosure closure_;
  std::set<DocId> member_docs_;
};

}  // namespace

Result<Partitioning> PartitionCollection(const Collection& collection,
                                         const PartitionOptions& options) {
  Partitioning result;
  result.part_of.assign(collection.NumDocuments(), kUnassigned);

  std::vector<DocId> docs;
  for (DocId d = 0; d < collection.NumDocuments(); ++d) {
    if (collection.IsLive(d)) docs.push_back(d);
  }

  if (options.strategy == PartitionStrategy::kDocPerPartition) {
    for (DocId d : docs) {
      result.part_of[d] = static_cast<uint32_t>(result.partitions.size());
      result.partitions.push_back({d});
    }
  } else {
    auto weights =
        ComputeDocEdgeWeights(collection, options.edge_weight,
                              options.skeleton_max_depth);
    auto edge_weight = [&weights](DocId a, DocId b) -> uint64_t {
      uint64_t w = 0;
      auto it = weights.find({a, b});
      if (it != weights.end()) w += it->second;
      it = weights.find({b, a});
      if (it != weights.end()) w += it->second;
      return w;
    };

    Rng rng(options.seed);
    std::vector<DocId> order = docs;
    rng.Shuffle(&order);

    const Digraph& dg = collection.DocumentGraph();
    const bool tc_aware =
        options.strategy == PartitionStrategy::kTcSizeAware;
    PartitionClosure closure(collection);

    for (DocId seed : order) {
      if (result.part_of[seed] != kUnassigned) continue;
      uint32_t part = static_cast<uint32_t>(result.partitions.size());
      result.partitions.emplace_back();
      closure.Reset();
      uint64_t partition_nodes = 0;

      // Frontier of unassigned neighbor documents with accumulated
      // connecting weight.
      std::map<DocId, uint64_t> frontier;
      auto add_doc = [&](DocId d) {
        result.part_of[d] = part;
        result.partitions[part].push_back(d);
        partition_nodes += collection.ElementsOf(d).size();
        frontier.erase(d);
        for (NodeId nb : dg.OutNeighbors(d)) {
          if (result.part_of[nb] == kUnassigned) {
            frontier[nb] += std::max<uint64_t>(edge_weight(d, nb), 1);
          }
        }
        for (NodeId nb : dg.InNeighbors(d)) {
          if (result.part_of[nb] == kUnassigned) {
            frontier[nb] += std::max<uint64_t>(edge_weight(d, nb), 1);
          }
        }
      };

      uint64_t connections = tc_aware ? closure.AddDocument(seed) : 0;
      add_doc(seed);
      if (tc_aware && connections >= options.max_connections) continue;

      while (!frontier.empty()) {
        // Heaviest-edge neighbor first (ties: smallest id for determinism).
        auto best = frontier.begin();
        for (auto it = std::next(frontier.begin()); it != frontier.end();
             ++it) {
          if (it->second > best->second) best = it;
        }
        DocId cand = best->first;
        if (tc_aware) {
          // New partitioner: add, then close once the closure budget is
          // reached ("continue with the next partition when the transitive
          // closure is as large as the available memory").
          connections = closure.AddDocument(cand);
          add_doc(cand);
          if (connections >= options.max_connections) break;
        } else {
          // Old partitioner: conservative node-count pre-check.
          uint64_t cand_nodes = collection.ElementsOf(cand).size();
          if (partition_nodes + cand_nodes > options.max_nodes) {
            frontier.erase(best);  // try the next-heaviest neighbor
            continue;
          }
          add_doc(cand);
        }
      }
    }
  }

  // LP: element-level links crossing partitions.
  for (const Link& l : collection.Links()) {
    DocId ds = collection.DocOf(l.source);
    DocId dt = collection.DocOf(l.target);
    if (ds == dt) continue;
    if (result.part_of[ds] != result.part_of[dt]) {
      result.cross_links.push_back(l);
    }
  }
  return result;
}

}  // namespace hopi::partition
