#include "partition/skeleton.h"

#include <cassert>

#include "collection/tree_labels.h"
#include "graph/traversal.h"

namespace hopi::partition {

SkeletonGraph BuildSkeletonGraph(const collection::Collection& collection) {
  // Pre/postorder interval labels (Sec 4.3: "this can be easily derived
  // if we maintain pre- and postorder values for each node") give O(1)
  // tree-ancestorship tests and the Fig. 5 anc/desc annotations.
  collection::TreeLabels labels(collection);
  SkeletonGraph s;
  auto intern = [&s](NodeId element) -> NodeId {
    auto it = s.to_skeleton.find(element);
    if (it != s.to_skeleton.end()) return it->second;
    NodeId id = s.graph.AddNode();
    s.to_skeleton[element] = id;
    s.to_element.push_back(element);
    s.is_source.push_back(false);
    s.is_target.push_back(false);
    return id;
  };

  // Nodes + link edges.
  for (const collection::Link& l : collection.Links()) {
    NodeId src = intern(l.source);
    NodeId tgt = intern(l.target);
    s.is_source[src] = true;
    s.is_target[tgt] = true;
    s.graph.AddEdge(src, tgt);
  }

  // Per-document target -> source edges where the target is a tree
  // ancestor-or-self of the source (i.e. the source is reachable from the
  // target within the element-level tree).
  std::map<collection::DocId, std::vector<NodeId>> sources_by_doc;
  std::map<collection::DocId, std::vector<NodeId>> targets_by_doc;
  for (NodeId sk = 0; sk < s.graph.NumNodes(); ++sk) {
    collection::DocId d = collection.DocOf(s.to_element[sk]);
    if (s.is_source[sk]) sources_by_doc[d].push_back(sk);
    if (s.is_target[sk]) targets_by_doc[d].push_back(sk);
  }
  for (const auto& [doc, targets] : targets_by_doc) {
    auto src_it = sources_by_doc.find(doc);
    if (src_it == sources_by_doc.end()) continue;
    for (NodeId t : targets) {
      for (NodeId src : src_it->second) {
        if (t == src) continue;
        if (labels.IsAncestorOrSelf(s.to_element[t], s.to_element[src])) {
          s.graph.AddEdge(t, src);
        }
      }
    }
  }

  // Annotations (Fig. 5): tree ancestor/descendant counts incl. self.
  s.anc.resize(s.graph.NumNodes());
  s.desc.resize(s.graph.NumNodes());
  for (NodeId sk = 0; sk < s.graph.NumNodes(); ++sk) {
    s.anc[sk] = labels.AncestorCount(s.to_element[sk]);
    s.desc[sk] = labels.DescendantCount(s.to_element[sk]);
  }
  return s;
}

AncDescEstimate EstimateAncDesc(const SkeletonGraph& skeleton,
                                uint32_t max_depth) {
  AncDescEstimate est;
  const size_t n = skeleton.graph.NumNodes();
  est.A.assign(n, 0);
  est.D.assign(n, 0);
  Digraph reversed = skeleton.graph.Reversed();
  for (NodeId x = 0; x < n; ++x) {
    // Forward walk: accumulate desc() of every link target reached
    // (a target's tree subtree becomes descendants of x via the links).
    est.D[x] = skeleton.desc[x];
    BoundedBfs(skeleton.graph, x, max_depth, [&](NodeId y, uint32_t depth) {
      if (depth > 0 && skeleton.is_target[y]) est.D[x] += skeleton.desc[y];
    });
    // Backward walk: accumulate anc() of every link source that reaches x.
    est.A[x] = skeleton.anc[x];
    BoundedBfs(reversed, x, max_depth, [&](NodeId y, uint32_t depth) {
      if (depth > 0 && skeleton.is_source[y]) est.A[x] += skeleton.anc[y];
    });
  }
  return est;
}

const char* EdgeWeightPolicyName(EdgeWeightPolicy policy) {
  switch (policy) {
    case EdgeWeightPolicy::kLinkCount:
      return "links";
    case EdgeWeightPolicy::kAtimesD:
      return "A*D";
    case EdgeWeightPolicy::kAplusD:
      return "A+D";
  }
  return "?";
}

std::map<std::pair<collection::DocId, collection::DocId>, uint64_t>
ComputeDocEdgeWeights(const collection::Collection& collection,
                      EdgeWeightPolicy policy, uint32_t max_depth) {
  std::map<std::pair<collection::DocId, collection::DocId>, uint64_t> weights;
  if (policy == EdgeWeightPolicy::kLinkCount) {
    for (const collection::Link& l : collection.Links()) {
      collection::DocId ds = collection.DocOf(l.source);
      collection::DocId dt = collection.DocOf(l.target);
      if (ds != dt) weights[{ds, dt}] += 1;
    }
    return weights;
  }
  SkeletonGraph skeleton = BuildSkeletonGraph(collection);
  AncDescEstimate est = EstimateAncDesc(skeleton, max_depth);
  for (const collection::Link& l : collection.Links()) {
    collection::DocId ds = collection.DocOf(l.source);
    collection::DocId dt = collection.DocOf(l.target);
    if (ds == dt) continue;
    NodeId sk_s = skeleton.SkeletonNodeOf(l.source);
    NodeId sk_t = skeleton.SkeletonNodeOf(l.target);
    assert(sk_s != kInvalidNode && sk_t != kInvalidNode);
    uint64_t a = est.A[sk_s];
    uint64_t d = est.D[sk_t];
    weights[{ds, dt}] +=
        policy == EdgeWeightPolicy::kAtimesD ? a * d : a + d;
  }
  return weights;
}

}  // namespace hopi::partition
