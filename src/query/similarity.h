// Tag similarity for approximate path steps (the XXL scenario the paper's
// Sec 5.1 motivates: "//~book//author", where the ranking considers "the
// ontological similarity of book to monography or publication" combined
// with connection length).
//
// This is a deliberately small stand-in for XXL's ontology service: a
// symmetric registry of (tag, tag) -> similarity in (0, 1], with identity
// = 1. Downstream engines can load domain synonym sets (a DBLP-flavoured
// default is provided).
#pragma once

#include <map>
#include <string>
#include <vector>

namespace hopi::query {

class TagSimilarity {
 public:
  TagSimilarity() = default;

  /// Registers a symmetric similarity. Scores are clamped to (0, 1];
  /// re-registering keeps the larger score.
  void AddSynonym(const std::string& a, const std::string& b, double score);

  /// 1.0 for identical tags, the registered score for synonyms, 0.0
  /// otherwise.
  double Sim(const std::string& a, const std::string& b) const;

  /// All tags related to `tag` with similarity >= threshold, including
  /// `tag` itself (score 1.0 first).
  std::vector<std::pair<std::string, double>> Related(
      const std::string& tag, double threshold) const;

  /// A small publication-domain ontology: book ~ monography ~ proceedings,
  /// author ~ editor, cite ~ ref, etc.
  static TagSimilarity DblpDefaults();

 private:
  std::map<std::pair<std::string, std::string>, double> scores_;
  std::map<std::string, std::vector<std::string>> related_;
};

}  // namespace hopi::query
