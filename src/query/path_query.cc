#include "query/path_query.h"

#include <algorithm>

#include "engine/hopi_backend.h"
#include "twohop/join_kernel.h"

namespace hopi::query {

Result<PathExpression> PathExpression::Parse(const std::string& text) {
  PathExpression expr;
  size_t pos = 0;
  if (text.rfind("//", 0) == 0) pos = 2;
  while (pos < text.size()) {
    size_t next = text.find("//", pos);
    std::string step = next == std::string::npos
                           ? text.substr(pos)
                           : text.substr(pos, next - pos);
    if (step.empty()) {
      return Status::InvalidArgument("empty step in path expression '" +
                                     text + "'");
    }
    if (step.find('/') != std::string::npos) {
      return Status::InvalidArgument(
          "only the // axis is supported (got '" + step + "')");
    }
    bool approximate = step[0] == '~';
    if (approximate) step = step.substr(1);
    if (step.empty() || (approximate && step == "*")) {
      return Status::InvalidArgument("malformed step in '" + text + "'");
    }
    expr.steps.push_back({std::move(step), approximate});
    pos = next == std::string::npos ? text.size() : next + 2;
  }
  if (expr.steps.empty()) {
    return Status::InvalidArgument("empty path expression");
  }
  return expr;
}

std::string PathExpression::ToString() const {
  std::string out;
  for (const PathStep& s : steps) {
    out += "//";
    if (s.approximate) out += "~";
    out += s.tag;
  }
  return out;
}

namespace {

using engine::ReachabilityBackend;

/// One candidate element with its tag-similarity weight (1.0 unless the
/// step is approximate and the element matched through a synonym).
struct Candidate {
  NodeId element;
  double tag_score;
};

/// Candidate elements for one step: tag lookup, synonym expansion for
/// approximate steps, or every live element for the wildcard.
std::vector<Candidate> StepCandidates(const PathStep& step,
                                      const collection::Collection& c,
                                      const TagIndex& tags,
                                      const PathQueryOptions& options) {
  std::vector<Candidate> out;
  if (step.tag == "*") {
    for (NodeId e = 0; e < c.NumElements(); ++e) {
      collection::DocId d = c.DocOf(e);
      if (d != collection::kInvalidDoc && c.IsLive(d)) {
        out.push_back({e, 1.0});
      }
    }
    return out;
  }
  if (step.approximate && options.similarity != nullptr) {
    for (const auto& [tag, score] :
         options.similarity->Related(step.tag, options.min_tag_similarity)) {
      for (NodeId e : tags.Lookup(tag)) out.push_back({e, score});
    }
    std::sort(out.begin(), out.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.element < b.element;
              });
    return out;
  }
  for (NodeId e : tags.Lookup(step.tag)) out.push_back({e, 1.0});
  return out;
}

/// Depth-first enumeration of bindings.
void Enumerate(const std::vector<std::vector<Candidate>>& candidates,
               const ReachabilityBackend& backend,
               const PathQueryOptions& options, size_t step,
               std::vector<NodeId>* bindings, double tag_score,
               std::vector<PathMatch>* out) {
  if (out->size() >= options.max_matches) return;
  if (step == candidates.size()) {
    PathMatch match;
    match.bindings = *bindings;
    match.score = tag_score;
    for (size_t i = 1; i < bindings->size(); ++i) {
      uint32_t d = 0;
      if (backend.with_distance()) {
        auto dist = backend.Distance((*bindings)[i - 1], (*bindings)[i]);
        d = dist ? *dist : 0;
      }
      match.total_distance += d;
      match.score *= 1.0 / (1.0 + d);
    }
    out->push_back(std::move(match));
    return;
  }
  for (const Candidate& cand : candidates[step]) {
    if (step > 0) {
      NodeId prev = bindings->back();
      if (prev == cand.element || !backend.IsReachable(prev, cand.element)) {
        continue;
      }
      if (options.max_step_distance != UINT32_MAX &&
          backend.with_distance()) {
        auto d = backend.Distance(prev, cand.element);
        if (!d || *d > options.max_step_distance) continue;
      }
    }
    bindings->push_back(cand.element);
    Enumerate(candidates, backend, options, step + 1, bindings,
              tag_score * cand.tag_score, out);
    bindings->pop_back();
    if (out->size() >= options.max_matches) return;
  }
}

}  // namespace

Result<std::vector<PathMatch>> EvaluatePath(
    const PathExpression& expr, const engine::ReachabilityBackend& backend,
    const collection::Collection& collection, const TagIndex& tags,
    const PathQueryOptions& options) {
  if (expr.steps.empty()) {
    return Status::InvalidArgument("empty path expression");
  }
  std::vector<std::vector<Candidate>> candidates;
  candidates.reserve(expr.steps.size());
  for (const PathStep& step : expr.steps) {
    candidates.push_back(StepCandidates(step, collection, tags, options));
    if (candidates.back().empty()) return std::vector<PathMatch>{};
  }
  std::vector<PathMatch> matches;
  std::vector<NodeId> bindings;
  Enumerate(candidates, backend, options, 0, &bindings, 1.0, &matches);
  std::stable_sort(matches.begin(), matches.end(),
                   [](const PathMatch& a, const PathMatch& b) {
                     return a.score > b.score;
                   });
  return matches;
}

Result<size_t> CountPathResults(const PathExpression& expr,
                                const engine::ReachabilityBackend& backend,
                                const collection::Collection& collection,
                                const TagIndex& tags) {
  if (expr.steps.empty()) {
    return Status::InvalidArgument("empty path expression");
  }
  PathQueryOptions options;  // exact semantics for counting
  // Forward filtering: keep, per step, the candidates reachable from some
  // survivor of the previous step. Set-based, no enumeration blowup.
  std::vector<Candidate> frontier =
      StepCandidates(expr.steps.front(), collection, tags, options);
  for (size_t s = 1; s < expr.steps.size() && !frontier.empty(); ++s) {
    std::vector<Candidate> next_candidates =
        StepCandidates(expr.steps[s], collection, tags, options);
    // Union of descendants of the frontier (sorted, deduped), then a
    // sorted-set intersection with the candidate ids. The intersection
    // goes through the join-kernel helper, which gallops when one side
    // dwarfs the other — the common shape here (few candidates for a
    // selective tag, a large reachable union).
    std::vector<uint32_t> reachable;
    for (const Candidate& f : frontier) {
      std::vector<NodeId> desc = backend.Descendants(f.element);
      reachable.insert(reachable.end(), desc.begin(), desc.end());
    }
    std::sort(reachable.begin(), reachable.end());
    reachable.erase(std::unique(reachable.begin(), reachable.end()),
                    reachable.end());
    std::vector<uint32_t> ids;
    ids.reserve(next_candidates.size());
    for (const Candidate& c : next_candidates) ids.push_back(c.element);
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    std::vector<uint32_t> common = twohop::IntersectSorted(ids, reachable);
    std::vector<Candidate> survivors;
    for (const Candidate& c : next_candidates) {
      if (std::binary_search(common.begin(), common.end(), c.element)) {
        survivors.push_back(c);
      }
    }
    frontier = std::move(survivors);
  }
  return frontier.size();
}

Result<std::vector<PathMatch>> EvaluatePath(const PathExpression& expr,
                                            const HopiIndex& index,
                                            const TagIndex& tags,
                                            const PathQueryOptions& options) {
  engine::HopiIndexBackend backend(index);
  return EvaluatePath(expr, backend, *index.collection(), tags, options);
}

Result<size_t> CountPathResults(const PathExpression& expr,
                                const HopiIndex& index, const TagIndex& tags) {
  engine::HopiIndexBackend backend(index);
  return CountPathResults(expr, backend, *index.collection(), tags);
}

}  // namespace hopi::query
