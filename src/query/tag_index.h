// Tag -> element inverted index over a collection.
//
// The search-engine layer pairs this with the HOPI connection index: tag
// lookups produce the candidate element sets, HOPI answers the // axes
// between them (paper Sec 1.1: path expressions with wildcards).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "collection/collection.h"
#include "graph/digraph.h"

namespace hopi::query {

class TagIndex {
 public:
  /// Indexes all elements of the collection's live documents.
  explicit TagIndex(const collection::Collection& collection);

  /// Elements with the given tag, sorted ascending. Empty when unknown.
  const std::vector<NodeId>& Lookup(const std::string& tag) const;

  /// All indexed tag names.
  std::vector<std::string> Tags() const;

  size_t NumTags() const { return by_tag_.size(); }

 private:
  const collection::Collection& collection_;
  std::vector<std::vector<NodeId>> by_tag_;  // tag id -> elements
  std::vector<NodeId> empty_;
};

}  // namespace hopi::query
