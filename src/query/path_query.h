// Wildcard path expressions over a pluggable reachability backend.
//
// Supports the paper's motivating query class: XPath-style descendant
// chains with wildcards across documents and links, e.g.
//     //book//author        //inproceedings//cite//title
// Steps are separated by // (the descendant-or-self axis over the
// element-level graph, i.e. tree edges AND links); `*` matches any tag.
// Results can be ranked by connection length, the XXL-style scoring the
// distance-aware index exists for (paper Sec 5.1).
//
// Evaluation runs against the engine::ReachabilityBackend interface, so
// the same query executes over the in-memory HOPI labels, the LIN/LOUT
// tables, or the materialized-closure baseline (engine/backends.h).
// Most callers should go through the engine::QueryEngine facade rather
// than calling these free functions directly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "collection/collection.h"
#include "engine/backend.h"
#include "hopi/index.h"
#include "query/similarity.h"
#include "query/tag_index.h"
#include "util/result.h"

namespace hopi::query {

/// One step of a path expression: a tag test, the `*` wildcard, or an
/// approximate test (`~book`) expanded through a TagSimilarity registry.
struct PathStep {
  std::string tag;            // "*" = wildcard
  bool approximate = false;   // written as ~tag

  friend bool operator==(const PathStep& a, const PathStep& b) {
    return a.tag == b.tag && a.approximate == b.approximate;
  }
};

/// A parsed path expression: a chain of tag tests.
struct PathExpression {
  std::vector<PathStep> steps;

  /// Parses "//a//~b//c" (a leading // is optional; "a//b" is accepted).
  static Result<PathExpression> Parse(const std::string& text);

  std::string ToString() const;
};

/// One query match: the elements bound to each step.
struct PathMatch {
  std::vector<NodeId> bindings;  // one element per step
  /// Sum of connection lengths between consecutive bindings (only
  /// meaningful with a distance-aware backend; 0 otherwise).
  uint32_t total_distance = 0;
  /// XXL-style score: product over consecutive pairs of 1/(1+dist),
  /// additionally multiplied by the tag similarity of every approximate
  /// binding.
  double score = 1.0;
};

struct PathQueryOptions {
  /// Maximum matches to produce (the evaluator short-circuits).
  size_t max_matches = 1000;
  /// Drop matches whose hop distance between any two consecutive
  /// bindings exceeds this (paper Sec 5.1: limited-length path queries).
  uint32_t max_step_distance = UINT32_MAX;
  /// Ontology for ~tag steps; nullptr makes approximate steps behave like
  /// exact ones.
  const TagSimilarity* similarity = nullptr;
  /// Synonyms below this similarity are not expanded.
  double min_tag_similarity = 0.3;
};

/// Evaluates `expr` against a reachability backend and returns matches
/// sorted by descending score (insertion order for plain backends).
/// `collection` supplies the live-element universe for wildcard steps.
Result<std::vector<PathMatch>> EvaluatePath(
    const PathExpression& expr, const engine::ReachabilityBackend& backend,
    const collection::Collection& collection, const TagIndex& tags,
    const PathQueryOptions& options = {});

/// Counts distinct elements matching the final step (cheaper than
/// materializing matches; the typical "find all results" engine call).
Result<size_t> CountPathResults(const PathExpression& expr,
                                const engine::ReachabilityBackend& backend,
                                const collection::Collection& collection,
                                const TagIndex& tags);

// ---- deprecated shims ----
//
// Pre-facade overloads hard-wired to HopiIndex. They wrap the index in a
// HopiIndexBackend and forward; prefer the backend overloads (or the
// QueryEngine facade) in new code.

Result<std::vector<PathMatch>> EvaluatePath(
    const PathExpression& expr, const HopiIndex& index, const TagIndex& tags,
    const PathQueryOptions& options = {});

Result<size_t> CountPathResults(const PathExpression& expr,
                                const HopiIndex& index, const TagIndex& tags);

}  // namespace hopi::query
