#include "query/dataguide.h"

#include <algorithm>
#include <deque>

namespace hopi::query {

using collection::Collection;
using collection::DocId;

uint32_t DataGuide::ChildGuide(uint32_t parent_guide, uint32_t tag) {
  auto& children = nodes_[parent_guide].children;
  auto it = children.find(tag);
  if (it != children.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(nodes_.size());
  children[tag] = id;
  nodes_.push_back({tag, {}, {}});
  return id;
}

DataGuide::DataGuide(const Collection& collection)
    : collection_(collection) {
  nodes_.push_back({UINT32_MAX, {}, {}});  // virtual root above all docs

  // One pass per document: walk the tree, mapping each element to its
  // guide node (parent's guide node -> child by tag).
  std::vector<uint32_t> guide_of(collection.NumElements(), 0);
  for (DocId d = 0; d < collection.NumDocuments(); ++d) {
    if (!collection.IsLive(d)) continue;
    NodeId root = collection.RootOf(d);
    if (root == kInvalidNode) continue;
    std::deque<NodeId> queue{root};
    guide_of[root] = ChildGuide(0, collection.TagIdOf(root));
    nodes_[guide_of[root]].extent.push_back(root);
    ++extent_entries_;
    while (!queue.empty()) {
      NodeId e = queue.front();
      queue.pop_front();
      // Tree children = same-document graph successors whose parent is e.
      for (NodeId child : collection.ElementGraph().OutNeighbors(e)) {
        if (collection.ParentOf(child) != e) continue;  // link, not tree
        uint32_t g = ChildGuide(guide_of[e], collection.TagIdOf(child));
        guide_of[child] = g;
        nodes_[g].extent.push_back(child);
        ++extent_entries_;
        queue.push_back(child);
      }
    }
  }
  for (GuideNode& node : nodes_) {
    std::sort(node.extent.begin(), node.extent.end());
  }
}

const std::vector<NodeId>& DataGuide::LookupPath(
    const std::vector<std::string>& path) const {
  uint32_t guide = 0;
  for (const std::string& tag : path) {
    uint32_t tag_id = collection_.FindTagId(tag);
    if (tag_id == Collection::kInvalidTag) return empty_;
    auto it = nodes_[guide].children.find(tag_id);
    if (it == nodes_[guide].children.end()) return empty_;
    guide = it->second;
  }
  return guide == 0 ? empty_ : nodes_[guide].extent;
}

std::vector<NodeId> DataGuide::WildcardDescendants(
    const std::string& first, const std::string& second) const {
  std::vector<NodeId> result;
  uint32_t first_id = collection_.FindTagId(first);
  uint32_t second_id = collection_.FindTagId(second);
  if (first_id == Collection::kInvalidTag ||
      second_id == Collection::kInvalidTag) {
    return result;
  }
  // Full guide scan for `first`, then a guide-subtree walk per hit: the
  // whole point of the comparison — no index structure narrows this down.
  for (uint32_t g = 1; g < nodes_.size(); ++g) {
    if (nodes_[g].tag != first_id) continue;
    std::deque<uint32_t> queue;
    for (const auto& [tag, child] : nodes_[g].children) queue.push_back(child);
    while (!queue.empty()) {
      uint32_t x = queue.front();
      queue.pop_front();
      if (nodes_[x].tag == second_id) {
        result.insert(result.end(), nodes_[x].extent.begin(),
                      nodes_[x].extent.end());
      }
      for (const auto& [tag, child] : nodes_[x].children) {
        queue.push_back(child);
      }
    }
  }
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

}  // namespace hopi::query
