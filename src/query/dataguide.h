// Strong DataGuide (Goldman & Widom, VLDB 1997 — the paper's reference
// [13] and the index family its introduction argues against).
//
// A DataGuide is a structural summary: every distinct root-to-element
// *label path* of a document tree appears exactly once. Queries that are
// full label paths ("/book/chapter/author") resolve in O(path length)
// to the extent of matching elements. The paper's critique (Sec 1.1):
// such indexes handle path queries *without* wildcards well, but
//   (a) a descendant query //a//b must enumerate every label path that
//       embeds (a, b) — potentially the whole guide — and
//   (b) they are defined over trees, so inter-document links fall
//       outside the summary entirely.
// This implementation exists to make that comparison concrete (see
// bench_dataguide): it is built over the element-level *trees* only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "collection/collection.h"
#include "graph/digraph.h"

namespace hopi::query {

class DataGuide {
 public:
  /// Builds the strong DataGuide over all live documents' trees.
  /// Since document trees share tag vocabulary, guide nodes are keyed by
  /// the full label path from the (virtual) collection root.
  explicit DataGuide(const collection::Collection& collection);

  /// Elements whose root-to-self label path equals `path` (e.g.
  /// {"book", "chapter", "author"}). O(|path|) lookup + extent size.
  const std::vector<NodeId>& LookupPath(
      const std::vector<std::string>& path) const;

  /// Wildcard descendant query //first//second evaluated the only way a
  /// DataGuide can: scan all guide nodes with tag `first`, walk their
  /// guide subtrees for `second`, union the extents. The cost scales
  /// with the guide size — the inefficiency the paper's Sec 1.1 calls
  /// out ("poor performance for wildcard queries").
  std::vector<NodeId> WildcardDescendants(const std::string& first,
                                          const std::string& second) const;

  /// Number of guide nodes (distinct label paths).
  size_t NumGuideNodes() const { return nodes_.size(); }
  /// Total extent entries (elements referenced by guide nodes).
  uint64_t ExtentEntries() const { return extent_entries_; }

 private:
  struct GuideNode {
    uint32_t tag;
    std::vector<NodeId> extent;              // elements with this path
    std::map<uint32_t, uint32_t> children;   // tag -> guide node index
  };

  uint32_t ChildGuide(uint32_t parent_guide, uint32_t tag);

  const collection::Collection& collection_;
  std::vector<GuideNode> nodes_;           // node 0 = virtual root
  std::vector<NodeId> empty_;
  uint64_t extent_entries_ = 0;
};

}  // namespace hopi::query
