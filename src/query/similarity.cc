#include "query/similarity.h"

#include <algorithm>

namespace hopi::query {

void TagSimilarity::AddSynonym(const std::string& a, const std::string& b,
                               double score) {
  if (a == b) return;
  score = std::clamp(score, 1e-9, 1.0);
  auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  auto it = scores_.find(key);
  if (it == scores_.end()) {
    scores_[key] = score;
    related_[a].push_back(b);
    related_[b].push_back(a);
  } else {
    it->second = std::max(it->second, score);
  }
}

double TagSimilarity::Sim(const std::string& a, const std::string& b) const {
  if (a == b) return 1.0;
  auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  auto it = scores_.find(key);
  return it == scores_.end() ? 0.0 : it->second;
}

std::vector<std::pair<std::string, double>> TagSimilarity::Related(
    const std::string& tag, double threshold) const {
  std::vector<std::pair<std::string, double>> out{{tag, 1.0}};
  auto it = related_.find(tag);
  if (it != related_.end()) {
    for (const std::string& other : it->second) {
      double s = Sim(tag, other);
      if (s >= threshold) out.push_back({other, s});
    }
  }
  return out;
}

TagSimilarity TagSimilarity::DblpDefaults() {
  TagSimilarity sim;
  sim.AddSynonym("book", "monography", 0.9);
  sim.AddSynonym("book", "proceedings", 0.7);
  sim.AddSynonym("book", "inproceedings", 0.6);
  sim.AddSynonym("book", "publication", 0.8);
  sim.AddSynonym("inproceedings", "article", 0.8);
  sim.AddSynonym("inproceedings", "publication", 0.8);
  sim.AddSynonym("author", "editor", 0.7);
  sim.AddSynonym("cite", "ref", 0.9);
  sim.AddSynonym("cite", "crossref", 0.8);
  sim.AddSynonym("title", "booktitle", 0.6);
  return sim;
}

}  // namespace hopi::query
