#include "query/tag_index.h"

namespace hopi::query {

TagIndex::TagIndex(const collection::Collection& collection)
    : collection_(collection) {
  for (NodeId e = 0; e < collection.NumElements(); ++e) {
    collection::DocId d = collection.DocOf(e);
    if (d == collection::kInvalidDoc || !collection.IsLive(d)) continue;
    uint32_t tag = collection.TagIdOf(e);
    if (by_tag_.size() <= tag) by_tag_.resize(tag + 1);
    by_tag_[tag].push_back(e);
  }
}

const std::vector<NodeId>& TagIndex::Lookup(const std::string& tag) const {
  uint32_t id = collection_.FindTagId(tag);
  if (id == collection::Collection::kInvalidTag || id >= by_tag_.size()) {
    return empty_;
  }
  return by_tag_[id];
}

std::vector<std::string> TagIndex::Tags() const {
  std::vector<std::string> tags;
  for (uint32_t t = 0; t < by_tag_.size(); ++t) {
    if (!by_tag_[t].empty()) tags.push_back(collection_.TagName(t));
  }
  return tags;
}

}  // namespace hopi::query
