// Tiny deterministic vocabulary for generated text content.
#pragma once

#include <string>

#include "util/rng.h"

namespace hopi::datagen {

/// A pseudo-English word drawn from a fixed vocabulary.
std::string RandomWord(Rng* rng);

/// `n` words joined by spaces.
std::string RandomWords(Rng* rng, size_t n);

/// A plausible author name ("K. Svensson").
std::string RandomAuthorName(Rng* rng);

}  // namespace hopi::datagen
