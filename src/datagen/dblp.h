// DBLP-like synthetic collection.
//
// Mirrors the paper's evaluation dataset (Sec 7.1): one XML document per
// publication, citation XLinks between documents. The paper's subset had
// 6,210 docs / 168,991 elements / 25,368 links (~27 elements and ~4 links
// per doc); the generator reproduces those per-document ratios and a
// power-law citation target distribution (classic papers attract most
// citations), which is the property the partitioning and maintenance
// experiments actually depend on.
#pragma once

#include <cstdint>

#include "collection/builder.h"
#include "collection/collection.h"
#include "util/rng.h"
#include "util/result.h"
#include "xml/node.h"

namespace hopi::datagen {

struct DblpConfig {
  size_t num_docs = 1000;
  /// Mean citations per publication (matches paper's 25,368/6,210 ≈ 4.1).
  double mean_citations = 4.1;
  /// Zipf exponent for citation targets (power-law in-degree).
  double zipf_exponent = 1.05;
  /// Fraction of citations that point *forward* in publication order.
  /// Real citation graphs are mostly backward; a small forward fraction
  /// (errata, "to appear") creates document-level cycles, which HOPI must
  /// handle (it works on arbitrary graphs).
  double forward_cite_fraction = 0.02;
  /// Probability that a publication carries an intra-document cross
  /// reference (e.g. a footnote referencing an author element).
  double intra_link_prob = 0.15;
  uint64_t seed = 42;
};

/// Generates publication `index` (0-based) as an XML document named
/// "pub<index>.xml". Citations use xlink:href="pub<j>.xml" (document root
/// targets), matching how the paper added citation XLinks to DBLP records.
xml::Document GenerateDblpDocument(const DblpConfig& config, size_t index,
                                   Rng* rng);

/// Generates the full collection through the standard ingestion path.
Result<collection::IngestReport> GenerateDblpCollection(
    const DblpConfig& config, collection::Collection* out);

}  // namespace hopi::datagen
