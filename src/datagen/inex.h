// INEX-like synthetic collection: tree-structured journal articles with
// NO inter-document links (paper Table 1: 12,232 docs, 12M elements,
// 408,085 *intra*-document links, 534MB).
//
// The experiments that use INEX depend only on (a) link-freeness at the
// document level — every document separates G_D, so the fast deletion
// algorithm always applies — and (b) deep element trees, which stress the
// per-partition cover computation.
#pragma once

#include <cstdint>

#include "collection/builder.h"
#include "collection/collection.h"
#include "util/rng.h"
#include "util/result.h"
#include "xml/node.h"

namespace hopi::datagen {

struct InexConfig {
  size_t num_docs = 200;
  /// Target elements per article (paper: ~986 on average; default scaled).
  size_t mean_elements_per_doc = 300;
  /// Probability that a paragraph carries an intra-document reference
  /// (INEX articles have many internal cross references — Table 1 counts
  /// 408,085 of them, ~33 per document).
  double intra_ref_prob = 0.12;
  uint64_t seed = 7;
};

/// Generates article `index` as "article<index>.xml".
xml::Document GenerateInexDocument(const InexConfig& config, size_t index,
                                   Rng* rng);

Result<collection::IngestReport> GenerateInexCollection(
    const InexConfig& config, collection::Collection* out);

}  // namespace hopi::datagen
