#include "datagen/xmark.h"

#include <memory>

#include "datagen/words.h"

namespace hopi::datagen {

namespace {

std::string ItemDocName(const XmarkConfig& c, size_t item) {
  return "items" + std::to_string(item / c.entities_per_doc) + ".xml";
}
std::string PersonDocName(const XmarkConfig& c, size_t person) {
  return "people" + std::to_string(person / c.entities_per_doc) + ".xml";
}

}  // namespace

std::vector<xml::Document> GenerateXmarkDocuments(const XmarkConfig& config) {
  Rng rng(config.seed);
  std::vector<xml::Document> docs;

  // Item region documents.
  for (size_t base = 0; base < config.num_items;
       base += config.entities_per_doc) {
    auto root = std::make_unique<xml::Element>("region");
    for (size_t i = base;
         i < std::min(base + config.entities_per_doc, config.num_items); ++i) {
      auto* item = root->AddChild(std::make_unique<xml::Element>("item"));
      item->AddAttribute("id", "item" + std::to_string(i));
      item->AddChild(std::make_unique<xml::Element>("name"))
          ->AppendText(RandomWords(&rng, 2));
      auto* desc = item->AddChild(std::make_unique<xml::Element>("description"));
      desc->AddChild(std::make_unique<xml::Element>("text"))
          ->AppendText(RandomWords(&rng, 12));
      item->AddChild(std::make_unique<xml::Element>("quantity"))
          ->AppendText(std::to_string(1 + rng.NextBounded(5)));
    }
    xml::Document d;
    d.name = "items" + std::to_string(base / config.entities_per_doc) + ".xml";
    d.root = std::move(root);
    docs.push_back(std::move(d));
  }

  // People documents; watch lists reference items across documents.
  for (size_t base = 0; base < config.num_people;
       base += config.entities_per_doc) {
    auto root = std::make_unique<xml::Element>("people");
    for (size_t p = base;
         p < std::min(base + config.entities_per_doc, config.num_people);
         ++p) {
      auto* person = root->AddChild(std::make_unique<xml::Element>("person"));
      person->AddAttribute("id", "person" + std::to_string(p));
      person->AddChild(std::make_unique<xml::Element>("name"))
          ->AppendText(RandomAuthorName(&rng));
      person->AddChild(std::make_unique<xml::Element>("emailaddress"))
          ->AppendText("u" + std::to_string(p) + "@example.org");
      size_t watches = rng.NextBounded(4);
      for (size_t w = 0; w < watches; ++w) {
        size_t item = rng.NextBounded(config.num_items);
        auto* watch = person->AddChild(std::make_unique<xml::Element>("watch"));
        watch->AddAttribute("xlink:href", ItemDocName(config, item) + "#item" +
                                              std::to_string(item));
      }
    }
    xml::Document d;
    d.name = "people" + std::to_string(base / config.entities_per_doc) + ".xml";
    d.root = std::move(root);
    docs.push_back(std::move(d));
  }

  // Open-auction documents; each auction references an item and bidders.
  for (size_t base = 0; base < config.num_auctions;
       base += config.entities_per_doc) {
    auto root = std::make_unique<xml::Element>("open_auctions");
    for (size_t a = base;
         a < std::min(base + config.entities_per_doc, config.num_auctions);
         ++a) {
      auto* auction =
          root->AddChild(std::make_unique<xml::Element>("open_auction"));
      auction->AddAttribute("id", "auction" + std::to_string(a));
      size_t item = rng.NextBounded(config.num_items);
      auto* itemref = auction->AddChild(std::make_unique<xml::Element>("itemref"));
      itemref->AddAttribute("xlink:href", ItemDocName(config, item) + "#item" +
                                              std::to_string(item));
      size_t bids = 1 + rng.NextBounded(5);
      for (size_t b = 0; b < bids; ++b) {
        size_t person = rng.NextBounded(config.num_people);
        auto* bidder = auction->AddChild(std::make_unique<xml::Element>("bidder"));
        bidder->AddChild(std::make_unique<xml::Element>("increase"))
            ->AppendText(std::to_string(1 + rng.NextBounded(50)));
        auto* personref =
            bidder->AddChild(std::make_unique<xml::Element>("personref"));
        personref->AddAttribute("xlink:href",
                                PersonDocName(config, person) + "#person" +
                                    std::to_string(person));
      }
      auto* current = auction->AddChild(std::make_unique<xml::Element>("current"));
      current->AppendText(std::to_string(10 + rng.NextBounded(500)));
    }
    xml::Document d;
    d.name =
        "auctions" + std::to_string(base / config.entities_per_doc) + ".xml";
    d.root = std::move(root);
    docs.push_back(std::move(d));
  }
  return docs;
}

Result<collection::IngestReport> GenerateXmarkCollection(
    const XmarkConfig& config, collection::Collection* out) {
  collection::Ingestor ingestor(out);
  for (const xml::Document& d : GenerateXmarkDocuments(config)) {
    auto id = ingestor.Ingest(d);
    if (!id.ok()) return id.status();
  }
  return ingestor.report();
}

}  // namespace hopi::datagen
