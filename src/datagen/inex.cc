#include "datagen/inex.h"

#include <memory>
#include <vector>

#include "datagen/words.h"

namespace hopi::datagen {

xml::Document GenerateInexDocument(const InexConfig& config, size_t index,
                                   Rng* rng) {
  auto root = std::make_unique<xml::Element>("article");
  root->AddAttribute("id", "root");

  auto* front = root->AddChild(std::make_unique<xml::Element>("fm"));
  front->AddChild(std::make_unique<xml::Element>("ti"))
      ->AppendText(RandomWords(rng, 5));
  size_t num_authors = 1 + rng->NextBounded(3);
  auto* authors = front->AddChild(std::make_unique<xml::Element>("au-group"));
  for (size_t a = 0; a < num_authors; ++a) {
    authors->AddChild(std::make_unique<xml::Element>("au"))
        ->AppendText(RandomAuthorName(rng));
  }

  auto* body = root->AddChild(std::make_unique<xml::Element>("bdy"));

  // Grow sections/subsections/paragraphs until the element budget is met.
  // Depth comes from sec > ss1 > ss2 > p nesting, mimicking the INEX
  // (IEEE Computer Society) DTD shape.
  size_t budget = config.mean_elements_per_doc / 2 +
                  rng->NextBounded(config.mean_elements_per_doc + 1);
  size_t made = root->SubtreeSize();
  size_t sec_count = 0;
  size_t fig_count = 0;
  std::vector<std::string> anchor_ids;
  while (made < budget) {
    auto* sec = body->AddChild(std::make_unique<xml::Element>("sec"));
    std::string sec_id = "s" + std::to_string(sec_count++);
    sec->AddAttribute("id", sec_id);
    anchor_ids.push_back(sec_id);
    sec->AddChild(std::make_unique<xml::Element>("st"))
        ->AppendText(RandomWords(rng, 3));
    made += 2;
    size_t subsections = 1 + rng->NextBounded(3);
    for (size_t ss = 0; ss < subsections && made < budget; ++ss) {
      auto* ss1 = sec->AddChild(std::make_unique<xml::Element>("ss1"));
      ++made;
      size_t paragraphs = 2 + rng->NextBounded(6);
      for (size_t p = 0; p < paragraphs && made < budget; ++p) {
        auto* para = ss1->AddChild(std::make_unique<xml::Element>("p"));
        para->AppendText(RandomWords(rng, 10 + rng->NextBounded(15)));
        ++made;
        if (rng->NextBernoulli(0.1)) {
          auto* fig = para->AddChild(std::make_unique<xml::Element>("fig"));
          std::string fig_id = "f" + std::to_string(fig_count++);
          fig->AddAttribute("id", fig_id);
          anchor_ids.push_back(fig_id);
          ++made;
        }
        if (!anchor_ids.empty() && rng->NextBernoulli(config.intra_ref_prob)) {
          auto* ref = para->AddChild(std::make_unique<xml::Element>("ref"));
          ref->AddAttribute(
              "idref", anchor_ids[rng->NextBounded(anchor_ids.size())]);
          ++made;
        }
      }
    }
  }

  auto* back = root->AddChild(std::make_unique<xml::Element>("bm"));
  auto* bib = back->AddChild(std::make_unique<xml::Element>("bib"));
  size_t num_bibs = 5 + rng->NextBounded(15);
  for (size_t b = 0; b < num_bibs; ++b) {
    // Bibliography entries are plain text here — INEX articles do NOT
    // carry inter-document XLinks (this is the defining property of the
    // dataset in the paper's experiments).
    bib->AddChild(std::make_unique<xml::Element>("bb"))
        ->AppendText(RandomWords(rng, 6));
  }

  xml::Document doc;
  doc.name = "article" + std::to_string(index) + ".xml";
  doc.root = std::move(root);
  return doc;
}

Result<collection::IngestReport> GenerateInexCollection(
    const InexConfig& config, collection::Collection* out) {
  Rng rng(config.seed);
  collection::Ingestor ingestor(out);
  for (size_t i = 0; i < config.num_docs; ++i) {
    xml::Document doc = GenerateInexDocument(config, i, &rng);
    auto id = ingestor.Ingest(doc);
    if (!id.ok()) return id.status();
  }
  return ingestor.report();
}

}  // namespace hopi::datagen
