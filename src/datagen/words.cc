#include "datagen/words.h"

namespace hopi::datagen {

namespace {

constexpr const char* kVocab[] = {
    "index",     "query",    "graph",     "cover",   "label",   "path",
    "document",  "element",  "link",      "search",  "engine",  "ranking",
    "distance",  "closure",  "partition", "center",  "node",    "edge",
    "efficient", "dynamic",  "update",    "delete",  "insert",  "skeleton",
    "adaptive",  "semantic", "retrieval", "wildcard", "ancestor", "descendant",
    "databases", "system",   "structure", "relation", "schema",  "storage"};
constexpr size_t kVocabSize = sizeof(kVocab) / sizeof(kVocab[0]);

constexpr const char* kSurnames[] = {
    "Svensson", "Weikum",  "Chen",   "Mueller", "Tanaka", "Kaplan",
    "Novak",    "Silva",   "Kumar",  "Olsen",   "Rossi",  "Petrov",
    "Schmidt",  "Dubois",  "Haas",   "Moreau",  "Lindt",  "Berger"};
constexpr size_t kSurnameCount = sizeof(kSurnames) / sizeof(kSurnames[0]);

}  // namespace

std::string RandomWord(Rng* rng) {
  return kVocab[rng->NextBounded(kVocabSize)];
}

std::string RandomWords(Rng* rng, size_t n) {
  std::string out;
  for (size_t i = 0; i < n; ++i) {
    if (i) out.push_back(' ');
    out += RandomWord(rng);
  }
  return out;
}

std::string RandomAuthorName(Rng* rng) {
  std::string initial(1, static_cast<char>('A' + rng->NextBounded(26)));
  return initial + ". " + kSurnames[rng->NextBounded(kSurnameCount)];
}

}  // namespace hopi::datagen
