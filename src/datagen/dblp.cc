#include "datagen/dblp.h"

#include <algorithm>
#include <memory>

#include "datagen/words.h"

namespace hopi::datagen {

namespace {

std::string PubName(size_t index) {
  return "pub" + std::to_string(index) + ".xml";
}

}  // namespace

xml::Document GenerateDblpDocument(const DblpConfig& config, size_t index,
                                   Rng* rng) {
  // Element mix modeled on DBLP inproceedings records: the paper's subset
  // averaged ~27 elements per publication.
  auto root = std::make_unique<xml::Element>("inproceedings");
  root->AddAttribute("id", "pub" + std::to_string(index));
  root->AddAttribute("key", "conf/gen/" + std::to_string(index));

  size_t num_authors = 1 + rng->NextBounded(4);
  for (size_t a = 0; a < num_authors; ++a) {
    auto* author = root->AddChild(std::make_unique<xml::Element>("author"));
    author->AddAttribute("id", "a" + std::to_string(a));
    author->AppendText(RandomAuthorName(rng));
  }
  auto* title = root->AddChild(std::make_unique<xml::Element>("title"));
  title->AppendText(RandomWords(rng, 4 + rng->NextBounded(6)));
  root->AddChild(std::make_unique<xml::Element>("pages"))
      ->AppendText(std::to_string(rng->NextBounded(400)) + "-" +
                   std::to_string(400 + rng->NextBounded(20)));
  root->AddChild(std::make_unique<xml::Element>("year"))
      ->AppendText(std::to_string(1985 + rng->NextBounded(20)));
  root->AddChild(std::make_unique<xml::Element>("booktitle"))
      ->AppendText(RandomWords(rng, 2));
  root->AddChild(std::make_unique<xml::Element>("ee"))
      ->AppendText("db/conf/gen/" + std::to_string(index));

  // Abstract with a few sentence elements to reach DBLP-like element
  // counts and give the ranking examples some depth.
  auto* abstract = root->AddChild(std::make_unique<xml::Element>("abstract"));
  size_t sentences = 3 + rng->NextBounded(5);
  for (size_t s = 0; s < sentences; ++s) {
    auto* sent = abstract->AddChild(std::make_unique<xml::Element>("sentence"));
    sent->AppendText(RandomWords(rng, 6 + rng->NextBounded(8)));
  }

  // Citations. Target selection is Zipf over publication rank so early
  // ("classic") publications attract the bulk of citations. Mostly
  // backward; a small fraction points forward creating doc-level cycles.
  size_t num_cites = 0;
  {
    // Geometric-ish around the mean: 0..2*mean uniform keeps it simple and
    // gives variance without heavy tails on the *out*-degree.
    uint64_t cap = static_cast<uint64_t>(2.0 * config.mean_citations + 0.5);
    num_cites = cap == 0 ? 0 : rng->NextBounded(cap + 1);
  }
  std::vector<size_t> targets;
  for (size_t citation = 0; citation < num_cites; ++citation) {
    size_t target;
    if (index > 0 && !rng->NextBernoulli(config.forward_cite_fraction)) {
      target = rng->NextZipf(index, config.zipf_exponent);  // in [0, index)
    } else if (index + 1 < config.num_docs) {
      target = index + 1 + rng->NextBounded(config.num_docs - index - 1);
    } else {
      continue;
    }
    if (std::find(targets.begin(), targets.end(), target) != targets.end()) {
      continue;  // no duplicate citations
    }
    targets.push_back(target);
    auto* cite = root->AddChild(std::make_unique<xml::Element>("cite"));
    cite->AddAttribute("xlink:href", PubName(target));
    cite->AppendText("[" + std::to_string(targets.size()) + "]");
  }

  // Occasional intra-document cross reference: a footnote pointing at an
  // author anchor.
  if (rng->NextBernoulli(config.intra_link_prob)) {
    auto* footnote = root->AddChild(std::make_unique<xml::Element>("footnote"));
    footnote->AddAttribute(
        "idref", "a" + std::to_string(rng->NextBounded(num_authors)));
    footnote->AppendText(RandomWords(rng, 3));
  }

  xml::Document doc;
  doc.name = PubName(index);
  doc.root = std::move(root);
  return doc;
}

Result<collection::IngestReport> GenerateDblpCollection(
    const DblpConfig& config, collection::Collection* out) {
  Rng rng(config.seed);
  collection::Ingestor ingestor(out);
  for (size_t i = 0; i < config.num_docs; ++i) {
    xml::Document doc = GenerateDblpDocument(config, i, &rng);
    auto id = ingestor.Ingest(doc);
    if (!id.ok()) return id.status();
  }
  return ingestor.report();
}

}  // namespace hopi::datagen
