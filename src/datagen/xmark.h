// XMark-like auction-site data, split into per-category documents with
// ID/IDREF-style references (people <-> auctions <-> items).
//
// The original XMark benchmark emits one huge document; we split it into
// one document per region/person-group/auction-group so the result is a
// *collection* with both intra- and inter-document links — the workload
// class ("complex XML document collections") the paper targets. Used by
// the examples and as a third workload for the ablation benches.
#pragma once

#include <cstdint>

#include "collection/builder.h"
#include "collection/collection.h"
#include "util/rng.h"
#include "util/result.h"
#include "xml/node.h"

namespace hopi::datagen {

struct XmarkConfig {
  size_t num_items = 200;
  size_t num_people = 100;
  size_t num_auctions = 150;
  /// Items per region document / people per person-group document / etc.
  size_t entities_per_doc = 25;
  uint64_t seed = 99;
};

/// Generates the whole collection (items, people, open auctions) through
/// the standard ingestion path.
Result<collection::IngestReport> GenerateXmarkCollection(
    const XmarkConfig& config, collection::Collection* out);

/// Generates the constituent documents (exposed for the parsing example).
std::vector<xml::Document> GenerateXmarkDocuments(const XmarkConfig& config);

}  // namespace hopi::datagen
