// Greedy 2-hop cover construction (paper Sec 3.2 + Sec 5.2).
//
// Implements Cohen et al.'s approximation with HOPI's two optimizations:
//   1. A lazy priority queue over candidate centers: densities only
//      decrease as connections get covered, so each popped candidate is
//      re-verified and re-inserted when stale, avoiding recomputing every
//      densest subgraph each round.
//   2. Closed-form initial priorities: before anything is covered, w's
//      center graph is the complete bipartite graph over (Anc(w)+w,
//      Desc(w)+w) minus the (w,w) pair, so its density is known without
//      constructing it.
// The distance-aware mode (Sec 5) restricts center-graph edges to pairs
// (u, v) with dist(u,v) == dist(u,w) + dist(w,v) and replaces optimization
// (2) with the sampled edge-count estimate (<= 13,600 samples, 98% CI
// upper bound, priority sqrt(E)/2).
//
// Center preselection (Sec 4.2) seeds the cover with a caller-provided
// list of centers (HOPI passes cross-partition link targets) before the
// greedy loop starts.
//
// The build is staged so a single partition's cover can use several
// threads (num_threads > 1) while staying deterministic:
//   1. Priority seeding — the per-node initial priority pass (including
//      the sampled binomial bound in distance mode, which draws from a
//      per-node Rng::Fork stream) is embarrassingly parallel.
//   2. Speculative evaluation — the greedy loop pops the top-K frontier
//      of the lazy priority queue and evaluates every candidate's center
//      graph + densest subgraph in parallel against the current
//      (read-only) uncovered set, on thread-local scratch.
//   3. Commit — candidates are then consumed strictly in priority order
//      on one thread; each commit revalidates against the popped bound
//      exactly like the sequential loop and invalidates the outstanding
//      speculative evaluations (they were computed against a stale
//      uncovered set).
// Candidates are ordered by (priority, node id), a strict total order, so
// the pop sequence is a function of queue *contents* alone and every
// evaluation is a pure function of (node, uncovered set). The produced
// cover is therefore bit-identical for every thread count and batch
// size; only the wasted-speculation counters vary.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "graph/closure.h"
#include "graph/digraph.h"
#include "twohop/cover.h"
#include "util/result.h"

namespace hopi::twohop {

struct CoverBuildOptions {
  /// Track shortest distances in the labels (Sec 5).
  bool with_distance = false;

  /// Centers to apply before the greedy loop, in order (Sec 4.2).
  std::vector<NodeId> preselect_centers;

  /// Sampling parameters for the distance-mode initial density estimate
  /// (Sec 5.2: "at most 13,600 randomly chosen candidate edges", 98% CI).
  uint32_t max_density_samples = 13600;
  double density_confidence = 0.98;
  uint64_t sample_seed = 0x5EED5EEDULL;

  /// Threads used *inside* this cover build (priority seeding +
  /// speculative candidate evaluation). 1 = fully sequential. The result
  /// is bit-identical for every value; see the staging notes above.
  size_t num_threads = 1;

  /// Size of the speculatively evaluated priority-queue frontier per
  /// round. 0 = auto (one candidate per worker thread). Larger batches
  /// ride out longer stale-pop chains at the cost of more wasted
  /// evaluations after a commit; the result never changes.
  uint32_t speculation_batch = 0;
};

/// Instrumentation counters for the build (reported by the benches).
struct CoverBuildStats {
  uint64_t initial_connections = 0;   // |T| fed to the algorithm
  uint64_t centers_chosen = 0;        // greedy iterations that covered pairs
  uint64_t densest_recomputations = 0;
  uint64_t queue_reinsertions = 0;    // stale pops (the cost HOPI's
                                      // priority queue avoids paying
                                      // everywhere)
  uint64_t preselect_covered = 0;     // pairs covered by preselection
  // Speculation accounting — these counters, *and*
  // densest_recomputations above (which includes the speculative
  // frontier evaluations), depend on num_threads/speculation_batch.
  // The remaining counters are identical for every thread count
  // because they are driven by the (deterministic) pop/commit
  // sequence. speculative_evaluations = frontier evaluations beyond
  // the mandatory head; speculative_wasted = how many of those were
  // invalidated by a commit before being consumed.
  uint64_t speculative_evaluations = 0;
  uint64_t speculative_wasted = 0;
};

/// Builds a 2-hop cover for all connections of `g`. Computes the closure
/// internally (and the distance closure in distance mode).
Result<TwoHopCover> BuildCover(const Digraph& g,
                               const CoverBuildOptions& options = {},
                               CoverBuildStats* stats = nullptr);

/// As above but with a precomputed closure (callers that already paid for
/// it, e.g. the partitioner). `dc` is required iff options.with_distance.
Result<TwoHopCover> BuildCoverFromClosure(const TransitiveClosure& tc,
                                          const DistanceClosure* dc,
                                          const CoverBuildOptions& options,
                                          CoverBuildStats* stats = nullptr);

/// Exhaustive cover correctness check against the closure (test oracle):
/// verifies completeness (every connection covered), soundness (no
/// nonexisting connection covered) and, in distance mode, exact shortest
/// distances. O(n^2) — test-sized graphs only.
Status ValidateCover(const TwoHopCover& cover, const Digraph& g,
                     bool check_distances = false);

}  // namespace hopi::twohop
