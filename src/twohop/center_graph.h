// Center graphs and densest subgraphs (paper Sec 3.2).
//
// For a candidate center w, the center graph CG_w is an undirected
// bipartite graph with a vertex u_in for every ancestor u of w (plus w
// itself) and a vertex v_out for every descendant v (plus w), and an edge
// (u_in, v_out) for every *not yet covered* connection (u, v). Choosing w
// greedily means finding the densest subgraph of CG_w; the classic
// linear-time 2-approximation (repeatedly remove a minimum-degree vertex,
// return the densest intermediate graph) is implemented here.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hopi::twohop {

/// Bipartite graph with `num_in` left vertices and `num_out` right
/// vertices, indexed 0-based per side.
class BipartiteGraph {
 public:
  BipartiteGraph(uint32_t num_in, uint32_t num_out)
      : adj_in_(num_in), adj_out_(num_out) {}

  /// Adds edge (in-vertex i, out-vertex j). No duplicate detection — the
  /// builder feeds each candidate pair exactly once.
  void AddEdge(uint32_t i, uint32_t j) {
    adj_in_[i].push_back(j);
    adj_out_[j].push_back(i);
    ++num_edges_;
  }

  uint32_t NumIn() const { return static_cast<uint32_t>(adj_in_.size()); }
  uint32_t NumOut() const { return static_cast<uint32_t>(adj_out_.size()); }
  uint64_t NumEdges() const { return num_edges_; }

  const std::vector<uint32_t>& InAdj(uint32_t i) const { return adj_in_[i]; }
  const std::vector<uint32_t>& OutAdj(uint32_t j) const { return adj_out_[j]; }

 private:
  std::vector<std::vector<uint32_t>> adj_in_;   // in-vertex -> out-vertices
  std::vector<std::vector<uint32_t>> adj_out_;  // out-vertex -> in-vertices
  uint64_t num_edges_ = 0;
};

/// Densest-subgraph output: the chosen vertex subsets and their density.
struct DensestSubgraph {
  std::vector<uint32_t> in_vertices;   // indices on the in side
  std::vector<uint32_t> out_vertices;  // indices on the out side
  uint64_t edges = 0;                  // edges inside the subgraph
  double density = 0.0;                // edges / (|in| + |out|)
};

/// 2-approximation by minimum-degree peeling. Isolated vertices are never
/// part of the result (the paper removes them from CG_w up front).
/// Returns a zero-density result for an edgeless graph.
DensestSubgraph ApproxDensestSubgraph(const BipartiteGraph& g);

}  // namespace hopi::twohop
