// The structure-of-arrays label shape the vectorized join kernels run
// over, plus the 8-byte per-label summary checked before any kernel
// does.
//
// This header is deliberately tiny and dependency-free (it is included
// by twohop/cover.h, storage/compress.h and engine/backend.h alike):
// it defines the *currency* — JoinView and LabelSummary — while the
// kernels themselves live in twohop/join_kernel.h.
//
// A JoinView is a borrowed, read-only view: whoever produced it owns
// the arrays (a cover's SoA mirror, a decoded block's packed columns,
// an mmapped file image) and the view must not outlive them — the same
// lifetime contract as engine::LabelView.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

namespace hopi::twohop {

/// An 8-byte summary of one label's center set, built for O(1)
/// "definitely disjoint" rejection on the probe hot path:
///
///   bits  0..47  Bloom filter over the centers (2 probes per center),
///   bits 48..55  smallest top byte (center >> 24) in the set,
///   bits 56..63  largest top byte in the set.
///
/// Semantics are strictly one-sided: MightContain/MightIntersect may
/// return true for a center/label that is not really there (a Bloom
/// false positive — the kernel then runs and answers exactly), but
/// never false for one that is. Two sentinels bound the lattice: an
/// Empty() summary (no centers) rejects everything, and an Unknown()
/// summary (producer has no summary, e.g. a raw mmapped v3 row)
/// rejects nothing. The min/max bytes only discriminate once center
/// ids exceed 2^24; below that they are 0 on both sides and the Bloom
/// word carries the filter alone.
struct LabelSummary {
  static constexpr uint64_t kBloomMask = (uint64_t{1} << 48) - 1;
  /// Bloom empty, min byte 0xFF > max byte 0: intersects nothing.
  static constexpr uint64_t kEmptyWord = uint64_t{0xFF} << 48;
  /// Bloom saturated, min byte 0, max byte 0xFF: rejects nothing.
  static constexpr uint64_t kUnknownWord =
      kBloomMask | (uint64_t{0xFF} << 56);

  uint64_t word = kUnknownWord;

  static LabelSummary Empty() { return LabelSummary{kEmptyWord}; }
  static LabelSummary Unknown() { return LabelSummary{kUnknownWord}; }

  /// The two Bloom bits of one center.
  static uint64_t BloomBits(uint32_t center) {
    uint64_t h = center * uint64_t{0x9E3779B97F4A7C15};
    return (uint64_t{1} << ((h >> 32) % 48)) |
           (uint64_t{1} << ((h >> 52) % 48));
  }

  uint32_t min_byte() const { return (word >> 48) & 0xFF; }
  uint32_t max_byte() const { return word >> 56; }

  /// Folds one center in (monotone: summaries only ever widen).
  void Add(uint32_t center) {
    uint64_t lo = std::min<uint64_t>(min_byte(), center >> 24);
    uint64_t hi = std::max<uint64_t>(max_byte(), center >> 24);
    word = (word & kBloomMask) | BloomBits(center) | (lo << 48) | (hi << 56);
  }

  /// False only when `center` is definitely not in the set.
  bool MightContain(uint32_t center) const {
    uint32_t b = center >> 24;
    uint64_t bits = BloomBits(center);
    return b >= min_byte() && b <= max_byte() && (word & bits) == bits;
  }

  /// False only when the two center sets are definitely disjoint.
  static bool MightIntersect(LabelSummary a, LabelSummary b) {
    if (((a.word & b.word) & kBloomMask) == 0) return false;
    return a.min_byte() <= b.max_byte() && b.min_byte() <= a.max_byte();
  }
};

/// One label as the kernels see it: `n` centers sorted ascending and
/// unique, their distances, and the label's summary. Two layouts share
/// the type via `stride` (measured in uint32 words):
///
///   stride 1 — packed structure-of-arrays columns (a cover's SoA
///              mirror, a DecodedBlock's packed arrays). This is the
///              layout the SIMD kernels require.
///   stride k — a strided walk over array-of-structs storage
///              (LabelEntry spans -> stride 2, storage::TableRow runs
///              -> stride 3). Scalar and galloping kernels handle any
///              stride; dispatch never routes these to SIMD.
///
/// `dists == nullptr` means every distance is 0 (plain covers,
/// backward runs) — center(i)/dist_at(i) are the only sanctioned
/// accessors.
struct JoinView {
  const uint32_t* centers = nullptr;
  const uint32_t* dists = nullptr;
  size_t n = 0;
  size_t stride = 1;
  LabelSummary summary = LabelSummary::Unknown();

  uint32_t center(size_t i) const { return centers[i * stride]; }
  uint32_t dist_at(size_t i) const {
    return dists == nullptr ? 0 : dists[i * stride];
  }

  /// Adapts a sorted array-of-structs label (anything with `.center`
  /// and `.dist` fields laid out as uint32s, e.g. twohop::LabelEntry
  /// or storage::TableRow) as a strided view. The summary defaults to
  /// Unknown — pass one when the producer keeps it.
  template <typename Entry>
  static JoinView FromEntries(const Entry* e, size_t n,
                              LabelSummary summary = LabelSummary::Unknown()) {
    static_assert(sizeof(Entry) % sizeof(uint32_t) == 0,
                  "Entry must be uint32-granular");
    JoinView v;
    v.n = n;
    v.stride = sizeof(Entry) / sizeof(uint32_t);
    v.summary = n == 0 ? LabelSummary::Empty() : summary;
    if (n != 0) {
      v.centers = &e->center;
      v.dists = &e->dist;
    }
    return v;
  }
};

}  // namespace hopi::twohop
