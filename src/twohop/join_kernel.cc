#include "twohop/join_kernel.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "util/cpu.h"

// The SIMD kernels are compiled with per-function target attributes so
// one binary carries every variant and util::CpuInfo() picks at
// runtime; no -m flags leak into the build. Non-x86 or non-GNU builds
// simply never compile the variants and JoinKernelSupported reports
// them absent.
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define HOPI_JOIN_KERNEL_X86 1
#include <immintrin.h>
#endif

namespace hopi::twohop {

namespace {

// ---------------------------------------------------------------------------
// Shared scaffolding
// ---------------------------------------------------------------------------

inline uint32_t C(const JoinView& v, size_t i) { return v.centers[i * v.stride]; }
inline uint32_t D(const JoinView& v, size_t i) {
  return v.dists == nullptr ? 0 : v.dists[i * v.stride];
}

inline void Consider(LabelJoinResult* r, uint32_t d) {
  if (!r->distance || d < *r->distance) r->distance = d;
}

/// First index in [from, v.n) whose center is >= key (plain binary
/// search; the gallop kernel has its own doubling variant).
size_t LowerBound(const JoinView& v, size_t from, uint32_t key) {
  size_t lo = from, hi = v.n;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (C(v, mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// First index in [from, v.n) whose center is >= key, found by
/// doubling from `from` — O(log distance) instead of O(log n), which
/// is what makes a pass over the smaller side with a moving cursor
/// total O(small * log(large/small)).
size_t Gallop(const JoinView& v, size_t from, uint32_t key) {
  size_t lo = from, hi = from, step = 1;
  while (hi < v.n && C(v, hi) < key) {
    lo = hi + 1;
    hi += step;
    step <<= 1;
  }
  if (hi > v.n) hi = v.n;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (C(v, mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// ---------------------------------------------------------------------------
// Merge kernels. Every kernel intersects lout x lin starting at
// (i, j): sets connected on a shared center; without want_distance it
// stops at the first match, with it it min-pluses every match
// (uint32 wraparound on the sum, exactly like the scalar reference).
// ---------------------------------------------------------------------------

void MergeScalarFrom(const JoinView& lout, const JoinView& lin, size_t i,
                     size_t j, bool want_distance, LabelJoinResult* r) {
  while (i < lout.n && j < lin.n) {
    uint32_t a = C(lout, i), b = C(lin, j);
    if (a < b) {
      ++i;
    } else if (a > b) {
      ++j;
    } else {
      r->connected = true;
      if (!want_distance) return;
      Consider(r, D(lout, i) + D(lin, j));
      ++i;
      ++j;
    }
  }
}

void MergeGallop(const JoinView& lout, const JoinView& lin,
                 bool want_distance, LabelJoinResult* r) {
  // Walk the smaller side, gallop in the larger.
  const JoinView& small = lout.n <= lin.n ? lout : lin;
  const JoinView& large = lout.n <= lin.n ? lin : lout;
  size_t pos = 0;
  for (size_t i = 0; i < small.n && pos < large.n; ++i) {
    uint32_t key = C(small, i);
    pos = Gallop(large, pos, key);
    if (pos == large.n) return;
    if (C(large, pos) == key) {
      r->connected = true;
      if (!want_distance) return;
      Consider(r, D(small, i) + D(large, pos));
      ++pos;
    }
  }
}

#ifdef HOPI_JOIN_KERNEL_X86

/// Scalar sub-merge of one wa x wb block window — how the SIMD kernels
/// turn "this window has a match" into exact pairs (and distances).
/// Windows overlap across iterations when only one side advances;
/// Consider() is a min, so re-seeing a pair is harmless.
inline void MergeWindow(const JoinView& lout, const JoinView& lin, size_t i,
                        size_t wa, size_t j, size_t wb, bool want_distance,
                        LabelJoinResult* r) {
  size_t ii = i, jj = j;
  while (ii < i + wa && jj < j + wb) {
    uint32_t a = lout.centers[ii], b = lin.centers[jj];
    if (a < b) {
      ++ii;
    } else if (a > b) {
      ++jj;
    } else {
      r->connected = true;
      if (!want_distance) return;
      Consider(r, (lout.dists ? lout.dists[ii] : 0) +
                      (lin.dists ? lin.dists[jj] : 0));
      ++ii;
      ++jj;
    }
  }
}

/// 4-wide block-compare intersection (packed views only): each round
/// compares one 4-block of lout against all four rotations of one
/// 4-block of lin — all 16 pairs — then advances whichever block's max
/// is smaller. Remainders fall through to the scalar merge.
__attribute__((target("sse2"))) void MergeSSE2(const JoinView& lout,
                                               const JoinView& lin,
                                               bool want_distance,
                                               LabelJoinResult* r) {
  const uint32_t* a = lout.centers;
  const uint32_t* b = lin.centers;
  size_t i = 0, j = 0;
  while (i + 4 <= lout.n && j + 4 <= lin.n) {
    __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    __m128i eq = _mm_cmpeq_epi32(va, vb);
    eq = _mm_or_si128(
        eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1))));
    eq = _mm_or_si128(
        eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2))));
    eq = _mm_or_si128(
        eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0, 3))));
    if (_mm_movemask_epi8(eq) != 0) {
      r->connected = true;
      if (!want_distance) return;
      MergeWindow(lout, lin, i, 4, j, 4, want_distance, r);
    }
    uint32_t amax = a[i + 3], bmax = b[j + 3];
    if (amax <= bmax) i += 4;
    if (bmax <= amax) j += 4;
  }
  MergeScalarFrom(lout, lin, i, j, want_distance, r);
}

/// 8-wide variant. All 64 pairs of the two 8-blocks are covered by
/// comparing va against 8 rearrangements of vb: the identity, the
/// lane-swapped copy (the one cross-lane permute), and three in-lane
/// rotations of each — a shallow, mostly-parallel dependency tree
/// rather than a serial rotate-by-one chain (which is latency-bound on
/// the cross-lane permute and measures ~1.7x slower here).
__attribute__((target("avx2"))) void MergeAVX2(const JoinView& lout,
                                               const JoinView& lin,
                                               bool want_distance,
                                               LabelJoinResult* r) {
  const uint32_t* a = lout.centers;
  const uint32_t* b = lin.centers;
  size_t i = 0, j = 0;
  while (i + 8 <= lout.n && j + 8 <= lin.n) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i b0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    __m256i b1 = _mm256_permute2x128_si256(b0, b0, 1);  // lanes swapped
    __m256i eq = _mm256_or_si256(_mm256_cmpeq_epi32(va, b0),
                                 _mm256_cmpeq_epi32(va, b1));
    eq = _mm256_or_si256(
        eq, _mm256_or_si256(
                _mm256_cmpeq_epi32(va, _mm256_shuffle_epi32(b0, 0x39)),
                _mm256_cmpeq_epi32(va, _mm256_shuffle_epi32(b1, 0x39))));
    eq = _mm256_or_si256(
        eq, _mm256_or_si256(
                _mm256_cmpeq_epi32(va, _mm256_shuffle_epi32(b0, 0x4E)),
                _mm256_cmpeq_epi32(va, _mm256_shuffle_epi32(b1, 0x4E))));
    eq = _mm256_or_si256(
        eq, _mm256_or_si256(
                _mm256_cmpeq_epi32(va, _mm256_shuffle_epi32(b0, 0x93)),
                _mm256_cmpeq_epi32(va, _mm256_shuffle_epi32(b1, 0x93))));
    if (_mm256_movemask_epi8(eq) != 0) {
      r->connected = true;
      if (!want_distance) return;
      MergeWindow(lout, lin, i, 8, j, 8, want_distance, r);
    }
    uint32_t amax = a[i + 7], bmax = b[j + 7];
    if (amax <= bmax) i += 8;
    if (bmax <= amax) j += 8;
  }
  // GCC tail-calls the non-AVX remainder merge without vzeroupper, leaving
  // dirty upper ymm state that stalls every legacy-SSE instruction afterwards
  // (~6x on negative probes, which always reach this path). Clear it here.
  _mm256_zeroupper();
  MergeScalarFrom(lout, lin, i, j, want_distance, r);
}

#endif  // HOPI_JOIN_KERNEL_X86

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

/// |larger| / |smaller| at which galloping beats the scalar linear merge.
constexpr size_t kGallopRatio = 16;
/// With a SIMD merge available the crossover moves way out: the block
/// merge scans ~8 elements/cycle, so galloping only wins once
/// |larger| / |smaller| exceeds roughly 8 * log2(|larger|). Measured on
/// the sweep workload, SIMD still beats gallop at 64x skew.
constexpr size_t kGallopRatioSimd = 128;
/// Below this many elements on the larger side, SIMD setup is not
/// worth it over the scalar merge.
constexpr size_t kSimdMinLarge = 8;

bool HaveSSE2() {
#ifdef HOPI_JOIN_KERNEL_X86
  return util::CpuInfo().sse2;
#else
  return false;
#endif
}

bool HaveAVX2() {
#ifdef HOPI_JOIN_KERNEL_X86
  return util::CpuInfo().avx2;
#else
  return false;
#endif
}

/// -1 = unset (consult the environment once), else a JoinKernel.
std::atomic<int> g_forced{-1};

}  // namespace

std::optional<JoinKernel> ParseJoinKernel(std::string_view name) {
  if (name == "auto") return JoinKernel::kAuto;
  if (name == "scalar") return JoinKernel::kScalar;
  if (name == "gallop") return JoinKernel::kGallop;
  if (name == "sse2") return JoinKernel::kSSE2;
  if (name == "avx2") return JoinKernel::kAVX2;
  return std::nullopt;
}

std::string_view JoinKernelName(JoinKernel kernel) {
  switch (kernel) {
    case JoinKernel::kAuto:
      return "auto";
    case JoinKernel::kScalar:
      return "scalar";
    case JoinKernel::kGallop:
      return "gallop";
    case JoinKernel::kSSE2:
      return "sse2";
    case JoinKernel::kAVX2:
      return "avx2";
  }
  return "unknown";
}

JoinKernel ForcedJoinKernel() {
  int f = g_forced.load(std::memory_order_relaxed);
  if (f >= 0) return static_cast<JoinKernel>(f);
  JoinKernel k = JoinKernel::kAuto;
  if (const char* env = std::getenv("HOPI_JOIN_KERNEL")) {
    if (std::optional<JoinKernel> parsed = ParseJoinKernel(env)) {
      k = *parsed;
    } else {
      std::fprintf(stderr,
                   "HOPI_JOIN_KERNEL=%s not recognized "
                   "(auto|scalar|gallop|sse2|avx2); using auto\n",
                   env);
    }
  }
  // Benign race: concurrent first calls parse the same environment and
  // store the same value.
  g_forced.store(static_cast<int>(k), std::memory_order_relaxed);
  return k;
}

void SetForcedJoinKernel(JoinKernel kernel) {
  g_forced.store(static_cast<int>(kernel), std::memory_order_relaxed);
}

bool JoinKernelSupported(JoinKernel kernel) {
  switch (kernel) {
    case JoinKernel::kAuto:
    case JoinKernel::kScalar:
    case JoinKernel::kGallop:
      return true;
    case JoinKernel::kSSE2:
      return HaveSSE2();
    case JoinKernel::kAVX2:
      return HaveAVX2();
  }
  return false;
}

std::vector<JoinKernel> SupportedJoinKernels() {
  std::vector<JoinKernel> kernels{JoinKernel::kScalar, JoinKernel::kGallop};
  if (JoinKernelSupported(JoinKernel::kSSE2)) {
    kernels.push_back(JoinKernel::kSSE2);
  }
  if (JoinKernelSupported(JoinKernel::kAVX2)) {
    kernels.push_back(JoinKernel::kAVX2);
  }
  return kernels;
}

JoinKernel ResolveJoinKernel(JoinKernel requested, size_t lout_n,
                             size_t lin_n, bool packed) {
  JoinKernel k =
      requested != JoinKernel::kAuto ? requested : ForcedJoinKernel();
  size_t small = lout_n <= lin_n ? lout_n : lin_n;
  size_t large = lout_n <= lin_n ? lin_n : lout_n;
  if (k == JoinKernel::kAuto) {
    if (small == 0) return JoinKernel::kScalar;
    size_t ratio = large / small;
    if (packed && large >= kSimdMinLarge && (HaveAVX2() || HaveSSE2())) {
      if (ratio >= kGallopRatioSimd) return JoinKernel::kGallop;
      return HaveAVX2() ? JoinKernel::kAVX2 : JoinKernel::kSSE2;
    }
    if (ratio >= kGallopRatio) return JoinKernel::kGallop;
    return JoinKernel::kScalar;
  }
  // Forced kernels degrade to the best runnable one: missing ISA or a
  // strided view steps AVX2 -> SSE2 -> scalar.
  if (k == JoinKernel::kAVX2 && !(packed && HaveAVX2())) k = JoinKernel::kSSE2;
  if (k == JoinKernel::kSSE2 && !(packed && HaveSSE2())) {
    k = JoinKernel::kScalar;
  }
  return k;
}

LabelJoinResult JoinViews(NodeId u, NodeId v, const JoinView& lout,
                          const JoinView& lin, bool want_distance,
                          JoinKernel kernel) {
  LabelJoinResult result;
  // Prefilter: when the 8-byte summaries prove the center sets
  // disjoint AND rule out both implicit self entries, the probe is a
  // definite negative — no search of any kind runs.
  if (!LabelSummary::MightIntersect(lout.summary, lin.summary) &&
      !lin.summary.MightContain(u) && !lout.summary.MightContain(v)) {
    return result;
  }
  // Implicit self entries (the rule JoinLabelRanges documents):
  // u ∈ Lout(u) connects through u ∈ Lin(v), v ∈ Lin(v) through
  // v ∈ Lout(u). Range screens skip the binary searches outright.
  if (lin.n != 0 && C(lin, 0) <= u && u <= C(lin, lin.n - 1)) {
    size_t p = LowerBound(lin, 0, u);
    if (p < lin.n && C(lin, p) == u) {
      result.connected = true;
      if (want_distance) Consider(&result, D(lin, p));
    }
  }
  if (lout.n != 0 && C(lout, 0) <= v && v <= C(lout, lout.n - 1)) {
    size_t p = LowerBound(lout, 0, v);
    if (p < lout.n && C(lout, p) == v) {
      result.connected = true;
      if (want_distance) Consider(&result, D(lout, p));
    }
  }
  if (result.connected && !want_distance) return result;
  // Disjoint center ranges cannot share a center: skip the merge.
  if (lout.n == 0 || lin.n == 0 ||
      C(lout, lout.n - 1) < C(lin, 0) || C(lin, lin.n - 1) < C(lout, 0)) {
    return result;
  }
  bool packed = lout.stride == 1 && lin.stride == 1;
  switch (ResolveJoinKernel(kernel, lout.n, lin.n, packed)) {
    case JoinKernel::kGallop:
      MergeGallop(lout, lin, want_distance, &result);
      break;
#ifdef HOPI_JOIN_KERNEL_X86
    case JoinKernel::kSSE2:
      MergeSSE2(lout, lin, want_distance, &result);
      break;
    case JoinKernel::kAVX2:
      MergeAVX2(lout, lin, want_distance, &result);
      break;
#endif
    case JoinKernel::kAuto:  // ResolveJoinKernel never returns kAuto
    default:
      MergeScalarFrom(lout, lin, 0, 0, want_distance, &result);
      break;
  }
  return result;
}

std::vector<uint32_t> IntersectSorted(std::span<const uint32_t> a,
                                      std::span<const uint32_t> b,
                                      JoinKernel kernel) {
  std::vector<uint32_t> out;
  if (a.empty() || b.empty()) return out;
  std::span<const uint32_t> small = a.size() <= b.size() ? a : b;
  std::span<const uint32_t> large = a.size() <= b.size() ? b : a;
  out.reserve(small.size());
  JoinKernel k = kernel != JoinKernel::kAuto ? kernel : ForcedJoinKernel();
  bool gallop = k == JoinKernel::kGallop ||
                (k == JoinKernel::kAuto &&
                 large.size() / small.size() >= kGallopRatio);
  if (gallop) {
    JoinView lv;
    lv.centers = large.data();
    lv.n = large.size();
    size_t pos = 0;
    for (uint32_t key : small) {
      pos = Gallop(lv, pos, key);
      if (pos == lv.n) break;
      if (large[pos] == key) {
        out.push_back(key);
        ++pos;
      }
    }
    return out;
  }
  size_t i = 0, j = 0;
  while (i < small.size() && j < large.size()) {
    if (small[i] < large[j]) {
      ++i;
    } else if (small[i] > large[j]) {
      ++j;
    } else {
      out.push_back(small[i]);
      ++i;
      ++j;
    }
  }
  return out;
}

}  // namespace hopi::twohop
