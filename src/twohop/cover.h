// Two-hop labels and covers (paper Sec 3.1).
//
// Each node x carries a label L(x) = (Lin(x), Lout(x)). A connection
// (u, v) is covered when Lout(u) and Lin(v) share a center node. Following
// HOPI's storage rule (Sec 3.4) a node is never stored in its own label;
// every query treats x as an implicit member of both Lin(x) and Lout(x)
// with distance 0.
//
// Entries optionally carry the shortest distance to/from the center
// (Sec 5); plain covers simply keep dist == 0.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "graph/digraph.h"
#include "twohop/join_view.h"

namespace hopi::twohop {

/// One label entry: a center node plus the shortest distance between the
/// labeled node and the center (0 when distances are not tracked).
struct LabelEntry {
  NodeId center;
  uint32_t dist;

  friend bool operator==(const LabelEntry& a, const LabelEntry& b) {
    return a.center == b.center && a.dist == b.dist;
  }
};

/// Result of joining one Lout label with one Lin label.
struct LabelJoinResult {
  bool connected = false;
  /// Minimum connection length implied by the labels; only computed
  /// when requested, nullopt when not connected.
  std::optional<uint32_t> distance;
};

/// The core 2-hop join under the implicit-self-entry rule (Sec 3.4):
/// (u, v) with u != v is connected when Lout(u) and Lin(v) share a
/// center, u appears as a center in Lin(v), or v appears as a center in
/// Lout(u). Both ranges must be sorted by center id. This is the single
/// definition of the join, shared by TwoHopCover queries, the LinLout
/// table scans (Entry = storage::TableRow), and the QueryEngine batch
/// path; callers handle the reflexive u == v case themselves.
/// `Entry` needs `.center` (NodeId) and `.dist` (uint32_t) fields.
template <typename Entry>
LabelJoinResult JoinLabelRanges(NodeId u, NodeId v, const Entry* lout,
                                size_t lout_n, const Entry* lin, size_t lin_n,
                                bool want_distance) {
  LabelJoinResult result;
  auto consider = [&result](uint32_t d) {
    if (!result.distance || d < *result.distance) result.distance = d;
  };
  // A sorted range can only contain `c` when c falls inside
  // [front, back] — the O(1) screen that makes the lower_bound probes
  // and the merge below skippable for disjoint labels.
  auto in_range = [](const Entry* entries, size_t n, NodeId c) {
    return n != 0 && entries[0].center <= c && c <= entries[n - 1].center;
  };
  auto find = [&in_range](const Entry* entries, size_t n,
                          NodeId c) -> const Entry* {
    if (!in_range(entries, n, c)) return nullptr;
    const Entry* it = std::lower_bound(
        entries, entries + n, c,
        [](const Entry& e, NodeId cc) { return e.center < cc; });
    return it != entries + n && it->center == c ? it : nullptr;
  };
  // Implicit self entries: u ∈ Lout(u) at distance 0 (center u requires
  // u ∈ Lin(v)), v ∈ Lin(v) at distance 0 (center v requires
  // v ∈ Lout(u)).
  if (const Entry* e = find(lin, lin_n, u)) {
    result.connected = true;
    if (want_distance) consider(e->dist);
  }
  if (const Entry* e = find(lout, lout_n, v)) {
    result.connected = true;
    if (want_distance) consider(e->dist);
  }
  if (result.connected && !want_distance) return result;
  // Disjoint center ranges cannot share a center: skip the merge.
  if (lout_n == 0 || lin_n == 0 ||
      lout[lout_n - 1].center < lin[0].center ||
      lin[lin_n - 1].center < lout[0].center) {
    return result;
  }
  // Merge-intersect the explicit label sets.
  size_t i = 0, j = 0;
  while (i < lout_n && j < lin_n) {
    if (lout[i].center < lin[j].center) {
      ++i;
    } else if (lout[i].center > lin[j].center) {
      ++j;
    } else {
      result.connected = true;
      if (!want_distance) return result;
      consider(lout[i].dist + lin[j].dist);
      ++i;
      ++j;
    }
  }
  return result;
}

/// JoinLabelRanges over whole LabelEntry label sets.
LabelJoinResult JoinLabels(NodeId u, NodeId v,
                           const std::vector<LabelEntry>& lout,
                           const std::vector<LabelEntry>& lin,
                           bool want_distance);

/// A two-hop cover: Lin/Lout label sets for every node in [0, NumNodes).
class TwoHopCover {
 public:
  TwoHopCover() = default;
  explicit TwoHopCover(size_t num_nodes)
      : in_(num_nodes),
        out_(num_nodes),
        in_soa_(num_nodes),
        out_soa_(num_nodes) {}

  void EnsureNodes(size_t n);
  size_t NumNodes() const { return in_.size(); }

  /// Adds `center` to Lin(v) with distance `dist` (center ->* v). Skips
  /// self entries. If the center is already present, keeps the smaller
  /// distance. Returns true if the entry count grew.
  bool AddIn(NodeId v, NodeId center, uint32_t dist = 0);

  /// Adds `center` to Lout(u) with distance `dist` (u ->* center).
  bool AddOut(NodeId u, NodeId center, uint32_t dist = 0);

  /// Cover size |L| = sum over nodes of |Lin| + |Lout| (paper Sec 3.1).
  uint64_t Size() const { return size_; }

  const std::vector<LabelEntry>& In(NodeId v) const { return in_[v]; }
  const std::vector<LabelEntry>& Out(NodeId u) const { return out_[u]; }

  /// The same labels as packed structure-of-arrays columns with their
  /// summaries — the shape the vectorized join kernels want. Mirrors
  /// are maintained incrementally by every mutator; views are borrowed
  /// and invalidated by the next mutation of that node's label.
  JoinView InJoin(NodeId v) const { return in_soa_[v].View(); }
  JoinView OutJoin(NodeId u) const { return out_soa_[u].View(); }

  /// Reachability test: true iff u == v or Lout(u) ∪ {u} intersects
  /// Lin(v) ∪ {v}. O(|Lout(u)| + |Lin(v)|).
  bool IsConnected(NodeId u, NodeId v) const;

  /// Shortest distance u -> v implied by the labels: min over common
  /// centers of dist(u,w) + dist(w,v), with the implicit self entries.
  /// nullopt when not connected. Only meaningful for distance-aware
  /// covers (plain covers return 0 for every connected pair).
  std::optional<uint32_t> Distance(NodeId u, NodeId v) const;

  /// Component-wise union with another cover over the same id space
  /// (paper Sec 3.3/4.1: partition covers are unified by label union).
  void UnionWith(const TwoHopCover& other);

  /// Removes every label entry of `v` and every occurrence of the centers
  /// listed in `centers` from v's labels — helper for the deletion paths.
  /// (Specific deletion logic lives in hopi/maintenance.)
  void ClearNode(NodeId v);

  /// Replaces Lin(v) wholesale (maintenance paths). Size is re-accounted.
  void SetIn(NodeId v, std::vector<LabelEntry> entries);
  void SetOut(NodeId u, std::vector<LabelEntry> entries);

  /// True if any label of any node mentions `center`.
  bool MentionsCenter(NodeId center) const;

 private:
  /// Packed SoA twin of one node's label vector. The columns duplicate
  /// the AoS entries exactly (same order); the summary covers exactly
  /// the centers present (Empty when the label is empty).
  struct SoAMirror {
    std::vector<uint32_t> centers;
    std::vector<uint32_t> dists;
    LabelSummary summary = LabelSummary::Empty();

    JoinView View() const {
      JoinView v;
      v.centers = centers.data();
      v.dists = dists.data();
      v.n = centers.size();
      v.summary = summary;
      return v;
    }
    void Rebuild(const std::vector<LabelEntry>& entries);
  };

  static bool InsertEntry(std::vector<LabelEntry>* label, SoAMirror* mirror,
                          NodeId center, uint32_t dist);

  std::vector<std::vector<LabelEntry>> in_;   // sorted by center id
  std::vector<std::vector<LabelEntry>> out_;  // sorted by center id
  std::vector<SoAMirror> in_soa_;             // packed twins of in_/out_
  std::vector<SoAMirror> out_soa_;
  uint64_t size_ = 0;
};

}  // namespace hopi::twohop
