// Two-hop labels and covers (paper Sec 3.1).
//
// Each node x carries a label L(x) = (Lin(x), Lout(x)). A connection
// (u, v) is covered when Lout(u) and Lin(v) share a center node. Following
// HOPI's storage rule (Sec 3.4) a node is never stored in its own label;
// every query treats x as an implicit member of both Lin(x) and Lout(x)
// with distance 0.
//
// Entries optionally carry the shortest distance to/from the center
// (Sec 5); plain covers simply keep dist == 0.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "graph/digraph.h"

namespace hopi::twohop {

/// One label entry: a center node plus the shortest distance between the
/// labeled node and the center (0 when distances are not tracked).
struct LabelEntry {
  NodeId center;
  uint32_t dist;

  friend bool operator==(const LabelEntry& a, const LabelEntry& b) {
    return a.center == b.center && a.dist == b.dist;
  }
};

/// A two-hop cover: Lin/Lout label sets for every node in [0, NumNodes).
class TwoHopCover {
 public:
  TwoHopCover() = default;
  explicit TwoHopCover(size_t num_nodes) : in_(num_nodes), out_(num_nodes) {}

  void EnsureNodes(size_t n);
  size_t NumNodes() const { return in_.size(); }

  /// Adds `center` to Lin(v) with distance `dist` (center ->* v). Skips
  /// self entries. If the center is already present, keeps the smaller
  /// distance. Returns true if the entry count grew.
  bool AddIn(NodeId v, NodeId center, uint32_t dist = 0);

  /// Adds `center` to Lout(u) with distance `dist` (u ->* center).
  bool AddOut(NodeId u, NodeId center, uint32_t dist = 0);

  /// Cover size |L| = sum over nodes of |Lin| + |Lout| (paper Sec 3.1).
  uint64_t Size() const { return size_; }

  const std::vector<LabelEntry>& In(NodeId v) const { return in_[v]; }
  const std::vector<LabelEntry>& Out(NodeId u) const { return out_[u]; }

  /// Reachability test: true iff u == v or Lout(u) ∪ {u} intersects
  /// Lin(v) ∪ {v}. O(|Lout(u)| + |Lin(v)|).
  bool IsConnected(NodeId u, NodeId v) const;

  /// Shortest distance u -> v implied by the labels: min over common
  /// centers of dist(u,w) + dist(w,v), with the implicit self entries.
  /// nullopt when not connected. Only meaningful for distance-aware
  /// covers (plain covers return 0 for every connected pair).
  std::optional<uint32_t> Distance(NodeId u, NodeId v) const;

  /// Component-wise union with another cover over the same id space
  /// (paper Sec 3.3/4.1: partition covers are unified by label union).
  void UnionWith(const TwoHopCover& other);

  /// Removes every label entry of `v` and every occurrence of the centers
  /// listed in `centers` from v's labels — helper for the deletion paths.
  /// (Specific deletion logic lives in hopi/maintenance.)
  void ClearNode(NodeId v);

  /// Replaces Lin(v) wholesale (maintenance paths). Size is re-accounted.
  void SetIn(NodeId v, std::vector<LabelEntry> entries);
  void SetOut(NodeId u, std::vector<LabelEntry> entries);

  /// True if any label of any node mentions `center`.
  bool MentionsCenter(NodeId center) const;

 private:
  static bool InsertEntry(std::vector<LabelEntry>* label, NodeId center,
                          uint32_t dist);

  std::vector<std::vector<LabelEntry>> in_;   // sorted by center id
  std::vector<std::vector<LabelEntry>> out_;  // sorted by center id
  uint64_t size_ = 0;
};

}  // namespace hopi::twohop
