#include "twohop/builder.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <queue>
#include <utility>

#include "graph/bitset.h"
#include "graph/traversal.h"
#include "twohop/center_graph.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace hopi::twohop {

namespace {

/// The set T' of not-yet-covered connections, as per-source bitset rows.
class UncoveredSet {
 public:
  explicit UncoveredSet(const TransitiveClosure& tc) {
    rows_.reserve(tc.NumNodes());
    for (NodeId u = 0; u < tc.NumNodes(); ++u) {
      rows_.push_back(tc.DescendantsRow(u));  // copy
      count_ += rows_.back().Count();
    }
  }

  uint64_t count() const { return count_; }
  bool Test(NodeId u, NodeId v) const { return rows_[u].Test(v); }

  void Remove(NodeId u, NodeId v) {
    if (rows_[u].Clear(v)) --count_;
  }

  /// Removes all uncovered pairs (u, v) with v in `targets`; returns the
  /// number removed. (Plain mode bulk removal.)
  uint64_t RemoveRowSubset(NodeId u, const DynamicBitset& targets) {
    uint64_t removed = rows_[u].SubtractWith(targets);
    count_ -= removed;
    return removed;
  }

  const DynamicBitset& Row(NodeId u) const { return rows_[u]; }

 private:
  std::vector<DynamicBitset> rows_;
  uint64_t count_ = 0;
};

/// Shortest-path test: may w be the center for (u, v)? (Sec 5.2.)
/// In plain mode the answer is always yes for connected triples.
class CenterEligibility {
 public:
  CenterEligibility(const DistanceClosure* dc, bool with_distance)
      : dc_(dc), with_distance_(with_distance) {}

  /// Precondition: u ->* w ->* v all hold (w fixed by the caller; only
  /// its distances matter here).
  bool Eligible(NodeId u, NodeId w, NodeId v, uint32_t dist_uw,
                uint32_t dist_wv) const {
    (void)w;
    if (!with_distance_) return true;
    auto duv = dc_->Dist(u, v);
    assert(duv.has_value());
    return *duv == dist_uw + dist_wv;
  }

 private:
  const DistanceClosure* dc_;
  bool with_distance_;
};

/// One side of a candidate's center graph: node ids plus distances to/from
/// the center (distances stay 0 in plain mode).
struct Side {
  std::vector<NodeId> nodes;
  std::vector<uint32_t> dists;
};

/// Builds the ancestor side (Anc(w) + w) and descendant side (Desc(w) + w)
/// of w's center graph.
void BuildSides(const TransitiveClosure& tc, const DistanceClosure* dc,
                bool with_distance, NodeId w, Side* in_side, Side* out_side) {
  in_side->nodes.clear();
  in_side->dists.clear();
  out_side->nodes.clear();
  out_side->dists.clear();
  if (with_distance) {
    for (const DistConnection& c : dc->ReverseRow(w)) {
      in_side->nodes.push_back(c.node);
      in_side->dists.push_back(c.dist);
    }
    in_side->nodes.push_back(w);
    in_side->dists.push_back(0);
    for (const DistConnection& c : dc->Row(w)) {
      out_side->nodes.push_back(c.node);
      out_side->dists.push_back(c.dist);
    }
    out_side->nodes.push_back(w);
    out_side->dists.push_back(0);
  } else {
    tc.AncestorsRow(w).ForEach([&](size_t u) {
      in_side->nodes.push_back(static_cast<NodeId>(u));
      in_side->dists.push_back(0);
    });
    in_side->nodes.push_back(w);
    in_side->dists.push_back(0);
    tc.DescendantsRow(w).ForEach([&](size_t v) {
      out_side->nodes.push_back(static_cast<NodeId>(v));
      out_side->dists.push_back(0);
    });
    out_side->nodes.push_back(w);
    out_side->dists.push_back(0);
  }
}

/// Constructs center graphs restricted to uncovered pairs. Holds scratch
/// buffers (an out-side index map and mask) so the hot loop is allocation
/// free and, in plain mode, word-parallel over the uncovered bitset rows.
class CenterGraphBuilder {
 public:
  explicit CenterGraphBuilder(size_t num_nodes)
      : out_index_(num_nodes, UINT32_MAX), out_mask_(num_nodes) {}

  BipartiteGraph Build(const UncoveredSet& uncovered,
                       const CenterEligibility& elig, bool with_distance,
                       NodeId w, const Side& in_side, const Side& out_side) {
    BipartiteGraph cg(static_cast<uint32_t>(in_side.nodes.size()),
                      static_cast<uint32_t>(out_side.nodes.size()));
    if (with_distance) {
      // Pairwise: every candidate pair needs the shortest-path test.
      for (uint32_t i = 0; i < in_side.nodes.size(); ++i) {
        NodeId u = in_side.nodes[i];
        const DynamicBitset& row = uncovered.Row(u);
        for (uint32_t j = 0; j < out_side.nodes.size(); ++j) {
          NodeId v = out_side.nodes[j];
          if (u == v || !row.Test(v)) continue;
          if (!elig.Eligible(u, w, v, in_side.dists[i], out_side.dists[j])) {
            continue;
          }
          cg.AddEdge(i, j);
        }
      }
      return cg;
    }
    // Plain mode: intersect each ancestor's uncovered row with the
    // out-side mask; every surviving bit is an edge.
    for (uint32_t j = 0; j < out_side.nodes.size(); ++j) {
      out_index_[out_side.nodes[j]] = j;
      out_mask_.Set(out_side.nodes[j]);
    }
    for (uint32_t i = 0; i < in_side.nodes.size(); ++i) {
      NodeId u = in_side.nodes[i];
      uncovered.Row(u).ForEachIntersection(out_mask_, [&](size_t v) {
        if (static_cast<NodeId>(v) != u) {
          cg.AddEdge(i, out_index_[v]);
        }
      });
    }
    for (uint32_t j = 0; j < out_side.nodes.size(); ++j) {
      out_index_[out_side.nodes[j]] = UINT32_MAX;
      out_mask_.Clear(out_side.nodes[j]);
    }
    return cg;
  }

 private:
  std::vector<uint32_t> out_index_;
  DynamicBitset out_mask_;
};

/// Priority-queue entry for the lazy candidate queue. The comparison is a
/// strict total order (each node has at most one live entry, so the
/// (priority, node) keys are distinct): ties on priority break toward the
/// smaller node id. This makes the pop sequence a function of the queue
/// *contents* alone — independent of heap layout, and therefore of how
/// the speculation stage pops and re-pushes the frontier.
struct Candidate {
  double priority;
  NodeId node;
  bool operator<(const Candidate& other) const {
    if (priority != other.priority) return priority < other.priority;
    return node > other.node;  // max-heap: equal priorities pop low id first
  }
};

/// Closed-form initial density for the plain mode: the initial center
/// graph is complete bipartite over (a+1, d+1) vertices minus the (w,w)
/// pair, and is its own densest subgraph.
double PlainInitialPriority(uint64_t a, uint64_t d) {
  uint64_t edges = (a + 1) * (d + 1) - 1;
  if (edges == 0) return 0.0;
  return static_cast<double>(edges) / static_cast<double>(a + d + 2);
}

/// Sampled upper-bound priority for the distance mode (Sec 5.2).
double DistanceInitialPriority(const DistanceClosure& dc, NodeId w,
                               uint32_t max_samples, double confidence,
                               Rng* rng) {
  const auto& anc = dc.ReverseRow(w);
  const auto& desc = dc.Row(w);
  uint64_t a = anc.size();
  uint64_t d = desc.size();
  uint64_t candidates = (a + 1) * (d + 1) - 1;
  if (candidates == 0) return 0.0;

  // Edges to/from w itself always satisfy the shortest-path condition, so
  // sample only the a*d interior pairs and add the a + d guaranteed edges.
  uint64_t interior = a * d;
  uint64_t present = 0;
  uint64_t samples = std::min<uint64_t>(interior, max_samples);
  for (uint64_t s = 0; s < samples; ++s) {
    const DistConnection& cu = anc[rng->NextBounded(a)];
    const DistConnection& cv = desc[rng->NextBounded(d)];
    if (cu.node == cv.node) continue;  // cyclic anc∩desc member: not a pair
    auto duv = dc.Dist(cu.node, cv.node);
    if (duv && *duv == cu.dist + cv.dist) ++present;
  }
  double upper_fraction = 1.0;
  if (samples > 0) {
    upper_fraction =
        BinomialConfidenceInterval(present, samples, confidence).upper;
  } else if (interior == 0) {
    upper_fraction = 0.0;
  }
  double est_edges = upper_fraction * static_cast<double>(interior) +
                     static_cast<double>(a + d);
  // Max density of any graph with E edges is sqrt(E)/2 (balanced complete
  // bipartite), so this is a safe upper bound with probability >= 0.99.
  return std::sqrt(est_edges) / 2.0;
}

/// Applies center w with chosen sides: adds labels and removes covered
/// pairs. Returns the number of pairs covered.
uint64_t ApplyCenter(NodeId w, const Side& in_side, const Side& out_side,
                     const std::vector<uint32_t>& in_chosen,
                     const std::vector<uint32_t>& out_chosen,
                     const CenterEligibility& elig, bool with_distance,
                     UncoveredSet* uncovered, TwoHopCover* cover) {
  for (uint32_t i : in_chosen) {
    cover->AddOut(in_side.nodes[i], w, in_side.dists[i]);
  }
  for (uint32_t j : out_chosen) {
    cover->AddIn(out_side.nodes[j], w, out_side.dists[j]);
  }

  uint64_t covered = 0;
  if (!with_distance) {
    DynamicBitset out_mask;
    for (uint32_t j : out_chosen) out_mask.Set(out_side.nodes[j]);
    for (uint32_t i : in_chosen) {
      covered += uncovered->RemoveRowSubset(in_side.nodes[i], out_mask);
    }
  } else {
    for (uint32_t i : in_chosen) {
      NodeId u = in_side.nodes[i];
      for (uint32_t j : out_chosen) {
        NodeId v = out_side.nodes[j];
        if (u == v || !uncovered->Test(u, v)) continue;
        if (!elig.Eligible(u, w, v, in_side.dists[i], out_side.dists[j])) {
          continue;
        }
        uncovered->Remove(u, v);
        ++covered;
      }
    }
  }
  return covered;
}

/// Per-worker scratch for candidate evaluation: sides and the
/// center-graph builder's index map/mask are reused across evaluations so
/// the hot loop stays allocation-light, and owning one per worker makes
/// the speculation stage share nothing but read-only state.
struct EvalScratch {
  explicit EvalScratch(size_t num_nodes) : cg_builder(num_nodes) {}
  Side in_side;
  Side out_side;
  CenterGraphBuilder cg_builder;
};

/// A candidate's densest-subgraph evaluation, stamped with the version of
/// the uncovered set it was computed against. `consumed` distinguishes
/// speculative work that paid off from work a commit threw away.
struct CachedEval {
  uint64_t version = 0;  // 0 = never evaluated
  bool consumed = false;
  DensestSubgraph ds;
};

/// The staged cover-construction pipeline (see builder.h for the stage
/// overview and the determinism argument). One instance per build; the
/// pool (if any) lives as long as the pipeline.
class CoverBuildPipeline {
 public:
  CoverBuildPipeline(const TransitiveClosure& tc, const DistanceClosure* dc,
                     const CoverBuildOptions& options, CoverBuildStats* stats)
      : tc_(tc),
        dc_(dc),
        options_(options),
        stats_(stats),
        n_(tc.NumNodes()),
        cover_(n_),
        uncovered_(tc),
        elig_(dc, options.with_distance) {
    if (options_.num_threads > 1) {
      pool_ = std::make_unique<ThreadPool>(options_.num_threads);
    }
    size_t workers = pool_ ? pool_->NumWorkers() : 1;
    scratch_.reserve(workers);
    for (size_t i = 0; i < workers; ++i) scratch_.emplace_back(n_);
    batch_limit_ = options_.speculation_batch > 0 ? options_.speculation_batch
                                                  : workers;
  }

  Result<TwoHopCover> Run() {
    stats_->initial_connections = uncovered_.count();
    Preselect();
    HOPI_RETURN_NOT_OK(SeedPriorities());
    HOPI_RETURN_NOT_OK(GreedyLoop());
    return std::move(cover_);
  }

 private:
  // --- Stage 0: center preselection (Sec 4.2), sequential ---
  void Preselect() {
    EvalScratch& s = scratch_[0];
    for (NodeId w : options_.preselect_centers) {
      if (uncovered_.count() == 0) break;
      assert(w < n_);
      BuildSides(tc_, dc_, options_.with_distance, w, &s.in_side,
                 &s.out_side);
      // Use only nodes that still have an uncovered pair through w — the
      // point of preselection is fewer redundant entries, not more.
      std::vector<uint32_t> in_chosen, out_chosen;
      BipartiteGraph cg =
          s.cg_builder.Build(uncovered_, elig_, options_.with_distance, w,
                             s.in_side, s.out_side);
      for (uint32_t i = 0; i < cg.NumIn(); ++i) {
        if (!cg.InAdj(i).empty()) in_chosen.push_back(i);
      }
      for (uint32_t j = 0; j < cg.NumOut(); ++j) {
        if (!cg.OutAdj(j).empty()) out_chosen.push_back(j);
      }
      if (in_chosen.empty()) continue;
      stats_->preselect_covered +=
          ApplyCenter(w, s.in_side, s.out_side, in_chosen, out_chosen, elig_,
                      options_.with_distance, &uncovered_, &cover_);
    }
  }

  // --- Stage 1: parallel priority seeding ---
  // Each node's initial priority is a pure function of the closure and,
  // in distance mode, its own forked random stream — so the parallel and
  // sequential passes produce the same priorities bit for bit.
  Status SeedPriorities() {
    std::vector<double> priorities(n_, 0.0);
    const Rng base(options_.sample_seed);
    auto seed_one = [&](size_t w) {
      if (options_.with_distance) {
        Rng node_rng = base.Fork(w);
        priorities[w] = DistanceInitialPriority(
            *dc_, static_cast<NodeId>(w), options_.max_density_samples,
            options_.density_confidence, &node_rng);
      } else {
        priorities[w] = PlainInitialPriority(
            tc_.AncestorsRow(static_cast<NodeId>(w)).Count(),
            tc_.DescendantsRow(static_cast<NodeId>(w)).Count());
      }
      return Status::OK();
    };
    if (pool_) {
      HOPI_RETURN_NOT_OK(pool_->ParallelFor(0, n_, seed_one));
    } else {
      for (size_t w = 0; w < n_; ++w) {
        Status s = seed_one(w);
        assert(s.ok());
        (void)s;
      }
    }
    for (NodeId w = 0; w < n_; ++w) {
      if (priorities[w] > 0.0) queue_.push({priorities[w], w});
    }
    return Status::OK();
  }

  // --- Stage 2+3: speculative evaluation + sequential commits ---
  Status GreedyLoop() {
    constexpr double kEps = 1e-9;
    cache_.assign(n_, CachedEval{});
    while (uncovered_.count() > 0) {
      if (queue_.empty()) {
        return Status::Internal(
            "candidate queue drained with uncovered connections left");
      }
      if (cache_[queue_.top().node].version != version_) {
        HOPI_RETURN_NOT_OK(EvaluateFrontier());
      }
      Candidate cand = queue_.top();
      queue_.pop();
      NodeId w = cand.node;
      CachedEval& eval = cache_[w];
      assert(eval.version == version_);
      eval.consumed = true;
      const DensestSubgraph& ds = eval.ds;

      if (ds.density <= 0.0) {
        eval.ds = DensestSubgraph();  // w is dropped for good; free its eval
        continue;
      }
      if (ds.density + kEps < cand.priority) {
        // Stale: priority dropped since the estimate. Reinsert and retry.
        queue_.push({ds.density, w});
        ++stats_->queue_reinsertions;
        continue;
      }

      // Commit. The popped candidate's evaluation is exact: the uncovered
      // set has not changed since version_ was stamped. Sides are
      // rebuilt (pure in w, O(|Anc|+|Desc|)) rather than cached — the
      // chosen vertex indices refer to their deterministic order.
      EvalScratch& s = scratch_[0];
      BuildSides(tc_, dc_, options_.with_distance, w, &s.in_side,
                 &s.out_side);
      uint64_t covered =
          ApplyCenter(w, s.in_side, s.out_side, ds.in_vertices,
                      ds.out_vertices, elig_, options_.with_distance,
                      &uncovered_, &cover_);
      assert(covered > 0);
      (void)covered;
      ++stats_->centers_chosen;
      ++version_;  // every outstanding speculative evaluation is now stale
      // w may still be useful for its remaining uncovered pairs; its
      // density can only have decreased, so this is a valid upper bound.
      queue_.push({ds.density, w});
      // Everything evaluated against the pre-commit snapshot is dead now
      // (including w's own result, consumed above) — release the vertex
      // lists so cache memory stays bounded by one snapshot's frontier
      // activity instead of growing with every node ever evaluated. The
      // version/consumed flags survive for the waste accounting.
      for (NodeId evaluated : current_version_evals_) {
        cache_[evaluated].ds = DensestSubgraph();
      }
      current_version_evals_.clear();
    }
    // The final commit staled the whole outstanding frontier; those
    // evaluations will never be consumed, so account them now (in-loop
    // waste counting only sees entries that get re-evaluated).
    for (const CachedEval& e : cache_) {
      if (e.version != 0 && e.version != version_ && !e.consumed) {
        ++stats_->speculative_wasted;
      }
    }
    return Status::OK();
  }

  /// Pops the top-K frontier, evaluates every candidate without a
  /// current-version cache entry in parallel against the (read-only)
  /// uncovered set, and pushes the frontier back unchanged — the queue
  /// contents, and with them the deterministic pop order, are exactly as
  /// before the speculation.
  Status EvaluateFrontier() {
    batch_.clear();
    eval_nodes_.clear();
    while (batch_.size() < batch_limit_ && !queue_.empty()) {
      Candidate c = queue_.top();
      queue_.pop();
      batch_.push_back(c);
      CachedEval& e = cache_[c.node];
      if (e.version == version_) continue;  // still fresh from a prior round
      if (e.version != 0 && !e.consumed) ++stats_->speculative_wasted;
      eval_nodes_.push_back(c.node);
    }
    // The frontier head always needs evaluation (that is why we are
    // here); everything beyond it is speculation.
    assert(!eval_nodes_.empty());
    stats_->densest_recomputations += eval_nodes_.size();
    stats_->speculative_evaluations += eval_nodes_.size() - 1;

    auto eval_one = [&](size_t idx, size_t worker) {
      NodeId w = eval_nodes_[idx];
      EvalScratch& s = scratch_[worker];
      BuildSides(tc_, dc_, options_.with_distance, w, &s.in_side,
                 &s.out_side);
      BipartiteGraph cg =
          s.cg_builder.Build(uncovered_, elig_, options_.with_distance, w,
                             s.in_side, s.out_side);
      CachedEval& e = cache_[w];
      e.ds = ApproxDensestSubgraph(cg);
      e.version = version_;
      e.consumed = false;
      return Status::OK();
    };
    current_version_evals_.insert(current_version_evals_.end(),
                                  eval_nodes_.begin(), eval_nodes_.end());
    Status status = Status::OK();
    if (pool_ && eval_nodes_.size() > 1) {
      status = pool_->ParallelFor(0, eval_nodes_.size(), eval_one);
    } else {
      for (size_t idx = 0; idx < eval_nodes_.size(); ++idx) {
        Status s = eval_one(idx, 0);
        assert(s.ok());
        (void)s;
      }
    }
    for (const Candidate& c : batch_) queue_.push(c);
    return status;
  }

  const TransitiveClosure& tc_;
  const DistanceClosure* dc_;
  const CoverBuildOptions& options_;
  CoverBuildStats* stats_;
  const size_t n_;

  TwoHopCover cover_;
  UncoveredSet uncovered_;
  CenterEligibility elig_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<EvalScratch> scratch_;
  size_t batch_limit_ = 1;

  std::priority_queue<Candidate> queue_;
  std::vector<CachedEval> cache_;
  uint64_t version_ = 1;  // bumped per commit; cache entries must match
  std::vector<Candidate> batch_;     // frontier gathered per round
  std::vector<NodeId> eval_nodes_;   // frontier members needing evaluation
  std::vector<NodeId> current_version_evals_;  // evaluated since the last
                                               // commit; freed by the next
};

}  // namespace

Result<TwoHopCover> BuildCoverFromClosure(const TransitiveClosure& tc,
                                          const DistanceClosure* dc,
                                          const CoverBuildOptions& options,
                                          CoverBuildStats* stats) {
  if (options.with_distance && dc == nullptr) {
    return Status::InvalidArgument(
        "distance-aware build requires a DistanceClosure");
  }
  CoverBuildStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  CoverBuildPipeline pipeline(tc, dc, options, stats);
  return pipeline.Run();
}

Result<TwoHopCover> BuildCover(const Digraph& g,
                               const CoverBuildOptions& options,
                               CoverBuildStats* stats) {
  auto tc = TransitiveClosure::Build(g);
  if (!tc.ok()) return tc.status();
  if (options.with_distance) {
    DistanceClosure dc = DistanceClosure::Build(g);
    return BuildCoverFromClosure(*tc, &dc, options, stats);
  }
  return BuildCoverFromClosure(*tc, nullptr, options, stats);
}

Status ValidateCover(const TwoHopCover& cover, const Digraph& g,
                     bool check_distances) {
  if (cover.NumNodes() < g.NumNodes()) {
    return Status::Internal("cover smaller than graph: " +
                            std::to_string(cover.NumNodes()) + " vs " +
                            std::to_string(g.NumNodes()));
  }
  DistanceClosure dc = DistanceClosure::Build(g);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    // Completeness + distance correctness over real connections.
    for (const DistConnection& c : dc.Row(u)) {
      if (!cover.IsConnected(u, c.node)) {
        return Status::Internal("connection (" + std::to_string(u) + "," +
                                std::to_string(c.node) + ") not covered");
      }
      if (check_distances) {
        auto d = cover.Distance(u, c.node);
        if (!d || *d != c.dist) {
          return Status::Internal(
              "distance mismatch for (" + std::to_string(u) + "," +
              std::to_string(c.node) + "): cover says " +
              (d ? std::to_string(*d) : "none") + ", graph says " +
              std::to_string(c.dist));
        }
      }
    }
    // Soundness: cover must not claim connections the graph lacks.
    size_t expected = dc.Row(u).size();
    size_t claimed = 0;
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      if (v != u && cover.IsConnected(u, v)) ++claimed;
    }
    if (claimed != expected) {
      return Status::Internal("node " + std::to_string(u) + " claims " +
                              std::to_string(claimed) + " descendants, graph has " +
                              std::to_string(expected));
    }
  }
  return Status::OK();
}

}  // namespace hopi::twohop
