#include "twohop/builder.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>

#include "graph/bitset.h"
#include "graph/traversal.h"
#include "twohop/center_graph.h"
#include "util/rng.h"
#include "util/stats.h"

namespace hopi::twohop {

namespace {

/// The set T' of not-yet-covered connections, as per-source bitset rows.
class UncoveredSet {
 public:
  explicit UncoveredSet(const TransitiveClosure& tc) {
    rows_.reserve(tc.NumNodes());
    for (NodeId u = 0; u < tc.NumNodes(); ++u) {
      rows_.push_back(tc.DescendantsRow(u));  // copy
      count_ += rows_.back().Count();
    }
  }

  uint64_t count() const { return count_; }
  bool Test(NodeId u, NodeId v) const { return rows_[u].Test(v); }

  void Remove(NodeId u, NodeId v) {
    if (rows_[u].Clear(v)) --count_;
  }

  /// Removes all uncovered pairs (u, v) with v in `targets`; returns the
  /// number removed. (Plain mode bulk removal.)
  uint64_t RemoveRowSubset(NodeId u, const DynamicBitset& targets) {
    uint64_t removed = rows_[u].SubtractWith(targets);
    count_ -= removed;
    return removed;
  }

  const DynamicBitset& Row(NodeId u) const { return rows_[u]; }

 private:
  std::vector<DynamicBitset> rows_;
  uint64_t count_ = 0;
};

/// Shortest-path test: may w be the center for (u, v)? (Sec 5.2.)
/// In plain mode the answer is always yes for connected triples.
class CenterEligibility {
 public:
  CenterEligibility(const DistanceClosure* dc, bool with_distance)
      : dc_(dc), with_distance_(with_distance) {}

  /// Precondition: u ->* w ->* v all hold (w fixed by the caller; only
  /// its distances matter here).
  bool Eligible(NodeId u, NodeId w, NodeId v, uint32_t dist_uw,
                uint32_t dist_wv) const {
    (void)w;
    if (!with_distance_) return true;
    auto duv = dc_->Dist(u, v);
    assert(duv.has_value());
    return *duv == dist_uw + dist_wv;
  }

 private:
  const DistanceClosure* dc_;
  bool with_distance_;
};

/// One side of a candidate's center graph: node ids plus distances to/from
/// the center (distances stay 0 in plain mode).
struct Side {
  std::vector<NodeId> nodes;
  std::vector<uint32_t> dists;
};

/// Builds the ancestor side (Anc(w) + w) and descendant side (Desc(w) + w)
/// of w's center graph.
void BuildSides(const TransitiveClosure& tc, const DistanceClosure* dc,
                bool with_distance, NodeId w, Side* in_side, Side* out_side) {
  in_side->nodes.clear();
  in_side->dists.clear();
  out_side->nodes.clear();
  out_side->dists.clear();
  if (with_distance) {
    for (const DistConnection& c : dc->ReverseRow(w)) {
      in_side->nodes.push_back(c.node);
      in_side->dists.push_back(c.dist);
    }
    in_side->nodes.push_back(w);
    in_side->dists.push_back(0);
    for (const DistConnection& c : dc->Row(w)) {
      out_side->nodes.push_back(c.node);
      out_side->dists.push_back(c.dist);
    }
    out_side->nodes.push_back(w);
    out_side->dists.push_back(0);
  } else {
    tc.AncestorsRow(w).ForEach([&](size_t u) {
      in_side->nodes.push_back(static_cast<NodeId>(u));
      in_side->dists.push_back(0);
    });
    in_side->nodes.push_back(w);
    in_side->dists.push_back(0);
    tc.DescendantsRow(w).ForEach([&](size_t v) {
      out_side->nodes.push_back(static_cast<NodeId>(v));
      out_side->dists.push_back(0);
    });
    out_side->nodes.push_back(w);
    out_side->dists.push_back(0);
  }
}

/// Constructs center graphs restricted to uncovered pairs. Holds scratch
/// buffers (an out-side index map and mask) so the hot loop is allocation
/// free and, in plain mode, word-parallel over the uncovered bitset rows.
class CenterGraphBuilder {
 public:
  explicit CenterGraphBuilder(size_t num_nodes)
      : out_index_(num_nodes, UINT32_MAX), out_mask_(num_nodes) {}

  BipartiteGraph Build(const UncoveredSet& uncovered,
                       const CenterEligibility& elig, bool with_distance,
                       NodeId w, const Side& in_side, const Side& out_side) {
    BipartiteGraph cg(static_cast<uint32_t>(in_side.nodes.size()),
                      static_cast<uint32_t>(out_side.nodes.size()));
    if (with_distance) {
      // Pairwise: every candidate pair needs the shortest-path test.
      for (uint32_t i = 0; i < in_side.nodes.size(); ++i) {
        NodeId u = in_side.nodes[i];
        const DynamicBitset& row = uncovered.Row(u);
        for (uint32_t j = 0; j < out_side.nodes.size(); ++j) {
          NodeId v = out_side.nodes[j];
          if (u == v || !row.Test(v)) continue;
          if (!elig.Eligible(u, w, v, in_side.dists[i], out_side.dists[j])) {
            continue;
          }
          cg.AddEdge(i, j);
        }
      }
      return cg;
    }
    // Plain mode: intersect each ancestor's uncovered row with the
    // out-side mask; every surviving bit is an edge.
    for (uint32_t j = 0; j < out_side.nodes.size(); ++j) {
      out_index_[out_side.nodes[j]] = j;
      out_mask_.Set(out_side.nodes[j]);
    }
    for (uint32_t i = 0; i < in_side.nodes.size(); ++i) {
      NodeId u = in_side.nodes[i];
      uncovered.Row(u).ForEachIntersection(out_mask_, [&](size_t v) {
        if (static_cast<NodeId>(v) != u) {
          cg.AddEdge(i, out_index_[v]);
        }
      });
    }
    for (uint32_t j = 0; j < out_side.nodes.size(); ++j) {
      out_index_[out_side.nodes[j]] = UINT32_MAX;
      out_mask_.Clear(out_side.nodes[j]);
    }
    return cg;
  }

 private:
  std::vector<uint32_t> out_index_;
  DynamicBitset out_mask_;
};

/// Priority-queue entry for the lazy candidate queue.
struct Candidate {
  double priority;
  NodeId node;
  bool operator<(const Candidate& other) const {
    return priority < other.priority;  // max-heap
  }
};

/// Closed-form initial density for the plain mode: the initial center
/// graph is complete bipartite over (a+1, d+1) vertices minus the (w,w)
/// pair, and is its own densest subgraph.
double PlainInitialPriority(uint64_t a, uint64_t d) {
  uint64_t edges = (a + 1) * (d + 1) - 1;
  if (edges == 0) return 0.0;
  return static_cast<double>(edges) / static_cast<double>(a + d + 2);
}

/// Sampled upper-bound priority for the distance mode (Sec 5.2).
double DistanceInitialPriority(const DistanceClosure& dc, NodeId w,
                               uint32_t max_samples, double confidence,
                               Rng* rng) {
  const auto& anc = dc.ReverseRow(w);
  const auto& desc = dc.Row(w);
  uint64_t a = anc.size();
  uint64_t d = desc.size();
  uint64_t candidates = (a + 1) * (d + 1) - 1;
  if (candidates == 0) return 0.0;

  // Edges to/from w itself always satisfy the shortest-path condition, so
  // sample only the a*d interior pairs and add the a + d guaranteed edges.
  uint64_t interior = a * d;
  uint64_t present = 0;
  uint64_t samples = std::min<uint64_t>(interior, max_samples);
  for (uint64_t s = 0; s < samples; ++s) {
    const DistConnection& cu = anc[rng->NextBounded(a)];
    const DistConnection& cv = desc[rng->NextBounded(d)];
    if (cu.node == cv.node) continue;  // cyclic anc∩desc member: not a pair
    auto duv = dc.Dist(cu.node, cv.node);
    if (duv && *duv == cu.dist + cv.dist) ++present;
  }
  double upper_fraction = 1.0;
  if (samples > 0) {
    upper_fraction =
        BinomialConfidenceInterval(present, samples, confidence).upper;
  } else if (interior == 0) {
    upper_fraction = 0.0;
  }
  double est_edges = upper_fraction * static_cast<double>(interior) +
                     static_cast<double>(a + d);
  // Max density of any graph with E edges is sqrt(E)/2 (balanced complete
  // bipartite), so this is a safe upper bound with probability >= 0.99.
  return std::sqrt(est_edges) / 2.0;
}

/// Applies center w with chosen sides: adds labels and removes covered
/// pairs. Returns the number of pairs covered.
uint64_t ApplyCenter(NodeId w, const Side& in_side, const Side& out_side,
                     const std::vector<uint32_t>& in_chosen,
                     const std::vector<uint32_t>& out_chosen,
                     const CenterEligibility& elig, bool with_distance,
                     UncoveredSet* uncovered, TwoHopCover* cover) {
  for (uint32_t i : in_chosen) {
    cover->AddOut(in_side.nodes[i], w, in_side.dists[i]);
  }
  for (uint32_t j : out_chosen) {
    cover->AddIn(out_side.nodes[j], w, out_side.dists[j]);
  }

  uint64_t covered = 0;
  if (!with_distance) {
    DynamicBitset out_mask;
    for (uint32_t j : out_chosen) out_mask.Set(out_side.nodes[j]);
    for (uint32_t i : in_chosen) {
      covered += uncovered->RemoveRowSubset(in_side.nodes[i], out_mask);
    }
  } else {
    for (uint32_t i : in_chosen) {
      NodeId u = in_side.nodes[i];
      for (uint32_t j : out_chosen) {
        NodeId v = out_side.nodes[j];
        if (u == v || !uncovered->Test(u, v)) continue;
        if (!elig.Eligible(u, w, v, in_side.dists[i], out_side.dists[j])) {
          continue;
        }
        uncovered->Remove(u, v);
        ++covered;
      }
    }
  }
  return covered;
}

}  // namespace

Result<TwoHopCover> BuildCoverFromClosure(const TransitiveClosure& tc,
                                          const DistanceClosure* dc,
                                          const CoverBuildOptions& options,
                                          CoverBuildStats* stats) {
  if (options.with_distance && dc == nullptr) {
    return Status::InvalidArgument(
        "distance-aware build requires a DistanceClosure");
  }
  CoverBuildStats local_stats;
  if (stats == nullptr) stats = &local_stats;

  const size_t n = tc.NumNodes();
  TwoHopCover cover(n);
  UncoveredSet uncovered(tc);
  stats->initial_connections = uncovered.count();
  CenterEligibility elig(dc, options.with_distance);
  Rng rng(options.sample_seed);

  Side in_side, out_side;
  CenterGraphBuilder cg_builder(n);

  // --- Center preselection (Sec 4.2) ---
  for (NodeId w : options.preselect_centers) {
    if (uncovered.count() == 0) break;
    assert(w < n);
    BuildSides(tc, dc, options.with_distance, w, &in_side, &out_side);
    // Use only nodes that still have an uncovered pair through w — the
    // point of preselection is fewer redundant entries, not more.
    std::vector<uint32_t> in_chosen, out_chosen;
    BipartiteGraph cg = cg_builder.Build(uncovered, elig,
                                         options.with_distance, w, in_side,
                                         out_side);
    for (uint32_t i = 0; i < cg.NumIn(); ++i) {
      if (!cg.InAdj(i).empty()) in_chosen.push_back(i);
    }
    for (uint32_t j = 0; j < cg.NumOut(); ++j) {
      if (!cg.OutAdj(j).empty()) out_chosen.push_back(j);
    }
    if (in_chosen.empty()) continue;
    stats->preselect_covered +=
        ApplyCenter(w, in_side, out_side, in_chosen, out_chosen, elig,
                    options.with_distance, &uncovered, &cover);
  }

  // --- Greedy loop with the lazy priority queue (Sec 3.2) ---
  std::priority_queue<Candidate> queue;
  for (NodeId w = 0; w < n; ++w) {
    double priority;
    if (options.with_distance) {
      priority = DistanceInitialPriority(
          *dc, w, options.max_density_samples, options.density_confidence,
          &rng);
    } else {
      priority = PlainInitialPriority(tc.AncestorsRow(w).Count(),
                                      tc.DescendantsRow(w).Count());
    }
    if (priority > 0.0) queue.push({priority, w});
  }

  constexpr double kEps = 1e-9;
  while (uncovered.count() > 0) {
    if (queue.empty()) {
      return Status::Internal(
          "candidate queue drained with uncovered connections left");
    }
    Candidate cand = queue.top();
    queue.pop();
    NodeId w = cand.node;

    BuildSides(tc, dc, options.with_distance, w, &in_side, &out_side);
    BipartiteGraph cg = cg_builder.Build(uncovered, elig,
                                         options.with_distance, w, in_side,
                                         out_side);
    ++stats->densest_recomputations;
    DensestSubgraph ds = ApproxDensestSubgraph(cg);

    if (ds.density <= 0.0) continue;  // nothing uncovered through w anymore
    if (ds.density + kEps < cand.priority) {
      // Stale: priority dropped since the estimate. Reinsert and retry.
      queue.push({ds.density, w});
      ++stats->queue_reinsertions;
      continue;
    }

    uint64_t covered =
        ApplyCenter(w, in_side, out_side, ds.in_vertices, ds.out_vertices,
                    elig, options.with_distance, &uncovered, &cover);
    assert(covered > 0);
    (void)covered;
    ++stats->centers_chosen;
    // w may still be useful for its remaining uncovered pairs; its density
    // can only have decreased, so the current value is a valid upper bound.
    queue.push({ds.density, w});
  }
  return cover;
}

Result<TwoHopCover> BuildCover(const Digraph& g,
                               const CoverBuildOptions& options,
                               CoverBuildStats* stats) {
  auto tc = TransitiveClosure::Build(g);
  if (!tc.ok()) return tc.status();
  if (options.with_distance) {
    DistanceClosure dc = DistanceClosure::Build(g);
    return BuildCoverFromClosure(*tc, &dc, options, stats);
  }
  return BuildCoverFromClosure(*tc, nullptr, options, stats);
}

Status ValidateCover(const TwoHopCover& cover, const Digraph& g,
                     bool check_distances) {
  if (cover.NumNodes() < g.NumNodes()) {
    return Status::Internal("cover smaller than graph: " +
                            std::to_string(cover.NumNodes()) + " vs " +
                            std::to_string(g.NumNodes()));
  }
  DistanceClosure dc = DistanceClosure::Build(g);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    // Completeness + distance correctness over real connections.
    for (const DistConnection& c : dc.Row(u)) {
      if (!cover.IsConnected(u, c.node)) {
        return Status::Internal("connection (" + std::to_string(u) + "," +
                                std::to_string(c.node) + ") not covered");
      }
      if (check_distances) {
        auto d = cover.Distance(u, c.node);
        if (!d || *d != c.dist) {
          return Status::Internal(
              "distance mismatch for (" + std::to_string(u) + "," +
              std::to_string(c.node) + "): cover says " +
              (d ? std::to_string(*d) : "none") + ", graph says " +
              std::to_string(c.dist));
        }
      }
    }
    // Soundness: cover must not claim connections the graph lacks.
    size_t expected = dc.Row(u).size();
    size_t claimed = 0;
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      if (v != u && cover.IsConnected(u, v)) ++claimed;
    }
    if (claimed != expected) {
      return Status::Internal("node " + std::to_string(u) + " claims " +
                              std::to_string(claimed) + " descendants, graph has " +
                              std::to_string(expected));
    }
  }
  return Status::OK();
}

}  // namespace hopi::twohop
