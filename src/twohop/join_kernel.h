// Runtime-dispatched join kernels for the 2-hop label intersection —
// the one function every reachability probe in the tree bottoms out
// in.
//
// Layering (ISSUE 9 / ROADMAP "as fast as the hardware allows"):
//
//   kernels    — a scalar two-pointer baseline, SSE2/AVX2 block-compare
//                intersection over packed uint32 center columns, and a
//                galloping (exponential-search) kernel for skewed
//                |Lout|/|Lin| ratios. All kernels preserve
//                JoinLabelRanges' semantics bit-for-bit: implicit self
//                entries, min-plus distance accumulation (with the
//                same uint32 wraparound on dist sums), first-match
//                early-out when distances are not wanted.
//   layout     — kernels run over twohop::JoinView (join_view.h):
//                packed SoA columns where the producer keeps them
//                (TwoHopCover mirrors, DecodedBlock packed arrays),
//                strided AoS walks everywhere else.
//   prefilter  — each view carries an 8-byte LabelSummary; a probe
//                whose summaries prove disjointness (including the
//                self-entry memberships) is rejected in O(1) before
//                any kernel runs.
//
// Dispatch: JoinViews picks a kernel from (a) the explicit `kernel`
// argument, else (b) the process-wide force (HOPI_JOIN_KERNEL env var
// or SetForcedJoinKernel), else (c) a size-ratio heuristic over the
// CPU features util::CpuInfo() detected. A kernel the host cannot run
// (missing ISA, or SIMD requested for strided views) degrades to the
// best kernel that can — forcing "avx2" on an SSE-only box runs SSE2,
// then scalar. Forcing is how the CI matrix pins each implementation
// without special test builds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "graph/digraph.h"
#include "twohop/cover.h"
#include "twohop/join_view.h"

namespace hopi::twohop {

enum class JoinKernel : uint8_t {
  kAuto = 0,   // heuristic dispatch (the default everywhere)
  kScalar,     // two-pointer merge, any stride
  kGallop,     // exponential search from the smaller side, any stride
  kSSE2,       // 4-wide block-compare, packed views only
  kAVX2,       // 8-wide block-compare, packed views only
};

/// "auto", "scalar", "gallop", "sse2", "avx2" (as HOPI_JOIN_KERNEL and
/// the bench --kernel flag spell them); nullopt for anything else.
std::optional<JoinKernel> ParseJoinKernel(std::string_view name);
std::string_view JoinKernelName(JoinKernel kernel);

/// Process-wide kernel force. Defaults to the HOPI_JOIN_KERNEL
/// environment variable (read once, unparsable values warn and mean
/// auto); SetForcedJoinKernel overrides it from code (tests, the bench
/// --kernel flag). kAuto restores heuristic dispatch. The setter is an
/// atomic store — safe to call between batches, though tests should
/// set it before spawning probe threads.
JoinKernel ForcedJoinKernel();
void SetForcedJoinKernel(JoinKernel kernel);

/// True when this process can execute `kernel` on packed views (ISA
/// present and the variant was compiled in). kAuto/kScalar/kGallop are
/// always true.
bool JoinKernelSupported(JoinKernel kernel);

/// Every kernel JoinKernelSupported() admits, scalar first — the
/// rotation order for parity tests and the bench sweep.
std::vector<JoinKernel> SupportedJoinKernels();

/// The kernel JoinViews would actually run for this shape: `requested`
/// (or the process force when kAuto) clamped to ISA/stride support,
/// with the size-ratio heuristic deciding genuine autos. Exposed so
/// tests can pin the dispatch rules and the bench can label its rows.
JoinKernel ResolveJoinKernel(JoinKernel requested, size_t lout_n,
                             size_t lin_n, bool packed);

/// The vectorized twin of JoinLabelRanges (twohop/cover.h): same
/// implicit-self-entry rule, same min-plus distance semantics, same
/// results bit-for-bit — over JoinViews, through the prefilter and the
/// dispatched kernels.
LabelJoinResult JoinViews(NodeId u, NodeId v, const JoinView& lout,
                          const JoinView& lin, bool want_distance,
                          JoinKernel kernel = JoinKernel::kAuto);

/// Sorted-set intersection of two ascending unique id sequences,
/// galloping when the sizes are skewed (the query/path_query frontier
/// filter). Returns the common ids, ascending.
std::vector<uint32_t> IntersectSorted(std::span<const uint32_t> a,
                                      std::span<const uint32_t> b,
                                      JoinKernel kernel = JoinKernel::kAuto);

}  // namespace hopi::twohop
