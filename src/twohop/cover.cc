#include "twohop/cover.h"

#include <algorithm>
#include <cassert>

#include "twohop/join_kernel.h"

namespace hopi::twohop {

void TwoHopCover::EnsureNodes(size_t n) {
  if (in_.size() < n) {
    in_.resize(n);
    out_.resize(n);
    in_soa_.resize(n);
    out_soa_.resize(n);
  }
}

void TwoHopCover::SoAMirror::Rebuild(const std::vector<LabelEntry>& entries) {
  centers.resize(entries.size());
  dists.resize(entries.size());
  summary = LabelSummary::Empty();
  for (size_t i = 0; i < entries.size(); ++i) {
    centers[i] = entries[i].center;
    dists[i] = entries[i].dist;
    summary.Add(entries[i].center);
  }
}

bool TwoHopCover::InsertEntry(std::vector<LabelEntry>* label,
                              SoAMirror* mirror, NodeId center,
                              uint32_t dist) {
  auto it = std::lower_bound(label->begin(), label->end(), center,
                             [](const LabelEntry& e, NodeId c) {
                               return e.center < c;
                             });
  size_t pos = static_cast<size_t>(it - label->begin());
  if (it != label->end() && it->center == center) {
    it->dist = std::min(it->dist, dist);
    mirror->dists[pos] = it->dist;
    return false;
  }
  label->insert(it, {center, dist});
  mirror->centers.insert(mirror->centers.begin() + pos, center);
  mirror->dists.insert(mirror->dists.begin() + pos, dist);
  mirror->summary.Add(center);
  return true;
}

bool TwoHopCover::AddIn(NodeId v, NodeId center, uint32_t dist) {
  assert(v < in_.size());
  if (v == center) return false;  // implicit self entry
  if (InsertEntry(&in_[v], &in_soa_[v], center, dist)) {
    ++size_;
    return true;
  }
  return false;
}

bool TwoHopCover::AddOut(NodeId u, NodeId center, uint32_t dist) {
  assert(u < out_.size());
  if (u == center) return false;
  if (InsertEntry(&out_[u], &out_soa_[u], center, dist)) {
    ++size_;
    return true;
  }
  return false;
}

LabelJoinResult JoinLabels(NodeId u, NodeId v,
                           const std::vector<LabelEntry>& lout,
                           const std::vector<LabelEntry>& lin,
                           bool want_distance) {
  return JoinLabelRanges(u, v, lout.data(), lout.size(), lin.data(),
                         lin.size(), want_distance);
}

bool TwoHopCover::IsConnected(NodeId u, NodeId v) const {
  if (u == v) return true;
  return JoinViews(u, v, OutJoin(u), InJoin(v), /*want_distance=*/false)
      .connected;
}

std::optional<uint32_t> TwoHopCover::Distance(NodeId u, NodeId v) const {
  if (u == v) return 0;
  return JoinViews(u, v, OutJoin(u), InJoin(v), /*want_distance=*/true)
      .distance;
}

void TwoHopCover::UnionWith(const TwoHopCover& other) {
  EnsureNodes(other.NumNodes());
  for (NodeId v = 0; v < other.NumNodes(); ++v) {
    for (const LabelEntry& e : other.in_[v]) AddIn(v, e.center, e.dist);
    for (const LabelEntry& e : other.out_[v]) AddOut(v, e.center, e.dist);
  }
}

void TwoHopCover::ClearNode(NodeId v) {
  assert(v < in_.size());
  size_ -= in_[v].size() + out_[v].size();
  in_[v].clear();
  out_[v].clear();
  in_soa_[v] = SoAMirror{};
  out_soa_[v] = SoAMirror{};
}

void TwoHopCover::SetIn(NodeId v, std::vector<LabelEntry> entries) {
  assert(std::is_sorted(entries.begin(), entries.end(),
                        [](const LabelEntry& a, const LabelEntry& b) {
                          return a.center < b.center;
                        }));
  size_ -= in_[v].size();
  in_[v] = std::move(entries);
  size_ += in_[v].size();
  in_soa_[v].Rebuild(in_[v]);
}

void TwoHopCover::SetOut(NodeId u, std::vector<LabelEntry> entries) {
  assert(std::is_sorted(entries.begin(), entries.end(),
                        [](const LabelEntry& a, const LabelEntry& b) {
                          return a.center < b.center;
                        }));
  size_ -= out_[u].size();
  out_[u] = std::move(entries);
  size_ += out_[u].size();
  out_soa_[u].Rebuild(out_[u]);
}

bool TwoHopCover::MentionsCenter(NodeId center) const {
  auto mentions = [center](const std::vector<LabelEntry>& label) {
    auto it = std::lower_bound(label.begin(), label.end(), center,
                               [](const LabelEntry& e, NodeId c) {
                                 return e.center < c;
                               });
    return it != label.end() && it->center == center;
  };
  for (NodeId v = 0; v < in_.size(); ++v) {
    if (mentions(in_[v]) || mentions(out_[v])) return true;
  }
  return false;
}

}  // namespace hopi::twohop
