#include "twohop/cover.h"

#include <algorithm>
#include <cassert>

namespace hopi::twohop {

void TwoHopCover::EnsureNodes(size_t n) {
  if (in_.size() < n) {
    in_.resize(n);
    out_.resize(n);
  }
}

bool TwoHopCover::InsertEntry(std::vector<LabelEntry>* label, NodeId center,
                              uint32_t dist) {
  auto it = std::lower_bound(label->begin(), label->end(), center,
                             [](const LabelEntry& e, NodeId c) {
                               return e.center < c;
                             });
  if (it != label->end() && it->center == center) {
    it->dist = std::min(it->dist, dist);
    return false;
  }
  label->insert(it, {center, dist});
  return true;
}

bool TwoHopCover::AddIn(NodeId v, NodeId center, uint32_t dist) {
  assert(v < in_.size());
  if (v == center) return false;  // implicit self entry
  if (InsertEntry(&in_[v], center, dist)) {
    ++size_;
    return true;
  }
  return false;
}

bool TwoHopCover::AddOut(NodeId u, NodeId center, uint32_t dist) {
  assert(u < out_.size());
  if (u == center) return false;
  if (InsertEntry(&out_[u], center, dist)) {
    ++size_;
    return true;
  }
  return false;
}

bool TwoHopCover::IsConnected(NodeId u, NodeId v) const {
  if (u == v) return true;
  const auto& lout = out_[u];
  const auto& lin = in_[v];
  // Implicit self entries: u ∈ Lout(u), v ∈ Lin(v).
  // Center u: requires u ∈ Lin(v). Center v: requires v ∈ Lout(u).
  auto contains = [](const std::vector<LabelEntry>& label, NodeId c) {
    auto it = std::lower_bound(label.begin(), label.end(), c,
                               [](const LabelEntry& e, NodeId cc) {
                                 return e.center < cc;
                               });
    return it != label.end() && it->center == c;
  };
  if (contains(lin, u) || contains(lout, v)) return true;
  // Merge-intersect the explicit label sets.
  size_t i = 0, j = 0;
  while (i < lout.size() && j < lin.size()) {
    if (lout[i].center < lin[j].center) {
      ++i;
    } else if (lout[i].center > lin[j].center) {
      ++j;
    } else {
      return true;
    }
  }
  return false;
}

std::optional<uint32_t> TwoHopCover::Distance(NodeId u, NodeId v) const {
  if (u == v) return 0;
  const auto& lout = out_[u];
  const auto& lin = in_[v];
  std::optional<uint32_t> best;
  auto consider = [&best](uint32_t d) {
    if (!best || d < *best) best = d;
  };
  auto find = [](const std::vector<LabelEntry>& label,
                 NodeId c) -> const LabelEntry* {
    auto it = std::lower_bound(label.begin(), label.end(), c,
                               [](const LabelEntry& e, NodeId cc) {
                                 return e.center < cc;
                               });
    return it != label.end() && it->center == c ? &*it : nullptr;
  };
  // Center u (implicit in Lout(u) at distance 0).
  if (const LabelEntry* e = find(lin, u)) consider(e->dist);
  // Center v (implicit in Lin(v) at distance 0).
  if (const LabelEntry* e = find(lout, v)) consider(e->dist);
  size_t i = 0, j = 0;
  while (i < lout.size() && j < lin.size()) {
    if (lout[i].center < lin[j].center) {
      ++i;
    } else if (lout[i].center > lin[j].center) {
      ++j;
    } else {
      consider(lout[i].dist + lin[j].dist);
      ++i;
      ++j;
    }
  }
  return best;
}

void TwoHopCover::UnionWith(const TwoHopCover& other) {
  EnsureNodes(other.NumNodes());
  for (NodeId v = 0; v < other.NumNodes(); ++v) {
    for (const LabelEntry& e : other.in_[v]) AddIn(v, e.center, e.dist);
    for (const LabelEntry& e : other.out_[v]) AddOut(v, e.center, e.dist);
  }
}

void TwoHopCover::ClearNode(NodeId v) {
  assert(v < in_.size());
  size_ -= in_[v].size() + out_[v].size();
  in_[v].clear();
  out_[v].clear();
}

void TwoHopCover::SetIn(NodeId v, std::vector<LabelEntry> entries) {
  assert(std::is_sorted(entries.begin(), entries.end(),
                        [](const LabelEntry& a, const LabelEntry& b) {
                          return a.center < b.center;
                        }));
  size_ -= in_[v].size();
  in_[v] = std::move(entries);
  size_ += in_[v].size();
}

void TwoHopCover::SetOut(NodeId u, std::vector<LabelEntry> entries) {
  assert(std::is_sorted(entries.begin(), entries.end(),
                        [](const LabelEntry& a, const LabelEntry& b) {
                          return a.center < b.center;
                        }));
  size_ -= out_[u].size();
  out_[u] = std::move(entries);
  size_ += out_[u].size();
}

bool TwoHopCover::MentionsCenter(NodeId center) const {
  auto mentions = [center](const std::vector<LabelEntry>& label) {
    auto it = std::lower_bound(label.begin(), label.end(), center,
                               [](const LabelEntry& e, NodeId c) {
                                 return e.center < c;
                               });
    return it != label.end() && it->center == center;
  };
  for (NodeId v = 0; v < in_.size(); ++v) {
    if (mentions(in_[v]) || mentions(out_[v])) return true;
  }
  return false;
}

}  // namespace hopi::twohop
