#include "twohop/center_graph.h"

#include <algorithm>
#include <cassert>

namespace hopi::twohop {

DensestSubgraph ApproxDensestSubgraph(const BipartiteGraph& g) {
  const uint32_t n_in = g.NumIn();
  const uint32_t n_out = g.NumOut();
  const uint32_t n = n_in + n_out;  // unified vertex ids: out offset by n_in

  std::vector<uint32_t> degree(n, 0);
  for (uint32_t i = 0; i < n_in; ++i) {
    degree[i] = static_cast<uint32_t>(g.InAdj(i).size());
  }
  for (uint32_t j = 0; j < n_out; ++j) {
    degree[n_in + j] = static_cast<uint32_t>(g.OutAdj(j).size());
  }

  // Bucket queue over degrees; degree can only decrease, so a cursor that
  // moves up and resets downward yields overall O(V + E).
  uint32_t max_deg = 0;
  for (uint32_t d : degree) max_deg = std::max(max_deg, d);
  std::vector<std::vector<uint32_t>> buckets(max_deg + 1);
  std::vector<bool> removed(n, false);
  uint32_t live = 0;
  for (uint32_t v = 0; v < n; ++v) {
    if (degree[v] == 0) {
      removed[v] = true;  // isolated vertices are not part of CG_w
    } else {
      buckets[degree[v]].push_back(v);
      ++live;
    }
  }

  DensestSubgraph best;
  if (live == 0) return best;

  uint64_t edges = g.NumEdges();
  double best_density = -1.0;
  uint32_t best_step = 0;  // number of removals at the best snapshot

  std::vector<uint32_t> removal_order;
  removal_order.reserve(live);

  // Snapshot 0: the full graph.
  best_density = static_cast<double>(edges) / live;
  uint32_t steps = 0;

  uint32_t cursor = 1;
  std::vector<uint32_t> cur_degree = degree;  // mutated during peeling
  while (live > 0) {
    // Find a live vertex of minimum degree (lazy bucket entries are
    // skipped when their recorded degree is stale).
    uint32_t v = UINT32_MAX;
    while (cursor <= max_deg) {
      auto& bucket = buckets[cursor];
      while (!bucket.empty()) {
        uint32_t cand = bucket.back();
        if (removed[cand] || cur_degree[cand] != cursor) {
          bucket.pop_back();  // stale
          continue;
        }
        v = cand;
        bucket.pop_back();
        break;
      }
      if (v != UINT32_MAX) break;
      ++cursor;
    }
    assert(v != UINT32_MAX);

    removed[v] = true;
    removal_order.push_back(v);
    --live;
    ++steps;
    edges -= cur_degree[v];

    // Decrease neighbor degrees and requeue them.
    auto relax = [&](uint32_t u) {
      if (removed[u]) return;
      uint32_t nd = --cur_degree[u];
      if (nd == 0) {
        // Degree-0 vertices leave the graph (they cannot contribute
        // edges); removing them can only increase density of later
        // snapshots, so drop them silently.
        removed[u] = true;
        removal_order.push_back(u);
        --live;
        ++steps;
        return;
      }
      buckets[nd].push_back(u);
      if (nd < cursor) cursor = nd;
    };
    if (v < n_in) {
      for (uint32_t j : g.InAdj(v)) relax(n_in + j);
    } else {
      for (uint32_t i : g.OutAdj(v - n_in)) relax(i);
    }

    if (live > 0) {
      double density = static_cast<double>(edges) / live;
      if (density > best_density) {
        best_density = density;
        best_step = steps;
      }
    }
  }

  // Reconstruct the best snapshot: all vertices not removed within the
  // first `best_step` removals (and not isolated initially).
  std::vector<bool> in_best(n, false);
  for (uint32_t v = 0; v < n; ++v) {
    in_best[v] = degree[v] > 0;  // started live
  }
  for (uint32_t s = 0; s < best_step; ++s) in_best[removal_order[s]] = false;

  for (uint32_t i = 0; i < n_in; ++i) {
    if (in_best[i]) best.in_vertices.push_back(i);
  }
  for (uint32_t j = 0; j < n_out; ++j) {
    if (in_best[n_in + j]) best.out_vertices.push_back(j);
  }
  // Count edges inside the snapshot.
  for (uint32_t i : best.in_vertices) {
    for (uint32_t j : g.InAdj(i)) {
      if (in_best[n_in + j]) ++best.edges;
    }
  }
  size_t verts = best.in_vertices.size() + best.out_vertices.size();
  best.density = verts == 0 ? 0.0 : static_cast<double>(best.edges) / verts;
  return best;
}

}  // namespace hopi::twohop
