#include "twohop/reverse_index.h"

#include <algorithm>

namespace hopi::twohop {

IndexedCover::IndexedCover(TwoHopCover cover) : cover_(std::move(cover)) {
  RebuildReverseMaps();
}

void IndexedCover::RebuildReverseMaps() {
  size_t n = cover_.NumNodes();
  rin_.assign(n, {});
  rout_.assign(n, {});
  for (NodeId v = 0; v < n; ++v) {
    for (const LabelEntry& e : cover_.In(v)) rin_[e.center].push_back(v);
    for (const LabelEntry& e : cover_.Out(v)) rout_[e.center].push_back(v);
  }
}

void IndexedCover::EnsureNodes(size_t n) {
  cover_.EnsureNodes(n);
  if (rin_.size() < n) {
    rin_.resize(n);
    rout_.resize(n);
  }
}

bool IndexedCover::AddIn(NodeId v, NodeId center, uint32_t dist) {
  if (cover_.AddIn(v, center, dist)) {
    rin_[center].push_back(v);
    return true;
  }
  return false;
}

bool IndexedCover::AddOut(NodeId u, NodeId center, uint32_t dist) {
  if (cover_.AddOut(u, center, dist)) {
    rout_[center].push_back(u);
    return true;
  }
  return false;
}

std::vector<NodeId> IndexedCover::Ancestors(NodeId u) const {
  // a ->* u  iff  (Lout(a) ∪ {a}) ∩ (Lin(u) ∪ {u}) != ∅. So the ancestors
  // are the centers in Lin(u) themselves plus every node whose Lout
  // mentions one of those centers (or u).
  std::vector<NodeId> result;
  auto consider = [&result, u](NodeId a) {
    if (a != u) result.push_back(a);
  };
  for (const LabelEntry& e : cover_.In(u)) {
    consider(e.center);
    for (NodeId a : rout_[e.center]) consider(a);
  }
  for (NodeId a : rout_[u]) consider(a);
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

std::vector<NodeId> IndexedCover::Descendants(NodeId u) const {
  std::vector<NodeId> result;
  auto consider = [&result, u](NodeId d) {
    if (d != u) result.push_back(d);
  };
  for (const LabelEntry& e : cover_.Out(u)) {
    consider(e.center);
    for (NodeId d : rin_[e.center]) consider(d);
  }
  for (NodeId d : rin_[u]) consider(d);
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

}  // namespace hopi::twohop
