// Reverse (center -> labeled nodes) indexes over a 2-hop cover, plus
// ancestor/descendant enumeration.
//
// The cover answers "is u connected to v" directly, but enumerating all
// ancestors or descendants of a node needs the inverted view — this is
// exactly HOPI's *backward* database index (paper Sec 3.4: a second index
// on (INID, ID) / (OUTID, ID)). The joining and maintenance algorithms
// (Sec 3.3, 4.1, 6) all enumerate ancestors/descendants "in the current
// cover", so this index supports incremental additions in lockstep with
// the cover.
#pragma once

#include <cstddef>
#include <vector>

#include "twohop/cover.h"

namespace hopi::twohop {

/// A TwoHopCover paired with incrementally maintained reverse maps.
/// All label additions must go through this wrapper to stay in sync.
class IndexedCover {
 public:
  IndexedCover() = default;
  /// Takes ownership of `cover` and builds the reverse maps (O(|L|)).
  explicit IndexedCover(TwoHopCover cover);

  const TwoHopCover& cover() const { return cover_; }
  /// Mutable access for callers that rebuild the reverse maps afterwards
  /// (bulk deletion paths) — call RebuildReverseMaps() when done.
  TwoHopCover* mutable_cover() { return &cover_; }
  void RebuildReverseMaps();

  void EnsureNodes(size_t n);
  size_t NumNodes() const { return cover_.NumNodes(); }

  /// Synchronized label additions.
  bool AddIn(NodeId v, NodeId center, uint32_t dist = 0);
  bool AddOut(NodeId u, NodeId center, uint32_t dist = 0);

  /// Nodes whose Lin mentions `center` (strictly: center itself excluded).
  const std::vector<NodeId>& InMentions(NodeId center) const {
    return rin_[center];
  }
  /// Nodes whose Lout mentions `center`.
  const std::vector<NodeId>& OutMentions(NodeId center) const {
    return rout_[center];
  }

  /// All strict ancestors of u according to the cover (nodes a != u with
  /// a ->* u). Sorted ascending.
  std::vector<NodeId> Ancestors(NodeId u) const;

  /// All strict descendants of u. Sorted ascending.
  std::vector<NodeId> Descendants(NodeId u) const;

 private:
  TwoHopCover cover_;
  // center -> nodes that mention it; may contain duplicates of nodes only
  // after bulk rebuilds (never via AddIn/AddOut, which are idempotent
  // through the cover).
  std::vector<std::vector<NodeId>> rin_;
  std::vector<std::vector<NodeId>> rout_;
};

}  // namespace hopi::twohop
