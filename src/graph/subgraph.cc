#include "graph/subgraph.h"

namespace hopi {

InducedSubgraph BuildInducedSubgraph(const Digraph& g,
                                     const std::vector<NodeId>& nodes) {
  InducedSubgraph sub;
  sub.to_local.assign(g.NumNodes(), kInvalidNode);
  for (NodeId v : nodes) {
    if (sub.to_local[v] != kInvalidNode) continue;  // duplicate
    sub.to_local[v] = static_cast<NodeId>(sub.to_global.size());
    sub.to_global.push_back(v);
  }
  sub.graph = Digraph(sub.to_global.size());
  for (NodeId local_u = 0; local_u < sub.to_global.size(); ++local_u) {
    NodeId global_u = sub.to_global[local_u];
    for (NodeId global_v : g.OutNeighbors(global_u)) {
      NodeId local_v = sub.Local(global_v);
      if (local_v != kInvalidNode) sub.graph.AddEdge(local_u, local_v);
    }
  }
  return sub;
}

}  // namespace hopi
