#include "graph/traversal.h"

#include <algorithm>
#include <cassert>
#include <deque>

namespace hopi {

namespace {

std::vector<NodeId> BfsCollect(const Digraph& g,
                               const std::vector<NodeId>& sources,
                               bool follow_out) {
  std::vector<bool> seen(g.NumNodes(), false);
  std::deque<NodeId> queue;
  std::vector<NodeId> result;
  for (NodeId s : sources) {
    assert(s < g.NumNodes());
    if (!seen[s]) {
      seen[s] = true;
      queue.push_back(s);
      result.push_back(s);
    }
  }
  while (!queue.empty()) {
    NodeId v = queue.front();
    queue.pop_front();
    const auto& next = follow_out ? g.OutNeighbors(v) : g.InNeighbors(v);
    for (NodeId w : next) {
      if (!seen[w]) {
        seen[w] = true;
        queue.push_back(w);
        result.push_back(w);
      }
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace

std::vector<NodeId> ReachableFrom(const Digraph& g, NodeId source) {
  return BfsCollect(g, {source}, /*follow_out=*/true);
}

std::vector<NodeId> ReachingTo(const Digraph& g, NodeId target) {
  return BfsCollect(g, {target}, /*follow_out=*/false);
}

std::vector<NodeId> ReachableFromAll(const Digraph& g,
                                     const std::vector<NodeId>& sources) {
  return BfsCollect(g, sources, /*follow_out=*/true);
}

bool IsReachable(const Digraph& g, NodeId u, NodeId v) {
  if (u == v) return true;
  std::vector<bool> seen(g.NumNodes(), false);
  std::deque<NodeId> queue{u};
  seen[u] = true;
  while (!queue.empty()) {
    NodeId x = queue.front();
    queue.pop_front();
    for (NodeId w : g.OutNeighbors(x)) {
      if (w == v) return true;
      if (!seen[w]) {
        seen[w] = true;
        queue.push_back(w);
      }
    }
  }
  return false;
}

namespace {

std::vector<uint32_t> BfsDist(const Digraph& g, NodeId source,
                              bool follow_out) {
  std::vector<uint32_t> dist(g.NumNodes(), kUnreachable);
  std::deque<NodeId> queue{source};
  dist[source] = 0;
  while (!queue.empty()) {
    NodeId v = queue.front();
    queue.pop_front();
    const auto& next = follow_out ? g.OutNeighbors(v) : g.InNeighbors(v);
    for (NodeId w : next) {
      if (dist[w] == kUnreachable) {
        dist[w] = dist[v] + 1;
        queue.push_back(w);
      }
    }
  }
  return dist;
}

}  // namespace

std::vector<uint32_t> BfsDistances(const Digraph& g, NodeId source) {
  return BfsDist(g, source, /*follow_out=*/true);
}

std::vector<uint32_t> BfsDistancesReverse(const Digraph& g, NodeId target) {
  return BfsDist(g, target, /*follow_out=*/false);
}

void BoundedBfs(const Digraph& g, NodeId source, uint32_t max_depth,
                const std::function<void(NodeId, uint32_t)>& visit) {
  std::vector<bool> seen(g.NumNodes(), false);
  std::deque<std::pair<NodeId, uint32_t>> queue{{source, 0}};
  seen[source] = true;
  while (!queue.empty()) {
    auto [v, d] = queue.front();
    queue.pop_front();
    visit(v, d);
    if (d == max_depth) continue;
    for (NodeId w : g.OutNeighbors(v)) {
      if (!seen[w]) {
        seen[w] = true;
        queue.push_back({w, d + 1});
      }
    }
  }
}

bool TopologicalSort(const Digraph& g, std::vector<NodeId>* order) {
  order->clear();
  order->reserve(g.NumNodes());
  std::vector<uint32_t> indeg(g.NumNodes(), 0);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    indeg[v] = static_cast<uint32_t>(g.InDegree(v));
  }
  std::deque<NodeId> queue;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (indeg[v] == 0) queue.push_back(v);
  }
  while (!queue.empty()) {
    NodeId v = queue.front();
    queue.pop_front();
    order->push_back(v);
    for (NodeId w : g.OutNeighbors(v)) {
      if (--indeg[w] == 0) queue.push_back(w);
    }
  }
  return order->size() == g.NumNodes();
}

}  // namespace hopi
