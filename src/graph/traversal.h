// Graph traversals: reachability, BFS distances, bounded-depth walks.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/digraph.h"

namespace hopi {

/// All nodes reachable from `source` following out-edges, including
/// `source` itself (reflexive, as in the paper's closure C(G)).
/// Result is sorted ascending.
std::vector<NodeId> ReachableFrom(const Digraph& g, NodeId source);

/// All nodes that can reach `target` (i.e. reachability in the reversed
/// graph), including `target`. Sorted ascending.
std::vector<NodeId> ReachingTo(const Digraph& g, NodeId target);

/// Multi-source variant of ReachableFrom: union of descendants of all
/// seeds (seeds included). Sorted ascending.
std::vector<NodeId> ReachableFromAll(const Digraph& g,
                                     const std::vector<NodeId>& sources);

/// True iff there is a path from u to v (BFS; u == v counts as connected,
/// matching the reflexive closure).
bool IsReachable(const Digraph& g, NodeId u, NodeId v);

inline constexpr uint32_t kUnreachable = UINT32_MAX;

/// BFS distances from `source` to every node (kUnreachable when none).
/// dist[source] == 0.
std::vector<uint32_t> BfsDistances(const Digraph& g, NodeId source);

/// BFS distances following *in*-edges (distance from each node TO `target`).
std::vector<uint32_t> BfsDistancesReverse(const Digraph& g, NodeId target);

/// Visits nodes reachable from `source` within `max_depth` hops, calling
/// `visit(node, depth)` for each (the source at depth 0). Used by the
/// skeleton-graph ancestor/descendant estimation, which the paper limits
/// to paths of a certain length.
void BoundedBfs(const Digraph& g, NodeId source, uint32_t max_depth,
                const std::function<void(NodeId, uint32_t)>& visit);

/// Topological order of a DAG (Kahn). Returns false (and leaves `order`
/// partially filled) if the graph has a cycle.
bool TopologicalSort(const Digraph& g, std::vector<NodeId>* order);

}  // namespace hopi
