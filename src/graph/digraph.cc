#include "graph/digraph.h"

#include <algorithm>
#include <cassert>

namespace hopi {

NodeId Digraph::AddNode() {
  out_.emplace_back();
  in_.emplace_back();
  return static_cast<NodeId>(out_.size() - 1);
}

void Digraph::EnsureNodes(size_t n) {
  if (out_.size() < n) {
    out_.resize(n);
    in_.resize(n);
  }
}

bool Digraph::AddEdge(NodeId u, NodeId v) {
  assert(u < out_.size() && v < out_.size());
  auto& adj = out_[u];
  if (std::find(adj.begin(), adj.end(), v) != adj.end()) return false;
  adj.push_back(v);
  in_[v].push_back(u);
  ++num_edges_;
  return true;
}

bool Digraph::RemoveEdge(NodeId u, NodeId v) {
  assert(u < out_.size() && v < out_.size());
  auto& adj = out_[u];
  auto it = std::find(adj.begin(), adj.end(), v);
  if (it == adj.end()) return false;
  adj.erase(it);
  auto& radj = in_[v];
  auto rit = std::find(radj.begin(), radj.end(), u);
  assert(rit != radj.end());
  radj.erase(rit);
  --num_edges_;
  return true;
}

void Digraph::IsolateNode(NodeId v) {
  assert(v < out_.size());
  // Copy neighbor lists: RemoveEdge mutates them.
  std::vector<NodeId> outs = out_[v];
  for (NodeId w : outs) RemoveEdge(v, w);
  std::vector<NodeId> ins = in_[v];
  for (NodeId u : ins) RemoveEdge(u, v);
}

bool Digraph::HasEdge(NodeId u, NodeId v) const {
  assert(u < out_.size() && v < out_.size());
  const auto& adj = out_[u];
  return std::find(adj.begin(), adj.end(), v) != adj.end();
}

std::vector<Edge> Digraph::Edges() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges_);
  for (NodeId u = 0; u < out_.size(); ++u) {
    for (NodeId v : out_[u]) edges.push_back({u, v});
  }
  return edges;
}

Digraph Digraph::Reversed() const {
  Digraph rev(NumNodes());
  for (NodeId u = 0; u < out_.size(); ++u) {
    for (NodeId v : out_[u]) rev.AddEdge(v, u);
  }
  return rev;
}

}  // namespace hopi
