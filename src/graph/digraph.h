// Directed graph substrate.
//
// All HOPI structures (element-level graph, document-level graph, skeleton
// graphs, center graphs) are instances of this adjacency-list digraph.
// Nodes are dense uint32_t ids assigned on creation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace hopi {

using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// A directed edge (from, to).
struct Edge {
  NodeId from;
  NodeId to;

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.from == b.from && a.to == b.to;
  }
  friend auto operator<=>(const Edge& a, const Edge& b) = default;
};

/// Mutable directed graph with forward and reverse adjacency.
///
/// Parallel edges are collapsed (AddEdge is idempotent); self-loops are
/// allowed — the 2-hop machinery works on graphs with cycles, although HOPI
/// typically condenses strongly connected components first (see scc.h).
class Digraph {
 public:
  Digraph() = default;
  /// Creates a graph with `n` isolated nodes.
  explicit Digraph(size_t n) : out_(n), in_(n) {}

  /// Adds an isolated node, returning its id.
  NodeId AddNode();

  /// Ensures ids [0, n) exist.
  void EnsureNodes(size_t n);

  /// Adds edge u->v (idempotent). Precondition: u, v exist.
  /// Returns true if the edge was newly inserted.
  bool AddEdge(NodeId u, NodeId v);

  /// Removes edge u->v if present. Returns true if removed. O(degree).
  bool RemoveEdge(NodeId u, NodeId v);

  /// Detaches a node: removes all of its in/out edges but keeps the id
  /// (ids stay dense; deleted nodes become isolated). Used by document
  /// deletion, which removes all elements of a document.
  void IsolateNode(NodeId v);

  bool HasEdge(NodeId u, NodeId v) const;

  size_t NumNodes() const { return out_.size(); }
  size_t NumEdges() const { return num_edges_; }

  const std::vector<NodeId>& OutNeighbors(NodeId v) const { return out_[v]; }
  const std::vector<NodeId>& InNeighbors(NodeId v) const { return in_[v]; }

  size_t OutDegree(NodeId v) const { return out_[v].size(); }
  size_t InDegree(NodeId v) const { return in_[v].size(); }

  /// All edges in (from, to) order; O(E) fresh vector.
  std::vector<Edge> Edges() const;

  /// The graph with every edge reversed.
  Digraph Reversed() const;

 private:
  std::vector<std::vector<NodeId>> out_;
  std::vector<std::vector<NodeId>> in_;
  size_t num_edges_ = 0;
};

}  // namespace hopi
