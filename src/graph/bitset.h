// Dynamic bitset tuned for transitive-closure rows.
//
// Closure rows are the memory-critical structure in HOPI's build pipeline:
// the new partitioner (paper Sec 4.3) grows a partition while its closure
// still fits the memory budget, so rows must support cheap union + popcount.
#pragma once

#include <cstddef>
#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

namespace hopi {

/// Fixed-universe bitset; grows on demand in whole 64-bit words.
class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(size_t bits) : words_((bits + 63) / 64, 0) {}

  void Resize(size_t bits) { words_.resize((bits + 63) / 64, 0); }

  bool Test(size_t i) const {
    size_t w = i / 64;
    if (w >= words_.size()) return false;
    return (words_[w] >> (i % 64)) & 1u;
  }

  /// Sets bit i; returns true if it was previously clear.
  bool Set(size_t i) {
    size_t w = i / 64;
    if (w >= words_.size()) words_.resize(w + 1, 0);
    uint64_t mask = uint64_t{1} << (i % 64);
    bool was_clear = (words_[w] & mask) == 0;
    words_[w] |= mask;
    return was_clear;
  }

  /// Clears bit i; returns true if it was previously set.
  bool Clear(size_t i) {
    size_t w = i / 64;
    if (w >= words_.size()) return false;
    uint64_t mask = uint64_t{1} << (i % 64);
    bool was_set = (words_[w] & mask) != 0;
    words_[w] &= ~mask;
    return was_set;
  }

  void ClearAll() { words_.assign(words_.size(), 0); }

  /// this |= other. Returns the number of newly set bits.
  size_t UnionWith(const DynamicBitset& other) {
    if (other.words_.size() > words_.size()) {
      words_.resize(other.words_.size(), 0);
    }
    size_t added = 0;
    for (size_t w = 0; w < other.words_.size(); ++w) {
      uint64_t nw = words_[w] | other.words_[w];
      added += static_cast<size_t>(std::popcount(nw ^ words_[w]));
      words_[w] = nw;
    }
    return added;
  }

  /// this &= ~other. Returns the number of cleared bits.
  size_t SubtractWith(const DynamicBitset& other) {
    size_t removed = 0;
    size_t n = std::min(words_.size(), other.words_.size());
    for (size_t w = 0; w < n; ++w) {
      uint64_t nw = words_[w] & ~other.words_[w];
      removed += static_cast<size_t>(std::popcount(words_[w] ^ nw));
      words_[w] = nw;
    }
    return removed;
  }

  size_t Count() const {
    size_t c = 0;
    for (uint64_t w : words_) c += static_cast<size_t>(std::popcount(w));
    return c;
  }

  bool Any() const {
    for (uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

  /// True iff this and other share a set bit.
  bool Intersects(const DynamicBitset& other) const {
    size_t n = std::min(words_.size(), other.words_.size());
    for (size_t w = 0; w < n; ++w) {
      if (words_[w] & other.words_[w]) return true;
    }
    return false;
  }

  /// Calls fn(i) for every bit set in both this and `other`, ascending.
  template <typename Fn>
  void ForEachIntersection(const DynamicBitset& other, Fn&& fn) const {
    size_t n = std::min(words_.size(), other.words_.size());
    for (size_t w = 0; w < n; ++w) {
      uint64_t bits = words_[w] & other.words_[w];
      while (bits) {
        int b = std::countr_zero(bits);
        fn(w * 64 + static_cast<size_t>(b));
        bits &= bits - 1;
      }
    }
  }

  /// Calls fn(i) for every set bit, ascending.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t bits = words_[w];
      while (bits) {
        int b = std::countr_zero(bits);
        fn(w * 64 + static_cast<size_t>(b));
        bits &= bits - 1;
      }
    }
  }

  /// Set bits as a sorted vector.
  std::vector<uint32_t> ToVector() const {
    std::vector<uint32_t> out;
    out.reserve(Count());
    ForEach([&out](size_t i) { out.push_back(static_cast<uint32_t>(i)); });
    return out;
  }

  /// Approximate heap bytes used.
  size_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }

 private:
  std::vector<uint64_t> words_;
};

}  // namespace hopi
