// Strongly connected components and condensation.
//
// HOPI (EDBT 2004, Sec. 4.1) first collapses each strongly connected
// component of the element-level graph into a single node: all members of
// an SCC reach exactly the same node set, so the 2-hop cover only needs
// one representative per component. The ICDE 2005 paper inherits this.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/digraph.h"

namespace hopi {

/// Result of an SCC decomposition.
struct SccResult {
  /// component[v] = id of v's SCC, in [0, num_components).
  /// Component ids are a reverse topological order of the condensation
  /// (Tarjan numbering): if SCC a can reach SCC b (a != b), then
  /// component id of a > component id of b.
  std::vector<uint32_t> component;
  uint32_t num_components = 0;
};

/// Tarjan's algorithm, iterative (no recursion; safe for deep graphs).
SccResult StronglyConnectedComponents(const Digraph& g);

/// Condensation of `g`: one node per SCC, an edge between two SCCs iff the
/// original graph has an edge between their members (self-edges dropped).
/// The result is a DAG.
struct Condensation {
  Digraph dag;                          // nodes are SCC ids
  std::vector<uint32_t> component;      // original node -> SCC id
  std::vector<std::vector<NodeId>> members;  // SCC id -> original nodes
};

Condensation Condense(const Digraph& g);

}  // namespace hopi
