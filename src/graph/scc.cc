#include "graph/scc.h"

#include <algorithm>
#include <cassert>

namespace hopi {

SccResult StronglyConnectedComponents(const Digraph& g) {
  const size_t n = g.NumNodes();
  SccResult result;
  result.component.assign(n, UINT32_MAX);

  constexpr uint32_t kUnvisited = UINT32_MAX;
  std::vector<uint32_t> index(n, kUnvisited);
  std::vector<uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeId> stack;
  uint32_t next_index = 0;

  // Explicit DFS stack: (node, position in its adjacency list).
  struct Frame {
    NodeId v;
    size_t child;
  };
  std::vector<Frame> dfs;

  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    dfs.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!dfs.empty()) {
      Frame& frame = dfs.back();
      NodeId v = frame.v;
      const auto& adj = g.OutNeighbors(v);
      if (frame.child < adj.size()) {
        NodeId w = adj[frame.child++];
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          dfs.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        if (lowlink[v] == index[v]) {
          // v is the root of an SCC; pop it off the component stack.
          for (;;) {
            NodeId w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            result.component[w] = result.num_components;
            if (w == v) break;
          }
          ++result.num_components;
        }
        dfs.pop_back();
        if (!dfs.empty()) {
          NodeId parent = dfs.back().v;
          lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
        }
      }
    }
  }
  return result;
}

Condensation Condense(const Digraph& g) {
  SccResult scc = StronglyConnectedComponents(g);
  Condensation cond;
  cond.component = scc.component;
  cond.dag = Digraph(scc.num_components);
  cond.members.resize(scc.num_components);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    cond.members[scc.component[v]].push_back(v);
  }
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    uint32_t cu = scc.component[u];
    for (NodeId v : g.OutNeighbors(u)) {
      uint32_t cv = scc.component[v];
      if (cu != cv) cond.dag.AddEdge(cu, cv);
    }
  }
  return cond;
}

}  // namespace hopi
