// Induced subgraphs with local<->global id mapping.
//
// Partition covers are computed on the subgraph induced by the partition's
// elements using compact local ids (bitset-row memory scales with the
// square of the node count, so global-id rows would defeat partitioning),
// then translated back to global ids when covers are joined.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/digraph.h"

namespace hopi {

/// A subgraph induced by a node subset, with the id mappings.
struct InducedSubgraph {
  Digraph graph;                  // nodes are local ids [0, nodes.size())
  std::vector<NodeId> to_global;  // local -> global
  std::vector<NodeId> to_local;   // global -> local (kInvalidNode if absent)

  NodeId Local(NodeId global) const {
    return global < to_local.size() ? to_local[global] : kInvalidNode;
  }
  NodeId Global(NodeId local) const { return to_global[local]; }
};

/// Builds the subgraph of `g` induced by `nodes` (edges with both
/// endpoints inside). `nodes` need not be sorted; duplicates are ignored.
InducedSubgraph BuildInducedSubgraph(const Digraph& g,
                                     const std::vector<NodeId>& nodes);

}  // namespace hopi
