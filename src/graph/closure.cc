#include "graph/closure.h"

#include <algorithm>
#include <cassert>
#include <deque>

#include "graph/scc.h"
#include "graph/traversal.h"

namespace hopi {

Result<TransitiveClosure> TransitiveClosure::Build(
    const Digraph& g, std::optional<uint64_t> max_connections) {
  const size_t n = g.NumNodes();
  TransitiveClosure tc;
  tc.desc_.assign(n, DynamicBitset(n));
  tc.anc_.assign(n, DynamicBitset(n));

  // Compute descendant rows over the condensation in reverse topological
  // order: row(v) = union of row(children) | children. Handles cycles.
  Condensation cond = Condense(g);
  std::vector<NodeId> order;
  bool is_dag = TopologicalSort(cond.dag, &order);
  assert(is_dag);
  (void)is_dag;

  // SCC-level descendant rows (over SCC ids).
  const size_t m = cond.dag.NumNodes();
  std::vector<DynamicBitset> scc_desc(m, DynamicBitset(m));
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    NodeId c = *it;
    for (NodeId d : cond.dag.OutNeighbors(c)) {
      scc_desc[c].Set(d);
      scc_desc[c].UnionWith(scc_desc[d]);
    }
  }

  // Expand to element-level rows. Members of an SCC of size > 1 (or with a
  // self-loop) are all descendants of each other.
  for (NodeId v = 0; v < n; ++v) {
    uint32_t c = cond.component[v];
    bool cyclic = cond.members[c].size() > 1 || g.HasEdge(v, v);
    if (cyclic) {
      for (NodeId w : cond.members[c]) {
        if (w != v) tc.desc_[v].Set(w);
      }
    }
    scc_desc[c].ForEach([&](size_t d) {
      for (NodeId w : cond.members[static_cast<uint32_t>(d)]) {
        if (w != v) tc.desc_[v].Set(w);
      }
    });
    tc.num_connections_ += tc.desc_[v].Count();
    if (max_connections && tc.num_connections_ > *max_connections) {
      return Status::OutOfBudget("transitive closure exceeds cap of " +
                                 std::to_string(*max_connections) +
                                 " connections");
    }
  }

  // Ancestor rows by transposition.
  for (NodeId u = 0; u < n; ++u) {
    tc.desc_[u].ForEach([&](size_t v) {
      tc.anc_[v].Set(u);
    });
  }
  return tc;
}

uint64_t TransitiveClosure::CountConnections(const Digraph& g) {
  // One BFS per node; keeps only a seen-array alive.
  uint64_t total = 0;
  const size_t n = g.NumNodes();
  std::vector<uint32_t> seen(n, UINT32_MAX);
  std::deque<NodeId> queue;
  for (NodeId s = 0; s < n; ++s) {
    queue.clear();
    queue.push_back(s);
    seen[s] = s;
    while (!queue.empty()) {
      NodeId v = queue.front();
      queue.pop_front();
      for (NodeId w : g.OutNeighbors(v)) {
        if (seen[w] != s) {
          seen[w] = s;
          queue.push_back(w);
          ++total;  // counts (s, w), w != s by seen[s] pre-mark
        }
      }
    }
  }
  return total;
}

size_t TransitiveClosure::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& row : desc_) bytes += row.MemoryBytes();
  for (const auto& row : anc_) bytes += row.MemoryBytes();
  return bytes;
}

IncrementalClosure::IncrementalClosure(size_t num_nodes) {
  EnsureNodes(num_nodes);
}

void IncrementalClosure::EnsureNodes(size_t n) {
  if (desc_.size() < n) {
    desc_.resize(n);
    anc_.resize(n);
  }
}

uint64_t IncrementalClosure::AddEdge(NodeId u, NodeId v) {
  assert(u < desc_.size() && v < desc_.size());
  if (u == v || desc_[u].Test(v)) return 0;

  // New connections: ({u} ∪ Anc(u)) × ({v} ∪ Desc(v)) minus existing ones.
  // Gather the affected source set first; anc_[u] is mutated in the loop.
  std::vector<NodeId> sources = anc_[u].ToVector();
  sources.push_back(u);
  std::vector<NodeId> targets = desc_[v].ToVector();
  targets.push_back(v);

  uint64_t added = 0;
  for (NodeId a : sources) {
    for (NodeId d : targets) {
      if (a == d) continue;  // cycle closed: no self-connection stored
      if (desc_[a].Set(d)) {
        anc_[d].Set(a);
        ++added;
      }
    }
  }
  num_connections_ += added;
  return added;
}

size_t IncrementalClosure::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& row : desc_) bytes += row.MemoryBytes();
  for (const auto& row : anc_) bytes += row.MemoryBytes();
  return bytes;
}

DistanceClosure DistanceClosure::Build(const Digraph& g) {
  DistanceClosure dc;
  const size_t n = g.NumNodes();
  dc.rows_.resize(n);
  dc.reverse_rows_.resize(n);
  for (NodeId s = 0; s < n; ++s) {
    std::vector<uint32_t> dist = BfsDistances(g, s);
    auto& row = dc.rows_[s];
    for (NodeId v = 0; v < n; ++v) {
      if (v != s && dist[v] != kUnreachable) {
        row.push_back({v, dist[v]});
      }
    }
    dc.num_connections_ += row.size();
  }
  for (NodeId s = 0; s < n; ++s) {
    for (const DistConnection& c : dc.rows_[s]) {
      dc.reverse_rows_[c.node].push_back({s, c.dist});
    }
  }
  for (auto& row : dc.reverse_rows_) {
    std::sort(row.begin(), row.end(),
              [](const DistConnection& a, const DistConnection& b) {
                return a.node < b.node;
              });
  }
  return dc;
}

std::optional<uint32_t> DistanceClosure::Dist(NodeId u, NodeId v) const {
  if (u == v) return 0;
  const auto& row = rows_[u];
  auto it = std::lower_bound(row.begin(), row.end(), v,
                             [](const DistConnection& c, NodeId id) {
                               return c.node < id;
                             });
  if (it == row.end() || it->node != v) return std::nullopt;
  return it->dist;
}

}  // namespace hopi
