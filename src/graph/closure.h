// Transitive closure: materialized, counting-only, incremental, and
// distance-annotated variants.
//
// The paper's algorithms consume the reflexive+transitive closure C(G).
// We materialize the *non-reflexive* connection set {(u,v) : u != v,
// u ->* v}; reflexive pairs are implicit (every query layer treats u == v
// as connected), matching HOPI's storage rule of never putting a node in
// its own label (paper Sec 3.4).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "graph/bitset.h"
#include "graph/digraph.h"
#include "util/result.h"

namespace hopi {

/// Materialized closure with per-source descendant rows (bitsets) and
/// per-target ancestor rows.
class TransitiveClosure {
 public:
  /// Computes the closure of `g`. If `max_connections` is set and the
  /// connection count would exceed it, returns OutOfBudget — this is the
  /// in-memory cap that drives HOPI's partitioning.
  static Result<TransitiveClosure> Build(
      const Digraph& g,
      std::optional<uint64_t> max_connections = std::nullopt);

  /// Counts connections of `g` without keeping more than one row alive.
  static uint64_t CountConnections(const Digraph& g);

  size_t NumNodes() const { return desc_.size(); }
  uint64_t NumConnections() const { return num_connections_; }

  /// True iff u ->* v. Reflexive: Contains(u, u) is always true.
  bool Contains(NodeId u, NodeId v) const {
    return u == v || desc_[u].Test(v);
  }

  const DynamicBitset& DescendantsRow(NodeId u) const { return desc_[u]; }
  const DynamicBitset& AncestorsRow(NodeId v) const { return anc_[v]; }

  /// Strict descendants of u (excluding u), sorted.
  std::vector<NodeId> Descendants(NodeId u) const {
    return desc_[u].ToVector();
  }
  /// Strict ancestors of v (excluding v), sorted.
  std::vector<NodeId> Ancestors(NodeId v) const { return anc_[v].ToVector(); }

  /// Approximate heap bytes of the row storage.
  size_t MemoryBytes() const;

 private:
  std::vector<DynamicBitset> desc_;
  std::vector<DynamicBitset> anc_;
  uint64_t num_connections_ = 0;
};

/// Incrementally maintained closure under node/edge additions.
///
/// Used by the TC-size-aware partitioner (paper Sec 4.3): documents are
/// added to a partition one by one and the partition is closed when the
/// closure reaches the memory budget.
class IncrementalClosure {
 public:
  explicit IncrementalClosure(size_t num_nodes = 0);

  /// Grows the node universe to at least n nodes.
  void EnsureNodes(size_t n);
  size_t NumNodes() const { return desc_.size(); }

  /// Adds edge u->v and transitively closes. Returns the number of new
  /// connections created (0 if (u,v) was already connected or u == v).
  uint64_t AddEdge(NodeId u, NodeId v);

  uint64_t NumConnections() const { return num_connections_; }
  bool Contains(NodeId u, NodeId v) const {
    return u == v || desc_[u].Test(v);
  }

  const DynamicBitset& DescendantsRow(NodeId u) const { return desc_[u]; }
  const DynamicBitset& AncestorsRow(NodeId v) const { return anc_[v]; }

  size_t MemoryBytes() const;

 private:
  std::vector<DynamicBitset> desc_;  // strict descendants
  std::vector<DynamicBitset> anc_;   // strict ancestors
  uint64_t num_connections_ = 0;
};

/// A connection annotated with its shortest-path length.
struct DistConnection {
  NodeId node;
  uint32_t dist;

  friend bool operator==(const DistConnection& a, const DistConnection& b) {
    return a.node == b.node && a.dist == b.dist;
  }
};

/// All-pairs shortest distances restricted to connected pairs, stored as
/// per-source sorted (target, dist) vectors. Input to the distance-aware
/// cover construction (paper Sec 5.2).
class DistanceClosure {
 public:
  static DistanceClosure Build(const Digraph& g);

  size_t NumNodes() const { return rows_.size(); }
  uint64_t NumConnections() const { return num_connections_; }

  /// Shortest distance u -> v, or nullopt when unconnected. Dist(u,u)==0.
  std::optional<uint32_t> Dist(NodeId u, NodeId v) const;

  /// Strict descendants of u with distances, sorted by node id.
  const std::vector<DistConnection>& Row(NodeId u) const { return rows_[u]; }

  /// Strict ancestors of v with distances, sorted by node id.
  const std::vector<DistConnection>& ReverseRow(NodeId v) const {
    return reverse_rows_[v];
  }

 private:
  std::vector<std::vector<DistConnection>> rows_;
  std::vector<std::vector<DistConnection>> reverse_rows_;
  uint64_t num_connections_ = 0;
};

}  // namespace hopi
