// Joining partition covers into one collection-wide cover.
//
// Two algorithms:
//   - JoinCoversIncremental (paper Sec 3.3, EDBT 2004): iterate the
//     cross-partition links; for each link u -> v, make v the center of
//     all new connections (Fig. 2). Quadratic-ish in practice — the
//     dominant build cost the ICDE 2005 paper set out to fix.
//   - JoinCoversRecursive (paper Sec 4.1): build the partition-level
//     skeleton graph, compute the H-bar cover over it (link targets as
//     centers, via an adapted transitive-closure traversal), then copy the
//     entries outward to within-partition ancestors of link sources and
//     descendants of link targets (the H-hat supplement). Correct by
//     Theorem 1 / Corollary 1.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "collection/collection.h"
#include "partition/partitioner.h"
#include "partition/psg.h"
#include "twohop/reverse_index.h"
#include "util/result.h"

namespace hopi {

struct JoinStats {
  uint64_t cross_links = 0;
  uint64_t psg_nodes = 0;       // recursive join only
  uint64_t psg_edges = 0;       // recursive join only
  uint64_t psg_partitions = 0;  // 1 = the PSG was processed whole
  uint64_t hbar_entries = 0;    // entries contributed by H-bar
  uint64_t hhat_entries = 0;    // entries contributed by H-hat
  uint64_t label_additions = 0; // total new entries
};

struct JoinOptions {
  /// Sec 4.1: "If the PSG is too large, we partition it into several
  /// partitions" — when the PSG has more nodes than this cap it is split
  /// (link edges kept intra-partition, internal edges may cross) and the
  /// partial H-bar covers are connected through the cross edges.
  /// 0 disables PSG partitioning (the PSG is traversed whole).
  uint64_t psg_partition_cap = 0;
};

/// Old algorithm. `cover` holds the unified partition covers on entry and
/// the full-collection cover on return.
Status JoinCoversIncremental(const collection::Collection& collection,
                             const partition::Partitioning& partitioning,
                             bool with_distance,
                             twohop::IndexedCover* cover,
                             JoinStats* stats = nullptr);

/// New structurally recursive algorithm.
Status JoinCoversRecursive(const collection::Collection& collection,
                           const partition::Partitioning& partitioning,
                           bool with_distance,
                           twohop::IndexedCover* cover,
                           JoinStats* stats = nullptr,
                           const JoinOptions& options = {});

/// One H-bar entry, already translated to element ids: the PSG shortest
/// distance from a cross-link source to a cross-link target (exactly the
/// values Sec 4.1's H-bar cover stores; 0 in plain builds' labels, but
/// the PSG distance is reported here either way so callers can do
/// min-plus composition).
struct SkeletonTarget {
  NodeId target;  // element id of a cross-link target
  uint32_t dist;  // shortest PSG distance source -> target (>= 1)
};

/// H-bar_out of one cross-link source, sorted by target element id.
struct SkeletonRow {
  NodeId source;  // element id of a cross-link source
  std::vector<SkeletonTarget> targets;
};

/// Computes the H-bar skeleton cover over an already-built PSG: for every
/// cross-link source s, the set of cross-link targets it reaches and the
/// PSG shortest distance to each. This is the reusable core of
/// JoinCoversRecursive's step 2 — the sharded serving router consumes the
/// rows directly instead of folding them into one unified cover. Honors
/// JoinOptions::psg_partition_cap (the Sec 4.1 recursive PSG split);
/// `psg_partitions` (optional) reports how many PSG partitions were used
/// (1 = traversed whole).
std::vector<SkeletonRow> ComputeSkeletonCover(
    const partition::PartitionSkeletonGraph& psg,
    const JoinOptions& options = {}, uint64_t* psg_partitions = nullptr);

}  // namespace hopi
