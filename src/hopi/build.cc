#include "hopi/build.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <thread>

#include "graph/subgraph.h"
#include "util/timer.h"

namespace hopi {

namespace {

void AggregateStats(const twohop::CoverBuildStats& part,
                    twohop::CoverBuildStats* total) {
  total->initial_connections += part.initial_connections;
  total->centers_chosen += part.centers_chosen;
  total->densest_recomputations += part.densest_recomputations;
  total->queue_reinsertions += part.queue_reinsertions;
  total->preselect_covered += part.preselect_covered;
}

}  // namespace

Result<HopiIndex> BuildIndex(collection::Collection* collection,
                             const IndexBuildOptions& options,
                             IndexBuildStats* stats) {
  IndexBuildStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  Stopwatch total_watch;

  twohop::CoverBuildOptions cover_options;
  cover_options.with_distance = options.with_distance;

  if (options.global) {
    Stopwatch watch;
    twohop::CoverBuildStats cb;
    auto cover = twohop::BuildCover(collection->ElementGraph(), cover_options,
                                    &cb);
    if (!cover.ok()) return cover.status();
    stats->covers_seconds = watch.ElapsedSeconds();
    stats->num_partitions = 1;
    AggregateStats(cb, &stats->cover_build);
    stats->total_partition_connections = cb.initial_connections;
    stats->largest_partition_connections = cb.initial_connections;
    stats->cover_entries = cover->Size();
    stats->total_seconds = total_watch.ElapsedSeconds();
    return HopiIndex(collection, std::move(cover).value(),
                     options.with_distance);
  }

  // --- Step 1: partition the document-level graph ---
  Stopwatch watch;
  auto partitioning =
      partition::PartitionCollection(*collection, options.partition);
  if (!partitioning.ok()) return partitioning.status();
  stats->partition_seconds = watch.ElapsedSeconds();
  stats->num_partitions = partitioning->NumPartitions();
  stats->cross_links = partitioning->cross_links.size();

  // Sec 4.2: cross-partition link targets, grouped by partition, used as
  // preselected centers for the partition-cover builds.
  std::vector<std::vector<NodeId>> preselect_by_part(
      partitioning->NumPartitions());
  if (options.preselect_link_targets) {
    for (const collection::Link& l : partitioning->cross_links) {
      uint32_t part = partitioning->part_of[collection->DocOf(l.target)];
      preselect_by_part[part].push_back(l.target);
    }
    for (auto& targets : preselect_by_part) {
      std::sort(targets.begin(), targets.end());
      targets.erase(std::unique(targets.begin(), targets.end()),
                    targets.end());
    }
  }

  // --- Step 2: per-partition covers (local ids, translated to global) ---
  // Partition covers are independent; with num_threads > 1 they are built
  // concurrently (Sec 4.1: "all these computations can be done
  // concurrently") and translated into the unified cover serially.
  watch.Restart();
  const size_t num_partitions = partitioning->NumPartitions();
  std::vector<Result<twohop::TwoHopCover>> covers(
      num_partitions, Status::Internal("partition cover not built"));
  std::vector<InducedSubgraph> subgraphs(num_partitions);
  std::vector<twohop::CoverBuildStats> part_stats(num_partitions);

  auto build_one = [&](size_t p) {
    std::vector<NodeId> elements;
    for (collection::DocId d : partitioning->partitions[p]) {
      const auto& els = collection->ElementsOf(d);
      elements.insert(elements.end(), els.begin(), els.end());
    }
    subgraphs[p] =
        BuildInducedSubgraph(collection->ElementGraph(), elements);
    twohop::CoverBuildOptions part_options = cover_options;
    for (NodeId global_target : preselect_by_part[p]) {
      NodeId local = subgraphs[p].Local(global_target);
      assert(local != kInvalidNode);
      part_options.preselect_centers.push_back(local);
    }
    covers[p] =
        twohop::BuildCover(subgraphs[p].graph, part_options, &part_stats[p]);
  };

  size_t threads = std::max<size_t>(options.num_threads, 1);
  if (threads <= 1 || num_partitions <= 1) {
    for (size_t p = 0; p < num_partitions; ++p) build_one(p);
  } else {
    std::atomic<size_t> next{0};
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&] {
        for (size_t p = next.fetch_add(1); p < num_partitions;
             p = next.fetch_add(1)) {
          build_one(p);
        }
      });
    }
    for (std::thread& w : workers) w.join();
  }

  twohop::TwoHopCover unified(collection->NumElements());
  for (size_t p = 0; p < num_partitions; ++p) {
    if (!covers[p].ok()) return covers[p].status();
    AggregateStats(part_stats[p], &stats->cover_build);
    stats->total_partition_connections +=
        part_stats[p].initial_connections;
    stats->largest_partition_connections =
        std::max(stats->largest_partition_connections,
                 part_stats[p].initial_connections);
    const twohop::TwoHopCover& cover = *covers[p];
    const InducedSubgraph& sub = subgraphs[p];
    for (NodeId local = 0; local < cover.NumNodes(); ++local) {
      NodeId global = sub.Global(local);
      for (const twohop::LabelEntry& e : cover.In(local)) {
        unified.AddIn(global, sub.Global(e.center), e.dist);
      }
      for (const twohop::LabelEntry& e : cover.Out(local)) {
        unified.AddOut(global, sub.Global(e.center), e.dist);
      }
    }
  }
  stats->covers_seconds = watch.ElapsedSeconds();

  // --- Step 3: join the partition covers ---
  watch.Restart();
  twohop::IndexedCover indexed(std::move(unified));
  JoinOptions join_options;
  join_options.psg_partition_cap = options.psg_partition_cap;
  Status join_status =
      options.join == JoinAlgorithm::kRecursive
          ? JoinCoversRecursive(*collection, *partitioning,
                                options.with_distance, &indexed,
                                &stats->join_stats, join_options)
          : JoinCoversIncremental(*collection, *partitioning,
                                  options.with_distance, &indexed,
                                  &stats->join_stats);
  HOPI_RETURN_NOT_OK(join_status);
  stats->join_seconds = watch.ElapsedSeconds();

  stats->cover_entries = indexed.cover().Size();
  stats->total_seconds = total_watch.ElapsedSeconds();

  // Hand the finished cover to the index. HopiIndex re-wraps it in an
  // IndexedCover; moving the TwoHopCover out is cheap, rebuilding the
  // reverse maps is O(|L|).
  twohop::TwoHopCover final_cover = std::move(*indexed.mutable_cover());
  return HopiIndex(collection, std::move(final_cover),
                   options.with_distance);
}

}  // namespace hopi
