#include "hopi/build.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "graph/subgraph.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace hopi {

namespace {

void AggregateStats(const twohop::CoverBuildStats& part,
                    twohop::CoverBuildStats* total) {
  total->initial_connections += part.initial_connections;
  total->centers_chosen += part.centers_chosen;
  total->densest_recomputations += part.densest_recomputations;
  total->queue_reinsertions += part.queue_reinsertions;
  total->preselect_covered += part.preselect_covered;
  total->speculative_evaluations += part.speculative_evaluations;
  total->speculative_wasted += part.speculative_wasted;
}

/// Splits the thread budget between partition-level workers and
/// intra-partition cover threads: `outer` partition builds run
/// concurrently, partition p's build uses the returned inner count, and
/// the leftover budget (threads % outer, nonzero only when there are
/// fewer partitions than threads) goes to the partitions with the most
/// elements — the ones that cap the covers phase. Worker p participates
/// in its own inner pool, so at most `threads` OS threads run at once.
std::vector<size_t> SplitThreadBudget(size_t threads, size_t outer,
                                      const std::vector<size_t>& part_sizes) {
  const size_t parts = part_sizes.size();
  std::vector<size_t> inner(parts, outer == 0 ? 1 : threads / outer);
  size_t extra = outer == 0 ? 0 : threads % outer;
  if (extra > 0) {
    std::vector<size_t> by_size(parts);
    std::iota(by_size.begin(), by_size.end(), size_t{0});
    std::sort(by_size.begin(), by_size.end(), [&](size_t a, size_t b) {
      if (part_sizes[a] != part_sizes[b]) {
        return part_sizes[a] > part_sizes[b];
      }
      return a < b;
    });
    for (size_t rank = 0; rank < extra && rank < parts; ++rank) {
      ++inner[by_size[rank]];
    }
  }
  return inner;
}

}  // namespace

Result<HopiIndex> BuildIndex(collection::Collection* collection,
                             const IndexBuildOptions& options,
                             IndexBuildStats* stats) {
  IndexBuildStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  Stopwatch total_watch;

  const size_t threads = std::max<size_t>(options.num_threads, 1);
  twohop::CoverBuildOptions cover_options;
  cover_options.with_distance = options.with_distance;

  if (options.global) {
    Stopwatch watch;
    twohop::CoverBuildStats cb;
    // One global cover is the extreme single-fat-partition case: the
    // whole thread budget goes inside the cover build.
    cover_options.num_threads = threads;
    auto cover = twohop::BuildCover(collection->ElementGraph(), cover_options,
                                    &cb);
    if (!cover.ok()) return cover.status();
    stats->covers_seconds = watch.ElapsedSeconds();
    stats->num_partitions = 1;
    AggregateStats(cb, &stats->cover_build);
    stats->total_partition_connections = cb.initial_connections;
    stats->largest_partition_connections = cb.initial_connections;
    stats->cover_entries = cover->Size();
    stats->total_seconds = total_watch.ElapsedSeconds();
    return HopiIndex(collection, std::move(cover).value(),
                     options.with_distance);
  }

  // --- Step 1: partition the document-level graph ---
  Stopwatch watch;
  auto partitioning =
      partition::PartitionCollection(*collection, options.partition);
  if (!partitioning.ok()) return partitioning.status();
  stats->partition_seconds = watch.ElapsedSeconds();
  stats->num_partitions = partitioning->NumPartitions();
  stats->cross_links = partitioning->cross_links.size();

  // Sec 4.2: cross-partition link targets, grouped by partition, used as
  // preselected centers for the partition-cover builds.
  std::vector<std::vector<NodeId>> preselect_by_part(
      partitioning->NumPartitions());
  if (options.preselect_link_targets) {
    for (const collection::Link& l : partitioning->cross_links) {
      uint32_t part = partitioning->part_of[collection->DocOf(l.target)];
      preselect_by_part[part].push_back(l.target);
    }
    for (auto& targets : preselect_by_part) {
      std::sort(targets.begin(), targets.end());
      targets.erase(std::unique(targets.begin(), targets.end()),
                    targets.end());
    }
  }

  // --- Step 2: per-partition covers (local ids, translated to global) ---
  // Partition covers are independent; they are built over a thread pool
  // (Sec 4.1: "all these computations can be done concurrently") and
  // translated into the unified cover serially. The budget is split:
  // `outer` pool workers across partitions, the remainder as
  // intra-partition threads inside the largest covers (see
  // SplitThreadBudget), so one fat partition no longer caps the phase at
  // single-thread speed.
  watch.Restart();
  const size_t num_partitions = partitioning->NumPartitions();
  std::vector<Result<twohop::TwoHopCover>> covers(
      num_partitions, Status::Internal("partition cover not built"));
  std::vector<InducedSubgraph> subgraphs(num_partitions);
  std::vector<twohop::CoverBuildStats> part_stats(num_partitions);

  std::vector<size_t> part_sizes(num_partitions, 0);
  for (size_t p = 0; p < num_partitions; ++p) {
    for (collection::DocId d : partitioning->partitions[p]) {
      part_sizes[p] += collection->ElementsOf(d).size();
    }
  }
  const size_t outer = std::min(threads, std::max<size_t>(num_partitions, 1));
  const std::vector<size_t> inner_threads =
      SplitThreadBudget(threads, outer, part_sizes);

  auto build_one = [&](size_t p) -> Status {
    std::vector<NodeId> elements;
    for (collection::DocId d : partitioning->partitions[p]) {
      const auto& els = collection->ElementsOf(d);
      elements.insert(elements.end(), els.begin(), els.end());
    }
    subgraphs[p] =
        BuildInducedSubgraph(collection->ElementGraph(), elements);
    twohop::CoverBuildOptions part_options = cover_options;
    part_options.num_threads = inner_threads[p];
    for (NodeId global_target : preselect_by_part[p]) {
      NodeId local = subgraphs[p].Local(global_target);
      assert(local != kInvalidNode);
      part_options.preselect_centers.push_back(local);
    }
    covers[p] =
        twohop::BuildCover(subgraphs[p].graph, part_options, &part_stats[p]);
    // Propagate a failed cover build through the pool's error channel so
    // the first failure cancels the remaining partitions immediately
    // (it used to surface only during the serial unification pass).
    return covers[p].status();
  };

  ThreadPool partition_pool(outer);
  HOPI_RETURN_NOT_OK(partition_pool.ParallelFor(0, num_partitions, build_one));

  twohop::TwoHopCover unified(collection->NumElements());
  for (size_t p = 0; p < num_partitions; ++p) {
    if (!covers[p].ok()) return covers[p].status();
    AggregateStats(part_stats[p], &stats->cover_build);
    stats->total_partition_connections +=
        part_stats[p].initial_connections;
    stats->largest_partition_connections =
        std::max(stats->largest_partition_connections,
                 part_stats[p].initial_connections);
    const twohop::TwoHopCover& cover = *covers[p];
    const InducedSubgraph& sub = subgraphs[p];
    for (NodeId local = 0; local < cover.NumNodes(); ++local) {
      NodeId global = sub.Global(local);
      for (const twohop::LabelEntry& e : cover.In(local)) {
        unified.AddIn(global, sub.Global(e.center), e.dist);
      }
      for (const twohop::LabelEntry& e : cover.Out(local)) {
        unified.AddOut(global, sub.Global(e.center), e.dist);
      }
    }
  }
  stats->covers_seconds = watch.ElapsedSeconds();

  // --- Step 3: join the partition covers ---
  watch.Restart();
  twohop::IndexedCover indexed(std::move(unified));
  JoinOptions join_options;
  join_options.psg_partition_cap = options.psg_partition_cap;
  Status join_status =
      options.join == JoinAlgorithm::kRecursive
          ? JoinCoversRecursive(*collection, *partitioning,
                                options.with_distance, &indexed,
                                &stats->join_stats, join_options)
          : JoinCoversIncremental(*collection, *partitioning,
                                  options.with_distance, &indexed,
                                  &stats->join_stats);
  HOPI_RETURN_NOT_OK(join_status);
  stats->join_seconds = watch.ElapsedSeconds();

  stats->cover_entries = indexed.cover().Size();
  stats->total_seconds = total_watch.ElapsedSeconds();

  // Hand the finished cover to the index. HopiIndex re-wraps it in an
  // IndexedCover; moving the TwoHopCover out is cheap, rebuilding the
  // reverse maps is O(|L|).
  twohop::TwoHopCover final_cover = std::move(*indexed.mutable_cover());
  return HopiIndex(collection, std::move(final_cover),
                   options.with_distance);
}

}  // namespace hopi
