#include "hopi/index.h"

namespace hopi {

HopiIndex::HopiIndex(collection::Collection* collection,
                     twohop::TwoHopCover cover, bool with_distance)
    : collection_(collection),
      cover_(std::move(cover)),
      with_distance_(with_distance) {
  cover_.EnsureNodes(collection->NumElements());
  size_t live = 0;
  for (collection::DocId d = 0; d < collection_->NumDocuments(); ++d) {
    if (collection_->IsLive(d)) live += collection_->ElementsOf(d).size();
  }
  density_at_build_ =
      live == 0 ? 0.0
                : static_cast<double>(cover_.cover().Size()) /
                      static_cast<double>(live);
}

double HopiIndex::DegradationFactor() const {
  if (density_at_build_ <= 0.0) return 1.0;
  size_t live = 0;
  for (collection::DocId d = 0; d < collection_->NumDocuments(); ++d) {
    if (collection_->IsLive(d)) live += collection_->ElementsOf(d).size();
  }
  if (live == 0) return 1.0;
  double density = static_cast<double>(cover_.cover().Size()) /
                   static_cast<double>(live);
  return density / density_at_build_;
}

void HopiIndex::MergeLink(NodeId u, NodeId v) {
  // Fig. 2: v is the center for all new connections from ancestors of u
  // (including u) to descendants of v (including v). Ancestors and
  // descendants are computed with the *current* cover.
  std::vector<NodeId> ancestors = cover_.Ancestors(u);
  std::vector<NodeId> descendants = cover_.Descendants(v);

  if (with_distance_) {
    // dist(a, v) = dist(a, u) + 1 over the new link; descendants keep
    // their dist(v, d). Entries can only overestimate a true shortest
    // distance transiently inside this loop; AddIn/AddOut keep minima.
    for (NodeId a : ancestors) {
      auto d = cover_.cover().Distance(a, u);
      if (d) cover_.AddOut(a, v, *d + 1);
    }
    cover_.AddOut(u, v, 1);
    for (NodeId d : descendants) {
      auto dist = cover_.cover().Distance(v, d);
      if (dist) cover_.AddIn(d, v, *dist);
    }
  } else {
    for (NodeId a : ancestors) cover_.AddOut(a, v);
    cover_.AddOut(u, v);
    for (NodeId d : descendants) cover_.AddIn(d, v);
  }
}

Status HopiIndex::InsertLink(NodeId u, NodeId v) {
  if (u >= collection_->NumElements() || v >= collection_->NumElements()) {
    return Status::InvalidArgument("link endpoint out of range");
  }
  cover_.EnsureNodes(collection_->NumElements());
  if (!collection_->AddLink(u, v)) {
    return Status::InvalidArgument("link already present");
  }
  MergeLink(u, v);
  return Status::OK();
}

}  // namespace hopi
