#include "hopi/join.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <map>
#include <queue>

#include "partition/psg.h"

namespace hopi {

namespace {

/// Fig. 2 link merge shared with the maintenance path: v becomes the
/// center for all new connections across link (u, v). Ancestors and
/// descendants come from the current (evolving) cover.
uint64_t MergeOneLink(NodeId u, NodeId v, bool with_distance,
                      twohop::IndexedCover* cover) {
  uint64_t added = 0;
  std::vector<NodeId> ancestors = cover->Ancestors(u);
  std::vector<NodeId> descendants = cover->Descendants(v);
  if (with_distance) {
    for (NodeId a : ancestors) {
      auto d = cover->cover().Distance(a, u);
      if (d && cover->AddOut(a, v, *d + 1)) ++added;
    }
    if (cover->AddOut(u, v, 1)) ++added;
    for (NodeId d : descendants) {
      auto dist = cover->cover().Distance(v, d);
      if (dist && cover->AddIn(d, v, *dist)) ++added;
    }
  } else {
    for (NodeId a : ancestors) {
      if (cover->AddOut(a, v)) ++added;
    }
    if (cover->AddOut(u, v)) ++added;
    for (NodeId d : descendants) {
      if (cover->AddIn(d, v)) ++added;
    }
  }
  return added;
}

/// Single-source shortest distances over the PSG's weighted adjacency
/// (weights >= 1; Dijkstra with a binary heap). Plain mode uses the same
/// routine with all weights 1 — still correct, just BFS-equivalent.
/// When `restrict_to` is non-null, traversal stays inside the nodes whose
/// entry in it matches `restriction` (the PSG-partitioned variant).
std::vector<uint32_t> PsgDistances(
    const partition::PartitionSkeletonGraph& psg, NodeId source,
    const std::vector<uint32_t>* restrict_to = nullptr,
    uint32_t restriction = 0) {
  std::vector<uint32_t> dist(psg.graph.NumNodes(), UINT32_MAX);
  using Item = std::pair<uint32_t, NodeId>;  // (dist, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
  dist[source] = 0;
  heap.push({0, source});
  while (!heap.empty()) {
    auto [d, x] = heap.top();
    heap.pop();
    if (d != dist[x]) continue;  // stale
    for (const partition::PsgEdge& e : psg.weighted_adj[x]) {
      if (restrict_to != nullptr && (*restrict_to)[e.to] != restriction) {
        continue;
      }
      uint32_t weight = e.weight == 0 ? 1 : e.weight;  // plain mode stores 0
      if (d + weight < dist[e.to]) {
        dist[e.to] = d + weight;
        heap.push({d + weight, e.to});
      }
    }
  }
  return dist;
}

/// H-bar as per-source sorted (target psg-node, dist) entries.
struct HBarRow {
  NodeId source;  // psg node
  std::vector<std::pair<NodeId, uint32_t>> targets;
};

/// Merge-min insert into a sorted (node, dist) vector. Returns true when
/// the entry was added or its distance improved.
bool MergeMin(std::vector<std::pair<NodeId, uint32_t>>* row, NodeId node,
              uint32_t dist) {
  auto it = std::lower_bound(
      row->begin(), row->end(), node,
      [](const std::pair<NodeId, uint32_t>& e, NodeId n) {
        return e.first < n;
      });
  if (it != row->end() && it->first == node) {
    if (dist < it->second) {
      it->second = dist;
      return true;
    }
    return false;
  }
  row->insert(it, {node, dist});
  return true;
}

/// Computes H-bar over the whole PSG: one restricted Dijkstra per link
/// source.
std::vector<HBarRow> ComputeHBarWhole(
    const partition::PartitionSkeletonGraph& psg) {
  std::vector<HBarRow> hbar;
  for (NodeId s = 0; s < psg.graph.NumNodes(); ++s) {
    if (!psg.is_source[s]) continue;
    std::vector<uint32_t> dist = PsgDistances(psg, s);
    HBarRow row{s, {}};
    for (NodeId t = 0; t < psg.graph.NumNodes(); ++t) {
      if (t == s || !psg.is_target[t] || dist[t] == UINT32_MAX) continue;
      row.targets.push_back({t, dist[t]});
    }
    if (!row.targets.empty()) hbar.push_back(std::move(row));
  }
  return hbar;
}

/// The PSG-partitioned variant (Sec 4.1, last paragraph): split the PSG
/// into partitions of at most `cap` nodes such that every cross-partition
/// edge starts at a link target and ends at a link source (achieved by
/// keeping each connected component of *link* edges inside one
/// partition), compute partial H-bar covers per partition, then connect
/// them by propagating H-bar_out(s) across every cross edge (t, s) to the
/// within-partition link-source ancestors of t — iterated to a fixpoint,
/// which also handles cross-partition cycles.
std::vector<HBarRow> ComputeHBarPartitioned(
    const partition::PartitionSkeletonGraph& psg, uint64_t cap,
    uint64_t* num_partitions) {
  const size_t n = psg.graph.NumNodes();

  // Union-find over link edges: their components must stay together.
  std::vector<NodeId> parent(n);
  for (NodeId v = 0; v < n; ++v) parent[v] = v;
  std::function<NodeId(NodeId)> find = [&](NodeId v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  for (NodeId u = 0; u < n; ++u) {
    for (const partition::PsgEdge& e : psg.weighted_adj[u]) {
      if (e.is_link) parent[find(u)] = find(e.to);
    }
  }
  std::map<NodeId, std::vector<NodeId>> groups;
  for (NodeId v = 0; v < n; ++v) groups[find(v)].push_back(v);

  // Greedy first-fit packing of groups into PSG partitions.
  std::vector<uint32_t> psg_part(n, 0);
  uint32_t current = 0;
  uint64_t current_size = 0;
  for (const auto& [root, members] : groups) {
    if (current_size > 0 && current_size + members.size() > cap) {
      ++current;
      current_size = 0;
    }
    for (NodeId v : members) psg_part[v] = current;
    current_size += members.size();
  }
  *num_partitions = current + 1;

  // Per-partition Dijkstras. Also record, per node t, the link sources of
  // t's partition that reach t (the "ancestors of t that are link
  // sources" needed for cross-edge propagation).
  std::vector<std::vector<std::pair<NodeId, uint32_t>>> hbar_out(n);
  std::vector<std::vector<std::pair<NodeId, uint32_t>>> source_anc(n);
  for (NodeId s = 0; s < n; ++s) {
    if (!psg.is_source[s]) continue;
    std::vector<uint32_t> dist =
        PsgDistances(psg, s, &psg_part, psg_part[s]);
    for (NodeId t = 0; t < n; ++t) {
      if (t == s || dist[t] == UINT32_MAX) continue;
      if (psg.is_target[t]) hbar_out[s].push_back({t, dist[t]});
      source_anc[t].push_back({s, dist[t]});
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    std::sort(hbar_out[v].begin(), hbar_out[v].end());
    std::sort(source_anc[v].begin(), source_anc[v].end());
  }

  // Cross-partition edges. The packing keeps link edges intra-partition,
  // so every cross edge is an internal target->source edge.
  struct CrossEdge {
    NodeId from;  // link target t
    NodeId to;    // link source s
    uint32_t weight;
  };
  std::vector<CrossEdge> cross;
  for (NodeId u = 0; u < n; ++u) {
    for (const partition::PsgEdge& e : psg.weighted_adj[u]) {
      if (psg_part[u] != psg_part[e.to]) {
        assert(!e.is_link && "link edge crossed PSG partitions");
        cross.push_back({u, e.to, e.weight == 0 ? 1u : e.weight});
      }
    }
  }

  // Fixpoint propagation across cross edges: for edge (t, s), every link
  // source a with a ->* t inside t's partition (including t itself when
  // it is a source) inherits H-bar_out(s) at the combined distance.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const CrossEdge& edge : cross) {
      // Direct target: s itself is the first reachable node; s's targets
      // propagate to ancestors of t. Also, if s is a target, (s, w) is a
      // reachable target for those ancestors.
      auto propagate_to = [&](NodeId a, uint32_t dist_at) {
        if (psg.is_target[edge.to]) {
          if (MergeMin(&hbar_out[a], edge.to, dist_at + edge.weight)) {
            changed = true;
          }
        }
        for (const auto& [x, dx] : hbar_out[edge.to]) {
          if (x == a) continue;
          if (MergeMin(&hbar_out[a], x, dist_at + edge.weight + dx)) {
            changed = true;
          }
        }
      };
      if (psg.is_source[edge.from]) propagate_to(edge.from, 0);
      for (const auto& [a, da] : source_anc[edge.from]) {
        propagate_to(a, da);
      }
    }
  }

  std::vector<HBarRow> hbar;
  for (NodeId s = 0; s < n; ++s) {
    if (!psg.is_source[s] || hbar_out[s].empty()) continue;
    HBarRow row{s, {}};
    for (const auto& [t, d] : hbar_out[s]) {
      if (t != s) row.targets.push_back({t, d});
    }
    if (!row.targets.empty()) hbar.push_back(std::move(row));
  }
  return hbar;
}

}  // namespace

std::vector<SkeletonRow> ComputeSkeletonCover(
    const partition::PartitionSkeletonGraph& psg, const JoinOptions& options,
    uint64_t* psg_partitions) {
  uint64_t partitions_used = 1;
  std::vector<HBarRow> hbar_rows;
  if (options.psg_partition_cap > 0 &&
      psg.graph.NumNodes() > options.psg_partition_cap) {
    hbar_rows =
        ComputeHBarPartitioned(psg, options.psg_partition_cap,
                               &partitions_used);
  } else {
    hbar_rows = ComputeHBarWhole(psg);
  }
  if (psg_partitions != nullptr) *psg_partitions = partitions_used;

  std::vector<SkeletonRow> rows;
  rows.reserve(hbar_rows.size());
  for (const HBarRow& row : hbar_rows) {
    SkeletonRow out{psg.to_element[row.source], {}};
    out.targets.reserve(row.targets.size());
    for (const auto& [t, d] : row.targets) {
      out.targets.push_back({psg.to_element[t], d});
    }
    // HBarRow targets are sorted by PSG node id; re-sort by element id
    // so consumers can merge-intersect rows.
    std::sort(out.targets.begin(), out.targets.end(),
              [](const SkeletonTarget& a, const SkeletonTarget& b) {
                return a.target < b.target;
              });
    rows.push_back(std::move(out));
  }
  return rows;
}

Status JoinCoversIncremental(const collection::Collection& collection,
                             const partition::Partitioning& partitioning,
                             bool with_distance,
                             twohop::IndexedCover* cover, JoinStats* stats) {
  JoinStats local;
  if (stats == nullptr) stats = &local;
  (void)collection;
  stats->cross_links = partitioning.cross_links.size();
  for (const collection::Link& l : partitioning.cross_links) {
    stats->label_additions +=
        MergeOneLink(l.source, l.target, with_distance, cover);
  }
  return Status::OK();
}

Status JoinCoversRecursive(const collection::Collection& collection,
                           const partition::Partitioning& partitioning,
                           bool with_distance,
                           twohop::IndexedCover* cover, JoinStats* stats,
                           const JoinOptions& options) {
  JoinStats local;
  if (stats == nullptr) stats = &local;
  stats->cross_links = partitioning.cross_links.size();
  if (partitioning.cross_links.empty()) return Status::OK();

  // Step 1: the partition-level skeleton graph over the partition covers.
  partition::PartitionSkeletonGraph psg =
      partition::BuildPsg(collection, partitioning, *cover, with_distance);
  stats->psg_nodes = psg.graph.NumNodes();
  stats->psg_edges = psg.graph.NumEdges();

  // Step 2: the H-bar cover (Sec 4.1): for every link source s,
  // H-bar_out(s) = all link targets reachable from s in the PSG;
  // H-bar_in(t) = {t} (implicit in our representation). Computed with an
  // adapted transitive-closure traversal per source — over the whole PSG,
  // or recursively over PSG partitions when it exceeds the cap.
  //
  // H-bar_out is kept aside: H-hat (step 3) must copy *exactly* these
  // entries to within-partition ancestors, and partition membership of
  // descendants must be evaluated against the pre-join covers.
  std::vector<SkeletonRow> hbar =
      ComputeSkeletonCover(psg, options, &stats->psg_partitions);

  // Step 3a: H-hat for link sources — every within-partition ancestor a of
  // s inherits H-bar_out(s), at distance dist(a,s) + dist_psg(s,t).
  // Ancestor sets and distances are taken from the covers before any H-bar
  // entry lands, so snapshot them first.
  struct AncestorTask {
    NodeId ancestor;
    uint32_t dist_to_source;  // dist(a, s); 0 for a == s
    size_t hbar_index;
  };
  std::vector<AncestorTask> tasks;
  for (size_t i = 0; i < hbar.size(); ++i) {
    NodeId s_elem = hbar[i].source;
    uint32_t s_part =
        partitioning.part_of[collection.DocOf(s_elem)];
    tasks.push_back({s_elem, 0, i});
    for (NodeId a : cover->Ancestors(s_elem)) {
      if (partitioning.part_of[collection.DocOf(a)] != s_part) continue;
      uint32_t d = 0;
      if (with_distance) {
        auto dd = cover->cover().Distance(a, s_elem);
        assert(dd.has_value());
        d = *dd;
      }
      tasks.push_back({a, d, i});
    }
  }

  // Step 3b: H-hat for link targets — every within-partition descendant d
  // of t gains t in Lin(d) at distance dist(t, d). Snapshot before
  // applying anything.
  struct DescendantTask {
    NodeId descendant;
    NodeId target_element;
    uint32_t dist;
  };
  std::vector<DescendantTask> desc_tasks;
  for (NodeId t = 0; t < psg.graph.NumNodes(); ++t) {
    if (!psg.is_target[t]) continue;
    NodeId t_elem = psg.to_element[t];
    uint32_t t_part = partitioning.part_of[collection.DocOf(t_elem)];
    for (NodeId d : cover->Descendants(t_elem)) {
      if (partitioning.part_of[collection.DocOf(d)] != t_part) continue;
      uint32_t dist = 0;
      if (with_distance) {
        auto dd = cover->cover().Distance(t_elem, d);
        assert(dd.has_value());
        dist = *dd;
      }
      desc_tasks.push_back({d, t_elem, dist});
    }
  }

  // Apply H-bar (source labels)...
  for (const SkeletonRow& row : hbar) {
    for (const SkeletonTarget& e : row.targets) {
      if (cover->AddOut(row.source, e.target, with_distance ? e.dist : 0)) {
        ++stats->hbar_entries;
      }
    }
  }
  // ...then H-hat for ancestors...
  for (const AncestorTask& task : tasks) {
    if (task.dist_to_source == 0 &&
        task.ancestor == hbar[task.hbar_index].source) {
      continue;  // the source itself already carries H-bar
    }
    for (const SkeletonTarget& e : hbar[task.hbar_index].targets) {
      if (cover->AddOut(task.ancestor, e.target,
                        with_distance ? task.dist_to_source + e.dist : 0)) {
        ++stats->hhat_entries;
      }
    }
  }
  // ...then H-hat for descendants of targets.
  for (const DescendantTask& task : desc_tasks) {
    if (cover->AddIn(task.descendant, task.target_element,
                     with_distance ? task.dist : 0)) {
      ++stats->hhat_entries;
    }
  }
  stats->label_additions = stats->hbar_entries + stats->hhat_entries;
  return Status::OK();
}

}  // namespace hopi
