// Incremental index maintenance (paper Sec 6).
#include <algorithm>
#include <cassert>
#include <deque>

#include "graph/bitset.h"
#include "graph/subgraph.h"
#include "graph/traversal.h"
#include "hopi/index.h"
#include "twohop/builder.h"
#include "util/timer.h"

namespace hopi {

namespace {

using collection::DocId;

/// Filters `entries`, dropping every entry whose center is in `mask`.
std::vector<twohop::LabelEntry> FilterEntries(
    const std::vector<twohop::LabelEntry>& entries, const DynamicBitset& mask) {
  std::vector<twohop::LabelEntry> out;
  out.reserve(entries.size());
  for (const twohop::LabelEntry& e : entries) {
    if (!mask.Test(e.center)) out.push_back(e);
  }
  return out;
}

/// Sorted union of two entry vectors keeping minimum distances.
std::vector<twohop::LabelEntry> MergeEntries(
    std::vector<twohop::LabelEntry> a,
    const std::vector<twohop::LabelEntry>& b) {
  for (const twohop::LabelEntry& e : b) {
    auto it = std::lower_bound(a.begin(), a.end(), e.center,
                               [](const twohop::LabelEntry& x, NodeId c) {
                                 return x.center < c;
                               });
    if (it != a.end() && it->center == e.center) {
      it->dist = std::min(it->dist, e.dist);
    } else {
      a.insert(it, e);
    }
  }
  return a;
}

}  // namespace

Status HopiIndex::InsertDocument(DocId doc) {
  if (doc >= collection_->NumDocuments() || !collection_->IsLive(doc)) {
    return Status::InvalidArgument("document not live");
  }
  cover_.EnsureNodes(collection_->NumElements());

  // Sec 6.1: treat the document as a new partition — compute its own
  // 2-hop cover over its internal subgraph (tree + intra links)...
  const auto& elements = collection_->ElementsOf(doc);
  InducedSubgraph sub =
      BuildInducedSubgraph(collection_->ElementGraph(), elements);
  twohop::CoverBuildOptions options;
  options.with_distance = with_distance_;
  auto cover = twohop::BuildCover(sub.graph, options);
  if (!cover.ok()) return cover.status();
  for (NodeId local = 0; local < cover->NumNodes(); ++local) {
    NodeId global = sub.Global(local);
    for (const twohop::LabelEntry& e : cover->In(local)) {
      cover_.AddIn(global, sub.Global(e.center), e.dist);
    }
    for (const twohop::LabelEntry& e : cover->Out(local)) {
      cover_.AddOut(global, sub.Global(e.center), e.dist);
    }
  }

  // ...then merge every link between the document and the rest of the
  // collection with the old partition-merging algorithm (Sec 3.3).
  for (const collection::Link& l : collection_->Links()) {
    DocId ds = collection_->DocOf(l.source);
    DocId dt = collection_->DocOf(l.target);
    if (ds == dt) continue;
    if (ds == doc || dt == doc) MergeLink(l.source, l.target);
  }
  return Status::OK();
}

bool HopiIndex::SeparatesDocumentGraph(DocId doc) const {
  // di separates G_D iff removing it disconnects every (ancestor,
  // descendant) pair: multi-source BFS from Anc(di) avoiding di must not
  // reach any member of Desc(di).
  const Digraph& gd = collection_->DocumentGraph();
  std::vector<NodeId> anc = ReachingTo(gd, doc);
  std::vector<NodeId> desc = ReachableFrom(gd, doc);
  std::vector<bool> is_desc(gd.NumNodes(), false);
  for (NodeId d : desc) {
    if (d != doc) is_desc[d] = true;
  }
  // A document on a document-level cycle through `doc` is both an
  // ancestor and a descendant, so Theorem 2's premise (disjoint VA/VD)
  // does not hold: the fast path's purge masks would overlap and strip
  // a document's own centers from its labels (found by the randomized
  // differential harness). Cyclic neighborhoods are never separated.
  for (NodeId a : anc) {
    if (a != doc && is_desc[a]) return false;
  }
  std::vector<bool> seen(gd.NumNodes(), false);
  seen[doc] = true;  // never traverse through di
  std::deque<NodeId> queue;
  for (NodeId a : anc) {
    if (a != doc && !seen[a]) {
      seen[a] = true;
      queue.push_back(a);
    }
  }
  while (!queue.empty()) {
    NodeId x = queue.front();
    queue.pop_front();
    for (NodeId y : gd.OutNeighbors(x)) {
      if (seen[y]) continue;
      if (is_desc[y]) return false;  // a still reaches d without di
      seen[y] = true;
      queue.push_back(y);
    }
  }
  return true;
}

Status HopiIndex::DeleteDocument(DocId doc, DeleteStats* stats) {
  DeleteStats local;
  if (stats == nullptr) stats = &local;
  if (doc >= collection_->NumDocuments() || !collection_->IsLive(doc)) {
    return Status::InvalidArgument("document not live");
  }
  // The collection may have grown (ingests) since the last index update.
  cover_.EnsureNodes(collection_->NumElements());
  Stopwatch total;
  Stopwatch septest;
  bool separates = SeparatesDocumentGraph(doc);
  stats->separation_test_seconds = septest.ElapsedSeconds();
  stats->separated = separates;
  Status status = separates ? DeleteDocumentFast(doc)
                            : DeleteDocumentGeneral(doc, stats);
  stats->total_seconds = total.ElapsedSeconds();
  return status;
}

Status HopiIndex::DeleteDocumentFast(DocId doc) {
  // Theorem 2. VA = elements of document-level ancestors, VD = elements of
  // document-level descendants, Vdi = elements of the document itself.
  const Digraph& gd = collection_->DocumentGraph();
  std::vector<NodeId> anc_docs = ReachingTo(gd, doc);
  std::vector<NodeId> desc_docs = ReachableFrom(gd, doc);

  DynamicBitset vdi(collection_->NumElements());
  for (NodeId e : collection_->ElementsOf(doc)) vdi.Set(e);

  DynamicBitset vdi_or_vd = vdi;  // centers to purge from VA's Lout
  std::vector<DocId> va_docs, vd_docs;
  for (NodeId d : desc_docs) {
    if (d == doc) continue;
    vd_docs.push_back(d);
    for (NodeId e : collection_->ElementsOf(d)) vdi_or_vd.Set(e);
  }
  DynamicBitset vdi_or_va = vdi;  // centers to purge from VD's Lin
  for (NodeId a : anc_docs) {
    if (a == doc) continue;
    va_docs.push_back(a);
    for (NodeId e : collection_->ElementsOf(a)) vdi_or_va.Set(e);
  }

  twohop::TwoHopCover* cover = cover_.mutable_cover();
  for (DocId a : va_docs) {
    for (NodeId e : collection_->ElementsOf(a)) {
      cover->SetOut(e, FilterEntries(cover->Out(e), vdi_or_vd));
    }
  }
  for (DocId d : vd_docs) {
    for (NodeId e : collection_->ElementsOf(d)) {
      cover->SetIn(e, FilterEntries(cover->In(e), vdi_or_va));
    }
  }
  for (NodeId e : collection_->ElementsOf(doc)) cover->ClearNode(e);
  cover_.RebuildReverseMaps();
  return collection_->RemoveDocument(doc);
}

Status HopiIndex::DeleteDocumentGeneral(DocId doc, DeleteStats* stats) {
  // Theorem 3. Element-level ancestor/descendant sets of VE(di), computed
  // on the graph *before* removal.
  const Digraph& ge = collection_->ElementGraph();
  const auto& doc_elements = collection_->ElementsOf(doc);

  // A_di / D_di include VE(di) per the paper; we track the outside parts
  // and handle VE(di) by clearing its labels wholesale.
  std::vector<NodeId> adi_all;  // ancestors incl. doc elements
  {
    // Multi-source reverse BFS.
    std::vector<bool> seen(ge.NumNodes(), false);
    std::deque<NodeId> queue;
    for (NodeId e : doc_elements) {
      seen[e] = true;
      queue.push_back(e);
    }
    while (!queue.empty()) {
      NodeId x = queue.front();
      queue.pop_front();
      for (NodeId y : ge.InNeighbors(x)) {
        if (!seen[y]) {
          seen[y] = true;
          queue.push_back(y);
        }
      }
    }
    for (NodeId v = 0; v < ge.NumNodes(); ++v) {
      if (seen[v]) adi_all.push_back(v);
    }
  }
  std::vector<NodeId> ddi_all = ReachableFromAll(ge, doc_elements);

  DynamicBitset in_doc(collection_->NumElements());
  for (NodeId e : doc_elements) in_doc.Set(e);
  DynamicBitset adi_mask(collection_->NumElements());
  std::vector<NodeId> adi_outside;
  for (NodeId a : adi_all) {
    adi_mask.Set(a);
    if (!in_doc.Test(a)) adi_outside.push_back(a);
  }
  std::vector<NodeId> ddi_outside;
  for (NodeId d : ddi_all) {
    if (!in_doc.Test(d)) ddi_outside.push_back(d);
  }

  // Remove the document from the collection; the element graph now is the
  // post-deletion graph.
  HOPI_RETURN_NOT_OK(collection_->RemoveDocument(doc));

  // Partial closure recomputation: everything reachable from the seeds
  // (the remaining ancestors) in the new graph, then a fresh 2-hop cover
  // L-hat over that region.
  std::vector<NodeId> region = ReachableFromAll(ge, adi_outside);
  stats->recompute_fraction =
      collection_->NumElements() == 0
          ? 0.0
          : static_cast<double>(region.size()) /
                static_cast<double>(collection_->NumElements());

  InducedSubgraph sub = BuildInducedSubgraph(ge, region);
  twohop::CoverBuildOptions options;
  options.with_distance = with_distance_;
  auto lhat = twohop::BuildCover(sub.graph, options);
  if (!lhat.ok()) return lhat.status();

  twohop::TwoHopCover* cover = cover_.mutable_cover();

  // L' := L ∪ L-hat, except: Lout is *replaced* for nodes in A_di and Lin
  // is filtered-of-A_di then extended for nodes in D_di.
  // First collect L-hat's entries per global node.
  std::vector<std::vector<twohop::LabelEntry>> lhat_in(cover->NumNodes());
  std::vector<std::vector<twohop::LabelEntry>> lhat_out(cover->NumNodes());
  for (NodeId local = 0; local < lhat->NumNodes(); ++local) {
    NodeId global = sub.Global(local);
    for (const twohop::LabelEntry& e : lhat->In(local)) {
      lhat_in[global].push_back({sub.Global(e.center), e.dist});
    }
    for (const twohop::LabelEntry& e : lhat->Out(local)) {
      lhat_out[global].push_back({sub.Global(e.center), e.dist});
    }
    std::sort(lhat_in[global].begin(), lhat_in[global].end(),
              [](const twohop::LabelEntry& a, const twohop::LabelEntry& b) {
                return a.center < b.center;
              });
    std::sort(lhat_out[global].begin(), lhat_out[global].end(),
              [](const twohop::LabelEntry& a, const twohop::LabelEntry& b) {
                return a.center < b.center;
              });
  }

  DynamicBitset in_adi_outside(collection_->NumElements());
  for (NodeId a : adi_outside) in_adi_outside.Set(a);

  // Replacement for ancestors: L'out(a) := L-hat_out(a).
  for (NodeId a : adi_outside) {
    cover->SetOut(a, std::move(lhat_out[a]));
    lhat_out[a].clear();
  }
  // Descendants: L'in(d) := (Lin(d) \ A_di) ∪ L-hat_in(d).
  for (NodeId d : ddi_outside) {
    std::vector<twohop::LabelEntry> filtered =
        FilterEntries(cover->In(d), adi_mask);
    cover->SetIn(d, MergeEntries(std::move(filtered), lhat_in[d]));
    lhat_in[d].clear();
  }
  // Everyone else in the recomputed region: plain union.
  for (NodeId v = 0; v < cover->NumNodes(); ++v) {
    for (const twohop::LabelEntry& e : lhat_in[v]) {
      cover->AddIn(v, e.center, e.dist);
    }
    for (const twohop::LabelEntry& e : lhat_out[v]) {
      cover->AddOut(v, e.center, e.dist);
    }
  }
  // The deleted document's elements lose their labels entirely.
  for (NodeId e : doc_elements) cover->ClearNode(e);

  cover_.RebuildReverseMaps();
  return Status::OK();
}

Status HopiIndex::DeleteLink(NodeId u, NodeId v) {
  cover_.EnsureNodes(collection_->NumElements());
  const Digraph& ge = collection_->ElementGraph();
  if (!ge.HasEdge(u, v)) {
    return Status::NotFound("no link " + std::to_string(u) + " -> " +
                            std::to_string(v));
  }

  // Ancestors of u (incl. u) and descendants of v (incl. v) before the
  // removal — the candidate endpoints of lost connections.
  std::vector<NodeId> a_set = ReachingTo(ge, u);
  std::vector<NodeId> d_set = ReachableFrom(ge, v);

  HOPI_RETURN_NOT_OK(collection_->RemoveLink(u, v));

  // Fast path (plain covers only): if u still reaches v in the graph, no
  // connection was lost and the cover stays exact. Distance-aware covers
  // cannot take it — surviving connections may have gotten longer.
  if (!with_distance_ && hopi::IsReachable(ge, u, v)) {
    return Status::OK();
  }

  // General path, mirroring Theorem 3 with A_di := ancestors of u and
  // D_di := descendants of v.
  std::vector<NodeId> region = ReachableFromAll(ge, a_set);
  InducedSubgraph sub = BuildInducedSubgraph(ge, region);
  twohop::CoverBuildOptions options;
  options.with_distance = with_distance_;
  auto lhat = twohop::BuildCover(sub.graph, options);
  if (!lhat.ok()) return lhat.status();

  twohop::TwoHopCover* cover = cover_.mutable_cover();
  std::vector<std::vector<twohop::LabelEntry>> lhat_in(cover->NumNodes());
  std::vector<std::vector<twohop::LabelEntry>> lhat_out(cover->NumNodes());
  for (NodeId local = 0; local < lhat->NumNodes(); ++local) {
    NodeId global = sub.Global(local);
    for (const twohop::LabelEntry& e : lhat->In(local)) {
      lhat_in[global].push_back({sub.Global(e.center), e.dist});
    }
    for (const twohop::LabelEntry& e : lhat->Out(local)) {
      lhat_out[global].push_back({sub.Global(e.center), e.dist});
    }
    auto by_center = [](const twohop::LabelEntry& a,
                        const twohop::LabelEntry& b) {
      return a.center < b.center;
    };
    std::sort(lhat_in[global].begin(), lhat_in[global].end(), by_center);
    std::sort(lhat_out[global].begin(), lhat_out[global].end(), by_center);
  }

  DynamicBitset a_mask(collection_->NumElements());
  for (NodeId a : a_set) a_mask.Set(a);

  for (NodeId a : a_set) {
    cover->SetOut(a, std::move(lhat_out[a]));
    lhat_out[a].clear();
  }
  for (NodeId d : d_set) {
    std::vector<twohop::LabelEntry> filtered =
        FilterEntries(cover->In(d), a_mask);
    cover->SetIn(d, MergeEntries(std::move(filtered), lhat_in[d]));
    lhat_in[d].clear();
  }
  for (NodeId x = 0; x < cover->NumNodes(); ++x) {
    for (const twohop::LabelEntry& e : lhat_in[x]) {
      cover->AddIn(x, e.center, e.dist);
    }
    for (const twohop::LabelEntry& e : lhat_out[x]) {
      cover->AddOut(x, e.center, e.dist);
    }
  }
  cover_.RebuildReverseMaps();
  return Status::OK();
}

Status HopiIndex::ReplaceDocument(DocId old_doc, DocId new_doc) {
  // Sec 6.3: drop the old version, index the new one.
  HOPI_RETURN_NOT_OK(DeleteDocument(old_doc));
  return InsertDocument(new_doc);
}

}  // namespace hopi
